(* Tests for the batch verification scheduler (Cv_core.Batch) and the
   content-addressed proof-artifact cache (Cv_artifacts.Cache):
   scheduling-independence of verdicts, deterministic hit/miss
   accounting, LRU eviction, poisoned-job isolation, crash-during-write
   durability, and done-file resume. *)

module Batch = Cv_core.Batch
module Cache = Cv_artifacts.Cache
module Artifacts = Cv_artifacts.Artifacts
module Box = Cv_interval.Box
module Json = Cv_util.Json

let net_of = Gen.net_of

(* Shared fixture (from [Gen]): one network, a provable property (the
   symint over-approximation widened), a falsifiable one (a strict
   sub-box of the true output range), and a proof artifact for the
   incremental modes. *)
let net = net_of 3 [ 3; 6; 5; 1 ]
let din = Box.uniform 3 ~lo:0. ~hi:1.
let safe_prop = Gen.safe_prop net din
let unsafe_prop = Gen.unsafe_prop net din

let artifact =
  let original = Cv_core.Strategy.solve_original net safe_prop in
  assert original.Cv_core.Strategy.proved;
  original.Cv_core.Strategy.artifact

let enlarged_din = Box.expand 0.05 din

let other_net = net_of 99 [ 3; 6; 5; 1 ]

let verify_job id prop =
  { Batch.id;
    spec = Batch.Verify { net; prop; exact = false; artifact_out = None };
    timeout = None }

(* The reference manifest the scheduling-equivalence property permutes:
   every mode, including a poisoned entry (an artifact that was not
   produced for the job's network). *)
let pool =
  [ verify_job "safe1" safe_prop;
    verify_job "unsafe1" unsafe_prop;
    verify_job "safe2" safe_prop;
    { Batch.id = "exact1";
      spec =
        Batch.Verify { net; prop = safe_prop; exact = true; artifact_out = None };
      timeout = None };
    { Batch.id = "svudc1";
      spec = Batch.Svudc { net; artifact; new_din = enlarged_din };
      timeout = None };
    { Batch.id = "svbtv1";
      spec =
        Batch.Svbtv
          { old_net = net;
            new_net =
              Cv_nn.Network.map_layers
                (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 5) ~sigma:0.001)
                net;
            artifact;
            new_din = din };
      timeout = None };
    { Batch.id = "poisoned";
      spec = Batch.Svudc { net = other_net; artifact; new_din = enlarged_din };
      timeout = None } ]

let verdict_map (t : Batch.t) =
  List.map (fun (r : Batch.job_result) -> (r.Batch.job_id, r.Batch.verdict)) t.Batch.results

(* One-shot reference: every pool job run alone, sequentially, cold. *)
let expected =
  lazy
    (List.concat_map
       (fun job -> verdict_map (Batch.run [ job ]))
       pool)

(* ------------------------------------------------------------------ *)
(* Scheduling equivalence                                              *)
(* ------------------------------------------------------------------ *)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Cv_util.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Any permutation of the manifest at any concurrency level, with or
   without the cache, yields the same per-job verdicts as sequential
   one-shot runs — and reports them in manifest order. *)
let scheduling_equivalence_prop =
  QCheck.Test.make ~name:"batch verdicts independent of order/concurrency"
    ~count:8
    QCheck.(triple (int_range 1 4) (int_range 0 10_000) bool)
    (fun (jobs, seed, cached) ->
      let manifest = shuffle (Cv_util.Rng.create seed) pool in
      let config =
        { Batch.default_config with
          Batch.jobs;
          cache = (if cached then Some (Cache.create ()) else None) }
      in
      let t = Batch.run ~config manifest in
      List.iter2
        (fun (job : Batch.job) (r : Batch.job_result) ->
          if not (String.equal job.Batch.id r.Batch.job_id) then
            QCheck.Test.fail_reportf "results not in manifest order")
        manifest t.Batch.results;
      List.for_all
        (fun (id, v) -> List.assoc id (verdict_map t) = v)
        (Lazy.force expected))

(* ------------------------------------------------------------------ *)
(* Cache accounting                                                    *)
(* ------------------------------------------------------------------ *)

(* Single-flight: K identical queries cost one chain build — exactly 1
   miss and K-1 hits, at any concurrency level. *)
let test_cache_accounting () =
  List.iter
    (fun jobs ->
      let cache = Cache.create () in
      let manifest =
        List.init 6 (fun i -> verify_job (Printf.sprintf "q%d" i) safe_prop)
      in
      let t =
        Batch.run ~config:{ Batch.default_config with Batch.jobs; cache = Some cache }
          manifest
      in
      List.iter
        (fun (r : Batch.job_result) ->
          Alcotest.(check string) "all proved" "safe"
            (Batch.verdict_name r.Batch.verdict))
        t.Batch.results;
      let s = match t.Batch.cache_stats with Some s -> s | None -> assert false in
      Alcotest.(check int)
        (Printf.sprintf "misses at jobs=%d" jobs)
        1 s.Cache.misses;
      Alcotest.(check int)
        (Printf.sprintf "hits at jobs=%d" jobs)
        5 s.Cache.hits)
    [ 1; 4 ]

let key_a = ("a", Cache.no_box, "k")
let key_b = ("b", Cache.no_box, "k")

let find_k c (fp, bh, k) = Cache.find c ~fingerprint:fp ~box_hash:bh ~kind:k

let store_k c (fp, bh, k) v = Cache.store c ~fingerprint:fp ~box_hash:bh ~kind:k v

(* A capacity-1 cache evicts the LRU entry and counts it. *)
let test_cache_eviction () =
  let c = Cache.create ~capacity:1 () in
  store_k c key_a (Json.Num 1.);
  store_k c key_b (Json.Num 2.);
  Alcotest.(check int) "size bounded" 1 (Cache.size c);
  Alcotest.(check bool) "old entry gone" true (find_k c key_a = None);
  Alcotest.(check bool) "new entry present" true
    (find_k c key_b = Some (Json.Num 2.));
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "evicted lookup missed" 1 s.Cache.misses;
  Alcotest.(check int) "kept lookup hit" 1 s.Cache.hits

(* Disk is the durable store: an evicted (or fresh-process) entry
   re-enters from the backing directory as a hit; foreign bytes under a
   key degrade to a miss, never a wrong artifact. *)
let test_cache_disk_backing () =
  let dir = Filename.temp_file "cv_cache" "" in
  Sys.remove dir;
  let c = Cache.create ~dir () in
  store_k c key_a (Json.Num 42.);
  let c' = Cache.create ~dir () in
  Alcotest.(check bool) "fresh cache hits from disk" true
    (find_k c' key_a = Some (Json.Num 42.));
  Alcotest.(check int) "counted as hit" 1 (Cache.stats c').Cache.hits;
  (* Corrupt every disk entry; a third cache must rebuild, not serve. *)
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let oc = open_out path in
      output_string oc "{ not json";
      close_out oc)
    (Sys.readdir dir);
  let c'' = Cache.create ~dir () in
  Alcotest.(check bool) "corrupt entry is a miss" true (find_k c'' key_a = None)

(* A Json.Error raised by the builder itself is a build failure, not a
   decode failure: it propagates as-is, without a second build. *)
let test_build_error_not_retried () =
  let c = Cache.create () in
  let builds = ref 0 in
  let build () : Box.t array =
    incr builds;
    raise (Json.Error "builder failed")
  in
  (match
     Cache.boxes_or_build c ~fingerprint:"f" ~box_hash:Cache.no_box ~kind:"k"
       build
   with
  | _ -> Alcotest.fail "builder failure must escape"
  | exception Json.Error _ -> ());
  Alcotest.(check int) "build ran exactly once" 1 !builds

(* A cached payload that fails to decode (foreign bytes under the key)
   rebuilds through the store and repairs the entry. *)
let test_decode_failure_rebuilds () =
  let c = Cache.create () in
  store_k c ("f", Cache.no_box, "boxes") (Json.Str "garbage");
  let builds = ref 0 in
  let boxes = [| Box.uniform 2 ~lo:0. ~hi:1. |] in
  let build () =
    incr builds;
    boxes
  in
  let get () =
    Cache.boxes_or_build c ~fingerprint:"f" ~box_hash:Cache.no_box
      ~kind:"boxes" build
  in
  Alcotest.(check bool) "rebuilt value served" true (get () = boxes);
  Alcotest.(check int) "rebuilt once" 1 !builds;
  Alcotest.(check bool) "repaired entry round-trips" true (get () = boxes);
  Alcotest.(check int) "second lookup is a pure hit" 1 !builds

(* find_or_build: the builder runs once; a second call is a pure hit. *)
let test_find_or_build () =
  let c = Cache.create () in
  let builds = ref 0 in
  let build () =
    incr builds;
    Json.Num 7.
  in
  let v1 =
    Cache.find_or_build c ~fingerprint:"f" ~box_hash:Cache.no_box ~kind:"x" build
  in
  let v2 =
    Cache.find_or_build c ~fingerprint:"f" ~box_hash:Cache.no_box ~kind:"x" build
  in
  Alcotest.(check int) "one build" 1 !builds;
  Alcotest.(check bool) "same payload" true (v1 = v2)

(* ------------------------------------------------------------------ *)
(* Durability under injected faults                                    *)
(* ------------------------------------------------------------------ *)

(* A process killed mid-cache-write must leave the previous entry
   intact: the writer goes through the shared unique-tmp + fsync +
   rename path, so the half-written bytes land in an abandoned tmp
   file, never the entry. *)
let test_crash_during_cache_write () =
  let dir = Filename.temp_file "cv_cache" "" in
  Sys.remove dir;
  let c = Cache.create ~dir () in
  store_k c key_a (Json.Str "v1");
  Cv_util.Fault.enable ~mode:Cv_util.Fault.Once Cv_util.Fault.Kill_mid_checkpoint;
  (match store_k c key_a (Json.Str "v2") with
  | () -> Alcotest.fail "injected kill must escape store"
  | exception Cv_util.Fault.Injected _ -> ());
  Cv_util.Fault.reset ();
  (* The failed write cached nothing: this process still serves v1 ... *)
  Alcotest.(check bool) "memory kept the old value" true
    (find_k c key_a = Some (Json.Str "v1"));
  (* ... and so does a fresh process over the same directory. *)
  let c' = Cache.create ~dir () in
  Alcotest.(check bool) "disk kept the old value" true
    (find_k c' key_a = Some (Json.Str "v1"))

(* Same strike against a truncating writer: the envelope checksum
   catches the damage and the entry degrades to a rebuild. *)
let test_truncated_cache_entry_detected () =
  let dir = Filename.temp_file "cv_cache" "" in
  Sys.remove dir;
  Cv_util.Fault.enable ~mode:Cv_util.Fault.Once Cv_util.Fault.Truncate_artifact;
  let c = Cache.create ~dir () in
  store_k c key_a (Json.Str "payload");
  Cv_util.Fault.reset ();
  let c' = Cache.create ~dir () in
  Alcotest.(check bool) "truncated entry is a miss" true
    (find_k c' key_a = None)

(* ------------------------------------------------------------------ *)
(* Isolation and resume                                                *)
(* ------------------------------------------------------------------ *)

let test_poisoned_job_isolated () =
  let manifest =
    [ verify_job "ok1" safe_prop;
      { Batch.id = "poisoned";
        spec = Batch.Svudc { net = other_net; artifact; new_din = enlarged_din };
        timeout = None };
      verify_job "ok2" safe_prop ]
  in
  let t =
    Batch.run ~config:{ Batch.default_config with Batch.jobs = 2 } manifest
  in
  let v id = List.assoc id (verdict_map t) in
  Alcotest.(check string) "poisoned job crashed" "crashed"
    (Batch.verdict_name (v "poisoned"));
  Alcotest.(check string) "sibling before unaffected" "safe"
    (Batch.verdict_name (v "ok1"));
  Alcotest.(check string) "sibling after unaffected" "safe"
    (Batch.verdict_name (v "ok2"))

let test_duplicate_ids_rejected () =
  match Batch.run [ verify_job "dup" safe_prop; verify_job "dup" unsafe_prop ] with
  | _ -> Alcotest.fail "duplicate ids must be rejected"
  | exception Invalid_argument _ -> ()

(* Distinct ids that sanitise to the same filename would share
   checkpoint/done-file paths; the manifest is rejected up front. *)
let test_colliding_ids_rejected () =
  match Batch.run [ verify_job "a/b" safe_prop; verify_job "a:b" unsafe_prop ] with
  | _ -> Alcotest.fail "sanitise-colliding ids must be rejected"
  | exception Invalid_argument _ -> ()

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* Re-running a manifest against the same checkpoint directory replays
   recorded results instead of re-verifying; a deleted done-file makes
   exactly that job run again. *)
let test_done_file_resume () =
  let dir = Filename.temp_file "cv_batch_ck" "" in
  Sys.remove dir;
  let manifest = [ verify_job "r1" safe_prop; verify_job "r2" unsafe_prop ] in
  let config = { Batch.default_config with Batch.checkpoint_dir = Some dir } in
  let t1 = Batch.run ~config manifest in
  List.iter
    (fun (r : Batch.job_result) ->
      Alcotest.(check bool) "first run is fresh" false r.Batch.resumed)
    t1.Batch.results;
  let t2 = Batch.run ~config manifest in
  List.iter
    (fun (r : Batch.job_result) ->
      Alcotest.(check bool) "second run replays" true r.Batch.resumed)
    t2.Batch.results;
  Alcotest.(check bool) "verdicts preserved" true
    (verdict_map t1 = verdict_map t2);
  Sys.remove (Filename.concat dir "r2.done.json");
  let t3 = Batch.run ~config manifest in
  List.iter
    (fun (r : Batch.job_result) ->
      Alcotest.(check bool)
        (r.Batch.job_id ^ " resumed flag")
        (String.equal r.Batch.job_id "r1")
        r.Batch.resumed)
    t3.Batch.results;
  Alcotest.(check bool) "re-run verdict stable" true
    (verdict_map t1 = verdict_map t3);
  rm_rf dir

(* The continuous-verification hazard: the same job id, re-run under a
   reused --checkpoint-dir after the mode, the property, or the network
   changed. The recorded done-file is stale for the new question and
   must be ignored — never replayed as the verdict of something it
   never verified. *)
let test_stale_done_file_ignored () =
  let dir = Filename.temp_file "cv_batch_stale" "" in
  Sys.remove dir;
  let config = { Batch.default_config with Batch.checkpoint_dir = Some dir } in
  let job ?(net = net) ?(exact = false) prop =
    { Batch.id = "x";
      spec = Batch.Verify { net; prop; exact; artifact_out = None };
      timeout = None }
  in
  let run_one j =
    match (Batch.run ~config [ j ]).Batch.results with
    | [ r ] -> r
    | _ -> assert false
  in
  let r = run_one (job safe_prop) in
  Alcotest.(check string) "baseline verdict" "safe"
    (Batch.verdict_name r.Batch.verdict);
  (* Same network and property, different mode. *)
  let r = run_one (job ~exact:true safe_prop) in
  Alcotest.(check bool) "mode change re-runs" false r.Batch.resumed;
  (* Same network and mode, different property: the recorded "safe"
     must not leak onto a property that is in fact violated. *)
  let r = run_one (job unsafe_prop) in
  Alcotest.(check bool) "property change re-runs" false r.Batch.resumed;
  Alcotest.(check string) "re-verified verdict" "unsafe"
    (Batch.verdict_name r.Batch.verdict);
  (* Same property and mode, retrained network. *)
  let r = run_one (job ~net:other_net unsafe_prop) in
  Alcotest.(check bool) "network change re-runs" false r.Batch.resumed;
  (* Unchanged question: now the done-file is valid and replays. *)
  let r' = run_one (job ~net:other_net unsafe_prop) in
  Alcotest.(check bool) "identical re-run replays" true r'.Batch.resumed;
  Alcotest.(check bool) "replayed verdict preserved" true
    (r'.Batch.verdict = r.Batch.verdict);
  rm_rf dir

let test_job_result_json_roundtrip () =
  let r =
    { Batch.job_id = "j1";
      mode = "verify";
      verdict = Batch.Unsafe;
      decisive = Some "fallback-full";
      attempts = 2;
      seconds = 0.125;
      resumed = true;
      detail = "counterexample found" }
  in
  Alcotest.(check bool) "round-trip" true
    (Batch.job_result_of_json (Batch.job_result_to_json r) = r)

let () =
  Alcotest.run "cv_batch"
    [ ( "scheduling",
        [ QCheck_alcotest.to_alcotest scheduling_equivalence_prop;
          Alcotest.test_case "poisoned job isolated" `Quick
            test_poisoned_job_isolated;
          Alcotest.test_case "duplicate ids rejected" `Quick
            test_duplicate_ids_rejected;
          Alcotest.test_case "colliding ids rejected" `Quick
            test_colliding_ids_rejected;
          Alcotest.test_case "done-file resume" `Quick test_done_file_resume;
          Alcotest.test_case "stale done-file ignored" `Quick
            test_stale_done_file_ignored;
          Alcotest.test_case "job result json round-trip" `Quick
            test_job_result_json_roundtrip ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss accounting" `Quick
            test_cache_accounting;
          Alcotest.test_case "lru eviction" `Quick test_cache_eviction;
          Alcotest.test_case "disk backing" `Quick test_cache_disk_backing;
          Alcotest.test_case "find_or_build builds once" `Quick
            test_find_or_build;
          Alcotest.test_case "build error not retried" `Quick
            test_build_error_not_retried;
          Alcotest.test_case "decode failure rebuilds" `Quick
            test_decode_failure_rebuilds;
          Alcotest.test_case "crash during cache write" `Quick
            test_crash_during_cache_write;
          Alcotest.test_case "truncated entry detected" `Quick
            test_truncated_cache_entry_detected ] ) ]
