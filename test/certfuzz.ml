(* Seeded soundness-fuzzing campaign for the certificate pipeline
   (`make certfuzz`).

   Each round draws a random scenario, emits certificates and attacks
   them. The invariant under fire is the checker's soundness:

   - every honestly emitted certificate must check Valid, and its claim
     must survive concrete sampling (a Valid safety certificate whose
     network has a sampled counterexample is a soundness bug);
   - JSON-level mutations of a valid certificate either fail to decode,
     check Invalid, or — when they happen to stay Valid — must still
     carry a claim that sampling cannot falsify;
   - the targeted per-kind corruptions (the guaranteed-invalid ones)
     must always be rejected.

   Usage: certfuzz.exe [-seed N] [-rounds N] [-out DIR]
   Failing certificates are dumped into DIR (default
   _build/certfuzz-failures) for CI artifact upload. *)

module Box = Cv_interval.Box
module Cert = Cv_cert.Cert
module Check = Cv_cert.Check
module Emit = Cv_cert.Emit
module Lp = Cv_lp.Lp
module Lp_cert = Cv_lp.Lp_cert
module Json = Cv_util.Json
module Rng = Cv_util.Rng

let seed = ref 0

let rounds = ref 40

let out_dir = ref "_build/certfuzz-failures"

let failures = ref 0

let checked = ref 0

let mutations_tried = ref 0

let mutations_valid = ref 0

let () =
  let rec parse = function
    | "-seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "-rounds" :: v :: rest ->
      rounds := int_of_string v;
      parse rest
    | "-out" :: v :: rest ->
      out_dir := v;
      parse rest
    | [] -> ()
    | a :: _ -> failwith ("certfuzz: unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv))

let dump_failure ~why cert_json =
  incr failures;
  (try Unix.mkdir !out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file =
    Filename.concat !out_dir (Printf.sprintf "failure-%d-%d.json" !seed !failures)
  in
  let oc = open_out file in
  output_string oc (Json.to_string (Json.Obj [ ("why", Json.Str why); ("certificate", cert_json) ]));
  close_out oc;
  Printf.eprintf "FAIL: %s (dumped to %s)\n%!" why file

let fail ~why cert = dump_failure ~why (Cert.to_json cert)

(* ------------------------------------------------------------------ *)
(* Ground-truth oracle: sample the claim                               *)
(* ------------------------------------------------------------------ *)

(* For a Valid certificate over a network claim, concrete evaluation is
   ground truth: a Network_safe claim falsified by any sampled input, or
   a Network_unsafe claim over a network that is sampled-safe AND whose
   proof point is inside D_out, is a checker soundness bug. *)
let sample_claim rng (cert : Cert.t) =
  match cert.claim with
  | Cert.Network_safe { din; _ } when Box.is_empty din ->
    true (* a mutation emptied D_in: the claim is vacuously true *)
  | Cert.Network_safe { net; din; dout } ->
    (try
       for _ = 1 to 64 do
         let x = Box.sample rng din in
         let y = Cv_nn.Network.eval net x in
         if not (Box.mem_tol ~tol:1e-9 y dout) then raise Exit
       done;
       true
     with Exit -> false)
  | Cert.Network_unsafe { net; din; dout } -> (
    match cert.proof with
    | Cert.P_counterexample x | Cert.P_reuse { inner = Cert.P_counterexample x; _ }
      ->
      Box.mem x din && not (Box.mem_tol ~tol:1e-6 (Cv_nn.Network.eval net x) dout)
    | _ -> true)
  | Cert.Lp_infeasible _ | Cert.Lp_min_at_least _ | Cert.Milp_min_at_least _
    ->
    (* LP-level claims have no cheap independent oracle here; the unit
       suite cross-checks them against the solver. *)
    true

let assert_valid_and_true rng ~what cert =
  incr checked;
  match Check.check cert with
  | Check.Invalid r -> fail ~why:(what ^ " rejected: " ^ r) cert
  | Check.Valid ->
    if not (sample_claim rng cert) then
      fail ~why:(what ^ ": Valid certificate with falsified claim") cert

(* ------------------------------------------------------------------ *)
(* JSON-level mutation attack                                          *)
(* ------------------------------------------------------------------ *)

(* Enumerate numeric leaves, then rewrite the [k]-th one. *)
let rec count_nums = function
  | Json.Num _ -> 1
  | Json.List l -> List.fold_left (fun a j -> a + count_nums j) 0 l
  | Json.Obj kvs -> List.fold_left (fun a (_, j) -> a + count_nums j) 0 kvs
  | _ -> 0

let mutate_num k f j =
  let n = ref k in
  let rec go j =
    match j with
    | Json.Num v ->
      decr n;
      if !n = -1 then Json.Num (f v) else j
    | Json.List l -> Json.List (List.map go l)
    | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, go v)) kvs)
    | _ -> j
  in
  go j

let perturbations =
  [| (fun v -> v +. 1.);
     (fun v -> v -. 1.);
     (fun v -> v *. 10.);
     (fun v -> -.v);
     (fun v -> v +. 1e-6);
     (fun v -> v -. 1e-6);
     (fun v -> v +. 1e9);
     (fun _ -> Float.nan);
     (fun _ -> Float.infinity);
     (fun v -> Float.succ v);
     (fun v -> Float.pred v) |]

let attack rng cert =
  let j = Cert.to_json cert in
  let total = count_nums j in
  if total > 0 then
    for _ = 1 to 12 do
      incr mutations_tried;
      let k = Rng.int rng total in
      let f = perturbations.(Rng.int rng (Array.length perturbations)) in
      let j' = mutate_num k f j in
      match Cert.of_json_result j' with
      | Error _ -> ()
      | Ok cert' -> (
        match Check.check cert' with
        | Check.Invalid _ -> ()
        | Check.Valid ->
          (* Mutations may land on slack — Valid is fine as long as the
             claim still holds against ground truth. *)
          incr mutations_valid;
          if not (sample_claim rng cert') then
            dump_failure ~why:"mutated certificate Valid but claim falsified"
              j')
    done

let expect_invalid ~what cert =
  incr checked;
  match Check.check cert with
  | Check.Invalid _ -> ()
  | Check.Valid -> fail ~why:(what ^ ": guaranteed corruption accepted") cert

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let random_net rng =
  let widths = [| 2; 3; 4; 5 |] in
  let depth = 1 + Rng.int rng 2 in
  let dims =
    List.init (depth + 2) (fun _ -> widths.(Rng.int rng (Array.length widths)))
  in
  Cv_nn.Network.random ~rng ~dims ~act:Cv_nn.Activation.Relu ()

let meta = ("certfuzz", "certfuzz", "v2:fuzz")

let round_network rng =
  let mode, solver, fingerprint = meta in
  let net = random_net rng in
  let d = Cv_nn.Network.in_dim net in
  let lo = Rng.float rng ~lo:(-2.) ~hi:0. in
  let hi = lo +. Rng.float rng ~lo:0.1 ~hi:2. in
  let din = Box.uniform d ~lo ~hi in
  let chain = Emit.chain_boxes net din in
  let final = chain.(Array.length chain - 1) in
  let margin = Rng.float rng ~lo:1e-3 ~hi:1. in
  let dout = Box.expand margin final in
  (match Emit.safe_cert ~mode ~solver ~fingerprint net ~din ~dout with
  | None -> dump_failure ~why:"safe emission failed on a provable box" (Json.Null)
  | Some cert ->
    assert_valid_and_true rng ~what:"safe" cert;
    attack rng cert;
    (* Targeted corruption: degenerate final chain box. *)
    (match cert.Cert.proof with
    | Cert.P_chain ch ->
      let ch = Array.copy ch in
      ch.(Array.length ch - 1) <- Box.point (Box.center ch.(Array.length ch - 1));
      expect_invalid ~what:"chain" { cert with Cert.proof = Cert.P_chain ch }
    | _ -> ());
    (* Reuse wrap. *)
    (match
       Emit.reuse_cert ~route:"prop3" ~proposition:"Proposition 3"
         ~slack:margin cert
     with
    | Some wrapped ->
      assert_valid_and_true rng ~what:"reuse" wrapped;
      (match wrapped.Cert.proof with
      | Cert.P_reuse { route; proposition; inner; slack = _ } ->
        expect_invalid ~what:"reuse"
          { wrapped with
            Cert.proof = Cert.P_reuse { route; proposition; slack = -1.; inner }
          }
      | _ -> ())
    | None -> dump_failure ~why:"reuse wrap failed" (Cert.to_json cert)));
  (* A falsifiable box: shrink the true sampled range, then certify the
     violation found by sampling. *)
  let rng2 = Rng.create (Rng.int rng 1_000_000) in
  let samples =
    Array.init 128 (fun _ ->
        let x = Box.sample rng2 din in
        (x, Cv_nn.Network.eval net x))
  in
  let outd = Cv_nn.Network.out_dim net in
  let slo = Array.make outd Float.infinity
  and shi = Array.make outd Float.neg_infinity in
  Array.iter
    (fun (_, y) ->
      Array.iteri
        (fun i v ->
          slo.(i) <- Float.min slo.(i) v;
          shi.(i) <- Float.max shi.(i) v)
        y)
    samples;
  let width = Array.mapi (fun i h -> h -. slo.(i)) shi in
  if Array.exists (fun w -> w > 1e-3) width then begin
    let dout =
      Box.of_bounds
        (Array.mapi (fun i l -> l +. (0.4 *. width.(i))) slo)
        (Array.mapi (fun i h -> h -. (0.4 *. width.(i))) shi)
    in
    match
      Array.find_opt
        (fun (_, y) -> not (Box.mem_tol ~tol:1e-9 y dout))
        samples
    with
    | Some (x, _) -> (
      let mode, solver, fingerprint = meta in
      match
        Emit.unsafe_cert ~mode ~solver ~fingerprint net ~din ~dout ~x
      with
      | None ->
        dump_failure ~why:"unsafe emission failed on a sampled violation"
          Json.Null
      | Some cert ->
        assert_valid_and_true rng ~what:"unsafe" cert;
        attack rng cert;
        expect_invalid ~what:"cex"
          { cert with
            Cert.proof =
              Cert.P_counterexample
                (Array.map (fun v -> v +. 1e6) (Box.upper din))
          })
    | None -> ()
  end

let random_lp rng =
  let p = Lp.create () in
  let nv = 2 + Rng.int rng 3 in
  let vars =
    Array.init nv (fun _ ->
        Lp.add_var p ~lo:0. ~hi:(Rng.float rng ~lo:1. ~hi:10.) ())
  in
  let nc = 1 + Rng.int rng 3 in
  for _ = 1 to nc do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.float rng ~lo:(-2.) ~hi:2., v)) vars)
    in
    let op = if Rng.bool rng then Lp.Le else Lp.Ge in
    Lp.add_constraint p terms op (Rng.float rng ~lo:(-3.) ~hi:3.)
  done;
  let obj =
    Array.to_list
      (Array.map (fun v -> (Rng.float rng ~lo:(-1.) ~hi:1., v)) vars)
  in
  Lp.set_objective p ~maximize:false obj;
  p

let round_lp rng =
  let mode, solver, fingerprint = meta in
  let p = random_lp rng in
  let compiled = Lp.compile p in
  match
    Lp_cert.lp_certificate ~mode ~solver ~fingerprint compiled
  with
  | None -> () (* stalled / unbounded / degenerate extraction: allowed *)
  | Some cert -> (
    incr checked;
    (match Check.check cert with
    | Check.Valid -> ()
    | Check.Invalid r -> fail ~why:("lp cert rejected: " ^ r) cert);
    attack rng cert;
    (* Solver cross-check: the certified bound must not exceed the
       solver's optimum by more than float noise. *)
    match (cert.Cert.claim, Lp.solve p) with
    | Cert.Lp_min_at_least (_, t), Lp.Optimal { objective; _ } ->
      if t > objective +. 1e-6 +. (1e-9 *. Float.abs objective) then
        fail ~why:"dual bound exceeds solver optimum" cert
    | Cert.Lp_infeasible _, Lp.Optimal _ ->
      fail ~why:"farkas certificate for a solver-feasible system" cert
    | _ -> ())

let () =
  let rng = Rng.create !seed in
  for _ = 1 to !rounds do
    if Rng.int rng 4 = 0 then round_lp rng else round_network rng
  done;
  Printf.printf
    "certfuzz: seed %d, %d rounds, %d certificates checked, %d/%d mutations stayed valid, %d failures\n%!"
    !seed !rounds !checked !mutations_valid !mutations_tried !failures;
  if !failures > 0 then exit 1
