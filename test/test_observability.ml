(* Tests for the PR-3 observability layer: exact metric counters on a
   tiny fixed network, determinism across runs, trace JSON round-trip
   through Cv_util.Json, and metric consistency under Parallel. *)

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let fig2_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.

let nonzero_counters () =
  List.filter (fun (_, v) -> v <> 0) (Cv_util.Metrics.counters ())

(* ------------------------------------------------------------------ *)
(* Exact counters on a tiny fixed network                              *)
(* ------------------------------------------------------------------ *)

(* The MILP check on the Fig. 2 network is fully deterministic: one
   containment query, one bound query per output side (2 MILP solves),
   each fathomed at the root after its LP relaxation. The exact values
   pin the accounting: an instrumentation regression (double counting,
   a missed increment) shifts them. *)
let test_exact_counters_milp () =
  let net = fig2_net () in
  let target = Cv_interval.Box.of_bounds [| -1. |] [| 12.5 |] in
  Cv_util.Metrics.reset ();
  (match
     Cv_verify.Containment.check Cv_verify.Containment.Milp net
       ~input_box:fig2_box ~target
   with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "MILP must prove the loose bound");
  let v name = Cv_util.Metrics.value (Cv_util.Metrics.counter name) in
  Alcotest.(check int) "verify.checks" 1 (v "verify.checks");
  Alcotest.(check int) "milp.solves" 2 (v "milp.solves");
  Alcotest.(check int) "milp.nodes" 2 (v "milp.nodes");
  Alcotest.(check int) "milp.fathomed" 2 (v "milp.fathomed");
  Alcotest.(check int) "lp.solves" 2 (v "lp.solves");
  Alcotest.(check bool) "lp.pivots recorded" true (v "lp.pivots" > 0);
  Alcotest.(check bool) "lp.iterations >= lp.pivots" true
    (v "lp.iterations" >= v "lp.pivots");
  Alcotest.(check bool) "milp seconds accumulated" true
    (Cv_util.Metrics.seconds (Cv_util.Metrics.timer "milp.seconds") >= 0.)

let test_counters_deterministic () =
  let net = fig2_net () in
  let target = Cv_interval.Box.of_bounds [| -1. |] [| 12.5 |] in
  let run () =
    Cv_util.Metrics.reset ();
    ignore
      (Cv_verify.Containment.check Cv_verify.Containment.Milp net
         ~input_box:fig2_box ~target);
    nonzero_counters ()
  in
  let first = run () in
  let second = run () in
  Alcotest.(check bool) "some counters recorded" true (first <> []);
  Alcotest.(check (list (pair string int))) "identical across runs" first second

let test_abstract_domain_counters () =
  let net = fig2_net () in
  let target = Cv_interval.Box.of_bounds [| -1. |] [| 20. |] in
  Cv_util.Metrics.reset ();
  ignore
    (Cv_verify.Containment.check
       (Cv_verify.Containment.Abstract Cv_domains.Analyzer.Symint)
       net ~input_box:fig2_box ~target);
  let v name = Cv_util.Metrics.value (Cv_util.Metrics.counter name) in
  Alcotest.(check int) "domains.symint.calls" 1 (v "domains.symint.calls");
  Alcotest.(check int) "domains.symint.layers" 2 (v "domains.symint.layers")

(* ------------------------------------------------------------------ *)
(* Metrics JSON + table                                                *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_roundtrip () =
  Cv_util.Metrics.reset ();
  Cv_util.Metrics.add (Cv_util.Metrics.counter "lp.pivots") 7;
  Cv_util.Metrics.add_seconds (Cv_util.Metrics.timer "lp.seconds") 0.25;
  let j = Cv_util.Metrics.to_json () in
  let j' = Cv_util.Json.parse (Cv_util.Json.to_string j) in
  Alcotest.(check int) "counter survives" 7
    Cv_util.Json.(to_int (member "lp.pivots" (member "counters" j')));
  Alcotest.(check (float 1e-9)) "timer survives" 0.25
    Cv_util.Json.(to_float (member "lp.seconds" (member "timers" j')));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let table = Cv_util.Metrics.table () in
  Alcotest.(check bool) "table groups by engine" true (contains table "[lp]");
  Cv_util.Metrics.reset ();
  Alcotest.(check string) "empty table after reset" "" (Cv_util.Metrics.table ())

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_json_roundtrip () =
  Cv_util.Trace.enable ();
  Cv_util.Trace.with_span "outer" ~attrs:[ ("engine", "milp") ] (fun () ->
      Cv_util.Trace.with_span "inner" (fun () ->
          Cv_util.Trace.add_attr "verdict" "proved"));
  Cv_util.Trace.disable ();
  let j = Cv_util.Trace.to_json () in
  let s = Cv_util.Json.to_string j in
  let j' = Cv_util.Json.parse s in
  Alcotest.(check string) "round-trips byte-identically" s
    (Cv_util.Json.to_string j');
  let open Cv_util.Json in
  let roots = to_list (member "trace" j') in
  Alcotest.(check int) "one root span" 1 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" (to_str (member "name" outer));
  Alcotest.(check string) "root attr" "milp"
    (to_str (member "engine" (member "attrs" outer)));
  let children = to_list (member "children" outer) in
  Alcotest.(check int) "one child" 1 (List.length children);
  let inner = List.hd children in
  Alcotest.(check string) "child name" "inner" (to_str (member "name" inner));
  Alcotest.(check string) "mid-flight attr" "proved"
    (to_str (member "verdict" (member "attrs" inner)));
  let dur j = to_float (member "dur_s" j) in
  Alcotest.(check bool) "child nested in parent duration" true
    (dur inner <= dur outer +. 1e-6)

let test_trace_disabled_is_transparent () =
  Cv_util.Trace.disable ();
  Alcotest.(check int) "with_span is the identity when off" 41
    (Cv_util.Trace.with_span "ghost" (fun () -> 41));
  (* add_attr with no span open must not raise. *)
  Cv_util.Trace.add_attr "k" "v"

let test_trace_end_to_end () =
  (* A real solver run under tracing: verify_graceful produces a
     verify_graceful root with one rung child per escalation step. *)
  let net = fig2_net () in
  let prop =
    Cv_verify.Property.make ~din:fig2_box
      ~dout:(Cv_interval.Box.of_bounds [| -1. |] [| 12.5 |])
  in
  Cv_util.Trace.enable ();
  ignore (Cv_verify.Verifier.verify_graceful net prop);
  Cv_util.Trace.disable ();
  let open Cv_util.Json in
  let roots = to_list (member "trace" (Cv_util.Trace.to_json ())) in
  let graceful =
    List.find
      (fun s -> to_str (member "name" s) = "verify_graceful")
      roots
  in
  let rungs =
    List.filter
      (fun s -> to_str (member "name" s) = "verify_graceful.rung")
      (to_list (member "children" graceful))
  in
  Alcotest.(check bool) "at least one rung recorded" true (rungs <> [])

(* ------------------------------------------------------------------ *)
(* Consistency under Parallel                                          *)
(* ------------------------------------------------------------------ *)

let test_metrics_parallel_consistency () =
  (* Counter increments from worker domains must not be lost: a
     revalidation sweep checks every leaf exactly once regardless of
     the number of domains. *)
  let net = fig2_net () in
  let tight = Cv_interval.Box.of_bounds [| -0.5 |] [| 6.5 |] in
  let cert =
    Option.get
      (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight)
  in
  let leaves = Cv_verify.Split_cert.num_leaves cert in
  let checked domains =
    Cv_util.Metrics.reset ();
    ignore (Cv_verify.Split_cert.revalidate_detailed ~domains cert net);
    Cv_util.Metrics.value (Cv_util.Metrics.counter "splitcert.leaves_checked")
  in
  Alcotest.(check int) "1 domain checks every leaf" leaves (checked 1);
  Alcotest.(check int) "4 domains check every leaf" leaves (checked 4)

let () =
  (* Metrics are process-global; keep other suites unaffected. *)
  let reset_after f () = Fun.protect ~finally:Cv_util.Metrics.reset f in
  Alcotest.run "observability"
    [ ( "counters",
        [ Alcotest.test_case "exact milp counters" `Quick
            (reset_after test_exact_counters_milp);
          Alcotest.test_case "deterministic across runs" `Quick
            (reset_after test_counters_deterministic);
          Alcotest.test_case "abstract domain counters" `Quick
            (reset_after test_abstract_domain_counters);
          Alcotest.test_case "json + table" `Quick
            (reset_after test_metrics_json_roundtrip) ] );
      ( "trace",
        [ Alcotest.test_case "json roundtrip" `Quick test_trace_json_roundtrip;
          Alcotest.test_case "disabled is transparent" `Quick
            test_trace_disabled_is_transparent;
          Alcotest.test_case "end to end" `Quick test_trace_end_to_end ] );
      ( "parallel",
        [ Alcotest.test_case "no lost increments" `Quick
            (reset_after test_metrics_parallel_consistency) ] ) ]
