(* Tests for the proof-certificate pipeline: outward interval arithmetic
   (Cv_cert.Ival), the trusted checker (Cv_cert.Check), emission
   (Cv_cert.Emit, Cv_lp.Lp_cert, Cv_milp.Cert_bridge), the JSON codec,
   and — the soundness backbone — one guaranteed-invalid corruption per
   certificate kind that the checker must reject. *)

module Box = Cv_interval.Box
module Interval = Cv_interval.Interval
module Cert = Cv_cert.Cert
module Check = Cv_cert.Check
module Emit = Cv_cert.Emit
module Ival = Cv_cert.Ival
module Lp = Cv_lp.Lp
module Lp_cert = Cv_lp.Lp_cert
module Json = Cv_util.Json

let meta ~mode = (mode, "test", "v2:test")

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let fig2_din = Box.uniform 2 ~lo:(-1.) ~hi:1.

let check_valid what = function
  | Some cert -> (
    match Check.check cert with
    | Check.Valid -> cert
    | Check.Invalid r -> Alcotest.failf "%s rejected: %s" what r)
  | None -> Alcotest.failf "%s: emission failed" what

let expect_invalid what cert =
  match Check.check cert with
  | Check.Invalid _ -> ()
  | Check.Valid -> Alcotest.failf "%s: corrupted certificate accepted" what

let roundtrip cert =
  match Cert.of_json_result (Json.parse (Json.to_string (Cert.to_json cert))) with
  | Ok c -> c
  | Error e -> Alcotest.failf "codec round-trip failed: %s" e

(* ------------------------------------------------------------------ *)
(* Outward arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_ival_outward () =
  let rng = Cv_util.Rng.create 7 in
  for _ = 1 to 200 do
    let n = 1 + Cv_util.Rng.int rng 8 in
    let a = Array.init n (fun _ -> Cv_util.Rng.float rng ~lo:(-2.) ~hi:2.) in
    let z = Array.init n (fun _ -> Cv_util.Rng.float rng ~lo:(-2.) ~hi:2.) in
    let exact = ref 0. in
    Array.iteri (fun i x -> exact := !exact +. (x *. z.(i))) a;
    Alcotest.(check bool) "dot_up above" true (Ival.dot_up a z >= !exact);
    Alcotest.(check bool) "dot_dn below" true (Ival.dot_dn a z <= !exact)
  done;
  (* Zero coefficients must neutralise infinities. *)
  let inf = [| Float.infinity |] and zero = [| 0. |] in
  Alcotest.(check (float 0.)) "0*inf up" 0. (Ival.dot_up zero inf);
  Alcotest.(check (float 0.)) "0*inf dn" 0. (Ival.dot_dn zero inf)

let test_ival_network_contains_eval () =
  let net = Gen.net3 11 in
  let din = Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let rng = Cv_util.Rng.create 3 in
  let chain = Emit.chain_boxes net din in
  let final = chain.(Array.length chain - 1) in
  for _ = 1 to 100 do
    let x = Box.sample rng din in
    let y = Cv_nn.Network.eval net x in
    Alcotest.(check bool) "eval inside outward chain" true
      (Box.mem y final)
  done

(* ------------------------------------------------------------------ *)
(* Chain / split / lipschitz / counterexample emission                 *)
(* ------------------------------------------------------------------ *)

let fig2_safe_cert ?max_depth ?max_leaves ~dout () =
  let mode, solver, fingerprint = meta ~mode:"verify" in
  Emit.safe_cert ?max_depth ?max_leaves ~mode ~solver ~fingerprint
    (fig2_net ()) ~din:fig2_din
    ~dout:(Box.of_bounds [| Float.neg_infinity |] [| dout |])

let test_chain_cert () =
  (* Interval arithmetic alone proves y ≤ 13 on fig2 (cf. the chaos
     suite's provable scenario). *)
  let cert = check_valid "chain" (fig2_safe_cert ~dout:13.1 ()) in
  Alcotest.(check string) "kind" "chain" (Cert.proof_kind cert.Cert.proof);
  ignore (check_valid "chain roundtrip" (Some (roundtrip cert)))

let test_split_cert () =
  (* y ≤ 9 needs case splitting: plain intervals give 12 on fig2. *)
  match fig2_safe_cert ~max_depth:0 ~dout:9. () with
  | Some _ -> Alcotest.fail "interval chain alone cannot prove y <= 9"
  | None ->
    let cert = check_valid "split" (fig2_safe_cert ~dout:9. ()) in
    Alcotest.(check string) "kind" "split" (Cert.proof_kind cert.Cert.proof);
    ignore (check_valid "split roundtrip" (Some (roundtrip cert)))

let test_lipschitz_cert () =
  let net = Gen.net3 5 in
  let old_din = Box.uniform 3 ~lo:0. ~hi:1. in
  let din = Box.expand 1e-4 old_din in
  let chain = Emit.chain_boxes net old_din in
  let dout = Box.expand 1.0 chain.(Array.length chain - 1) in
  let mode, solver, fingerprint = meta ~mode:"svudc" in
  let cert =
    check_valid "lipschitz"
      (Emit.lipschitz_cert ~mode ~solver ~fingerprint net ~old_din ~din ~dout)
  in
  Alcotest.(check string) "kind" "lipschitz" (Cert.proof_kind cert.Cert.proof);
  ignore (check_valid "lipschitz roundtrip" (Some (roundtrip cert)))

let test_counterexample_cert () =
  let net = fig2_net () in
  (* f(−1, 1) = 6 > 1, so [−1, 1] is violated at that input. *)
  let dout = Box.of_bounds [| -1. |] [| 1. |] in
  let mode, solver, fingerprint = meta ~mode:"verify" in
  let cert =
    check_valid "counterexample"
      (Emit.unsafe_cert ~mode ~solver ~fingerprint net ~din:fig2_din ~dout
         ~x:[| -1.; 1. |])
  in
  ignore (check_valid "cex roundtrip" (Some (roundtrip cert)));
  (* A point whose output is inside D_out must not certify. *)
  Alcotest.(check bool) "inside point refused" true
    (Emit.unsafe_cert ~mode ~solver ~fingerprint net ~din:fig2_din ~dout
       ~x:[| 0.; 0. |]
    = None)

let test_reuse_cert () =
  let cert = check_valid "chain" (fig2_safe_cert ~dout:13.1 ()) in
  let wrapped =
    check_valid "reuse"
      (Emit.reuse_cert ~route:"prop1" ~proposition:"Proposition 1" ~slack:0.1
         cert)
  in
  Alcotest.(check string) "kind" "reuse" (Cert.proof_kind wrapped.Cert.proof)

(* ------------------------------------------------------------------ *)
(* LP and MILP witnesses                                               *)
(* ------------------------------------------------------------------ *)

(* x + y ≤ 1 ∧ x + y ≥ 2 is infeasible. *)
let infeasible_problem () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lo:0. ~hi:10. ()
  and y = Lp.add_var p ~lo:0. ~hi:10. () in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Le 1.;
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Ge 2.;
  Lp.set_objective p ~maximize:false [ (1., x) ];
  p

(* min x + 2y s.t. x + y ≥ 1, bounds [0, 10]: optimum 1. *)
let feasible_problem () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lo:0. ~hi:10. ()
  and y = Lp.add_var p ~lo:0. ~hi:10. () in
  Lp.add_constraint p [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective p ~maximize:false [ (1., x); (2., y) ];
  p

let lp_cert_of problem ~mode =
  let compiled = Lp.compile problem in
  let mode, solver, fingerprint = meta ~mode in
  Lp_cert.lp_certificate ~mode ~solver ~fingerprint compiled

let test_lp_farkas_cert () =
  let cert = check_valid "farkas" (lp_cert_of (infeasible_problem ()) ~mode:"lp") in
  Alcotest.(check string) "kind" "farkas" (Cert.proof_kind cert.Cert.proof);
  ignore (check_valid "farkas roundtrip" (Some (roundtrip cert)))

let test_lp_dual_cert () =
  let cert = check_valid "dual" (lp_cert_of (feasible_problem ()) ~mode:"lp") in
  Alcotest.(check string) "kind" "dual" (Cert.proof_kind cert.Cert.proof);
  (match cert.Cert.claim with
  | Cert.Lp_min_at_least (_, t) ->
    Alcotest.(check bool) "bound near optimum" true (Float.abs (t -. 1.) < 1e-6)
  | _ -> Alcotest.fail "wrong claim");
  ignore (check_valid "dual roundtrip" (Some (roundtrip cert)))

(* min x + 2 b s.t. x ≥ 1.5 − 3 b, x ∈ [0, 10], b binary.
   b = 0 → min 1.5; b = 1 → min 2. MILP optimum 1.5, relaxation ≈ 1
   (fractional b), so the tree must branch. *)
let milp_compiled () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lo:0. ~hi:10. () in
  let b = Lp.add_var p ~lo:0. ~hi:1. () in
  Lp.add_constraint p [ (1., x); (3., b) ] Lp.Ge 1.5;
  Lp.set_objective p ~maximize:false [ (1., x); (2., b) ];
  (Lp.compile ~fixable:[ b ] p, [ b ])

let test_milp_tree_cert () =
  let compiled, binaries = milp_compiled () in
  let mode, solver, fingerprint = meta ~mode:"milp" in
  let cert =
    check_valid "milp-tree"
      (Lp_cert.milp_certificate ~mode ~solver ~fingerprint compiled ~binaries)
  in
  Alcotest.(check string) "kind" "milp-tree" (Cert.proof_kind cert.Cert.proof);
  (match cert.Cert.claim with
  | Cert.Milp_min_at_least { target; _ } ->
    Alcotest.(check bool) "proves the integral optimum" true
      (target > 1.4 && target <= 1.5)
  | _ -> Alcotest.fail "wrong claim");
  (match cert.Cert.proof with
  | Cert.P_milp_tree (Cert.Milp_branch _) -> ()
  | _ -> Alcotest.fail "expected a branching tree");
  ignore (check_valid "milp roundtrip" (Some (roundtrip cert)))

let test_milp_goals_cert () =
  let net = fig2_net () in
  let din = fig2_din in
  let dout = Box.of_bounds [| -0.5 |] [| 12.5 |] in
  let mode, solver, fingerprint = meta ~mode:"verify" in
  let cert =
    check_valid "milp-goals"
      (Cv_milp.Cert_bridge.safe_cert ~mode ~solver ~fingerprint net ~din
         ~dout)
  in
  Alcotest.(check string) "kind" "milp-goals" (Cert.proof_kind cert.Cert.proof);
  ignore (check_valid "goals roundtrip" (Some (roundtrip cert)))

(* ------------------------------------------------------------------ *)
(* Corruption rejection — one guaranteed-invalid mutation per kind     *)
(* ------------------------------------------------------------------ *)

let degenerate_last_box chain =
  let chain = Array.copy chain in
  let last = chain.(Array.length chain - 1) in
  let c = Box.center last in
  chain.(Array.length chain - 1) <- Box.point c;
  chain

let test_reject_chain () =
  let cert = check_valid "chain" (fig2_safe_cert ~dout:13.1 ()) in
  match cert.Cert.proof with
  | Cert.P_chain chain ->
    expect_invalid "chain"
      { cert with Cert.proof = Cert.P_chain (degenerate_last_box chain) }
  | _ -> Alcotest.fail "expected chain"

let test_reject_split () =
  let cert = check_valid "split" (fig2_safe_cert ~dout:9. ()) in
  match cert.Cert.proof with
  | Cert.P_split (Cert.Split_node { at; below; above; axis = _ }) ->
    expect_invalid "split axis"
      { cert with
        Cert.proof =
          Cert.P_split (Cert.Split_node { axis = 99; at; below; above })
      }
  | _ -> Alcotest.fail "expected split node"

let test_reject_lipschitz () =
  let net = Gen.net3 5 in
  let old_din = Box.uniform 3 ~lo:0. ~hi:1. in
  let din = Box.expand 1e-4 old_din in
  let chain = Emit.chain_boxes net old_din in
  let dout = Box.expand 1.0 chain.(Array.length chain - 1) in
  let mode, solver, fingerprint = meta ~mode:"svudc" in
  let cert =
    check_valid "lipschitz"
      (Emit.lipschitz_cert ~mode ~solver ~fingerprint net ~old_din ~din ~dout)
  in
  match cert.Cert.proof with
  | Cert.P_lipschitz { old_din; chain; lip; kappa } ->
    expect_invalid "lipschitz chain"
      { cert with
        Cert.proof =
          Cert.P_lipschitz
            { old_din; chain = degenerate_last_box chain; lip; kappa }
      }
  | _ -> Alcotest.fail "expected lipschitz"

let test_reject_counterexample () =
  let net = fig2_net () in
  let dout = Box.of_bounds [| -1. |] [| 1. |] in
  let mode, solver, fingerprint = meta ~mode:"verify" in
  let cert =
    check_valid "cex"
      (Emit.unsafe_cert ~mode ~solver ~fingerprint net ~din:fig2_din ~dout
         ~x:[| -1.; 1. |])
  in
  expect_invalid "cex outside din"
    { cert with Cert.proof = Cert.P_counterexample [| 7.; 0. |] }

let test_reject_farkas () =
  let cert = check_valid "farkas" (lp_cert_of (infeasible_problem ()) ~mode:"lp") in
  match cert.Cert.proof with
  | Cert.P_farkas z ->
    expect_invalid "farkas zeroed"
      { cert with Cert.proof = Cert.P_farkas (Array.map (fun _ -> 0.) z) }
  | _ -> Alcotest.fail "expected farkas"

let test_reject_dual () =
  let cert = check_valid "dual" (lp_cert_of (feasible_problem ()) ~mode:"lp") in
  match cert.Cert.proof with
  | Cert.P_dual { dual; bound } ->
    expect_invalid "dual bound inflated"
      { cert with
        Cert.proof = Cert.P_dual { dual; bound = bound +. 1e9 }
      }
  | _ -> Alcotest.fail "expected dual"

let test_reject_milp_tree () =
  let compiled, binaries = milp_compiled () in
  let mode, solver, fingerprint = meta ~mode:"milp" in
  let cert =
    check_valid "milp-tree"
      (Lp_cert.milp_certificate ~mode ~solver ~fingerprint compiled ~binaries)
  in
  match cert.Cert.claim with
  | Cert.Milp_min_at_least { lp; binaries; target } ->
    (* The feasible MILP has dual leaves, so an inflated target must
       break at least one of them. *)
    expect_invalid "milp target inflated"
      { cert with
        Cert.claim =
          Cert.Milp_min_at_least { lp; binaries; target = target +. 1e9 }
      }
  | _ -> Alcotest.fail "expected milp claim"

let test_reject_milp_goals () =
  let net = fig2_net () in
  let dout = Box.of_bounds [| -0.5 |] [| 12.5 |] in
  let mode, solver, fingerprint = meta ~mode:"verify" in
  let cert =
    check_valid "goals"
      (Cv_milp.Cert_bridge.safe_cert ~mode ~solver ~fingerprint net
         ~din:fig2_din ~dout)
  in
  match cert.Cert.proof with
  | Cert.P_milp_goals goals ->
    let tampered =
      List.map
        (fun (g : Cert.milp_goal) ->
          { g with Cert.mg_const = g.Cert.mg_const +. 1e9 })
        goals
    in
    expect_invalid "goal const shifted"
      { cert with Cert.proof = Cert.P_milp_goals tampered }
  | _ -> Alcotest.fail "expected goals"

let test_reject_reuse () =
  let cert = check_valid "chain" (fig2_safe_cert ~dout:13.1 ()) in
  let wrapped =
    check_valid "reuse"
      (Emit.reuse_cert ~route:"prop1" ~proposition:"Proposition 1" ~slack:0.1
         cert)
  in
  match wrapped.Cert.proof with
  | Cert.P_reuse { route; proposition; inner; slack = _ } ->
    expect_invalid "negative slack"
      { wrapped with
        Cert.proof = Cert.P_reuse { route; proposition; slack = -1.; inner }
      }
  | _ -> Alcotest.fail "expected reuse"

let test_reject_kind_mismatch () =
  let cert = check_valid "chain" (fig2_safe_cert ~dout:13.1 ()) in
  match (lp_cert_of (infeasible_problem ()) ~mode:"lp" : Cert.t option) with
  | Some lp ->
    expect_invalid "safety claim with farkas proof"
      { cert with Cert.proof = lp.Cert.proof }
  | None -> Alcotest.fail "farkas emission failed"

(* ------------------------------------------------------------------ *)
(* Acceptance-scale emission: the 32×256³×1 net                        *)
(* ------------------------------------------------------------------ *)

let test_big_net_chain () =
  let net = Gen.net_of 1 [ 32; 256; 256; 256; 1 ] in
  let din = Box.uniform 32 ~lo:(-1.) ~hi:1. in
  let chain = Emit.chain_boxes net din in
  let dout = Box.expand 1.0 chain.(Array.length chain - 1) in
  let mode, solver, fingerprint = meta ~mode:"verify" in
  let cert =
    check_valid "big chain"
      (Emit.safe_cert ~mode ~solver ~fingerprint net ~din ~dout)
  in
  (* And the codec survives ~770 boxes of 256 floats. *)
  ignore (check_valid "big roundtrip" (Some (roundtrip cert)))

let () =
  Alcotest.run "cert"
    [ ( "ival",
        [ Alcotest.test_case "outward dots" `Quick test_ival_outward;
          Alcotest.test_case "network enclosure" `Quick
            test_ival_network_contains_eval ] );
      ( "emit",
        [ Alcotest.test_case "chain" `Quick test_chain_cert;
          Alcotest.test_case "split" `Quick test_split_cert;
          Alcotest.test_case "lipschitz" `Quick test_lipschitz_cert;
          Alcotest.test_case "counterexample" `Quick test_counterexample_cert;
          Alcotest.test_case "reuse" `Quick test_reuse_cert ] );
      ( "lp",
        [ Alcotest.test_case "farkas" `Quick test_lp_farkas_cert;
          Alcotest.test_case "dual" `Quick test_lp_dual_cert;
          Alcotest.test_case "milp tree" `Quick test_milp_tree_cert;
          Alcotest.test_case "milp goals" `Quick test_milp_goals_cert ] );
      ( "reject",
        [ Alcotest.test_case "chain" `Quick test_reject_chain;
          Alcotest.test_case "split" `Quick test_reject_split;
          Alcotest.test_case "lipschitz" `Quick test_reject_lipschitz;
          Alcotest.test_case "counterexample" `Quick
            test_reject_counterexample;
          Alcotest.test_case "farkas" `Quick test_reject_farkas;
          Alcotest.test_case "dual" `Quick test_reject_dual;
          Alcotest.test_case "milp tree" `Quick test_reject_milp_tree;
          Alcotest.test_case "milp goals" `Quick test_reject_milp_goals;
          Alcotest.test_case "reuse" `Quick test_reject_reuse;
          Alcotest.test_case "kind mismatch" `Quick
            test_reject_kind_mismatch ] );
      ( "scale",
        [ Alcotest.test_case "32x256^3x1 chain" `Quick test_big_net_chain ] )
    ]
