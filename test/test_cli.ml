(* End-to-end smoke tests of the contiver CLI binary: generate →
   describe → verify → svudc → svbtv → diff, driving the executable the
   way a user would. *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec` it is the workspace root. *)
let exe =
  List.find_opt Sys.file_exists
    [ "../bin/contiver.exe"; "_build/default/bin/contiver.exe";
      "bin/contiver.exe" ]
  |> Option.value ~default:"../bin/contiver.exe"

let tmp_dir = Filename.concat (Filename.get_temp_dir_name ()) "contiver_cli_test"

let run args =
  let cmd = Filename.quote_command exe args ^ " > /dev/null 2>&1" in
  Sys.command cmd

(* Run and capture stdout, for asserting on the verdict line. *)
let run_out args =
  let out = Filename.temp_file "contiver_cli" ".out" in
  let cmd =
    Filename.quote_command exe args
    ^ " > " ^ Filename.quote out ^ " 2> /dev/null"
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let verdict_line text =
  String.split_on_char '\n' text
  |> List.find_opt (fun l -> String.length l > 8 && String.sub l 0 8 = "verdict:")
  |> Option.value ~default:"<no verdict line>"

let check_run ?(expect = 0) name args =
  Alcotest.(check int) name expect (run args)

let test_help () =
  check_run "--help" [ "--help" ];
  check_run "svudc --help" [ "svudc"; "--help" ]

let test_unknown_command () =
  Alcotest.(check bool) "nonzero exit" true (run [ "frobnicate" ] <> 0)

let test_generate_and_describe () =
  ignore (Sys.command ("rm -rf " ^ Filename.quote tmp_dir));
  check_run "generate" [ "generate"; "--out"; tmp_dir; "--seed"; "7" ];
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true
        (Sys.file_exists (Filename.concat tmp_dir f)))
    [ "head1.json"; "head5.json"; "property.json"; "din.json";
      "enlarged_din.json" ];
  check_run "describe" [ "describe"; "--model"; Filename.concat tmp_dir "head1.json" ]

let test_verify_and_reuse () =
  (* depends on test_generate_and_describe having populated tmp_dir *)
  let path f = Filename.concat tmp_dir f in
  check_run "verify (abstract)"
    [ "verify"; "--model"; path "head1.json"; "--property";
      path "property.json"; "--artifact"; path "proof.json" ];
  Alcotest.(check bool) "artifact written" true (Sys.file_exists (path "proof.json"));
  check_run "svudc"
    [ "svudc"; "--model"; path "head1.json"; "--artifact"; path "proof.json";
      "--new-din"; path "enlarged_din.json" ];
  check_run "svbtv"
    [ "svbtv"; "--old"; path "head1.json"; "--new"; path "head2.json";
      "--artifact"; path "proof.json"; "--new-din"; path "enlarged_din.json" ];
  check_run "diff"
    [ "diff"; "--old"; path "head1.json"; "--new"; path "head2.json";
      "--din"; path "din.json" ];
  check_run "suspects"
    [ "suspects"; "--model"; path "head1.json"; "--property";
      path "property.json" ];
  check_run "export-nnet"
    [ "export-nnet"; "--model"; path "head1.json"; "--din"; path "din.json";
      "--out"; path "head1.nnet" ];
  Alcotest.(check bool) "nnet written" true (Sys.file_exists (path "head1.nnet"));
  check_run "import-nnet"
    [ "import-nnet"; "--nnet"; path "head1.nnet"; "--out";
      path "head1_roundtrip.json" ];
  Alcotest.(check bool) "model written" true
    (Sys.file_exists (path "head1_roundtrip.json"))

let test_verify_rejects_missing_file () =
  Alcotest.(check bool) "missing model rejected" true
    (run [ "describe"; "--model"; "/nonexistent.json" ] <> 0)

(* The tentpole's end-to-end claim: SIGKILL a checkpointing exact run
   mid-search, resume from the snapshot, and get the identical
   verdict. *)
let test_kill_and_resume () =
  let path f = Filename.concat tmp_dir f in
  let verify_args artifact extra =
    [ "verify"; "--exact"; "--model"; path "head1.json"; "--property";
      path "property.json"; "--artifact"; path artifact ]
    @ extra
  in
  let code, text = run_out (verify_args "proof_exact.json" []) in
  Alcotest.(check int) "exact baseline exits 0" 0 code;
  let baseline = verdict_line text in
  Alcotest.(check bool) "baseline verdict found" true
    (baseline <> "<no verdict line>");
  (* Launch the same run with tight-cadence checkpointing, wait for the
     first snapshot to land, then SIGKILL it mid-search. *)
  let ck = path "ck.json" in
  if Sys.file_exists ck then Sys.remove ck;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    Array.of_list
      (exe
      :: verify_args "proof_killed.json"
           [ "--checkpoint"; ck; "--checkpoint-every"; "0.02" ])
  in
  let pid = Unix.create_process exe argv Unix.stdin dev_null dev_null in
  let deadline = Unix.gettimeofday () +. 30. in
  let rec wait_for_checkpoint () =
    if Sys.file_exists ck then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      (* Bail out early if the run finished before checkpointing. *)
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        Unix.sleepf 0.01;
        wait_for_checkpoint ()
      | _ -> Sys.file_exists ck
    end
  in
  let saw_checkpoint = wait_for_checkpoint () in
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  Unix.close dev_null;
  Alcotest.(check bool) "checkpoint written before the kill" true
    saw_checkpoint;
  (* Resume from the snapshot: identical verdict, exit 0. *)
  let code, text =
    run_out (verify_args "proof_resumed.json" [ "--resume-checkpoint"; ck ])
  in
  Alcotest.(check int) "resumed run exits 0" 0 code;
  Alcotest.(check string) "resumed verdict identical" baseline
    (verdict_line text);
  Alcotest.(check bool) "resumed run writes the proof artifact" true
    (Sys.file_exists (path "proof_resumed.json"))

let test_checkpoint_flag_validation () =
  let path f = Filename.concat tmp_dir f in
  (* Checkpointing without --exact is a usage error. *)
  Alcotest.(check bool) "--checkpoint without --exact rejected" true
    (run
       [ "verify"; "--model"; path "head1.json"; "--property";
         path "property.json"; "--artifact"; path "p.json"; "--checkpoint";
         path "ck2.json" ]
    <> 0);
  (* A verify checkpoint cannot resume an svudc run. *)
  Alcotest.(check bool) "wrong-kind resume rejected" true
    (run
       [ "svudc"; "--model"; path "head1.json"; "--artifact";
         path "proof.json"; "--new-din"; path "enlarged_din.json";
         "--resume-checkpoint"; path "ck.json" ]
    <> 0);
  (* A corrupt checkpoint is refused with a typed error, not resumed. *)
  let corrupt = path "ck_corrupt.json" in
  let oc = open_out corrupt in
  output_string oc "{\"format\":\"contiver-checkpoint\",\"version\":2";
  close_out oc;
  Alcotest.(check bool) "corrupt resume rejected" true
    (run
       [ "verify"; "--exact"; "--model"; path "head1.json"; "--property";
         path "property.json"; "--artifact"; path "p.json";
         "--resume-checkpoint"; corrupt ]
    <> 0)

let test_chaos_campaign () =
  check_run "chaos campaign is sound" [ "chaos"; "--seed"; "2"; "--rounds"; "3" ]

(* ------------------------------------------------------------------ *)
(* batch: golden-file check of the consolidated JSON report            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* Timings are the only nondeterministic members of the report: zero the
   numeric value after every "seconds"/"wall_seconds" key, byte-for-byte
   otherwise — so the golden comparison also pins the schema and the
   field order. *)
let normalize_report text =
  let n = String.length text in
  let buf = Buffer.create n in
  let starts k pos =
    pos + String.length k <= n && String.equal (String.sub text pos (String.length k)) k
  in
  let i = ref 0 in
  while !i < n do
    let key =
      List.find_opt (fun k -> starts k !i) [ "\"seconds\":"; "\"wall_seconds\":" ]
    in
    match key with
    | Some k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '0';
      i := !i + String.length k;
      while
        !i < n
        &&
        match text.[!i] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        incr i
      done
    | None ->
      Buffer.add_char buf text.[!i];
      incr i
  done;
  Buffer.contents buf

let golden_report =
  List.find_opt Sys.file_exists
    [ "golden/batch_report.golden.json"; "test/golden/batch_report.golden.json" ]

(* Covers every job mode, a deterministic cache hit (two identical
   verify queries share one chain build) and a poisoned entry (artifact
   from another network) that must crash alone. Depends on
   test_generate_and_describe and test_verify_and_reuse having
   populated tmp_dir. *)
let test_batch_golden () =
  let path f = Filename.concat tmp_dir f in
  let manifest = path "batch_manifest.json" in
  let oc = open_out manifest in
  output_string oc
    {|{"jobs":[
  {"id":"v1","mode":"verify","model":"head1.json","property":"property.json"},
  {"id":"v2","mode":"verify","model":"head1.json","property":"property.json"},
  {"id":"u1","mode":"svudc","model":"head1.json","artifact":"proof.json","new_din":"enlarged_din.json"},
  {"id":"b1","mode":"svbtv","old":"head1.json","new":"head2.json","artifact":"proof.json","new_din":"enlarged_din.json"},
  {"id":"poisoned","mode":"svudc","model":"head2.json","artifact":"proof.json","new_din":"enlarged_din.json"}
]}|};
  close_out oc;
  let report = path "batch_report.json" in
  let code =
    run [ "batch"; "--manifest"; manifest; "--jobs"; "2"; "--report"; report ]
  in
  (* The poisoned job makes the batch exit nonzero — while the other
     four still complete. *)
  Alcotest.(check int) "batch exit reflects crashed job" 1 code;
  let actual = normalize_report (read_file report) in
  match golden_report with
  | None -> Alcotest.fail "golden/batch_report.golden.json not found"
  | Some g ->
    Alcotest.(check string) "batch report matches golden" (read_file g) actual

(* Certificate emission on every mode, replayed through the trusted
   checker; plus the committed golden pair (a valid chain certificate
   and a tampered copy the checker must reject). Depends on
   test_generate_and_describe / test_verify_and_reuse. *)
let test_cert_emission_and_check () =
  let path f = Filename.concat tmp_dir f in
  let contains text needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  let check_valid name cert =
    Alcotest.(check bool) (name ^ " cert written") true (Sys.file_exists cert);
    let code, out = run_out [ "check"; cert ] in
    Alcotest.(check int) (name ^ " check exit") 0 code;
    Alcotest.(check bool) (name ^ " VALID") true (contains out "VALID")
  in
  check_run "verify --emit-cert"
    [ "verify"; "--model"; path "head1.json"; "--property";
      path "property.json"; "--artifact"; path "proof.json"; "--emit-cert";
      path "cert_verify.json" ];
  check_valid "verify" (path "cert_verify.json");
  check_run "svudc --emit-cert"
    [ "svudc"; "--model"; path "head1.json"; "--artifact"; path "proof.json";
      "--new-din"; path "enlarged_din.json"; "--emit-cert";
      path "cert_svudc.json" ];
  check_valid "svudc" (path "cert_svudc.json");
  check_run "svbtv --emit-cert"
    [ "svbtv"; "--old"; path "head1.json"; "--new"; path "head2.json";
      "--artifact"; path "proof.json"; "--new-din"; path "enlarged_din.json";
      "--emit-cert"; path "cert_svbtv.json" ];
  check_valid "svbtv" (path "cert_svbtv.json");
  (* batch: one cert per safe job, each one checker-valid *)
  let manifest = path "cert_batch_manifest.json" in
  let oc = open_out manifest in
  output_string oc
    {|{"jobs":[
  {"id":"cv","mode":"verify","model":"head1.json","property":"property.json"},
  {"id":"cu","mode":"svudc","model":"head1.json","artifact":"proof.json","new_din":"enlarged_din.json"},
  {"id":"cb","mode":"svbtv","old":"head1.json","new":"head2.json","artifact":"proof.json","new_din":"enlarged_din.json"}
]}|};
  close_out oc;
  check_run "batch --emit-certs"
    [ "batch"; "--manifest"; manifest; "--emit-certs"; path "certs" ];
  List.iter
    (fun id ->
      check_valid ("batch " ^ id)
        (Filename.concat (path "certs") (id ^ ".cert.json")))
    [ "cv"; "cu"; "cb" ];
  (* committed golden pair *)
  (match
     List.find_opt Sys.file_exists
       [ "golden/cert_chain.golden.json"; "test/golden/cert_chain.golden.json" ]
   with
  | None -> Alcotest.fail "golden/cert_chain.golden.json not found"
  | Some g ->
    check_valid "golden" g;
    let tampered =
      Filename.chop_suffix g "cert_chain.golden.json"
      ^ "cert_chain_tampered.golden.json"
    in
    let code, out = run_out [ "check"; tampered ] in
    Alcotest.(check int) "tampered golden exit" 1 code;
    Alcotest.(check bool) "tampered golden INVALID" true
      (contains out "INVALID"));
  (* malformed input is a hard error, not a verdict *)
  let junk = path "junk_cert.json" in
  let oc = open_out junk in
  output_string oc "{\"schema\": \"not-a-cert\"";
  close_out oc;
  Alcotest.(check bool) "malformed cert rejected" true (run [ "check"; junk ] <> 0)

(* Verdicts must not depend on the concurrency level (the CI
   batch-matrix job re-checks this across full runs). *)
let test_batch_jobs_invariance () =
  let path f = Filename.concat tmp_dir f in
  let manifest = path "batch_manifest.json" in
  let report_for jobs =
    let report = path (Printf.sprintf "batch_report_j%d.json" jobs) in
    ignore
      (run
         [ "batch"; "--manifest"; manifest; "--jobs"; string_of_int jobs;
           "--report"; report ]);
    normalize_report (read_file report)
  in
  let r1 = report_for 1 in
  Alcotest.(check string) "jobs=4 report identical" r1 (report_for 4)

let () =
  if not (Sys.file_exists exe) then begin
    print_endline "contiver binary not found; skipping CLI tests";
    exit 0
  end;
  Alcotest.run "cv_cli"
    [ ( "cli",
        [ Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "unknown command" `Quick test_unknown_command;
          Alcotest.test_case "generate+describe" `Quick
            test_generate_and_describe;
          Alcotest.test_case "verify+reuse" `Quick test_verify_and_reuse;
          Alcotest.test_case "missing file" `Quick
            test_verify_rejects_missing_file;
          Alcotest.test_case "kill and resume" `Quick test_kill_and_resume;
          Alcotest.test_case "checkpoint flag validation" `Quick
            test_checkpoint_flag_validation;
          Alcotest.test_case "chaos campaign" `Quick test_chaos_campaign;
          Alcotest.test_case "batch golden report" `Quick test_batch_golden;
          Alcotest.test_case "cert emission + check" `Quick
            test_cert_emission_and_check;
          Alcotest.test_case "batch jobs invariance" `Quick
            test_batch_jobs_invariance ] ) ]
