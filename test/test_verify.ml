(* Tests for Cv_verify: properties, falsification, containment engines,
   whole-property verification, exact range. *)

let check_float = Alcotest.(check (float 1e-5))

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let random_net seed dims =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims
    ~act:Cv_nn.Activation.Relu ()

let engines =
  [ Cv_verify.Containment.Abstract Cv_domains.Analyzer.Symint;
    Cv_verify.Containment.Symint_split 64;
    Cv_verify.Containment.Milp ]

(* ------------------------------------------------------------------ *)
(* Property                                                            *)
(* ------------------------------------------------------------------ *)

let test_property_basics () =
  let net = fig2_net () in
  let prop =
    Cv_verify.Property.make
      ~din:(Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.)
      ~dout:(Cv_interval.Box.of_bounds [| 0. |] [| 10. |])
  in
  Alcotest.(check bool) "well formed" true
    (Cv_verify.Property.well_formed prop net);
  Alcotest.(check bool) "holds at origin" true
    (Cv_verify.Property.holds_at prop net [| 0.; 0. |]);
  let enlarged =
    Cv_verify.Property.enlarge prop (Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1)
  in
  Alcotest.(check bool) "enlarged contains old" true
    (Cv_interval.Box.subset prop.Cv_verify.Property.din
       enlarged.Cv_verify.Property.din)

let test_property_json () =
  let prop =
    Cv_verify.Property.make
      ~din:(Cv_interval.Box.uniform 3 ~lo:(-2.) ~hi:2.)
      ~dout:(Cv_interval.Box.of_bounds [| -1. |] [| 1. |])
  in
  let prop' = Cv_verify.Property.of_json (Cv_verify.Property.to_json prop) in
  Alcotest.(check bool) "din" true
    (Cv_interval.Box.equal prop.Cv_verify.Property.din prop'.Cv_verify.Property.din);
  Alcotest.(check bool) "dout" true
    (Cv_interval.Box.equal prop.Cv_verify.Property.dout
       prop'.Cv_verify.Property.dout)

(* ------------------------------------------------------------------ *)
(* Falsify                                                             *)
(* ------------------------------------------------------------------ *)

let test_falsify_finds_obvious_violation () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  (* max n4 over this domain is 6 (at corners), so a bound of 3 is
     violated and sampling should find it. *)
  let dout = Cv_interval.Box.of_bounds [| -1. |] [| 3. |] in
  let rng = Cv_util.Rng.create 5 in
  match Cv_verify.Falsify.search ~rng net ~din ~dout () with
  | Some v ->
    Alcotest.(check bool) "margin positive" true (v.Cv_verify.Falsify.margin > 0.);
    Alcotest.(check bool) "witness in din" true
      (Cv_interval.Box.mem v.Cv_verify.Falsify.input din);
    Alcotest.(check bool) "output really violates" true
      (not (Cv_interval.Box.mem v.Cv_verify.Falsify.output dout))
  | None -> Alcotest.fail "should find a violation"

let test_falsify_none_on_safe () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let dout = Cv_interval.Box.of_bounds [| -1. |] [| 100. |] in
  let rng = Cv_util.Rng.create 5 in
  Alcotest.(check bool) "no violation" true
    (Cv_verify.Falsify.search ~rng net ~din ~dout () = None)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

(* All engines must prove a property with slack and reject (or at least
   not prove) one that a concrete counterexample kills. *)
let containment_engine_test engine () =
  let net = fig2_net () in
  let input_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let loose = Cv_interval.Box.of_bounds [| -1. |] [| 12.5 |] in
  (match Cv_verify.Containment.check engine net ~input_box ~target:loose with
  | Cv_verify.Containment.Proved -> ()
  | v ->
    Alcotest.failf "expected proof with %s, got %s"
      (Cv_verify.Containment.engine_name engine)
      (match v with
      | Cv_verify.Containment.Violated _ -> "violated"
      | Cv_verify.Containment.Unknown u ->
        "unknown: " ^ u.Cv_verify.Containment.message
      | _ -> "?"));
  let violated = Cv_interval.Box.of_bounds [| -1. |] [| 3. |] in
  match Cv_verify.Containment.check engine net ~input_box ~target:violated with
  | Cv_verify.Containment.Proved -> Alcotest.fail "must not prove a falsity"
  | Cv_verify.Containment.Violated v ->
    Alcotest.(check bool) "witness valid" true (v.Cv_verify.Falsify.margin > 0.)
  | Cv_verify.Containment.Unknown _ ->
    (* acceptable only for the one-shot abstract engine *)
    (match engine with
    | Cv_verify.Containment.Abstract _ -> ()
    | _ -> Alcotest.fail "complete engine must find the violation")

(* Exact engines prove the tight 6.2 bound that the abstract engine
   cannot (paper Fig. 1/2 insight). *)
let test_exact_beats_abstract () =
  let net = fig2_net () in
  let input_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let target = Cv_interval.Box.of_bounds [| -0.1 |] [| 6.3 |] in
  (match
     Cv_verify.Containment.check
       (Cv_verify.Containment.Abstract Cv_domains.Analyzer.Box) net ~input_box
       ~target
   with
  | Cv_verify.Containment.Unknown _ -> ()
  | _ -> Alcotest.fail "box abstraction should be too coarse for 6.3");
  match Cv_verify.Containment.check Cv_verify.Containment.Milp net ~input_box ~target with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "milp should prove the 6.3 bound"

let test_split_engine_refines () =
  (* Symint one-shot fails at 6.3 over the enlarged box, but splitting
     proves it. *)
  let net = fig2_net () in
  let input_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let target = Cv_interval.Box.of_bounds [| -0.1 |] [| 6.3 |] in
  match
    Cv_verify.Containment.check (Cv_verify.Containment.Symint_split 512) net
      ~input_box ~target
  with
  | Cv_verify.Containment.Proved -> ()
  | Cv_verify.Containment.Unknown u ->
    Alcotest.failf "split exhausted: %s" u.Cv_verify.Containment.message
  | Cv_verify.Containment.Violated _ -> Alcotest.fail "6.3 is not violated"

(* Agreement between complete engines on random instances. *)
let engines_agree_prop =
  QCheck.Test.make ~name:"milp and split agree on random containments"
    ~count:20
    QCheck.(pair (int_range 1 1000) (float_range 0.3 2.))
    (fun (seed, margin) ->
      let net = random_net seed [ 2; 5; 4; 1 ] in
      let input_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
      (* Target around the sampled reach scaled by margin. *)
      let rng = Cv_util.Rng.create (seed + 1) in
      let lo = ref Float.infinity and hi = ref Float.neg_infinity in
      for _ = 1 to 200 do
        let y = (Cv_nn.Network.eval net (Cv_interval.Box.sample rng input_box)).(0) in
        lo := Float.min !lo y;
        hi := Float.max !hi y
      done;
      let c = 0.5 *. (!lo +. !hi) and r = 0.5 *. (!hi -. !lo) in
      let target =
        Cv_interval.Box.of_bounds
          [| c -. (r *. margin) -. 1e-6 |]
          [| c +. (r *. margin) +. 1e-6 |]
      in
      let vm =
        Cv_verify.Containment.check Cv_verify.Containment.Milp net ~input_box
          ~target
      in
      let vs =
        Cv_verify.Containment.check (Cv_verify.Containment.Symint_split 4096)
          net ~input_box ~target
      in
      match (vm, vs) with
      | Cv_verify.Containment.Proved, Cv_verify.Containment.Proved -> true
      | Cv_verify.Containment.Violated _, Cv_verify.Containment.Violated _ ->
        true
      | Cv_verify.Containment.Unknown _, _ | _, Cv_verify.Containment.Unknown _
        ->
        true (* budget exhaustion is allowed, disagreement is not *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Verifier + Range                                                    *)
(* ------------------------------------------------------------------ *)

let test_verifier_with_abstractions () =
  let net = fig2_net () in
  let prop =
    Cv_verify.Property.make
      ~din:(Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.)
      ~dout:(Cv_interval.Box.of_bounds [| -1. |] [| 12.5 |])
  in
  let r = Cv_verify.Verifier.verify_with_abstractions net prop in
  (match r.Cv_verify.Verifier.report.Cv_verify.Verifier.verdict with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "should prove");
  match r.Cv_verify.Verifier.abstractions with
  | Some s ->
    Alcotest.(check int) "chain length" 2 (Array.length s);
    Alcotest.(check bool) "S_n within dout" true
      (Cv_interval.Box.subset_tol s.(1) prop.Cv_verify.Property.dout)
  | None -> Alcotest.fail "abstract proof should produce the chain"

let test_verifier_fallback_engine () =
  (* Tight property: abstractions fail, MILP fallback proves. *)
  let net = fig2_net () in
  let prop =
    Cv_verify.Property.make
      ~din:(Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.)
      ~dout:(Cv_interval.Box.of_bounds [| -0.1 |] [| 6.1 |])
  in
  let r = Cv_verify.Verifier.verify_with_abstractions net prop in
  (match r.Cv_verify.Verifier.report.Cv_verify.Verifier.verdict with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "milp fallback should prove 6.1 over [-1,1]^2");
  Alcotest.(check bool) "no chain artifact from fallback" true
    (r.Cv_verify.Verifier.abstractions = None)

let test_exact_range_fig2 () =
  let net = fig2_net () in
  let r =
    Cv_verify.Range.exact_range net
      ~din:(Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1)
  in
  check_float "max 6.2" 6.2 (Cv_interval.Interval.hi (Cv_interval.Box.get r.Cv_verify.Range.range 0));
  check_float "min 0" 0. (Cv_interval.Interval.lo (Cv_interval.Box.get r.Cv_verify.Range.range 0))

let test_verify_exact_verdicts () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let safe = Cv_verify.Property.make ~din ~dout:(Cv_interval.Box.of_bounds [| -0.5 |] [| 6.5 |]) in
  (match Cv_verify.Range.verify_exact net safe with
  | Cv_verify.Containment.Proved, _ -> ()
  | _ -> Alcotest.fail "should prove");
  let unsafe = Cv_verify.Property.make ~din ~dout:(Cv_interval.Box.of_bounds [| -0.5 |] [| 3. |]) in
  match Cv_verify.Range.verify_exact net unsafe with
  | Cv_verify.Containment.Violated _, _ -> ()
  | _ -> Alcotest.fail "should find violation"


(* ------------------------------------------------------------------ *)
(* Backward analysis                                                   *)
(* ------------------------------------------------------------------ *)

let test_backward_proves_loose () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let dout = Cv_interval.Box.of_bounds [| -1. |] [| 13. |] in
  let suspects = Cv_verify.Backward.suspect_regions net ~din ~dout in
  Alcotest.(check bool) "all safe" true (Cv_verify.Backward.all_safe suspects);
  Alcotest.(check (float 1e-9)) "volume 0" 0.
    (Cv_verify.Backward.total_suspect_volume ~din suspects)

let test_backward_suspects_cover_violations () =
  (* Every concrete violator found by sampling must lie inside some
     suspect region for its side. *)
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let dout = Cv_interval.Box.of_bounds [| -1. |] [| 4. |] in
  let suspects = Cv_verify.Backward.suspect_regions net ~din ~dout in
  Alcotest.(check bool) "not all safe" false
    (Cv_verify.Backward.all_safe suspects);
  let rng = Cv_util.Rng.create 3 in
  for _ = 1 to 3000 do
    let x = Cv_interval.Box.sample rng din in
    let y = (Cv_nn.Network.eval net x).(0) in
    if y > 4. then begin
      let covered =
        List.exists
          (fun s ->
            s.Cv_verify.Backward.side = `Upper
            && match s.Cv_verify.Backward.region with
               | Some r -> Cv_interval.Box.mem_tol ~tol:1e-6 x r
               | None -> false)
          suspects
      in
      Alcotest.(check bool) "violator covered" true covered
    end
  done

let test_backward_respects_infinite_bounds () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let dout =
    Cv_interval.Box.make [| Cv_interval.Interval.make (-0.5) Float.infinity |]
  in
  let suspects = Cv_verify.Backward.suspect_regions net ~din ~dout in
  (* only the lower side is checked; the ReLU output is >= 0 > -0.5, so
     the violation constraint y <= -0.5 is LP-infeasible *)
  Alcotest.(check int) "one side only" 1 (List.length suspects);
  Alcotest.(check bool) "lower safe" true (Cv_verify.Backward.all_safe suspects)

let () =
  let containment_cases =
    List.map
      (fun e ->
        Alcotest.test_case
          ("engine " ^ Cv_verify.Containment.engine_name e)
          `Quick (containment_engine_test e))
      engines
  in
  Alcotest.run "cv_verify"
    [ ( "property",
        [ Alcotest.test_case "basics" `Quick test_property_basics;
          Alcotest.test_case "json" `Quick test_property_json ] );
      ( "falsify",
        [ Alcotest.test_case "finds violation" `Quick
            test_falsify_finds_obvious_violation;
          Alcotest.test_case "none on safe" `Quick test_falsify_none_on_safe ] );
      ( "containment",
        containment_cases
        @ [ Alcotest.test_case "exact beats abstract (fig 1/2)" `Quick
              test_exact_beats_abstract;
            Alcotest.test_case "split refines" `Quick test_split_engine_refines;
            QCheck_alcotest.to_alcotest engines_agree_prop ] );
      ( "backward",
        [ Alcotest.test_case "proves loose" `Quick test_backward_proves_loose;
          Alcotest.test_case "suspects cover violators" `Quick
            test_backward_suspects_cover_violations;
          Alcotest.test_case "infinite bounds" `Quick
            test_backward_respects_infinite_bounds ] );
      ( "verifier+range",
        [ Alcotest.test_case "abstraction proof" `Quick
            test_verifier_with_abstractions;
          Alcotest.test_case "fallback proof" `Quick
            test_verifier_fallback_engine;
          Alcotest.test_case "exact range fig2" `Quick test_exact_range_fig2;
          Alcotest.test_case "verify_exact verdicts" `Quick
            test_verify_exact_verdicts ] ) ]
