(* Equivalence and allocation tests for the PR 9 kernel layer: blocked
   / parallel / workspace kernels against naive reference
   implementations, sign-split fidelity at ±0.0 and subnormals,
   flat-store zonotopes against the historical row-array semantics, and
   the steady-state allocation guarantee behind [kernel.bytes_alloc]. *)

module Mat = Cv_linalg.Mat
module Workspace = Cv_linalg.Workspace

(* ------------------------------------------------------------------ *)
(* Naive references (the exact historical accumulation orders).        *)

let ref_matmul a b =
  let m = Mat.rows a and k = Mat.cols a and n = Mat.cols b in
  let c = Mat.zeros m n in
  for i = 0 to m - 1 do
    for t = 0 to k - 1 do
      let aik = Mat.get a i t in
      if aik <> 0. then
        for j = 0 to n - 1 do
          Mat.set c i j (Mat.get c i j +. (aik *. Mat.get b t j))
        done
    done
  done;
  c

let ref_matvec m v =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref 0. in
      for j = 0 to Mat.cols m - 1 do
        acc := !acc +. (Mat.get m i j *. v.(j))
      done;
      !acc)

(* Same selection and same per-element k-ascending order as the fused
   kernel claims. *)
let ref_gemm_select a pos_src neg_src =
  let m = Mat.rows a and k = Mat.cols a and n = Mat.cols pos_src in
  let c = Mat.zeros m n in
  for i = 0 to m - 1 do
    for t = 0 to k - 1 do
      let aik = Mat.get a i t in
      if aik <> 0. then begin
        let src = if aik > 0. then pos_src else neg_src in
        for j = 0 to n - 1 do
          Mat.set c i j (Mat.get c i j +. (aik *. Mat.get src t j))
        done
      end
    done
  done;
  c

let ref_gemv_select a ~pos ~neg ~acc =
  Array.init (Mat.rows a) (fun i ->
      let s = ref acc.(i) in
      for j = 0 to Mat.cols a - 1 do
        let aij = Mat.get a i j in
        if aij > 0. then s := !s +. (aij *. pos.(j))
        else if aij < 0. then s := !s +. (aij *. neg.(j))
      done;
      !s)

(* Bitwise float equality (distinguishes nothing we care about less
   than: NaN never appears in these tests, ±0.0 compare equal under
   [=] which is exactly the visibility the domains have). *)
let mat_eq a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if not (Mat.get a i j = Mat.get b i j) then ok := false
    done
  done;
  !ok

let vec_eq a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let bits_eq a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        Int64.bits_of_float (Mat.get a i j)
        <> Int64.bits_of_float (Mat.get b i j)
      then ok := false
    done
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Generators: shapes off the block boundaries, including degenerate
   ones; entries with exact zeros, signed zeros and subnormals mixed
   into ordinary magnitudes. *)

let shape_gen = Gen.shape_gen

let mat_gen = Gen.mat_gen

let vec_gen = Gen.vec_gen

let matmul_args =
  QCheck.make
    QCheck.Gen.(
      shape_gen >>= fun m ->
      shape_gen >>= fun k ->
      shape_gen >>= fun n ->
      mat_gen m k >>= fun a ->
      mat_gen k n >>= fun b -> return (a, b))

let matmul_matches_naive =
  QCheck.Test.make ~name:"blocked matmul = naive reference" ~count:150
    matmul_args
    (fun (a, b) -> mat_eq (Mat.matmul a b) (ref_matmul a b))

let matmul_into_workspace =
  QCheck.Test.make ~name:"matmul_into workspace dst = matmul" ~count:100
    matmul_args
    (fun (a, b) ->
      let ws = Workspace.create () in
      let dst = Workspace.mat ws ~slot:0 ~rows:(Mat.rows a) ~cols:(Mat.cols b) in
      Mat.matmul_into ~dst a b;
      mat_eq dst (Mat.matmul a b))

let matvec_matches_naive =
  QCheck.Test.make ~name:"matvec = naive reference" ~count:150
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun m ->
         shape_gen >>= fun n ->
         mat_gen m n >>= fun a ->
         vec_gen n >>= fun v -> return (a, v)))
    (fun (a, v) -> vec_eq (Mat.matvec a v) (ref_matvec a v))

let transb_args =
  QCheck.make
    QCheck.Gen.(
      shape_gen >>= fun m ->
      shape_gen >>= fun k ->
      shape_gen >>= fun n ->
      mat_gen m k >>= fun a ->
      mat_gen n k >>= fun b -> return (a, b))

let transb_matches_matvec_rows =
  QCheck.Test.make
    ~name:"matmul_transb row i = matvec over b rows (ascending, no skip)"
    ~count:100 transb_args
    (fun (a, b) ->
      (* a: m×k, b: n×k. Row i of a·bᵀ must be the per-row
         single-accumulator dot products the old zonotope affine
         computed. *)
      let c = Mat.matmul_transb a b in
      let ok = ref (Mat.rows c = Mat.rows a && Mat.cols c = Mat.rows b) in
      for i = 0 to Mat.rows a - 1 do
        let expect = ref_matvec b (Mat.row a i) in
        for j = 0 to Mat.rows b - 1 do
          if Int64.bits_of_float (Mat.get c i j)
             <> Int64.bits_of_float expect.(j)
          then ok := false
        done
      done;
      !ok)

let gemm_select_matches_naive =
  QCheck.Test.make ~name:"gemm_select_into = naive select reference"
    ~count:150 matmul_args
    (fun (a, pos_src) ->
      let neg_src = Mat.map (fun x -> -.x) pos_src in
      let dst = Mat.zeros (Mat.rows a) (Mat.cols pos_src) in
      Mat.gemm_select_into ~dst a ~pos_src ~neg_src;
      mat_eq dst (ref_gemm_select a pos_src neg_src))

let gemv_select_matches_naive =
  QCheck.Test.make ~name:"gemv_select_acc = naive select reference" ~count:150
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun m ->
         shape_gen >>= fun n ->
         mat_gen m n >>= fun a ->
         vec_gen n >>= fun pos ->
         vec_gen n >>= fun neg ->
         vec_gen m >>= fun acc -> return (a, pos, neg, acc)))
    (fun (a, pos, neg, acc) ->
      let expect = ref_gemv_select a ~pos ~neg ~acc in
      let got = Array.copy acc in
      Mat.gemv_select_acc a ~pos ~neg ~acc:got;
      vec_eq got expect)

(* gemv_posneg over a prepared sign split must agree with the
   branch-per-entry interval gemv on finite boxes — including weights
   that are ±0.0 or subnormal. *)
let posneg_matches_interval =
  QCheck.Test.make ~name:"gemv_posneg = gemv_interval_into (finite boxes)"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun m ->
         shape_gen >>= fun n ->
         mat_gen m n >>= fun w ->
         vec_gen m >>= fun bias ->
         vec_gen n >>= fun c ->
         vec_gen n >>= fun r -> return (w, bias, c, r)))
    (fun (w, bias, c, r) ->
      let n = Mat.cols w and m = Mat.rows w in
      let lo = Array.init n (fun j -> c.(j) -. Float.abs r.(j)) in
      let hi = Array.init n (fun j -> c.(j) +. Float.abs r.(j)) in
      let pos = Mat.map (fun x -> if x > 0. then x else 0.) w in
      let neg = Mat.map (fun x -> if x < 0. then x else 0.) w in
      let lo1 = Array.make m 0. and hi1 = Array.make m 0. in
      let lo2 = Array.make m 0. and hi2 = Array.make m 0. in
      Mat.gemv_interval_into w ~bias ~lo ~hi ~dst_lo:lo1 ~dst_hi:hi1;
      Mat.gemv_posneg ~pos ~neg ~bias ~lo ~hi ~dst_lo:lo2 ~dst_hi:hi2;
      let tol = 1e-9 in
      let close a b = Float.abs (a -. b) <= tol *. (1. +. Float.abs a) in
      Array.for_all2 close lo1 lo2 && Array.for_all2 close hi1 hi2)

(* The prepared split never loses or duplicates mass: pos + neg
   recombines to the weight value, pos ≥ 0, neg ≤ 0, entrywise — with
   ±0.0 landing as +0.0 in both parts (strict comparisons). *)
let prepare_split_sound =
  QCheck.Test.make ~name:"Layer.prepare split: pos + neg = w, signs clean"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         QCheck.Gen.oneofl [ 1; 2; 3; 5; 9; 17 ] >>= fun m ->
         QCheck.Gen.oneofl [ 1; 2; 3; 5; 9; 17 ] >>= fun n ->
         mat_gen m n >>= fun w -> vec_gen m >>= fun b -> return (w, b)))
    (fun (w, b) ->
      let l = Cv_nn.Layer.make w b Cv_nn.Activation.Relu in
      let p = Cv_nn.Layer.prepare l in
      let ok = ref true in
      for i = 0 to Mat.rows w - 1 do
        for j = 0 to Mat.cols w - 1 do
          let x = Mat.get w i j in
          let pp = Mat.get p.Cv_nn.Layer.w_pos i j in
          let nn = Mat.get p.Cv_nn.Layer.w_neg i j in
          if not (pp >= 0. && nn <= 0. && pp +. nn = x) then ok := false;
          if x = 0. && Int64.bits_of_float pp <> 0L then ok := false;
          if Mat.get p.Cv_nn.Layer.wt j i <> x then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Parallel determinism: the row-blocked parallel gemm must be bitwise
   identical at any worker count (disjoint output rows, unchanged
   per-element order). Shapes exceed the parallel work threshold. *)

let test_parallel_determinism () =
  let rng = Cv_util.Rng.create 42 in
  let a = Mat.random ~rng 130 128 ~lo:(-1.) ~hi:1. in
  let b = Mat.random ~rng 128 129 ~lo:(-1.) ~hi:1. in
  let saved = Mat.parallel_domains () in
  Fun.protect
    ~finally:(fun () -> Mat.set_parallel_domains saved)
    (fun () ->
      Mat.set_parallel_domains 1;
      let c1 = Mat.matmul a b in
      Alcotest.(check bool) "seq = naive" true (bits_eq c1 (ref_matmul a b));
      List.iter
        (fun d ->
          Mat.set_parallel_domains d;
          let cd = Mat.matmul a b in
          Alcotest.(check bool)
            (Printf.sprintf "domains=%d bitwise equal" d)
            true (bits_eq c1 cd);
          let cexp = Mat.matmul ~domains:d a b in
          Alcotest.(check bool)
            (Printf.sprintf "~domains:%d bitwise equal" d)
            true (bits_eq c1 cexp))
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Workspace semantics.                                                *)

let test_workspace_reuse () =
  let ws = Workspace.create () in
  let m1 = Workspace.mat ws ~slot:0 ~rows:4 ~cols:5 in
  Mat.set m1 2 3 42.;
  let m2 = Workspace.mat ws ~slot:0 ~rows:4 ~cols:5 in
  Alcotest.(check bool) "same slot+shape: same buffer" true (m1 == m2);
  Alcotest.(check (float 0.)) "contents preserved" 42. (Mat.get m2 2 3);
  let other = Workspace.mat ws ~slot:1 ~rows:4 ~cols:5 in
  Alcotest.(check bool) "different slot: distinct" true (not (m1 == other));
  let wide = Workspace.mat ws ~slot:0 ~rows:4 ~cols:6 in
  Alcotest.(check bool) "different shape: distinct" true (not (m1 == wide));
  let m3 = Workspace.mat ws ~slot:0 ~rows:4 ~cols:5 in
  Alcotest.(check bool) "shape cached per slot" true (m1 == m3);
  let v1 = Workspace.vec ws ~slot:0 7 in
  v1.(0) <- 1.;
  let v2 = Workspace.vec ws ~slot:0 7 in
  Alcotest.(check bool) "vec reuse" true (v1 == v2);
  Workspace.reset ws;
  let m4 = Workspace.mat ws ~slot:0 ~rows:4 ~cols:5 in
  Alcotest.(check bool) "reset drops buffers" true (not (m1 == m4))

(* ------------------------------------------------------------------ *)
(* Flat zonotope store vs the historical row-array semantics.          *)

(* Minimal row-array zonotope (the pre-PR representation), enough to
   cross an affine + ReLU layer. *)
let rows_of_box b =
  let n = Cv_interval.Box.dim b in
  let center =
    Array.init n (fun i -> Cv_interval.Interval.center (Cv_interval.Box.get b i))
  in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    let r = Cv_interval.Interval.radius (Cv_interval.Box.get b i) in
    if r > 0. then begin
      let g = Array.make n 0. in
      g.(i) <- r;
      gens := g :: !gens
    end
  done;
  (center, Array.of_list !gens)

let rows_to_box (center, gens) =
  Array.init (Array.length center) (fun i ->
      let d =
        Array.fold_left (fun acc g -> acc +. Float.abs g.(i)) 0. gens
      in
      Cv_interval.Interval.make (center.(i) -. d) (center.(i) +. d))

let rows_affine w bias (center, gens) =
  ( Mat.matvec_add w center bias,
    Array.map (fun g -> Mat.matvec w g) gens )

let rows_relu (center, gens) =
  let n = Array.length center in
  let box = rows_to_box (center, gens) in
  let center = Array.copy center in
  let gens = Array.map Array.copy gens in
  let fresh = ref [] in
  for i = 0 to n - 1 do
    let iv = box.(i) in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if u <= 0. then begin
      center.(i) <- 0.;
      Array.iter (fun g -> g.(i) <- 0.) gens
    end
    else if l < 0. then begin
      let lambda = u /. (u -. l) in
      let mu = -.lambda *. l /. 2. in
      center.(i) <- (lambda *. center.(i)) +. mu;
      Array.iter (fun g -> g.(i) <- lambda *. g.(i)) gens;
      let g = Array.make n 0. in
      g.(i) <- mu;
      fresh := g :: !fresh
    end
  done;
  (center, Array.append gens (Array.of_list !fresh))

let zonotope_flat_matches_rows =
  QCheck.Test.make ~name:"flat zonotope = row-array reference through layers"
    ~count:80
    (QCheck.make
       QCheck.Gen.(
         QCheck.Gen.oneofl [ 1; 2; 3; 5; 9 ] >>= fun d_in ->
         QCheck.Gen.oneofl [ 1; 2; 3; 5; 9 ] >>= fun d_mid ->
         QCheck.Gen.oneofl [ 1; 2; 3; 5 ] >>= fun d_out ->
         QCheck.Gen.int_range 0 10000 >>= fun seed ->
         return (d_in, d_mid, d_out, seed)))
    (fun (d_in, d_mid, d_out, seed) ->
      let rng = Cv_util.Rng.create seed in
      let net =
        Cv_nn.Network.random ~rng
          ~dims:[ d_in; d_mid; d_out ]
          ~act:Cv_nn.Activation.Relu ()
      in
      let din = Cv_interval.Box.uniform d_in ~lo:(-1.) ~hi:1. in
      let flat =
        Cv_domains.Zonotope.to_box
          (Array.fold_left
             (fun z l -> Cv_domains.Zonotope.apply_layer l z)
             (Cv_domains.Zonotope.of_box din)
             (Cv_nn.Network.layers net))
      in
      let reference =
        rows_to_box
          (Array.fold_left
             (fun z (l : Cv_nn.Layer.t) ->
               let pre =
                 rows_affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias z
               in
               match l.Cv_nn.Layer.act with
               | Cv_nn.Activation.Relu -> rows_relu pre
               | _ -> pre)
             (rows_of_box din)
             (Cv_nn.Network.layers net))
      in
      let ok =
        Array.for_all2
          (fun a b ->
            Cv_interval.Interval.lo a = Cv_interval.Interval.lo b
            && Cv_interval.Interval.hi a = Cv_interval.Interval.hi b)
          flat reference
      in
      if not ok then begin
        Printf.eprintf "MISMATCH dims=%d,%d,%d seed=%d\n" d_in d_mid d_out seed;
        Array.iteri
          (fun i a ->
            let b = reference.(i) in
            Printf.eprintf "  [%d] flat [%.17g, %.17g] ref [%.17g, %.17g]\n" i
              (Cv_interval.Interval.lo a) (Cv_interval.Interval.hi a)
              (Cv_interval.Interval.lo b) (Cv_interval.Interval.hi b))
          flat
      end;
      ok)

(* ------------------------------------------------------------------ *)
(* Steady-state allocation: the workspace-backed kernel loop must not
   allocate once buffers exist, and a whole box propagation must charge
   a flat per-call amount to [kernel.bytes_alloc]. *)

let test_kernel_loop_alloc_free () =
  let rng = Cv_util.Rng.create 7 in
  (* Small enough to stay under the metrics-timing work threshold, so
     the loop body is pure kernel. *)
  let a = Mat.random ~rng 16 16 ~lo:(-1.) ~hi:1. in
  let b = Mat.random ~rng 16 16 ~lo:(-1.) ~hi:1. in
  let ws = Workspace.create () in
  let iter () =
    let dst = Workspace.mat ws ~slot:0 ~rows:16 ~cols:16 in
    Mat.matmul_into ~dst a b
  in
  for _ = 1 to 10 do
    iter ()
  done;
  let b0 = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    iter ()
  done;
  let per_iter = (Gc.allocated_bytes () -. b0) /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "steady state allocates ~0 B/iter (got %.1f)" per_iter)
    true (per_iter < 16.)

let test_bytes_alloc_gauge_flat () =
  let rng = Cv_util.Rng.create 9 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 8; 32; 32; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let din = Cv_interval.Box.uniform 8 ~lo:(-1.) ~hi:1. in
  let gauge () = Cv_util.Metrics.value (Cv_util.Metrics.counter "kernel.bytes_alloc") in
  let run () =
    ignore (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Box net din)
  in
  (* Warm up: prepared memo + workspace buffers. *)
  run ();
  run ();
  let g0 = gauge () in
  run ();
  let first = gauge () - g0 in
  let g1 = gauge () in
  for _ = 1 to 20 do
    run ()
  done;
  let per_call = (gauge () - g1) / 20 in
  Alcotest.(check bool)
    (Printf.sprintf
       "per-call gauge flat after warmup (first %d, steady %d)" first per_call)
    true
    (per_call <= first + 256 && first < 65536)

(* ------------------------------------------------------------------ *)
(* Satellite regressions: Mat.col single-pass stride, Mat.init index
   arithmetic. *)

let test_col_and_init () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (Alcotest.array (Alcotest.float 0.)))
    "col 2" [| 2.; 12.; 22. |] (Mat.col m 2);
  Alcotest.(check (Alcotest.array (Alcotest.float 0.)))
    "col 0" [| 0.; 10.; 20. |] (Mat.col m 0);
  Alcotest.check_raises "col out of range"
    (Invalid_argument "Mat.col: column out of range") (fun () ->
      ignore (Mat.col m 4));
  (* init must hit every (i, j) exactly once, row-major. *)
  let n = ref 0 in
  let m2 =
    Mat.init 5 3 (fun i j ->
        incr n;
        float_of_int ((100 * i) + j))
  in
  Alcotest.(check int) "init calls" 15 !n;
  Alcotest.(check (float 0.)) "init layout" 402. (Mat.get m2 4 2)

let () =
  Alcotest.run "cv_kernels"
    [ ( "blocked-kernels",
        [ QCheck_alcotest.to_alcotest matmul_matches_naive;
          QCheck_alcotest.to_alcotest matmul_into_workspace;
          QCheck_alcotest.to_alcotest matvec_matches_naive;
          QCheck_alcotest.to_alcotest transb_matches_matvec_rows;
          QCheck_alcotest.to_alcotest gemm_select_matches_naive;
          QCheck_alcotest.to_alcotest gemv_select_matches_naive;
          QCheck_alcotest.to_alcotest posneg_matches_interval;
          QCheck_alcotest.to_alcotest prepare_split_sound ] );
      ( "parallel",
        [ Alcotest.test_case "bitwise determinism at 1/2/4 domains" `Quick
            test_parallel_determinism ] );
      ( "workspace",
        [ Alcotest.test_case "slot reuse and reset" `Quick test_workspace_reuse;
          Alcotest.test_case "steady-state kernel loop alloc-free" `Quick
            test_kernel_loop_alloc_free;
          Alcotest.test_case "kernel.bytes_alloc flat per call" `Quick
            test_bytes_alloc_gauge_flat ] );
      ( "zonotope-flat",
        [ QCheck_alcotest.to_alcotest zonotope_flat_matches_rows ] );
      ( "satellites",
        [ Alcotest.test_case "Mat.col strided / Mat.init index" `Quick
            test_col_and_init ] ) ]
