(* Tests for the PR-6 resilience layer, part 2: fault modes and
   campaign planning, the retry supervisor, and verdict soundness under
   injected faults — a verdict may degrade to Unknown, never flip
   between safe and unsafe. *)

module F = Cv_util.Fault

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let fig2_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.

(* ------------------------------------------------------------------ *)
(* Fault modes                                                         *)
(* ------------------------------------------------------------------ *)

(* Poll a point [n] times in order (List.init's evaluation order is
   unspecified, so build the list explicitly). *)
let polls n p =
  let rec go k = if k = 0 then [] else (let b = F.fires p in b :: go (k - 1)) in
  go n

let test_mode_once () =
  F.reset ();
  F.enable ~mode:F.Once F.Worker_crash;
  Alcotest.(check (list bool)) "fires exactly once"
    [ true; false; false; false ]
    (polls 4 F.Worker_crash);
  Alcotest.(check bool) "spent point is no longer live" false
    (F.enabled F.Worker_crash);
  F.reset ()

let test_mode_every () =
  F.reset ();
  F.enable ~mode:(F.Every 3) F.Solver_failure;
  let fired = List.filter Fun.id (polls 9 F.Solver_failure) in
  Alcotest.(check int) "every=3 fires 3 times in 9 polls" 3 (List.length fired);
  F.reset ();
  Alcotest.check_raises "every=0 is rejected"
    (Invalid_argument "Fault.enable: Every n requires n >= 1") (fun () ->
      F.enable ~mode:(F.Every 0) F.Solver_failure)

let test_mode_names () =
  Alcotest.(check string) "always" "always" (F.mode_name F.Always);
  Alcotest.(check string) "once" "once" (F.mode_name F.Once);
  Alcotest.(check string) "every" "every=5" (F.mode_name (F.Every 5))

let test_plan_deterministic () =
  let p1 = F.plan ~seed:11 ~rounds:6 ~points:F.all_points in
  let p2 = F.plan ~seed:11 ~rounds:6 ~points:F.all_points in
  Alcotest.(check bool) "same seed, same campaign" true (p1 = p2);
  Alcotest.(check int) "requested rounds" 6 (List.length p1);
  List.iter
    (fun round ->
      let n = List.length round in
      Alcotest.(check bool) "1..3 points per round" true (n >= 1 && n <= 3);
      let names = List.map (fun (p, _) -> F.point_name p) round in
      Alcotest.(check bool) "no duplicate points in a round" true
        (List.length (List.sort_uniq compare names) = n))
    p1;
  let p3 = F.plan ~seed:12 ~rounds:6 ~points:F.all_points in
  Alcotest.(check bool) "different seed, different campaign" true (p1 <> p3)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_recovers () =
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then failwith "transient" else 42
  in
  (match Cv_util.Supervisor.run ~name:"test.flaky" flaky with
  | Ok v -> Alcotest.(check int) "recovered value" 42 v
  | Error _ -> Alcotest.fail "two transient failures must be retried");
  Alcotest.(check int) "two retries consumed" 3 !calls

let test_supervisor_gives_up () =
  let calls = ref 0 in
  let doomed () =
    incr calls;
    failwith "permanent"
  in
  (match Cv_util.Supervisor.run ~name:"test.doomed" doomed with
  | Ok _ -> Alcotest.fail "a permanent failure cannot succeed"
  | Error (Failure msg) -> Alcotest.(check string) "last error" "permanent" msg
  | Error _ -> Alcotest.fail "unexpected error");
  Alcotest.(check int) "first attempt plus default retries" 3 !calls;
  Alcotest.(check int) "fallback receives the exhausted error" 7
    (Cv_util.Supervisor.protect ~name:"test.doomed" ~fallback:(fun _ -> 7)
       (fun () -> failwith "permanent"))

let test_supervisor_propagates_logic_errors () =
  let calls = ref 0 in
  Alcotest.check_raises "Invalid_argument is never retried"
    (Invalid_argument "logic bug") (fun () ->
      ignore
        (Cv_util.Supervisor.run ~name:"test.bug" (fun () ->
             incr calls;
             invalid_arg "logic bug")));
  Alcotest.(check int) "exactly one attempt" 1 !calls;
  Alcotest.check_raises "deadline expiry is never retried or swallowed"
    (Cv_util.Deadline.Expired "budget") (fun () ->
      ignore
        (Cv_util.Supervisor.protect ~name:"test.deadline"
           ~fallback:(fun _ -> ())
           (fun () -> raise (Cv_util.Deadline.Expired "budget"))))

(* ------------------------------------------------------------------ *)
(* Verdict soundness under faults                                      *)
(* ------------------------------------------------------------------ *)

let check_verdict target =
  Cv_verify.Containment.check Cv_verify.Containment.Milp (fig2_net ())
    ~input_box:fig2_box ~target

let provable = Cv_interval.Box.of_bounds [| -1. |] [| 13. |]

let falsifiable = Cv_interval.Box.of_bounds [| -1. |] [| 5. |]

let test_worker_crash_once_recovers () =
  F.reset ();
  F.with_fault ~mode:F.Once F.Worker_crash (fun () ->
      match check_verdict provable with
      | Cv_verify.Containment.Proved -> ()
      | _ -> Alcotest.fail "one crashed dive must not change the verdict")

let test_worker_crash_always_degrades () =
  F.reset ();
  F.with_fault F.Worker_crash (fun () ->
      match check_verdict provable with
      | Cv_verify.Containment.Unknown _ -> ()
      | Cv_verify.Containment.Proved ->
        Alcotest.fail "a permanently crashing search cannot claim a proof"
      | Cv_verify.Containment.Violated _ ->
        Alcotest.fail "crash degradation must never flip to unsafe")

let test_solver_failure_always_no_exception () =
  F.reset ();
  F.with_fault F.Solver_failure (fun () ->
      match check_verdict provable with
      | Cv_verify.Containment.Unknown _ | Cv_verify.Containment.Violated _ -> ()
      | Cv_verify.Containment.Proved ->
        Alcotest.fail "a dead solver cannot claim a proof")

let test_spurious_solver_error_identical () =
  F.reset ();
  let baseline = check_verdict provable in
  let faulty =
    F.with_fault F.Spurious_solver_error (fun () -> check_verdict provable)
  in
  Alcotest.(check bool) "warm-restart faults degrade to cold solves" true
    (baseline = Cv_verify.Containment.Proved
    && faulty = Cv_verify.Containment.Proved)

let test_alloc_failure_once_recovers () =
  F.reset ();
  F.with_fault ~mode:F.Once F.Alloc_failure (fun () ->
      match check_verdict provable with
      | Cv_verify.Containment.Proved -> ()
      | _ -> Alcotest.fail "one failed allocation must be retried away")

(* A full seeded campaign over every fault point: per round, the
   provable scenario may only come back safe or unknown, the
   falsifiable one only unsafe or unknown — never the opposite
   verdicts. *)
let test_campaign_soundness () =
  F.reset ();
  let campaign = F.plan ~seed:3 ~rounds:6 ~points:F.all_points in
  List.iter
    (fun faults ->
      List.iter (fun (p, m) -> F.enable ~mode:m p) faults;
      (match check_verdict provable with
      | Cv_verify.Containment.Violated _ ->
        Alcotest.fail "provable scenario flipped to unsafe under faults"
      | _ -> ());
      (match check_verdict falsifiable with
      | Cv_verify.Containment.Proved ->
        Alcotest.fail "falsifiable scenario flipped to safe under faults"
      | _ -> ());
      F.reset ())
    campaign

let () =
  Alcotest.run "cv_chaos"
    [ ( "fault-modes",
        [ Alcotest.test_case "once" `Quick test_mode_once;
          Alcotest.test_case "every" `Quick test_mode_every;
          Alcotest.test_case "names" `Quick test_mode_names;
          Alcotest.test_case "plan determinism" `Quick test_plan_deterministic ]
      );
      ( "supervisor",
        [ Alcotest.test_case "recovers" `Quick test_supervisor_recovers;
          Alcotest.test_case "gives up" `Quick test_supervisor_gives_up;
          Alcotest.test_case "propagates logic errors" `Quick
            test_supervisor_propagates_logic_errors ] );
      ( "soundness",
        [ Alcotest.test_case "worker crash once" `Quick
            test_worker_crash_once_recovers;
          Alcotest.test_case "worker crash always" `Quick
            test_worker_crash_always_degrades;
          Alcotest.test_case "solver failure always" `Quick
            test_solver_failure_always_no_exception;
          Alcotest.test_case "spurious solver error" `Quick
            test_spurious_solver_error_identical;
          Alcotest.test_case "alloc failure once" `Quick
            test_alloc_failure_once_recovers;
          Alcotest.test_case "seeded campaign" `Quick test_campaign_soundness ]
      ) ]
