(* Tests for the query modules on top of containment: local robustness
   (Cv_verify.Robustness) and argmax/advisory properties
   (Cv_verify.Argmax). *)

let net3 = Gen.net3

(* ------------------------------------------------------------------ *)
(* Robustness                                                          *)
(* ------------------------------------------------------------------ *)

let test_robustness_holds_small_eps () =
  let net = net3 3 in
  let x = [| 0.5; 0.5; 0.5 |] in
  let q = { Cv_verify.Robustness.x; epsilon = 1e-4; delta = 0.5 } in
  (match Cv_verify.Robustness.check Cv_verify.Containment.Milp net q with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "tiny ball must be robust");
  (* Sampling confirms. *)
  let rng = Cv_util.Rng.create 5 in
  let y = (Cv_nn.Network.eval net x).(0) in
  for _ = 1 to 500 do
    let x' = Cv_interval.Box.sample rng (Cv_verify.Robustness.ball q) in
    Alcotest.(check bool) "within delta" true
      (Float.abs ((Cv_nn.Network.eval net x').(0) -. y) <= q.Cv_verify.Robustness.delta)
  done

let test_robustness_fails_large_eps () =
  let net = net3 3 in
  let q =
    { Cv_verify.Robustness.x = [| 0.5; 0.5; 0.5 |]; epsilon = 5.; delta = 1e-6 }
  in
  match Cv_verify.Robustness.check Cv_verify.Containment.Milp net q with
  | Cv_verify.Containment.Proved -> Alcotest.fail "must not be robust"
  | _ -> ()

let test_robustness_lipschitz_condition () =
  let net = net3 3 in
  let ell = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net in
  let q =
    { Cv_verify.Robustness.x = [| 0.5; 0.5; 0.5 |];
      epsilon = 0.001;
      delta = ell *. 0.001 *. 1.01 }
  in
  Alcotest.(check bool) "ell*eps <= delta" true
    (Cv_verify.Robustness.check_lipschitz ~ell q);
  Alcotest.(check bool) "fails when budget below ell*eps" false
    (Cv_verify.Robustness.check_lipschitz ~ell
       { q with Cv_verify.Robustness.delta = ell *. 0.001 /. 2. })

let test_robustness_transfer () =
  let net = net3 7 in
  let net' =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 9) ~sigma:0.0005)
      net
  in
  let q =
    { Cv_verify.Robustness.x = [| 0.5; 0.5; 0.5 |]; epsilon = 0.01; delta = 0.5 }
  in
  let residual = Cv_verify.Robustness.transfer_budget ~old_net:net ~new_net:net' q in
  Alcotest.(check bool) "residual below delta" true
    (residual < q.Cv_verify.Robustness.delta);
  Alcotest.(check bool) "residual positive for small drift" true (residual > 0.);
  match
    Cv_verify.Robustness.check_transfer Cv_verify.Containment.Milp ~old_net:net
      ~new_net:net' q
  with
  | Cv_verify.Containment.Proved ->
    (* Then f' really is robust: sample check. *)
    let rng = Cv_util.Rng.create 11 in
    let y = (Cv_nn.Network.eval net' q.Cv_verify.Robustness.x).(0) in
    for _ = 1 to 500 do
      let x' = Cv_interval.Box.sample rng (Cv_verify.Robustness.ball q) in
      Alcotest.(check bool) "transferred robustness sound" true
        (Float.abs ((Cv_nn.Network.eval net' x').(0) -. y)
        <= q.Cv_verify.Robustness.delta +. 1e-9)
    done
  | _ -> () (* transfer may honestly fail *)

let test_certified_radius () =
  let net = net3 13 in
  let x = [| 0.5; 0.5; 0.5 |] in
  let delta = 0.2 in
  let r = Cv_verify.Robustness.certified_radius net ~x ~delta in
  Alcotest.(check bool) "positive radius" true (r > 0.);
  (* The certified radius must itself verify. *)
  match
    Cv_verify.Robustness.check Cv_verify.Containment.Milp net
      { Cv_verify.Robustness.x; epsilon = r; delta }
  with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "certified radius must verify"

(* ------------------------------------------------------------------ *)
(* Argmax                                                              *)
(* ------------------------------------------------------------------ *)

(* A hand-made 2-in 3-out network where output ordering is controlled:
   s = W x + b with no hidden layer. *)
let linear_scores w b =
  Cv_nn.Network.make
    [| Cv_nn.Layer.make (Cv_linalg.Mat.of_rows w) b Cv_nn.Activation.Identity |]

let region2 = Cv_interval.Box.uniform 2 ~lo:0. ~hi:1.

let test_difference_network () =
  let net =
    linear_scores [ [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] ] [| 0.; 0.; 0. |]
  in
  let diff = Cv_verify.Argmax.difference_network net ~output:0 in
  Alcotest.(check int) "two differences" 2 (Cv_nn.Network.out_dim diff);
  let d = Cv_nn.Network.eval diff [| 0.3; 0.4 |] in
  (* s = (0.3, 0.4, 0.7): s1−s0 = 0.1, s2−s0 = 0.4 *)
  Alcotest.(check (float 1e-9)) "d0" 0.1 d.(0);
  Alcotest.(check (float 1e-9)) "d1" 0.4 d.(1)

let test_always_maximal () =
  (* s2 = x0 + x1 + 10 dominates everywhere on [0,1]^2. *)
  let net =
    linear_scores [ [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] ] [| 0.; 0.; 10. |]
  in
  (match
     Cv_verify.Argmax.always_maximal Cv_verify.Containment.Milp net ~output:2
       ~region:region2 ~margin:1.
   with
  | Cv_verify.Argmax.Holds -> ()
  | _ -> Alcotest.fail "s2 dominates");
  match
    Cv_verify.Argmax.always_maximal Cv_verify.Containment.Milp net ~output:0
      ~region:region2 ~margin:0.
  with
  | Cv_verify.Argmax.Fails x ->
    Alcotest.(check bool) "witness in region" true
      (Cv_interval.Box.mem_tol ~tol:1e-9 x region2)
  | _ -> Alcotest.fail "s0 does not dominate"

let test_never_maximal () =
  let net =
    linear_scores [ [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] ] [| 0.; 0.; 10. |]
  in
  (* s0 can never beat s2 (gap at least 9). *)
  (match
     Cv_verify.Argmax.never_maximal Cv_verify.Containment.Milp net ~output:0
       ~region:region2 ~margin:1.
   with
  | Cv_verify.Argmax.Holds -> ()
  | _ -> Alcotest.fail "s0 never maximal");
  (* s2 IS maximal somewhere (everywhere): Fails with witness. *)
  match
    Cv_verify.Argmax.never_maximal Cv_verify.Containment.Milp net ~output:2
      ~region:region2 ~margin:0.
  with
  | Cv_verify.Argmax.Fails _ -> ()
  | _ -> Alcotest.fail "s2 is maximal somewhere"

let test_score_gap () =
  let net =
    linear_scores [ [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] ] [| 0.; 0.; 10. |]
  in
  (* For output 2: max_j≠2 (s_j − s_2) = max(x0, x1) − (x0+x1) − 10 ≤ −10. *)
  let gap = Cv_verify.Argmax.score_gap net ~output:2 ~region:region2 in
  Alcotest.(check bool) "certified margin ~ -10" true
    (gap <= -9.99 && gap >= -10.01);
  (* For output 0 the gap is large and positive. *)
  let gap0 = Cv_verify.Argmax.score_gap net ~output:0 ~region:region2 in
  Alcotest.(check bool) "positive gap for dominated advisory" true (gap0 > 9.)

let test_argmax_on_relu_net () =
  (* Sanity on a nonlinear multi-output net: verdicts must be consistent
     with sampling. *)
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 21) ~dims:[ 3; 6; 3 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let region = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
  for output = 0 to 2 do
    match
      Cv_verify.Argmax.never_maximal Cv_verify.Containment.Milp net ~output
        ~region ~margin:0.
    with
    | Cv_verify.Argmax.Holds ->
      (* sampling must find no argmax point *)
      let rng = Cv_util.Rng.create 23 in
      for _ = 1 to 1000 do
        let x = Cv_interval.Box.sample rng region in
        let s = Cv_nn.Network.eval net x in
        Alcotest.(check bool) "never argmax confirmed" false
          (Array.for_all (fun v -> s.(output) >= v) s)
      done
    | Cv_verify.Argmax.Fails x ->
      let s = Cv_nn.Network.eval net x in
      Alcotest.(check bool) "witness really argmax" true
        (Array.for_all (fun v -> s.(output) >= v) s)
    | Cv_verify.Argmax.Unknown _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Metamorphic oracles: domain-change monotonicity                     *)
(* ------------------------------------------------------------------ *)

(* The sound directions of the D_in metamorphic relation:

   - abstract domains never report false-unsafe, so a property proved
     on a widened D_in must hold for the {e true} behaviour on every
     sub-box: widening can only weaken verdicts (safe → safe|unknown),
     never flip safe → unsafe;
   - for inclusion-isotone domains (box, symint, zonotope — transformers
     built on interval evaluation) the abstract verdict itself is
     monotone: proved on a widened D_in implies proved on any sub-box
     (shrinking only strengthens). DeepPoly is deliberately excluded
     from the strict direction: its relaxation-slope choice flips with
     the pre-activation bounds, so a narrower input can get a looser
     bound — only the soundness direction is a theorem there;
   - for the exact engine, a counterexample on a narrow D_in lives in
     every wider D_in, so Violated can only persist under widening
     (unsafe never heals into safe). *)

let meta_domains =
  [ Cv_domains.Analyzer.Symint;
    Cv_domains.Analyzer.Zonotope;
    Cv_domains.Analyzer.Deeppoly ]

let isotone_domains =
  [ Cv_domains.Analyzer.Box;
    Cv_domains.Analyzer.Symint;
    Cv_domains.Analyzer.Zonotope ]

let meta_gen =
  (* network seed, box placement, widening amounts: din ⊆ wide1 ⊆ wide2 *)
  QCheck.(
    quad (int_range 0 1000)
      (float_range (-0.5) 0.5)
      (float_range 0.01 0.3) (float_range 0.01 0.3))

let abstract_widening_never_unsafe_prop =
  QCheck.Test.make
    ~name:"abstract: proved on widened D_in is truly safe on every sub-box"
    ~count:25 meta_gen
    (fun (seed, center, w1, w2) ->
      let net = net3 seed in
      let din = Cv_interval.Box.uniform 3 ~lo:(center -. 0.3) ~hi:(center +. 0.3) in
      let wider = Cv_interval.Box.expand (w1 +. w2) din in
      List.for_all
        (fun domain ->
          let dout =
            Cv_interval.Box.expand 0.05
              (Cv_domains.Analyzer.output_box domain net wider)
          in
          (not (Cv_domains.Analyzer.verify domain net ~din:wider ~dout))
          ||
          (* Ground truth on the widened box — and with it every
             sub-box — must agree: sampling may never find a
             counterexample to a proved property. *)
          let rng = Cv_util.Rng.create (seed + 1) in
          List.for_all
            (fun box ->
              List.for_all
                (fun _ ->
                  let x = Cv_interval.Box.sample rng box in
                  Cv_interval.Box.mem_tol ~tol:1e-9 (Cv_nn.Network.eval net x)
                    dout)
                (List.init 100 Fun.id))
            [ din; wider ])
        meta_domains)

let abstract_shrink_strengthens_prop =
  QCheck.Test.make
    ~name:"abstract: proved on widened D_in implies proved on sub-box"
    ~count:25 meta_gen
    (fun (seed, center, w1, w2) ->
      let net = net3 seed in
      let din = Cv_interval.Box.uniform 3 ~lo:(center -. 0.3) ~hi:(center +. 0.3) in
      let wide = Cv_interval.Box.expand w1 din in
      let wider = Cv_interval.Box.expand (w1 +. w2) din in
      List.for_all
        (fun domain ->
          (* A dout proved on the widest box (its own over-approximation
             plus slack) must be proved on every sub-box. *)
          let dout =
            Cv_interval.Box.expand 0.05
              (Cv_domains.Analyzer.output_box domain net wider)
          in
          List.for_all
            (fun narrow ->
              (not (Cv_domains.Analyzer.verify domain net ~din:wider ~dout))
              || Cv_domains.Analyzer.verify domain net ~din:narrow ~dout)
            [ din; wide ])
        isotone_domains)

let abstract_reach_monotone_prop =
  QCheck.Test.make
    ~name:"abstract: reachable set monotone under D_in widening" ~count:25
    meta_gen
    (fun (seed, center, w1, w2) ->
      let net = net3 seed in
      let din = Cv_interval.Box.uniform 3 ~lo:(center -. 0.3) ~hi:(center +. 0.3) in
      let wide = Cv_interval.Box.expand w1 din in
      let wider = Cv_interval.Box.expand (w1 +. w2) din in
      List.for_all
        (fun domain ->
          let reach b = Cv_domains.Analyzer.output_box domain net b in
          Cv_interval.Box.subset_tol ~tol:1e-9 (reach din) (reach wide)
          && Cv_interval.Box.subset_tol ~tol:1e-9 (reach wide) (reach wider))
        isotone_domains)

let exact_widen_keeps_counterexample_prop =
  QCheck.Test.make
    ~name:"exact: violated on narrow D_in stays violated when widened"
    ~count:10
    QCheck.(pair (int_range 0 1000) (float_range 0.01 0.25))
    (fun (seed, w) ->
      let net = net3 seed in
      let din = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
      (* A target strictly inside the exact range is falsifiable. *)
      let r = (Cv_verify.Range.exact_range net ~din).Cv_verify.Range.range in
      let lo = (Cv_interval.Box.lower r).(0)
      and hi = (Cv_interval.Box.upper r).(0) in
      QCheck.assume (hi -. lo > 1e-6);
      let c = (lo +. hi) /. 2. and q = (hi -. lo) /. 8. in
      let target = Cv_interval.Box.of_bounds [| c -. q |] [| c +. q |] in
      let check box =
        Cv_verify.Containment.check Cv_verify.Containment.Milp net
          ~input_box:box ~target
      in
      match check din with
      | Cv_verify.Containment.Violated v ->
        (* The recorded witness carries over verbatim ... *)
        let wide = Cv_interval.Box.expand w din in
        Cv_interval.Box.mem_tol ~tol:1e-9 v.Cv_verify.Falsify.input wide
        &&
        (* ... and the widened query agrees. *)
        (match check wide with
        | Cv_verify.Containment.Violated _ -> true
        | _ -> false)
      | _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "cv_queries"
    [ ( "robustness",
        [ Alcotest.test_case "holds small eps" `Quick
            test_robustness_holds_small_eps;
          Alcotest.test_case "fails large eps" `Quick
            test_robustness_fails_large_eps;
          Alcotest.test_case "lipschitz condition" `Quick
            test_robustness_lipschitz_condition;
          Alcotest.test_case "transfer across fine-tuning" `Quick
            test_robustness_transfer;
          Alcotest.test_case "certified radius" `Quick test_certified_radius ] );
      ( "argmax",
        [ Alcotest.test_case "difference network" `Quick
            test_difference_network;
          Alcotest.test_case "always maximal" `Quick test_always_maximal;
          Alcotest.test_case "never maximal" `Quick test_never_maximal;
          Alcotest.test_case "score gap" `Quick test_score_gap;
          Alcotest.test_case "relu net consistency" `Quick
            test_argmax_on_relu_net ] );
      ( "metamorphic",
        [ QCheck_alcotest.to_alcotest abstract_widening_never_unsafe_prop;
          QCheck_alcotest.to_alcotest abstract_shrink_strengthens_prop;
          QCheck_alcotest.to_alcotest abstract_reach_monotone_prop;
          QCheck_alcotest.to_alcotest exact_widen_keeps_counterexample_prop ] ) ]
