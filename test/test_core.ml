(* Tests for Cv_core: Propositions 1-6, incremental fixing, strategy
   orchestration, reports. The overarching soundness invariant: whenever
   a reuse route answers Safe, heavy sampling of the *target* property
   must find no violation. *)

let sample_check_safe net ~din ~dout ~samples =
  let rng = Cv_util.Rng.create 1717 in
  let ok = ref true in
  for _ = 1 to samples do
    let x = Cv_interval.Box.sample rng din in
    if not (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net x) dout)
    then ok := false
  done;
  !ok

(* A deterministic small verification scenario: trained-size ReLU head,
   widened symint chain as artifact, D_out = S_n. *)
let scenario ?(widen = 0.05) ?(seed = 3) () =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims:[ 4; 6; 5; 4; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let din = Cv_interval.Box.uniform 4 ~lo:0. ~hi:1. in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen Cv_domains.Analyzer.Symint net din
  in
  let dout = chain.(Array.length chain - 1) in
  let prop = Cv_verify.Property.make ~din ~dout in
  let ell = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain
      ~lipschitz:[ ("Linf", ell) ]
      ~property:prop ~net ~solver:"symint-chain" ~solve_seconds:1. ()
  in
  (net, din, dout, artifact)

let small_enlargement din = Cv_interval.Box.expand 0.002 din

let big_enlargement din = Cv_interval.Box.expand 1.0 din

(* ------------------------------------------------------------------ *)
(* Problem construction                                                *)
(* ------------------------------------------------------------------ *)

let test_problem_validation () =
  let net, din, _, artifact = scenario () in
  (* mismatched artifact *)
  let other =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 9) ~dims:[ 4; 6; 5; 4; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  (try
     ignore
       (Cv_core.Problem.svudc ~net:other ~artifact
          ~new_din:(small_enlargement din));
     Alcotest.fail "should reject foreign artifact"
   with Invalid_argument _ -> ());
  (* new domain must contain old *)
  (try
     ignore
       (Cv_core.Problem.svudc ~net ~artifact
          ~new_din:(Cv_interval.Box.uniform 4 ~lo:0.4 ~hi:0.5));
     Alcotest.fail "should reject shrunken domain"
   with Invalid_argument _ -> ());
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(small_enlargement din) in
  Alcotest.(check bool) "target property din enlarged" true
    (Cv_interval.Box.subset din
       (Cv_core.Problem.svudc_property p).Cv_verify.Property.din)

(* ------------------------------------------------------------------ *)
(* SVuDC propositions                                                  *)
(* ------------------------------------------------------------------ *)

let test_trivial_shortcut () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:din in
  let a = Cv_core.Svudc.trivial p in
  Alcotest.(check bool) "safe" true (Cv_core.Report.is_safe a)

let test_prop1_small_enlargement () =
  let net, din, dout, artifact = scenario () in
  let new_din = small_enlargement din in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let a = Cv_core.Svudc.prop1 p in
  Alcotest.(check bool) ("prop1: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  Alcotest.(check bool) "target truly safe" true
    (sample_check_safe net ~din:new_din ~dout ~samples:2000)

let test_prop1_huge_enlargement_inconclusive () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(big_enlargement din) in
  let a = Cv_core.Svudc.prop1 p in
  Alcotest.(check bool) "inconclusive" true (not (Cv_core.Report.is_safe a))

let test_prop2_small_enlargement () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(small_enlargement din) in
  let a = Cv_core.Svudc.prop2 p in
  Alcotest.(check bool) ("prop2: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  Alcotest.(check bool) "multiple subproblems" true
    (a.Cv_core.Report.timing.Cv_core.Report.subproblems >= 2);
  Alcotest.(check bool) "parallel <= sequential" true
    (a.Cv_core.Report.timing.Cv_core.Report.parallel
    <= a.Cv_core.Report.timing.Cv_core.Report.sequential +. 1e-9)

let test_prop3_lipschitz () =
  (* Engineer a case where prop3 fires: inflate dout far beyond ℓκ. *)
  let net, din, _, artifact = scenario () in
  let chain = Option.get artifact.Cv_artifacts.Artifacts.state_abstractions in
  let s_n = chain.(Array.length chain - 1) in
  let ell =
    Option.get (Cv_artifacts.Artifacts.lipschitz_for artifact "Linf")
  in
  let kappa = 0.001 in
  let dout_wide = Cv_interval.Box.expand (ell *. kappa *. 2.) s_n in
  let prop = Cv_verify.Property.make ~din ~dout:dout_wide in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain
      ~lipschitz:[ ("Linf", ell) ]
      ~property:prop ~net ~solver:"symint-chain" ~solve_seconds:1. ()
  in
  let p =
    Cv_core.Problem.svudc ~net ~artifact
      ~new_din:(Cv_interval.Box.expand kappa din)
  in
  let a = Cv_core.Svudc.prop3 p in
  Alcotest.(check bool) ("prop3: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a)

let test_prop3_requires_constant () =
  let net, din, _, artifact = scenario () in
  let artifact = { artifact with Cv_artifacts.Artifacts.lipschitz = [] } in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(small_enlargement din) in
  let a = Cv_core.Svudc.prop3 p in
  Alcotest.(check bool) "inconclusive without ell" true
    (not (Cv_core.Report.is_safe a))

let test_props_require_abstractions () =
  let net, din, dout, _ = scenario () in
  let prop = Cv_verify.Property.make ~din ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~property:prop ~net ~solver:"none"
      ~solve_seconds:0. ()
  in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(small_enlargement din) in
  Alcotest.(check bool) "prop1 needs chain" true
    (not (Cv_core.Report.is_safe (Cv_core.Svudc.prop1 p)));
  Alcotest.(check bool) "prop2 needs chain" true
    (not (Cv_core.Report.is_safe (Cv_core.Svudc.prop2 p)))


let test_delta_cover_small_enlargement () =
  let net, din, dout, artifact = scenario () in
  let new_din = small_enlargement din in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let a = Cv_core.Svudc.delta_cover p in
  Alcotest.(check bool) ("delta-cover: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  (* one slab per face of a uniformly expanded 4-d box *)
  Alcotest.(check int) "8 slabs" 8
    a.Cv_core.Report.timing.Cv_core.Report.subproblems;
  Alcotest.(check bool) "truly safe" true
    (sample_check_safe net ~din:new_din ~dout ~samples:2000)

let test_delta_cover_empty_delta () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:din in
  let a = Cv_core.Svudc.delta_cover p in
  Alcotest.(check bool) "empty delta safe" true (Cv_core.Report.is_safe a);
  Alcotest.(check int) "no slabs" 1
    a.Cv_core.Report.timing.Cv_core.Report.subproblems

let test_delta_cover_detects_violation () =
  (* Enlarge so far that the slabs genuinely violate D_out: the route
     must return Unsafe with a concrete witness, not merely fail. *)
  let net, din, dout, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(big_enlargement din) in
  let a = Cv_core.Svudc.delta_cover p in
  match a.Cv_core.Report.outcome with
  | Cv_core.Report.Unsafe v ->
    Alcotest.(check bool) "witness violates" true
      (not (Cv_interval.Box.mem v.Cv_verify.Falsify.output dout))
  | Cv_core.Report.Safe ->
    (* possible if the network saturates; then it must truly be safe *)
    Alcotest.(check bool) "claimed safe must hold" true
      (sample_check_safe net ~din:(big_enlargement din) ~dout ~samples:3000)
  | Cv_core.Report.Inconclusive _ | Cv_core.Report.Exhausted _ -> ()


let test_prop2_other_domains () =
  (* The box rebuild must also succeed (for single layers, the box and
     symint chains coincide: per-neuron box images are exact). DeepPoly
     and zonotope chains are NOT expected to work here — their ReLU
     relaxations can dip below zero, widening the rebuilt chain past the
     stored one; prop2 then honestly reports inconclusive. *)
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(small_enlargement din) in
  let a = Cv_core.Svudc.prop2 ~domain:Cv_domains.Analyzer.Box p in
  Alcotest.(check bool) ("box: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  (* Whatever the verdict with a looser domain, it must never be Unsafe. *)
  let a' = Cv_core.Svudc.prop2 ~domain:Cv_domains.Analyzer.Deeppoly p in
  (match a'.Cv_core.Report.outcome with
  | Cv_core.Report.Unsafe _ -> Alcotest.fail "prop2 never proves unsafety"
  | _ -> ())

let test_strategy_with_split_engine () =
  let net, din, dout, artifact = scenario () in
  let new_din = small_enlargement din in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let config =
    { Cv_core.Strategy.default_config with
      Cv_core.Strategy.engine = Cv_verify.Containment.Symint_split 1024 }
  in
  let r = Cv_core.Strategy.solve_svudc ~config p in
  (match r.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected safe: %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check bool) "truly safe" true
    (sample_check_safe net ~din:new_din ~dout ~samples:1000)

(* ------------------------------------------------------------------ *)
(* SVbTV propositions                                                  *)
(* ------------------------------------------------------------------ *)

let fine_tuned net sigma seed =
  Cv_nn.Network.map_layers
    (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create seed) ~sigma)
    net

let test_prop4_small_drift () =
  let net, din, dout, artifact = scenario () in
  let net' = fine_tuned net 0.001 11 in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact
      ~new_din:(small_enlargement din)
  in
  let a = Cv_core.Svbtv.prop4 p in
  Alcotest.(check bool) ("prop4: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  Alcotest.(check int) "one subproblem per layer" 4
    a.Cv_core.Report.timing.Cv_core.Report.subproblems;
  Alcotest.(check bool) "target truly safe" true
    (sample_check_safe net' ~din:(small_enlargement din) ~dout ~samples:2000)

let test_prop4_large_drift_inconclusive () =
  let net, din, _, artifact = scenario () in
  let net' = fine_tuned net 0.8 13 in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  let a = Cv_core.Svbtv.prop4 p in
  Alcotest.(check bool) "inconclusive" true (not (Cv_core.Report.is_safe a))

let test_prop5_anchors () =
  let net, din, dout, artifact = scenario () in
  let net' = fine_tuned net 0.001 17 in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact
      ~new_din:(small_enlargement din)
  in
  let a = Cv_core.Svbtv.prop5 ~anchors:[ 2 ] p in
  Alcotest.(check bool) ("prop5: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  Alcotest.(check int) "two subproblems for one anchor" 2
    a.Cv_core.Report.timing.Cv_core.Report.subproblems;
  Alcotest.(check bool) "target truly safe" true
    (sample_check_safe net' ~din:(small_enlargement din) ~dout ~samples:2000)

let test_prop5_bad_anchors () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net ~artifact ~new_din:din in
  Alcotest.(check bool) "anchor 1 rejected" true
    (not (Cv_core.Report.is_safe (Cv_core.Svbtv.prop5 ~anchors:[ 1 ] p)));
  Alcotest.(check bool) "anchor n rejected" true
    (not (Cv_core.Report.is_safe (Cv_core.Svbtv.prop5 ~anchors:[ 4 ] p)))

let test_default_anchors () =
  Alcotest.(check (list int)) "n=6" [ 2; 4 ] (Cv_core.Svbtv.default_anchors 6);
  Alcotest.(check (list int)) "n=4" [ 2 ] (Cv_core.Svbtv.default_anchors 4);
  Alcotest.(check (list int)) "n=2" [] (Cv_core.Svbtv.default_anchors 2)

(* ------------------------------------------------------------------ *)
(* Prop 6                                                              *)
(* ------------------------------------------------------------------ *)

let test_prop6_structural () =
  let net, din, _, _ = scenario ~seed:21 () in
  (* Build the pair and a dout it certifies. *)
  let pair = Cv_core.Netabs_reuse.build net ~din in
  let lo, hi = Cv_core.Netabs_reuse.output_bounds pair in
  let dout = Cv_interval.Box.of_bounds [| lo -. 0.1 |] [| hi +. 0.1 |] in
  Alcotest.(check bool) "pair proves" true
    (Cv_core.Netabs_reuse.proves pair ~dout);
  Alcotest.(check bool) "reuses self" true
    (Cv_core.Netabs_reuse.reuses pair net);
  let prop = Cv_verify.Property.make ~din ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~property:prop ~net ~solver:"netabs"
      ~solve_seconds:1. ()
  in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net ~artifact ~new_din:din in
  let a = Cv_core.Netabs_reuse.prop6 pair p in
  Alcotest.(check bool) ("prop6: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a)

let test_prop6_rejects_enlarged_domain () =
  let net, din, _, _ = scenario ~seed:21 () in
  let pair = Cv_core.Netabs_reuse.build net ~din in
  let lo, hi = Cv_core.Netabs_reuse.output_bounds pair in
  let dout = Cv_interval.Box.of_bounds [| lo -. 0.1 |] [| hi +. 0.1 |] in
  let prop = Cv_verify.Property.make ~din ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~property:prop ~net ~solver:"netabs"
      ~solve_seconds:1. ()
  in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net ~artifact
      ~new_din:(big_enlargement din)
  in
  let a = Cv_core.Netabs_reuse.prop6 pair p in
  Alcotest.(check bool) "enlargement out of scope" true
    (not (Cv_core.Report.is_safe a))

let test_prop6_interval () =
  let net, din, dout, artifact = scenario () in
  ignore dout;
  let net' = fine_tuned net 0.0005 23 in
  let drift = Cv_nn.Network.param_dist_inf net net' in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  (* slack below drift: rejected *)
  let a_small = Cv_core.Netabs_reuse.prop6_interval ~slack:(drift /. 2.) p in
  Alcotest.(check bool) "small slack rejected" true
    (not (Cv_core.Report.is_safe a_small));
  (* generous slack: accepted iff the interval abstraction proves the
     property; either way must not claim Safe falsely *)
  let a_big = Cv_core.Netabs_reuse.prop6_interval ~slack:(drift *. 4.) p in
  if Cv_core.Report.is_safe a_big then
    Alcotest.(check bool) "interval prop6 sound" true
      (sample_check_safe net' ~din
         ~dout:artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
         ~samples:2000)


let test_prop6_cegar () =
  (* Adaptive refinement: a D_out between the coarsest pair's bounds and
     the finest pair's bounds forces actual CEGAR iterations. *)
  let net, din, _, _ = scenario ~seed:21 () in
  let coarse = Cv_core.Netabs_reuse.build net ~din in
  let clo, chi = Cv_core.Netabs_reuse.output_bounds coarse in
  (* Finest pair = exact function bounds via many refinements. *)
  let fine = Cv_core.Netabs_reuse.build ~refinements:10_000 net ~din in
  let flo, fhi = Cv_core.Netabs_reuse.output_bounds fine in
  Alcotest.(check bool) "finest tighter" true (fhi <= chi +. 1e-9 && flo >= clo -. 1e-9);
  let mid_hi = 0.5 *. (chi +. fhi) and mid_lo = 0.5 *. (clo +. flo) in
  let dout = Cv_interval.Box.of_bounds [| mid_lo |] [| mid_hi |] in
  (match Cv_core.Netabs_reuse.build_adaptive ~max_refinements:10_000 net ~din ~dout with
  | Some pair ->
    Alcotest.(check bool) "adaptive pair proves" true
      (Cv_core.Netabs_reuse.proves pair ~dout)
  | None ->
    (* Acceptable only if even the finest pair cannot prove it. *)
    Alcotest.(check bool) "finest also fails" false
      (fhi <= mid_hi +. 1e-9 && flo >= mid_lo -. 1e-9));
  (* An impossible D_out must return None. *)
  Alcotest.(check bool) "impossible spec -> None" true
    (Cv_core.Netabs_reuse.build_adaptive ~max_refinements:50 net ~din
       ~dout:(Cv_interval.Box.of_bounds [| 0. |] [| 1e-9 |])
    = None)

(* ------------------------------------------------------------------ *)
(* Fixer                                                               *)
(* ------------------------------------------------------------------ *)

let test_diagnose_clean () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net ~artifact ~new_din:din in
  match Cv_core.Fixer.diagnose p with
  | Some d ->
    Alcotest.(check (list int)) "no failing layers" [] d.Cv_core.Fixer.failing
  | None -> Alcotest.fail "expected diagnosis"

let bump_layer net idx delta =
  Cv_nn.Network.make
    (Array.mapi
       (fun i (l : Cv_nn.Layer.t) ->
         if i <> idx then l
         else
           Cv_nn.Layer.make l.Cv_nn.Layer.weights
             (Array.map (fun b -> b +. delta) l.Cv_nn.Layer.bias)
             l.Cv_nn.Layer.act)
       (Cv_nn.Network.layers net))

let test_diagnose_localizes_failure () =
  let net, din, _, artifact = scenario ~widen:0.02 () in
  (* Bias bump on layer 2 beyond the widening breaks exactly that
     handoff (downstream handoffs still read the *old* S boxes). *)
  let net' = bump_layer net 1 0.1 in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  match Cv_core.Fixer.diagnose p with
  | Some d ->
    Alcotest.(check (list int)) "layer 2 failing" [ 2 ] d.Cv_core.Fixer.failing
  | None -> Alcotest.fail "expected diagnosis"

let test_repair_clean_is_prop4 () =
  let net, din, _, artifact = scenario () in
  let net' = fine_tuned net 0.001 29 in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  let a = Cv_core.Fixer.repair p in
  Alcotest.(check bool) "safe" true (Cv_core.Report.is_safe a);
  Alcotest.(check string) "named fixer" "fixer" a.Cv_core.Report.name

let test_repair_soundness () =
  (* Whenever repair claims Safe after an actual fix, the target
     property must hold empirically. *)
  let net, din, dout, artifact = scenario ~widen:0.05 () in
  let candidates = [ 0.02; 0.04; 0.08 ] in
  List.iter
    (fun delta ->
      let net' = bump_layer net 1 delta in
      let p =
        Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din
      in
      let a = Cv_core.Fixer.repair p in
      if Cv_core.Report.is_safe a then
        Alcotest.(check bool)
          (Printf.sprintf "delta %.2f sound" delta)
          true
          (sample_check_safe net' ~din ~dout ~samples:3000))
    candidates

let test_repair_multi_failure_inconclusive () =
  let net, din, _, artifact = scenario ~widen:0.01 () in
  let net' = fine_tuned net 0.5 31 in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  let a = Cv_core.Fixer.repair p in
  match a.Cv_core.Report.outcome with
  | Cv_core.Report.Inconclusive _ | Cv_core.Report.Exhausted _ -> ()
  | Cv_core.Report.Safe ->
    (* possible if the perturbation happens to stay within widening;
       verify empirically *)
    let dout = artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout in
    Alcotest.(check bool) "safe claim must be true" true
      (sample_check_safe net' ~din ~dout ~samples:3000)
  | Cv_core.Report.Unsafe _ -> Alcotest.fail "fixer never proves unsafety"

(* ------------------------------------------------------------------ *)
(* Strategy                                                            *)
(* ------------------------------------------------------------------ *)

let test_strategy_svudc_end_to_end () =
  let net, din, dout, artifact = scenario () in
  let new_din = small_enlargement din in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let r = Cv_core.Strategy.solve_svudc p in
  (match r.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected safe, got %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check bool) "decided by a reuse prop" true
    (match r.Cv_core.Report.decisive with
    | Some ("prop1" | "prop2" | "prop3" | "trivial") -> true
    | _ -> false);
  Alcotest.(check bool) "truly safe" true
    (sample_check_safe net ~din:new_din ~dout ~samples:2000)

let test_strategy_svudc_fallback_on_huge () =
  let net, din, _, artifact = scenario () in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din:(big_enlargement din) in
  let r = Cv_core.Strategy.solve_svudc p in
  (* Props 1-3 fail on the huge enlargement; the instance is then
     settled either by the delta-cover route (which can return a
     definitive Unsafe witness) or by the full fallback. *)
  Alcotest.(check bool) "settled by delta-cover or full" true
    (match r.Cv_core.Report.decisive with
    | Some ("delta-cover" | "full") -> true
    | _ -> (
      (* nothing decisive: the last attempt must have been "full" *)
      match List.rev r.Cv_core.Report.attempts with
      | last :: _ -> last.Cv_core.Report.name = "full"
      | [] -> false))

let test_strategy_svbtv_end_to_end () =
  let net, din, dout, artifact = scenario () in
  let net' = fine_tuned net 0.001 37 in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact
      ~new_din:(small_enlargement din)
  in
  let r = Cv_core.Strategy.solve_svbtv p in
  (match r.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected safe, got %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check bool) "truly safe" true
    (sample_check_safe net' ~din:(small_enlargement din) ~dout ~samples:2000)

let test_report_conclude () =
  let mk name outcome =
    { Cv_core.Report.name;
      outcome;
      timing = Cv_core.Report.sequential_timing 0.5;
      detail = "" }
  in
  let r =
    Cv_core.Report.conclude
      [ mk "a" (Cv_core.Report.Inconclusive "x"); mk "b" Cv_core.Report.Safe ]
  in
  Alcotest.(check bool) "verdict safe" true
    (r.Cv_core.Report.verdict = Cv_core.Report.Safe);
  Alcotest.(check (option string)) "decisive" (Some "b")
    r.Cv_core.Report.decisive;
  Alcotest.(check (float 1e-9)) "total wall" 1. r.Cv_core.Report.total_wall;
  let r2 = Cv_core.Report.conclude [ mk "a" (Cv_core.Report.Inconclusive "x") ] in
  Alcotest.(check (option string)) "no decisive" None r2.Cv_core.Report.decisive

let test_ratio () =
  Alcotest.(check (float 1e-12)) "ratio" 0.1
    (Cv_core.Strategy.ratio ~incremental:0.5 ~original:5.);
  Alcotest.(check bool) "nan on zero" true
    (Float.is_nan (Cv_core.Strategy.ratio ~incremental:1. ~original:0.))


let slabs_cover_prop =
  QCheck.Test.make ~name:"enlargement slabs exactly cover the delta region"
    ~count:100
    QCheck.(pair (list_of_size (Gen.return 3) (float_range 0. 0.4))
              (list_of_size (Gen.return 3) (float_range 0. 0.4)))
    (fun (los, his) ->
      let old_box = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
      let new_box =
        Cv_interval.Box.of_bounds
          (Array.of_list (List.map (fun d -> -.d) los))
          (Array.of_list (List.map (fun d -> 1. +. d) his))
      in
      let slabs = Cv_core.Svudc.enlargement_slabs ~old_box ~new_box in
      let rng = Cv_util.Rng.create 77 in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Cv_interval.Box.sample rng new_box in
        let in_some_slab =
          Array.exists (fun (_, s) -> Cv_interval.Box.mem_tol ~tol:1e-9 x s) slabs
        in
        (* coverage: x outside old must be in a slab *)
        if (not (Cv_interval.Box.mem x old_box)) && not in_some_slab then
          ok := false
      done;
      (* every slab stays within the enlarged box *)
      Array.iter
        (fun (_, s) ->
          if not (Cv_interval.Box.subset_tol s new_box) then ok := false)
        slabs;
      !ok)

(* Randomized soundness sweep over the whole strategy. *)
let strategy_soundness_prop =
  QCheck.Test.make ~name:"strategy Safe implies empirically safe" ~count:10
    QCheck.(pair (int_range 1 100) (float_range 0.0005 0.01))
    (fun (seed, sigma) ->
      let net, din, dout, artifact = scenario ~seed () in
      let net' = fine_tuned net sigma (seed + 1) in
      let new_din = Cv_interval.Box.expand 0.001 din in
      let p =
        Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din
      in
      let r = Cv_core.Strategy.solve_svbtv p in
      match r.Cv_core.Report.verdict with
      | Cv_core.Report.Safe ->
        sample_check_safe net' ~din:new_din ~dout ~samples:1000
      | _ -> true)

let () =
  Alcotest.run "cv_core"
    [ ( "problem",
        [ Alcotest.test_case "validation" `Quick test_problem_validation ] );
      ( "svudc",
        [ Alcotest.test_case "trivial" `Quick test_trivial_shortcut;
          Alcotest.test_case "prop1 small enlargement" `Quick
            test_prop1_small_enlargement;
          Alcotest.test_case "prop1 huge enlargement" `Quick
            test_prop1_huge_enlargement_inconclusive;
          Alcotest.test_case "prop2 small enlargement" `Quick
            test_prop2_small_enlargement;
          Alcotest.test_case "prop3 fires" `Quick test_prop3_lipschitz;
          Alcotest.test_case "prop3 needs constant" `Quick
            test_prop3_requires_constant;
          Alcotest.test_case "props need abstractions" `Quick
            test_props_require_abstractions;
          Alcotest.test_case "delta-cover small" `Quick
            test_delta_cover_small_enlargement;
          Alcotest.test_case "delta-cover empty" `Quick
            test_delta_cover_empty_delta;
          Alcotest.test_case "delta-cover violation" `Quick
            test_delta_cover_detects_violation;
          Alcotest.test_case "prop2 other domains" `Quick
            test_prop2_other_domains;
          Alcotest.test_case "strategy with split engine" `Quick
            test_strategy_with_split_engine ] );
      ( "svbtv",
        [ Alcotest.test_case "prop4 small drift" `Quick test_prop4_small_drift;
          Alcotest.test_case "prop4 large drift" `Quick
            test_prop4_large_drift_inconclusive;
          Alcotest.test_case "prop5 anchors" `Quick test_prop5_anchors;
          Alcotest.test_case "prop5 bad anchors" `Quick test_prop5_bad_anchors;
          Alcotest.test_case "default anchors" `Quick test_default_anchors ] );
      ( "prop6",
        [ Alcotest.test_case "structural" `Quick test_prop6_structural;
          Alcotest.test_case "rejects enlargement" `Quick
            test_prop6_rejects_enlarged_domain;
          Alcotest.test_case "interval variant" `Quick test_prop6_interval;
          Alcotest.test_case "cegar driver" `Quick test_prop6_cegar ] );
      ( "fixer",
        [ Alcotest.test_case "diagnose clean" `Quick test_diagnose_clean;
          Alcotest.test_case "diagnose localizes" `Quick
            test_diagnose_localizes_failure;
          Alcotest.test_case "repair clean" `Quick test_repair_clean_is_prop4;
          Alcotest.test_case "repair soundness" `Quick test_repair_soundness;
          Alcotest.test_case "repair multi-failure" `Quick
            test_repair_multi_failure_inconclusive ] );
      ( "strategy",
        [ Alcotest.test_case "svudc end-to-end" `Quick
            test_strategy_svudc_end_to_end;
          Alcotest.test_case "svudc fallback" `Quick
            test_strategy_svudc_fallback_on_huge;
          Alcotest.test_case "svbtv end-to-end" `Quick
            test_strategy_svbtv_end_to_end;
          Alcotest.test_case "report conclude" `Quick test_report_conclude;
          Alcotest.test_case "ratio" `Quick test_ratio;
          QCheck_alcotest.to_alcotest slabs_cover_prop;
          QCheck_alcotest.to_alcotest strategy_soundness_prop ] ) ]
