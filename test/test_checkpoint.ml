(* Tests for the PR-6 resilience layer, part 1: checkpoint cadence and
   layering, capture-and-resume equivalence of the exact search (the
   "kill at any checkpoint, resume, same verdict" property), the typed
   Runstate envelope, and crash-safety of the artifact writer. *)

module J = Cv_util.Json

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let fig2_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.

let tmp_file () = Filename.temp_file "contiver_ck_test" ".json"

(* ------------------------------------------------------------------ *)
(* Checkpoint sinks                                                    *)
(* ------------------------------------------------------------------ *)

let test_cadence () =
  let writes = ref 0 in
  let slow = Cv_util.Checkpoint.create ~every:1e9 (fun _ -> incr writes) in
  Cv_util.Checkpoint.tick slow (fun () -> J.Null);
  Alcotest.(check int) "cadence suppresses the tick" 0 !writes;
  Cv_util.Checkpoint.save slow (fun () -> J.Null);
  Alcotest.(check int) "save writes unconditionally" 1 !writes;
  let eager = Cv_util.Checkpoint.create ~every:0. (fun _ -> incr writes) in
  Cv_util.Checkpoint.tick eager (fun () -> J.Null);
  Cv_util.Checkpoint.tick eager (fun () -> J.Null);
  Alcotest.(check int) "zero cadence writes on every tick" 3 !writes

let test_wrap_layers () =
  let writes = ref [] in
  let sink =
    Cv_util.Checkpoint.create ~every:1e9 (fun j -> writes := j :: !writes)
  in
  let wrapped =
    Cv_util.Checkpoint.wrap sink (fun j -> J.Obj [ ("inner", j) ])
  in
  Cv_util.Checkpoint.save wrapped (fun () -> J.Bool true);
  (match !writes with
  | [ J.Obj [ ("inner", J.Bool true) ] ] -> ()
  | _ -> Alcotest.fail "wrap must layer the transformer under the sink");
  (* The wrap shares the cadence state: the save above reset it, so a
     tick on the underlying sink stays suppressed. *)
  Cv_util.Checkpoint.tick sink (fun () -> J.Null);
  Alcotest.(check int) "wrap shares cadence with the base sink" 1
    (List.length !writes)

(* ------------------------------------------------------------------ *)
(* Capture-and-resume equivalence                                      *)
(* ------------------------------------------------------------------ *)

(* Run the exact range computation once, capturing EVERY checkpoint
   snapshot it offers (cadence zero). Each snapshot is a moment a real
   run could have been SIGKILLed right after persisting; resuming from
   it must reproduce the uninterrupted result exactly. *)
let capture_all net ~din =
  let snaps = ref [] in
  let sink = Cv_util.Checkpoint.create ~every:0. (fun j -> snaps := j :: !snaps) in
  let baseline = Cv_verify.Range.exact_range ~checkpoint:sink net ~din in
  (baseline, List.rev !snaps)

let check_box name expected actual =
  Alcotest.(check (array (float 1e-9)))
    (name ^ " (lower)")
    (Cv_interval.Box.lower expected)
    (Cv_interval.Box.lower actual);
  Alcotest.(check (array (float 1e-9)))
    (name ^ " (upper)")
    (Cv_interval.Box.upper expected)
    (Cv_interval.Box.upper actual)

let test_resume_equivalence_range () =
  let net = fig2_net () in
  let baseline, snaps = capture_all net ~din:fig2_box in
  Alcotest.(check bool) "captured at least one snapshot" true (snaps <> []);
  List.iteri
    (fun i snap ->
      let resumed = Cv_verify.Range.exact_range ~resume:snap net ~din:fig2_box in
      check_box
        (Printf.sprintf "range after resume from snapshot %d" i)
        baseline.Cv_verify.Range.range resumed.Cv_verify.Range.range)
    snaps

let verdict_label = function
  | Cv_verify.Containment.Proved -> "proved"
  | Cv_verify.Containment.Violated _ -> "violated"
  | Cv_verify.Containment.Unknown u ->
    "unknown:" ^ Cv_verify.Containment.reason_name u.Cv_verify.Containment.reason

(* The same property across verdict kinds: a provable and a falsifiable
   output box. Every snapshot of the run must resume to the identical
   verdict. *)
let test_resume_equivalence_verdicts () =
  let net = fig2_net () in
  List.iter
    (fun (name, hi) ->
      let prop =
        Cv_verify.Property.make ~din:fig2_box
          ~dout:(Cv_interval.Box.of_bounds [| -1. |] [| hi |])
      in
      let snaps = ref [] in
      let sink =
        Cv_util.Checkpoint.create ~every:0. (fun j -> snaps := j :: !snaps)
      in
      let baseline, _ = Cv_verify.Range.verify_exact ~checkpoint:sink net prop in
      List.iteri
        (fun i snap ->
          let resumed, _ = Cv_verify.Range.verify_exact ~resume:snap net prop in
          Alcotest.(check string)
            (Printf.sprintf "%s verdict after resume from snapshot %d" name i)
            (verdict_label baseline) (verdict_label resumed))
        (List.rev !snaps))
    [ ("provable", 13.); ("falsifiable", 5.) ]

(* Attempt-granular strategy checkpoints: run_until_decisive resumed
   from its own snapshot must skip the replayed attempts (not rerun
   them) and reach the same verdict. *)
let test_resume_strategy_attempts () =
  let runs = Array.make 3 0 in
  let attempt i outcome () =
    runs.(i) <- runs.(i) + 1;
    { Cv_core.Report.name = Printf.sprintf "attempt%d" i;
      outcome;
      timing = Cv_core.Report.sequential_timing 0.;
      detail = "" }
  in
  let attempts () =
    [ attempt 0 (Cv_core.Report.Inconclusive "no");
      attempt 1 (Cv_core.Report.Inconclusive "still no");
      attempt 2 Cv_core.Report.Safe ]
  in
  let snaps = ref [] in
  let sink = Cv_util.Checkpoint.create ~every:0. (fun j -> snaps := j :: !snaps) in
  let baseline = Cv_core.Strategy.run_until_decisive ~checkpoint:sink (attempts ()) in
  Alcotest.(check bool) "baseline is safe" true
    (baseline.Cv_core.Report.verdict = Cv_core.Report.Safe);
  (* Two inconclusive attempts, so two attempt-level snapshots. *)
  Alcotest.(check int) "one snapshot per inconclusive attempt" 2
    (List.length !snaps);
  Array.fill runs 0 3 0;
  let snap = List.hd !snaps (* both attempts recorded *) in
  let resumed = Cv_core.Strategy.run_until_decisive ~resume:snap (attempts ()) in
  Alcotest.(check bool) "resumed verdict is safe" true
    (resumed.Cv_core.Report.verdict = Cv_core.Report.Safe);
  Alcotest.(check (array int)) "replayed attempts are not rerun"
    [| 0; 0; 1 |] runs;
  Alcotest.(check int) "resumed report still lists every attempt" 3
    (List.length resumed.Cv_core.Report.attempts)

(* ------------------------------------------------------------------ *)
(* Runstate envelope                                                   *)
(* ------------------------------------------------------------------ *)

let fp = "deadbeef"

let save_ck ?scope path payload =
  Cv_core.Runstate.save ?scope ~path ~kind:Cv_core.Runstate.Verify
    ~fingerprint:fp payload

let load_ck ?(kind = Cv_core.Runstate.Verify) ?(fingerprint = fp)
    ?(scope = None) path =
  Cv_core.Runstate.load ~path ~kind ~fingerprint ~scope

let test_runstate_roundtrip () =
  let path = tmp_file () in
  let payload = J.Obj [ ("nodes", J.Num 17.) ] in
  save_ck path payload;
  (match load_ck path with
  | Ok p -> Alcotest.(check string) "payload" (J.to_string payload) (J.to_string p)
  | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e));
  Sys.remove path

let test_runstate_mismatches () =
  let path = tmp_file () in
  save_ck path J.Null;
  (match load_ck ~kind:Cv_core.Runstate.Svudc path with
  | Error (Cv_core.Runstate.Checkpoint_mismatch msg) ->
    Alcotest.(check bool) "kind mismatch names both kinds" true
      (let has s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has msg "verify" && has msg "svudc")
  | Ok _ -> Alcotest.fail "wrong-kind checkpoint must be refused"
  | Error (Cv_core.Runstate.Corrupt_checkpoint msg) ->
    Alcotest.fail ("wrong-kind misreported as corrupt: " ^ msg));
  (match load_ck ~fingerprint:"cafef00d" path with
  | Error (Cv_core.Runstate.Checkpoint_mismatch _) -> ()
  | _ -> Alcotest.fail "wrong-network checkpoint must be refused");
  Sys.remove path

(* Scope validation: a checkpoint is bound to the property it was taken
   for. A loader expecting a scope refuses both a different scope and a
   scope-less file; a loader without expectations still reads both. *)
let test_runstate_scope () =
  let path = tmp_file () in
  save_ck ~scope:"prop-a" path J.Null;
  (match load_ck ~scope:(Some "prop-a") path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e));
  (match load_ck ~scope:(Some "prop-b") path with
  | Error (Cv_core.Runstate.Checkpoint_mismatch _) -> ()
  | _ -> Alcotest.fail "wrong-property checkpoint must be refused");
  (* A caller without a scope expectation (legacy paths) still loads. *)
  (match load_ck path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e));
  (* An unscoped file cannot prove what it was taken for. *)
  save_ck path J.Null;
  (match load_ck ~scope:(Some "prop-a") path with
  | Error (Cv_core.Runstate.Checkpoint_mismatch _) -> ()
  | _ -> Alcotest.fail "scope-less checkpoint must be refused when a scope \
                        is expected");
  Sys.remove path

let test_runstate_corruption () =
  let path = tmp_file () in
  let oc = open_out path in
  output_string oc "{\"format\":\"contiver-checkpoint\",\"version\":2,";
  close_out oc;
  (match load_ck path with
  | Error (Cv_core.Runstate.Corrupt_checkpoint _) -> ()
  | _ -> Alcotest.fail "truncated checkpoint must be rejected as corrupt");
  (* Valid envelope, bit-flipped payload: the checksum must catch it. *)
  save_ck path (J.Obj [ ("nodes", J.Num 17.) ]);
  let doc = In_channel.with_open_text path In_channel.input_all in
  let flipped =
    String.map (fun c -> if c = '7' then '9' else c) doc
  in
  let oc = open_out path in
  output_string oc flipped;
  close_out oc;
  (match load_ck path with
  | Error (Cv_core.Runstate.Corrupt_checkpoint _) -> ()
  | Ok _ -> Alcotest.fail "checksum must catch a bit-flipped payload"
  | Error (Cv_core.Runstate.Checkpoint_mismatch _) ->
    Alcotest.fail "bit flip misreported as mismatch");
  (match load_ck "/nonexistent/contiver.ck.json" with
  | Error (Cv_core.Runstate.Corrupt_checkpoint _) -> ()
  | _ -> Alcotest.fail "missing checkpoint file must be a typed error");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Artifact writer crash-safety                                        *)
(* ------------------------------------------------------------------ *)

(* Concurrent writers to one path must never interleave: each save goes
   through a unique temp file and an atomic rename, so afterwards the
   file is exactly one writer's intact document. *)
let test_concurrent_saves_intact () =
  let path = tmp_file () in
  let writers = [ 0; 1; 2; 3 ] in
  ignore
    (Cv_util.Parallel.map_list ~domains:4
       (fun w ->
         for i = 0 to 24 do
           save_ck path
             (J.Obj [ ("writer", J.Num (float_of_int w));
                      ("i", J.Num (float_of_int i)) ])
         done)
       writers);
  (match load_ck path with
  | Ok (J.Obj fields) -> (
    match List.assoc_opt "writer" fields with
    | Some (J.Num w) ->
      Alcotest.(check bool) "payload is one intact write" true
        (List.mem (int_of_float w) writers)
    | _ -> Alcotest.fail "payload lost its writer field")
  | Ok _ -> Alcotest.fail "payload shape changed"
  | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e));
  Sys.remove path

(* A write killed mid-checkpoint abandons its temp file and leaves the
   previous checkpoint untouched and loadable. *)
let test_kill_mid_checkpoint_keeps_previous () =
  let path = tmp_file () in
  let before = J.Obj [ ("round", J.Num 1.) ] in
  save_ck path before;
  Cv_util.Fault.with_fault ~mode:Cv_util.Fault.Once
    Cv_util.Fault.Kill_mid_checkpoint (fun () ->
      match save_ck path (J.Obj [ ("round", J.Num 2.) ]) with
      | () -> Alcotest.fail "armed kill-mid-checkpoint must raise"
      | exception Cv_util.Fault.Injected _ -> ());
  (match load_ck path with
  | Ok p ->
    Alcotest.(check string) "previous checkpoint intact"
      (J.to_string before) (J.to_string p)
  | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e));
  (* And with the fault gone, the next save goes through. *)
  save_ck path (J.Obj [ ("round", J.Num 3.) ]);
  (match load_ck path with
  | Ok (J.Obj [ ("round", J.Num 3.) ]) -> ()
  | _ -> Alcotest.fail "post-fault save must land");
  Sys.remove path

let () =
  Alcotest.run "cv_checkpoint"
    [ ( "sink",
        [ Alcotest.test_case "cadence" `Quick test_cadence;
          Alcotest.test_case "wrap layers" `Quick test_wrap_layers ] );
      ( "resume",
        [ Alcotest.test_case "range equivalence" `Quick
            test_resume_equivalence_range;
          Alcotest.test_case "verdict equivalence" `Quick
            test_resume_equivalence_verdicts;
          Alcotest.test_case "strategy attempts" `Quick
            test_resume_strategy_attempts ] );
      ( "runstate",
        [ Alcotest.test_case "roundtrip" `Quick test_runstate_roundtrip;
          Alcotest.test_case "mismatches" `Quick test_runstate_mismatches;
          Alcotest.test_case "property scope" `Quick test_runstate_scope;
          Alcotest.test_case "corruption" `Quick test_runstate_corruption ] );
      ( "artifact-writer",
        [ Alcotest.test_case "concurrent saves" `Quick
            test_concurrent_saves_intact;
          Alcotest.test_case "kill mid-checkpoint" `Quick
            test_kill_mid_checkpoint_keeps_previous ] ) ]
