(* Tests for Cv_core.Session: the stateful continuous-verification
   loop — certify, observe, absorb enlargements, adopt versions,
   retarget specifications; rejected transitions leave the session
   unchanged. *)

let small_net seed =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims:[ 3; 6; 5; 1 ]
    ~act:Cv_nn.Activation.Relu ()

let din3 = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1.

let certified_session ?(seed = 5) () =
  let net = small_net seed in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.05 Cv_domains.Analyzer.Symint net
      din3
  in
  let dout = Cv_interval.Box.expand 0.05 (chain.(Array.length chain - 1)) in
  let prop = Cv_verify.Property.make ~din:din3 ~dout in
  match Cv_core.Session.certify ~widen:0.05 net prop with
  | Ok s -> (s, net, prop)
  | Error _ -> Alcotest.fail "certification should succeed"

let test_certify_opens_session () =
  let s, net, prop = certified_session () in
  Alcotest.(check bool) "network installed" true
    (Cv_nn.Network.param_dist_inf (Cv_core.Session.network s) net = 0.);
  Alcotest.(check bool) "property matches" true
    (Cv_interval.Box.equal
       (Cv_core.Session.property s).Cv_verify.Property.din
       prop.Cv_verify.Property.din);
  Alcotest.(check int) "no pending ood" 0 (Cv_core.Session.pending_ood s);
  match Cv_core.Session.history s with
  | [ Cv_core.Session.Certified _ ] -> ()
  | _ -> Alcotest.fail "history should contain exactly the certification"

let test_certify_rejects_unsafe_property () =
  let net = small_net 5 in
  (* D_out strictly inside the reachable range: certification fails. *)
  let prop =
    Cv_verify.Property.make ~din:din3
      ~dout:(Cv_interval.Box.of_bounds [| 1e10 |] [| 1e10 +. 1. |])
  in
  match Cv_core.Session.certify net prop with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject"

let test_observe_and_absorb () =
  let s, net, prop = certified_session () in
  (* In-domain observation: nothing pending. *)
  Alcotest.(check bool) "in-domain passes" true
    (Cv_core.Session.observe s (Cv_interval.Box.center din3) = None);
  (* Slightly out-of-domain observation. *)
  let outlier = Array.map (fun x -> x +. 0.003) (Cv_interval.Box.upper din3) in
  Alcotest.(check bool) "outlier flagged" true
    (Cv_core.Session.observe s outlier <> None);
  Alcotest.(check int) "pending" 1 (Cv_core.Session.pending_ood s);
  let report = Cv_core.Session.absorb_enlargement ~margin:0.001 s in
  (match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected safe absorb: %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check int) "ood cleared" 0 (Cv_core.Session.pending_ood s);
  (* The enlarged domain is now certified: the same outlier passes. *)
  Alcotest.(check bool) "outlier now in-domain" true
    (Cv_core.Session.observe s outlier = None);
  (* The refreshed artifact covers the enlarged domain. *)
  Alcotest.(check bool) "artifact din enlarged" true
    (Cv_interval.Box.subset prop.Cv_verify.Property.din
       (Cv_core.Session.property s).Cv_verify.Property.din);
  ignore net

let test_adopt_good_candidate () =
  let s, net, _ = certified_session () in
  let candidate =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 9) ~sigma:0.001)
      net
  in
  let report = Cv_core.Session.adopt s candidate in
  (match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected adoption: %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check (float 1e-12)) "candidate installed" 0.
    (Cv_nn.Network.param_dist_inf (Cv_core.Session.network s) candidate)

let test_adopt_rejects_wild_candidate () =
  let s, net, _ = certified_session () in
  let wild =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 11) ~sigma:2.0)
      net
  in
  let report = Cv_core.Session.adopt s wild in
  match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe ->
    (* If the strategy proves it safe, installation is fine — but then
       sampling must agree. *)
    let dout = (Cv_core.Session.property s).Cv_verify.Property.dout in
    let rng = Cv_util.Rng.create 3 in
    for _ = 1 to 1000 do
      let x = Cv_interval.Box.sample rng din3 in
      Alcotest.(check bool) "claimed safe holds" true
        (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval wild x) dout)
    done
  | _ ->
    (* Rejected: the old network must still be installed. *)
    Alcotest.(check (float 1e-12)) "old version kept" 0.
      (Cv_nn.Network.param_dist_inf (Cv_core.Session.network s) net)

let test_retarget () =
  let s, _, prop = certified_session () in
  (* Relaxing the specification always transfers. *)
  let relaxed = Cv_interval.Box.expand 1.0 prop.Cv_verify.Property.dout in
  let report = Cv_core.Session.retarget s relaxed in
  (match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected retarget: %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check bool) "new dout installed" true
    (Cv_interval.Box.equal
       (Cv_core.Session.property s).Cv_verify.Property.dout
       relaxed)

let test_history_accumulates () =
  let s, net, prop = certified_session () in
  ignore (Cv_core.Session.observe s (Array.map (fun x -> x +. 0.002) (Cv_interval.Box.upper din3)));
  ignore (Cv_core.Session.absorb_enlargement ~margin:0.001 s);
  ignore
    (Cv_core.Session.adopt s
       (Cv_nn.Network.map_layers
          (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 13) ~sigma:0.0005)
          net));
  ignore (Cv_core.Session.retarget s (Cv_interval.Box.expand 0.5 prop.Cv_verify.Property.dout));
  let h = Cv_core.Session.history s in
  Alcotest.(check bool) "at least 5 events" true (List.length h >= 5);
  List.iter
    (fun e ->
      Alcotest.(check bool) "printable" true
        (String.length (Cv_core.Session.event_string e) > 0))
    h

let test_resume_from_artifact () =
  let s, net, _ = certified_session () in
  let artifact = Cv_core.Session.artifact s in
  let s2 = Cv_core.Session.resume net artifact in
  Alcotest.(check int) "fresh monitor" 0 (Cv_core.Session.pending_ood s2);
  (* Mismatched network rejected. *)
  try
    ignore (Cv_core.Session.resume (small_net 77) artifact);
    Alcotest.fail "should reject mismatch"
  with Invalid_argument _ -> ()

let temp_artifact_path () =
  Filename.temp_file "contiver-test-artifact" ".json"

let test_resume_file_roundtrip () =
  let s, net, _ = certified_session () in
  let path = temp_artifact_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_artifacts.Artifacts.save path (Cv_core.Session.artifact s);
      (match Cv_core.Session.resume_file net path with
      | Ok s2 -> Alcotest.(check int) "resumed" 0 (Cv_core.Session.pending_ood s2)
      | Error e ->
        Alcotest.failf "resume_file should succeed: %s"
          (Cv_core.Session.resume_error_message e));
      (* A different network is a typed mismatch, not an exception. *)
      match Cv_core.Session.resume_file (small_net 77) path with
      | Error (Cv_core.Session.Artifact_mismatch _) -> ()
      | Error e ->
        Alcotest.failf "expected mismatch: %s"
          (Cv_core.Session.resume_error_message e)
      | Ok _ -> Alcotest.fail "mismatched network must be rejected")

let test_resume_file_truncated_artifact () =
  (* Fault injection: the artifact write stops halfway through, as if
     the process died mid-save with a non-atomic writer. Resume must
     fail with a typed Corrupt_artifact — and a fresh certification must
     still succeed afterwards (the session layer recovers). *)
  let s, net, prop = certified_session () in
  let path = temp_artifact_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_util.Fault.with_fault Cv_util.Fault.Truncate_artifact (fun () ->
          Cv_artifacts.Artifacts.save path (Cv_core.Session.artifact s));
      (match Cv_core.Session.resume_file net path with
      | Error (Cv_core.Session.Corrupt_artifact _) -> ()
      | Error e ->
        Alcotest.failf "expected Corrupt_artifact: %s"
          (Cv_core.Session.resume_error_message e)
      | Ok _ -> Alcotest.fail "truncated artifact must not resume");
      (* Recovery: re-certify from scratch and persist a good artifact. *)
      match Cv_core.Session.certify ~widen:0.05 net prop with
      | Error _ -> Alcotest.fail "re-certification should succeed"
      | Ok s2 -> (
        Cv_artifacts.Artifacts.save path (Cv_core.Session.artifact s2);
        match Cv_core.Session.resume_file net path with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "clean save should resume: %s"
            (Cv_core.Session.resume_error_message e)))

let test_resume_file_checksum_mismatch () =
  let s, net, _ = certified_session () in
  let path = temp_artifact_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_artifacts.Artifacts.save path (Cv_core.Session.artifact s);
      (* Flip one digit inside the payload: the document still parses,
         but the stored checksum no longer matches. *)
      let ic = open_in_bin path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let corrupted =
        match String.index_opt content '7' with
        | Some i ->
          String.mapi (fun j c -> if j = i then '8' else c) content
        | None -> (
          match String.index_opt content '3' with
          | Some i -> String.mapi (fun j c -> if j = i then '4' else c) content
          | None -> Alcotest.fail "artifact should contain a digit")
      in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc corrupted);
      match Cv_core.Session.resume_file net path with
      | Error (Cv_core.Session.Corrupt_artifact msg) ->
        Alcotest.(check bool) "mentions the checksum" true
          (String.length msg > 0)
      | Error e ->
        Alcotest.failf "expected Corrupt_artifact: %s"
          (Cv_core.Session.resume_error_message e)
      | Ok _ -> Alcotest.fail "bit-flipped artifact must not resume")

let test_adopt_budget_exhausted () =
  (* A spent budget during adopt must leave the session unchanged and
     record a Budget_exhausted event — the old certificate keeps
     standing. *)
  let s, net, prop = certified_session () in
  let artifact_before = Cv_core.Session.artifact s in
  let candidate =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 9) ~sigma:0.001)
      net
  in
  let report =
    Cv_core.Session.adopt
      ~deadline:(Cv_util.Deadline.make ~seconds:(-1.))
      s candidate
  in
  (match report.Cv_core.Report.verdict with
  | Cv_core.Report.Exhausted _ -> ()
  | v ->
    Alcotest.failf "expected Exhausted: %s" (Cv_core.Report.outcome_string v));
  Alcotest.(check (float 1e-12)) "old network kept" 0.
    (Cv_nn.Network.param_dist_inf (Cv_core.Session.network s) net);
  Alcotest.(check bool) "artifact untouched" true
    (Cv_core.Session.artifact s == artifact_before);
  Alcotest.(check bool) "property unchanged" true
    (Cv_interval.Box.equal
       (Cv_core.Session.property s).Cv_verify.Property.din
       prop.Cv_verify.Property.din);
  match List.rev (Cv_core.Session.history s) with
  | Cv_core.Session.Budget_exhausted _ :: _ -> ()
  | _ -> Alcotest.fail "newest event should be Budget_exhausted"

let () =
  Alcotest.run "cv_session"
    [ ( "session",
        [ Alcotest.test_case "certify" `Quick test_certify_opens_session;
          Alcotest.test_case "certify rejects unsafe" `Quick
            test_certify_rejects_unsafe_property;
          Alcotest.test_case "observe+absorb" `Quick test_observe_and_absorb;
          Alcotest.test_case "adopt good candidate" `Quick
            test_adopt_good_candidate;
          Alcotest.test_case "adopt wild candidate" `Quick
            test_adopt_rejects_wild_candidate;
          Alcotest.test_case "retarget" `Quick test_retarget;
          Alcotest.test_case "history" `Quick test_history_accumulates;
          Alcotest.test_case "resume" `Quick test_resume_from_artifact ] );
      ( "robustness",
        [ Alcotest.test_case "resume_file roundtrip" `Quick
            test_resume_file_roundtrip;
          Alcotest.test_case "truncated artifact" `Quick
            test_resume_file_truncated_artifact;
          Alcotest.test_case "checksum mismatch" `Quick
            test_resume_file_checksum_mismatch;
          Alcotest.test_case "adopt exhausts budget" `Quick
            test_adopt_budget_exhausted ] ) ]
