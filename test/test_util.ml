(* Tests for Cv_util: float helpers, RNG, JSON, stats, parallel map. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Float_utils                                                         *)
(* ------------------------------------------------------------------ *)

let test_approx_eq () =
  Alcotest.(check bool) "equal" true (Cv_util.Float_utils.approx_eq 1.0 1.0);
  Alcotest.(check bool)
    "within tol" true
    (Cv_util.Float_utils.approx_eq ~tol:1e-6 1.0 (1.0 +. 1e-8));
  Alcotest.(check bool)
    "outside tol" false
    (Cv_util.Float_utils.approx_eq ~tol:1e-9 1.0 1.1);
  Alcotest.(check bool)
    "relative for large" true
    (Cv_util.Float_utils.approx_eq ~tol:1e-9 1e12 (1e12 +. 1.))

let test_clamp () =
  check_float "below" 0. (Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Cv_util.Float_utils.clamp ~lo:0. ~hi:1. 3.);
  check_float "inside" 0.5 (Cv_util.Float_utils.clamp ~lo:0. ~hi:1. 0.5)

let test_relu_lerp_sign () =
  check_float "relu neg" 0. (Cv_util.Float_utils.relu (-2.));
  check_float "relu pos" 2. (Cv_util.Float_utils.relu 2.);
  check_float "lerp mid" 1.5 (Cv_util.Float_utils.lerp 1. 2. 0.5);
  check_float "sign neg" (-1.) (Cv_util.Float_utils.sign (-0.3));
  check_float "sign zero" 0. (Cv_util.Float_utils.sign 0.)

let test_sum_max_abs () =
  check_float "sum" 6. (Cv_util.Float_utils.sum [| 1.; 2.; 3. |]);
  check_float "max_abs" 5. (Cv_util.Float_utils.max_abs [| 1.; -5.; 3. |]);
  check_float "max_abs empty" 0. (Cv_util.Float_utils.max_abs [||])

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Cv_util.Rng.create 42 and b = Cv_util.Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream"
      (Cv_util.Rng.float a ~lo:0. ~hi:1.)
      (Cv_util.Rng.float b ~lo:0. ~hi:1.)
  done

let test_rng_bounds () =
  let rng = Cv_util.Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Cv_util.Rng.float rng ~lo:(-2.) ~hi:3. in
    Alcotest.(check bool) "in range" true (x >= -2. && x < 3.)
  done

let test_rng_gaussian_moments () =
  let rng = Cv_util.Rng.create 9 in
  let xs = Cv_util.Rng.gaussian_array rng 20000 ~mu:1.5 ~sigma:2. in
  let m = Cv_util.Stats.mean xs in
  let s = Cv_util.Stats.stddev xs in
  Alcotest.(check bool) "mean close" true (Float.abs (m -. 1.5) < 0.1);
  Alcotest.(check bool) "stddev close" true (Float.abs (s -. 2.) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Cv_util.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Cv_util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let rng = Cv_util.Rng.create 5 in
  let child = Cv_util.Rng.split rng in
  (* Child and parent produce different streams. *)
  let xs = Cv_util.Rng.uniform_array rng 10 ~lo:0. ~hi:1. in
  let ys = Cv_util.Rng.uniform_array child 10 ~lo:0. ~hi:1. in
  Alcotest.(check bool) "different streams" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_print_parse_basic () =
  let open Cv_util.Json in
  let doc =
    Obj
      [ ("a", Num 1.5);
        ("b", Str "hi\n\"there\"");
        ("c", List [ Bool true; Bool false; Null ]);
        ("d", Obj []) ]
  in
  let round = parse (to_string doc) in
  Alcotest.(check string) "roundtrip" (to_string doc) (to_string round)

let test_json_numbers () =
  let open Cv_util.Json in
  check_float "int" 42. (to_float (parse "42"));
  check_float "neg" (-3.25) (to_float (parse "-3.25"));
  check_float "exp" 1e-7 (to_float (parse "1e-7"));
  check_float "nested" 2.
    (to_float (member "x" (parse "{\"x\": 2}")))

let test_json_nonfinite () =
  let open Cv_util.Json in
  let s = to_string (List [ Num Float.infinity; Num Float.neg_infinity ]) in
  match parse s with
  | List [ Num a; Num b ] ->
    Alcotest.(check bool) "inf" true (a = Float.infinity);
    Alcotest.(check bool) "-inf" true (b = Float.neg_infinity)
  | _ -> Alcotest.fail "expected list"

let test_json_errors () =
  let open Cv_util.Json in
  (try
     ignore (parse "{} x");
     Alcotest.fail "should raise on trailing garbage"
   with Error _ -> ());
  (try
     ignore (parse "[1, 2");
     Alcotest.fail "should raise"
   with Error _ -> ());
  try
    ignore (member "missing" (parse "{}"));
    Alcotest.fail "should raise"
  with Error _ -> ()

let test_json_float_array () =
  let open Cv_util.Json in
  let a = [| 1.; -2.5; 3e10 |] in
  Alcotest.(check (array (float 1e-9)))
    "float array roundtrip" a
    (float_array (parse (to_string (of_float_array a))))


let test_json_unicode_escape () =
  let open Cv_util.Json in
  (* \u0041 = 'A'; our writer never emits non-ASCII escapes *)
  (match parse "\"\\u0041\"" with
  | Str "A" -> ()
  | _ -> Alcotest.fail "unicode escape");
  (* control characters are escaped on output and parse back *)
  let s = to_string (Str "a\001b") in
  match parse s with
  | Str v -> Alcotest.(check int) "length preserved" 3 (String.length v)
  | _ -> Alcotest.fail "control char roundtrip"

let check_str_parse name expect src =
  match Cv_util.Json.parse src with
  | Cv_util.Json.Str v -> Alcotest.(check string) name expect v
  | _ -> Alcotest.fail name

let test_json_unicode_bmp () =
  (* 2-byte UTF-8: \u00e9 = é; 3-byte: \u20ac = €, \u4e2d = 中 *)
  check_str_parse "latin-1 supplement" "\xc3\xa9" "\"\\u00e9\"";
  check_str_parse "euro sign" "\xe2\x82\xac" "\"\\u20ac\"";
  check_str_parse "cjk" "\xe4\xb8\xad" "\"\\u4e2d\"";
  check_str_parse "mixed" "a\xc3\xa9b" "\"a\\u00e9b\"";
  (* boundary code points of each encoding width *)
  check_str_parse "u+007f" "\x7f" "\"\\u007f\"";
  check_str_parse "u+0080" "\xc2\x80" "\"\\u0080\"";
  check_str_parse "u+07ff" "\xdf\xbf" "\"\\u07ff\"";
  check_str_parse "u+0800" "\xe0\xa0\x80" "\"\\u0800\"";
  check_str_parse "u+ffff" "\xef\xbf\xbf" "\"\\uffff\""

let test_json_unicode_surrogates () =
  (* \ud83d\ude00 = 😀 (U+1F600), 4-byte UTF-8 *)
  check_str_parse "surrogate pair" "\xf0\x9f\x98\x80" "\"\\ud83d\\ude00\"";
  (* U+10000, the lowest astral code point *)
  check_str_parse "u+10000" "\xf0\x90\x80\x80" "\"\\ud800\\udc00\"";
  (* U+10FFFF, the highest *)
  check_str_parse "u+10ffff" "\xf4\x8f\xbf\xbf" "\"\\udbff\\udfff\"";
  (* lone surrogates decay to U+FFFD *)
  check_str_parse "lone high" "\xef\xbf\xbd" "\"\\ud800\"";
  check_str_parse "lone low" "\xef\xbf\xbd" "\"\\udc00\"";
  check_str_parse "high then ascii escape" "\xef\xbf\xbdA" "\"\\ud800\\u0041\"";
  check_str_parse "high then newline escape" "\xef\xbf\xbd\n" "\"\\ud800\\n\"";
  check_str_parse "high then raw char" "\xef\xbf\xbdx" "\"\\ud800x\"";
  (* malformed hex still rejects *)
  match Cv_util.Json.parse "\"\\uzzzz\"" with
  | exception _ -> ()
  | _ -> Alcotest.fail "bad hex accepted"

let test_json_unicode_roundtrip () =
  (* the writer passes UTF-8 bytes through raw; escaped input must
     round-trip to the identical byte sequence after one decode *)
  let open Cv_util.Json in
  List.iter
    (fun src ->
      match parse src with
      | Str v -> (
        match parse (to_string (Str v)) with
        | Str v' -> Alcotest.(check string) ("roundtrip " ^ src) v v'
        | _ -> Alcotest.fail "roundtrip shape")
      | _ -> Alcotest.fail "decode shape")
    [ "\"\\u00e9\""; "\"\\u20ac\""; "\"\\ud83d\\ude00\""; "\"\\ud800\"" ]

let test_json_deep_nesting () =
  let open Cv_util.Json in
  let rec deep n = if n = 0 then Num 1. else List [ deep (n - 1) ] in
  let doc = deep 100 in
  let doc2 = parse (to_string doc) in
  let rec depth = function List [ x ] -> 1 + depth x | _ -> 0 in
  Alcotest.(check int) "depth preserved" 100 (depth doc2)

let json_roundtrip_prop =
  QCheck.Test.make ~name:"json string escape roundtrip" ~count:300
    QCheck.printable_string (fun s ->
      let open Cv_util.Json in
      match parse (to_string (Str s)) with Str s' -> s' = s | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  check_float "mean" 2. (Cv_util.Stats.mean [| 1.; 2.; 3. |]);
  check_float "mean empty" 0. (Cv_util.Stats.mean [||]);
  check_float "variance" (2. /. 3.) (Cv_util.Stats.variance [| 1.; 2.; 3. |]);
  check_float "median odd" 2. (Cv_util.Stats.median [| 3.; 1.; 2. |]);
  check_float "median even" 2.5 (Cv_util.Stats.median [| 4.; 1.; 2.; 3. |]);
  let lo, hi = Cv_util.Stats.min_max [| 3.; -1.; 2. |] in
  check_float "min" (-1.) lo;
  check_float "max" 3. hi

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0. (Cv_util.Stats.percentile 0. xs);
  check_float "p100" 100. (Cv_util.Stats.percentile 100. xs);
  check_float "p50" 50. (Cv_util.Stats.percentile 50. xs);
  check_float "p25" 25. (Cv_util.Stats.percentile 25. xs)

let test_stats_mse () =
  check_float "mse zero" 0. (Cv_util.Stats.mse [| 1.; 2. |] [| 1.; 2. |]);
  check_float "mse" 0.5 (Cv_util.Stats.mse [| 0.; 0. |] [| 1.; 0. |])

(* ------------------------------------------------------------------ *)
(* Timer / Parallel                                                    *)
(* ------------------------------------------------------------------ *)

let test_timer () =
  let r, dt = Cv_util.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "time nonneg" true (dt >= 0.)

let test_parallel_map_order () =
  let xs = Array.init 100 Fun.id in
  let ys = Cv_util.Parallel.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (array int)) "squares in order"
    (Array.map (fun x -> x * x) xs)
    ys

let test_parallel_map_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||]
    (Cv_util.Parallel.map ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single" [| 7 |]
    (Cv_util.Parallel.map ~domains:4 (fun x -> x + 1) [| 6 |])

let test_parallel_exception () =
  try
    ignore
      (Cv_util.Parallel.map ~domains:2
         (fun x -> if x = 3 then failwith "boom" else x)
         (Array.init 8 Fun.id));
    Alcotest.fail "should raise"
  with Failure msg -> Alcotest.(check string) "propagated" "boom" msg

let test_parallel_predicates () =
  let xs = Array.init 20 Fun.id in
  Alcotest.(check bool) "exists" true
    (Cv_util.Parallel.exists ~domains:3 (fun x -> x = 13) xs);
  Alcotest.(check bool) "not exists" false
    (Cv_util.Parallel.exists ~domains:3 (fun x -> x = 99) xs);
  Alcotest.(check bool) "for_all" true
    (Cv_util.Parallel.for_all ~domains:3 (fun x -> x < 20) xs);
  Alcotest.(check bool) "not for_all" false
    (Cv_util.Parallel.for_all ~domains:3 (fun x -> x < 19) xs)

(* Regression: exists/for_all used to force every element even after a
   witness settled the answer. A poisoned element after the witness must
   never run on the sequential path. *)
let test_parallel_exists_early_exit () =
  let poison i =
    if i = 0 then true else Alcotest.failf "element %d was forced" i
  in
  Alcotest.(check bool) "witness first, poison abandoned" true
    (Cv_util.Parallel.exists ~domains:1 poison (Array.init 8 Fun.id));
  let poison_forall i =
    if i = 0 then false else Alcotest.failf "element %d was forced" i
  in
  Alcotest.(check bool) "counterexample first, poison abandoned" false
    (Cv_util.Parallel.for_all ~domains:1 poison_forall (Array.init 8 Fun.id))

let test_parallel_exists_witness_wins () =
  (* Parallel path: a found witness settles the answer even when other
     elements raise concurrently. *)
  let xs = Array.init 64 Fun.id in
  Alcotest.(check bool) "all witnesses" true
    (Cv_util.Parallel.exists ~domains:4 (fun _ -> true) xs);
  (* No witness at all: the exception must still propagate. *)
  (try
     ignore (Cv_util.Parallel.exists ~domains:4 (fun _ -> failwith "boom") xs);
     Alcotest.fail "should raise without a witness"
   with Failure msg -> Alcotest.(check string) "propagated" "boom" msg)

let test_parallel_max_time () =
  let thunks = Array.init 4 (fun i () -> i * 2) in
  let results, max_t, sum_t = Cv_util.Parallel.max_time ~domains:2 thunks in
  Alcotest.(check (array int)) "results" [| 0; 2; 4; 6 |] results;
  Alcotest.(check bool) "max<=sum" true (max_t <= sum_t +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Cv_util.Heap.create () in
  Alcotest.(check bool) "empty" true (Cv_util.Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.) string))) "peek empty" None
    (Cv_util.Heap.peek h);
  Cv_util.Heap.push h 1.5 "b";
  Cv_util.Heap.push h 3.0 "a";
  Cv_util.Heap.push h 0.5 "c";
  Alcotest.(check int) "size" 3 (Cv_util.Heap.size h);
  Alcotest.(check (option (pair (float 0.) string)))
    "peek max" (Some (3.0, "a")) (Cv_util.Heap.peek h);
  Alcotest.(check (option (pair (float 0.) string)))
    "pop max" (Some (3.0, "a")) (Cv_util.Heap.pop h);
  Alcotest.(check (option (pair (float 0.) string)))
    "pop next" (Some (1.5, "b")) (Cv_util.Heap.pop h);
  Alcotest.(check (option (pair (float 0.) string)))
    "pop last" (Some (0.5, "c")) (Cv_util.Heap.pop h);
  Alcotest.(check (option (pair (float 0.) string))) "pop empty" None
    (Cv_util.Heap.pop h)

(* Interleaved pushes and pops drain in non-increasing priority order
   (the invariant the best-first frontier relies on), across the
   internal growth threshold. *)
let test_heap_ordering () =
  let h = Cv_util.Heap.create () in
  let rng = Cv_util.Rng.create 7 in
  for i = 0 to 199 do
    Cv_util.Heap.push h (Cv_util.Rng.float rng ~lo:0. ~hi:100.) i;
    if i mod 3 = 0 then ignore (Cv_util.Heap.pop h)
  done;
  let last = ref Float.infinity in
  let n = ref 0 in
  let rec drain () =
    match Cv_util.Heap.pop h with
    | None -> ()
    | Some (p, _) ->
      Alcotest.(check bool) "non-increasing" true (p <= !last);
      last := p;
      incr n;
      drain ()
  in
  drain ();
  Alcotest.(check int) "drained all" (200 - 67) !n;
  Alcotest.(check bool) "empty after drain" true (Cv_util.Heap.is_empty h)

let () =
  Alcotest.run "cv_util"
    [ ( "float_utils",
        [ Alcotest.test_case "approx_eq" `Quick test_approx_eq;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "relu/lerp/sign" `Quick test_relu_lerp_sign;
          Alcotest.test_case "sum/max_abs" `Quick test_sum_max_abs ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent ] );
      ( "json",
        [ Alcotest.test_case "print/parse" `Quick test_json_print_parse_basic;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "non-finite" `Quick test_json_nonfinite;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "float arrays" `Quick test_json_float_array;
          Alcotest.test_case "unicode escape" `Quick test_json_unicode_escape;
          Alcotest.test_case "unicode bmp" `Quick test_json_unicode_bmp;
          Alcotest.test_case "unicode surrogates" `Quick
            test_json_unicode_surrogates;
          Alcotest.test_case "unicode roundtrip" `Quick
            test_json_unicode_roundtrip;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          QCheck_alcotest.to_alcotest json_roundtrip_prop ] );
      ( "stats",
        [ Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "mse" `Quick test_stats_mse ] );
      ( "timer+parallel",
        [ Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "map edge cases" `Quick
            test_parallel_map_empty_and_single;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_exception;
          Alcotest.test_case "predicates" `Quick test_parallel_predicates;
          Alcotest.test_case "exists early exit" `Quick
            test_parallel_exists_early_exit;
          Alcotest.test_case "exists witness wins" `Quick
            test_parallel_exists_witness_wins;
          Alcotest.test_case "max_time" `Quick test_parallel_max_time ] );
      ( "heap",
        [ Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "ordering" `Quick test_heap_ordering ] ) ]
