(* Tests for Cv_verify.Split_cert (bisection-tree proof artifacts) and
   the SVbTV leaf-reuse route built on them. *)

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let fig2_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.

(* Exact max over the box is 6, one-shot symint gives more: a target of
   [0, 6.5] forces real splitting. *)
let tight_target = Cv_interval.Box.of_bounds [| -0.5 |] [| 6.5 |]

let test_prove_with_splitting () =
  let net = fig2_net () in
  match Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight_target with
  | None -> Alcotest.fail "should prove 6.5 with splitting"
  | Some cert ->
    Alcotest.(check bool) "needed splitting" true
      (Cv_verify.Split_cert.num_leaves cert > 1);
    (* Leaves cover the input box. *)
    let rng = Cv_util.Rng.create 4 in
    for _ = 1 to 1000 do
      let x = Cv_interval.Box.sample rng fig2_box in
      Alcotest.(check bool) "covered" true
        (Array.exists
           (fun leaf -> Cv_interval.Box.mem_tol ~tol:1e-9 x leaf)
           cert.Cv_verify.Split_cert.leaves)
    done;
    (* Self-revalidation succeeds. *)
    Alcotest.(check bool) "revalidate self" true
      (Cv_verify.Split_cert.revalidate cert net)

let test_prove_no_split_needed () =
  let net = fig2_net () in
  let loose = Cv_interval.Box.of_bounds [| -1. |] [| 20. |] in
  match Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:loose with
  | Some cert ->
    Alcotest.(check int) "single leaf" 1 (Cv_verify.Split_cert.num_leaves cert)
  | None -> Alcotest.fail "loose target must be provable"

let test_prove_fails_on_false_property () =
  let net = fig2_net () in
  let false_target = Cv_interval.Box.of_bounds [| -0.5 |] [| 3. |] in
  Alcotest.(check bool) "cannot prove falsity" true
    (Cv_verify.Split_cert.prove ~budget:2000 net ~input_box:fig2_box
       ~target:false_target
    = None)

let test_revalidate_perturbed_soundness () =
  let net = fig2_net () in
  let cert =
    Option.get
      (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight_target)
  in
  let rng = Cv_util.Rng.create 7 in
  for trial = 1 to 10 do
    let net' =
      Cv_nn.Network.map_layers
        (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create (trial * 3)) ~sigma:0.01)
        net
    in
    if Cv_verify.Split_cert.revalidate cert net' then
      (* Accepted: the property must really hold for net'. *)
      for _ = 1 to 300 do
        let x = Cv_interval.Box.sample rng fig2_box in
        Alcotest.(check bool) "revalidation sound" true
          (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x)
             tight_target)
      done
  done

let test_repair () =
  let net = fig2_net () in
  let cert =
    Option.get
      (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight_target)
  in
  (* A moderate perturbation: some leaves may fail; repair should
     re-split them and produce a valid certificate for net'. *)
  let net' =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 5) ~sigma:0.03)
      net
  in
  match Cv_verify.Split_cert.repair cert net' with
  | None -> () (* genuinely unprovable for net' — acceptable *)
  | Some cert' ->
    Alcotest.(check bool) "repaired validates" true
      (Cv_verify.Split_cert.revalidate cert' net');
    let rng = Cv_util.Rng.create 11 in
    for _ = 1 to 500 do
      let x = Cv_interval.Box.sample rng fig2_box in
      Alcotest.(check bool) "repaired sound" true
        (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x)
           tight_target)
    done

(* Fig. 2 network with the first layer's weights scaled by [f]: ReLU is
   positively homogeneous, so every output scales by exactly [f] — a
   deterministic drift that fails precisely the leaves whose output
   bound sat close to the target. *)
let fig2_net_scaled f =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows
           [ [| f; -2. *. f |]; [| -2. *. f; f |]; [| f; -.f |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

(* Regression: repair used to grant each failed leaf the full split
   budget (worst case |failed| x budget). The budget is now shared: the
   whole repair may spend at most [budget] new splits, observable via
   the splitcert.splits counter. *)
let test_repair_shares_budget () =
  let net = fig2_net () in
  (* Exact max over the box is 6; the near-exact target needs real
     splitting and leaves no slack for drift. *)
  let target = Cv_interval.Box.of_bounds [| -0.01 |] [| 6.05 |] in
  let cert =
    Option.get (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target)
  in
  Alcotest.(check bool) "multi-leaf certificate" true
    (Cv_verify.Split_cert.num_leaves cert > 2);
  (* Scaling by 1.02 pushes the true max to 6.12 > 6.05: the property is
     genuinely false for net', so every failed leaf would, under the old
     per-leaf grant, burn a full budget of its own. *)
  let net' = fig2_net_scaled 1.02 in
  let failed = Cv_verify.Split_cert.revalidate_detailed cert net' in
  Alcotest.(check bool) "drift fails several leaves" true
    (List.length failed >= 2);
  let c_splits = Cv_util.Metrics.counter "splitcert.splits" in
  let budget = 3 in
  let before = Cv_util.Metrics.value c_splits in
  let result = Cv_verify.Split_cert.repair ~budget ~domains:1 cert net' in
  let spent = Cv_util.Metrics.value c_splits - before in
  Alcotest.(check bool)
    (Printf.sprintf "spent %d <= shared budget %d" spent budget)
    true (spent <= budget);
  (* Unprovable for net', so a shared-budget repair must give up. *)
  Alcotest.(check bool) "repair gives up within budget" true (result = None)

let test_repair_parallel_revalidation () =
  (* ?domains now reaches the internal revalidation sweep; the verdict
     must not depend on the worker count. *)
  let net = fig2_net () in
  let cert =
    Option.get
      (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight_target)
  in
  (* Scaled max 6.3 still fits tight_target's 6.5 bound: one leaf fails
     and the repair is genuinely provable. *)
  let net' = fig2_net_scaled 1.05 in
  Alcotest.(check bool) "drift fails a leaf" true
    (Cv_verify.Split_cert.revalidate_detailed cert net' <> []);
  let leaves = function
    | None -> -1
    | Some c -> Cv_verify.Split_cert.num_leaves c
  in
  let r1 = Cv_verify.Split_cert.repair ~domains:1 cert net' in
  let r4 = Cv_verify.Split_cert.repair ~domains:4 cert net' in
  Alcotest.(check bool) "repair succeeds" true (r1 <> None);
  Alcotest.(check int) "same outcome at domains 1 and 4" (leaves r1) (leaves r4)

let test_json_roundtrip () =
  let net = fig2_net () in
  let cert =
    Option.get
      (Cv_verify.Split_cert.prove net ~input_box:fig2_box ~target:tight_target)
  in
  let cert' =
    Cv_verify.Split_cert.of_json (Cv_verify.Split_cert.to_json cert)
  in
  Alcotest.(check int) "leaf count" (Cv_verify.Split_cert.num_leaves cert)
    (Cv_verify.Split_cert.num_leaves cert');
  Alcotest.(check bool) "boxes equal" true
    (Cv_interval.Box.equal cert.Cv_verify.Split_cert.input_box
       cert'.Cv_verify.Split_cert.input_box)

(* ------------------------------------------------------------------ *)
(* The leaf-reuse SVbTV route                                          *)
(* ------------------------------------------------------------------ *)

let svbtv_with_cert ~drift_sigma =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 31) ~dims:[ 3; 6; 5; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let din = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.05 Cv_domains.Analyzer.Symint net
      din
  in
  let dout = Cv_interval.Box.expand 0.05 (chain.(Array.length chain - 1)) in
  let prop = Cv_verify.Property.make ~din ~dout in
  let cert =
    Option.get (Cv_verify.Split_cert.prove net ~input_box:din ~target:dout)
  in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain ~split_cert:cert
      ~property:prop ~net ~solver:"split" ~solve_seconds:1. ()
  in
  let net' =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 37) ~sigma:drift_sigma)
      net
  in
  (net, net', din, dout, artifact)

let test_leaf_reuse_small_drift () =
  let _, net', din, dout, artifact = svbtv_with_cert ~drift_sigma:0.001 in
  let p =
    Cv_core.Problem.svbtv
      ~old_net:
        (Cv_nn.Serialize.roundtrip
           (* the artifact's source net: reconstruct via fingerprint match *)
           (let net, _, _, _, _ = svbtv_with_cert ~drift_sigma:0.001 in
            net))
      ~new_net:net' ~artifact ~new_din:din
  in
  let a = Cv_core.Svbtv.leaf_reuse p in
  Alcotest.(check bool) ("leaf-reuse: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  let rng = Cv_util.Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Cv_interval.Box.sample rng din in
    Alcotest.(check bool) "target safe" true
      (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x) dout)
  done

let test_leaf_reuse_with_enlargement () =
  let _, net', din, dout, artifact = svbtv_with_cert ~drift_sigma:0.001 in
  let new_din = Cv_interval.Box.expand 0.002 din in
  let old_net, _, _, _, _ = svbtv_with_cert ~drift_sigma:0.001 in
  let p = Cv_core.Problem.svbtv ~old_net ~new_net:net' ~artifact ~new_din in
  let a = Cv_core.Svbtv.leaf_reuse p in
  (match a.Cv_core.Report.outcome with
  | Cv_core.Report.Unsafe _ -> Alcotest.fail "leaf-reuse never proves unsafety"
  | _ -> ());
  if Cv_core.Report.is_safe a then begin
    let rng = Cv_util.Rng.create 17 in
    for _ = 1 to 1000 do
      let x = Cv_interval.Box.sample rng new_din in
      Alcotest.(check bool) "enlarged target safe" true
        (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x) dout)
    done
  end

let test_leaf_reuse_requires_cert () =
  let net, net', din, dout, _ = svbtv_with_cert ~drift_sigma:0.001 in
  let prop = Cv_verify.Property.make ~din ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~property:prop ~net ~solver:"none"
      ~solve_seconds:1. ()
  in
  let p = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:din in
  Alcotest.(check bool) "inconclusive without cert" true
    (not (Cv_core.Report.is_safe (Cv_core.Svbtv.leaf_reuse p)))

let test_artifact_persists_cert () =
  let _, _, _, _, artifact = svbtv_with_cert ~drift_sigma:0.001 in
  let artifact' =
    Cv_artifacts.Artifacts.of_json (Cv_artifacts.Artifacts.to_json artifact)
  in
  match artifact'.Cv_artifacts.Artifacts.split_cert with
  | Some cert ->
    Alcotest.(check bool) "leaves preserved" true
      (Cv_verify.Split_cert.num_leaves cert >= 1)
  | None -> Alcotest.fail "certificate lost in persistence"

let () =
  Alcotest.run "cv_splitcert"
    [ ( "certificates",
        [ Alcotest.test_case "prove with splitting" `Quick
            test_prove_with_splitting;
          Alcotest.test_case "no split needed" `Quick test_prove_no_split_needed;
          Alcotest.test_case "fails on falsity" `Quick
            test_prove_fails_on_false_property;
          Alcotest.test_case "revalidate soundness" `Quick
            test_revalidate_perturbed_soundness;
          Alcotest.test_case "repair" `Quick test_repair;
          Alcotest.test_case "repair shares budget" `Quick
            test_repair_shares_budget;
          Alcotest.test_case "repair parallel revalidation" `Quick
            test_repair_parallel_revalidation;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip ] );
      ( "leaf-reuse",
        [ Alcotest.test_case "small drift" `Quick test_leaf_reuse_small_drift;
          Alcotest.test_case "with enlargement" `Quick
            test_leaf_reuse_with_enlargement;
          Alcotest.test_case "requires cert" `Quick test_leaf_reuse_requires_cert;
          Alcotest.test_case "artifact persistence" `Quick
            test_artifact_persists_cert ] ) ]
