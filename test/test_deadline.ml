(* Tests for the resource-governance layer: Cv_util.Deadline budgets
   threaded through the solver stack (simplex pivots, MILP
   branch-and-bound, abstract analysis, split certificates, strategy
   pipelines) and the Cv_util.Fault injection points. Every engine must
   degrade to a structured answer — never hang, never leak Expired past
   the verdict layer. *)

let expired_deadline () = Cv_util.Deadline.make ~seconds:(-1.)

let relu_net seed dims =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims
    ~act:Cv_nn.Activation.Relu ()

(* ------------------------------------------------------------------ *)
(* Deadline primitives                                                 *)
(* ------------------------------------------------------------------ *)

let test_fuel () =
  let d = Cv_util.Deadline.of_fuel 3 in
  Alcotest.(check bool) "fresh fuel" false (Cv_util.Deadline.expired d);
  Cv_util.Deadline.burn d;
  Cv_util.Deadline.burn d;
  (* The third burn exhausts the counter. *)
  (try
     for _ = 1 to 10 do
       Cv_util.Deadline.burn d
     done;
     Alcotest.fail "fuel should run out"
   with Cv_util.Deadline.Expired _ -> ());
  Alcotest.(check bool) "spent" true (Cv_util.Deadline.expired d)

let test_wall_clock () =
  let d = expired_deadline () in
  Alcotest.(check bool) "already expired" true (Cv_util.Deadline.expired d);
  (try
     Cv_util.Deadline.check d;
     Alcotest.fail "check should raise"
   with Cv_util.Deadline.Expired _ -> ());
  Alcotest.(check bool) "no_budget lives" false
    (Cv_util.Deadline.expired Cv_util.Deadline.no_budget);
  Alcotest.(check bool) "generous budget lives" false
    (Cv_util.Deadline.expired (Cv_util.Deadline.make ~seconds:3600.))

let test_sub_budget () =
  let parent = expired_deadline () in
  (* A child slice can never outlive its parent. *)
  let child = Cv_util.Deadline.sub parent ~seconds:3600. in
  Alcotest.(check bool) "child capped by parent" true
    (Cv_util.Deadline.expired child);
  let parent2 = Cv_util.Deadline.make ~seconds:3600. in
  let child2 = Cv_util.Deadline.sub parent2 ~seconds:1800. in
  Alcotest.(check bool) "tighter child stands" true
    (Cv_util.Deadline.remaining child2 <= 1800.)

(* ------------------------------------------------------------------ *)
(* Monotonic clock seam                                                *)
(* ------------------------------------------------------------------ *)

(* Regression: deadlines used to read Unix.gettimeofday, so a wall-clock
   step (NTP, DST) could expire a budget early or resurrect a spent one.
   They now read Cv_util.Clock — monotonic in production, swappable
   here — so expiry is a pure function of elapsed source time. *)
let test_fake_clock_deadline () =
  let t = ref 1000. in
  Cv_util.Clock.with_source
    (fun () -> !t)
    (fun () ->
      let d = Cv_util.Deadline.make ~seconds:10. in
      Alcotest.(check bool) "fresh" false (Cv_util.Deadline.expired d);
      t := 1005.;
      Alcotest.(check (float 1e-9)) "remaining tracks the source" 5.
        (Cv_util.Deadline.remaining d);
      t := 1010.5;
      Alcotest.(check bool) "expired past the horizon" true
        (Cv_util.Deadline.expired d);
      (try
         Cv_util.Deadline.check d;
         Alcotest.fail "check should raise on the fake timeline"
       with Cv_util.Deadline.Expired _ -> ());
      Alcotest.(check (float 1e-9)) "Deadline.now follows the source" 1010.5
        (Cv_util.Deadline.now ()));
  Alcotest.(check bool) "real source restored" false
    (Cv_util.Deadline.expired (Cv_util.Deadline.make ~seconds:3600.))

let test_clock_monotonic () =
  (* The production source must never step backwards. *)
  let prev = ref (Cv_util.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Cv_util.Clock.now () in
    Alcotest.(check bool) "non-decreasing" true (t >= !prev);
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Simplex / MILP                                                      *)
(* ------------------------------------------------------------------ *)

let test_simplex_expiry () =
  (* min -x s.t. x + s = 1 — solvable in a pivot, but the budget is
     already gone, so the solver must raise at its first poll. *)
  try
    ignore
      (Cv_lp.Simplex.solve
         ~deadline:(expired_deadline ())
         ~a:[| [| 1.; 1. |] |]
         ~b:[| 1. |] ~c:[| -1.; 0. |] ());
    Alcotest.fail "simplex should observe the expired deadline"
  with Cv_util.Deadline.Expired _ -> ()

(* max x + y s.t. x <= b, y <= 1 - b, b binary: optimum 1. *)
let toy_milp () =
  let p = Cv_milp.Milp.create () in
  let x = Cv_milp.Milp.add_var p ~lo:0. ~hi:1. () in
  let y = Cv_milp.Milp.add_var p ~lo:0. ~hi:1. () in
  let b = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (1., x); (-1., b) ] Cv_lp.Lp.Le 0.;
  Cv_milp.Milp.add_constraint p [ (1., y); (1., b) ] Cv_lp.Lp.Le 1.;
  (p, [ (1., x); (1., y) ])

let test_milp_deadline_timeout () =
  let p, obj = toy_milp () in
  match Cv_milp.Milp.maximize ~deadline:(expired_deadline ()) p obj with
  | Cv_milp.Milp.Timeout { bound; _ } ->
    (* The salvaged bound must still be a sound upper bound on the true
       optimum (infinite when nothing was solved). *)
    Alcotest.(check bool) "bound over-approximates" true (bound >= 1.)
  | _ -> Alcotest.fail "expected Timeout on an expired deadline"

let test_milp_node_limit_timeout () =
  let p, obj = toy_milp () in
  match Cv_milp.Milp.maximize ~node_limit:0 p obj with
  | Cv_milp.Milp.Timeout { bound; _ } ->
    Alcotest.(check bool) "bound over-approximates" true (bound >= 1.)
  | _ -> Alcotest.fail "expected Timeout on an exhausted node budget"

let test_milp_unbudgeted_still_solves () =
  let p, obj = toy_milp () in
  match Cv_milp.Milp.maximize p obj with
  | Cv_milp.Milp.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "optimum" 1. objective
  | _ -> Alcotest.fail "expected Optimal without a budget"

(* ------------------------------------------------------------------ *)
(* Verdict layer: no Expired escapes                                   *)
(* ------------------------------------------------------------------ *)

let small_prop net =
  let din = Cv_interval.Box.uniform (Cv_nn.Network.in_dim net) ~lo:0. ~hi:1. in
  let out = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net din in
  Cv_verify.Property.make ~din ~dout:(Cv_interval.Box.expand 0.1 out)

let test_containment_check_degrades () =
  let net = relu_net 3 [ 2; 4; 1 ] in
  let prop = small_prop net in
  match
    Cv_verify.Containment.check
      ~deadline:(expired_deadline ())
      Cv_verify.Containment.Milp net ~input_box:prop.Cv_verify.Property.din
      ~target:prop.Cv_verify.Property.dout
  with
  | Cv_verify.Containment.Unknown u ->
    Alcotest.(check string) "timeout reason" "timeout"
      (Cv_verify.Containment.reason_name u.Cv_verify.Containment.reason)
  | _ -> Alcotest.fail "expected structured Unknown under a spent budget"

let test_verify_graceful_degrades () =
  let net = relu_net 5 [ 2; 5; 3; 1 ] in
  let prop = small_prop net in
  let report =
    Cv_verify.Verifier.verify_graceful ~deadline:(expired_deadline ()) net prop
  in
  match report.Cv_verify.Verifier.verdict with
  | Cv_verify.Containment.Unknown
      { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout; _ } ->
    ()
  | _ -> Alcotest.fail "expected timeout-Unknown from the escalation chain"

let test_verify_graceful_unhurried () =
  (* With a generous budget the chain must still prove easy properties. *)
  let net = relu_net 5 [ 2; 5; 3; 1 ] in
  let prop = small_prop net in
  let report =
    Cv_verify.Verifier.verify_graceful
      ~deadline:(Cv_util.Deadline.make ~seconds:3600.)
      net prop
  in
  match report.Cv_verify.Verifier.verdict with
  | Cv_verify.Containment.Proved -> ()
  | _ -> Alcotest.fail "easy property should be proved within a huge budget"

(* Regression: verify_graceful's bookkeeping used to let a later rung's
   looser certified bound overwrite an earlier rung's tighter one. *)
let test_prefer_unknown_keeps_tightest () =
  let unk bound =
    { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout;
      message = "t";
      best_bound = bound }
  in
  let e1 = Cv_verify.Containment.Abstract Cv_domains.Analyzer.Symint in
  let e2 = Cv_verify.Containment.Milp in
  let bound_of = function
    | Some (u, _) -> u.Cv_verify.Containment.best_bound
    | None -> Alcotest.fail "expected a kept unknown"
  in
  (* A certified bound beats none. *)
  let kept =
    Cv_verify.Verifier.prefer_unknown
      (Cv_verify.Verifier.prefer_unknown None (unk None) e1)
      (unk (Some 3.)) e2
  in
  Alcotest.(check (option (float 1e-9))) "bound beats none" (Some 3.)
    (bound_of kept);
  (* A later rung returning a looser bound must not overwrite. *)
  let kept = Cv_verify.Verifier.prefer_unknown kept (unk (Some 7.)) e1 in
  Alcotest.(check (option (float 1e-9))) "looser bound ignored" (Some 3.)
    (bound_of kept);
  (* A later bound-less unknown must not erase the certificate. *)
  let kept = Cv_verify.Verifier.prefer_unknown kept (unk None) e1 in
  Alcotest.(check (option (float 1e-9))) "bound survives bound-less rung"
    (Some 3.) (bound_of kept);
  (* A tighter bound does replace. *)
  let kept = Cv_verify.Verifier.prefer_unknown kept (unk (Some 1.5)) e2 in
  Alcotest.(check (option (float 1e-9))) "tighter bound adopted" (Some 1.5)
    (bound_of kept)

let test_analyzer_expiry () =
  let net = relu_net 7 [ 3; 6; 4; 1 ] in
  let din = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
  try
    ignore
      (Cv_domains.Analyzer.abstractions
         ~deadline:(expired_deadline ())
         Cv_domains.Analyzer.Symint net din);
    Alcotest.fail "analyzer should observe the expired deadline"
  with Cv_util.Deadline.Expired _ -> ()

let test_split_cert_degrades () =
  let net = relu_net 11 [ 2; 4; 1 ] in
  let prop = small_prop net in
  Alcotest.(check bool) "no certificate under a spent budget" true
    (Cv_verify.Split_cert.prove
       ~deadline:(expired_deadline ())
       net ~input_box:prop.Cv_verify.Property.din
       ~target:prop.Cv_verify.Property.dout
    = None)

let test_svudc_exhausts () =
  let net = relu_net 13 [ 3; 6; 1 ] in
  let din = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
  let out = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net din in
  let prop =
    Cv_verify.Property.make ~din ~dout:(Cv_interval.Box.expand 0.1 out)
  in
  let artifact =
    Cv_artifacts.Artifacts.make ~property:prop ~net ~solver:"test"
      ~solve_seconds:0.1 ()
  in
  let p =
    Cv_core.Problem.svudc ~net ~artifact
      ~new_din:(Cv_interval.Box.expand 0.05 din)
  in
  let report =
    Cv_core.Strategy.solve_svudc ~deadline:(expired_deadline ()) p
  in
  match report.Cv_core.Report.verdict with
  | Cv_core.Report.Exhausted _ -> ()
  | v ->
    Alcotest.failf "expected Exhausted, got %s"
      (Cv_core.Report.outcome_string v)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_deadline_zero () =
  Cv_util.Fault.with_fault Cv_util.Fault.Deadline_zero (fun () ->
      let d = Cv_util.Deadline.make ~seconds:3600. in
      Alcotest.(check bool) "forced to zero" true (Cv_util.Deadline.expired d));
  Alcotest.(check bool) "disarmed afterwards" false
    (Cv_util.Deadline.expired (Cv_util.Deadline.make ~seconds:3600.))

let test_fault_solver_failure () =
  Cv_util.Fault.with_fault Cv_util.Fault.Solver_failure (fun () ->
      try
        ignore
          (Cv_lp.Simplex.solve ~a:[| [| 1.; 1. |] |] ~b:[| 1. |]
             ~c:[| -1.; 0. |] ());
        Alcotest.fail "armed solver fault should fire"
      with Cv_util.Fault.Injected _ -> ())

let test_fault_env_parsing () =
  Alcotest.(check bool) "roundtrip names" true
    (List.for_all
       (fun p ->
         Cv_util.Fault.point_of_string (Cv_util.Fault.point_name p) = Some p)
       [ Cv_util.Fault.Solver_failure;
         Cv_util.Fault.Truncate_artifact;
         Cv_util.Fault.Deadline_zero ]);
  Alcotest.(check bool) "unknown name rejected" true
    (Cv_util.Fault.point_of_string "no-such-fault" = None)

let () =
  Alcotest.run "cv_deadline"
    [ ( "deadline",
        [ Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "wall clock" `Quick test_wall_clock;
          Alcotest.test_case "sub budget" `Quick test_sub_budget;
          Alcotest.test_case "fake clock" `Quick test_fake_clock_deadline;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic ] );
      ( "solvers",
        [ Alcotest.test_case "simplex expiry" `Quick test_simplex_expiry;
          Alcotest.test_case "milp deadline timeout" `Quick
            test_milp_deadline_timeout;
          Alcotest.test_case "milp node-limit timeout" `Quick
            test_milp_node_limit_timeout;
          Alcotest.test_case "milp unbudgeted" `Quick
            test_milp_unbudgeted_still_solves ] );
      ( "verdicts",
        [ Alcotest.test_case "containment degrades" `Quick
            test_containment_check_degrades;
          Alcotest.test_case "graceful chain degrades" `Quick
            test_verify_graceful_degrades;
          Alcotest.test_case "graceful chain proves" `Quick
            test_verify_graceful_unhurried;
          Alcotest.test_case "prefer_unknown tightest bound" `Quick
            test_prefer_unknown_keeps_tightest;
          Alcotest.test_case "analyzer expiry" `Quick test_analyzer_expiry;
          Alcotest.test_case "split cert degrades" `Quick
            test_split_cert_degrades;
          Alcotest.test_case "svudc exhausts" `Quick test_svudc_exhausts ] );
      ( "faults",
        [ Alcotest.test_case "deadline zero" `Quick test_fault_deadline_zero;
          Alcotest.test_case "solver failure" `Quick test_fault_solver_failure;
          Alcotest.test_case "env parsing" `Quick test_fault_env_parsing ] ) ]
