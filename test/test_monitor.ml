(* Tests for Cv_monitor: bound construction, OOD detection, enlargement
   and kappa measurement. *)

let check_float = Alcotest.(check (float 1e-9))

let samples =
  [ [| 0.; 0. |]; [| 1.; 2. |]; [| 0.5; -1. |]; [| 0.2; 0.7 |] ]

let test_of_samples_bounds () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  let box = Cv_monitor.Monitor.current m in
  Alcotest.(check (array (float 1e-9))) "lower" [| 0.; -1. |]
    (Cv_interval.Box.lower box);
  Alcotest.(check (array (float 1e-9))) "upper" [| 1.; 2. |]
    (Cv_interval.Box.upper box);
  (* all samples in-distribution *)
  List.iter
    (fun x ->
      Alcotest.(check bool) "sample inside" true
        (Cv_monitor.Monitor.observe m x = None))
    samples;
  Alcotest.(check int) "no events" 0 (Cv_monitor.Monitor.event_count m)

let test_buffer () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0.1 samples in
  let box = Cv_monitor.Monitor.current m in
  (* width of axis 0 is 1.0 -> buffered to [-0.1, 1.1] *)
  check_float "buffered lo" (-0.1)
    (Cv_interval.Interval.lo (Cv_interval.Box.get box 0));
  check_float "buffered hi" 1.1
    (Cv_interval.Interval.hi (Cv_interval.Box.get box 0))

let test_ood_detection_and_enlargement () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  (match Cv_monitor.Monitor.observe m [| 1.5; 0. |] with
  | Some ev ->
    check_float "overshoot" 0.5 ev.Cv_monitor.Monitor.overshoot;
    Alcotest.(check int) "index" 1 ev.Cv_monitor.Monitor.index
  | None -> Alcotest.fail "should flag OOD");
  ignore (Cv_monitor.Monitor.observe m [| 0.; 3. |]);
  Alcotest.(check int) "two events" 2 (Cv_monitor.Monitor.event_count m);
  (* kappa = max overshoot *)
  check_float "kappa" 1. (Cv_monitor.Monitor.kappa m);
  let enlarged = Cv_monitor.Monitor.enlarged_box m in
  Alcotest.(check bool) "contains current" true
    (Cv_interval.Box.subset (Cv_monitor.Monitor.current m) enlarged);
  Alcotest.(check bool) "contains events" true
    (Cv_interval.Box.mem [| 1.5; 0. |] enlarged
    && Cv_interval.Box.mem [| 0.; 3. |] enlarged)

let test_enlarged_margin () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  ignore (Cv_monitor.Monitor.observe m [| 1.5; 0. |]);
  let enlarged = Cv_monitor.Monitor.enlarged_box ~margin:0.1 m in
  Alcotest.(check bool) "margin applied" true
    (Cv_interval.Box.mem [| 1.6; 0. |] enlarged)

let test_commit () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  ignore (Cv_monitor.Monitor.observe m [| 1.5; 0. |]);
  let enlarged = Cv_monitor.Monitor.enlarged_box m in
  Cv_monitor.Monitor.commit m enlarged;
  Alcotest.(check int) "events cleared" 0 (Cv_monitor.Monitor.event_count m);
  Alcotest.(check bool) "point now inside" true
    (Cv_monitor.Monitor.observe m [| 1.5; 0. |] = None);
  (* committing a smaller box is rejected *)
  try
    Cv_monitor.Monitor.commit m (Cv_interval.Box.uniform 2 ~lo:0. ~hi:0.1);
    Alcotest.fail "should reject shrinking commit"
  with Invalid_argument _ -> ()

let test_kappa_l2 () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  ignore (Cv_monitor.Monitor.observe m [| 1.3; 2.4 |]);
  (* overshoot (0.3, 0.4): Linf = 0.4, L2 = 0.5 *)
  check_float "linf" 0.4 (Cv_monitor.Monitor.kappa m);
  check_float "l2" 0.5 (Cv_monitor.Monitor.kappa ~norm:`L2 m)

let test_monitored_layer_features () =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 3) ~dims:[ 2; 4; 3; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let x = [| 0.5; -0.5 |] in
  let f0 = Cv_monitor.Monitor.monitored_layer_features net ~layer:0 x in
  Alcotest.(check int) "layer-0 width" 4 (Array.length f0);
  let trace = Cv_nn.Network.eval_trace net x in
  Alcotest.(check (array (float 1e-12))) "matches trace" trace.(0) f0

let test_empty_samples_rejected () =
  try
    ignore (Cv_monitor.Monitor.of_samples []);
    Alcotest.fail "should reject"
  with Invalid_argument _ -> ()

(* Regression: commit must clear only the events the committed box
   covers. An event observed after the enlargement was computed used to
   be wiped with the rest and never re-trigger verification. *)
let test_commit_keeps_later_events () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  ignore (Cv_monitor.Monitor.observe m [| 1.5; 0. |]);
  let enlarged = Cv_monitor.Monitor.enlarged_box m in
  (* lands after the enlargement was computed, outside it *)
  ignore (Cv_monitor.Monitor.observe m [| 3.; 0. |]);
  Cv_monitor.Monitor.commit m enlarged;
  Alcotest.(check int) "later event survives" 1
    (Cv_monitor.Monitor.event_count m);
  check_float "kappa still reflects it" 1.5 (Cv_monitor.Monitor.kappa m);
  Alcotest.(check bool) "next enlargement covers it" true
    (Cv_interval.Box.mem [| 3.; 0. |] (Cv_monitor.Monitor.enlarged_box m));
  (* the covered event is gone: committing the new enlargement leaves
     nothing pending *)
  Cv_monitor.Monitor.commit m (Cv_monitor.Monitor.enlarged_box m);
  Alcotest.(check int) "covered events cleared" 0
    (Cv_monitor.Monitor.event_count m)

(* Regression: a non-finite observation used to be recorded with
   overshoot = NaN, poisoning kappa for every future call. *)
let test_non_finite_rejected () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  Alcotest.(check bool) "nan is not an event" true
    (Cv_monitor.Monitor.observe m [| Float.nan; 0. |] = None);
  (match Cv_monitor.Monitor.observe_class m [| Float.infinity; 0. |] with
  | Cv_monitor.Monitor.Rejected -> ()
  | _ -> Alcotest.fail "inf should be rejected");
  Alcotest.(check int) "nothing recorded" 0
    (Cv_monitor.Monitor.event_count m);
  Alcotest.(check int) "rejections counted" 2
    (Cv_monitor.Monitor.rejected_count m);
  check_float "kappa clean with no events" 0. (Cv_monitor.Monitor.kappa m);
  ignore (Cv_monitor.Monitor.observe m [| 1.5; 0. |]);
  check_float "kappa unpoisoned" 0.5 (Cv_monitor.Monitor.kappa m);
  Alcotest.(check bool) "enlargement stays finite" true
    (Array.for_all Float.is_finite
       (Cv_interval.Box.upper (Cv_monitor.Monitor.enlarged_box m)))

(* Regression: observe from concurrent domains must not lose events
   (the record used to be bare mutable state with no lock). *)
let test_concurrent_observe () =
  let m =
    Cv_monitor.Monitor.of_box (Cv_interval.Box.uniform 2 ~lo:0. ~hi:1.)
  in
  let per_domain = 2000 in
  let worker offset () =
    for i = 1 to per_domain do
      ignore
        (Cv_monitor.Monitor.observe m
           [| 2. +. offset +. float_of_int i; 0.5 |])
    done
  in
  let d1 = Domain.spawn (worker 0.) in
  let d2 = Domain.spawn (worker 0.25) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no event lost" (2 * per_domain)
    (Cv_monitor.Monitor.event_count m);
  Alcotest.(check int) "event list agrees (oldest first)" (2 * per_domain)
    (List.length (Cv_monitor.Monitor.events m))

let test_events_oldest_first () =
  let m = Cv_monitor.Monitor.of_samples ~buffer:0. samples in
  ignore (Cv_monitor.Monitor.observe m [| 1.5; 0. |]);
  ignore (Cv_monitor.Monitor.observe m [| 2.5; 0. |]);
  let indices =
    List.map (fun ev -> ev.Cv_monitor.Monitor.index) (Cv_monitor.Monitor.events m)
  in
  Alcotest.(check (list int)) "ascending sample indices" [ 1; 2 ] indices

let monitor_soundness_prop =
  QCheck.Test.make ~name:"observed in-dist points never flagged" ~count:100
    QCheck.(list_of_size (Gen.return 2) (float_range 0. 1.))
    (fun xs ->
      let m =
        Cv_monitor.Monitor.of_box (Cv_interval.Box.uniform 2 ~lo:0. ~hi:1.)
      in
      Cv_monitor.Monitor.observe m (Array.of_list xs) = None)


(* ------------------------------------------------------------------ *)
(* Pattern monitor (activation patterns, paper ref [1])                *)
(* ------------------------------------------------------------------ *)

let pm_samples =
  [ [| 1.; 0.; 2. |]; [| 0.5; 0.; 1. |]; [| 0.; 1.; 0. |] ]
(* patterns: 101, 101, 010 -> 2 distinct *)

let test_pattern_creation () =
  let m = Cv_monitor.Pattern_monitor.create ~width:3 pm_samples in
  Alcotest.(check int) "distinct patterns" 2
    (Cv_monitor.Pattern_monitor.num_patterns m)

let test_pattern_known_and_observe () =
  let m = Cv_monitor.Pattern_monitor.create ~width:3 pm_samples in
  Alcotest.(check bool) "known 101" true
    (Cv_monitor.Pattern_monitor.known m [| 9.; 0.; 0.1 |]);
  Alcotest.(check bool) "known 010" true
    (Cv_monitor.Pattern_monitor.known m [| 0.; 3.; 0. |]);
  Alcotest.(check bool) "unknown 111" false
    (Cv_monitor.Pattern_monitor.known m [| 1.; 1.; 1. |]);
  Alcotest.(check bool) "observe flags" true
    (Cv_monitor.Pattern_monitor.observe m [| 1.; 1.; 1. |]);
  Alcotest.(check bool) "observe passes" false
    (Cv_monitor.Pattern_monitor.observe m [| 1.; 0.; 1. |]);
  Alcotest.(check (float 1e-9)) "flag rate" 0.5
    (Cv_monitor.Pattern_monitor.flag_rate m)

let test_pattern_gamma_tolerance () =
  let m = Cv_monitor.Pattern_monitor.create ~gamma:1 ~width:3 pm_samples in
  (* 111 is Hamming-1 from 101: accepted with gamma=1 *)
  Alcotest.(check bool) "within gamma" true
    (Cv_monitor.Pattern_monitor.known m [| 1.; 1.; 1. |]);
  (* 000 is Hamming-1 from 010: accepted *)
  Alcotest.(check bool) "000 within gamma of 010" true
    (Cv_monitor.Pattern_monitor.known m [| 0.; 0.; 0. |])

let test_pattern_extend () =
  let m = Cv_monitor.Pattern_monitor.create ~width:3 pm_samples in
  Alcotest.(check bool) "initially unknown" false
    (Cv_monitor.Pattern_monitor.known m [| 1.; 1.; 1. |]);
  Cv_monitor.Pattern_monitor.extend m [| 1.; 1.; 1. |];
  Alcotest.(check bool) "known after extend" true
    (Cv_monitor.Pattern_monitor.known m [| 2.; 5.; 0.3 |])

let test_pattern_hamming () =
  let a = Cv_monitor.Pattern_monitor.pattern_of [| 1.; 0.; 1.; 0. |] in
  let b = Cv_monitor.Pattern_monitor.pattern_of [| 0.; 0.; 1.; 1. |] in
  Alcotest.(check int) "hamming 2" 2 (Cv_monitor.Pattern_monitor.hamming a b);
  Alcotest.(check int) "hamming self" 0 (Cv_monitor.Pattern_monitor.hamming a a)

let test_pattern_on_real_net () =
  (* Deterministic network whose monitored patterns are controllable:
     an identity first layer with ReLU, so the pattern is the sign
     pattern of the input. *)
  let layer =
    Cv_nn.Layer.make (Cv_linalg.Mat.identity 4) (Array.make 4 0.)
      Cv_nn.Activation.Relu
  in
  let out =
    Cv_nn.Layer.make (Cv_linalg.Mat.of_rows [ [| 1.; 1.; 1.; 1. |] ])
      [| 0. |] Cv_nn.Activation.Identity
  in
  let net = Cv_nn.Network.of_list [ layer; out ] in
  let feats x = Cv_monitor.Monitor.monitored_layer_features net ~layer:0 x in
  let rng = Cv_util.Rng.create 12 in
  (* Training data lives in the all-positive orthant: one pattern. *)
  let train =
    List.init 50 (fun _ -> feats (Cv_util.Rng.uniform_array rng 4 ~lo:0.1 ~hi:1.))
  in
  let m = Cv_monitor.Pattern_monitor.create ~width:4 train in
  Alcotest.(check int) "single pattern" 1
    (Cv_monitor.Pattern_monitor.num_patterns m);
  (* Training-distribution probes never flag. *)
  for _ = 1 to 50 do
    Alcotest.(check bool) "in-dist passes" false
      (Cv_monitor.Pattern_monitor.observe m
         (feats (Cv_util.Rng.uniform_array rng 4 ~lo:0.1 ~hi:1.)))
  done;
  (* A mixed-sign probe produces a novel pattern and is flagged, even
     though its feature magnitudes are unremarkable. *)
  Alcotest.(check bool) "novel pattern flagged" true
    (Cv_monitor.Pattern_monitor.observe m (feats [| 0.5; -0.5; 0.5; -0.5 |]))

let () =
  Alcotest.run "cv_monitor"
    [ ( "bounds",
        [ Alcotest.test_case "of_samples" `Quick test_of_samples_bounds;
          Alcotest.test_case "buffer" `Quick test_buffer;
          Alcotest.test_case "empty rejected" `Quick test_empty_samples_rejected ] );
      ( "ood",
        [ Alcotest.test_case "detection+enlargement" `Quick
            test_ood_detection_and_enlargement;
          Alcotest.test_case "margin" `Quick test_enlarged_margin;
          Alcotest.test_case "commit" `Quick test_commit;
          Alcotest.test_case "kappa norms" `Quick test_kappa_l2;
          Alcotest.test_case "layer features" `Quick
            test_monitored_layer_features;
          QCheck_alcotest.to_alcotest monitor_soundness_prop ] );
      ( "hardening",
        [ Alcotest.test_case "commit keeps later events" `Quick
            test_commit_keeps_later_events;
          Alcotest.test_case "non-finite rejected" `Quick
            test_non_finite_rejected;
          Alcotest.test_case "concurrent observe" `Quick
            test_concurrent_observe;
          Alcotest.test_case "events oldest first" `Quick
            test_events_oldest_first ] );
      ( "pattern",
        [ Alcotest.test_case "creation" `Quick test_pattern_creation;
          Alcotest.test_case "known/observe" `Quick
            test_pattern_known_and_observe;
          Alcotest.test_case "gamma tolerance" `Quick
            test_pattern_gamma_tolerance;
          Alcotest.test_case "extend" `Quick test_pattern_extend;
          Alcotest.test_case "hamming" `Quick test_pattern_hamming;
          Alcotest.test_case "on a real net" `Quick test_pattern_on_real_net ] ) ]
