(* Tests for Cv_lp: the simplex solver and the LP model builder. *)

let check_float = Alcotest.(check (float 1e-6))

let solve_max p terms = Cv_lp.Lp.maximize_linear p terms

(* ------------------------------------------------------------------ *)
(* Basic LPs                                                           *)
(* ------------------------------------------------------------------ *)

let test_textbook_max () =
  (* max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0: optimum 2.8 at (1.6, 1.2) *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (2., y) ] Cv_lp.Lp.Le 4.;
  Cv_lp.Lp.add_constraint p [ (3., x); (1., y) ] Cv_lp.Lp.Le 6.;
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 2.8 s.Cv_lp.Lp.objective;
    check_float "x" 1.6 s.Cv_lp.Lp.values.(x);
    check_float "y" 1.2 s.Cv_lp.Lp.values.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_minimize () =
  (* min 2x + 3y s.t. x + y >= 4, x,y >= 0: optimum 8 at (4, 0) *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Ge 4.;
  match Cv_lp.Lp.minimize_linear p [ (2., x); (3., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 8. s.Cv_lp.Lp.objective;
    check_float "x" 4. s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_equality_constraint () =
  (* max x s.t. x + y = 3, y >= 1, x >= 0: optimum 2 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Eq 3.;
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" 2. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x) ] Cv_lp.Lp.Ge 2.;
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

(* ------------------------------------------------------------------ *)
(* Bounds handling                                                     *)
(* ------------------------------------------------------------------ *)

let test_negative_lower_bounds () =
  (* max x + y, x ∈ [-3, -1], y ∈ [-2, 5]: optimum -1 + 5 = 4 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:(-3.) ~hi:(-1.) () in
  let y = Cv_lp.Lp.add_var p ~lo:(-2.) ~hi:5. () in
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 4. s.Cv_lp.Lp.objective;
    check_float "x" (-1.) s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_free_variable () =
  (* min x s.t. x >= -7 via constraint (x itself free): optimum -7 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p () in
  Cv_lp.Lp.add_constraint p [ (1., x) ] Cv_lp.Lp.Ge (-7.);
  match Cv_lp.Lp.minimize_linear p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" (-7.) s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_upper_bound_only_variable () =
  (* max x, x <= 3 (no lower bound): optimum 3 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~hi:3. () in
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" 3. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_fixed_variable () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:2. ~hi:2. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Le 2.5;
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 2.5 s.Cv_lp.Lp.objective;
    check_float "x pinned" 2. s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_set_bounds_and_copy () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:10. () in
  let q = Cv_lp.Lp.copy p in
  Cv_lp.Lp.set_bounds q x ~lo:1. ~hi:1.;
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "original untouched" (0., 10.) (Cv_lp.Lp.bounds p x);
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "copy updated" (1., 1.) (Cv_lp.Lp.bounds q x);
  match solve_max q [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "pinned optimum" 1. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_bad_constraint_var () =
  let p = Cv_lp.Lp.create () in
  let _x = Cv_lp.Lp.add_var p ~lo:0. () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Lp.add_constraint: unknown var") (fun () ->
      Cv_lp.Lp.add_constraint p [ (1., 5) ] Cv_lp.Lp.Le 1.)

(* ------------------------------------------------------------------ *)
(* Randomized validation against brute force on box-constrained LPs    *)
(* ------------------------------------------------------------------ *)

(* For an LP with only variable bounds (no rows), the max of a linear
   objective is attained at the appropriate corner. *)
let lp_box_corner_prop =
  QCheck.Test.make ~name:"bounds-only LP optimum = corner value" ~count:100
    QCheck.(list_of_size (Gen.return 4) (pair (float_range (-3.) 3.)
                                            (pair (float_range (-2.) 0.) (float_range 0. 2.))))
    (fun spec ->
      let p = Cv_lp.Lp.create () in
      let vars =
        List.map (fun (_, (lo, hi)) -> Cv_lp.Lp.add_var p ~lo ~hi ()) spec
      in
      let terms = List.map2 (fun (c, _) v -> (c, v)) spec vars in
      let expect =
        List.fold_left
          (fun acc (c, (lo, hi)) -> acc +. if c >= 0. then c *. hi else c *. lo)
          0. spec
      in
      match Cv_lp.Lp.maximize_linear p terms with
      | Cv_lp.Lp.Optimal s -> Float.abs (s.Cv_lp.Lp.objective -. expect) < 1e-6
      | _ -> false)

(* Feasibility of the returned point. *)
let lp_solution_feasible_prop =
  QCheck.Test.make ~name:"returned point satisfies all constraints" ~count:100
    QCheck.(pair (list_of_size (Gen.return 6) (float_range (-2.) 2.))
              (list_of_size (Gen.return 3) (float_range 0.5 4.)))
    (fun (coefs, rhss) ->
      let p = Cv_lp.Lp.create () in
      let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:5. () in
      let y = Cv_lp.Lp.add_var p ~lo:(-5.) ~hi:5. () in
      let rows =
        List.mapi
          (fun i rhs ->
            let a = List.nth coefs (2 * i) and b = List.nth coefs ((2 * i) + 1) in
            (a, b, rhs))
          rhss
      in
      List.iter
        (fun (a, b, rhs) ->
          Cv_lp.Lp.add_constraint p [ (a, x); (b, y) ] Cv_lp.Lp.Le rhs)
        rows;
      match Cv_lp.Lp.maximize_linear p [ (1., x); (1., y) ] with
      | Cv_lp.Lp.Optimal s ->
        let vx = s.Cv_lp.Lp.values.(x) and vy = s.Cv_lp.Lp.values.(y) in
        vx >= -1e-7 && vx <= 5. +. 1e-7 && vy >= -5. -. 1e-7 && vy <= 5. +. 1e-7
        && List.for_all
             (fun (a, b, rhs) -> (a *. vx) +. (b *. vy) <= rhs +. 1e-6)
             rows
      | Cv_lp.Lp.Infeasible -> false (* box origin... x=0,y=0 may violate? *)
      | Cv_lp.Lp.Unbounded | Cv_lp.Lp.Stalled -> false
      | exception _ -> false)


(* Exact validation on random 2-variable LPs: the optimum of a bounded
   feasible LP lies at a vertex of the feasible polygon; enumerate all
   candidate vertices (pairwise constraint/bound intersections), filter
   by feasibility, and compare. *)
let lp_vertex_enumeration_prop =
  QCheck.Test.make ~name:"2-var LP matches vertex enumeration" ~count:80
    QCheck.(pair (list_of_size (Gen.return 9) (float_range (-2.) 2.))
              (pair (float_range 0.5 3.) (float_range 0.5 3.)))
    (fun (coefs, (cx, cy)) ->
      (* Three <= constraints a x + b y <= c over the box [0,2]^2. *)
      let cons =
        List.init 3 (fun i ->
            ( List.nth coefs (3 * i),
              List.nth coefs ((3 * i) + 1),
              (* keep rhs >= 0 so the origin stays feasible *)
              Float.abs (List.nth coefs ((3 * i) + 2)) ))
      in
      let feasible (x, y) =
        x >= -1e-9 && x <= 2. +. 1e-9 && y >= -1e-9 && y <= 2. +. 1e-9
        && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-7) cons
      in
      (* Candidate vertices: intersections of all boundary pairs. *)
      let lines =
        (* constraint lines plus the four box edges *)
        List.map (fun (a, b, c) -> (a, b, c)) cons
        @ [ (1., 0., 0.); (1., 0., 2.); (0., 1., 0.); (0., 1., 2.) ]
      in
      let candidates = ref [ (0., 0.) ] in
      List.iteri
        (fun i (a1, b1, c1) ->
          List.iteri
            (fun j (a2, b2, c2) ->
              if j > i then begin
                let det = (a1 *. b2) -. (a2 *. b1) in
                if Float.abs det > 1e-9 then
                  candidates :=
                    ( ((c1 *. b2) -. (c2 *. b1)) /. det,
                      ((a1 *. c2) -. (a2 *. c1)) /. det )
                    :: !candidates
              end)
            lines)
        lines;
      let best =
        List.fold_left
          (fun acc (x, y) ->
            if feasible (x, y) then Float.max acc ((cx *. x) +. (cy *. y))
            else acc)
          Float.neg_infinity !candidates
      in
      let p = Cv_lp.Lp.create () in
      let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:2. () in
      let y = Cv_lp.Lp.add_var p ~lo:0. ~hi:2. () in
      List.iter
        (fun (a, b, c) ->
          Cv_lp.Lp.add_constraint p [ (a, x); (b, y) ] Cv_lp.Lp.Le c)
        cons;
      match Cv_lp.Lp.maximize_linear p [ (cx, x); (cy, y) ] with
      | Cv_lp.Lp.Optimal s -> Float.abs (s.Cv_lp.Lp.objective -. best) < 1e-5
      | _ -> false)

(* Degenerate LP that historically cycles without Bland's rule. *)
let test_degenerate_no_cycle () =
  (* Beale's example of cycling. *)
  let p = Cv_lp.Lp.create () in
  let x1 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x2 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x3 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x4 = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p
    [ (0.25, x1); (-8., x2); (-1., x3); (9., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p
    [ (0.5, x1); (-12., x2); (-0.5, x3); (3., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p [ (1., x3) ] Cv_lp.Lp.Le 1.;
  match
    Cv_lp.Lp.maximize_linear p
      [ (0.75, x1); (-20., x2); (0.5, x3); (-6., x4) ]
  with
  | Cv_lp.Lp.Optimal s -> check_float "Beale optimum" 1.25 s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

(* Chvátal's classic cycling LP: Dantzig pivoting cycles forever on
   this basis; Bland's rule must terminate at the optimum of 1. *)
let test_chvatal_cycling () =
  let p = Cv_lp.Lp.create () in
  let x1 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x2 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x3 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x4 = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p
    [ (0.5, x1); (-5.5, x2); (-2.5, x3); (9., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p
    [ (0.5, x1); (-1.5, x2); (-0.5, x3); (1., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p [ (1., x1) ] Cv_lp.Lp.Le 1.;
  match
    Cv_lp.Lp.maximize_linear p
      [ (10., x1); (-57., x2); (-9., x3); (-24., x4) ]
  with
  | Cv_lp.Lp.Optimal s ->
    check_float "Chvátal optimum" 1. s.Cv_lp.Lp.objective;
    check_float "x1 at its bound" 1. s.Cv_lp.Lp.values.(x1)
  | _ -> Alcotest.fail "expected optimal"

(* Rows whose left-hand side is identically zero (empty term list or
   all-zero coefficients) must resolve by rhs sign, not crash a ratio
   test. *)
let test_zero_row_constraints () =
  (* 0 <= 1 and 0·x = 0 are vacuous: the box optimum survives. *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:3. () in
  Cv_lp.Lp.add_constraint p [] Cv_lp.Lp.Le 1.;
  Cv_lp.Lp.add_constraint p [ (0., x) ] Cv_lp.Lp.Eq 0.;
  (match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "vacuous rows" 3. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal through vacuous rows");
  (* 0 >= 1 is unsatisfiable no matter the variables. *)
  let q = Cv_lp.Lp.create () in
  let y = Cv_lp.Lp.add_var q ~lo:0. ~hi:3. () in
  Cv_lp.Lp.add_constraint q [ (0., y) ] Cv_lp.Lp.Ge 1.;
  match solve_max q [ (1., y) ] with
  | Cv_lp.Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible zero row"

(* A variable that appears in no constraint (zero column) is governed
   by its box alone: finite box feeds the optimum, missing bound on the
   improving side means unbounded. *)
let test_zero_column_variable () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:2. () in
  let loose = Cv_lp.Lp.add_var p ~lo:(-1.) ~hi:4. () in
  Cv_lp.Lp.add_constraint p [ (1., x) ] Cv_lp.Lp.Le 1.;
  (match solve_max p [ (1., x); (1., loose) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "boxed zero column" 5. s.Cv_lp.Lp.objective;
    check_float "loose at hi" 4. s.Cv_lp.Lp.values.(loose)
  | _ -> Alcotest.fail "expected optimal with boxed zero column");
  let q = Cv_lp.Lp.create () in
  let z = Cv_lp.Lp.add_var q ~lo:0. ~hi:1. () in
  let ray = Cv_lp.Lp.add_var q ~lo:0. () in
  Cv_lp.Lp.add_constraint q [ (1., z) ] Cv_lp.Lp.Le 1.;
  match solve_max q [ (1., z); (1., ray) ] with
  | Cv_lp.Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded zero column"

(* Starving phase 1 (a Ge row needs pivots before any feasible point
   exists) must also degrade to [Stalled], and the problem must stay
   reusable afterwards. *)
let test_stalled_in_phase1 () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  let z = Cv_lp.Lp.add_var p ~lo:0. () in
  (* three artificials to drive out: one pivot cannot reach feasibility *)
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Ge 4.;
  Cv_lp.Lp.add_constraint p [ (1., y); (1., z) ] Cv_lp.Lp.Ge 4.;
  Cv_lp.Lp.add_constraint p [ (1., x); (1., z) ] Cv_lp.Lp.Ge 4.;
  Cv_lp.Lp.set_objective p ~maximize:false [ (1., x); (1., y); (1., z) ];
  (match Cv_lp.Lp.solve ~max_iters:1 p with
  | Cv_lp.Lp.Stalled -> ()
  | _ -> Alcotest.fail "expected Stalled inside phase 1");
  match Cv_lp.Lp.solve p with
  | Cv_lp.Lp.Optimal s -> check_float "recovered optimum" 6. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal after removing the cap"

(* ------------------------------------------------------------------ *)
(* Fixing via set_bounds across the four lowering paths                *)
(* ------------------------------------------------------------------ *)

(* One variable per lowering path — shift (lo only), reflect (hi only),
   split (free), finite box (shift + upper-bound row). Fixing any of
   them to a point (lo = hi) must pin its value in the re-lowered
   solve. *)
let test_set_bounds_fixing_paths () =
  let mk () =
    let p = Cv_lp.Lp.create () in
    let shift = Cv_lp.Lp.add_var p ~lo:1. () in
    let refl = Cv_lp.Lp.add_var p ~hi:5. () in
    let free = Cv_lp.Lp.add_var p () in
    let box = Cv_lp.Lp.add_var p ~lo:0. ~hi:4. () in
    (* Couple everything so no variable is trivially at a bound. *)
    Cv_lp.Lp.add_constraint p
      [ (1., shift); (1., refl); (1., free); (1., box) ]
      Cv_lp.Lp.Le 10.;
    Cv_lp.Lp.add_constraint p [ (1., free) ] Cv_lp.Lp.Ge (-3.);
    (p, [| shift; refl; free; box |])
  in
  let fixes = [| 2.5; -1.5; -2.; 3. |] in
  Array.iteri
    (fun i x ->
      let p, vars = mk () in
      Cv_lp.Lp.set_bounds p vars.(i) ~lo:x ~hi:x;
      match
        Cv_lp.Lp.maximize_linear p
          (Array.to_list (Array.map (fun v -> (1., v)) vars))
      with
      | Cv_lp.Lp.Optimal s ->
        check_float
          (Printf.sprintf "path %d fixed value" i)
          x
          s.Cv_lp.Lp.values.(vars.(i));
        check_float (Printf.sprintf "path %d objective" i) 10.
          s.Cv_lp.Lp.objective
      | _ -> Alcotest.fail "expected optimal")
    fixes

(* ------------------------------------------------------------------ *)
(* Compiled interface: warm restarts vs fresh solves                   *)
(* ------------------------------------------------------------------ *)

(* Re-bounding a compiled fixable variable must agree with re-lowering
   from scratch, and after the first solve the re-solves must hit the
   dual warm-start path. *)
let test_compiled_matches_fresh () =
  let build () =
    let p = Cv_lp.Lp.create () in
    let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
    let y = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
    let z = Cv_lp.Lp.add_var p ~lo:0. ~hi:3. () in
    Cv_lp.Lp.add_constraint p [ (2., x); (1., y); (1., z) ] Cv_lp.Lp.Le 3.5;
    Cv_lp.Lp.add_constraint p [ (1., x); (-1., y) ] Cv_lp.Lp.Ge (-0.5);
    (p, x, y, z)
  in
  let p, x, y, _z = build () in
  Cv_lp.Lp.set_objective p ~maximize:true [ (3., x); (2., y); (1., _z) ];
  let c = Cv_lp.Lp.compile ~fixable:[ x; y ] p in
  let hits0 = Cv_util.Metrics.value (Cv_util.Metrics.counter "lp.warmstart.hits") in
  let boxes =
    [ [ (x, 0., 0.) ];
      [ (x, 0., 0.); (y, 1., 1.) ];
      [ (x, 1., 1.); (y, 1., 1.) ];
      [ (x, 1., 1.) ];
      [] ]
  in
  List.iter
    (fun fixing ->
      List.iter (fun v -> Cv_lp.Lp.set_bounds_compiled c v ~lo:0. ~hi:1.) [ x; y ];
      List.iter
        (fun (v, lo, hi) -> Cv_lp.Lp.set_bounds_compiled c v ~lo ~hi)
        fixing;
      let fresh =
        let p', x', y', z' = build () in
        let map v = if v = x then x' else if v = y then y' else v in
        List.iter
          (fun (v, lo, hi) -> Cv_lp.Lp.set_bounds p' (map v) ~lo ~hi)
          fixing;
        Cv_lp.Lp.maximize_linear p' [ (3., x'); (2., y'); (1., z') ]
      in
      match (Cv_lp.Lp.solve_compiled c, fresh) with
      | Cv_lp.Lp.Optimal sc, Cv_lp.Lp.Optimal sf ->
        check_float "compiled = fresh objective" sf.Cv_lp.Lp.objective
          sc.Cv_lp.Lp.objective
      | Cv_lp.Lp.Infeasible, Cv_lp.Lp.Infeasible -> ()
      | _ -> Alcotest.fail "compiled and fresh solves disagree")
    boxes;
  let hits1 = Cv_util.Metrics.value (Cv_util.Metrics.counter "lp.warmstart.hits") in
  Alcotest.(check bool) "warm-start hits recorded" true (hits1 > hits0)

(* The gadget row pair must support fixing at both ends of each of the
   compile-time boxes (degenerate lo = hi included). *)
let test_compiled_fixing_validation () =
  let p = Cv_lp.Lp.create () in
  let b = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
  let free = Cv_lp.Lp.add_var p () in
  Cv_lp.Lp.add_constraint p [ (1., b); (1., free) ] Cv_lp.Lp.Le 2.;
  Cv_lp.Lp.set_objective p ~maximize:true [ (1., b); (1., free) ];
  (match Cv_lp.Lp.compile ~fixable:[ free ] p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "compile must reject unbounded fixable variables");
  let c = Cv_lp.Lp.compile ~fixable:[ b ] p in
  (match Cv_lp.Lp.set_bounds_compiled c b ~lo:(-1.) ~hi:1. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "re-bound outside the compiled box must be rejected");
  Cv_lp.Lp.set_bounds_compiled c b ~lo:1. ~hi:1.;
  match Cv_lp.Lp.solve_compiled c with
  | Cv_lp.Lp.Optimal s -> check_float "b fixed at 1" 1. s.Cv_lp.Lp.values.(b)
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Iteration-limit degradation                                         *)
(* ------------------------------------------------------------------ *)

(* A starved simplex must surface [Stalled] (a structured outcome the
   callers degrade on) instead of raising. *)
let test_stalled_on_iteration_limit () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (2., y) ] Cv_lp.Lp.Le 4.;
  Cv_lp.Lp.add_constraint p [ (3., x); (1., y) ] Cv_lp.Lp.Le 6.;
  Cv_lp.Lp.set_objective p ~maximize:true [ (1., x); (1., y) ];
  (match Cv_lp.Lp.solve ~max_iters:1 p with
  | Cv_lp.Lp.Stalled -> ()
  | _ -> Alcotest.fail "expected Stalled under max_iters:1");
  match Cv_lp.Lp.solve p with
  | Cv_lp.Lp.Optimal s -> check_float "unstarved optimum" 2.8 s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal without the iteration cap"

let () =
  Alcotest.run "cv_lp"
    [ ( "basic",
        [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick
            test_degenerate_no_cycle;
          Alcotest.test_case "degenerate (Chvátal)" `Quick
            test_chvatal_cycling;
          Alcotest.test_case "zero rows" `Quick test_zero_row_constraints;
          Alcotest.test_case "zero column" `Quick test_zero_column_variable;
          Alcotest.test_case "stalled in phase 1" `Quick
            test_stalled_in_phase1 ] );
      ( "bounds",
        [ Alcotest.test_case "negative lower bounds" `Quick
            test_negative_lower_bounds;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "upper-bound-only" `Quick
            test_upper_bound_only_variable;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
          Alcotest.test_case "set_bounds/copy" `Quick test_set_bounds_and_copy;
          Alcotest.test_case "constraint validation" `Quick
            test_bad_constraint_var;
          Alcotest.test_case "fixing across lowering paths" `Quick
            test_set_bounds_fixing_paths ] );
      ( "compiled",
        [ Alcotest.test_case "matches fresh solves" `Quick
            test_compiled_matches_fresh;
          Alcotest.test_case "fixing validation" `Quick
            test_compiled_fixing_validation;
          Alcotest.test_case "stalled on iteration limit" `Quick
            test_stalled_on_iteration_limit ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest lp_box_corner_prop;
          QCheck_alcotest.to_alcotest lp_solution_feasible_prop;
          QCheck_alcotest.to_alcotest lp_vertex_enumeration_prop ] ) ]
