(* Shared test fixtures and QCheck generators (library [cv_testgen]).
   One home for the random-network helpers and the adversarial float
   entry generators that used to be copy-pasted across test modules. *)

(* ------------------------------------------------------------------ *)
(* Deterministic random networks                                       *)
(* ------------------------------------------------------------------ *)

let net_of seed dims =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims
    ~act:Cv_nn.Activation.Relu ()

(* The 3→6→5→1 ReLU net used by the query/batch suites. *)
let net3 seed = net_of seed [ 3; 6; 5; 1 ]

(* A provable property: the symbolic-interval over-approximation of the
   reach set, widened — every engine must prove it. *)
let safe_prop ?(margin = 0.1) net din =
  let out =
    Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net din
  in
  Cv_verify.Property.make ~din ~dout:(Cv_interval.Box.expand margin out)

(* A falsifiable property: the exact output range shrunk around its
   center (width divided by [shrink]) misses some outputs. Single-output
   networks only. *)
let unsafe_prop ?(shrink = 8.) net din =
  let r = (Cv_verify.Range.exact_range net ~din).Cv_verify.Range.range in
  let lo = (Cv_interval.Box.lower r).(0)
  and hi = (Cv_interval.Box.upper r).(0) in
  let c = (lo +. hi) /. 2. and w = (hi -. lo) /. shrink in
  Cv_verify.Property.make ~din
    ~dout:(Cv_interval.Box.of_bounds [| c -. w |] [| c +. w |])

(* ------------------------------------------------------------------ *)
(* Kernel-hostile float generators                                     *)
(* ------------------------------------------------------------------ *)

(* Shapes off the block boundaries, including degenerate ones. *)
let shape_gen = QCheck.Gen.oneofl [ 0; 1; 2; 3; 5; 7; 8; 9; 17; 33; 64; 65; 70 ]

(* Entries with exact zeros, signed zeros and subnormals mixed into
   ordinary magnitudes. *)
let entry_gen =
  QCheck.Gen.frequency
    [ (6, QCheck.Gen.float_range (-10.) 10.);
      (1, QCheck.Gen.return 0.);
      (1, QCheck.Gen.return (-0.));
      (1, QCheck.Gen.return 4.9e-324);
      (1, QCheck.Gen.return (-2.2250738585072014e-308)) ]

let mat_gen rows cols =
  QCheck.Gen.map
    (fun l -> Cv_linalg.Mat.of_array ~rows ~cols (Array.of_list l))
    (QCheck.Gen.list_size (QCheck.Gen.return (rows * cols)) entry_gen)

let vec_gen n =
  QCheck.Gen.map Array.of_list
    (QCheck.Gen.list_size (QCheck.Gen.return n) entry_gen)
