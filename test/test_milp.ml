(* Tests for Cv_milp: branch-and-bound and the big-M ReLU encoding. *)

let check_float = Alcotest.(check (float 1e-5))

(* ------------------------------------------------------------------ *)
(* Branch & bound on hand-made MILPs                                   *)
(* ------------------------------------------------------------------ *)

let test_knapsack () =
  (* max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 5, binary: optimum 17
     (a=1, c=1; the 23-profit pair a+b needs weight 7 > 5). *)
  let p = Cv_milp.Milp.create () in
  let a = Cv_milp.Milp.add_binary p () in
  let b = Cv_milp.Milp.add_binary p () in
  let c = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (3., a); (4., b); (2., c) ] Cv_lp.Lp.Le 5.;
  match Cv_milp.Milp.maximize p [ (10., a); (13., b); (7., c) ] with
  | Cv_milp.Milp.Optimal s ->
    check_float "objective" 17. s.Cv_milp.Milp.objective;
    check_float "a" 1. s.Cv_milp.Milp.values.(a);
    check_float "b" 0. s.Cv_milp.Milp.values.(b);
    check_float "c" 1. s.Cv_milp.Milp.values.(c)
  | _ -> Alcotest.fail "expected optimal"

let test_mixed_integer () =
  (* max x + 10d s.t. x <= 3 + 2d, x ∈ [0, 10], d binary: optimum x=5,d=1 → 15 *)
  let p = Cv_milp.Milp.create () in
  let x = Cv_milp.Milp.add_var p ~lo:0. ~hi:10. () in
  let d = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (1., x); (-2., d) ] Cv_lp.Lp.Le 3.;
  match Cv_milp.Milp.maximize p [ (1., x); (10., d) ] with
  | Cv_milp.Milp.Optimal s -> check_float "objective" 15. s.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_milp_infeasible () =
  let p = Cv_milp.Milp.create () in
  let d = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (1., d) ] Cv_lp.Lp.Ge 2.;
  match Cv_milp.Milp.maximize p [ (1., d) ] with
  | Cv_milp.Milp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_cutoff_below () =
  (* optimum 17; cutoff 30 → Below_cutoff with bound in [17, 30]. *)
  let p = Cv_milp.Milp.create () in
  let a = Cv_milp.Milp.add_binary p () in
  let b = Cv_milp.Milp.add_binary p () in
  let c = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (3., a); (4., b); (2., c) ] Cv_lp.Lp.Le 5.;
  match
    Cv_milp.Milp.maximize ~cutoff:30. p [ (10., a); (13., b); (7., c) ]
  with
  | Cv_milp.Milp.Below_cutoff ub ->
    Alcotest.(check bool) "bound within [17, 30]" true
      (ub >= 17. -. 1e-5 && ub <= 30. +. 1e-6)
  | Cv_milp.Milp.Optimal s when s.Cv_milp.Milp.objective <= 30. -> ()
  | _ -> Alcotest.fail "expected below-cutoff style result"

let test_cutoff_reached () =
  (* optimum 17; cutoff 10 → some integer point above 10 must surface. *)
  let p = Cv_milp.Milp.create () in
  let a = Cv_milp.Milp.add_binary p () in
  let b = Cv_milp.Milp.add_binary p () in
  let c = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (3., a); (4., b); (2., c) ] Cv_lp.Lp.Le 5.;
  match
    Cv_milp.Milp.maximize ~cutoff:10. p [ (10., a); (13., b); (7., c) ]
  with
  | Cv_milp.Milp.Cutoff_reached s ->
    Alcotest.(check bool) "above cutoff" true (s.Cv_milp.Milp.objective > 10.)
  | _ -> Alcotest.fail "expected cutoff reached"

let test_minimize_milp () =
  (* min a + b s.t. a + b >= 1, binary: optimum 1. *)
  let p = Cv_milp.Milp.create () in
  let a = Cv_milp.Milp.add_binary p () in
  let b = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (1., a); (1., b) ] Cv_lp.Lp.Ge 1.;
  match Cv_milp.Milp.minimize p [ (1., a); (1., b) ] with
  | Cv_milp.Milp.Optimal s -> check_float "objective" 1. s.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "expected optimal"

(* Randomized: MILP optimum equals brute-force enumeration over binaries. *)
let milp_vs_bruteforce_prop =
  QCheck.Test.make ~name:"b&b matches brute force on binary programs"
    ~count:60
    QCheck.(pair (list_of_size (Gen.return 4) (float_range (-5.) 5.))
              (list_of_size (Gen.return 4) (float_range 0.5 3.)))
    (fun (profits, weights) ->
      let capacity = 4. in
      let p = Cv_milp.Milp.create () in
      let vars = List.map (fun _ -> Cv_milp.Milp.add_binary p ()) profits in
      Cv_milp.Milp.add_constraint p
        (List.map2 (fun w v -> (w, v)) weights vars)
        Cv_lp.Lp.Le capacity;
      let terms = List.map2 (fun c v -> (c, v)) profits vars in
      let best = ref Float.neg_infinity in
      for mask = 0 to 15 do
        let bit i = if mask land (1 lsl i) <> 0 then 1. else 0. in
        let w = List.fold_left ( +. ) 0. (List.mapi (fun i wi -> wi *. bit i) weights) in
        if w <= capacity +. 1e-9 then begin
          let v =
            List.fold_left ( +. ) 0. (List.mapi (fun i c -> c *. bit i) profits)
          in
          best := Float.max !best v
        end
      done;
      match Cv_milp.Milp.maximize p terms with
      | Cv_milp.Milp.Optimal s -> Float.abs (s.Cv_milp.Milp.objective -. !best) < 1e-5
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* ReLU encoding                                                       *)
(* ------------------------------------------------------------------ *)

let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

(* The paper's Figure 2 example: exact max of n4 over the enlarged
   domain is 6.2 (< the interval bound 12.4). *)
let test_paper_example_62 () =
  let net = fig2_net () in
  let box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
  match Cv_milp.Relu_encoding.max_output enc ~output:0 with
  | Cv_milp.Milp.Optimal s -> check_float "max n4 = 6.2" 6.2 s.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_encoding_exact_vs_sampling () =
  (* Exact bounds must dominate sampled values and be attained nearby. *)
  let rng = Cv_util.Rng.create 77 in
  for seed = 1 to 4 do
    let net =
      Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims:[ 3; 6; 4; 1 ]
        ~act:Cv_nn.Activation.Relu ()
    in
    let box = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
    let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
    let hi =
      match Cv_milp.Relu_encoding.max_output enc ~output:0 with
      | Cv_milp.Milp.Optimal s -> s.Cv_milp.Milp.objective
      | _ -> Alcotest.fail "max failed"
    in
    let lo =
      match Cv_milp.Relu_encoding.min_output enc ~output:0 with
      | Cv_milp.Milp.Optimal s -> s.Cv_milp.Milp.objective
      | _ -> Alcotest.fail "min failed"
    in
    let sampled_max = ref Float.neg_infinity and sampled_min = ref Float.infinity in
    for _ = 1 to 2000 do
      let y = (Cv_nn.Network.eval net (Cv_interval.Box.sample rng box)).(0) in
      sampled_max := Float.max !sampled_max y;
      sampled_min := Float.min !sampled_min y
    done;
    Alcotest.(check bool) "exact max >= sampled" true (hi >= !sampled_max -. 1e-6);
    Alcotest.(check bool) "exact min <= sampled" true (lo <= !sampled_min +. 1e-6);
    (* Exact bounds are inside the symint reach. *)
    let reach =
      Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net box
    in
    Alcotest.(check bool) "within symint reach" true
      (Cv_interval.Interval.subset_tol ~tol:1e-6
         (Cv_interval.Interval.make lo hi)
         (Cv_interval.Box.get reach 0))
  done

let test_encoding_identity_and_stable () =
  (* A purely linear network: exact range = interval arithmetic. *)
  let net =
    Cv_nn.Network.of_list
      [ Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 2.; -1. |] ])
          [| 3. |] Cv_nn.Activation.Identity ]
  in
  let box = Cv_interval.Box.uniform 2 ~lo:0. ~hi:1. in
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
  let _, _, binaries = Cv_milp.Relu_encoding.stats enc in
  Alcotest.(check int) "no binaries for linear net" 0 binaries;
  (match Cv_milp.Relu_encoding.max_output enc ~output:0 with
  | Cv_milp.Milp.Optimal s -> check_float "max 5" 5. s.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "max failed");
  match Cv_milp.Relu_encoding.min_output enc ~output:0 with
  | Cv_milp.Milp.Optimal s -> check_float "min 2" 2. s.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "min failed"

let test_encoding_leaky_relu () =
  let rng = Cv_util.Rng.create 31 in
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 21) ~dims:[ 2; 5; 1 ]
      ~act:(Cv_nn.Activation.Leaky_relu 0.2) ()
  in
  let box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
  let hi =
    match Cv_milp.Relu_encoding.max_output enc ~output:0 with
    | Cv_milp.Milp.Optimal s -> s.Cv_milp.Milp.objective
    | _ -> Alcotest.fail "max failed"
  in
  let sampled = ref Float.neg_infinity in
  for _ = 1 to 3000 do
    let y = (Cv_nn.Network.eval net (Cv_interval.Box.sample rng box)).(0) in
    sampled := Float.max !sampled y
  done;
  Alcotest.(check bool) "leaky exact >= sampled" true (hi >= !sampled -. 1e-6);
  Alcotest.(check bool) "leaky exact close to sampled" true
    (hi <= !sampled +. 0.5)

let test_encoding_rejects_sigmoid () =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 1) ~dims:[ 2; 3; 1 ]
      ~act:Cv_nn.Activation.Sigmoid ()
  in
  try
    ignore
      (Cv_milp.Relu_encoding.encode ~net
         ~input_box:(Cv_interval.Box.uniform 2 ~lo:0. ~hi:1.));
    Alcotest.fail "should reject sigmoid"
  with Invalid_argument _ -> ()

let test_cutoff_decision_queries () =
  (* Decision-style use as in Containment: max <= theta? *)
  let net = fig2_net () in
  let box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
  (match Cv_milp.Relu_encoding.max_output enc ~output:0 ~cutoff:12. with
  | Cv_milp.Milp.Below_cutoff ub ->
    Alcotest.(check bool) "ub <= 12" true (ub <= 12. +. 1e-6)
  | Cv_milp.Milp.Optimal s ->
    Alcotest.(check bool) "optimal <= 12" true (s.Cv_milp.Milp.objective <= 12.)
  | _ -> Alcotest.fail "expected proof below cutoff");
  match Cv_milp.Relu_encoding.max_output enc ~output:0 ~cutoff:5. with
  | Cv_milp.Milp.Cutoff_reached s ->
    Alcotest.(check bool) "witness above 5" true (s.Cv_milp.Milp.objective > 5.)
  | Cv_milp.Milp.Optimal s ->
    Alcotest.(check bool) "optimum above 5" true (s.Cv_milp.Milp.objective > 5.)
  | _ -> Alcotest.fail "expected cutoff reached"

(* ------------------------------------------------------------------ *)
(* Parallel dives and iteration-limit degradation                      *)
(* ------------------------------------------------------------------ *)

(* The parallel node-batch mode must reproduce the sequential verdicts
   and objectives exactly (deterministic event replay). *)
let test_parallel_matches_sequential () =
  let knapsack () =
    let p = Cv_milp.Milp.create () in
    let vars = Array.init 8 (fun _ -> Cv_milp.Milp.add_binary p ()) in
    let weights = [| 3.; 4.; 2.; 5.; 1.; 6.; 2.; 3. |] in
    let profits = [| 10.; 13.; 7.; 11.; 2.; 15.; 5.; 8. |] in
    Cv_milp.Milp.add_constraint p
      (Array.to_list (Array.mapi (fun i v -> (weights.(i), v)) vars))
      Cv_lp.Lp.Le 12.;
    (p, Array.to_list (Array.mapi (fun i v -> (profits.(i), v)) vars))
  in
  let solve domains =
    let p, terms = knapsack () in
    Cv_milp.Milp.maximize ~domains p terms
  in
  (match (solve 1, solve 3) with
  | Cv_milp.Milp.Optimal s1, Cv_milp.Milp.Optimal s3 ->
    check_float "parallel = sequential optimum" s1.Cv_milp.Milp.objective
      s3.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "expected optimal from both searches");
  (* Figure 2 exact query, sequential vs 2 domains. *)
  let fig2_max domains =
    let net = fig2_net () in
    let box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
    let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:box in
    Cv_milp.Relu_encoding.max_output ~domains enc ~output:0
  in
  match (fig2_max 1, fig2_max 2) with
  | Cv_milp.Milp.Optimal s1, Cv_milp.Milp.Optimal s2 ->
    check_float "fig2 sequential" 6.2 s1.Cv_milp.Milp.objective;
    check_float "fig2 parallel" 6.2 s2.Cv_milp.Milp.objective
  | _ -> Alcotest.fail "expected optimal fig2 maxima"

(* A simplex iteration budget small enough to stall every node must
   degrade to [Timeout] (with an infinite bound — nothing certified),
   never raise. *)
let test_stalled_root_times_out () =
  let p = Cv_milp.Milp.create () in
  let a = Cv_milp.Milp.add_binary p () in
  let b = Cv_milp.Milp.add_binary p () in
  let c = Cv_milp.Milp.add_binary p () in
  Cv_milp.Milp.add_constraint p [ (3., a); (4., b); (2., c) ] Cv_lp.Lp.Le 5.;
  match Cv_milp.Milp.maximize ~max_iters:1 p [ (10., a); (13., b); (7., c) ] with
  | Cv_milp.Milp.Timeout { bound; incumbent } ->
    Alcotest.(check bool) "no certified bound" true (bound = Float.infinity);
    Alcotest.(check bool) "no incumbent" true (incumbent = None)
  | _ -> Alcotest.fail "expected Timeout when the root solve stalls"

let () =
  Alcotest.run "cv_milp"
    [ ( "branch-and-bound",
        [ Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "mixed integer" `Quick test_mixed_integer;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "cutoff below" `Quick test_cutoff_below;
          Alcotest.test_case "cutoff reached" `Quick test_cutoff_reached;
          Alcotest.test_case "minimize" `Quick test_minimize_milp;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "stalled root times out" `Quick
            test_stalled_root_times_out;
          QCheck_alcotest.to_alcotest milp_vs_bruteforce_prop ] );
      ( "relu-encoding",
        [ Alcotest.test_case "paper fig2: max = 6.2" `Quick
            test_paper_example_62;
          Alcotest.test_case "exact vs sampling" `Quick
            test_encoding_exact_vs_sampling;
          Alcotest.test_case "linear network" `Quick
            test_encoding_identity_and_stable;
          Alcotest.test_case "leaky relu" `Quick test_encoding_leaky_relu;
          Alcotest.test_case "rejects sigmoid" `Quick
            test_encoding_rejects_sigmoid;
          Alcotest.test_case "cutoff decision queries" `Quick
            test_cutoff_decision_queries ] ) ]
