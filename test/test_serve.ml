(* Tests of the continuous-verification service: the bounded event
   queue, scripted sources, full OOD→SVuDC→commit rounds checked against
   a one-shot oracle, backpressure accounting, non-finite rejection,
   cache reuse across rounds, and checkpoint/resume continuity — both
   in-process and through the contiver binary (SIGKILL mid-round). *)

module Json = Cv_util.Json
module Box = Cv_interval.Box
module Monitor = Cv_monitor.Monitor
module Artifacts = Cv_artifacts.Artifacts
module Cache = Cv_artifacts.Cache
module Batch = Cv_core.Batch
module Strategy = Cv_core.Strategy
module Serve = Cv_serve.Serve
module Source = Cv_serve.Source
module Event_queue = Cv_serve.Event_queue

(* ------------------------------------------------------------------ *)
(* Shared toy problem: a tiny ReLU net with a generous output box, so
   SVuDC rounds over modestly enlarged domains stay provable. *)

let toy_net =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create 11) ~dims:[ 2; 4; 1 ]
    ~act:Cv_nn.Activation.Relu ()

let toy_din = Box.uniform 2 ~lo:(-1.) ~hi:1.

let toy_dout =
  (* Output range over a domain comfortably containing every enlargement
     the tests trigger, plus slack: all rounds should come back Safe. *)
  Box.expand 0.2
    (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint toy_net
       (Box.uniform 2 ~lo:(-1.5) ~hi:1.5))

let toy_artifact =
  lazy
    (let prop = Cv_verify.Property.make ~din:toy_din ~dout:toy_dout in
     let original = Strategy.solve_original toy_net prop in
     Alcotest.(check bool) "toy property proved" true
       original.Strategy.proved;
     original.Strategy.artifact)

let in_dist =
  [ [| 0.; 0. |]; [| 0.1; -0.2 |]; [| -0.4; 0.3 |]; [| 0.5; -0.5 |] ]

let ood_at x0 = List.init 3 (fun k -> [| x0 +. (0.01 *. float_of_int k); 0. |])

let quiet_config =
  { Serve.default_config with Serve.margin = 0.01; trigger_events = 3 }

let batch_verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Batch.verdict_name v))
    ( = )

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)

let test_queue_fifo_and_drop () =
  let q = Event_queue.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Event_queue.capacity q);
  let v n = [| float_of_int n |] in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "push %d evicts nothing" n)
        true
        (Event_queue.push q (v n) = None))
    [ 1; 2; 3 ];
  (* Overflow drops the oldest and reports it. *)
  (match Event_queue.push q (v 4) with
  | Some lost -> Alcotest.(check (float 0.)) "oldest dropped" 1. lost.(0)
  | None -> Alcotest.fail "overflow did not evict");
  Alcotest.(check int) "dropped counted" 1 (Event_queue.dropped q);
  Alcotest.(check int) "length at capacity" 3 (Event_queue.length q);
  (* FIFO order of the survivors. *)
  List.iter
    (fun expected ->
      match Event_queue.pop q with
      | Some x ->
        Alcotest.(check (float 0.))
          (Printf.sprintf "pop %g" expected)
          expected x.(0)
      | None -> Alcotest.fail "queue empty too early")
    [ 2.; 3.; 4. ];
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_queue_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Event_queue.create: capacity must be >= 1")
    (fun () -> ignore (Event_queue.create ~capacity:0 ()))

let test_source_of_bursts () =
  let s = Source.of_bursts [ [ [| 1. |] ]; []; [ [| 2. |]; [| 3. |] ] ] in
  (match s () with
  | Source.Burst [ x ] -> Alcotest.(check (float 0.)) "first" 1. x.(0)
  | _ -> Alcotest.fail "expected first burst");
  (match s () with
  | Source.Burst [] -> ()
  | _ -> Alcotest.fail "expected empty burst");
  (match s () with
  | Source.Burst [ x; y ] ->
    Alcotest.(check (float 0.)) "second" 2. x.(0);
    Alcotest.(check (float 0.)) "third" 3. y.(0)
  | _ -> Alcotest.fail "expected second burst");
  Alcotest.(check bool) "eof" true (s () = Source.Eof);
  Alcotest.(check bool) "eof stays" true (s () = Source.Eof)

(* ------------------------------------------------------------------ *)
(* Full rounds through Serve.run                                       *)

(* A scripted stream drives one OOD→SVuDC→commit round whose verdict
   must equal solving the same enlarged problem one-shot. *)
let test_round_matches_oracle () =
  let artifact = Lazy.force toy_artifact in
  let ood = ood_at 1.03 in
  let t =
    Serve.run ~config:quiet_config ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ in_dist; ood ])
      ()
  in
  Alcotest.(check int) "one round" 1 t.Serve.round_count;
  Alcotest.(check int) "one commit" 1 t.Serve.commits;
  Alcotest.(check int) "seen all" 7 t.Serve.seen;
  Alcotest.(check int) "ood counted" 3 t.Serve.ood;
  Alcotest.(check int) "nothing pending" 0 t.Serve.pending;
  Alcotest.(check bool) "stopped at eof" true (t.Serve.stop = Serve.Eof);
  let round =
    match t.Serve.rounds with [ r ] -> r | _ -> Alcotest.fail "round list"
  in
  Alcotest.(check bool) "svudc round" true (round.Serve.kind = Serve.Svudc);
  Alcotest.(check bool) "committed" true round.Serve.committed;
  Alcotest.(check int) "triggered on 3 events" 3 round.Serve.trigger_events;
  List.iter
    (fun p ->
      Alcotest.(check bool) "committed box covers event" true (Box.mem p t.Serve.box))
    ood;
  (* The refreshed artifact is for the committed box. *)
  Alcotest.(check bool) "artifact din = committed box" true
    (Box.subset t.Serve.box
       t.Serve.artifact.Artifacts.property.Cv_verify.Property.din
    && Box.subset t.Serve.artifact.Artifacts.property.Cv_verify.Property.din
         t.Serve.box);
  (* Oracle: replay the observations into a fresh monitor and solve the
     identical SVuDC problem one-shot. *)
  let monitor = Monitor.of_box toy_din in
  List.iter (fun p -> ignore (Monitor.observe monitor p)) (in_dist @ ood);
  let enlarged = Monitor.enlarged_box ~margin:0.01 monitor in
  Alcotest.(check bool) "same enlarged box" true
    (Box.subset enlarged t.Serve.box && Box.subset t.Serve.box enlarged);
  let problem =
    Cv_core.Problem.svudc ~net:toy_net ~artifact ~new_din:enlarged
  in
  let report = Strategy.solve_svudc problem in
  let oracle =
    match report.Cv_core.Report.verdict with
    | Cv_core.Report.Safe -> Batch.Safe
    | Cv_core.Report.Unsafe _ -> Batch.Unsafe
    | Cv_core.Report.Inconclusive _ -> Batch.Inconclusive
    | Cv_core.Report.Exhausted _ -> Batch.Exhausted
  in
  Alcotest.check batch_verdict "verdict equals one-shot oracle" oracle
    round.Serve.verdict

let test_backpressure_accounting () =
  let artifact = Lazy.force toy_artifact in
  (* One burst far over capacity: the oldest six frames must be dropped,
     counted, and never observed. *)
  let burst = List.init 10 (fun _ -> [| 0.; 0. |]) in
  let config = { quiet_config with Serve.queue_capacity = 4 } in
  let t =
    Serve.run ~config ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ burst ])
      ()
  in
  Alcotest.(check int) "consumed all" 10 t.Serve.consumed;
  Alcotest.(check int) "dropped overflow" 6 t.Serve.dropped;
  Alcotest.(check int) "observed the rest" 4 t.Serve.seen;
  Alcotest.(check int) "no rounds" 0 t.Serve.round_count

let test_rejects_non_finite () =
  let artifact = Lazy.force toy_artifact in
  let poisoned = [ [| nan; 0. |]; [| infinity; 0. |]; [| 0.; 0. |] ] in
  let t =
    Serve.run ~config:quiet_config ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ poisoned ])
      ()
  in
  Alcotest.(check int) "rejected counted" 2 t.Serve.rejected;
  Alcotest.(check int) "no ood" 0 t.Serve.ood;
  Alcotest.(check int) "no rounds" 0 t.Serve.round_count

let test_cache_reuse_across_rounds () =
  let artifact = Lazy.force toy_artifact in
  let cache = Cache.create () in
  let config = { quiet_config with Serve.cache = Some cache } in
  let t =
    Serve.run ~config ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ in_dist; ood_at 1.03; ood_at 1.2 ])
      ()
  in
  Alcotest.(check int) "two rounds" 2 t.Serve.round_count;
  Alcotest.(check int) "two commits" 2 t.Serve.commits;
  match t.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "cache hits on second round (%d hits)" s.Cache.hits)
      true (s.Cache.hits > 0)

(* Kill-free resume continuity: run one round with checkpointing, load
   the saved state in a second run, and check counters, round numbering
   and the monitored box carry over. *)
let test_resume_continues_counters () =
  let artifact = Lazy.force toy_artifact in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "contiver_serve_lib_test"
  in
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let config =
    { quiet_config with
      Serve.checkpoint_dir = Some dir;
      checkpoint_every = 0. }
  in
  let t1 =
    Serve.run ~config ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ in_dist; ood_at 1.03 ])
      ()
  in
  Alcotest.(check int) "first run: one round" 1 t1.Serve.round_count;
  let fingerprint = Artifacts.fingerprint toy_net in
  let state =
    match Serve.load_state ~dir ~fingerprint with
    | Ok (Some p) -> p
    | Ok None -> Alcotest.fail "no state file"
    | Error e -> Alcotest.fail (Cv_core.Runstate.resume_error_message e)
  in
  Alcotest.(check int) "persisted round" 1 state.Serve.p_round;
  Alcotest.(check int) "persisted consumed" 7 state.Serve.p_consumed;
  Alcotest.(check int) "nothing left pending" 0
    (List.length state.Serve.p_pending);
  let config2 = { config with Serve.resume = Some state } in
  let t2 =
    Serve.run ~config:config2 ~net:toy_net ~artifact
      ~source:(Source.of_bursts [ ood_at 1.2 ])
      ()
  in
  Alcotest.(check int) "round numbering continues" 2 t2.Serve.round_count;
  Alcotest.(check int) "commit counter continues" 2 t2.Serve.commits;
  Alcotest.(check int) "seen accumulates" 10 t2.Serve.seen;
  (match t2.Serve.rounds with
  | [ r ] -> Alcotest.(check int) "new round is number 2" 2 r.Serve.number
  | _ -> Alcotest.fail "second run should execute exactly one round");
  Alcotest.(check bool) "box only grows" true
    (Box.subset t1.Serve.box t2.Serve.box);
  List.iter
    (fun p ->
      Alcotest.(check bool) "new events covered" true (Box.mem p t2.Serve.box))
    (ood_at 1.2)

(* ------------------------------------------------------------------ *)
(* Through the binary                                                  *)

let exe =
  List.find_opt Sys.file_exists
    [ "../bin/contiver.exe"; "_build/default/bin/contiver.exe";
      "bin/contiver.exe" ]
  |> Option.value ~default:"../bin/contiver.exe"

let tmp_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "contiver_serve_cli_test"

let run args =
  Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1")

let run_out ?stdin_file args =
  let out = Filename.temp_file "contiver_serve" ".out" in
  let redirect_in =
    match stdin_file with
    | None -> ""
    | Some f -> " < " ^ Filename.quote f
  in
  let cmd =
    Filename.quote_command exe args
    ^ redirect_in ^ " > " ^ Filename.quote out ^ " 2> /dev/null"
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* Every status line must parse as a [contiver-serve-status-v1] record;
   returns the last (final) one. *)
let final_status text =
  let records =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           let j = Json.parse l in
           Alcotest.(check string)
             "status schema" "contiver-serve-status-v1"
             (Json.to_str (Json.member "schema" j));
           j)
  in
  match List.rev records with
  | last :: _ ->
    Alcotest.(check bool) "final record flagged" true
      (Json.to_bool (Json.member "final" last));
    last
  | [] -> Alcotest.fail "no status records on stdout"

let events_field status name =
  Json.to_int (Json.member name (Json.member "events" status))

(* Feed a hand-written NDJSON stream to [contiver serve] over stdin and
   check the final status record reports the committed round. *)
let test_cli_stdin_round () =
  ignore (Sys.command ("rm -rf " ^ Filename.quote tmp_dir));
  let path f = Filename.concat tmp_dir f in
  Alcotest.(check int) "generate" 0
    (run [ "generate"; "--out"; tmp_dir; "--seed"; "7" ]);
  Alcotest.(check int) "verify" 0
    (run
       [ "verify"; "--model"; path "head1.json"; "--property";
         path "property.json"; "--artifact"; path "proof.json" ]);
  (* din.json is the monitored box: a JSON list of [lo, hi] pairs. *)
  let din =
    let ic = open_in (path "din.json") in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Json.parse text |> Json.to_list
    |> List.map (fun pair ->
           match Json.to_list pair with
           | [ lo; hi ] -> (Json.to_float lo, Json.to_float hi)
           | _ -> Alcotest.fail "din.json entry is not a pair")
  in
  let mid = List.map (fun (lo, hi) -> 0.5 *. (lo +. hi)) din in
  let hi0 = match din with (_, hi) :: _ -> hi | [] -> Alcotest.fail "empty din" in
  let vec_line v = Json.to_string (Json.of_float_array (Array.of_list v)) in
  let ood_line k =
    let v =
      (hi0 +. 0.01 +. (0.002 *. float_of_int k)) :: List.tl mid
    in
    Json.to_string
      (Json.Obj [ ("features", Json.of_float_array (Array.of_list v)) ])
  in
  let lines =
    List.init 4 (fun _ -> vec_line mid) @ List.init 3 ood_line
  in
  write_file (path "events.ndjson") (String.concat "\n" lines ^ "\n");
  let code, text =
    run_out ~stdin_file:(path "events.ndjson")
      [ "serve"; "--model"; path "head1.json"; "--artifact";
        path "proof.json"; "--no-watch" ]
  in
  Alcotest.(check int) "serve exits 0" 0 code;
  let status = final_status text in
  Alcotest.(check int) "one round" 1
    (Json.to_int (Json.member "rounds" status));
  Alcotest.(check int) "one commit" 1
    (Json.to_int (Json.member "commits" status));
  Alcotest.(check int) "saw all frames" 7 (events_field status "seen");
  Alcotest.(check int) "three ood" 3 (events_field status "ood");
  Alcotest.(check string) "stopped at eof" "eof"
    (Json.to_str (Json.member "stop" status))

(* SIGKILL the daemon mid-loop and resume from its checkpoint: the
   resumed run must reach the same final status as an uninterrupted
   reference run, replaying the finished round from its done-file. *)
let test_cli_kill_and_resume () =
  let drive_args =
    [ "serve"; "--drive"; "--rounds"; "2"; "--drive-steps"; "400";
      "--drive-seed"; "123" ]
  in
  let code, text = run_out drive_args in
  Alcotest.(check int) "reference run exits 0" 0 code;
  let reference = final_status text in
  Alcotest.(check int) "reference rounds" 2
    (Json.to_int (Json.member "rounds" reference));
  (* Same run, checkpointed at every tick; kill it once the first
     round's done-file has landed. *)
  let dir = Filename.concat tmp_dir "serve_ck" in
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let ck_args =
    drive_args @ [ "--checkpoint-dir"; dir; "--checkpoint-every"; "0" ]
  in
  let done_file = Filename.concat dir "round-0001-svudc.done.json" in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: ck_args))
      Unix.stdin dev_null dev_null
  in
  let deadline = Unix.gettimeofday () +. 60. in
  let rec wait_for_done_file () =
    if Sys.file_exists done_file then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      (* The toy rounds are fast; the run may legitimately finish before
         we get to kill it — resume must still reproduce the result. *)
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        Unix.sleepf 0.005;
        wait_for_done_file ()
      | _ -> true
    end
  in
  let landed = wait_for_done_file () in
  Unix.close dev_null;
  Alcotest.(check bool) "first round done-file observed" true landed;
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  let code, text =
    run_out (ck_args @ [ "--resume-checkpoint" ])
  in
  Alcotest.(check int) "resumed run exits 0" 0 code;
  let resumed = final_status text in
  List.iter
    (fun field ->
      Alcotest.(check int)
        ("resumed " ^ field ^ " matches reference")
        (Json.to_int (Json.member field reference))
        (Json.to_int (Json.member field resumed)))
    [ "rounds"; "commits" ];
  List.iter
    (fun field ->
      Alcotest.(check int)
        ("resumed events." ^ field ^ " matches reference")
        (events_field reference field)
        (events_field resumed field))
    [ "seen"; "ood"; "pending"; "rejected" ];
  Alcotest.(check (float 1e-9)) "same committed box width"
    (Json.to_float (Json.member "box_width" reference))
    (Json.to_float (Json.member "box_width" resumed));
  Alcotest.(check string) "same stop reason"
    (Json.to_str (Json.member "stop" reference))
    (Json.to_str (Json.member "stop" resumed))

let () =
  Alcotest.run "cv_serve"
    [ ( "queue",
        [ Alcotest.test_case "fifo and drop accounting" `Quick
            test_queue_fifo_and_drop;
          Alcotest.test_case "bad capacity rejected" `Quick
            test_queue_rejects_bad_capacity;
          Alcotest.test_case "scripted source" `Quick test_source_of_bursts ] );
      ( "loop",
        [ Alcotest.test_case "round matches one-shot oracle" `Quick
            test_round_matches_oracle;
          Alcotest.test_case "backpressure accounting" `Quick
            test_backpressure_accounting;
          Alcotest.test_case "non-finite rejected" `Quick
            test_rejects_non_finite;
          Alcotest.test_case "cache reuse across rounds" `Quick
            test_cache_reuse_across_rounds;
          Alcotest.test_case "resume continues counters" `Quick
            test_resume_continues_counters ] );
      ( "cli",
        [ Alcotest.test_case "stdin ndjson round" `Quick test_cli_stdin_round;
          Alcotest.test_case "kill and resume" `Quick test_cli_kill_and_resume ] )
    ]
