(** The local containment check — the workhorse of proof reuse.

    Every sufficient condition in the paper reduces to queries of the
    form [∀x ∈ B : g(x) ∈ T] where [g] is a small slice of the network,
    [B] an input box and [T] a stored state abstraction (or [D_out]).
    This module answers such queries with a selectable engine. *)

type engine =
  | Abstract of Cv_domains.Analyzer.domain_kind
      (** one-shot abstract interpretation: cheap, incomplete *)
  | Symint_split of int
      (** symbolic intervals with input bisection (ReluVal-style);
          the payload caps the number of splits *)
  | Milp  (** exact big-M encoding with cutoff queries; complete for
              piecewise-linear slices *)

(** [engine_name e] is a printable engine label. *)
val engine_name : engine -> string

(** Why an engine answered [Unknown]. *)
type unknown_reason =
  | Imprecise  (** abstract over-approximation too coarse *)
  | Budget  (** split/node budget exhausted *)
  | Timeout  (** wall-clock deadline expired *)
  | Numerical  (** solver anomaly (infeasible/unbounded relaxation) *)
  | Crash
      (** the engine died repeatedly despite supervised retries; the
          query degrades instead of killing the run *)

(** Structured payload of an [Unknown] verdict. *)
type unknown = {
  reason : unknown_reason;
  message : string;  (** human-readable diagnosis *)
  best_bound : float option;
      (** certified partial bound salvaged before giving up (e.g. the
          branch-and-bound incumbent bound at deadline expiry) *)
}

type verdict = Proved | Violated of Falsify.violation | Unknown of unknown

(** [reason_name r] is a printable label for an {!unknown_reason}. *)
val reason_name : unknown_reason -> string

(** [unknown ?best_bound reason message] builds an [Unknown] verdict. *)
val unknown : ?best_bound:float -> unknown_reason -> string -> verdict

(** [is_proved v] is true for [Proved]. *)
val is_proved : verdict -> bool

(** [check ?deadline ?domains engine net ~input_box ~target] decides (or
    attempts) [∀x ∈ input_box : net(x) ∈ target]. [domains > 1] runs the
    [Milp] engine's branch-and-bound dives on parallel domains (other
    engines ignore it); verdicts stay deterministic. Never raises on
    budget exhaustion: when the optional [deadline] expires mid-query
    the verdict degrades to [Unknown { reason = Timeout; _ }], carrying
    any certified partial bound the engine salvaged. *)
val check :
  ?deadline:Cv_util.Deadline.t ->
  ?domains:int ->
  engine ->
  Cv_nn.Network.t ->
  input_box:Cv_interval.Box.t ->
  target:Cv_interval.Box.t ->
  verdict

(** [check_timed ?deadline ?domains engine net ~input_box ~target] also
    reports wall-clock seconds — the quantity the Table I reproduction
    aggregates. *)
val check_timed :
  ?deadline:Cv_util.Deadline.t ->
  ?domains:int ->
  engine ->
  Cv_nn.Network.t ->
  input_box:Cv_interval.Box.t ->
  target:Cv_interval.Box.t ->
  verdict * float
