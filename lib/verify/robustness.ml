(** Local robustness queries — the property family of the paper's
    related-work refs [16] (Lipschitz-margin training) and [17]
    (reachability with provable guarantees).

    For a point [x], radius ε and output budget δ, local robustness
    holds when [∀x' : ‖x' − x‖_∞ ≤ ε → ‖f(x') − f(x)‖_∞ ≤ δ]. The query
    lowers to a containment check over the ball, so every engine (one-
    shot abstract, splitting, exact MILP) applies; a Lipschitz constant
    gives the cheap sufficient condition [ℓ·ε ≤ δ]; and differential
    analysis transfers robustness across fine-tuning:
    [‖f'(x') − f'(x)‖ ≤ ‖f(x') − f(x)‖ + 2·max‖f' − f‖]. *)

type query = {
  x : Cv_linalg.Vec.t;  (** centre point *)
  epsilon : float;  (** input radius (∞-norm) *)
  delta : float;  (** allowed output deviation (∞-norm) *)
}

(** [ball q] is the input region of the query. *)
let ball q = Cv_interval.Box.of_center_radius q.x q.epsilon

(** [target net q] is the output box [f(x) ± δ]. *)
let target net q = Cv_interval.Box.of_center_radius (Cv_nn.Network.eval net q.x) q.delta

(** [check engine net q] decides the robustness query with any
    containment engine. *)
let check engine net q =
  Containment.check engine net ~input_box:(ball q) ~target:(target net q)

(** [check_lipschitz ~ell q] — the O(1) sufficient condition
    [ℓ·ε ≤ δ]; [true] proves robustness (for the norm ℓ was computed
    in), [false] proves nothing. *)
let check_lipschitz ~ell q = Cv_util.Float_utils.leq (ell *. q.epsilon) q.delta

(** [transfer_budget ~old_net ~new_net q] bounds how much of the output
    budget survives fine-tuning: if [f] is (ε, δ′)-robust at [x] with
    [δ′ = δ − 2·max‖f' − f‖] over the ball, then [f'] is (ε, δ)-robust
    at [x]. Returns the residual budget δ′ (may be ≤ 0, meaning no
    transfer). *)
let transfer_budget ~old_net ~new_net q =
  let eps_diff =
    Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net (ball q)
  in
  q.delta -. (2. *. eps_diff)

(** [check_transfer engine ~old_net ~new_net q] — robustness of the
    fine-tuned network via the differential transfer: verify the
    {e old} network against the residual budget. Sound; returns
    [Unknown] when the residual budget is non-positive. *)
let check_transfer engine ~old_net ~new_net q =
  let residual = transfer_budget ~old_net ~new_net q in
  if residual <= 0. then
    Containment.unknown Containment.Budget
      "fine-tuning drift exhausts the output budget"
  else check engine old_net { q with delta = residual }

(** [certified_radius ?engine ?steps net ~x ~delta] binary-searches the
    largest ε (within [steps] halvings) for which the query is proved —
    a standard robustness-certification output. *)
let certified_radius ?(engine = Containment.Milp) ?(steps = 12) net ~x ~delta =
  let rec go lo hi k =
    if k = 0 then lo
    else begin
      let mid = 0.5 *. (lo +. hi) in
      match check engine net { x; epsilon = mid; delta } with
      | Containment.Proved -> go mid hi (k - 1)
      | _ -> go lo mid (k - 1)
    end
  in
  (* Find an upper bracket first. *)
  let rec bracket hi k =
    if k = 0 then hi
    else
      match check engine net { x; epsilon = hi; delta } with
      | Containment.Proved -> bracket (2. *. hi) (k - 1)
      | _ -> hi
  in
  let hi = bracket 0.01 8 in
  go 0. hi steps
