(** Argmax (advisory-style) properties over multi-output networks — the
    query shape of the ACAS-Xu benchmark properties ("advisory i is
    never/always maximal on region R").

    All queries lower to output {e differences}: appending a linear
    layer with rows [e_j − e_i] turns "score_j − score_i" into ordinary
    network outputs, so every engine in the repo (abstract domains,
    splitting, exact MILP) applies unchanged. *)

(* The difference network: outputs (s_j − s_i) for all j ≠ i, in
   ascending j order. *)
let difference_network net ~output =
  let d = Cv_nn.Network.out_dim net in
  if output < 0 || output >= d then invalid_arg "Argmax.difference_network";
  let rows =
    List.filter_map
      (fun j ->
        if j = output then None
        else
          Some
            (Array.init d (fun k ->
                 if k = j then 1. else if k = output then -1. else 0.)))
      (List.init d Fun.id)
  in
  let diff_layer =
    Cv_nn.Layer.make
      (Cv_linalg.Mat.of_rows rows)
      (Array.make (d - 1) 0.)
      Cv_nn.Activation.Identity
  in
  Cv_nn.Network.compose net (Cv_nn.Network.make [| diff_layer |])

type verdict =
  | Holds  (** proved over the whole region *)
  | Fails of Cv_linalg.Vec.t  (** witness input *)
  | Unknown of string

(** [never_maximal engine net ~output ~region ~margin] — is advisory
    [output] never the (strict, by [margin]) argmax on [region]? Holds
    when some other score exceeds it everywhere; proved here via the
    sufficient per-competitor condition [min_j (s_j − s_i) ≥ margin] for
    a single j, checked for each j (complete when one competitor
    dominates globally — the common ACAS situation — and reported
    [Unknown] otherwise). *)
let never_maximal engine net ~output ~region ~margin =
  let diff = difference_network net ~output in
  let d1 = Cv_nn.Network.out_dim diff in
  (* For each competitor row r: check s_j − s_i ≥ margin everywhere. *)
  let rec try_rows r =
    if r = d1 then
      Unknown "no single competitor dominates the advisory everywhere"
    else begin
      let target =
        Cv_interval.Box.make
          (Array.init d1 (fun k ->
               if k = r then Cv_interval.Interval.make margin Float.infinity
               else Cv_interval.Interval.top))
      in
      match Containment.check engine diff ~input_box:region ~target with
      | Containment.Proved -> Holds
      | _ -> try_rows (r + 1)
    end
  in
  (* Falsification first: a point where `output` IS the argmax kills the
     property outright. *)
  let rng = Cv_util.Rng.create 53 in
  let is_argmax x =
    let s = Cv_nn.Network.eval net x in
    Array.for_all (fun v -> s.(output) >= v) s
  in
  let rec sample k =
    if k = 0 then None
    else begin
      let x = Cv_interval.Box.sample rng region in
      if is_argmax x then Some x else sample (k - 1)
    end
  in
  match sample 256 with
  | Some x -> Fails x
  | None -> try_rows 0

(** [always_maximal engine net ~output ~region ~margin] — is advisory
    [output] the argmax (by at least [margin]) everywhere on [region]?
    Exact: all differences [s_j − s_i] must stay ≤ −margin. *)
let always_maximal engine net ~output ~region ~margin =
  let diff = difference_network net ~output in
  let d1 = Cv_nn.Network.out_dim diff in
  let target =
    Cv_interval.Box.make
      (Array.init d1 (fun _ ->
           Cv_interval.Interval.make Float.neg_infinity (-.margin)))
  in
  match Containment.check engine diff ~input_box:region ~target with
  | Containment.Proved -> Holds
  | Containment.Violated v -> Fails v.Falsify.input
  | Containment.Unknown u -> Unknown u.Containment.message

(** [score_gap engine net ~output ~region] bounds
    [max_region max_j (s_j − s_i)] — negative means [output] is always
    maximal, and its magnitude is the certified decision margin. Exact
    when [engine] is complete. *)
let score_gap net ~output ~region =
  let diff = difference_network net ~output in
  let r = Range.exact_range diff ~din:region in
  Array.fold_left
    (fun acc iv -> Float.max acc (Cv_interval.Interval.hi iv))
    Float.neg_infinity
    r.Range.range
