(** Split certificates: the bisection tree of a ReluVal-style proof,
    kept as a reusable artifact.

    When the splitting verifier proves [∀x ∈ B : f(x) ∈ T], the proof is
    a partition of [B] into leaf boxes on each of which one-shot
    symbolic-interval analysis suffices. That leaf list is itself a
    proof artifact — the closest analogue of what a ReluVal run leaves
    behind — and it supports cheap revalidation: for a fine-tuned [f'],
    re-running the one-shot analysis per leaf (no new splitting) usually
    succeeds, because each leaf was chosen precisely so the abstraction
    is tight there. See {!Cv_core.Svbtv} for the reuse route. *)

type t = {
  input_box : Cv_interval.Box.t;  (** the certified domain *)
  target : Cv_interval.Box.t;  (** the certified output set *)
  leaves : Cv_interval.Box.t array;  (** partition of [input_box] *)
}

let m_splits = Cv_util.Metrics.counter "splitcert.splits"

let m_leaves_checked = Cv_util.Metrics.counter "splitcert.leaves_checked"

(* Core splitting proof, also reporting how many splits were spent —
   [repair] uses this to share one budget across several re-proofs. *)
let prove_counted ?deadline ~budget net ~input_box ~target =
  let splits = ref 0 in
  let leaves = ref [] in
  let exception Failed in
  let rec go box =
    Cv_util.Deadline.check_opt deadline;
    let reach =
      Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net box
    in
    if Cv_interval.Box.subset_tol reach target then leaves := box :: !leaves
    else if !splits >= budget || Cv_interval.Box.max_width box <= 1e-9 then
      raise Failed
    else begin
      incr splits;
      Cv_util.Metrics.incr m_splits;
      let left, right = Cv_interval.Box.split box in
      go left;
      go right
    end
  in
  match go input_box with
  | () -> Some (Array.of_list !leaves, !splits)
  | exception Failed -> None
  | exception Cv_util.Deadline.Expired _ -> None

(** [prove ?deadline ?budget net ~input_box ~target] runs the splitting
    verifier and, on success, returns the certificate with its leaf
    partition. [None] when the property is not proved within the split
    budget (or is falsified), or when the optional [deadline] — polled
    once per split — expires mid-proof: an interrupted proof attempt has
    produced nothing reusable, so expiry degrades to [None] rather than
    raising. *)
let prove ?deadline ?(budget = 4096) net ~input_box ~target =
  match prove_counted ?deadline ~budget net ~input_box ~target with
  | Some (leaves, _) -> Some { input_box; target; leaves }
  | None -> None

(** [num_leaves c] is the partition size (1 = no splitting was
    needed). *)
let num_leaves c = Array.length c.leaves

(** [revalidate ?domains c net'] re-checks every leaf against the
    stored target with one-shot symbolic intervals on [net'] — no
    splitting, embarrassingly parallel. [true] proves
    [∀x ∈ input_box : net'(x) ∈ target]. *)
let revalidate ?domains c net' =
  Cv_util.Parallel.for_all ?domains
    (fun leaf ->
      Cv_util.Metrics.incr m_leaves_checked;
      Cv_interval.Box.subset_tol
        (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net' leaf)
        c.target)
    c.leaves

(** [revalidate_detailed ?domains c net'] also reports which leaves
    failed (for diagnostics / selective re-splitting). *)
let revalidate_detailed ?domains c net' =
  let results =
    Cv_util.Parallel.map ?domains
      (fun leaf ->
        Cv_util.Metrics.incr m_leaves_checked;
        Cv_interval.Box.subset_tol
          (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net' leaf)
          c.target)
      c.leaves
  in
  let failed = ref [] in
  Array.iteri (fun i ok -> if not ok then failed := i :: !failed) results;
  List.rev !failed

(** [repair ?deadline ?budget ?domains c net'] re-splits only the failed
    leaves for the new network, returning an updated certificate for
    [net'] ([None] when the failed leaves cannot all be re-proved within
    the budget or before the deadline). [budget] is shared across every
    re-proof — the total number of new splits a repair may spend,
    however many leaves failed — so the worst case stays [budget] rather
    than growing with the failure count. [domains] parallelises the
    initial revalidation sweep. Cheap when fine-tuning invalidated only
    a few leaves. *)
let repair ?deadline ?(budget = 1024) ?domains c net' =
  let failed = revalidate_detailed ?domains c net' in
  let is_failed = Array.make (Array.length c.leaves) false in
  List.iter (fun i -> is_failed.(i) <- true) failed;
  let keep = ref [] in
  Array.iteri (fun i leaf -> if not is_failed.(i) then keep := leaf :: !keep)
    c.leaves;
  let rec reprove remaining acc = function
    | [] -> Some acc
    | idx :: rest -> (
      match
        prove_counted ?deadline ~budget:remaining net'
          ~input_box:c.leaves.(idx) ~target:c.target
      with
      | Some (leaves, used) ->
        reprove (remaining - used) (Array.to_list leaves @ acc) rest
      | None -> None)
  in
  match reprove budget !keep failed with
  | Some leaves -> Some { c with leaves = Array.of_list leaves }
  | None -> None

(** [to_json c] / [of_json j] persist the certificate. *)
let to_json c =
  Cv_util.Json.Obj
    [ ("input_box", Cv_interval.Box.to_json c.input_box);
      ("target", Cv_interval.Box.to_json c.target);
      ( "leaves",
        Cv_util.Json.List
          (Array.to_list (Array.map Cv_interval.Box.to_json c.leaves)) ) ]

let of_json j =
  let open Cv_util.Json in
  { input_box = Cv_interval.Box.of_json (member "input_box" j);
    target = Cv_interval.Box.of_json (member "target" j);
    leaves =
      member "leaves" j |> to_list |> List.map Cv_interval.Box.of_json
      |> Array.of_list }
