(** Backward reasoning: over-approximate the inputs that could violate
    the property — the paper's closing direction ("symbolic reasoning
    using both forward and backward propagation in a continuous
    verification setup").

    We intersect the LP {e relaxation} of the network's big-M encoding
    with the violation constraint (one output escaping one side of
    [D_out]) and tighten every input coordinate by a pair of LPs. The
    result is a sound over-approximation of the violating preimage:

    - an [Infeasible] LP proves that side of the property outright
      (bonus verification, no branching needed);
    - otherwise the returned {e suspect box} tells the engineer — or the
      splitting verifier — where inside [D_in ∪ Δ_in] the risk lives,
      which is the actionable diagnostic in a continuous loop (collect
      more data there, re-train, or split-verify just that region). *)

type suspect = {
  output : int;
  side : [ `Upper | `Lower ];
  region : Cv_interval.Box.t option;
      (** [None] = that side is proved safe by the LP relaxation *)
}

(* Tighten the input box against one violation constraint using the LP
   relaxation of the ReLU encoding (binaries relaxed to [0,1]). *)
let tighten_side enc ~din ~output ~side ~bound =
  let e = enc.Cv_milp.Relu_encoding.outputs.(output) in
  let lp = Cv_lp.Lp.copy enc.Cv_milp.Relu_encoding.problem.Cv_milp.Milp.lp in
  (* Violation constraint: y ≥ bound (Upper) or y ≤ bound (Lower),
     with y = terms + const. *)
  (match side with
  | `Upper ->
    Cv_lp.Lp.add_constraint lp e.Cv_milp.Relu_encoding.terms Cv_lp.Lp.Ge
      (bound -. e.Cv_milp.Relu_encoding.const)
  | `Lower ->
    Cv_lp.Lp.add_constraint lp e.Cv_milp.Relu_encoding.terms Cv_lp.Lp.Le
      (bound -. e.Cv_milp.Relu_encoding.const));
  let in_dim = Array.length enc.Cv_milp.Relu_encoding.input_vars in
  let lo = Array.make in_dim 0. and hi = Array.make in_dim 0. in
  let feasible = ref true in
  (try
     for j = 0 to in_dim - 1 do
       let v = enc.Cv_milp.Relu_encoding.input_vars.(j) in
       let q = Cv_lp.Lp.copy lp in
       (match Cv_lp.Lp.minimize_linear q [ (1., v) ] with
       | Cv_lp.Lp.Optimal s -> lo.(j) <- s.Cv_lp.Lp.objective
       | Cv_lp.Lp.Infeasible ->
         feasible := false;
         raise Exit
       | Cv_lp.Lp.Unbounded | Cv_lp.Lp.Stalled ->
         (* No certified tightening (unbounded relaxation or simplex
            stall): keep the full input-box bound — sound, just loose. *)
         lo.(j) <- Cv_interval.Interval.lo (Cv_interval.Box.get din j));
       let q = Cv_lp.Lp.copy lp in
       match Cv_lp.Lp.maximize_linear q [ (1., v) ] with
       | Cv_lp.Lp.Optimal s -> hi.(j) <- s.Cv_lp.Lp.objective
       | Cv_lp.Lp.Infeasible ->
         feasible := false;
         raise Exit
       | Cv_lp.Lp.Unbounded | Cv_lp.Lp.Stalled ->
         hi.(j) <- Cv_interval.Interval.hi (Cv_interval.Box.get din j)
     done
   with Exit -> ());
  if not !feasible then None
  else begin
    (* Clip against the input box (LP noise can poke out by an ulp). *)
    let region =
      Cv_interval.Box.meet din
        (Cv_interval.Box.of_bounds
           (Array.map2 (fun l h -> Float.min l h) lo hi)
           (Array.map2 (fun l h -> Float.max l h) lo hi))
    in
    if Cv_interval.Box.is_empty region then None else Some region
  end

(** [suspect_regions net ~din ~dout] computes, for every output
    coordinate and side of [dout], either a proof that no input of
    [din] can violate it (LP-infeasible) or a suspect input box
    containing every potential violator. *)
let suspect_regions net ~din ~dout =
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:din in
  let out_dim = Cv_nn.Network.out_dim net in
  List.concat_map
    (fun output ->
      let iv = Cv_interval.Box.get dout output in
      let upper =
        if Cv_interval.Interval.hi iv = Float.infinity then []
        else
          [ { output;
              side = `Upper;
              region =
                tighten_side enc ~din ~output ~side:`Upper
                  ~bound:(Cv_interval.Interval.hi iv) } ]
      in
      let lower =
        if Cv_interval.Interval.lo iv = Float.neg_infinity then []
        else
          [ { output;
              side = `Lower;
              region =
                tighten_side enc ~din ~output ~side:`Lower
                  ~bound:(Cv_interval.Interval.lo iv) } ]
      in
      upper @ lower)
    (List.init out_dim Fun.id)

(** [all_safe suspects] — true when every side came back proved. *)
let all_safe suspects = List.for_all (fun s -> s.region = None) suspects

(** [total_suspect_volume ~din suspects] is the fraction of [din]'s
    total width covered by suspect boxes (coarse progress metric for
    iterative loops; 0 = proved everywhere). *)
let total_suspect_volume ~din suspects =
  let din_w = Cv_interval.Box.total_width din in
  if din_w <= 0. then 0.
  else
    List.fold_left
      (fun acc s ->
        match s.region with
        | None -> acc
        | Some r -> Float.max acc (Cv_interval.Box.total_width r /. din_w))
      0. suspects

(** [pp_suspect ppf s] prints one record. *)
let pp_suspect ppf s =
  Format.fprintf ppf "output %d %s: %s" s.output
    (match s.side with `Upper -> "upper" | `Lower -> "lower")
    (match s.region with
    | None -> "proved safe (LP infeasible)"
    | Some r -> "suspect region " ^ Cv_interval.Box.to_string r)
