(** Sampling-based falsification.

    Cheap pre-checks run before any expensive solver call: random
    sampling plus a simple coordinate-descent sharpening that pushes a
    sample towards violating the target output box. A found
    counterexample settles a query definitively (the property is
    {e disproved}); failure to find one proves nothing. *)

type violation = {
  input : Cv_linalg.Vec.t;
  output : Cv_linalg.Vec.t;
  neuron : int;  (** violated output coordinate *)
  side : [ `Lower | `Upper ];
  margin : float;  (** how far outside the bound, > 0 *)
}

(* Worst (most violated or closest-to-violation) coordinate of an output
   against a box; positive margin = violation. *)
let worst_margin (dout : Cv_interval.Box.t) output =
  let best = ref (0, `Upper, Float.neg_infinity) in
  Array.iteri
    (fun i y ->
      let iv = Cv_interval.Box.get dout i in
      let over = y -. Cv_interval.Interval.hi iv in
      let under = Cv_interval.Interval.lo iv -. y in
      let side, m = if over >= under then (`Upper, over) else (`Lower, under) in
      let _, _, bm = !best in
      if m > bm then best := (i, side, m))
    output;
  !best

let violation_of net dout x =
  let y = Cv_nn.Network.eval net x in
  let neuron, side, margin = worst_margin dout y in
  if margin > 0. then Some { input = x; output = y; neuron; side; margin }
  else None

(* Coordinate-descent sharpening: greedily move one input coordinate to
   one of its interval endpoints whenever that increases the worst
   margin. *)
let sharpen net din dout x0 ~rounds =
  let x = Array.copy x0 in
  let margin_at x =
    let _, _, m = worst_margin dout (Cv_nn.Network.eval net x) in
    m
  in
  let current = ref (margin_at x) in
  for _ = 1 to rounds do
    for j = 0 to Array.length x - 1 do
      let iv = Cv_interval.Box.get din j in
      let saved = x.(j) in
      let try_value v =
        x.(j) <- v;
        let m = margin_at x in
        if m > !current then current := m else x.(j) <- saved
      in
      try_value (Cv_interval.Interval.lo iv);
      if x.(j) = saved then try_value (Cv_interval.Interval.hi iv)
    done
  done;
  x

(** [search ?samples ?rounds ~rng net ~din ~dout ()] looks for an input
    in [din] whose output escapes [dout]. Returns the first violation
    found. *)
let m_samples = Cv_util.Metrics.counter "verify.falsify.samples"

let m_hits = Cv_util.Metrics.counter "verify.falsify.hits"

let search ?(samples = 256) ?(rounds = 2) ~rng net ~din ~dout () =
  let try_point x =
    Cv_util.Metrics.incr m_samples;
    match violation_of net dout x with
    | Some v -> Some v
    | None ->
      let x' = sharpen net din dout x ~rounds in
      violation_of net dout x'
  in
  let rec loop k =
    if k = 0 then None
    else
      match try_point (Cv_interval.Box.sample rng din) with
      | Some v -> Some v
      | None -> loop (k - 1)
  in
  (* Center and a sharpened center first: cheap and often decisive. *)
  let result =
    match try_point (Cv_interval.Box.center din) with
    | Some v -> Some v
    | None -> loop samples
  in
  if Option.is_some result then Cv_util.Metrics.incr m_hits;
  result
