(** Whole-property verification: [φ(f, D_in, D_out)]. *)

type report = {
  verdict : Containment.verdict;
  engine : Containment.engine;
  seconds : float;
}

(** [verify ?deadline engine net prop] decides the safety property with
    the given engine and reports timing. Deadline expiry degrades the
    verdict to [Unknown {reason = Timeout; _}]. *)
val verify :
  ?deadline:Cv_util.Deadline.t ->
  Containment.engine ->
  Cv_nn.Network.t ->
  Property.t ->
  report

(** [prefer_unknown prev u engine] — which inconclusive answer
    {!verify_graceful} keeps across escalation rungs: a certified bound
    beats none; between two certified bounds the tighter (smaller) wins;
    between two bound-less unknowns the later one wins. Exposed for
    testing. *)
val prefer_unknown :
  (Containment.unknown * Containment.engine) option ->
  Containment.unknown ->
  Containment.engine ->
  (Containment.unknown * Containment.engine) option

(** [verify_graceful ?deadline net prop] — escalation chain with
    graceful degradation: cheap abstract domains first (symint →
    deeppoly → zonotope), then ReluVal-style splitting, then exact MILP
    only with remaining budget (and only for piecewise-linear networks).
    Decisive verdicts short-circuit; budget exhaustion yields
    [Unknown {reason = Timeout; _}] with the best salvaged certified
    bound — never hangs, never raises on expiry. *)
val verify_graceful :
  ?deadline:Cv_util.Deadline.t -> Cv_nn.Network.t -> Property.t -> report

(** Result of {!verify_with_abstractions}: the verdict plus, on success,
    inductive state abstractions [S_1..S_n] proving it. *)
type proof_result = {
  report : report;
  abstractions : Cv_interval.Box.t array option;
      (** [Some] only when the abstractions themselves prove safety
          ([S_n ⊆ D_out]) *)
}

(** [verify_with_abstractions ?deadline ?domain ?fallback net prop]
    first tries the layer-wise abstract analysis (default: symbolic
    intervals, as in the paper's use of ReluVal): when the resulting
    [S_n ⊆ D_out], the property is proved {e and} the abstractions form
    a reusable proof artifact. Otherwise falls back to the exact engine
    (default MILP). *)
val verify_with_abstractions :
  ?deadline:Cv_util.Deadline.t ->
  ?domain:Cv_domains.Analyzer.domain_kind ->
  ?fallback:Containment.engine ->
  Cv_nn.Network.t ->
  Property.t ->
  proof_result
