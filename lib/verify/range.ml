(** Exact output-range computation.

    The "sound and complete" original verification of the paper's
    related work: compute the exact minimum and maximum of every output
    neuron over the input box with branch-and-bound MILP (no cutoff —
    the solver must close the optimality gap), then compare with
    [D_out]. This is the expensive full-network run whose cost is the
    denominator of the Table I ratios; the incremental reuse checks
    replace it with cheap cutoff {e decision} queries on small slices. *)

type t = {
  range : Cv_interval.Box.t;  (** exact per-output [min, max] *)
  milp_vars : int;
  milp_binaries : int;
}

(** [exact_range ?deadline ?domains net ~din] computes the exact output
    range of a piecewise-linear network over [din], with [domains > 1]
    running each query's branch-and-bound dives on parallel domains
    (deterministic verdicts). Exactness means a timed-out query has no
    usable answer here, so deadline expiry (including a solver degrading
    to [Milp.Timeout]) raises {!Cv_util.Deadline.Expired} — callers that
    need graceful degradation catch it and fall back to a partial
    verdict. *)
let exact_range ?deadline ?domains net ~din =
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:din in
  let out_dim = Cv_nn.Network.out_dim net in
  let expired dir i =
    raise
      (Cv_util.Deadline.Expired
         (Printf.sprintf "Range.exact_range: budget expired on %s of output %d"
            dir i))
  in
  let range =
    Array.init out_dim (fun i ->
        let hi =
          match
            Cv_milp.Relu_encoding.max_output ?deadline ?domains enc ~output:i
          with
          | Cv_milp.Milp.Optimal s -> s.Cv_milp.Milp.objective
          | Cv_milp.Milp.Timeout _ -> expired "max" i
          | _ -> failwith "Range.exact_range: max query failed"
        in
        let lo =
          match
            Cv_milp.Relu_encoding.min_output ?deadline ?domains enc ~output:i
          with
          | Cv_milp.Milp.Optimal s -> s.Cv_milp.Milp.objective
          | Cv_milp.Milp.Timeout _ -> expired "min" i
          | _ -> failwith "Range.exact_range: min query failed"
        in
        Cv_interval.Interval.make (Float.min lo hi) (Float.max lo hi))
  in
  let vars, _, binaries = Cv_milp.Relu_encoding.stats enc in
  { range; milp_vars = vars; milp_binaries = binaries }

(** [verify_exact ?deadline ?domains net prop] decides the property by
    exact range computation; returns the verdict together with the
    range. Raises {!Cv_util.Deadline.Expired} on budget exhaustion. *)
let verify_exact ?deadline ?domains net (prop : Property.t) =
  let r = exact_range ?deadline ?domains net ~din:prop.Property.din in
  let verdict =
    if Cv_interval.Box.subset_tol r.range prop.Property.dout then
      Containment.Proved
    else begin
      (* The range escapes D_out: extract a witness by sampling near the
         violating bound; fall back to Unknown when floats disagree. *)
      let rng = Cv_util.Rng.create 31 in
      match
        Falsify.search ~samples:512 ~rounds:3 ~rng net ~din:prop.Property.din
          ~dout:prop.Property.dout ()
      with
      | Some v -> Containment.Violated v
      | None ->
        Containment.unknown Containment.Numerical
          "exact range escapes D_out but no concrete witness found"
    end
  in
  (verdict, r)
