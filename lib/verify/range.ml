(** Exact output-range computation.

    The "sound and complete" original verification of the paper's
    related work: compute the exact minimum and maximum of every output
    neuron over the input box with branch-and-bound MILP (no cutoff —
    the solver must close the optimality gap), then compare with
    [D_out]. This is the expensive full-network run whose cost is the
    denominator of the Table I ratios; the incremental reuse checks
    replace it with cheap cutoff {e decision} queries on small slices. *)

module J = Cv_util.Json

type t = {
  range : Cv_interval.Box.t;  (** exact per-output [min, max] *)
  milp_vars : int;
  milp_binaries : int;
}

(* Progress document for checkpoint/resume: the per-output queries
   already closed (with their exact optima, in completion order) plus
   at most one in-flight branch-and-bound snapshot. Completed values
   are exact, so replaying them on resume reproduces the uninterrupted
   run's range bit-for-bit. *)
let progress_doc ~completed inflight =
  J.Obj
    [ ( "done",
        J.List
          (List.rev_map
             (fun (o, dir, v) ->
               J.Obj
                 [ ("output", J.of_int o); ("dir", J.Str dir);
                   ("value", J.Num v) ])
             completed) );
      ("inflight", inflight) ]

(** [exact_range ?deadline ?domains net ~din] computes the exact output
    range of a piecewise-linear network over [din], with [domains > 1]
    running each query's branch-and-bound dives on parallel domains
    (deterministic verdicts). Exactness means a timed-out query has no
    usable answer here, so deadline expiry (including a solver degrading
    to [Milp.Timeout]) raises {!Cv_util.Deadline.Expired} — callers that
    need graceful degradation catch it and fall back to a partial
    verdict.

    [checkpoint] persists progress (completed query optima plus the
    in-flight query's branch-and-bound snapshot); [resume] restores
    such a document, skipping completed queries and resuming the
    interrupted one mid-search. Raises {!Cv_util.Json.Error} on a
    malformed resume document. *)
let exact_range ?deadline ?domains ?checkpoint ?resume net ~din =
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:din in
  let out_dim = Cv_nn.Network.out_dim net in
  let expired dir i =
    raise
      (Cv_util.Deadline.Expired
         (Printf.sprintf "Range.exact_range: budget expired on %s of output %d"
            dir i))
  in
  (* Restored state: completed query results keyed by (output, dir),
     plus the interrupted query's solver snapshot, if any. *)
  let done_tbl : (int * string, float) Hashtbl.t = Hashtbl.create 8 in
  let completed = ref [] in
  let inflight = ref None in
  (match resume with
  | None -> ()
  | Some doc ->
    J.to_list (J.member "done" doc)
    |> List.iter (fun q ->
           let o = J.to_int (J.member "output" q) in
           let dir = J.to_str (J.member "dir" q) in
           let v = J.to_float (J.member "value" q) in
           Hashtbl.replace done_tbl (o, dir) v;
           (* "done" is written oldest-first; consing restores the
              in-memory most-recent-first invariant. *)
           completed := (o, dir, v) :: !completed);
    match J.member "inflight" doc with
    | J.Null -> ()
    | q ->
      inflight :=
        Some
          ( (J.to_int (J.member "output" q), J.to_str (J.member "dir" q)),
            J.member "snapshot" q ));
  let query dir i =
    match Hashtbl.find_opt done_tbl (i, dir) with
    | Some v -> v (* already closed before the interruption *)
    | None ->
      let sub_resume =
        match !inflight with
        | Some ((o, d), snap) when o = i && String.equal d dir ->
          inflight := None;
          Some snap
        | _ -> None
      in
      (* Wrap the sink so a mid-search solver snapshot is embedded in
         the progress document alongside the queries already closed. *)
      let sub_checkpoint =
        Cv_util.Checkpoint.wrap_opt checkpoint (fun snap ->
            progress_doc ~completed:!completed
              (J.Obj
                 [ ("output", J.of_int i); ("dir", J.Str dir);
                   ("snapshot", snap) ]))
      in
      let result =
        if String.equal dir "max" then
          Cv_milp.Relu_encoding.max_output ?deadline ?domains
            ?checkpoint:sub_checkpoint ?resume:sub_resume enc ~output:i
        else
          Cv_milp.Relu_encoding.min_output ?deadline ?domains
            ?checkpoint:sub_checkpoint ?resume:sub_resume enc ~output:i
      in
      (match result with
      | Cv_milp.Milp.Optimal s ->
        let v = s.Cv_milp.Milp.objective in
        completed := (i, dir, v) :: !completed;
        (* A closed query is a natural commit point: record it durably
           regardless of cadence, with no in-flight snapshot. *)
        Cv_util.Checkpoint.save_opt checkpoint (fun () ->
            progress_doc ~completed:!completed J.Null);
        v
      | Cv_milp.Milp.Timeout _ -> expired dir i
      | _ ->
        failwith
          (Printf.sprintf "Range.exact_range: %s query on output %d failed" dir
             i))
  in
  let range =
    Array.init out_dim (fun i ->
        let hi = query "max" i in
        let lo = query "min" i in
        Cv_interval.Interval.make (Float.min lo hi) (Float.max lo hi))
  in
  let vars, _, binaries = Cv_milp.Relu_encoding.stats enc in
  { range; milp_vars = vars; milp_binaries = binaries }

(** [verify_exact ?deadline ?domains net prop] decides the property by
    exact range computation; returns the verdict together with the
    range. Raises {!Cv_util.Deadline.Expired} on budget exhaustion.
    [checkpoint]/[resume] persist and restore the range computation's
    progress (see {!exact_range}). *)
let verify_exact ?deadline ?domains ?checkpoint ?resume net
    (prop : Property.t) =
  let r =
    exact_range ?deadline ?domains ?checkpoint ?resume net
      ~din:prop.Property.din
  in
  let verdict =
    if Cv_interval.Box.subset_tol r.range prop.Property.dout then
      Containment.Proved
    else begin
      (* The range escapes D_out: extract a witness by sampling near the
         violating bound; fall back to Unknown when floats disagree. *)
      let rng = Cv_util.Rng.create 31 in
      match
        Falsify.search ~samples:512 ~rounds:3 ~rng net ~din:prop.Property.din
          ~dout:prop.Property.dout ()
      with
      | Some v -> Containment.Violated v
      | None ->
        Containment.unknown Containment.Numerical
          "exact range escapes D_out but no concrete witness found"
    end
  in
  (verdict, r)
