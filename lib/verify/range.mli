(** Exact output-range computation.

    The "sound and complete" original verification of the paper's
    related work: compute the exact min/max of every output neuron over
    the input box with branch-and-bound MILP (no cutoff — the solver
    must close the optimality gap). This is the expensive full-network
    run whose cost is the denominator of the Table I ratios. *)

type t = {
  range : Cv_interval.Box.t;  (** exact per-output [min, max] *)
  milp_vars : int;
  milp_binaries : int;
}

(** [exact_range ?deadline ?domains net ~din] computes the exact output
    range of a piecewise-linear network over [din]; [domains > 1] runs
    each MILP query's branch-and-bound dives on parallel domains with
    deterministic verdicts. Raises {!Cv_util.Deadline.Expired} when the
    budget runs out before every optimality gap closes — exactness
    admits no partial answer here; callers needing degradation catch the
    exception.

    [checkpoint] persists progress — the exact optima of completed
    queries plus the in-flight query's branch-and-bound snapshot —
    through the given sink; [resume] restores such a document, skipping
    completed queries and resuming the interrupted search mid-frontier,
    with a final range identical to the uninterrupted run's. Raises
    {!Cv_util.Json.Error} on a malformed resume document. *)
val exact_range :
  ?deadline:Cv_util.Deadline.t ->
  ?domains:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  t

(** [verify_exact ?deadline ?domains net prop] decides the property by
    exact range computation; returns the verdict together with the
    range. Raises {!Cv_util.Deadline.Expired} on budget exhaustion.
    [checkpoint]/[resume] persist and restore progress (see
    {!exact_range}). *)
val verify_exact :
  ?deadline:Cv_util.Deadline.t ->
  ?domains:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  Cv_nn.Network.t ->
  Property.t ->
  Containment.verdict * t
