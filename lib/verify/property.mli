(** Safety properties: [φ(f, D_in, D_out) := ∀x ∈ D_in, f(x) ∈ D_out].

    Both sets are boxes, matching the paper's experimental setup (the
    input box over the flattened feature layer and an output interval on
    the waypoint value [v_out]). *)

type t = {
  din : Cv_interval.Box.t;  (** input set to verify over *)
  dout : Cv_interval.Box.t;  (** safe output set *)
}

(** [make ~din ~dout] builds a property. *)
val make : din:Cv_interval.Box.t -> dout:Cv_interval.Box.t -> t

(** [holds_at prop net x] checks the property at one concrete input. *)
val holds_at : t -> Cv_nn.Network.t -> Cv_linalg.Vec.t -> bool

(** [enlarge prop delta] is the property over [D_in ∪ Δ_in], represented
    by the bounding box [join din delta]. *)
val enlarge : t -> Cv_interval.Box.t -> t

(** [well_formed prop net] checks dimensions against a network. *)
val well_formed : t -> Cv_nn.Network.t -> bool

(** [pp ppf prop] prints both boxes. *)
val pp : Format.formatter -> t -> unit

(** [to_json prop] encodes the property. *)
val to_json : t -> Cv_util.Json.t

(** [of_json j] decodes a property written by {!to_json}. *)
val of_json : Cv_util.Json.t -> t

(** [of_json_result j] is {!of_json} with a typed error instead of an
    exception. *)
val of_json_result : Cv_util.Json.t -> (t, string) result
