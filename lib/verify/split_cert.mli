(** Split certificates: the bisection tree of a ReluVal-style proof,
    kept as a reusable artifact. On each leaf of the partition, one-shot
    symbolic-interval analysis suffices to prove the target; the leaf
    list therefore supports cheap revalidation for fine-tuned networks
    (no new splitting) and selective repair. *)

type t = {
  input_box : Cv_interval.Box.t;  (** the certified domain *)
  target : Cv_interval.Box.t;  (** the certified output set *)
  leaves : Cv_interval.Box.t array;  (** partition of [input_box] *)
}

(** [prove ?deadline ?budget net ~input_box ~target] runs the splitting
    verifier and, on success, returns the certificate with its leaf
    partition; [None] when the property is not proved within the split
    budget, or when [deadline] (polled per split) expires — an
    interrupted attempt yields nothing reusable, so expiry degrades to
    [None] rather than raising. *)
val prove :
  ?deadline:Cv_util.Deadline.t ->
  ?budget:int ->
  Cv_nn.Network.t ->
  input_box:Cv_interval.Box.t ->
  target:Cv_interval.Box.t ->
  t option

(** [num_leaves c] is the partition size (1 = no splitting needed). *)
val num_leaves : t -> int

(** [revalidate ?domains c net'] re-checks every leaf against the stored
    target with one-shot symbolic intervals on [net'] — embarrassingly
    parallel; [true] proves [∀x ∈ input_box : net'(x) ∈ target]. *)
val revalidate : ?domains:int -> t -> Cv_nn.Network.t -> bool

(** [revalidate_detailed ?domains c net'] also reports the indices of
    failed leaves. *)
val revalidate_detailed : ?domains:int -> t -> Cv_nn.Network.t -> int list

(** [repair ?deadline ?budget ?domains c net'] re-splits only the
    failed leaves for the new network; [None] when the failed leaves
    cannot all be re-proved within the budget or before the deadline.
    [budget] is the {e total} number of new splits the repair may spend,
    shared across all failed leaves; [domains] parallelises the initial
    revalidation sweep. *)
val repair :
  ?deadline:Cv_util.Deadline.t ->
  ?budget:int ->
  ?domains:int ->
  t ->
  Cv_nn.Network.t ->
  t option

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
