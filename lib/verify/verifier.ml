(** Whole-property verification: [φ(f, D_in, D_out)].

    A thin specialisation of {!Containment} to the full network, plus
    the artifact-producing variant that returns the layer-wise state
    abstractions alongside the verdict — the "original problem" solver
    whose outputs the continuous-verification strategies reuse — and
    {!verify_graceful}, the budget-aware escalation chain. *)

type report = {
  verdict : Containment.verdict;
  engine : Containment.engine;
  seconds : float;
}

(** [verify ?deadline engine net prop] decides the safety property with
    the given engine and reports timing. Deadline expiry degrades the
    verdict to [Unknown {reason = Timeout; _}] (see
    {!Containment.check}). *)
let verify ?deadline engine net prop =
  if not (Property.well_formed prop net) then
    invalid_arg "Verifier.verify: property/network dimension mismatch";
  let verdict, seconds =
    Containment.check_timed ?deadline engine net ~input_box:prop.Property.din
      ~target:prop.Property.dout
  in
  { verdict; engine; seconds }

let m_rungs = Cv_util.Metrics.counter "verify.graceful.rungs"

(** [prefer_unknown prev u engine] — which inconclusive answer to keep
    across escalation rungs. An unknown carrying a certified bound beats
    one without, and between two certified bounds the {e tighter}
    (smaller) one wins: a later, coarser rung must never overwrite an
    earlier rung's tighter certificate. Between two bound-less unknowns
    the later one wins (deeper engines leave more informative
    messages). *)
let prefer_unknown prev (u : Containment.unknown) engine =
  match prev with
  | None -> Some (u, engine)
  | Some ((p : Containment.unknown), _) -> (
    match (p.Containment.best_bound, u.Containment.best_bound) with
    | Some _, None -> prev
    | Some pb, Some ub when ub >= pb -> prev
    | (Some _ | None), _ -> Some (u, engine))

(** [verify_graceful ?deadline net prop] — the escalation chain with
    graceful degradation: cheap abstract domains first (symint →
    deeppoly → zonotope), then ReluVal-style splitting, and the exact
    MILP engine only with remaining budget (and only for
    piecewise-linear networks). A decisive verdict short-circuits the
    chain; when the budget runs out the report carries
    [Unknown {reason = Timeout; _}] with the best certified bound any
    rung salvaged — it never hangs and never raises on expiry. *)
let verify_graceful ?deadline net prop =
  if not (Property.well_formed prop net) then
    invalid_arg "Verifier.verify_graceful: property/network dimension mismatch";
  let piecewise_linear =
    Array.for_all
      (fun (l : Cv_nn.Layer.t) ->
        Cv_nn.Activation.is_piecewise_linear l.Cv_nn.Layer.act)
      (Cv_nn.Network.layers net)
  in
  let ladder =
    [ Containment.Abstract Cv_domains.Analyzer.Symint;
      Containment.Abstract Cv_domains.Analyzer.Deeppoly;
      Containment.Abstract Cv_domains.Analyzer.Zonotope;
      Containment.Symint_split 2048 ]
    @ (if piecewise_linear then [ Containment.Milp ] else [])
  in
  Cv_util.Trace.with_span "verify_graceful" @@ fun () ->
  let seconds = ref 0. in
  (* Most informative inconclusive answer seen so far (see
     {!prefer_unknown}): a certified bound beats none, and tighter
     certified bounds are never overwritten by looser ones. *)
  let best_unknown = ref None in
  let note engine (u : Containment.unknown) =
    best_unknown := prefer_unknown !best_unknown u engine
  in
  let degraded engine =
    let best_bound =
      match !best_unknown with
      | Some (u, _) -> u.Containment.best_bound
      | None -> None
    in
    { verdict =
        Containment.Unknown
          { Containment.reason = Containment.Timeout;
            message =
              "verification budget exhausted before the escalation chain \
               completed";
            best_bound };
      engine;
      seconds = !seconds }
  in
  let rec escalate = function
    | [] -> (
      match !best_unknown with
      | Some (u, engine) ->
        { verdict = Containment.Unknown u; engine; seconds = !seconds }
      | None -> assert false (* the ladder is never empty *))
    | engine :: rest ->
      if Cv_util.Deadline.expired_opt deadline then degraded engine
      else begin
        Cv_util.Metrics.incr m_rungs;
        let verdict, s =
          Cv_util.Trace.with_span "verify_graceful.rung"
            ~attrs:[ ("engine", Containment.engine_name engine) ]
          @@ fun () ->
          Containment.check_timed ?deadline engine net
            ~input_box:prop.Property.din ~target:prop.Property.dout
        in
        seconds := !seconds +. s;
        match verdict with
        | Containment.Proved | Containment.Violated _ ->
          { verdict; engine; seconds = !seconds }
        | Containment.Unknown u ->
          note engine u;
          escalate rest
      end
  in
  escalate ladder

(** Result of {!verify_with_abstractions}: the verdict plus, on success,
    inductive state abstractions [S_1..S_n] proving it. *)
type proof_result = {
  report : report;
  abstractions : Cv_interval.Box.t array option;
      (** [Some] only when the abstractions themselves prove safety
          ([S_n ⊆ D_out]) *)
}

(** [verify_with_abstractions ?deadline ?domain ?fallback net prop]
    first tries the layer-wise abstract analysis (default: symbolic
    intervals, as in the paper's use of ReluVal): when the resulting
    [S_n ⊆ D_out], the property is proved {e and} the abstractions form
    a reusable proof artifact. Otherwise falls back to the exact engine
    (default MILP) — in which case no inductive box abstraction is
    produced (the verdict may still be [Proved]). *)
let verify_with_abstractions ?deadline ?(domain = Cv_domains.Analyzer.Symint)
    ?(fallback = Containment.Milp) net prop =
  if not (Property.well_formed prop net) then
    invalid_arg "Verifier.verify_with_abstractions: dimension mismatch";
  let (abstractions, abstract_ok), abs_seconds =
    Cv_util.Timer.time (fun () ->
        (* Supervised: a transiently crashing analyzer is retried, and a
           persistent crash falls through to the exact engine below —
           the proof artifact just loses its inductive abstraction. *)
        Cv_util.Supervisor.protect ~name:"verifier.abstractions"
          ~fallback:(fun _ -> (None, false))
          (fun () ->
            match
              Cv_domains.Analyzer.abstractions ?deadline domain net
                prop.Property.din
            with
            | s ->
              let ok =
                Cv_interval.Box.subset_tol
                  s.(Array.length s - 1)
                  prop.Property.dout
              in
              (Some s, ok)
            | exception Cv_util.Deadline.Expired _ -> (None, false)))
  in
  if abstract_ok then
    { report =
        { verdict = Containment.Proved;
          engine = Containment.Abstract domain;
          seconds = abs_seconds };
      abstractions }
  else begin
    let r = verify ?deadline fallback net prop in
    { report = { r with seconds = r.seconds +. abs_seconds };
      abstractions = None }
  end
