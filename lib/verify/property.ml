(** Safety properties: [φ(f, D_in, D_out) := ∀x ∈ D_in, f(x) ∈ D_out].

    Both domains are boxes, matching the paper's experimental setup
    (the input box over the flattened feature layer and an output
    interval on the waypoint value [v_out]). *)

type t = {
  din : Cv_interval.Box.t;  (** input set to verify over *)
  dout : Cv_interval.Box.t;  (** safe output set *)
}

(** [make ~din ~dout] builds a property. *)
let make ~din ~dout = { din; dout }

(** [holds_at prop net x] checks the property at one concrete input. *)
let holds_at prop net x = Cv_interval.Box.mem (Cv_nn.Network.eval net x) prop.dout

(** [enlarge prop delta] is the property over [D_in ∪ Δ_in], where the
    union is represented (as in the paper's monitored-bounds setting) by
    the bounding box [join din delta]. *)
let enlarge prop delta = { prop with din = Cv_interval.Box.join prop.din delta }

(** [well_formed prop net] checks dimensions against a network. *)
let well_formed prop net =
  Cv_interval.Box.dim prop.din = Cv_nn.Network.in_dim net
  && Cv_interval.Box.dim prop.dout = Cv_nn.Network.out_dim net

(** [pp ppf prop] prints both boxes. *)
let pp ppf prop =
  Format.fprintf ppf "@[<v>D_in : %a@,D_out: %a@]" Cv_interval.Box.pp prop.din
    Cv_interval.Box.pp prop.dout

(** [to_json prop] encodes the property. *)
let to_json prop =
  Cv_util.Json.Obj
    [ ("din", Cv_interval.Box.to_json prop.din);
      ("dout", Cv_interval.Box.to_json prop.dout) ]

(** [of_json j] decodes a property written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  { din = Cv_interval.Box.of_json (member "din" j);
    dout = Cv_interval.Box.of_json (member "dout" j) }

(** [of_json_result j] is {!of_json} with a typed error instead of an
    exception. *)
let of_json_result j =
  match of_json j with
  | p -> Ok p
  | exception Cv_util.Json.Error msg -> Error msg
