(** The local containment check — the workhorse of proof reuse.

    Every sufficient condition in the paper reduces to queries of the
    form [∀x ∈ B : g(x) ∈ T] where [g] is a small slice of the network,
    [B] an input box and [T] a stored state abstraction (or [D_out]).
    This module answers such queries with a selectable engine:

    - abstract one-shot (box / symint / zonotope / deeppoly): cheap,
      incomplete — may answer [Unknown];
    - [Symint_split]: symbolic intervals with input bisection
      (ReluVal-style), complete for piecewise-linear slices up to the
      split budget;
    - [Milp]: the exact big-M encoding with per-output cutoff queries,
      sound and complete for piecewise-linear slices.

    Budget exhaustion never raises out of {!check}: a deadline expiring
    mid-query degrades the verdict to [Unknown { reason = Timeout; _ }],
    keeping any certified partial bound the engine salvaged. *)

type engine =
  | Abstract of Cv_domains.Analyzer.domain_kind
  | Symint_split of int  (** max number of box splits *)
  | Milp

(** [engine_name e] is a printable engine label. *)
let engine_name = function
  | Abstract k -> Cv_domains.Analyzer.domain_name k
  | Symint_split n -> Printf.sprintf "symint-split(%d)" n
  | Milp -> "milp"

(** Why an engine answered [Unknown]. *)
type unknown_reason = Imprecise | Budget | Timeout | Numerical | Crash

(** Structured payload of an [Unknown] verdict. *)
type unknown = {
  reason : unknown_reason;
  message : string;
  best_bound : float option;
      (** certified partial bound salvaged before giving up *)
}

type verdict = Proved | Violated of Falsify.violation | Unknown of unknown

(** [reason_name r] is a printable label. *)
let reason_name = function
  | Imprecise -> "imprecise"
  | Budget -> "budget"
  | Timeout -> "timeout"
  | Numerical -> "numerical"
  | Crash -> "crash"

(** [unknown ?best_bound reason message] builds an [Unknown] verdict. *)
let unknown ?best_bound reason message = Unknown { reason; message; best_bound }

(** [is_proved v] is true for [Proved]. *)
let is_proved = function Proved -> true | _ -> false

let violation_from_point net target x =
  match Falsify.violation_of net target x with
  | Some v -> Violated v
  | None ->
    unknown Numerical
      "solver reported a violating point the concrete check cannot confirm"

(* One-shot abstract check. *)
let check_abstract ?deadline kind net ~input_box ~target =
  let reach = Cv_domains.Analyzer.output_box ?deadline kind net input_box in
  if Cv_interval.Box.subset_tol reach target then Proved
  else
    unknown Imprecise
      (Printf.sprintf "%s reach %s not within target"
         (Cv_domains.Analyzer.domain_name kind)
         (Cv_interval.Box.to_string reach))

let m_checks = Cv_util.Metrics.counter "verify.checks"

let m_splits = Cv_util.Metrics.counter "verify.splits"

(* ReluVal-style bisection: prove each sub-box abstractly; sample for
   counterexamples before splitting; stop at the split budget. *)
let check_split ?deadline budget net ~input_box ~target =
  let rng = Cv_util.Rng.create 97 in
  let splits = ref 0 in
  let rec go box =
    Cv_util.Deadline.check_opt deadline;
    let reach = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net box in
    if Cv_interval.Box.subset_tol reach target then Proved
    else begin
      (* Quick concrete disproof attempt at the center. *)
      match Falsify.violation_of net target (Cv_interval.Box.center box) with
      | Some v -> Violated v
      | None ->
        if !splits >= budget then
          unknown Budget (Printf.sprintf "split budget %d exhausted" budget)
        else if Cv_interval.Box.max_width box <= 1e-9 then
          (* Degenerate box still not proved: treat the residual as
             abstract imprecision. *)
          unknown Imprecise "degenerate box not proved"
        else begin
          incr splits;
          Cv_util.Metrics.incr m_splits;
          let left, right = Cv_interval.Box.split box in
          match go left with
          | Proved -> go right
          | (Violated _ | Unknown _) as r -> r
        end
    end
  in
  match
    Falsify.search ~samples:32 ~rounds:1 ~rng net ~din:input_box ~dout:target ()
  with
  | Some v -> Violated v
  | None -> go input_box

(* Exact MILP check: per output coordinate, bound max and min with
   cutoff queries. *)
let check_milp ?deadline ?domains net ~input_box ~target =
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box in
  let out_dim = Cv_nn.Network.out_dim net in
  if Cv_interval.Box.dim target <> out_dim then
    invalid_arg "Containment.check_milp: target dimension";
  let tol = 1e-7 in
  let rec per_output i =
    if i = out_dim then Proved
    else begin
      let iv = Cv_interval.Box.get target i in
      let hi = Cv_interval.Interval.hi iv and lo = Cv_interval.Interval.lo iv in
      let upper_ok =
        if hi = Float.infinity then Proved
        else
          match
            Cv_milp.Relu_encoding.max_output ?deadline ?domains enc ~output:i
              ~cutoff:(hi +. tol)
          with
          | Cv_milp.Milp.Below_cutoff _ -> Proved
          | Cv_milp.Milp.Optimal s ->
            if s.Cv_milp.Milp.objective <= hi +. tol then Proved
            else
              violation_from_point net target
                (Array.sub s.Cv_milp.Milp.values 0 (Cv_nn.Network.in_dim net))
          | Cv_milp.Milp.Cutoff_reached s ->
            violation_from_point net target
              (Array.sub s.Cv_milp.Milp.values 0 (Cv_nn.Network.in_dim net))
          | Cv_milp.Milp.Infeasible -> unknown Numerical "MILP infeasible"
          | Cv_milp.Milp.Unbounded -> unknown Numerical "MILP unbounded"
          | Cv_milp.Milp.Timeout { bound; _ } ->
            unknown Timeout ~best_bound:bound
              (Printf.sprintf
                 "budget expired bounding output %d from above (certified ≤ %g, need ≤ %g)"
                 i bound hi)
      in
      match upper_ok with
      | Proved -> (
        let lower_ok =
          if lo = Float.neg_infinity then Proved
          else
            match
              Cv_milp.Relu_encoding.min_output ?deadline ?domains enc ~output:i
                ~cutoff:(lo -. tol)
            with
            | Cv_milp.Milp.Below_cutoff _ -> Proved
            | Cv_milp.Milp.Optimal s ->
              if s.Cv_milp.Milp.objective >= lo -. tol then Proved
              else
                violation_from_point net target
                  (Array.sub s.Cv_milp.Milp.values 0 (Cv_nn.Network.in_dim net))
            | Cv_milp.Milp.Cutoff_reached s ->
              violation_from_point net target
                (Array.sub s.Cv_milp.Milp.values 0 (Cv_nn.Network.in_dim net))
            | Cv_milp.Milp.Infeasible -> unknown Numerical "MILP infeasible"
            | Cv_milp.Milp.Unbounded -> unknown Numerical "MILP unbounded"
            | Cv_milp.Milp.Timeout { bound; _ } ->
              unknown Timeout ~best_bound:bound
                (Printf.sprintf
                   "budget expired bounding output %d from below (certified ≥ %g, need ≥ %g)"
                   i bound lo)
        in
        match lower_ok with Proved -> per_output (i + 1) | r -> r)
      | r -> r
    end
  in
  (* Sampling first: a concrete counterexample skips the solver. *)
  let rng = Cv_util.Rng.create 43 in
  match
    Falsify.search ~samples:64 ~rounds:1 ~rng net ~din:input_box ~dout:target ()
  with
  | Some v -> Violated v
  | None -> per_output 0

(** [check ?deadline engine net ~input_box ~target] decides (or
    attempts) [∀x ∈ input_box : net(x) ∈ target]. Deadline expiry
    degrades to [Unknown {reason = Timeout; _}] instead of raising. *)
let verdict_label = function
  | Proved -> "proved"
  | Violated _ -> "violated"
  | Unknown u -> "unknown:" ^ reason_name u.reason

let check ?deadline ?domains engine net ~input_box ~target =
  Cv_util.Metrics.incr m_checks;
  Cv_util.Trace.with_span "containment.check"
    ~attrs:[ ("engine", engine_name engine) ]
  @@ fun () ->
  let v =
    (* Every engine runs supervised: transient failures (spurious solver
       errors, allocation faults, injected chaos) are retried with
       backoff, and an engine that keeps dying yields a structured
       [Unknown {reason = Crash; _}] — weaker than any real verdict but
       never wrong — so one poisoned query degrades instead of killing
       the whole verification run. *)
    Cv_util.Supervisor.protect
      ~name:("containment." ^ engine_name engine)
      ~fallback:(fun exn ->
        unknown Crash
          (Printf.sprintf "%s engine crashed: %s" (engine_name engine)
             (Printexc.to_string exn)))
      (fun () ->
        try
          match engine with
          | Abstract kind ->
            check_abstract ?deadline kind net ~input_box ~target
          | Symint_split budget ->
            check_split ?deadline budget net ~input_box ~target
          | Milp -> check_milp ?deadline ?domains net ~input_box ~target
        with Cv_util.Deadline.Expired msg -> unknown Timeout msg)
  in
  Cv_util.Trace.add_attr "verdict" (verdict_label v);
  v

(** [check_timed ?deadline ?domains engine net ~input_box ~target] also
    reports wall-clock seconds — the quantity the Table I reproduction
    aggregates. *)
let check_timed ?deadline ?domains engine net ~input_box ~target =
  Cv_util.Timer.time (fun () ->
      check ?deadline ?domains engine net ~input_box ~target)
