(** Deterministic closed-loop feature stream for the serving loop: the
    {!Controller} capture→features→head→steer cycle packaged as a pull
    source that hands out one monitored feature vector per frame, with
    no monitor attached — classification is the consumer's job.

    Conditions can drift over time ([ramp] adds to the camera brightness
    every frame), so a long-running consumer keeps meeting fresh
    out-of-distribution events even after it enlarges its monitored box.
    Everything is driven by the caller-supplied {!Cv_util.Rng.t}, so two
    streams built with the same arguments produce the same frames —
    {!skip} replays dynamics for an exact resume. *)

type t

(** [create ?cfg ?conditions ?ramp ~rng ~track ~perception ~steps ()]
    places the car on the centerline and prepares a stream of [steps]
    frames under [conditions] (default {!Camera.shifted}), with
    brightness increasing by [ramp] (default 0) each frame. *)
val create :
  ?cfg:Controller.config ->
  ?conditions:Camera.conditions ->
  ?ramp:float ->
  rng:Cv_util.Rng.t ->
  track:Track.t ->
  perception:Perception.t ->
  steps:int ->
  unit ->
  t

(** [next t] advances the closed loop one frame and returns its feature
    vector, or [None] once [steps] frames have been produced. *)
val next : t -> Cv_linalg.Vec.t option

(** [skip t n] replays [n] frames without returning them (for resuming a
    checkpointed consumer at the frame it last saw). *)
val skip : t -> int -> unit

(** [produced t] is the number of frames handed out (or skipped). *)
val produced : t -> int

(** [remaining t] is the number of frames left. *)
val remaining : t -> int
