(** Deterministic closed-loop feature stream (see the interface). *)

type t = {
  cfg : Controller.config;
  base : Camera.conditions;
  ramp : float;
  rng : Cv_util.Rng.t;
  track : Track.t;
  perception : Perception.t;
  total : int;
  mutable state : Controller.state;
  mutable produced : int;
}

let create ?(cfg = Controller.default_config) ?(conditions = Camera.shifted)
    ?(ramp = 0.) ~rng ~track ~perception ~steps () =
  { cfg;
    base = conditions;
    ramp;
    rng;
    track;
    perception;
    total = steps;
    state = Controller.init track ~s:0.;
    produced = 0 }

let conditions_at t frame =
  { t.base with
    Camera.brightness = t.base.Camera.brightness +. (t.ramp *. float_of_int frame)
  }

let next t =
  if t.produced >= t.total then None
  else begin
    let img =
      Camera.capture ~rng:t.rng t.perception.Perception.camera
        (conditions_at t t.produced) t.track t.state.Controller.pose
    in
    let feats = Perception.features_of t.perception img in
    let v = Perception.v_out_features t.perception feats in
    let steer = Controller.steer_of_vout t.cfg v in
    t.state <- Controller.step t.cfg t.track t.state ~steer;
    t.produced <- t.produced + 1;
    Some feats
  end

let skip t n =
  for _ = 1 to n do
    ignore (next t)
  done

let produced t = t.produced
let remaining t = max 0 (t.total - t.produced)
