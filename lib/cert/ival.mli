(** Outward-rounded interval arithmetic — the only numerics the trusted
    certificate checker is allowed to use.

    OCaml exposes no FP rounding-mode control, so every elementary
    round-to-nearest result is nudged outward with [Float.succ] /
    [Float.pred]: the nearest result is within half an ulp of the true
    value, so its successor is a sound upper bound and its predecessor a
    sound lower bound. Overflow saturates soundly ([succ] of [+inf] is
    [+inf]; [succ] of a [-inf] overflow is [-max_float], which still
    upper-bounds the true finite value). NaN propagates and fails every
    positively-phrased obligation, so a poisoned computation can only
    make the checker reject.

    Sigmoid/tanh go through libm, which is not correctly rounded; their
    images get a 4-ulp outward slop (see DESIGN.md for the assumption
    this encodes). *)

type t = { lo : float; hi : float }

(** [up x] / [dn x] — one-ulp outward nudges. *)
val up : float -> float

val dn : float -> float

(** [of_interval iv] converts a {!Cv_interval.Interval.t} bound pair. *)
val of_interval : Cv_interval.Interval.t -> t

(** [of_box b] converts a box to an interval-vector. *)
val of_box : Cv_interval.Box.t -> t array

(** [to_box ivs] rebuilds a box; raises [Invalid_argument] on NaN or
    inverted bounds (emission-side only — the checker never builds
    boxes). *)
val to_box : t array -> Cv_interval.Box.t

(** [point x] is the degenerate interval at [x]. *)
val point : float -> t

(** [dot_up a z] is a sound upper bound on [Σ a.(i)·z.(i)]; zero
    coefficients are skipped so they never poison infinite operands. *)
val dot_up : float array -> float array -> float

(** [dot_dn a z] is the matching lower bound. *)
val dot_dn : float array -> float array -> float

(** [affine w row bias xs] is a sound enclosure of
    [Σ_j w.(row,j)·xs.(j) + bias] over the interval vector [xs]. *)
val affine : Cv_linalg.Mat.t -> int -> float -> t array -> t

(** [act_image act v] is a sound enclosure of the activation image of
    [v]; [None] for activation parameters the checker cannot bound
    soundly (e.g. a negative leaky slope). *)
val act_image : Cv_nn.Activation.t -> t -> t option

(** [act_factor act] is a sound upper bound on the activation's
    Lipschitz constant; [None] when unsupported. *)
val act_factor : Cv_nn.Activation.t -> float option

(** [layer_image layer xs] is a sound enclosure of the layer image
    [act (W xs + b)]; [None] when the activation is unsupported. *)
val layer_image : Cv_nn.Layer.t -> t array -> t array option

(** [eval_network net xs] carries an interval vector through every
    layer, returning all intermediate enclosures ([S_1..S_n]); [None]
    when any activation is unsupported. *)
val eval_network : Cv_nn.Network.t -> t array -> t array array option

(** [subset a b] — [a ⊆ b], NaN-rejecting (false on any NaN). *)
val subset : t -> t -> bool

(** [all_finite a] — every entry finite (witness hygiene). *)
val all_finite : float array -> bool
