(* Outward-rounded interval arithmetic for the trusted checker. See the
   .mli for the rounding argument; the load-bearing facts are that
   [Float.succ (a *. b)] upper-bounds the true product (round-to-nearest
   error is under one ulp, and both overflow directions saturate on the
   safe side) and that NaN fails every positively-phrased comparison. *)

type t = { lo : float; hi : float }

let up = Float.succ

let dn = Float.pred

let of_interval iv =
  { lo = Cv_interval.Interval.lo iv; hi = Cv_interval.Interval.hi iv }

let of_box b = Array.map of_interval b

let to_box ivs =
  Cv_interval.Box.make
    (Array.map (fun v -> Cv_interval.Interval.make v.lo v.hi) ivs)

let point x = { lo = x; hi = x }

(* Directed dot products over point vectors (LP witness checking).
   Skipping zero coefficients keeps [0 * inf = nan] out of otherwise
   well-defined sums. *)
let dot_up a z =
  let n = Array.length a in
  if Array.length z <> n then Float.nan
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      if a.(i) <> 0. then s := up (!s +. up (a.(i) *. z.(i)))
    done;
    !s
  end

let dot_dn a z =
  let n = Array.length a in
  if Array.length z <> n then Float.nan
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      if a.(i) <> 0. then s := dn (!s +. dn (a.(i) *. z.(i)))
    done;
    !s
  end

let affine w row bias xs =
  let n = Array.length xs in
  let lo = ref bias and hi = ref bias in
  for j = 0 to n - 1 do
    let a = Cv_linalg.Mat.get w row j in
    if a <> 0. then begin
      let x = xs.(j) in
      let tl = if a >= 0. then dn (a *. x.lo) else dn (a *. x.hi) in
      let th = if a >= 0. then up (a *. x.hi) else up (a *. x.lo) in
      lo := dn (!lo +. tl);
      hi := up (!hi +. th)
    end
  done;
  { lo = !lo; hi = !hi }

(* libm's sigmoid/tanh building blocks are faithfully rounded but not
   correctly rounded; a 4-ulp outward slop plus clamping to the
   mathematical range absorbs that (documented in DESIGN.md). *)
let slop_up x = up (up (up (up x)))

let slop_dn x = dn (dn (dn (dn x)))

let sigmoid x = 1. /. (1. +. exp (-.x))

let act_image (act : Cv_nn.Activation.t) v =
  match act with
  | Identity -> Some v
  | Relu -> Some { lo = Float.max 0. v.lo; hi = Float.max 0. v.hi }
  | Leaky_relu a when a >= 0. ->
    let f_dn x = if x >= 0. then x else dn (a *. x) in
    let f_up x = if x >= 0. then x else up (a *. x) in
    Some { lo = f_dn v.lo; hi = f_up v.hi }
  | Leaky_relu _ -> None
  | Sigmoid ->
    Some
      { lo = Float.max 0. (slop_dn (sigmoid v.lo));
        hi = Float.min 1. (slop_up (sigmoid v.hi)) }
  | Tanh ->
    Some
      { lo = Float.max (-1.) (slop_dn (tanh v.lo));
        hi = Float.min 1. (slop_up (tanh v.hi)) }

let act_factor (act : Cv_nn.Activation.t) =
  match act with
  | Identity | Relu | Tanh -> Some 1.
  | Sigmoid -> Some 0.25
  | Leaky_relu a when a >= 0. -> Some (Float.max 1. a)
  | Leaky_relu _ -> None

let layer_image (layer : Cv_nn.Layer.t) xs =
  let m = Cv_linalg.Mat.rows layer.weights in
  if Cv_linalg.Mat.cols layer.weights <> Array.length xs then None
  else begin
    let out = Array.make m (point 0.) in
    let ok = ref true in
    for i = 0 to m - 1 do
      let pre = affine layer.weights i layer.bias.(i) xs in
      match act_image layer.act pre with
      | Some v -> out.(i) <- v
      | None -> ok := false
    done;
    if !ok then Some out else None
  end

let eval_network net xs =
  let layers = Cv_nn.Network.layers net in
  let n = Array.length layers in
  let chain = Array.make n [||] in
  let cur = ref xs and ok = ref true in
  for i = 0 to n - 1 do
    if !ok then
      match layer_image layers.(i) !cur with
      | Some v ->
        chain.(i) <- v;
        cur := v
      | None -> ok := false
  done;
  if !ok then Some chain else None

let subset a b =
  (* NaN anywhere must fail: phrase both sides positively. *)
  a.lo >= b.lo && a.hi <= b.hi

let all_finite a = Array.for_all (fun x -> Float.is_finite x) a
