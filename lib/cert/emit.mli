(** Certificate emission for the interval-checkable proof paths.

    Emission is {e untrusted}: it re-derives a proof in the checker's
    own outward arithmetic (a reach chain, a bisection split tree, a
    Lipschitz enlargement argument or a counterexample trace) and then
    replays it through {!Check} before handing it out — a candidate the
    checker rejects is never emitted ([None] instead). MILP-backed
    certificates are built by [Cv_lp.Lp_cert] and [Cv_milp.Cert_bridge]
    on top of this module's claims. *)

(** [chain_boxes net din] is the outward-rounded per-layer reach chain
    [S_1..S_n] of [din]. *)
val chain_boxes :
  Cv_nn.Network.t -> Cv_interval.Box.t -> Cv_interval.Box.t array

(** [safe_cert ... net ~din ~dout] proves [f(din) ⊆ dout] with a plain
    chain when it suffices, otherwise with a bisection split tree
    ([max_depth] per branch, [max_leaves] total, defaults 12 and 512).
    [None] when the budget runs out or self-validation fails. *)
val safe_cert :
  ?max_depth:int ->
  ?max_leaves:int ->
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  Cert.t option

(** [lipschitz_cert ... net ~old_din ~din ~dout] proves safety of the
    enlarged [din] from the chain over [old_din] plus the global
    Lipschitz product — the certificate form of Proposition 3. *)
val lipschitz_cert :
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Cv_nn.Network.t ->
  old_din:Cv_interval.Box.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  Cert.t option

(** [unsafe_cert ... net ~din ~dout ~x] certifies a violation: [x ∈ din]
    whose outward output enclosure lies strictly outside a [dout]
    bound. *)
val unsafe_cert :
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  x:float array ->
  Cert.t option

(** [reuse_cert ~route ~proposition ~slack cert] wraps [cert]'s proof in
    a {!Cert.P_reuse} frame recording which decision-procedure route and
    paper proposition fired with how much numeric slack (clamped to be
    finite and non-negative). Self-validated like the others. *)
val reuse_cert :
  route:string -> proposition:string -> slack:float -> Cert.t -> Cert.t option
