(** Typed proof certificates and their JSON codec.

    A certificate pairs a {e claim} (what is being asserted: a network
    safety property, an LP infeasibility, an LP or MILP objective bound)
    with a {e proof} the trusted checker ({!Check}) can replay using
    only outward-rounded interval arithmetic. Certificates are
    self-contained — the network and the LP system travel inside the
    document — so [contiver check cert.json] needs no other input.

    Serialisation goes through {!Cv_util.Json} inside the
    {!Cv_artifacts.Artifacts.save_doc} checksummed envelope (format
    {!envelope_format}). *)

(** A standard-form LP system [min c·x  s.t.  A x = b, 0 ≤ x ≤ xu]
    carried verbatim inside LP-level certificates. [lp_xu] gives a
    finite upper bound per column where one is known ([infinity]
    otherwise); the checker uses it to compensate near-binding reduced
    costs à la Neumaier–Shcherbina, since outward rounding alone can
    never validate an exactly-binding dual inequality. *)
type lp_system = {
  lp_a : float array array;  (** m rows of length n *)
  lp_b : float array;
  lp_c : float array;
  lp_xu : float array;  (** length n; [infinity] = unbounded column *)
}

(** One LP witness at a branch-tree leaf. Both obligations are checked
    with Neumaier–Shcherbina compensation against [lp_xu]: a residual
    of the wrong sign is charged its worst case over the column's
    [0, xu] range instead of failing outright. *)
type lp_witness =
  | Farkas of float array
      (** [z] with [b·z > Σⱼ max(0, (Aᵀz)ⱼ)·xuⱼ]: no [0 ≤ x ≤ xu]
          satisfies [Ax = b] *)
  | Dual_bound of float array
      (** [y]: every feasible point has
          [c·x ≥ b·y + Σⱼ min(0, (c − Aᵀy)ⱼ)·xuⱼ] *)

(** A binary variable of a MILP, identified by its pair of bound rows in
    the standard form (the PR 4 re-bounding seam): fixing the binary to
    [v ∈ {0,1}] rewrites both rows' right-hand sides to [v - shift]. *)
type milp_binary = { bin_ub_row : int; bin_lb_row : int; bin_shift : float }

(** Branch tree over binary fixings; every leaf carries an LP witness
    for the node's relaxation, which also covers all completions of the
    unfixed binaries. *)
type milp_tree =
  | Milp_leaf of lp_witness
  | Milp_branch of { bin : int; zero : milp_tree; one : milp_tree }

(** How a standard-form MILP bound maps back to one network output bound
    (the lowering frame recorded by emission; see DESIGN.md for the
    trust boundary of this binding). *)
type milp_goal = {
  mg_lp : lp_system;
  mg_binaries : milp_binary array;
  mg_target : float;  (** proven standard-form objective lower bound *)
  mg_output : int;
  mg_side : [ `Upper | `Lower ];
  mg_sign : float;  (** lowering [c_sign] *)
  mg_shift : float;  (** lowering [c_const_shift] *)
  mg_const : float;  (** affine constant of the encoded output *)
  mg_tree : milp_tree;
}

(** Input-domain bisection tree: each node splits its box at [at] along
    [axis]; leaves carry the per-layer reach chain for their sub-box. *)
type split_tree =
  | Split_leaf of Cv_interval.Box.t array
  | Split_node of {
      axis : int;
      at : float;
      below : split_tree;
      above : split_tree;
    }

type proof =
  | P_chain of Cv_interval.Box.t array
      (** per-layer output boxes [S_1..S_n] with inclusion obligations *)
  | P_split of split_tree
  | P_lipschitz of {
      old_din : Cv_interval.Box.t;
      chain : Cv_interval.Box.t array;
      lip : float;  (** claimed constant — advisory; checker recomputes *)
      kappa : float;  (** claimed enlargement distance — advisory *)
    }
  | P_milp_goals of milp_goal list
  | P_counterexample of float array
  | P_farkas of float array
  | P_dual of { dual : float array; bound : float }
  | P_milp_tree of milp_tree
  | P_reuse of {
      route : string;  (** decisive attempt, e.g. "prop3" *)
      proposition : string;  (** which of Propositions 1–6 fired *)
      slack : float;  (** numeric slack of the sufficient condition *)
      inner : proof;
    }

type claim =
  | Network_safe of {
      net : Cv_nn.Network.t;
      din : Cv_interval.Box.t;
      dout : Cv_interval.Box.t;
    }
  | Network_unsafe of {
      net : Cv_nn.Network.t;
      din : Cv_interval.Box.t;
      dout : Cv_interval.Box.t;
    }
  | Lp_infeasible of lp_system
  | Lp_min_at_least of lp_system * float
  | Milp_min_at_least of {
      lp : lp_system;
      binaries : milp_binary array;
      target : float;
    }

type t = {
  mode : string;  (** "verify" | "svudc" | "svbtv" | "batch:<id>" | … *)
  solver : string;  (** engine provenance, free-form *)
  fingerprint : string;
      (** {!Cv_artifacts.Artifacts.fingerprint} of the claimed network
          (v2 scheme) — binding metadata, validated by the CLI *)
  claim : claim;
  proof : proof;
}

(** [proof_kind p] is the stable kind label of the outermost proof node
    ("chain", "split", "lipschitz", "milp-goals", "counterexample",
    "farkas", "dual", "milp-tree", "reuse"). *)
val proof_kind : proof -> string

(** [schema] is the JSON schema tag ("contiver-cert-v1"). *)
val schema : string

(** [envelope_format] is the {!Cv_artifacts.Artifacts.save_doc} format
    name for certificate documents. *)
val envelope_format : string

val to_json : t -> Cv_util.Json.t

(** [of_json j] decodes a certificate; raises {!Cv_util.Json.Error} on
    malformed documents. *)
val of_json : Cv_util.Json.t -> t

(** [of_json_result j] is {!of_json} with a typed error. *)
val of_json_result : Cv_util.Json.t -> (t, string) result
