(* The trusted checker. Every obligation is phrased so that NaN, a
   dimension mismatch or an unexpected exception leads to rejection;
   acceptance requires every positively-stated comparison to hold under
   outward rounding. This module must stay free of solver imports — its
   dependency cone is Cv_util/Cv_linalg/Cv_interval/Cv_nn data types
   plus {!Ival}. *)

module Box = Cv_interval.Box
module Interval = Cv_interval.Interval

type verdict = Valid | Invalid of string

let verdict_string = function
  | Valid -> "valid"
  | Invalid r -> "invalid: " ^ r

exception Reject of string

let fail fmt = Format.kasprintf (fun s -> raise (Reject s)) fmt

let require cond fmt =
  Format.kasprintf (fun s -> if not cond then raise (Reject s)) fmt

(* ------------------------------------------------------------------ *)
(* Reach chains                                                        *)
(* ------------------------------------------------------------------ *)

(* Validate the inductive chain over [din] and return the final
   enclosure (as the cert's own final box): outward-image(din) ⊆ S_1 and
   outward-image(S_i) ⊆ S_{i+1}. *)
let chain_steps net din (chain : Box.t array) =
  let layers = Cv_nn.Network.layers net in
  let nl = Array.length layers in
  require (Array.length chain = nl) "chain has %d boxes for %d layers"
    (Array.length chain) nl;
  require
    (Box.dim din = Cv_nn.Network.in_dim net)
    "input box dimension %d (network wants %d)" (Box.dim din)
    (Cv_nn.Network.in_dim net);
  let cur = ref (Ival.of_box din) in
  for i = 0 to nl - 1 do
    let img =
      match Ival.layer_image layers.(i) !cur with
      | Some v -> v
      | None -> fail "layer %d: unsupported activation" i
    in
    let tgt = Ival.of_box chain.(i) in
    require
      (Array.length tgt = Array.length img)
      "chain box %d has dimension %d (layer produces %d)" i
      (Array.length tgt) (Array.length img);
    Array.iteri
      (fun k v ->
        require (Ival.subset v tgt.(k))
          "chain box %d does not contain the layer image at neuron %d" i k)
      img;
    cur := tgt
  done;
  !cur

let check_final final (dout : Box.t) =
  require
    (Array.length final = Box.dim dout)
    "final box dimension %d (output box wants %d)" (Array.length final)
    (Box.dim dout);
  Array.iteri
    (fun k (v : Ival.t) ->
      let iv = Box.get dout k in
      require
        (v.lo >= Interval.lo iv && v.hi <= Interval.hi iv)
        "final box escapes the safe output set at neuron %d" k)
    final

let check_chain net ~din ~dout chain =
  match
    let final = chain_steps net din chain in
    check_final final dout
  with
  | () -> Valid
  | exception Reject msg -> Invalid msg
  | exception e -> Invalid (Printexc.to_string e)

let chain_slack ~dout chain =
  if Array.length chain = 0 then Float.neg_infinity
  else begin
    let final = Ival.of_box chain.(Array.length chain - 1) in
    if Array.length final <> Box.dim dout then Float.neg_infinity
    else begin
      let slack = ref Float.infinity in
      Array.iteri
        (fun k (v : Ival.t) ->
          let iv = Box.get dout k in
          let hi = Interval.hi iv and lo = Interval.lo iv in
          if hi < Float.infinity then
            slack := Float.min !slack (Ival.dn (hi -. v.hi));
          if lo > Float.neg_infinity then
            slack := Float.min !slack (Ival.dn (v.lo -. lo)))
        final;
      !slack
    end
  end

(* ------------------------------------------------------------------ *)
(* LP witnesses                                                        *)
(* ------------------------------------------------------------------ *)

let lp_dims (lp : Cert.lp_system) =
  (Array.length lp.lp_b, Array.length lp.lp_c)

(* Upper bound on column j of Aᵀ·z (the z-weighted column sum). *)
let column_dot_up (a : float array array) j z =
  let s = ref 0. in
  Array.iteri
    (fun i row ->
      if row.(j) <> 0. then s := Ival.up (!s +. Ival.up (row.(j) *. z.(i))))
    a;
  !s

(* System hygiene. A NaN coefficient would otherwise slip through the
   sign tests below on the accepting side. [xu] entries may be
   [infinity] (unbounded column) but never NaN or negative. *)
let check_system (lp : Cert.lp_system) =
  let m, n = lp_dims lp in
  require (Array.length lp.lp_a = m) "lp system: %d rows, %d rhs"
    (Array.length lp.lp_a) m;
  require (Array.length lp.lp_xu = n) "lp system: %d column bounds, %d columns"
    (Array.length lp.lp_xu) n;
  Array.iteri
    (fun i row ->
      require (Array.length row = n) "lp system: ragged row %d" i;
      require (Ival.all_finite row) "lp system: non-finite row %d" i)
    lp.lp_a;
  require (Ival.all_finite lp.lp_b) "lp system: non-finite rhs";
  require (Ival.all_finite lp.lp_c) "lp system: non-finite objective";
  Array.iteri
    (fun j u -> require (u >= 0.) "lp system: bad column bound %d" j)
    lp.lp_xu

(* Both witness obligations use Neumaier–Shcherbina compensation: an
   exactly-binding dual inequality can never survive outward rounding
   (a basic column's reduced cost is 0 mathematically, a few ulp after
   rounding), so instead of requiring each residual's sign we charge a
   wrong-signed residual its worst case over the column's [0, xu]
   range and fold that into the bound. *)

let check_farkas_sys (lp : Cert.lp_system) b z =
  let _, n = lp_dims lp in
  require (Array.length z = Array.length b) "farkas: wrong multiplier count";
  require (Ival.all_finite z) "farkas: non-finite multiplier";
  (* Any 0 ≤ x ≤ xu with Ax = b would give
     b·z = (Aᵀz)·x ≤ Σⱼ max(0, (Aᵀz)ⱼ)·xuⱼ, so a strictly larger b·z
     refutes feasibility. *)
  let s = ref 0. in
  for j = 0 to n - 1 do
    let cu = column_dot_up lp.lp_a j z in
    if cu > 0. then begin
      require
        (lp.lp_xu.(j) < Float.infinity)
        "farkas: unbounded column %d not eliminated" j;
      s := Ival.up (!s +. Ival.up (cu *. lp.lp_xu.(j)))
    end
  done;
  require (Ival.dot_dn b z > !s) "farkas: b·z does not exceed the slack budget"

let check_dual_sys (lp : Cert.lp_system) b y target =
  let _, n = lp_dims lp in
  require (Array.length y = Array.length b) "dual: wrong multiplier count";
  require (Ival.all_finite y) "dual: non-finite multiplier";
  (* Weak duality: c·x = (c − Aᵀy)·x + (Ax)·y, and over 0 ≤ x ≤ xu a
     residual below r_loⱼ < 0 costs at worst r_loⱼ·xuⱼ. *)
  let bound = ref (Ival.dot_dn b y) in
  for j = 0 to n - 1 do
    let r_lo = Ival.dn (lp.lp_c.(j) -. column_dot_up lp.lp_a j y) in
    if r_lo < 0. then begin
      require
        (lp.lp_xu.(j) < Float.infinity)
        "dual: negative reduced cost on unbounded column %d" j;
      bound := Ival.dn (!bound +. Ival.dn (r_lo *. lp.lp_xu.(j)))
    end
  done;
  require (!bound >= target) "dual: compensated b·y below the claimed bound"

(* ------------------------------------------------------------------ *)
(* MILP branch trees                                                   *)
(* ------------------------------------------------------------------ *)

let check_binaries (lp : Cert.lp_system) (binaries : Cert.milp_binary array) =
  let m, _ = lp_dims lp in
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun k (b : Cert.milp_binary) ->
      require
        (b.bin_ub_row >= 0 && b.bin_ub_row < m && b.bin_lb_row >= 0
       && b.bin_lb_row < m)
        "binary %d: bound row out of range" k;
      require (Float.is_finite b.bin_shift) "binary %d: non-finite shift" k;
      List.iter
        (fun r ->
          require (not (Hashtbl.mem seen r)) "binary %d: shared bound row" k;
          Hashtbl.replace seen r ())
        [ b.bin_ub_row; b.bin_lb_row ])
    binaries

let check_milp_tree ~max_nodes (lp : Cert.lp_system)
    (binaries : Cert.milp_binary array) target tree =
  check_system lp;
  check_binaries lp binaries;
  let nodes = ref 0 in
  let rec go fixings = function
    | Cert.Milp_leaf w ->
      let b_eff = Array.copy lp.lp_b in
      List.iter
        (fun (k, v) ->
          let b = binaries.(k) in
          b_eff.(b.bin_ub_row) <- v -. b.bin_shift;
          b_eff.(b.bin_lb_row) <- v -. b.bin_shift)
        fixings;
      (match w with
      | Cert.Farkas z -> check_farkas_sys lp b_eff z
      | Cert.Dual_bound y -> check_dual_sys lp b_eff y target)
    | Cert.Milp_branch { bin; zero; one } ->
      incr nodes;
      require (!nodes <= max_nodes) "milp tree exceeds the node budget";
      require (bin >= 0 && bin < Array.length binaries)
        "milp tree branches on unknown binary %d" bin;
      require
        (not (List.mem_assoc bin fixings))
        "milp tree re-fixes binary %d" bin;
      go ((bin, 0.) :: fixings) zero;
      go ((bin, 1.) :: fixings) one
  in
  go [] tree

(* ------------------------------------------------------------------ *)
(* Network-level MILP goals                                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic sample points for the encoding spot check: the center
   plus axis extremes of the first few axes. A certificate whose
   standard-form bound contradicts a concretely evaluated point is
   rejected — a necessary condition on the (untrusted) encoding step,
   see DESIGN.md. *)
let spot_points din =
  let dim = Box.dim din in
  let lo = Box.lower din and hi = Box.upper din in
  let center = Array.init dim (fun j -> (lo.(j) +. hi.(j)) /. 2.) in
  let pts = ref [ center ] in
  for j = 0 to Int.min (dim - 1) 3 do
    if Float.is_finite lo.(j) then begin
      let p = Array.copy center in
      p.(j) <- lo.(j);
      pts := p :: !pts
    end;
    if Float.is_finite hi.(j) then begin
      let p = Array.copy center in
      p.(j) <- hi.(j);
      pts := p :: !pts
    end
  done;
  !pts

let output_enclosure net x =
  match Ival.eval_network net (Array.map Ival.point x) with
  | Some chain when Array.length chain > 0 -> chain.(Array.length chain - 1)
  | _ -> fail "spot check: network evaluation failed"

let check_goal ~max_nodes net din (g : Cert.milp_goal) =
  require
    (g.mg_output >= 0 && g.mg_output < Cv_nn.Network.out_dim net)
    "milp goal: output %d out of range" g.mg_output;
  require
    (Float.is_finite g.mg_target && Float.is_finite g.mg_shift
   && Float.is_finite g.mg_const)
    "milp goal: non-finite frame";
  check_milp_tree ~max_nodes g.mg_lp g.mg_binaries g.mg_target g.mg_tree;
  (* Translate the proven standard-form bound back to the model level
     with outward rounding; the claimed [c_sign] must match the side. *)
  let bound =
    match g.mg_side with
    | `Upper ->
      require (g.mg_sign = -1.) "milp goal: upper bound needs c_sign = -1";
      Ival.up (-.Ival.dn (g.mg_target +. g.mg_shift) +. g.mg_const)
    | `Lower ->
      require (g.mg_sign = 1.) "milp goal: lower bound needs c_sign = 1";
      Ival.dn (Ival.dn (g.mg_target +. g.mg_shift) +. g.mg_const)
  in
  List.iter
    (fun x ->
      let out = output_enclosure net x in
      let v = out.(g.mg_output) in
      match g.mg_side with
      | `Upper ->
        require (v.lo <= bound)
          "milp goal: spot check exceeds the certified upper bound"
      | `Lower ->
        require (v.hi >= bound)
          "milp goal: spot check undercuts the certified lower bound")
    (spot_points din);
  bound

let check_milp_goals ~max_nodes net din dout goals =
  let bound_for output side =
    match
      List.find_opt
        (fun (g : Cert.milp_goal) -> g.mg_output = output && g.mg_side = side)
        goals
    with
    | Some g -> check_goal ~max_nodes net din g
    | None -> fail "milp goals: no goal for output %d" output
  in
  for k = 0 to Box.dim dout - 1 do
    let iv = Box.get dout k in
    let hi = Interval.hi iv and lo = Interval.lo iv in
    if hi < Float.infinity then
      require (bound_for k `Upper <= hi)
        "milp goals: certified upper bound escapes D_out at %d" k;
    if lo > Float.neg_infinity then
      require (bound_for k `Lower >= lo)
        "milp goals: certified lower bound escapes D_out at %d" k
  done

(* ------------------------------------------------------------------ *)
(* Lipschitz-product certificates                                      *)
(* ------------------------------------------------------------------ *)

(* Upward-rounded ∞-norm operator bound: max absolute row sum times the
   activation's Lipschitz factor, across all layers. *)
let lipschitz_up net =
  let layers = Cv_nn.Network.layers net in
  Array.fold_left
    (fun acc (l : Cv_nn.Layer.t) ->
      let gamma =
        match Ival.act_factor l.act with
        | Some g -> g
        | None -> invalid_arg "lipschitz_up: unsupported activation"
      in
      let rows = Cv_linalg.Mat.rows l.weights in
      let cols = Cv_linalg.Mat.cols l.weights in
      let opnorm = ref 0. in
      for i = 0 to rows - 1 do
        let s = ref 0. in
        for j = 0 to cols - 1 do
          s := Ival.up (!s +. Float.abs (Cv_linalg.Mat.get l.weights i j))
        done;
        opnorm := Float.max !opnorm !s
      done;
      Ival.up (acc *. Ival.up (!opnorm *. gamma)))
    1. layers

let kappa_up ~old_din ~din =
  if Box.dim old_din <> Box.dim din then
    invalid_arg "kappa_up: box dimension mismatch";
  let k = ref 0. in
  for j = 0 to Box.dim din - 1 do
    let o = Box.get old_din j and n = Box.get din j in
    k := Float.max !k (Ival.up (Interval.lo o -. Interval.lo n));
    k := Float.max !k (Ival.up (Interval.hi n -. Interval.hi o))
  done;
  Float.max 0. !k

let check_lipschitz net din dout ~old_din ~chain ~lip ~kappa =
  require
    (Float.is_finite lip && lip >= 0. && Float.is_finite kappa && kappa >= 0.)
    "lipschitz: claimed constants not sane";
  let final = chain_steps net old_din chain in
  let ell = lipschitz_up net in
  let k = kappa_up ~old_din ~din in
  let margin = Ival.up (ell *. k) in
  let expanded =
    Array.map
      (fun (v : Ival.t) ->
        { Ival.lo = Ival.dn (v.lo -. margin); hi = Ival.up (v.hi +. margin) })
      final
  in
  check_final expanded dout

(* ------------------------------------------------------------------ *)
(* Split trees                                                         *)
(* ------------------------------------------------------------------ *)

let check_split ~max_nodes net din dout tree =
  let dim = Box.dim din in
  let nodes = ref 0 in
  let rec go lo hi = function
    | Cert.Split_leaf chain ->
      let sub = Box.of_bounds lo hi in
      let final = chain_steps net sub chain in
      check_final final dout
    | Cert.Split_node { axis; at; below; above } ->
      incr nodes;
      require (!nodes <= max_nodes) "split tree exceeds the node budget";
      require (axis >= 0 && axis < dim) "split axis %d out of range" axis;
      require
        (at >= lo.(axis) && at <= hi.(axis))
        "split point outside the node box on axis %d" axis;
      let hi' = Array.copy hi in
      hi'.(axis) <- at;
      go lo hi' below;
      let lo' = Array.copy lo in
      lo'.(axis) <- at;
      go lo' hi above
  in
  go (Box.lower din) (Box.upper din) tree

(* ------------------------------------------------------------------ *)
(* Counterexamples                                                     *)
(* ------------------------------------------------------------------ *)

let check_counterexample net din dout x =
  require (Ival.all_finite x) "counterexample: non-finite input";
  require
    (Array.length x = Box.dim din)
    "counterexample: input dimension mismatch";
  Array.iteri
    (fun j v ->
      let iv = Box.get din j in
      require
        (v >= Interval.lo iv && v <= Interval.hi iv)
        "counterexample: input leaves D_in at coordinate %d" j)
    x;
  let out = output_enclosure net x in
  require (Array.length out = Box.dim dout)
    "counterexample: output dimension mismatch";
  let escapes = ref false in
  Array.iteri
    (fun k (v : Ival.t) ->
      let iv = Box.get dout k in
      if v.lo > Interval.hi iv || v.hi < Interval.lo iv then escapes := true)
    out;
  require !escapes "counterexample: output provably inside D_out bounds"

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let check_reuse_frame ~route ~proposition ~slack =
  require (route <> "") "reuse: empty route";
  require (proposition <> "") "reuse: empty proposition";
  require (Float.is_finite slack && slack >= 0.) "reuse: negative slack"

let rec check_safe_proof ~max_nodes net din dout = function
  | Cert.P_chain chain ->
    let final = chain_steps net din chain in
    check_final final dout
  | Cert.P_split tree -> check_split ~max_nodes net din dout tree
  | Cert.P_lipschitz { old_din; chain; lip; kappa } ->
    check_lipschitz net din dout ~old_din ~chain ~lip ~kappa
  | Cert.P_milp_goals goals -> check_milp_goals ~max_nodes net din dout goals
  | Cert.P_reuse { route; proposition; slack; inner } ->
    check_reuse_frame ~route ~proposition ~slack;
    check_safe_proof ~max_nodes net din dout inner
  | p -> fail "proof kind %S cannot establish safety" (Cert.proof_kind p)

let rec check_unsafe_proof ~max_nodes net din dout = function
  | Cert.P_counterexample x -> check_counterexample net din dout x
  | Cert.P_reuse { route; proposition; slack; inner } ->
    check_reuse_frame ~route ~proposition ~slack;
    check_unsafe_proof ~max_nodes net din dout inner
  | p -> fail "proof kind %S cannot establish a violation" (Cert.proof_kind p)

let check ?(max_split_nodes = 200_000) (cert : Cert.t) =
  match
    match (cert.claim, cert.proof) with
    | Cert.Network_safe { net; din; dout }, proof ->
      check_safe_proof ~max_nodes:max_split_nodes net din dout proof
    | Cert.Network_unsafe { net; din; dout }, proof ->
      check_unsafe_proof ~max_nodes:max_split_nodes net din dout proof
    | Cert.Lp_infeasible lp, Cert.P_farkas z ->
      check_system lp;
      check_farkas_sys lp lp.lp_b z
    | Cert.Lp_min_at_least (lp, target), Cert.P_dual { dual; bound } ->
      require (Float.is_finite bound) "dual: non-finite recorded bound";
      check_system lp;
      check_dual_sys lp lp.lp_b dual (Float.max target bound)
    | Cert.Milp_min_at_least { lp; binaries; target }, Cert.P_milp_tree tree ->
      check_milp_tree ~max_nodes:max_split_nodes lp binaries target tree
    | _, p ->
      fail "proof kind %S does not match the claim" (Cert.proof_kind p)
  with
  | () -> Valid
  | exception Reject msg -> Invalid msg
  | exception e -> Invalid (Printexc.to_string e)
