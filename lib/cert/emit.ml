module Box = Cv_interval.Box
module Interval = Cv_interval.Interval

exception Give_up

let chain_ivals net din =
  match Ival.eval_network net (Ival.of_box din) with
  | Some chain -> chain
  | None -> raise Give_up

let chain_boxes net din = Array.map Ival.to_box (chain_ivals net din)

let final_fits (chain : Ival.t array array) dout =
  let final = chain.(Array.length chain - 1) in
  Array.length final = Box.dim dout
  && Array.for_all
       (fun (i, (v : Ival.t)) ->
         let iv = Box.get dout i in
         v.lo >= Interval.lo iv && v.hi <= Interval.hi iv)
       (Array.mapi (fun i v -> (i, v)) final)

(* Self-validation gate: a candidate the trusted checker rejects is
   never emitted. *)
let validated cert =
  match Check.check cert with Check.Valid -> Some cert | Invalid _ -> None

let make ~mode ~solver ~fingerprint claim proof =
  validated { Cert.mode; solver; fingerprint; claim; proof }

let widest lo hi =
  let best = ref 0 and w = ref Float.neg_infinity in
  Array.iteri
    (fun j l ->
      let wj = hi.(j) -. l in
      if wj > !w then begin
        w := wj;
        best := j
      end)
    lo;
  !best

let safe_proof ?(max_depth = 12) ?(max_leaves = 512) net ~din ~dout =
  if Array.length (Cv_nn.Network.layers net) = 0 then None
  else begin
    let leaves = ref 0 in
    let rec build lo hi depth =
      let sub = Box.of_bounds lo hi in
      let chain = chain_ivals net sub in
      if final_fits chain dout then begin
        incr leaves;
        if !leaves > max_leaves then raise Give_up;
        Cert.Split_leaf (Array.map Ival.to_box chain)
      end
      else if depth <= 0 then raise Give_up
      else begin
        let axis = widest lo hi in
        let at = (lo.(axis) /. 2.) +. (hi.(axis) /. 2.) in
        if not (Float.is_finite at && at > lo.(axis) && at < hi.(axis)) then
          raise Give_up;
        let hi' = Array.copy hi in
        hi'.(axis) <- at;
        let below = build lo hi' (depth - 1) in
        let lo' = Array.copy lo in
        lo'.(axis) <- at;
        let above = build lo' hi (depth - 1) in
        Cert.Split_node { axis; at; below; above }
      end
    in
    match build (Box.lower din) (Box.upper din) max_depth with
    | Split_leaf chain -> Some (Cert.P_chain chain)
    | tree -> Some (Cert.P_split tree)
    | exception Give_up -> None
  end

let safe_cert ?max_depth ?max_leaves ~mode ~solver ~fingerprint net ~din ~dout
    =
  match safe_proof ?max_depth ?max_leaves net ~din ~dout with
  | Some proof ->
    make ~mode ~solver ~fingerprint (Cert.Network_safe { net; din; dout })
      proof
  | None -> None

let lipschitz_cert ~mode ~solver ~fingerprint net ~old_din ~din ~dout =
  match
    let chain = chain_boxes net old_din in
    let lip = Check.lipschitz_up net in
    let kappa = Check.kappa_up ~old_din ~din in
    (chain, lip, kappa)
  with
  | chain, lip, kappa ->
    make ~mode ~solver ~fingerprint (Cert.Network_safe { net; din; dout })
      (Cert.P_lipschitz { old_din; chain; lip; kappa })
  | exception (Give_up | Invalid_argument _) -> None

let unsafe_cert ~mode ~solver ~fingerprint net ~din ~dout ~x =
  make ~mode ~solver ~fingerprint
    (Cert.Network_unsafe { net; din; dout })
    (Cert.P_counterexample (Array.copy x))

let reuse_cert ~route ~proposition ~slack (cert : Cert.t) =
  let slack = if Float.is_finite slack then Float.max 0. slack else 0. in
  validated
    { cert with
      proof = Cert.P_reuse { route; proposition; slack; inner = cert.proof }
    }
