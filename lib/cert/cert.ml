(* Certificate types and JSON codec. The codec is deliberately dumb and
   total: every constructor has a "kind" tag, decoding validates the tag
   set, and all numeric payloads round-trip through Cv_util.Json's
   %.17g printing (exact for finite floats; non-finite bounds encode as
   the writer's "inf"/"-inf"/"nan" strings). *)

module Json = Cv_util.Json
module Box = Cv_interval.Box

let jerr fmt = Format.kasprintf (fun s -> raise (Json.Error s)) fmt

type lp_system = {
  lp_a : float array array;
  lp_b : float array;
  lp_c : float array;
  lp_xu : float array;
}

type lp_witness = Farkas of float array | Dual_bound of float array

type milp_binary = { bin_ub_row : int; bin_lb_row : int; bin_shift : float }

type milp_tree =
  | Milp_leaf of lp_witness
  | Milp_branch of { bin : int; zero : milp_tree; one : milp_tree }

type milp_goal = {
  mg_lp : lp_system;
  mg_binaries : milp_binary array;
  mg_target : float;
  mg_output : int;
  mg_side : [ `Upper | `Lower ];
  mg_sign : float;
  mg_shift : float;
  mg_const : float;
  mg_tree : milp_tree;
}

type split_tree =
  | Split_leaf of Cv_interval.Box.t array
  | Split_node of {
      axis : int;
      at : float;
      below : split_tree;
      above : split_tree;
    }

type proof =
  | P_chain of Cv_interval.Box.t array
  | P_split of split_tree
  | P_lipschitz of {
      old_din : Cv_interval.Box.t;
      chain : Cv_interval.Box.t array;
      lip : float;
      kappa : float;
    }
  | P_milp_goals of milp_goal list
  | P_counterexample of float array
  | P_farkas of float array
  | P_dual of { dual : float array; bound : float }
  | P_milp_tree of milp_tree
  | P_reuse of {
      route : string;
      proposition : string;
      slack : float;
      inner : proof;
    }

type claim =
  | Network_safe of {
      net : Cv_nn.Network.t;
      din : Cv_interval.Box.t;
      dout : Cv_interval.Box.t;
    }
  | Network_unsafe of {
      net : Cv_nn.Network.t;
      din : Cv_interval.Box.t;
      dout : Cv_interval.Box.t;
    }
  | Lp_infeasible of lp_system
  | Lp_min_at_least of lp_system * float
  | Milp_min_at_least of {
      lp : lp_system;
      binaries : milp_binary array;
      target : float;
    }

type t = {
  mode : string;
  solver : string;
  fingerprint : string;
  claim : claim;
  proof : proof;
}

let schema = "contiver-cert-v1"

let envelope_format = "certificate"

let proof_kind = function
  | P_chain _ -> "chain"
  | P_split _ -> "split"
  | P_lipschitz _ -> "lipschitz"
  | P_milp_goals _ -> "milp-goals"
  | P_counterexample _ -> "counterexample"
  | P_farkas _ -> "farkas"
  | P_dual _ -> "dual"
  | P_milp_tree _ -> "milp-tree"
  | P_reuse _ -> "reuse"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let lp_system_to_json s =
  Json.Obj
    [ ("a", Json.List (Array.to_list s.lp_a |> List.map Json.of_float_array));
      ("b", Json.of_float_array s.lp_b);
      ("c", Json.of_float_array s.lp_c);
      ("xu", Json.of_float_array s.lp_xu) ]

let witness_to_json = function
  | Farkas z -> Json.Obj [ ("farkas", Json.of_float_array z) ]
  | Dual_bound y -> Json.Obj [ ("dual", Json.of_float_array y) ]

let binary_to_json b =
  Json.Obj
    [ ("ub_row", Json.of_int b.bin_ub_row);
      ("lb_row", Json.of_int b.bin_lb_row);
      ("shift", Json.Num b.bin_shift) ]

let rec milp_tree_to_json = function
  | Milp_leaf w -> witness_to_json w
  | Milp_branch { bin; zero; one } ->
    Json.Obj
      [ ("bin", Json.of_int bin);
        ("zero", milp_tree_to_json zero);
        ("one", milp_tree_to_json one) ]

let boxes_to_json boxes =
  Json.List (Array.to_list boxes |> List.map Box.to_json)

let rec split_tree_to_json = function
  | Split_leaf chain -> Json.Obj [ ("chain", boxes_to_json chain) ]
  | Split_node { axis; at; below; above } ->
    Json.Obj
      [ ("axis", Json.of_int axis);
        ("at", Json.Num at);
        ("below", split_tree_to_json below);
        ("above", split_tree_to_json above) ]

let goal_to_json g =
  Json.Obj
    [ ("lp", lp_system_to_json g.mg_lp);
      ( "binaries",
        Json.List (Array.to_list g.mg_binaries |> List.map binary_to_json) );
      ("target", Json.Num g.mg_target);
      ("output", Json.of_int g.mg_output);
      ("side", Json.Str (match g.mg_side with `Upper -> "upper" | `Lower -> "lower"));
      ("sign", Json.Num g.mg_sign);
      ("shift", Json.Num g.mg_shift);
      ("const", Json.Num g.mg_const);
      ("tree", milp_tree_to_json g.mg_tree) ]

let rec proof_to_json = function
  | P_chain boxes ->
    Json.Obj [ ("kind", Json.Str "chain"); ("boxes", boxes_to_json boxes) ]
  | P_split tree ->
    Json.Obj [ ("kind", Json.Str "split"); ("tree", split_tree_to_json tree) ]
  | P_lipschitz { old_din; chain; lip; kappa } ->
    Json.Obj
      [ ("kind", Json.Str "lipschitz");
        ("old_din", Box.to_json old_din);
        ("chain", boxes_to_json chain);
        ("lip", Json.Num lip);
        ("kappa", Json.Num kappa) ]
  | P_milp_goals goals ->
    Json.Obj
      [ ("kind", Json.Str "milp-goals");
        ("goals", Json.List (List.map goal_to_json goals)) ]
  | P_counterexample x ->
    Json.Obj [ ("kind", Json.Str "counterexample"); ("x", Json.of_float_array x) ]
  | P_farkas z -> Json.Obj [ ("kind", Json.Str "farkas"); ("z", Json.of_float_array z) ]
  | P_dual { dual; bound } ->
    Json.Obj
      [ ("kind", Json.Str "dual");
        ("y", Json.of_float_array dual);
        ("bound", Json.Num bound) ]
  | P_milp_tree tree ->
    Json.Obj [ ("kind", Json.Str "milp-tree"); ("tree", milp_tree_to_json tree) ]
  | P_reuse { route; proposition; slack; inner } ->
    Json.Obj
      [ ("kind", Json.Str "reuse");
        ("route", Json.Str route);
        ("proposition", Json.Str proposition);
        ("slack", Json.Num slack);
        ("inner", proof_to_json inner) ]

let claim_to_json = function
  | Network_safe { net; din; dout } ->
    Json.Obj
      [ ("kind", Json.Str "network-safe");
        ("net", Cv_nn.Network.to_json net);
        ("din", Box.to_json din);
        ("dout", Box.to_json dout) ]
  | Network_unsafe { net; din; dout } ->
    Json.Obj
      [ ("kind", Json.Str "network-unsafe");
        ("net", Cv_nn.Network.to_json net);
        ("din", Box.to_json din);
        ("dout", Box.to_json dout) ]
  | Lp_infeasible lp ->
    Json.Obj [ ("kind", Json.Str "lp-infeasible"); ("lp", lp_system_to_json lp) ]
  | Lp_min_at_least (lp, target) ->
    Json.Obj
      [ ("kind", Json.Str "lp-min-at-least");
        ("lp", lp_system_to_json lp);
        ("target", Json.Num target) ]
  | Milp_min_at_least { lp; binaries; target } ->
    Json.Obj
      [ ("kind", Json.Str "milp-min-at-least");
        ("lp", lp_system_to_json lp);
        ("binaries", Json.List (Array.to_list binaries |> List.map binary_to_json));
        ("target", Json.Num target) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("mode", Json.Str t.mode);
      ("solver", Json.Str t.solver);
      ("fingerprint", Json.Str t.fingerprint);
      ("claim", claim_to_json t.claim);
      ("proof", proof_to_json t.proof) ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let lp_system_of_json j =
  let lp_a =
    Json.member "a" j |> Json.to_list |> List.map Json.float_array
    |> Array.of_list
  in
  let lp_b = Json.member "b" j |> Json.float_array in
  let lp_c = Json.member "c" j |> Json.float_array in
  let lp_xu = Json.member "xu" j |> Json.float_array in
  let m = Array.length lp_b and n = Array.length lp_c in
  if Array.length lp_a <> m then jerr "lp system: %d rows, %d rhs" (Array.length lp_a) m;
  if Array.length lp_xu <> n then
    jerr "lp system: %d column bounds, %d columns" (Array.length lp_xu) n;
  Array.iter
    (fun row ->
      if Array.length row <> n then jerr "lp system: ragged row")
    lp_a;
  { lp_a; lp_b; lp_c; lp_xu }

let witness_of_json j =
  match Json.member_opt "farkas" j with
  | Some z -> Farkas (Json.float_array z)
  | None -> Dual_bound (Json.member "dual" j |> Json.float_array)

let binary_of_json j =
  { bin_ub_row = Json.member "ub_row" j |> Json.to_int;
    bin_lb_row = Json.member "lb_row" j |> Json.to_int;
    bin_shift = Json.member "shift" j |> Json.to_float }

let rec milp_tree_of_json j =
  match Json.member_opt "bin" j with
  | Some b ->
    Milp_branch
      { bin = Json.to_int b;
        zero = Json.member "zero" j |> milp_tree_of_json;
        one = Json.member "one" j |> milp_tree_of_json }
  | None -> Milp_leaf (witness_of_json j)

let boxes_of_json j =
  Json.to_list j |> List.map Box.of_json |> Array.of_list

let rec split_tree_of_json j =
  match Json.member_opt "chain" j with
  | Some c -> Split_leaf (boxes_of_json c)
  | None ->
    Split_node
      { axis = Json.member "axis" j |> Json.to_int;
        at = Json.member "at" j |> Json.to_float;
        below = Json.member "below" j |> split_tree_of_json;
        above = Json.member "above" j |> split_tree_of_json }

let goal_of_json j =
  { mg_lp = Json.member "lp" j |> lp_system_of_json;
    mg_binaries =
      Json.member "binaries" j |> Json.to_list |> List.map binary_of_json
      |> Array.of_list;
    mg_target = Json.member "target" j |> Json.to_float;
    mg_output = Json.member "output" j |> Json.to_int;
    mg_side =
      (match Json.member "side" j |> Json.to_str with
      | "upper" -> `Upper
      | "lower" -> `Lower
      | s -> jerr "unknown goal side %S" s);
    mg_sign = Json.member "sign" j |> Json.to_float;
    mg_shift = Json.member "shift" j |> Json.to_float;
    mg_const = Json.member "const" j |> Json.to_float;
    mg_tree = Json.member "tree" j |> milp_tree_of_json }

let rec proof_of_json j =
  match Json.member "kind" j |> Json.to_str with
  | "chain" -> P_chain (Json.member "boxes" j |> boxes_of_json)
  | "split" -> P_split (Json.member "tree" j |> split_tree_of_json)
  | "lipschitz" ->
    P_lipschitz
      { old_din = Json.member "old_din" j |> Box.of_json;
        chain = Json.member "chain" j |> boxes_of_json;
        lip = Json.member "lip" j |> Json.to_float;
        kappa = Json.member "kappa" j |> Json.to_float }
  | "milp-goals" ->
    P_milp_goals (Json.member "goals" j |> Json.to_list |> List.map goal_of_json)
  | "counterexample" -> P_counterexample (Json.member "x" j |> Json.float_array)
  | "farkas" -> P_farkas (Json.member "z" j |> Json.float_array)
  | "dual" ->
    P_dual
      { dual = Json.member "y" j |> Json.float_array;
        bound = Json.member "bound" j |> Json.to_float }
  | "milp-tree" -> P_milp_tree (Json.member "tree" j |> milp_tree_of_json)
  | "reuse" ->
    P_reuse
      { route = Json.member "route" j |> Json.to_str;
        proposition = Json.member "proposition" j |> Json.to_str;
        slack = Json.member "slack" j |> Json.to_float;
        inner = Json.member "inner" j |> proof_of_json }
  | k -> jerr "unknown proof kind %S" k

let claim_of_json j =
  match Json.member "kind" j |> Json.to_str with
  | "network-safe" ->
    Network_safe
      { net = Json.member "net" j |> Cv_nn.Network.of_json;
        din = Json.member "din" j |> Box.of_json;
        dout = Json.member "dout" j |> Box.of_json }
  | "network-unsafe" ->
    Network_unsafe
      { net = Json.member "net" j |> Cv_nn.Network.of_json;
        din = Json.member "din" j |> Box.of_json;
        dout = Json.member "dout" j |> Box.of_json }
  | "lp-infeasible" -> Lp_infeasible (Json.member "lp" j |> lp_system_of_json)
  | "lp-min-at-least" ->
    Lp_min_at_least
      ( Json.member "lp" j |> lp_system_of_json,
        Json.member "target" j |> Json.to_float )
  | "milp-min-at-least" ->
    Milp_min_at_least
      { lp = Json.member "lp" j |> lp_system_of_json;
        binaries =
          Json.member "binaries" j |> Json.to_list |> List.map binary_of_json
          |> Array.of_list;
        target = Json.member "target" j |> Json.to_float }
  | k -> jerr "unknown claim kind %S" k

let of_json j =
  (match Json.member "schema" j |> Json.to_str with
  | s when s = schema -> ()
  | s -> jerr "certificate schema %S (expected %S)" s schema);
  { mode = Json.member "mode" j |> Json.to_str;
    solver = Json.member "solver" j |> Json.to_str;
    fingerprint = Json.member "fingerprint" j |> Json.to_str;
    claim = Json.member "claim" j |> claim_of_json;
    proof = Json.member "proof" j |> proof_of_json }

let of_json_result j =
  match of_json j with
  | t -> Ok t
  | exception Json.Error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
