(** The trusted certificate checker.

    [check] replays a certificate's proof against its claim using only
    {!Ival}'s outward-rounded interval arithmetic — no simplex, MILP or
    abstract-domain kernel code is reachable from this module. Every
    obligation is phrased positively, so NaN poisoning, dimension
    mismatches or any unexpected exception reject the certificate
    instead of accepting it. *)

type verdict = Valid | Invalid of string

(** [verdict_string v] is ["valid"] or ["invalid: <reason>"]. *)
val verdict_string : verdict -> string

(** [check cert] replays the proof. [max_split_nodes] bounds the size of
    bisection and MILP branch trees the checker is willing to walk
    (default 200_000) — oversized certificates are rejected, never
    trusted. *)
val check : ?max_split_nodes:int -> Cert.t -> verdict

(** [check_chain net ~din ~dout chain] — the chain obligation alone:
    outward image of [din] lies in [chain.(0)], each outward layer image
    of [chain.(i-1)] lies in [chain.(i)], and the final box lies in
    [dout]. Exposed for emission-side self-validation and tests. *)
val check_chain :
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  Cv_interval.Box.t array ->
  verdict

(** [lipschitz_up net] is the checker's own upward-rounded global
    Lipschitz bound (∞-norm operator-norm product across layers).
    Raises [Invalid_argument] on activations without a sound factor.
    Exposed so emission records exactly what the checker will
    recompute. *)
val lipschitz_up : Cv_nn.Network.t -> float

(** [kappa_up ~old_din ~din] is the upward-rounded bound on how far
    [din] sticks out of [old_din] per axis (the paper's κ in ∞-norm).
    Raises [Invalid_argument] on a dimension mismatch. *)
val kappa_up : old_din:Cv_interval.Box.t -> din:Cv_interval.Box.t -> float

(** [chain_slack net ~dout chain] is the smallest outward-rounded margin
    between the final chain box and a finite bound of [dout] (+inf when
    every bound is infinite) — the numeric slack recorded in reuse
    certificates. Negative when the chain does not prove the
    property. *)
val chain_slack :
  dout:Cv_interval.Box.t -> Cv_interval.Box.t array -> float
