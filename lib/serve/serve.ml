(** The continuous-verification service loop (see the interface). *)

module Json = Cv_util.Json
module Metrics = Cv_util.Metrics
module Checkpoint = Cv_util.Checkpoint
module Box = Cv_interval.Box
module Monitor = Cv_monitor.Monitor
module Artifacts = Cv_artifacts.Artifacts
module Cache = Cv_artifacts.Cache
module Batch = Cv_core.Batch
module Strategy = Cv_core.Strategy
module Runstate = Cv_core.Runstate
module Lipschitz = Cv_lipschitz.Lipschitz
module Analyzer = Cv_domains.Analyzer

let src = Logs.Src.create "cv.serve.loop" ~doc:"Continuous verification loop"

module Log = (val Logs.src_log src : Logs.LOG)

let m_rounds = Metrics.counter "serve.rounds"
let m_commits = Metrics.counter "serve.commits"
let m_seen = Metrics.counter "serve.events.seen"
let m_ood = Metrics.counter "serve.events.ood"
let m_dropped = Metrics.counter "serve.events.dropped"
let m_rejected = Metrics.counter "serve.events.rejected"

type round_kind = Svudc | Svbtv

let round_kind_name = function Svudc -> "svudc" | Svbtv -> "svbtv"

type round = {
  number : int;
  kind : round_kind;
  verdict : Batch.verdict;
  committed : bool;
  seconds : float;
  resumed : bool;
  trigger_events : int;
  kappa : float;
}

type stop_reason = Eof | Rounds_limit | Stopped

let stop_reason_name = function
  | Eof -> "eof"
  | Rounds_limit -> "rounds-limit"
  | Stopped -> "signal"

type persisted = {
  p_round : int;
  p_commits : int;
  p_seen : int;
  p_ood : int;
  p_dropped : int;
  p_rejected : int;
  p_consumed : int;
  p_box : Box.t;
  p_pending : Cv_linalg.Vec.t list;
  p_failed_at : int option;
}

type config = {
  margin : float;
  trigger_events : int;
  trigger_kappa : float;
  quiet_events : int;
  queue_capacity : int;
  max_rounds : int option;
  widen : float;
  strategy : Strategy.config;
  round_timeout : float option;
  checkpoint_dir : string option;
  checkpoint_every : float;
  resume : persisted option;
  cache : Cache.t option;
  status_every : float;
  watch : string option;
  artifact_out : string option;
  status : Json.t -> unit;
  on_round : round -> unit;
  should_stop : unit -> bool;
}

let default_config =
  { margin = 0.005;
    trigger_events = 3;
    trigger_kappa = infinity;
    quiet_events = 0;
    queue_capacity = 1024;
    max_rounds = None;
    widen = 0.04;
    strategy = Strategy.default_config;
    round_timeout = None;
    checkpoint_dir = None;
    checkpoint_every = 5.;
    resume = None;
    cache = None;
    status_every = 10.;
    watch = None;
    artifact_out = None;
    status = ignore;
    on_round = ignore;
    should_stop = (fun () -> false) }

type t = {
  rounds : round list;
  round_count : int;
  commits : int;
  seen : int;
  ood : int;
  dropped : int;
  rejected : int;
  pending : int;
  consumed : int;
  box : Box.t;
  stop : stop_reason;
  net : Cv_nn.Network.t;
  artifact : Artifacts.t;
  cache_stats : Cache.stats option;
}

(* ------------------------------------------------------------------ *)
(* Loop-state persistence                                              *)

let state_path ~dir = Filename.concat dir "serve.state.json"

let persisted_to_json p =
  Json.Obj
    [ ("round", Json.of_int p.p_round);
      ("commits", Json.of_int p.p_commits);
      ("seen", Json.of_int p.p_seen);
      ("ood", Json.of_int p.p_ood);
      ("dropped", Json.of_int p.p_dropped);
      ("rejected", Json.of_int p.p_rejected);
      ("consumed", Json.of_int p.p_consumed);
      ("box", Box.to_json p.p_box);
      ("pending", Json.List (List.map Json.of_float_array p.p_pending));
      ( "failed_at",
        match p.p_failed_at with
        | None -> Json.Null
        | Some n -> Json.of_int n ) ]

let persisted_of_json j =
  let box =
    match Box.of_json_result (Json.member "box" j) with
    | Ok b -> b
    | Error msg -> raise (Json.Error msg)
  in
  { p_round = Json.to_int (Json.member "round" j);
    p_commits = Json.to_int (Json.member "commits" j);
    p_seen = Json.to_int (Json.member "seen" j);
    p_ood = Json.to_int (Json.member "ood" j);
    p_dropped = Json.to_int (Json.member "dropped" j);
    p_rejected = Json.to_int (Json.member "rejected" j);
    p_consumed = Json.to_int (Json.member "consumed" j);
    p_box = box;
    p_pending =
      List.map Json.float_array (Json.to_list (Json.member "pending" j));
    p_failed_at =
      (match Json.member "failed_at" j with
      | Json.Null -> None
      | v -> Some (Json.to_int v)) }

let load_state ~dir ~fingerprint =
  let path = state_path ~dir in
  if not (Sys.file_exists path) then Ok None
  else
    match Runstate.load ~path ~kind:Runstate.Serve ~fingerprint ~scope:None with
    | Error e -> Error e
    | Ok payload -> (
      match persisted_of_json payload with
      | p -> Ok (Some p)
      | exception Json.Error msg ->
        Error (Runstate.Corrupt_checkpoint (path ^ ": " ^ msg)))

(* ------------------------------------------------------------------ *)
(* The service loop                                                    *)

let run ?(config = default_config) ~net ~artifact ~source () =
  let current_net = ref net in
  let current_artifact = ref artifact in
  Option.iter
    (fun dir ->
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    config.checkpoint_dir;
  (* Committed rounds refresh the artifact in memory; a copy lives under
     the checkpoint directory so a resumed daemon continues from the
     refreshed proof (enlarged domain, rebuilt abstractions) instead of
     the original one — keeping an interrupted round's re-run identical
     to the uninterrupted schedule. *)
  let saved_artifact_path =
    Option.map
      (fun dir -> Filename.concat dir "artifact.json")
      config.checkpoint_dir
  in
  (match (config.resume, saved_artifact_path) with
  | Some p, Some path when Sys.file_exists path -> (
    match Artifacts.load_result path with
    | Ok saved
      when String.equal saved.Artifacts.network_fingerprint
             (Artifacts.fingerprint net)
           (* A kill can land between a commit's artifact refresh and
              the next state snapshot; an artifact whose domain is not
              contained in the persisted box is from that window —
              ahead of the snapshot — and must not enlarge the resumed
              monitor, or the OOD schedule would drift. *)
           && Box.subset saved.Artifacts.property.Cv_verify.Property.din
                p.p_box ->
      current_artifact := saved
    | Ok _ | Error _ -> ())
  | _ -> ());
  (* Counters carry over from a restored state; queue drops are tracked
     by the queue itself on top of the restored base. *)
  let base_dropped, round_count, commits, seen, ood, rejected, consumed =
    match config.resume with
    | None -> (0, ref 0, ref 0, ref 0, ref 0, ref 0, ref 0)
    | Some p ->
      ( p.p_dropped,
        ref p.p_round,
        ref p.p_commits,
        ref p.p_seen,
        ref p.p_ood,
        ref p.p_rejected,
        ref p.p_consumed )
  in
  let failed_at =
    ref (match config.resume with None -> None | Some p -> p.p_failed_at)
  in
  let artifact_din () =
    (!current_artifact).Artifacts.property.Cv_verify.Property.din
  in
  let monitor =
    match config.resume with
    | None -> Monitor.of_box (artifact_din ())
    | Some p ->
      (* Both boxes were proved; the monitor resumes from their join and
         re-records the events that were still pending. *)
      let m = Monitor.of_box (Box.join p.p_box (artifact_din ())) in
      List.iter (fun feats -> ignore (Monitor.observe m feats)) p.p_pending;
      m
  in
  let queue = Event_queue.create ~capacity:config.queue_capacity () in
  let dropped () = base_dropped + Event_queue.dropped queue in
  let quiet_run = ref 0 in
  let eof = ref false in
  let idle = ref false in
  let stop = ref None in
  let rounds = ref [] in
  let stats () = Option.map Cache.stats config.cache in
  let status_json ~final () =
    Json.Obj
      ([ ("schema", Json.Str "contiver-serve-status-v1");
         ("rounds", Json.of_int !round_count);
         ("commits", Json.of_int !commits);
         ( "events",
           Json.Obj
             [ ("seen", Json.of_int !seen);
               ("ood", Json.of_int !ood);
               ("pending", Json.of_int (Monitor.event_count monitor));
               ("dropped", Json.of_int (dropped ()));
               ("rejected", Json.of_int !rejected) ] );
         ("kappa", Json.Num (Monitor.kappa monitor));
         ("box_width", Json.Num (Box.total_width (Monitor.current monitor)));
         ( "cache",
           match stats () with
           | None -> Json.Null
           | Some s -> Cache.stats_to_json s );
         ("final", Json.Bool final) ]
      @
      match !stop with
      | None -> []
      | Some reason -> [ ("stop", Json.Str (stop_reason_name reason)) ])
  in
  let status_sink = Checkpoint.create ~every:config.status_every config.status in
  let state_json () =
    persisted_to_json
      { p_round = !round_count;
        p_commits = !commits;
        p_seen = !seen;
        p_ood = !ood;
        p_dropped = dropped ();
        p_rejected = !rejected;
        p_consumed = !consumed;
        p_box = Monitor.current monitor;
        p_pending = List.map (fun ev -> ev.Monitor.features) (Monitor.events monitor);
        p_failed_at = !failed_at }
  in
  let state_sink =
    Option.map
      (fun dir ->
        Checkpoint.create ~every:config.checkpoint_every (fun payload ->
            Runstate.save
              ~path:(state_path ~dir)
              ~kind:Runstate.Serve
              ~fingerprint:(Artifacts.fingerprint !current_net)
              payload))
      config.checkpoint_dir
  in
  (* On a proved round the artifact is refreshed for the committed box:
     abstraction chain and Lipschitz constants go through the cache
     (content-addressed), so a second round against the same network
     reuses them. A failed chain rebuild degrades to an artifact without
     abstractions — the next round just starts from a cheaper route. *)
  let refresh_artifact box =
    let net = !current_net in
    let fingerprint = Artifacts.fingerprint net in
    let domain = config.strategy.Strategy.domain in
    let build_chain () =
      Analyzer.abstractions ~widen:config.widen domain net box
    in
    let chain =
      let build () =
        match config.cache with
        | None -> build_chain ()
        | Some c ->
          Cache.boxes_or_build c ~fingerprint ~box_hash:(Cache.box_hash box)
            ~kind:
              (Printf.sprintf "abstractions:%s:w=%g"
                 (Analyzer.domain_name domain)
                 config.widen)
            build_chain
      in
      match Cv_util.Supervisor.run ~name:"serve.refresh-chain" build with
      | Ok chain -> Some chain
      | Error _ -> None
      | exception _ -> None
    in
    let lip name norm =
      let build () = Lipschitz.global ~norm net in
      match config.cache with
      | None -> build ()
      | Some c ->
        Cache.float_or_build c ~fingerprint ~box_hash:Cache.no_box
          ~kind:("lipschitz:" ^ name) build
    in
    let property =
      Cv_verify.Property.make ~din:box
        ~dout:(!current_artifact).Artifacts.property.Cv_verify.Property.dout
    in
    let refreshed =
      Artifacts.make
        ?state_abstractions:chain
        ~lipschitz:[ ("Linf", lip "Linf" Lipschitz.Linf); ("L2", lip "L2" Lipschitz.L2) ]
        ~property ~net ~solver:"serve-transfer"
        ~solve_seconds:(!current_artifact).Artifacts.solve_seconds ()
    in
    current_artifact := refreshed;
    Option.iter (fun path -> Artifacts.save path refreshed) config.artifact_out;
    Option.iter (fun path -> Artifacts.save path refreshed) saved_artifact_path
  in
  let run_round kind =
    let number = !round_count + 1 in
    let trigger_events = Monitor.event_count monitor in
    let kappa = Monitor.kappa monitor in
    let enlarged = Monitor.enlarged_box ~margin:config.margin monitor in
    (* Persist the exact pre-round state: a daemon killed mid-round
       resumes here and re-derives the identical round (same id, same
       enlarged box), so the round's done-file replays. *)
    Checkpoint.save_opt state_sink state_json;
    let id =
      Printf.sprintf "round-%04d-%s" number
        (round_kind_name
           (match kind with `Svudc -> Svudc | `Svbtv _ -> Svbtv))
    in
    Log.info (fun m ->
        m "%s: %d pending events, kappa %.4f" id trigger_events kappa);
    let spec =
      match kind with
      | `Svudc ->
        Batch.Svudc
          { net = !current_net; artifact = !current_artifact; new_din = enlarged }
      | `Svbtv new_net ->
        Batch.Svbtv
          { old_net = !current_net;
            new_net;
            artifact = !current_artifact;
            new_din = enlarged }
    in
    let batch_config =
      { Batch.default_config with
        strategy = config.strategy;
        job_timeout = config.round_timeout;
        cache = config.cache;
        checkpoint_dir = config.checkpoint_dir;
        checkpoint_every = config.checkpoint_every }
    in
    let batch =
      Batch.run ~config:batch_config [ { Batch.id; spec; timeout = None } ]
    in
    let result = List.hd batch.Batch.results in
    round_count := number;
    Metrics.incr m_rounds;
    let committed = result.Batch.verdict = Batch.Safe in
    if committed then begin
      (match kind with `Svbtv new_net -> current_net := new_net | `Svudc -> ());
      Monitor.commit monitor enlarged;
      refresh_artifact enlarged;
      incr commits;
      Metrics.incr m_commits;
      failed_at := None
    end
    else
      (* Debounce gate: don't re-fire until new evidence arrives. *)
      failed_at := Some trigger_events;
    let round =
      { number;
        kind = (match kind with `Svudc -> Svudc | `Svbtv _ -> Svbtv);
        verdict = result.Batch.verdict;
        committed;
        seconds = result.Batch.seconds;
        resumed = result.Batch.resumed;
        trigger_events;
        kappa }
    in
    rounds := round :: !rounds;
    Log.info (fun m ->
        m "%s: %s%s%s" id
          (Batch.verdict_name result.Batch.verdict)
          (if committed then ", committed" else "")
          (if result.Batch.resumed then " (resumed)" else ""));
    config.on_round round;
    Checkpoint.save_opt state_sink state_json;
    Checkpoint.save status_sink (status_json ~final:false)
  in
  let watch_mtime =
    ref
      (match config.watch with
      | None -> neg_infinity
      | Some path -> (
        try (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> neg_infinity))
  in
  (* A touched watch file whose content fingerprint actually changed is
     a fine-tuned network: run SVbTV against it. *)
  let check_watch () =
    match config.watch with
    | None -> ()
    | Some path ->
      let mtime =
        try (Unix.stat path).Unix.st_mtime
        with Unix.Unix_error _ -> !watch_mtime
      in
      if mtime <> !watch_mtime then begin
        watch_mtime := mtime;
        match Cv_nn.Serialize.load_network_result path with
        | Error e ->
          Log.warn (fun m ->
              m "watch %s: cannot reload network: %s" path
                (Cv_nn.Serialize.load_error_message e))
        | Ok reloaded ->
          if
            not
              (String.equal
                 (Artifacts.fingerprint reloaded)
                 (Artifacts.fingerprint !current_net))
          then run_round (`Svbtv reloaded)
      end
  in
  let drain () =
    let rec go () =
      match Event_queue.pop queue with
      | None -> ()
      | Some feats ->
        incr seen;
        Metrics.incr m_seen;
        (match Monitor.observe_class monitor feats with
        | Monitor.In_distribution -> incr quiet_run
        | Monitor.Ood _ ->
          incr ood;
          Metrics.incr m_ood;
          quiet_run := 0
        | Monitor.Rejected ->
          incr rejected;
          Metrics.incr m_rejected);
        go ()
    in
    go ()
  in
  let pull () =
    if not !eof then
      match source () with
      | Source.Eof ->
        eof := true;
        idle := true
      | Source.Idle -> idle := true
      | Source.Burst items ->
        idle := false;
        List.iter
          (fun feats ->
            incr consumed;
            match Event_queue.push queue feats with
            | Some _lost -> Metrics.incr m_dropped
            | None -> ())
          items
  in
  while !stop = None do
    drain ();
    check_watch ();
    let ran_round =
      let pending = Monitor.event_count monitor in
      let fresh =
        match !failed_at with None -> pending > 0 | Some n -> pending > n
      in
      let loud =
        pending >= config.trigger_events
        || Monitor.kappa monitor >= config.trigger_kappa
        || (!eof && pending > 0)
      in
      let settled = !quiet_run >= config.quiet_events || !idle in
      if fresh && loud && settled then begin
        run_round `Svudc;
        true
      end
      else false
    in
    if config.should_stop () then stop := Some Stopped
    else if
      match config.max_rounds with
      | Some n -> !round_count >= n
      | None -> false
    then stop := Some Rounds_limit
    else if !eof && (not ran_round) && Event_queue.length queue = 0 then
      stop := Some Eof
    else begin
      (* Tick before pulling: the queue is empty here (drained at the
         top of the iteration), so a state snapshot never counts frames
         as consumed that the monitor has not observed yet. *)
      Checkpoint.tick_opt state_sink state_json;
      Checkpoint.tick status_sink (status_json ~final:false);
      pull ()
    end
  done;
  Checkpoint.save_opt state_sink state_json;
  Checkpoint.save status_sink (status_json ~final:true);
  { rounds = List.rev !rounds;
    round_count = !round_count;
    commits = !commits;
    seen = !seen;
    ood = !ood;
    dropped = dropped ();
    rejected = !rejected;
    pending = Monitor.event_count monitor;
    consumed = !consumed;
    box = Monitor.current monitor;
    stop = (match !stop with Some r -> r | None -> Eof);
    net = !current_net;
    artifact = !current_artifact;
    cache_stats = stats () }
