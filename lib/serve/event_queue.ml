(** Bounded drop-oldest queue (see the interface). *)

type 'a t = {
  lock : Mutex.t;
  items : 'a Queue.t;
  capacity : int;
  mutable dropped : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Event_queue.create: capacity must be >= 1";
  { lock = Mutex.create (); items = Queue.create (); capacity; dropped = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t @@ fun () ->
  let evicted =
    if Queue.length t.items >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      Some (Queue.pop t.items)
    end
    else None
  in
  Queue.add x t.items;
  evicted

let pop t =
  with_lock t @@ fun () -> Queue.take_opt t.items

let length t = with_lock t (fun () -> Queue.length t.items)
let dropped t = with_lock t (fun () -> t.dropped)
let capacity t = t.capacity
