(** Observation sources for the serving loop: where feature vectors come
    from. A source is polled; each poll hands back whatever burst of
    observations arrived since the last one, [Idle] when nothing is
    available right now, or [Eof] when the stream has ended. *)

(** One poll's worth of input. *)
type pull =
  | Burst of Cv_linalg.Vec.t list  (** observations, arrival order *)
  | Idle  (** nothing available right now; poll again *)
  | Eof  (** the stream has ended *)

type t = unit -> pull

(** [of_bursts bursts] — a scripted source for tests: each poll yields
    the next burst, then [Eof]. *)
val of_bursts : Cv_linalg.Vec.t list list -> t

(** [of_stream ?burst stream] — the simulated vehicle source: each poll
    advances the closed loop by up to [burst] frames (default 8). *)
val of_stream : ?burst:int -> Cv_vehicle.Stream.t -> t

(** [stdin_ndjson ?poll ?max_burst ()] — NDJSON on stdin: each line is
    either a bare JSON array of numbers or an object
    [{"features": [...]}]. Waits up to [poll] seconds (default 0.05) for
    input before reporting [Idle]; hands back at most [max_burst] lines
    per poll (default 256). Malformed lines are logged, counted
    ([serve.events.malformed]) and skipped — one bad producer must not
    take the daemon down. *)
val stdin_ndjson : ?poll:float -> ?max_burst:int -> unit -> t
