(** The continuous-verification service: the paper's
    monitor→Δ_in→SVuDC / fine-tune→SVbTV engineering loop as a
    long-running, event-driven daemon (promoted from
    [examples/continuous_loop.ml]).

    One single-threaded event loop per service: poll the {!Source},
    push observations through a bounded {!Event_queue} (drop-oldest
    backpressure, every drop counted), drain them into the hardened
    {!Cv_monitor.Monitor}, and debounce pending OOD events — by count,
    by κ threshold, and by a quiet period — into SVuDC re-verification
    rounds executed as {!Cv_core.Batch} jobs (supervised, per-round
    deadline, {!Cv_artifacts.Cache} reuse). A watched network file whose
    content fingerprint changes triggers an SVbTV round against the
    fine-tuned network. The enlarged box is committed back to the
    monitor {e only} on a proved verdict; on success the proof artifact
    is refreshed for the committed box so the next round starts from it.

    Durability: the loop state (counters, monitored box, pending events,
    consumed-frame count) is checkpointed under [checkpoint_dir] as a
    {!Cv_core.Runstate} document of kind [Serve], and each round is a
    batch job with its own done-file — a killed daemon restarted with
    the saved state replays finished rounds from their done-files
    instead of re-verifying, and reaches the identical verdict.

    Observability: [serve.*] metrics counters, a periodic one-line JSON
    status record ([contiver-serve-status-v1]) through [status], and a
    final flushed record on shutdown ([should_stop], e.g. SIGTERM). *)

type round_kind = Svudc | Svbtv

val round_kind_name : round_kind -> string

type round = {
  number : int;  (** 1-based, monotonic across resumes *)
  kind : round_kind;
  verdict : Cv_core.Batch.verdict;
  committed : bool;  (** verdict was [Safe]: the box was enlarged *)
  seconds : float;
  resumed : bool;  (** replayed from a done-file or checkpoint *)
  trigger_events : int;  (** pending OOD events when the round fired *)
  kappa : float;  (** κ when the round fired *)
}

type stop_reason =
  | Eof  (** the source ended and pending events were flushed *)
  | Rounds_limit  (** [max_rounds] reached *)
  | Stopped  (** [should_stop] fired (signal) *)

val stop_reason_name : stop_reason -> string

(** Loop state restored from a checkpoint (see {!load_state}). *)
type persisted = {
  p_round : int;
  p_commits : int;
  p_seen : int;
  p_ood : int;
  p_dropped : int;
  p_rejected : int;
  p_consumed : int;  (** source frames consumed; feed to [Stream.skip] *)
  p_box : Cv_interval.Box.t;  (** committed monitored box *)
  p_pending : Cv_linalg.Vec.t list;  (** events not yet covered *)
  p_failed_at : int option;  (** debounce gate after a failed round *)
}

type config = {
  margin : float;  (** event padding for the enlarged box *)
  trigger_events : int;  (** fire a round at this many pending events *)
  trigger_kappa : float;  (** ... or when κ reaches this (infinity = off) *)
  quiet_events : int;
      (** debounce: require this many consecutive in-distribution
          observations since the last OOD before firing (waived when the
          source is idle or ended — nothing newer is coming) *)
  queue_capacity : int;  (** bounded ingestion queue *)
  max_rounds : int option;  (** stop after this many rounds *)
  widen : float;  (** abstraction slack when refreshing the artifact *)
  strategy : Cv_core.Strategy.config;
  round_timeout : float option;  (** per-round deadline, seconds *)
  checkpoint_dir : string option;
      (** loop state ([serve.state.json]) + per-round batch files *)
  checkpoint_every : float;
  resume : persisted option;  (** state from {!load_state} *)
  cache : Cv_artifacts.Cache.t option;
  status_every : float;  (** seconds between periodic status records *)
  watch : string option;  (** network file to watch for fine-tuning *)
  artifact_out : string option;  (** persist the refreshed artifact *)
  status : Cv_util.Json.t -> unit;  (** status-record sink *)
  on_round : round -> unit;  (** called after every round *)
  should_stop : unit -> bool;  (** polled once per loop tick *)
}

(** Conservative defaults: trigger at 3 events, κ trigger off, no
    deadline, no cache, no checkpointing, silent sinks. *)
val default_config : config

(** Final report of one service run. [rounds] lists only the rounds
    executed by this process (oldest first); the counters include
    restored state. *)
type t = {
  rounds : round list;
  round_count : int;
  commits : int;
  seen : int;
  ood : int;
  dropped : int;
  rejected : int;
  pending : int;
  consumed : int;
  box : Cv_interval.Box.t;
  stop : stop_reason;
  net : Cv_nn.Network.t;  (** current network (possibly fine-tuned) *)
  artifact : Cv_artifacts.Artifacts.t;  (** artifact for [box] and [net] *)
  cache_stats : Cv_artifacts.Cache.stats option;
}

(** [state_path ~dir] is where the loop state lives under a checkpoint
    directory. *)
val state_path : dir:string -> string

(** [load_state ~dir ~fingerprint] reads the loop state back, validating
    envelope, kind and network fingerprint; [Ok None] when no state file
    exists yet. *)
val load_state :
  dir:string ->
  fingerprint:string ->
  (persisted option, Cv_core.Runstate.resume_error) result

(** [run ?config ~net ~artifact ~source ()] runs the service loop until
    the source ends, [max_rounds] is reached, or [should_stop] fires.
    [artifact] must be a proof of the property over the monitored box
    for [net] (the monitor starts from [artifact.property.din], joined
    with the restored box when resuming). *)
val run :
  ?config:config ->
  net:Cv_nn.Network.t ->
  artifact:Cv_artifacts.Artifacts.t ->
  source:Source.t ->
  unit ->
  t
