(** Observation sources (see the interface). *)

let src = Logs.Src.create "cv.serve" ~doc:"Continuous verification service"

module Log = (val Logs.src_log src : Logs.LOG)

type pull = Burst of Cv_linalg.Vec.t list | Idle | Eof
type t = unit -> pull

let of_bursts bursts =
  let remaining = ref bursts in
  fun () ->
    match !remaining with
    | [] -> Eof
    | burst :: rest ->
      remaining := rest;
      Burst burst

let of_stream ?(burst = 8) stream =
  if burst < 1 then invalid_arg "Source.of_stream: burst must be >= 1";
  fun () ->
    let rec take n acc =
      if n = 0 then List.rev acc
      else
        match Cv_vehicle.Stream.next stream with
        | None -> List.rev acc
        | Some feats -> take (n - 1) (feats :: acc)
    in
    match take burst [] with [] -> Eof | items -> Burst items

let m_malformed = Cv_util.Metrics.counter "serve.events.malformed"

(* One NDJSON line; accepts [1,2] or {"features":[1,2]}. *)
let features_of_line line =
  let doc = Cv_util.Json.parse line in
  let arr =
    match doc with
    | Cv_util.Json.Obj _ -> Cv_util.Json.member "features" doc
    | other -> other
  in
  Cv_util.Json.float_array arr

let stdin_ndjson ?(poll = 0.05) ?(max_burst = 256) () =
  if max_burst < 1 then invalid_arg "Source.stdin_ndjson: max_burst must be >= 1";
  (* Raw-fd line reader: [input_line stdin] would buffer lines that
     [Unix.select] can then no longer see, stalling whole bursts behind
     the poll timeout. *)
  let partial = Buffer.create 4096 in
  let lines = Queue.create () in
  let eof = ref false in
  let chunk = Bytes.create 65536 in
  (* Reads once if data is ready within [timeout]; true when it makes
     progress (so the caller can slurp a burst with zero-timeout
     retries). *)
  let fill timeout =
    if !eof then false
    else
      match Unix.select [ Unix.stdin ] [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      | [], _, _ -> false
      | _ -> (
        match Unix.read Unix.stdin chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        | 0 ->
          eof := true;
          if Buffer.length partial > 0 then begin
            (* final line without a trailing newline *)
            Queue.add (Buffer.contents partial) lines;
            Buffer.clear partial
          end;
          false
        | n ->
          for i = 0 to n - 1 do
            match Bytes.get chunk i with
            | '\n' ->
              Queue.add (Buffer.contents partial) lines;
              Buffer.clear partial
            | c -> Buffer.add_char partial c
          done;
          true)
  in
  fun () ->
    if Queue.is_empty lines then begin
      if fill poll then while fill 0. do () done
    end
    else while fill 0. do () done;
    let rec take n acc =
      if n = 0 || Queue.is_empty lines then List.rev acc
      else
        let line = String.trim (Queue.pop lines) in
        if line = "" then take n acc
        else
          match features_of_line line with
          | feats -> take (n - 1) (feats :: acc)
          | exception Cv_util.Json.Error msg ->
            Cv_util.Metrics.incr m_malformed;
            Log.warn (fun m -> m "skipping malformed input line (%s)" msg);
            take n acc
    in
    match take max_burst [] with
    | [] -> if !eof && Queue.is_empty lines then Eof else Idle
    | items -> Burst items
