(** Bounded in-memory observation queue with explicit backpressure.

    Ingestion must never grow without bound while a verification round
    holds the loop: when the queue is full, {!push} drops the {e oldest}
    element (fresh evidence matters more to the monitor than stale) and
    counts the drop, so lost observations are always accounted for
    ([serve.events.dropped]) instead of silently vanishing. Safe for
    concurrent use. *)

type 'a t

(** [create ~capacity ()] — a queue holding at most [capacity] elements.
    Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

(** [push q x] enqueues [x]. On overflow the oldest element is dropped
    (and counted) to make room, and returned as [Some _]; [None] means
    nothing was lost. *)
val push : 'a t -> 'a -> 'a option

(** [pop q] dequeues the oldest element. *)
val pop : 'a t -> 'a option

(** [length q] is the current number of queued elements. *)
val length : 'a t -> int

(** [dropped q] is the total number of elements dropped so far. *)
val dropped : 'a t -> int

(** [capacity q] is the configured bound. *)
val capacity : 'a t -> int
