(** Weight-interval network abstraction — a lightweight alternative
    artifact for Prop. 6.

    The abstraction f̂ is the original topology with every parameter
    replaced by an interval [w ± slack]. Its semantics over an input box
    is computed by interval arithmetic, which over-approximates {e any}
    concrete network whose parameters lie inside the intervals. The
    reuse check for a fine-tuned f' is therefore a pure parameter
    containment test — no solver at all — at the price of a looser
    output reach than the structural abstraction in {!Merge}.

    This matches the continuous-engineering premise directly: when
    fine-tuning moves parameters by less than the slack budgeted at
    proof time, the old safety proof transfers to f' for free. *)

type ilayer = {
  w_lo : Cv_linalg.Mat.t;
  w_hi : Cv_linalg.Mat.t;
  b_lo : Cv_linalg.Vec.t;
  b_hi : Cv_linalg.Vec.t;
  act : Cv_nn.Activation.t;
}

type t = { layers : ilayer array }

(** [build ~slack net] budgets the same absolute [slack] on every
    parameter of [net]. *)
let build ~slack net =
  if slack < 0. then invalid_arg "Interval_abs.build: negative slack";
  { layers =
      Array.map
        (fun (l : Cv_nn.Layer.t) ->
          { w_lo = Cv_linalg.Mat.map (fun w -> w -. slack) l.Cv_nn.Layer.weights;
            w_hi = Cv_linalg.Mat.map (fun w -> w +. slack) l.Cv_nn.Layer.weights;
            b_lo = Array.map (fun b -> b -. slack) l.Cv_nn.Layer.bias;
            b_hi = Array.map (fun b -> b +. slack) l.Cv_nn.Layer.bias;
            act = l.Cv_nn.Layer.act })
        (Cv_nn.Network.layers net) }

(** [contains t net'] is the Prop. 6 reuse check: every parameter of
    [net'] lies within the abstraction's intervals. *)
let contains t net' =
  let layers' = Cv_nn.Network.layers net' in
  Array.length layers' = Array.length t.layers
  && Array.for_all2
       (fun il (l : Cv_nn.Layer.t) ->
         il.act = l.Cv_nn.Layer.act
         && Cv_linalg.Mat.rows il.w_lo = Cv_nn.Layer.out_dim l
         && Cv_linalg.Mat.cols il.w_lo = Cv_nn.Layer.in_dim l
         && (let ok = ref true in
             for i = 0 to Cv_linalg.Mat.rows il.w_lo - 1 do
               for j = 0 to Cv_linalg.Mat.cols il.w_lo - 1 do
                 let w = Cv_linalg.Mat.get l.Cv_nn.Layer.weights i j in
                 if
                   w < Cv_linalg.Mat.get il.w_lo i j
                   || w > Cv_linalg.Mat.get il.w_hi i j
                 then ok := false
               done;
               let b = l.Cv_nn.Layer.bias.(i) in
               if b < il.b_lo.(i) || b > il.b_hi.(i) then ok := false
             done;
             !ok))
       t.layers layers'

(* Interval affine: z_i = Σ_j [w_lo, w_hi]_{ij} · x_j + [b_lo, b_hi]_i,
   with x_j an interval. Bounds are tracked in two float accumulators
   with the four-product min/max inlined (same values as the historical
   [Interval.add]/[Interval.mul] chain) — no per-term interval records. *)
let interval_affine il (box : Cv_interval.Box.t) =
  let rows = Cv_linalg.Mat.rows il.w_lo in
  let cols = Cv_linalg.Mat.cols il.w_lo in
  let xlo = Cv_interval.Box.lower box and xhi = Cv_interval.Box.upper box in
  let any_empty = ref false in
  for j = 0 to cols - 1 do
    if xlo.(j) > xhi.(j) then any_empty := true
  done;
  if !any_empty then
    (* An empty input coordinate annihilates every row, as the
       historical [Interval.mul]/[add] chain did. *)
    Array.make rows Cv_interval.Interval.empty
  else
  let wld = Cv_linalg.Mat.unsafe_data il.w_lo in
  let whd = Cv_linalg.Mat.unsafe_data il.w_hi in
  Array.init rows (fun i ->
      let base = i * cols in
      let lo = ref il.b_lo.(i) and hi = ref il.b_hi.(i) in
      for j = 0 to cols - 1 do
        let wl = Array.unsafe_get wld (base + j)
        and wh = Array.unsafe_get whd (base + j) in
        let xl = Array.unsafe_get xlo j and xh = Array.unsafe_get xhi j in
        let p1 = wl *. xl and p2 = wl *. xh in
        let p3 = wh *. xl and p4 = wh *. xh in
        lo := !lo +. Float.min (Float.min p1 p2) (Float.min p3 p4);
        hi := !hi +. Float.max (Float.max p1 p2) (Float.max p3 p4)
      done;
      Cv_interval.Interval.make !lo !hi)

(** [output_box t din] is the interval-arithmetic reach of the
    abstraction over [din] — sound for every contained network. *)
let output_box t din =
  Array.fold_left
    (fun box il ->
      let pre = interval_affine il box in
      Array.map (Cv_nn.Activation.interval il.act) pre)
    din t.layers

(** [proves_safety t ~din ~dout] — one interval sweep. *)
let proves_safety t ~din ~dout =
  Cv_interval.Box.subset_tol (output_box t din) dout

(** [max_slack net net'] is the smallest slack that would make
    [contains (build ~slack net) net'] true — i.e. the parameter drift
    of a fine-tuning step. *)
let max_slack net net' = Cv_nn.Network.param_dist_inf net net'
