(** Shared unique-tmp + fsync + rename writer (see the interface for the
    atomicity and fault-injection contract). *)

(* Distinguishes concurrent writers targeting the same path from within
   one process (e.g. a checkpointer on a worker and the final artifact
   save): the pid alone is not unique enough. *)
let tmp_counter = Atomic.make 0

let write path contents =
  let contents =
    (* Fault injection: simulate a corrupted write (non-atomic writer or
       disk fault) by emitting a truncated document. *)
    if Cv_util.Fault.fires Cv_util.Fault.Truncate_artifact then
      String.sub contents 0 (String.length contents / 2)
    else contents
  in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     if Cv_util.Fault.fires Cv_util.Fault.Kill_mid_checkpoint then begin
       (* Simulate the process dying mid-write: half the bytes land in
          the tmp file, which is abandoned; the target path — and with
          it the previous document — stays intact. *)
       output_string oc (String.sub contents 0 (String.length contents / 2));
       close_out_noerr oc;
       raise (Cv_util.Fault.Injected "kill-mid-checkpoint (injected)")
     end;
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (match e with
     | Cv_util.Fault.Injected _ -> () (* a dead process cleans nothing *)
     | _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
     raise e);
  Sys.rename tmp path
