(** Content-addressed proof-artifact cache.

    Proof artifacts — state-abstraction chains, Lipschitz constants,
    network abstractions — are pure functions of (network contents,
    input box, build recipe). The cache keys them exactly that way:

    {v fingerprint × input-box hash × artifact kind v}

    where [fingerprint] is {!Artifacts.fingerprint} (a content hash of
    the network's weights, biases and activations), the box hash is a
    content hash of the box's canonical JSON, and [kind] names the
    recipe (e.g. ["abstractions:symint:w=0"], ["lipschitz:Linf"]).
    Content addressing gives invalidation for free: a fine-tuned network
    has a different fingerprint, so its keys can never collide with
    stale entries — a mismatched artifact is simply never found. It also
    gives prefix sharing for free: two networks with identical first [k]
    layers produce the same fingerprint for their layer-[k] prefix, so a
    prefix-level artifact built for one is found verbatim by the other.

    Lookups are {e single-flight}: when several concurrent queries miss
    on the same key, exactly one builds while the rest wait and then hit
    — N identical queries cost one build regardless of the concurrency
    level, and hit/miss accounting stays deterministic.

    The in-memory working set is bounded ([capacity] entries, LRU
    eviction); an optional directory backs it with durable entries
    written through the store's shared atomic writer
    ({!Atomic_write.write}) inside the checksummed envelope, so a crash
    mid-write never corrupts an entry and a corrupt/mismatched disk
    entry degrades to a rebuild, never a wrong artifact.

    Effort accounting: every lookup bumps the global metrics counters
    [cache.hits] / [cache.misses] / [cache.evictions] (surfaced by
    [--stats] and the batch report) as well as per-cache counters
    ({!stats}). *)

type t

type stats = { hits : int; misses : int; evictions : int }

(** [create ?capacity ?dir ()] — a fresh cache holding at most
    [capacity] entries in memory (default 256; at least 1), optionally
    backed by directory [dir] (created if missing). Safe for concurrent
    use from multiple domains. *)
val create : ?capacity:int -> ?dir:string -> unit -> t

(** [box_hash b] is the content hash of a box, for key building. *)
val box_hash : Cv_interval.Box.t -> string

(** [no_box] is the box-hash sentinel for box-independent artifacts
    (e.g. global Lipschitz constants). *)
val no_box : string

(** [find t ~fingerprint ~box_hash ~kind] looks an entry up (memory
    first, then the backing directory), counting a hit or a miss. Never
    waits on an in-flight build. *)
val find :
  t -> fingerprint:string -> box_hash:string -> kind:string ->
  Cv_util.Json.t option

(** [store t ~fingerprint ~box_hash ~kind payload] inserts an entry,
    evicting the least-recently-used one when over capacity, and
    persists it durably when the cache is disk-backed. Propagates
    writer exceptions (e.g. an injected kill): a failed write caches
    nothing. *)
val store :
  t -> fingerprint:string -> box_hash:string -> kind:string ->
  Cv_util.Json.t -> unit

(** [find_or_build t ~fingerprint ~box_hash ~kind build] returns the
    cached entry or builds, stores and returns it. Single-flight:
    concurrent callers missing on the same key wait for the one builder
    (their lookups count as hits — the build was skipped). A build
    failure releases the key and re-raises. *)
val find_or_build :
  t -> fingerprint:string -> box_hash:string -> kind:string ->
  (unit -> Cv_util.Json.t) -> Cv_util.Json.t

(** [boxes_or_build t ~fingerprint ~box_hash ~kind build] —
    {!find_or_build} specialised to box arrays (state-abstraction
    chains). A cached entry that fails to decode degrades to a rebuild;
    an exception raised by [build] itself (including
    {!Cv_util.Json.Error}) propagates as-is without running the build a
    second time. *)
val boxes_or_build :
  t -> fingerprint:string -> box_hash:string -> kind:string ->
  (unit -> Cv_interval.Box.t array) -> Cv_interval.Box.t array

(** [float_or_build t ~fingerprint ~box_hash ~kind build] —
    {!find_or_build} specialised to scalars (Lipschitz constants). *)
val float_or_build :
  t -> fingerprint:string -> box_hash:string -> kind:string ->
  (unit -> float) -> float

(** [stats t] snapshots this cache's own hit/miss/eviction counters. *)
val stats : t -> stats

(** [stats_to_json s] is [{"hits":..,"misses":..,"evictions":..}] — the
    [cache] member of the batch report. *)
val stats_to_json : stats -> Cv_util.Json.t

(** [size t] is the current number of in-memory entries. *)
val size : t -> int
