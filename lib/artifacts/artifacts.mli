(** Proof artifacts: what a completed verification leaves behind for
    reuse — state abstractions [S_1..S_n], Lipschitz constants, and
    provenance metadata — with JSON persistence. *)

type t = {
  property : Cv_verify.Property.t;  (** the proved property *)
  state_abstractions : Cv_interval.Box.t array option;
      (** [S_1..S_n], inductive per-layer boxes with [S_n ⊆ D_out] *)
  lipschitz : (string * float) list;
      (** named Lipschitz constants, e.g. [("Linf", ℓ)] *)
  split_cert : Cv_verify.Split_cert.t option;
      (** bisection-tree certificate of a splitting (ReluVal-style)
          proof, revalidatable for fine-tuned networks *)
  network_fingerprint : string;  (** hash of the proved network *)
  solver : string;  (** engine that established the proof *)
  solve_seconds : float;  (** original verification cost *)
}

(** [fingerprint net] is a stable hash of a network's architecture and
    parameters, used to detect artifact/network mismatches. The value
    carries a hashing-scheme version prefix (currently [v2:]), so a
    scheme change invalidates stored artifacts as an explicit version
    break rather than apparent network drift. *)
val fingerprint : Cv_nn.Network.t -> string

(** [make ?state_abstractions ?lipschitz ~property ~net ~solver
    ~solve_seconds ()] builds an artifact bundle. *)
val make :
  ?state_abstractions:Cv_interval.Box.t array ->
  ?lipschitz:(string * float) list ->
  ?split_cert:Cv_verify.Split_cert.t ->
  property:Cv_verify.Property.t ->
  net:Cv_nn.Network.t ->
  solver:string ->
  solve_seconds:float ->
  unit ->
  t

(** [matches t net] is true when the artifact was produced for exactly
    this network. *)
val matches : t -> Cv_nn.Network.t -> bool

(** [lipschitz_for t norm] looks up a stored constant by norm name. *)
val lipschitz_for : t -> string -> float option

(** [with_lipschitz t norm value] records one more constant. *)
val with_lipschitz : t -> string -> float -> t

(** [final_abstraction t] is [S_n] when state abstractions are
    present. *)
val final_abstraction : t -> Cv_interval.Box.t option

(** [to_json t] / [of_json j] encode the bundle; [of_json] raises
    {!Cv_util.Json.Error} on malformed documents. *)
val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t

(** [save_doc ~format path payload] writes any JSON payload inside the
    checksummed envelope (format version 2), atomically and durably:
    unique per-process/per-call temp file, fsync, then rename — a crash
    mid-write never leaves a half-written document under the real name,
    and concurrent writers to one path never clobber each other. Used
    for proof artifacts and search checkpoints alike. *)
val save_doc : format:string -> string -> Cv_util.Json.t -> unit

(** [save path t] writes the bundle via {!save_doc}. *)
val save : string -> t -> unit

(** Typed failure of {!load_result}. *)
type load_error =
  | File_error of string  (** the file cannot be opened or read *)
  | Corrupt of string
      (** malformed JSON, checksum mismatch, or schema violation *)

(** [load_error_message e] renders a one-line diagnosis. *)
val load_error_message : load_error -> string

(** [load_doc_result ~format path] reads a document written by
    {!save_doc}, validating version, declared format, and checksum, and
    returns the payload; bare (version-1) documents come back whole
    without integrity checking. *)
val load_doc_result :
  format:string -> string -> (Cv_util.Json.t, load_error) result

(** [load_result path] reads a bundle written by {!save}: the envelope
    checksum is validated, and all failures come back as typed errors
    instead of exceptions. Bare version-1 documents are accepted without
    integrity checking. *)
val load_result : string -> (t, load_error) result

(** [load path] reads a bundle, raising on any failure ([Sys_error] or
    {!Cv_util.Json.Error}) — prefer {!load_result}. *)
val load : string -> t
