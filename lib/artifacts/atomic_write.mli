(** The one atomic durable writer of the artifact store. Every durable
    document — proof bundles, run checkpoints, cache entries — goes
    through {!write}, so the unique-tmp / fsync / rename discipline (and
    its fault-injection points) lives in exactly one place. *)

(** [write path contents] writes [contents] to [path] atomically and
    durably: the bytes go to a temporary file {e unique to this process
    and call} in the same directory, are fsynced, and only then renamed
    over [path]. A crash mid-write never leaves a half-written document
    under the real name, and two concurrent writers never clobber each
    other's tmp file.

    Fault points polled per call: [Truncate_artifact] (the document is
    cut in half before writing — a stand-in for a non-atomic writer or a
    disk fault, caught later by the envelope checksum) and
    [Kill_mid_checkpoint] (the process "dies" after half the tmp bytes:
    the tmp file is abandoned and {!Cv_util.Fault.Injected} is raised;
    the target path stays intact). *)
val write : string -> string -> unit
