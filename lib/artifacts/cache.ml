(** Content-addressed proof-artifact cache (see the interface for the
    keying, single-flight and durability contract). *)

let cache_format = "contiver-cache"

(* Global effort accounting, alongside the per-cache counters: the
   batch scheduler and --stats read these. *)
let m_hits = Cv_util.Metrics.counter "cache.hits"
let m_misses = Cv_util.Metrics.counter "cache.misses"
let m_evictions = Cv_util.Metrics.counter "cache.evictions"

type stats = { hits : int; misses : int; evictions : int }

type entry = { payload : Cv_util.Json.t; mutable tick : int }

type t = {
  capacity : int;
  dir : string option;
  lock : Mutex.t;
  settled : Condition.t;  (** signalled when an in-flight build ends *)
  table : (string, entry) Hashtbl.t;
  building : (string, unit) Hashtbl.t;  (** keys with an in-flight build *)
  mutable clock : int;  (** LRU tick source, guarded by [lock] *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(capacity = 256) ?dir () =
  (match dir with
  | None -> ()
  | Some d -> (
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  { capacity = max 1 capacity;
    dir;
    lock = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 64;
    building = Hashtbl.create 8;
    clock = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0 }

let box_hash b = Digest.to_hex (Digest.string (Cv_util.Json.to_string (Cv_interval.Box.to_json b)))

let no_box = "-"

let key_string ~fingerprint ~box_hash ~kind =
  String.concat "\x00" [ fingerprint; box_hash; kind ]

(* Disk entries are named by the key digest and record the full key, so
   a load validates content addressing end to end: the envelope checksum
   guards the bytes, the recorded key guards against digest collisions
   and — the invalidation story — against any fingerprint mismatch. *)
let disk_path dir ~fingerprint ~box_hash ~kind =
  Filename.concat dir
    (Digest.to_hex (Digest.string (key_string ~fingerprint ~box_hash ~kind))
    ^ ".cache.json")

let disk_doc ~fingerprint ~box_hash ~kind payload =
  Cv_util.Json.Obj
    [ ( "key",
        Cv_util.Json.Obj
          [ ("fingerprint", Cv_util.Json.Str fingerprint);
            ("box_hash", Cv_util.Json.Str box_hash);
            ("kind", Cv_util.Json.Str kind) ] );
      ("value", payload) ]

let disk_load dir ~fingerprint ~box_hash ~kind =
  let path = disk_path dir ~fingerprint ~box_hash ~kind in
  if not (Sys.file_exists path) then None
  else
    match Artifacts.load_doc_result ~format:cache_format path with
    | Error _ -> None (* corrupt entries degrade to a rebuild *)
    | Ok doc -> (
      match
        let open Cv_util.Json in
        let k = member "key" doc in
        ( to_str (member "fingerprint" k),
          to_str (member "box_hash" k),
          to_str (member "kind" k),
          member "value" doc )
      with
      | f, b, k, v
        when String.equal f fingerprint
             && String.equal b box_hash && String.equal k kind ->
        Some v
      | _ -> None (* key mismatch: never serve a wrong artifact *)
      | exception Cv_util.Json.Error _ -> None)

let count_hit t =
  Atomic.incr t.hits;
  Cv_util.Metrics.incr m_hits

let count_miss t =
  Atomic.incr t.misses;
  Cv_util.Metrics.incr m_misses

(* All [locked_*] helpers assume [t.lock] is held. *)

let locked_touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let locked_find_memory t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
    locked_touch t e;
    Some e.payload

(* Evict least-recently-used entries down to capacity. The backing
   directory is not touched: disk is the durable store, memory the
   bounded working set — an evicted entry re-enters from disk as a
   hit. *)
let locked_evict t =
  while Hashtbl.length t.table > t.capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, tick) when tick <= e.tick -> acc
          | _ -> Some (key, e.tick))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      Atomic.incr t.evictions;
      Cv_util.Metrics.incr m_evictions
  done

let locked_insert t key payload =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.table key { payload; tick = t.clock };
  locked_evict t

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~fingerprint ~box_hash ~kind =
  let key = key_string ~fingerprint ~box_hash ~kind in
  let from_memory = with_lock t (fun () -> locked_find_memory t key) in
  match from_memory with
  | Some payload ->
    count_hit t;
    Some payload
  | None -> (
    match t.dir with
    | None ->
      count_miss t;
      None
    | Some dir -> (
      match disk_load dir ~fingerprint ~box_hash ~kind with
      | Some payload ->
        (* Promote into the working set: the build was skipped. *)
        with_lock t (fun () -> locked_insert t key payload);
        count_hit t;
        Some payload
      | None ->
        count_miss t;
        None))

let persist t ~fingerprint ~box_hash ~kind payload =
  match t.dir with
  | None -> ()
  | Some dir ->
    Artifacts.save_doc ~format:cache_format
      (disk_path dir ~fingerprint ~box_hash ~kind)
      (disk_doc ~fingerprint ~box_hash ~kind payload)

let store t ~fingerprint ~box_hash ~kind payload =
  (* Durability first: a failed write caches nothing, so memory never
     claims an entry the disk lost. *)
  persist t ~fingerprint ~box_hash ~kind payload;
  let key = key_string ~fingerprint ~box_hash ~kind in
  with_lock t (fun () -> locked_insert t key payload)

let find_or_build t ~fingerprint ~box_hash ~kind build =
  let key = key_string ~fingerprint ~box_hash ~kind in
  (* Returns [Ok payload] on a hit, [Error ()] once this caller holds
     the build slot for [key]. *)
  let rec claim () =
    match locked_find_memory t key with
    | Some payload -> Ok payload
    | None ->
      if Hashtbl.mem t.building key then begin
        (* Single-flight: somebody else is building this exact
           artifact; wait for them instead of duplicating the work. *)
        Condition.wait t.settled t.lock;
        claim ()
      end
      else begin
        Hashtbl.add t.building key ();
        Error ()
      end
  in
  match with_lock t claim with
  | Ok payload ->
    count_hit t;
    payload
  | Error () -> (
    let release () =
      with_lock t (fun () ->
          Hashtbl.remove t.building key;
          Condition.broadcast t.settled)
    in
    (* Holding the build slot; check the backing store before paying
       for a build. *)
    match
      match t.dir with
      | None -> None
      | Some dir -> disk_load dir ~fingerprint ~box_hash ~kind
    with
    | Some payload ->
      with_lock t (fun () -> locked_insert t key payload);
      release ();
      count_hit t;
      payload
    | None -> (
      count_miss t;
      match build () with
      | payload ->
        (match persist t ~fingerprint ~box_hash ~kind payload with
        | () -> with_lock t (fun () -> locked_insert t key payload)
        | exception e ->
          release ();
          raise e);
        release ();
        payload
      | exception e ->
        (* A failed build caches nothing; a waiter retries (and takes
           over the slot). *)
        release ();
        raise e))

(* ------------------------------------------------------------------ *)
(* Typed payloads                                                      *)
(* ------------------------------------------------------------------ *)

(* JSON round-trips are exact (the writer prints %.17g), so a decoded
   artifact is bit-identical to the built one — cache hits can never
   shift a verdict. A cached payload that fails to decode (foreign
   bytes under our key) degrades to a rebuild through the store. Only
   decode failures do: a [Json.Error] raised by [build] itself is a
   build failure and propagates as-is, never triggering a second build
   (which would skew the deterministic hit/miss accounting). The
   [Build_failed] wrapper keeps the two apart. *)

exception Build_failed of exn * Printexc.raw_backtrace

let rebuild_and_store t ~fingerprint ~box_hash ~kind ~encode build =
  let value = build () in
  store t ~fingerprint ~box_hash ~kind (encode value);
  value

(* [find_or_build] with a typed codec: [decode] failures on a cached
   payload rebuild; [build] failures re-raise the original exception. *)
let typed_or_build t ~fingerprint ~box_hash ~kind ~encode ~decode build =
  let guarded_build () =
    match encode (build ()) with
    | payload -> payload
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      raise (Build_failed (e, bt))
  in
  match decode (find_or_build t ~fingerprint ~box_hash ~kind guarded_build) with
  | v -> v
  | exception Build_failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | exception Cv_util.Json.Error _ ->
    rebuild_and_store t ~fingerprint ~box_hash ~kind ~encode build

let boxes_to_json boxes =
  Cv_util.Json.List (Array.to_list (Array.map Cv_interval.Box.to_json boxes))

let boxes_of_json j =
  Cv_util.Json.to_list j |> List.map Cv_interval.Box.of_json |> Array.of_list

let boxes_or_build t ~fingerprint ~box_hash ~kind build =
  typed_or_build t ~fingerprint ~box_hash ~kind ~encode:boxes_to_json
    ~decode:boxes_of_json build

let float_or_build t ~fingerprint ~box_hash ~kind build =
  typed_or_build t ~fingerprint ~box_hash ~kind
    ~encode:(fun v -> Cv_util.Json.Num v)
    ~decode:Cv_util.Json.to_float build

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stats t =
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions }

let stats_to_json (s : stats) =
  Cv_util.Json.Obj
    [ ("hits", Cv_util.Json.of_int s.hits);
      ("misses", Cv_util.Json.of_int s.misses);
      ("evictions", Cv_util.Json.of_int s.evictions) ]

let size t = with_lock t (fun () -> Hashtbl.length t.table)
