(** Proof artifacts: what a completed verification leaves behind for
    reuse.

    The paper assumes the original proof of [φ(f, D_in, D_out)] is
    stored in one or more of three forms — layer-wise state abstractions
    [S_1..S_n], a Lipschitz constant ℓ, and a network abstraction f̂.
    This module bundles them with provenance metadata and (de)serialises
    the bundle, so a verification session can be resumed in a later
    engineering iteration (the whole point of continuous
    verification). *)

type t = {
  property : Cv_verify.Property.t;  (** the proved property *)
  state_abstractions : Cv_interval.Box.t array option;
      (** [S_1..S_n], inductive per-layer boxes with [S_n ⊆ D_out] *)
  lipschitz : (string * float) list;
      (** named Lipschitz constants, e.g. [("Linf", ℓ)] *)
  split_cert : Cv_verify.Split_cert.t option;
      (** bisection-tree certificate of a splitting (ReluVal-style)
          proof, revalidatable for fine-tuned networks *)
  network_fingerprint : string;  (** hash of the proved network *)
  solver : string;  (** engine that established the proof *)
  solve_seconds : float;  (** original verification cost *)
}

(** [fingerprint net] is a stable hash of a network's architecture and
    parameters, used to detect artifact/network mismatches. Weights are
    hashed as raw IEEE-754 bit patterns — exact, and an order of
    magnitude faster than decimal formatting, which matters because the
    fingerprint is recomputed per query as the artifact-cache key.
    Layer shapes are part of the digest so two layers with the same
    flattened weight stream but different dimensions cannot collide.

    The result carries a scheme-version prefix ([v2:]): the raw-bits
    hash deliberately differs from the decimal-rendering scheme it
    replaced, so artifacts and checkpoints recorded under the old
    scheme fail to match and must be regenerated — the prefix makes
    that an explicit version break rather than apparent network
    drift. *)
let fingerprint net =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (l : Cv_nn.Layer.t) ->
      Buffer.add_string buf (Cv_nn.Activation.to_string l.Cv_nn.Layer.act);
      let w = l.Cv_nn.Layer.weights in
      let rows = Cv_linalg.Mat.rows w and cols = Cv_linalg.Mat.cols w in
      Buffer.add_int64_le buf (Int64.of_int rows);
      Buffer.add_int64_le buf (Int64.of_int cols);
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          Buffer.add_int64_le buf (Int64.bits_of_float (Cv_linalg.Mat.get w i j))
        done
      done;
      Array.iter
        (fun b -> Buffer.add_int64_le buf (Int64.bits_of_float b))
        l.Cv_nn.Layer.bias)
    (Cv_nn.Network.layers net);
  "v2:" ^ Digest.to_hex (Digest.bytes (Buffer.to_bytes buf))

(** [make ~property ~net ~solver ~solve_seconds ()] builds an artifact
    bundle; state abstractions and Lipschitz constants are optional and
    can be attached later. *)
let make ?state_abstractions ?(lipschitz = []) ?split_cert ~property ~net
    ~solver ~solve_seconds () =
  { property;
    state_abstractions;
    lipschitz;
    split_cert;
    network_fingerprint = fingerprint net;
    solver;
    solve_seconds }

(** [matches t net] is true when the artifact was produced for exactly
    this network. *)
let matches t net = String.equal t.network_fingerprint (fingerprint net)

(** [lipschitz_for t norm] looks up a stored constant by norm name. *)
let lipschitz_for t norm = List.assoc_opt norm t.lipschitz

(** [with_lipschitz t norm value] records one more constant. *)
let with_lipschitz t norm value =
  { t with lipschitz = (norm, value) :: List.remove_assoc norm t.lipschitz }

(** [final_abstraction t] is [S_n] when state abstractions are
    present. *)
let final_abstraction t =
  Option.map (fun s -> s.(Array.length s - 1)) t.state_abstractions

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let open Cv_util.Json in
  Obj
    [ ("format", Str "contiver-proof");
      ("version", of_int 1);
      ("property", Cv_verify.Property.to_json t.property);
      ( "state_abstractions",
        match t.state_abstractions with
        | None -> Null
        | Some s -> List (Array.to_list (Array.map Cv_interval.Box.to_json s)) );
      ( "lipschitz",
        Obj (List.map (fun (k, v) -> (k, Num v)) t.lipschitz) );
      ( "split_cert",
        match t.split_cert with
        | None -> Null
        | Some c -> Cv_verify.Split_cert.to_json c );
      ("network_fingerprint", Str t.network_fingerprint);
      ("solver", Str t.solver);
      ("solve_seconds", Num t.solve_seconds) ]

let of_json j =
  let open Cv_util.Json in
  (match member_opt "format" j with
  | Some (Str "contiver-proof") -> ()
  | _ -> raise (Error "Artifacts: not a contiver-proof document"));
  { property = Cv_verify.Property.of_json (member "property" j);
    state_abstractions =
      (match member "state_abstractions" j with
      | Null -> None
      | List boxes -> Some (Array.of_list (List.map Cv_interval.Box.of_json boxes))
      | _ -> raise (Error "Artifacts: bad state_abstractions"));
    lipschitz =
      (match member "lipschitz" j with
      | Obj kvs -> List.map (fun (k, v) -> (k, to_float v)) kvs
      | _ -> raise (Error "Artifacts: bad lipschitz"));
    split_cert =
      (match member_opt "split_cert" j with
      | None | Some Null -> None
      | Some c -> Some (Cv_verify.Split_cert.of_json c));
    network_fingerprint = to_str (member "network_fingerprint" j);
    solver = to_str (member "solver" j);
    solve_seconds = to_float (member "solve_seconds" j) }

(* On-disk envelope (format version 2): the version-1 document becomes
   the [payload] member, protected by an MD5 checksum of its canonical
   serialisation. Version-1 files (bare documents without an envelope)
   are still accepted on load, without integrity checking. *)
let envelope_version = 2

let checksum_of payload = Digest.to_hex (Digest.string (Cv_util.Json.to_string payload))

let envelope_doc ~format payload =
  Cv_util.Json.Obj
    [ ("format", Cv_util.Json.Str format);
      ("version", Cv_util.Json.of_int envelope_version);
      ("checksum", Cv_util.Json.Str (checksum_of payload));
      ("payload", payload) ]

(** [save_doc ~format path payload] writes any JSON payload inside the
    checksummed envelope through the store's one atomic durable writer
    ({!Atomic_write.write}: unique tmp file, fsync, rename — crash
    mid-write never damages the target, concurrent writers never clobber
    each other). *)
let save_doc ~format path payload =
  Atomic_write.write path (Cv_util.Json.to_string (envelope_doc ~format payload))

(** [save path t] writes the artifact bundle via {!save_doc}. *)
let save path t = save_doc ~format:"contiver-proof" path (to_json t)

type load_error =
  | File_error of string  (** the file cannot be opened or read *)
  | Corrupt of string
      (** malformed JSON, checksum mismatch, or schema violation *)

(** [load_error_message e] renders a one-line diagnosis. *)
let load_error_message = function
  | File_error msg -> msg
  | Corrupt msg -> msg

(** [load_doc_result ~format path] reads a document written by
    {!save_doc}, validating the envelope (version, declared format, MD5
    checksum) and returning the payload. Bare documents without an
    envelope come back whole, without integrity checking — the caller's
    schema parse is their only guard (the version-1 artifact
    behaviour). *)
let load_doc_result ~format path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (File_error msg)
  | content -> (
    match Cv_util.Json.parse content with
    | exception Cv_util.Json.Error msg ->
      Error (Corrupt (Printf.sprintf "%s: malformed JSON (%s)" path msg))
    | j -> (
      try
        match Cv_util.Json.member_opt "payload" j with
        | Some payload ->
          let version = Cv_util.Json.to_int (Cv_util.Json.member "version" j) in
          let declared =
            Cv_util.Json.to_str (Cv_util.Json.member "format" j)
          in
          if version <> envelope_version then
            Error
              (Corrupt
                 (Printf.sprintf "%s: unsupported envelope version %d" path
                    version))
          else if not (String.equal declared format) then
            Error
              (Corrupt
                 (Printf.sprintf "%s: expected a %s document, found %s" path
                    format declared))
          else begin
            let stored = Cv_util.Json.to_str (Cv_util.Json.member "checksum" j) in
            let actual = checksum_of payload in
            if not (String.equal stored actual) then
              Error
                (Corrupt
                   (Printf.sprintf
                      "%s: checksum mismatch (stored %s, computed %s)" path
                      stored actual))
            else Ok payload
          end
        | None ->
          (* Bare version-1 document. *)
          Ok j
      with Cv_util.Json.Error msg -> Error (Corrupt (path ^ ": " ^ msg))))

(** [load_result path] reads an artifact bundle written by {!save},
    returning a typed error instead of raising: [File_error] for I/O
    problems, [Corrupt] for malformed/truncated JSON, a checksum
    mismatch, or a schema violation. Bare version-1 documents (no
    envelope) are accepted without integrity checking. *)
let load_result path =
  match load_doc_result ~format:"contiver-proof" path with
  | Error _ as e -> e
  | Ok payload -> (
    try Ok (of_json payload)
    with Cv_util.Json.Error msg -> Error (Corrupt (path ^ ": " ^ msg)))

(** [load path] reads an artifact bundle, raising on any failure —
    prefer {!load_result} for typed error handling. *)
let load path =
  match load_result path with
  | Ok t -> t
  | Error (File_error msg) -> raise (Sys_error msg)
  | Error (Corrupt msg) -> raise (Cv_util.Json.Error msg)
