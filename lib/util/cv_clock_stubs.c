/* Monotonic time source for Cv_util.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and settimeofday, which is
   what the deadline layer needs: a wall-clock adjustment must neither
   spuriously expire nor extend a verification budget. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value cv_clock_monotonic_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                             + (int64_t)ts.tv_nsec));
}
