(** Supervised execution of flaky solver and analysis calls: bounded
    retry with exponential backoff for transient failures, structured
    fallback for exhausted ones. Deadline expiry and logic errors are
    never retried or swallowed. *)

type policy = {
  retries : int;  (** additional attempts after the first failure *)
  backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** backoff growth cap *)
}

(** 2 retries, 5 ms initial backoff, 100 ms cap. *)
val default_policy : policy

(** [retryable e] — is [e] a transient failure worth another attempt?
    True for {!Fault.Injected}, [Failure], [Out_of_memory] and
    [Stack_overflow]; false otherwise. *)
val retryable : exn -> bool

(** [run ?policy ~name f] runs [f], retrying transient failures.
    [Ok v] on success, [Error exn] when attempts are exhausted;
    non-retryable exceptions propagate. *)
val run : ?policy:policy -> name:string -> (unit -> 'a) -> ('a, exn) result

(** [protect ?policy ~name ~fallback f] is {!run} that maps exhausted
    retries to [fallback exn] instead of an [Error]. *)
val protect :
  ?policy:policy -> name:string -> fallback:(exn -> 'a) -> (unit -> 'a) -> 'a
