(** Wall-clock deadlines and fuel budgets for the solver stack.

    Every potentially long-running engine (simplex pivots, branch-and-
    bound nodes, abstract-interpretation layers, bisection splits) takes
    an optional [t] and polls it at its natural iteration boundary. When
    the budget is gone the engine either raises {!Expired} — caught at
    the verdict layer and turned into a structured [Unknown] — or
    returns its best incumbent bound, so a verification call always
    terminates within a caller-chosen budget. This is what lets the
    continuous-verification loop of the paper run in the field: a
    re-verification triggered by a monitor event must never hang the
    deployment.

    A value combines two budgets, either of which may be absent:
    - a wall-clock deadline (absolute time on the {e monotonic}
      timeline of {!Clock} — immune to NTP steps and suspend-time
      wall-clock adjustments);
    - a fuel counter (iteration cap), decremented by {!burn}.

    Clock reads cost a syscall, so hot loops poll through {!check_every}
    which samples the clock once per [mask+1] iterations. *)

(** Raised by {!check} / {!burn} once the budget is exhausted. *)
exception Expired of string

(** [now ()] is the deadline layer's time source: monotonic seconds
    from {!Clock} (seam — tests swap it via {!Clock.set_source}). *)
let now () = Clock.now ()

type t = {
  expires_at : float option;  (** absolute monotonic {!now} time *)
  seconds : float;  (** originally requested budget, for messages *)
  mutable fuel : int option;  (** remaining iterations, when capped *)
}

let no_budget = { expires_at = None; seconds = Float.infinity; fuel = None }

(** [make ~seconds] is a deadline [seconds] from now. A non-positive
    budget (or an armed {!Fault.Deadline_zero} fault) is already
    expired. *)
let make ~seconds =
  let seconds = if Fault.fires Fault.Deadline_zero then 0. else seconds in
  let expires_at =
    if seconds <= 0. then Float.neg_infinity else now () +. seconds
  in
  { expires_at = Some expires_at; seconds; fuel = None }

(** [of_fuel n] is a pure iteration budget: [n] calls to {!burn}. *)
let of_fuel n = { expires_at = None; seconds = Float.infinity; fuel = Some n }

(** [with_fuel t n] adds an iteration cap to an existing deadline. *)
let with_fuel t n = { t with fuel = Some n }

(** [remaining t] is the wall-clock budget left, in seconds
    ([infinity] when no deadline is set, negative once expired). *)
let remaining t =
  match t.expires_at with None -> Float.infinity | Some at -> at -. now ()

(** [expired t] polls both budgets without raising. *)
let expired t =
  (match t.fuel with Some f when f <= 0 -> true | _ -> false)
  || match t.expires_at with None -> false | Some at -> now () > at

(** [expired_opt d] is [expired] lifted to the [option] threaded through
    the solvers ([None] = unlimited). *)
let expired_opt = function None -> false | Some t -> expired t

(** [check t] raises {!Expired} when the budget is gone. *)
let check t =
  if expired t then
    raise
      (Expired
         (if t.seconds = Float.infinity then "iteration budget exhausted"
          else Printf.sprintf "wall-clock budget of %gs exhausted" t.seconds))

(** [check_opt d] is [check] on [Some t], a no-op on [None]. *)
let check_opt = function None -> () | Some t -> check t

(** [check_every ~mask iter d] polls the clock only when
    [iter land mask = 0] — cheap enough for per-pivot use. [mask] must
    be [2^k - 1]. *)
let check_every ~mask iter d =
  match d with
  | None -> ()
  | Some t -> if iter land mask = 0 then check t

(** [burn t] consumes one unit of fuel and then checks both budgets. *)
let burn t =
  (match t.fuel with Some f -> t.fuel <- Some (f - 1) | None -> ());
  check t

(** [burn_opt d] is [burn] on [Some t], a no-op on [None]. *)
let burn_opt = function None -> () | Some t -> burn t

(** [sub t ~seconds] is a child budget capped at [seconds] but never
    outliving [t] — used by escalation chains to give a cheap stage a
    slice of the remaining budget. *)
let sub t ~seconds =
  let child = make ~seconds in
  match t.expires_at with
  | None -> child
  | Some at ->
    (match child.expires_at with
    | Some cat when cat <= at -> child
    | _ -> { child with expires_at = Some at; seconds = t.seconds })
