(** Supervised execution of flaky solver and analysis calls.

    The solver stack can fail transiently — a spurious numerical error
    in a warm restart, an allocation failure under memory pressure, an
    injected chaos fault — and the continuous-verification loop must
    absorb those without losing a whole run. [run] retries a bounded
    number of times with exponential backoff, distinguishing transient
    failures (worth retrying) from logic errors and deadline expiry
    (re-raised immediately: retrying a budget overrun only digs the hole
    deeper, and retrying a programming bug hides it). [protect] adds a
    structured fallback so call sites degrade to a weaker-but-sound
    answer instead of crashing. *)

type policy = {
  retries : int;  (** additional attempts after the first failure *)
  backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** backoff growth cap *)
}

let default_policy = { retries = 2; backoff = 0.005; max_backoff = 0.1 }

let m_retries = Metrics.counter "supervisor.retries"
let m_recovered = Metrics.counter "supervisor.recovered"
let m_giveups = Metrics.counter "supervisor.giveups"

(** Which exceptions are worth another attempt. Injected faults,
    [Failure] (the solver stack's transient-error idiom), and resource
    exhaustion are transient; deadline expiry and [Invalid_argument] are
    not — the former is a budget decision, the latter a bug. *)
let retryable = function
  | Fault.Injected _ | Failure _ | Out_of_memory | Stack_overflow -> true
  | _ -> false

(** [run ?policy ~name f] runs [f], retrying transient failures up to
    [policy.retries] extra times with exponential backoff. Returns
    [Ok v] on success, [Error exn] when attempts are exhausted.
    Non-retryable exceptions propagate. *)
let run ?(policy = default_policy) ~name f =
  let rec attempt n backoff =
    match f () with
    | v ->
      if n > 0 then Metrics.incr m_recovered;
      Ok v
    | exception e when retryable e ->
      if n >= policy.retries then begin
        Metrics.incr m_giveups;
        Logs.warn (fun m ->
            m "supervisor: %s failed after %d attempt(s): %s" name (n + 1)
              (Printexc.to_string e));
        Error e
      end
      else begin
        Metrics.incr m_retries;
        Logs.debug (fun m ->
            m "supervisor: %s attempt %d failed (%s), retrying in %gs" name
              (n + 1) (Printexc.to_string e) backoff);
        if backoff > 0. then Unix.sleepf backoff;
        attempt (n + 1) (Float.min policy.max_backoff (backoff *. 2.))
      end
  in
  attempt 0 policy.backoff

(** [protect ?policy ~name ~fallback f] is [run] with a structured
    escape hatch: exhausted retries produce [fallback exn] instead of an
    [Error], so the caller always gets an answer — typically a
    [Containment.Unknown] carrying the crash message. *)
let protect ?policy ~name ~fallback f =
  match run ?policy ~name f with Ok v -> v | Error e -> fallback e
