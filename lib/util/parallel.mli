(** Parallel evaluation of independent verification subproblems with
    OCaml 5 domains (Propositions 2/4/5 decompose into independent
    per-layer checks; under parallelisation the wall-clock cost is the
    maximum subproblem time). *)

(** Default worker-domain count: the machine's recommendation, capped to
    8. *)
val default_domains : int

(** [map ?domains f xs] applies [f] to every element, evaluating up to
    [domains] elements concurrently; result order matches input order;
    exceptions from [f] are re-raised in the caller. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ?domains f xs] is {!map} over lists. *)
val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_results ?domains f xs] is {!map} with per-element crash
    isolation: an exception from [f xs.(i)] becomes [Error exn] at slot
    [i] instead of killing the batch. *)
val map_results :
  ?domains:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** [map_results_list ?domains f xs] is {!map_results} over lists. *)
val map_results_list :
  ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [exists ?domains pred xs] — exact result with early exit: once a
    witness is found, remaining elements are abandoned (never forced on
    the sequential path; no longer claimed by workers on the parallel
    path). With a witness, concurrent exceptions are suppressed with
    the rest of the abandoned work; otherwise the first exception is
    re-raised. *)
val exists : ?domains:int -> ('a -> bool) -> 'a array -> bool

(** [for_all ?domains pred xs] — early exit on the first
    counterexample; same abandonment contract as {!exists}. *)
val for_all : ?domains:int -> ('a -> bool) -> 'a array -> bool

(** [max_time ?domains fs] runs every thunk concurrently, timing each:
    [(results, max_individual_time, total_cpu_time)] — the paper's
    Table I footnote 3 accounting. *)
val max_time :
  ?domains:int -> (unit -> 'a) array -> 'a array * float * float
