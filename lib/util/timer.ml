(** Wall-clock timing used by the experiment harness to produce the
    Table I style "incremental time / original time" ratios. *)

(** [time f] runs [f ()] and returns [(result, elapsed_seconds)].
    Durations come from the monotonic {!Clock}, so a wall-clock step
    mid-measurement cannot produce negative or inflated timings. *)
let time f =
  let t0 = Clock.now () in
  let result = f () in
  let t1 = Clock.now () in
  (result, t1 -. t0)

(** [time_only f] runs [f ()] for effect and returns elapsed seconds. *)
let time_only f = snd (time f)

(** [repeat_median ~runs f] runs [f] [runs] times and returns the median
    elapsed time together with the last result; smooths scheduler noise
    in the reported ratios. *)
let repeat_median ~runs f =
  let times = Array.make (max 1 runs) 0. in
  let result = ref None in
  for i = 0 to max 1 runs - 1 do
    let r, dt = time f in
    result := Some r;
    times.(i) <- dt
  done;
  match !result with
  | Some r -> (r, Stats.median times)
  | None -> assert false
