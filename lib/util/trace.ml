(** Hierarchical timed spans (see the interface for the contract and
    JSON schema). *)

type span = {
  name : string;
  start_s : float;  (** relative to the trace epoch *)
  mutable attrs : (string * string) list;  (** reversed insertion order *)
  mutable dur_s : float;
  mutable children : span list;  (** reversed completion order *)
}

let enabled_flag = Atomic.make false

let epoch = Atomic.make 0.

(* Completed roots, newest first. Worker domains push here too, so the
   list is mutex-protected; pushes happen once per root span, not per
   span. *)
let roots : span list ref = ref []

let roots_mutex = Mutex.create ()

(* The open-span stack of the current domain, innermost first. *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enable () =
  Mutex.lock roots_mutex;
  roots := [];
  Mutex.unlock roots_mutex;
  Atomic.set epoch (Clock.now ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let enabled () = Atomic.get enabled_flag

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let t0 = Clock.now () in
    let span =
      { name;
        start_s = t0 -. Atomic.get epoch;
        attrs = List.rev attrs;
        dur_s = 0.;
        children = [] }
    in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := span :: !stack;
    let finish () =
      span.dur_s <- Clock.now () -. t0;
      (match !stack with
      | s :: rest when s == span -> stack := rest
      | _ -> () (* unbalanced exit via effects/exceptions: leave intact *));
      match parent with
      | Some p -> p.children <- span :: p.children
      | None ->
        let domain_id = (Domain.self () :> int) in
        if domain_id <> 0 then
          span.attrs <- ("domain", string_of_int domain_id) :: span.attrs;
        Mutex.lock roots_mutex;
        roots := span :: !roots;
        Mutex.unlock roots_mutex
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | span :: _ -> span.attrs <- (key, value) :: span.attrs

let rec span_to_json s =
  Json.Obj
    ([ ("name", Json.Str s.name);
       ("start_s", Json.Num s.start_s);
       ("dur_s", Json.Num s.dur_s) ]
    @ (match s.attrs with
      | [] -> []
      | attrs ->
        [ ( "attrs",
            Json.Obj (List.rev_map (fun (k, v) -> (k, Json.Str v)) attrs) ) ])
    @
    match s.children with
    | [] -> []
    | children ->
      [ ("children", Json.List (List.rev_map span_to_json children)) ])

let to_json () =
  Mutex.lock roots_mutex;
  let rs = !roots in
  Mutex.unlock roots_mutex;
  Json.Obj [ ("trace", Json.List (List.rev_map span_to_json rs)) ]
