(** Cadence-governed checkpoint sinks.

    A checkpoint sink couples a JSON writer with a wall-clock cadence:
    long-running searches call {!tick} at convenient safe points (the
    top of the branch-and-bound loop, between range queries) and the
    sink decides — against the monotonic {!Clock} — whether enough time
    has passed to pay for another snapshot. Layers compose with {!wrap}:
    the MILP loop produces a bare frontier snapshot, the range layer
    wraps it with per-output progress, the CLI wraps that in the
    checksummed checkpoint envelope; all layers share one cadence so a
    deep loop cannot spam the disk. *)

type t = {
  every : float;  (** minimum seconds between timed snapshots *)
  last : float ref;  (** {!Clock.now} of the last write, shared by wraps *)
  write : Json.t -> unit;
}

let m_saves = Metrics.counter "checkpoint.saves"

(** [create ~every write] makes a sink that persists snapshots via
    [write] at most every [every] seconds ([every <= 0.] fires on every
    tick — the test configuration). *)
let create ~every write = { every; last = ref (Clock.now ()); write }

(** [wrap t f] layers a JSON transformer under the sink: the returned
    sink carries the same cadence state, so a [tick] at any depth
    counts against the shared budget, but snapshots pass through [f]
    (typically embedding them in an outer progress document) before
    reaching the writer. *)
let wrap t f = { t with write = (fun j -> t.write (f j)) }

(** [save t mk] writes a snapshot unconditionally and resets the
    cadence — used at natural commit points (a completed subquery)
    where a durable record is worth the write regardless of timing. *)
let save t mk =
  t.last := Clock.now ();
  Metrics.incr m_saves;
  t.write (mk ())

(** [tick t mk] writes a snapshot if the cadence allows, forcing [mk]
    only when it will actually be written. *)
let tick t mk =
  if Clock.now () -. !(t.last) >= t.every then save t mk

(** [tick_opt t mk] — [tick] through an optional sink; the common call
    shape inside search loops that run with or without checkpointing. *)
let tick_opt t mk = Option.iter (fun t -> tick t mk) t

let save_opt t mk = Option.iter (fun t -> save t mk) t

(** [wrap_opt t f] — [wrap] through an optional sink. *)
let wrap_opt t f = Option.map (fun t -> wrap t f) t
