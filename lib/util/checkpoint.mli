(** Cadence-governed checkpoint sinks: long-running searches call
    {!tick} at safe points and the sink snapshots their JSON state at
    most once per cadence interval, against the monotonic {!Clock}.
    Layers compose with {!wrap} and share one cadence. *)

type t = {
  every : float;  (** minimum seconds between timed snapshots *)
  last : float ref;  (** {!Clock.now} of the last write, shared by wraps *)
  write : Json.t -> unit;
}

(** [create ~every write] — a sink writing at most every [every]
    seconds ([every <= 0.] fires on every tick). *)
val create : every:float -> (Json.t -> unit) -> t

(** [wrap t f] layers a snapshot transformer under the sink, sharing
    its cadence state. *)
val wrap : t -> (Json.t -> Json.t) -> t

(** [save t mk] writes unconditionally and resets the cadence. *)
val save : t -> (unit -> Json.t) -> unit

(** [tick t mk] writes if the cadence allows; [mk] is forced only when
    writing. *)
val tick : t -> (unit -> Json.t) -> unit

(** Optional-sink conveniences for search loops that run with or
    without checkpointing. *)
val tick_opt : t option -> (unit -> Json.t) -> unit

val save_opt : t option -> (unit -> Json.t) -> unit

val wrap_opt : t option -> (Json.t -> Json.t) -> t option
