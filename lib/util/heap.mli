(** Binary max-heap priority queue keyed by float priority.

    Replaces the O(n)-insert sorted-list frontier of best-first
    branch-and-bound: [push]/[pop] are O(log n), [peek] is O(1). Not
    thread-safe — confine a heap to one domain (the MILP driver owns
    its frontier; worker domains only solve node LPs). *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [size h] is the number of queued elements. *)
val size : 'a t -> int

(** [is_empty h] is [size h = 0]. *)
val is_empty : 'a t -> bool

(** [push h priority x] queues [x] with [priority]. *)
val push : 'a t -> float -> 'a -> unit

(** [peek h] is the entry with the largest priority, not removed. Ties
    are broken arbitrarily (heap order). *)
val peek : 'a t -> (float * 'a) option

(** [pop h] removes and returns the entry with the largest priority. *)
val pop : 'a t -> (float * 'a) option

(** [to_list h] is every queued [(priority, element)] in unspecified
    order, without disturbing the heap — the checkpoint snapshot of a
    branch-and-bound frontier. *)
val to_list : 'a t -> (float * 'a) list
