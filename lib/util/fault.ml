(** Fault injection for robustness testing.

    The continuous-verification loop must degrade gracefully when a
    solver dies, a deadline collapses to zero, or an artifact write is
    interrupted mid-flight. Those conditions are hard to provoke
    organically, so the modules involved poll this registry at the
    matching fault point and simulate the failure when the point is
    armed. Tier-1 tests arm points programmatically; operators can arm
    them for a whole run via the [CONTIVER_FAULTS] environment variable
    (comma-separated point specs, e.g.
    [CONTIVER_FAULTS=truncate-artifact,solver-failure:once,worker-crash:every=7]).

    The registry is global, mutable state — intended for tests and
    chaos drills, never for production configuration. *)

(** Raised by a fault hook standing in for an unexpected engine death
    (distinct from [Failure] so tests can assert the injected origin). *)
exception Injected of string

type point =
  | Solver_failure  (** simplex raises mid-solve, as on numerical death *)
  | Truncate_artifact  (** artifact writes stop halfway through *)
  | Deadline_zero  (** every new deadline is created already expired *)
  | Kill_mid_checkpoint
      (** the process dies halfway through writing a checkpoint: the tmp
          file is abandoned and the writer raises, leaving the previous
          checkpoint intact *)
  | Worker_crash  (** a parallel branch-and-bound worker domain dies *)
  | Spurious_solver_error
      (** the warm-restart path fails transiently; a retry succeeds *)
  | Alloc_failure  (** solver arena allocation fails, as on OOM *)

let all_points =
  [ Solver_failure; Truncate_artifact; Deadline_zero; Kill_mid_checkpoint;
    Worker_crash; Spurious_solver_error; Alloc_failure ]

(** [point_name p] / [point_of_string s] name fault points for the
    environment variable and log lines. *)
let point_name = function
  | Solver_failure -> "solver-failure"
  | Truncate_artifact -> "truncate-artifact"
  | Deadline_zero -> "deadline-zero"
  | Kill_mid_checkpoint -> "kill-mid-checkpoint"
  | Worker_crash -> "worker-crash"
  | Spurious_solver_error -> "spurious-solver-error"
  | Alloc_failure -> "alloc-failure"

let point_of_string s =
  List.find_opt (fun p -> String.equal (point_name p) s) all_points

(** How often an armed point fires when polled. [Always] fires on every
    poll (the historical behaviour), [Once] fires on the first poll then
    disarms itself, [Every n] fires on every [n]-th poll — the staple of
    chaos campaigns, where a fault must strike mid-run rather than at
    the first opportunity. *)
type mode = Always | Once | Every of int

let mode_name = function
  | Always -> "always"
  | Once -> "once"
  | Every n -> Printf.sprintf "every=%d" n

type state = { mode : mode; mutable polls : int; mutable fired : bool }

let armed : (point, state) Hashtbl.t = Hashtbl.create 8

(* The registry is polled from parallel worker domains (e.g.
   [Worker_crash] inside branch-and-bound dives); a single mutex keeps
   poll counting well-defined. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(** [enable ?mode p] / [disable p] arm and disarm a fault point. *)
let enable ?(mode = Always) p =
  (match mode with
  | Every n when n < 1 -> invalid_arg "Fault.enable: Every n requires n >= 1"
  | _ -> ());
  locked (fun () ->
      Hashtbl.replace armed p { mode; polls = 0; fired = false })

let disable p = locked (fun () -> Hashtbl.remove armed p)

(** [reset ()] disarms every point (tests call this in teardown). *)
let reset () = locked (fun () -> Hashtbl.reset armed)

(** [enabled p] is true when the point is armed and still live (a [Once]
    point that has already fired no longer counts). *)
let enabled p =
  locked (fun () ->
      match Hashtbl.find_opt armed p with
      | None -> None
      | Some st -> Some st)
  |> function
  | None -> false
  | Some st -> not (st.mode = Once && st.fired)

(** [fires p] is the consuming poll: true when the armed point strikes
    at this particular call site visit, advancing the point's internal
    poll counter. [Always] strikes every time, [Once] exactly once,
    [Every n] on every [n]-th poll. *)
let fires p =
  locked (fun () ->
      match Hashtbl.find_opt armed p with
      | None -> false
      | Some st -> (
        match st.mode with
        | Always -> true
        | Once ->
          if st.fired then false
          else begin
            st.fired <- true;
            true
          end
        | Every n ->
          st.polls <- st.polls + 1;
          st.polls mod n = 0))

(** [trip p] raises {!Injected} when [p] is armed and strikes on this
    poll; fault points that simulate a crash call this. *)
let trip p = if fires p then raise (Injected (point_name p ^ " (injected)"))

(** [with_fault ?mode p f] runs [f] with [p] armed, disarming it
    afterwards even on exceptions — the test-suite idiom. *)
let with_fault ?mode p f =
  enable ?mode p;
  Fun.protect ~finally:(fun () -> disable p) f

let parse_spec spec =
  match String.index_opt spec ':' with
  | None -> (spec, Some Always)
  | Some i ->
    let name = String.sub spec 0 i in
    let m = String.sub spec (i + 1) (String.length spec - i - 1) in
    let mode =
      if String.equal m "once" then Some Once
      else if String.equal m "always" then Some Always
      else
        match String.split_on_char '=' m with
        | [ "every"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> Some (Every n)
          | _ -> None)
        | _ -> None
    in
    (name, mode)

(** [init_from_env ()] arms the points listed in [CONTIVER_FAULTS]
    (specs [name], [name:once], [name:every=N]); unknown names or modes
    are ignored with a note on stderr. Called by the CLI at startup. *)
let init_from_env () =
  match Sys.getenv_opt "CONTIVER_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun item ->
           let item = String.trim item in
           if item <> "" then
             let name, mode = parse_spec item in
             match (point_of_string name, mode) with
             | Some p, Some mode -> enable ~mode p
             | _ ->
               Printf.eprintf "contiver: unknown fault spec %S ignored\n%!"
                 item)

(** [plan ~seed ~rounds ~points] draws a deterministic chaos campaign: a
    list of [rounds] fault sequences, each arming between one and three
    of [points] with randomly drawn modes. The same seed always yields
    the same campaign, so a failing round is reproducible from its seed
    alone. *)
let plan ~seed ~rounds ~points =
  if rounds < 0 then invalid_arg "Fault.plan: rounds must be non-negative";
  let points = Array.of_list points in
  if Array.length points = 0 then invalid_arg "Fault.plan: no points";
  let rng = Rng.create (0x6661756c (* "faul" *) lxor seed) in
  List.init rounds (fun _ ->
      let n = 1 + Rng.int rng (Int.min 3 (Array.length points)) in
      List.init n (fun _ ->
          let p = Rng.choice rng points in
          let mode =
            match Rng.int rng 3 with
            | 0 -> Always
            | 1 -> Once
            | _ -> Every (2 + Rng.int rng 6)
          in
          (p, mode))
      (* Arming the same point twice keeps the last spec — dedup so the
         round reads unambiguously in logs. *)
      |> List.fold_left
           (fun acc (p, m) ->
             if List.mem_assoc p acc then acc else (p, m) :: acc)
           []
      |> List.rev)
