(** Fault injection for robustness testing.

    The continuous-verification loop must degrade gracefully when a
    solver dies, a deadline collapses to zero, or an artifact write is
    interrupted mid-flight. Those conditions are hard to provoke
    organically, so the modules involved poll this registry at the
    matching fault point and simulate the failure when the point is
    armed. Tier-1 tests arm points programmatically; operators can arm
    them for a whole run via the [CONTIVER_FAULTS] environment variable
    (comma-separated point names, e.g.
    [CONTIVER_FAULTS=truncate-artifact,solver-failure]).

    The registry is global, mutable state — intended for tests and
    chaos drills, never for production configuration. *)

(** Raised by a fault hook standing in for an unexpected engine death
    (distinct from [Failure] so tests can assert the injected origin). *)
exception Injected of string

type point =
  | Solver_failure  (** simplex raises mid-solve, as on numerical death *)
  | Truncate_artifact  (** artifact writes stop halfway through *)
  | Deadline_zero  (** every new deadline is created already expired *)

let all_points = [ Solver_failure; Truncate_artifact; Deadline_zero ]

(** [point_name p] / [point_of_string s] name fault points for the
    environment variable and log lines. *)
let point_name = function
  | Solver_failure -> "solver-failure"
  | Truncate_artifact -> "truncate-artifact"
  | Deadline_zero -> "deadline-zero"

let point_of_string s =
  List.find_opt (fun p -> String.equal (point_name p) s) all_points

let armed : (point, unit) Hashtbl.t = Hashtbl.create 4

(** [enable p] / [disable p] arm and disarm a fault point. *)
let enable p = Hashtbl.replace armed p ()

let disable p = Hashtbl.remove armed p

(** [reset ()] disarms every point (tests call this in teardown). *)
let reset () = Hashtbl.reset armed

(** [enabled p] is true when the point is armed. *)
let enabled p = Hashtbl.mem armed p

(** [trip p] raises {!Injected} when [p] is armed; fault points that
    simulate a crash call this. *)
let trip p = if enabled p then raise (Injected (point_name p ^ " (injected)"))

(** [with_fault p f] runs [f] with [p] armed, disarming it afterwards
    even on exceptions — the test-suite idiom. *)
let with_fault p f =
  enable p;
  Fun.protect ~finally:(fun () -> disable p) f

(** [init_from_env ()] arms the points listed in [CONTIVER_FAULTS];
    unknown names are ignored with a note on stderr. Called by the CLI
    at startup. *)
let init_from_env () =
  match Sys.getenv_opt "CONTIVER_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun name ->
           let name = String.trim name in
           if name <> "" then
             match point_of_string name with
             | Some p -> enable p
             | None ->
               Printf.eprintf "contiver: unknown fault point %S ignored\n%!"
                 name)
