(** Wall-clock deadlines and fuel budgets for the solver stack.

    Engines take an optional [t] and poll it at their natural iteration
    boundary (simplex pivot, branch-and-bound node, abstract layer,
    bisection split); on exhaustion they raise {!Expired} — caught at
    the verdict layer and turned into a structured [Unknown] — or
    return their best incumbent bound. *)

(** Raised by {!check} / {!burn} once the budget is exhausted. The
    payload is a human-readable description of which budget ran out. *)
exception Expired of string

(** [now ()] is the deadline layer's time source: monotonic seconds
    from {!Clock}, immune to NTP steps and [settimeofday]. The origin
    is arbitrary — use differences only. Tests redirect it with
    {!Clock.set_source}. *)
val now : unit -> float

type t

(** A value with no budget at all: never expires. *)
val no_budget : t

(** [make ~seconds] is a deadline [seconds] from now on the monotonic
    {!now} timeline (a non-positive budget is already expired). The
    armed {!Fault.Deadline_zero} fault forces the budget to zero. *)
val make : seconds:float -> t

(** [of_fuel n] is a pure iteration budget: [n] calls to {!burn}. *)
val of_fuel : int -> t

(** [with_fuel t n] adds an iteration cap to an existing deadline. *)
val with_fuel : t -> int -> t

(** [remaining t] is the wall-clock budget left in seconds ([infinity]
    when no deadline is set, negative once expired). *)
val remaining : t -> float

(** [expired t] polls both budgets without raising. *)
val expired : t -> bool

(** [expired_opt d] is {!expired} lifted to the [option] threaded
    through the solvers ([None] = unlimited). *)
val expired_opt : t option -> bool

(** [check t] raises {!Expired} when the budget is gone. *)
val check : t -> unit

(** [check_opt d] is {!check} on [Some t], a no-op on [None]. *)
val check_opt : t option -> unit

(** [check_every ~mask iter d] polls the clock only when
    [iter land mask = 0]; [mask] must be [2^k - 1]. Cheap enough for
    per-pivot use in hot loops. *)
val check_every : mask:int -> int -> t option -> unit

(** [burn t] consumes one unit of fuel, then checks both budgets. *)
val burn : t -> unit

(** [burn_opt d] is {!burn} on [Some t], a no-op on [None]. *)
val burn_opt : t option -> unit

(** [sub t ~seconds] is a child budget capped at [seconds] but never
    outliving [t] — escalation chains use it to give one stage a slice
    of the remaining budget. *)
val sub : t -> seconds:float -> t
