(** Process-wide monotonic time source (see the interface for the
    contract). *)

external monotonic_ns : unit -> int64 = "cv_clock_monotonic_ns"

let default () = Int64.to_float (monotonic_ns ()) /. 1e9

(* An [Atomic] so installing a fake clock from a test is visible to
   worker domains spawned by [Parallel]. *)
let source : (unit -> float) Atomic.t = Atomic.make default

let now () = (Atomic.get source) ()

let set_source f = Atomic.set source f

let reset_source () = Atomic.set source default

let with_source f body =
  let prev = Atomic.get source in
  Atomic.set source f;
  Fun.protect ~finally:(fun () -> Atomic.set source prev) body
