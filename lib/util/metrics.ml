(** Named atomic counters and cumulative timers (see the interface for
    the contract and naming convention). *)

type counter = { c_name : string; cell : int Atomic.t }

type timer = { t_name : string; acc : float Atomic.t }

(* Registry creation is rare (module-initialisation time, first use of a
   name); reads and increments never touch the mutex. *)
let mutex = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let timers_tbl : (string, timer) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.add counters_tbl name c;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let timer name =
  locked (fun () ->
      match Hashtbl.find_opt timers_tbl name with
      | Some t -> t
      | None ->
        let t = { t_name = name; acc = Atomic.make 0. } in
        Hashtbl.add timers_tbl name t;
        t)

(* Float cells lack fetch_and_add: CAS loop (uncontended in practice —
   each engine owns its timers). *)
let add_seconds t s =
  let rec loop () =
    let cur = Atomic.get t.acc in
    if not (Atomic.compare_and_set t.acc cur (cur +. s)) then loop ()
  in
  loop ()

let time t f =
  let t0 = Clock.now () in
  Fun.protect ~finally:(fun () -> add_seconds t (Clock.now () -. t0)) f

let seconds t = Atomic.get t.acc

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters_tbl;
      Hashtbl.iter (fun _ t -> Atomic.set t.acc 0.) timers_tbl)

let sorted_of_tbl tbl get =
  locked (fun () -> Hashtbl.fold (fun _ v acc -> get v :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = sorted_of_tbl counters_tbl (fun c -> (c.c_name, value c))

let timers () = sorted_of_tbl timers_tbl (fun t -> (t.t_name, seconds t))

let to_json () =
  Json.Obj
    [ ( "counters",
        Json.Obj
          (List.filter_map
             (fun (name, v) ->
               if v = 0 then None else Some (name, Json.Num (float_of_int v)))
             (counters ())) );
      ( "timers",
        Json.Obj
          (List.filter_map
             (fun (name, s) -> if s = 0. then None else Some (name, Json.Num s))
             (timers ())) ) ]

(* Group rows by the engine prefix (text before the first '.'). *)
let engine_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let table () =
  let rows =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None else Some (name, Printf.sprintf "%d" v))
      (counters ())
    @ List.filter_map
        (fun (name, s) ->
          if s = 0. then None else Some (name, Printf.sprintf "%.6fs" s))
        (timers ())
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if rows = [] then ""
  else begin
    let buf = Buffer.create 512 in
    let width =
      List.fold_left (fun w (name, _) -> max w (String.length name)) 0 rows
    in
    let last_engine = ref "" in
    List.iter
      (fun (name, v) ->
        let engine = engine_of name in
        if engine <> !last_engine then begin
          if !last_engine <> "" then Buffer.add_char buf '\n';
          Buffer.add_string buf (Printf.sprintf "[%s]\n" engine);
          last_engine := engine
        end;
        Buffer.add_string buf (Printf.sprintf "  %-*s %s\n" width name v))
      rows;
    Buffer.contents buf
  end
