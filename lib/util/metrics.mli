(** Lightweight solver-stack metrics: named counters and cumulative
    timers, safe under {!Parallel} domains.

    Every engine increments its counters unconditionally — an increment
    is one atomic add, cheap enough for per-pivot use — so a run always
    has an exact account of where its effort went (simplex pivots,
    branch-and-bound nodes, abstract-domain invocations, bisection
    splits, falsifier samples, escalation rungs, strategy decisions).
    The CLI surfaces the registry as [--stats]; the bench harness
    snapshots it into the machine-readable perf trajectory.

    Naming convention: [<engine>.<quantity>], dot-separated, e.g.
    [lp.pivots], [milp.nodes], [domains.symint.calls],
    [verify.splits], [core.attempts]. The first segment groups the
    human-readable table per engine.

    Counters are interned: [counter name] returns the same cell for the
    same name, so modules can re-declare shared names freely. *)

type counter
type timer

(** [counter name] interns (creating on first use) the counter [name]. *)
val counter : string -> counter

(** [incr c] adds 1. *)
val incr : counter -> unit

(** [add c n] adds [n]. *)
val add : counter -> int -> unit

(** [value c] reads the current count. *)
val value : counter -> int

(** [timer name] interns (creating on first use) the cumulative timer
    [name]. *)
val timer : string -> timer

(** [add_seconds t s] accumulates [s] seconds. *)
val add_seconds : timer -> float -> unit

(** [time t f] runs [f ()], accumulating its monotonic wall-clock
    duration into [t] (also on exception). *)
val time : timer -> (unit -> 'a) -> 'a

(** [seconds t] reads the accumulated seconds. *)
val seconds : timer -> float

(** [reset ()] zeroes every counter and timer (the registry keeps its
    cells, so outstanding handles stay valid). *)
val reset : unit -> unit

(** [counters ()] snapshots all counters, sorted by name. *)
val counters : unit -> (string * int) list

(** [timers ()] snapshots all timers, sorted by name. *)
val timers : unit -> (string * float) list

(** [to_json ()] is [{"counters": {...}, "timers": {...}}] with only
    the non-zero entries — the schema consumed by the bench trajectory
    and documented in DESIGN.md. *)
val to_json : unit -> Json.t

(** [table ()] renders the non-zero entries as a human-readable table
    grouped by engine (the first dot-separated name segment) — the
    [--stats] output. Empty string when nothing was recorded. *)
val table : unit -> string
