(** Minimal self-contained JSON representation, printer and parser.

    The container is sealed (no yojson), so proof artifacts and model
    files (see {!Cv_artifacts} and {!Cv_nn.Serialize}) use this vendored
    implementation. It supports the full JSON value grammar with floats
    for all numbers, which is sufficient for our persistence needs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Raised by {!parse} and the accessor functions on malformed input. *)
exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.is_nan x then "\"nan\""
  else if x = Float.infinity then "\"inf\""
  else if x = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" x

(** [to_buffer buf j] appends compact JSON for [j] to [buf]. *)
let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num x -> Buffer.add_string buf (float_to_string x)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

(** [to_string j] renders compact (single-line) JSON. *)
let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error "expected %c at %d, got %c" c st.pos c'
  | None -> error "expected %c at %d, got end of input" c st.pos

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then (
    st.pos <- st.pos + n;
    value)
  else error "invalid literal at %d" st.pos

(* UTF-8-encode a Unicode scalar value (1–4 bytes). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else if cp < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error "unterminated string at %d" st.pos
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        (* Decode \uXXXX to UTF-8. Surrogate pairs combine into one
           astral code point; a lone surrogate becomes U+FFFD. *)
        let hex4 off =
          if off + 4 > String.length st.src then error "bad \\u escape";
          let code = ref 0 in
          for i = off to off + 3 do
            let d =
              match st.src.[i] with
              | '0' .. '9' as c -> Char.code c - Char.code '0'
              | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
              | _ -> error "bad \\u escape at %d" off
            in
            code := (!code lsl 4) lor d
          done;
          !code
        in
        let code = hex4 (st.pos + 1) in
        st.pos <- st.pos + 4;
        if code >= 0xD800 && code <= 0xDBFF then
          (* High surrogate: try to pair with an immediately following
             \uXXXX low surrogate. *)
          let src_len = String.length st.src in
          if
            st.pos + 2 < src_len
            && st.src.[st.pos + 1] = '\\'
            && st.src.[st.pos + 2] = 'u'
          then begin
            let low = hex4 (st.pos + 3) in
            if low >= 0xDC00 && low <= 0xDFFF then (
              let cp =
                0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
              in
              add_utf8 buf cp;
              st.pos <- st.pos + 6)
            else add_utf8 buf 0xFFFD
          end
          else add_utf8 buf 0xFFFD
        else if code >= 0xDC00 && code <= 0xDFFF then add_utf8 buf 0xFFFD
        else add_utf8 buf code
      | _ -> error "bad escape at %d" st.pos);
      advance st;
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error "invalid number %S at %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' ->
    let s = parse_string_raw st in
    (* Our writer encodes non-finite floats as strings. *)
    (match s with
    | "nan" -> Num Float.nan
    | "inf" -> Num Float.infinity
    | "-inf" -> Num Float.neg_infinity
    | _ -> Str s)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (
    advance st;
    List [])
  else
    let rec loop acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        loop (v :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (v :: acc))
      | _ -> error "expected , or ] at %d" st.pos
    in
    loop []

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (
    advance st;
    Obj [])
  else
    let rec loop acc =
      skip_ws st;
      let k = parse_string_raw st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        loop ((k, v) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((k, v) :: acc))
      | _ -> error "expected , or } at %d" st.pos
    in
    loop []

(** [parse s] parses a complete JSON document; raises {!Error} on
    malformed input or trailing garbage. *)
let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error "trailing garbage at %d" st.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

(** [member key j] looks up [key] in an object; raises {!Error} when [j]
    is not an object or the key is absent. *)
let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> error "missing key %S" key)
  | _ -> error "not an object (looking up %S)" key

(** [member_opt key j] is [Some v] when [j] is an object containing
    [key]. *)
let member_opt key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(** [to_float j] extracts a number. *)
let to_float = function Num x -> x | _ -> error "expected number"

(** [to_int j] extracts a number and truncates it to an integer. *)
let to_int = function Num x -> int_of_float x | _ -> error "expected int"

(** [to_str j] extracts a string. *)
let to_str = function Str s -> s | _ -> error "expected string"

(** [to_bool j] extracts a boolean. *)
let to_bool = function Bool b -> b | _ -> error "expected bool"

(** [to_list j] extracts the elements of an array. *)
let to_list = function List xs -> xs | _ -> error "expected list"

(** [float_array j] extracts a JSON array of numbers as a float array. *)
let float_array j = to_list j |> List.map to_float |> Array.of_list

(** [of_float_array a] encodes a float array as a JSON array. *)
let of_float_array a = List (Array.to_list a |> List.map (fun x -> Num x))

(** [of_int n] encodes an integer. *)
let of_int n = Num (float_of_int n)
