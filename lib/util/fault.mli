(** Fault injection for robustness testing: a global registry of
    armable failure points polled by the solver stack and the artifact
    store. Intended for tests and chaos drills. *)

(** Raised by a fault hook standing in for an unexpected engine death. *)
exception Injected of string

type point =
  | Solver_failure  (** simplex raises mid-solve, as on numerical death *)
  | Truncate_artifact  (** artifact writes stop halfway through *)
  | Deadline_zero  (** every new deadline is created already expired *)
  | Kill_mid_checkpoint
      (** checkpoint writes die halfway: tmp abandoned, target intact *)
  | Worker_crash  (** a parallel branch-and-bound worker domain dies *)
  | Spurious_solver_error  (** transient warm-restart failure *)
  | Alloc_failure  (** solver arena allocation fails, as on OOM *)

(** All known fault points, for campaign planners and documentation. *)
val all_points : point list

(** How often an armed point fires when polled: every poll, exactly
    once, or on every [n]-th poll. *)
type mode = Always | Once | Every of int

(** [mode_name m] renders a mode the way [CONTIVER_FAULTS] spells it
    ([always], [once], [every=N]). *)
val mode_name : mode -> string

(** [point_name p] / [point_of_string s] name fault points for the
    [CONTIVER_FAULTS] environment variable and log lines. *)
val point_name : point -> string

val point_of_string : string -> point option

(** [enable ?mode p] / [disable p] arm and disarm a fault point
    (default mode [Always]). *)
val enable : ?mode:mode -> point -> unit

val disable : point -> unit

(** [reset ()] disarms every point. *)
val reset : unit -> unit

(** [enabled p] is true when the point is armed and still live. *)
val enabled : point -> bool

(** [fires p] is the consuming poll: true when the armed point strikes
    at this visit, advancing the point's poll counter. *)
val fires : point -> bool

(** [trip p] raises {!Injected} when [p] strikes on this poll. *)
val trip : point -> unit

(** [with_fault ?mode p f] runs [f] with [p] armed, disarming it
    afterwards even on exceptions. *)
val with_fault : ?mode:mode -> point -> (unit -> 'a) -> 'a

(** [init_from_env ()] arms the points listed in the comma-separated
    [CONTIVER_FAULTS] environment variable (specs [name], [name:once],
    [name:every=N]); unknown specs are reported on stderr and
    ignored. *)
val init_from_env : unit -> unit

(** [plan ~seed ~rounds ~points] draws a deterministic chaos campaign:
    [rounds] fault sequences, each arming one to three of [points] with
    randomly drawn modes. Same seed, same campaign. *)
val plan :
  seed:int -> rounds:int -> points:point list -> (point * mode) list list
