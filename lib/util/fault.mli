(** Fault injection for robustness testing: a global registry of
    armable failure points polled by the solver stack and the artifact
    store. Intended for tests and chaos drills. *)

(** Raised by a fault hook standing in for an unexpected engine death. *)
exception Injected of string

type point =
  | Solver_failure  (** simplex raises mid-solve, as on numerical death *)
  | Truncate_artifact  (** artifact writes stop halfway through *)
  | Deadline_zero  (** every new deadline is created already expired *)

(** [point_name p] / [point_of_string s] name fault points for the
    [CONTIVER_FAULTS] environment variable and log lines. *)
val point_name : point -> string

val point_of_string : string -> point option

(** [enable p] / [disable p] arm and disarm a fault point. *)
val enable : point -> unit

val disable : point -> unit

(** [reset ()] disarms every point. *)
val reset : unit -> unit

(** [enabled p] is true when the point is armed. *)
val enabled : point -> bool

(** [trip p] raises {!Injected} when [p] is armed. *)
val trip : point -> unit

(** [with_fault p f] runs [f] with [p] armed, disarming it afterwards
    even on exceptions. *)
val with_fault : point -> (unit -> 'a) -> 'a

(** [init_from_env ()] arms the points listed in the comma-separated
    [CONTIVER_FAULTS] environment variable; unknown names are reported
    on stderr and ignored. *)
val init_from_env : unit -> unit
