type 'a t = {
  mutable prio : float array;
  mutable data : 'a array;
  mutable len : int;
}

let create () = { prio = [||]; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.prio in
  if h.len = cap then begin
    let cap' = max 16 (2 * cap) in
    let prio' = Array.make cap' 0. in
    let data' = Array.make cap' x in
    Array.blit h.prio 0 prio' 0 h.len;
    Array.blit h.data 0 data' 0 h.len;
    h.prio <- prio';
    h.data <- data'
  end

let swap h i j =
  let p = h.prio.(i) and d = h.data.(i) in
  h.prio.(i) <- h.prio.(j);
  h.data.(i) <- h.data.(j);
  h.prio.(j) <- p;
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(parent) < h.prio.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = if l < h.len && h.prio.(l) > h.prio.(i) then l else i in
  let largest =
    if r < h.len && h.prio.(r) > h.prio.(largest) then r else largest
  in
  if largest <> i then begin
    swap h i largest;
    sift_down h largest
  end

let push h priority x =
  grow h x;
  h.prio.(h.len) <- priority;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some (h.prio.(0), h.data.(0))

let to_list h = List.init h.len (fun i -> (h.prio.(i), h.data.(i)))

let pop h =
  if h.len = 0 then None
  else begin
    let p = h.prio.(0) and d = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (p, d)
  end
