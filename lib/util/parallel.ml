(** Parallel evaluation of independent verification subproblems.

    The paper stresses that the sufficient conditions of Propositions 2,
    4 and 5 decompose into independent per-layer subproblems, so the
    wall-clock cost under parallelisation is the maximum subproblem time
    rather than the sum. We realise this with OCaml 5 domains. *)

(** Number of worker domains to use by default: the machine's suggested
    domain count, capped to 8 so the harness behaves on small
    containers. *)
let default_domains = min 8 (Domain.recommended_domain_count ())

(** [map ?domains f xs] applies [f] to every element of [xs], evaluating
    up to [domains] elements concurrently. Order of results matches the
    input order. Exceptions raised by [f] are re-raised in the caller. *)
let map ?(domains = default_domains) f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if domains <= 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f xs.(i))
           with exn ->
             (* First failure wins; remaining work is abandoned. *)
             ignore (Atomic.compare_and_set failure None (Some exn)));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with Some exn -> raise exn | None -> ());
    Array.map
      (function Some r -> r | None -> invalid_arg "Parallel.map: missing result")
      results
  end

(** [map_list ?domains f xs] is {!map} over lists. *)
let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))

(** [map_results ?domains f xs] is {!map} with per-element crash
    isolation: an exception from [f xs.(i)] becomes [Error exn] at slot
    [i] instead of killing the whole batch — one poisoned subproblem
    must not take down its siblings. *)
let map_results ?domains f xs =
  map ?domains (fun x -> try Ok (f x) with exn -> Error exn) xs

(** [map_results_list ?domains f xs] is {!map_results} over lists. *)
let map_results_list ?domains f xs =
  Array.to_list (map_results ?domains f (Array.of_list xs))

(** [exists ?domains pred xs] checks whether any element satisfies
    [pred], evaluating elements concurrently with early exit: once a
    witness is found, remaining elements are abandoned — workers stop
    claiming new indices (an element already being evaluated on another
    domain still runs to completion). When the witness settles the
    answer, a concurrently raised exception is suppressed along with
    the rest of the abandoned work; with no witness, the first
    exception is re-raised in the caller. *)
let exists ?(domains = default_domains) pred xs =
  let n = Array.length xs in
  if n = 0 then false
  else if domains <= 1 || n = 1 then begin
    (* Sequential path short-circuits too: elements after the witness
       are never forced. *)
    let rec go i = i < n && (pred xs.(i) || go (i + 1)) in
    go 0
  end
  else begin
    let found = Atomic.make false in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        if (not (Atomic.get found)) && Atomic.get failure = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try if pred xs.(i) then Atomic.set found true
             with exn ->
               ignore (Atomic.compare_and_set failure None (Some exn)));
            loop ()
          end
        end
      in
      loop ()
    in
    let spawned =
      Array.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Atomic.get found
    || (match Atomic.get failure with Some exn -> raise exn | None -> false)
  end

(** [for_all ?domains pred xs] checks whether every element satisfies
    [pred], evaluating elements concurrently with early exit on the
    first counterexample (same abandonment contract as {!exists}). *)
let for_all ?domains pred xs =
  not (exists ?domains (fun x -> not (pred x)) xs)

(** [max_time ?domains fs] runs every thunk in [fs] concurrently, timing
    each, and returns [(results, max_individual_time, total_cpu_time)].
    This mirrors the paper's Table I footnote: under full parallelisation
    the reported SVbTV time is the {e maximum} subproblem time. *)
let max_time ?domains fs =
  let timed = map ?domains (fun f -> Timer.time f) fs in
  let results = Array.map fst timed in
  let times = Array.map snd timed in
  let max_t = Array.fold_left Float.max 0. times in
  let sum_t = Array.fold_left ( +. ) 0. times in
  (results, max_t, sum_t)
