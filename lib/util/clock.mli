(** The process-wide time source behind deadlines, timers and trace
    spans.

    [now] reads CLOCK_MONOTONIC (via a vendored C stub), so budget
    arithmetic is immune to NTP steps, [settimeofday] and suspend-time
    wall-clock adjustments. The origin is arbitrary (boot time on
    Linux): values are only meaningful as differences.

    The source is a seam: tests install a fake clock with {!set_source}
    to drive deadline expiry deterministically. *)

(** [now ()] is the current monotonic time in seconds (arbitrary
    origin; use differences only). *)
val now : unit -> float

(** [set_source f] replaces the time source — test seam. The
    replacement must be monotonic (non-decreasing) for deadline
    semantics to hold. *)
val set_source : (unit -> float) -> unit

(** [reset_source ()] restores the default CLOCK_MONOTONIC source. *)
val reset_source : unit -> unit

(** [with_source f body] runs [body] under the fake clock [f] and
    restores the previous source afterwards, exception-safe. *)
val with_source : (unit -> float) -> (unit -> 'a) -> 'a
