(** Hierarchical timed spans over the solver stack, with a JSON sink.

    A span covers one dynamic region — a verification run, one
    escalation rung, one containment query, one strategy attempt — and
    nests: a span opened while another is active on the same domain
    becomes its child. Timing uses the monotonic {!Clock}, so spans are
    immune to wall-clock steps.

    Tracing is off by default and {!with_span} is a plain call to its
    body then (no allocation, one atomic read), so instrumentation can
    stay in place permanently. The CLI's [--trace-json FILE] enables it
    for the run and writes {!to_json} to [FILE].

    Domain behaviour: the current-span context is per-domain
    (domain-local storage). Spans opened on a {!Parallel} worker domain
    have no ambient parent there and are recorded as additional roots,
    tagged with their domain id.

    JSON schema (documented in DESIGN.md):
    {v
    {"trace": [span*]}
    span = {"name": string, "start_s": num, "dur_s": num,
            "attrs": {string: string, ...},   (absent when empty)
            "children": [span*]}              (absent when empty)
    v}
    [start_s] is relative to the {!enable} call. *)

(** [enable ()] clears any previous trace and starts recording, with
    the epoch set to now. *)
val enable : unit -> unit

(** [disable ()] stops recording (the collected spans remain readable
    until the next {!enable}). *)
val disable : unit -> unit

(** [enabled ()] is true while recording. *)
val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f ()]; while tracing, the region is
    recorded as a span (closed also on exception). *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [add_attr key value] attaches an attribute to the innermost open
    span of the calling domain, if any — lets a region record data only
    known mid-flight (the chosen engine, a verdict). No-op when
    tracing is off or no span is open. *)
val add_attr : string -> string -> unit

(** [to_json ()] is the completed span forest (open spans are not
    included). *)
val to_json : unit -> Json.t
