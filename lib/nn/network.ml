(** Feed-forward networks as layer sequences — the object of
    verification.

    A network [f = g_n ⊗ … ⊗ g_1] is a non-empty array of layers whose
    dimensions chain. Slicing helpers ([prefix], [suffix], [slice])
    extract the sub-networks that Propositions 1, 2, 4 and 5 verify
    locally. *)

type t = { layers : Layer.t array }

(** [make layers] validates chaining and builds a network. *)
let make layers =
  if Array.length layers = 0 then invalid_arg "Network.make: no layers";
  for i = 0 to Array.length layers - 2 do
    if Layer.out_dim layers.(i) <> Layer.in_dim layers.(i + 1) then
      invalid_arg
        (Printf.sprintf "Network.make: layer %d out %d <> layer %d in %d" i
           (Layer.out_dim layers.(i))
           (i + 1)
           (Layer.in_dim layers.(i + 1)))
  done;
  { layers = Array.copy layers }

(** [of_list layers] is {!make} on a list. *)
let of_list layers = make (Array.of_list layers)

(** [layers net] is the layer array (copy). *)
let layers net = Array.copy net.layers

(** [layer net i] is the [i]-th layer (0-based). *)
let layer net i = net.layers.(i)

(** [num_layers net] is [n], the number of layers. *)
let num_layers net = Array.length net.layers

(** [in_dim net] is the input dimension of the whole network. *)
let in_dim net = Layer.in_dim net.layers.(0)

(** [out_dim net] is the output dimension of the whole network. *)
let out_dim net = Layer.out_dim net.layers.(Array.length net.layers - 1)

(** [num_params net] is the total parameter count. *)
let num_params net =
  Array.fold_left (fun acc l -> acc + Layer.num_params l) 0 net.layers

(** [num_neurons net] is the total hidden+output neuron count. *)
let num_neurons net =
  Array.fold_left (fun acc l -> acc + Layer.out_dim l) 0 net.layers

(** [layer_dims net] is [in_dim; out_dim of each layer] — the shape
    vector printed by [Describe]. *)
let layer_dims net =
  in_dim net :: List.map Layer.out_dim (Array.to_list net.layers)

(** [prepared net] is the per-layer kernel-ready array (memoized per
    layer value — see {!Layer.prepare}; steady-state cost is one table
    lookup per layer). *)
let prepared net = Array.map Layer.prepare net.layers

(** [eval net x] runs a forward pass. *)
let eval net x = Array.fold_left (fun acc l -> Layer.eval l acc) x net.layers

(** [eval_trace net x] runs a forward pass and returns the output of
    every layer, i.e. the concrete values the state abstractions
    [S_1..S_n] must contain. Element [i] is the output of layer [i]. *)
let eval_trace net x =
  let n = Array.length net.layers in
  let trace = Array.make n [||] in
  let acc = ref x in
  for i = 0 to n - 1 do
    acc := Layer.eval net.layers.(i) !acc;
    trace.(i) <- !acc
  done;
  trace

(** [prefix net k] is the sub-network of the first [k >= 1] layers
    ([g_k ⊗ … ⊗ g_1]). *)
let prefix net k =
  if k < 1 || k > Array.length net.layers then invalid_arg "Network.prefix";
  { layers = Array.sub net.layers 0 k }

(** [suffix net k] is the sub-network from layer [k] (0-based) to the
    end ([g_n ⊗ … ⊗ g_{k+1}] in paper numbering). *)
let suffix net k =
  let n = Array.length net.layers in
  if k < 0 || k >= n then invalid_arg "Network.suffix";
  { layers = Array.sub net.layers k (n - k) }

(** [slice net ~from_ ~to_] is layers [from_ .. to_ - 1] (0-based,
    half-open): the local subproblem networks of Propositions 2/4/5. *)
let slice net ~from_ ~to_ =
  let n = Array.length net.layers in
  if from_ < 0 || to_ > n || from_ >= to_ then invalid_arg "Network.slice";
  { layers = Array.sub net.layers from_ (to_ - from_) }

(** [compose a b] is the network running [a] then [b]. *)
let compose a b =
  if out_dim a <> in_dim b then invalid_arg "Network.compose: dims";
  { layers = Array.append a.layers b.layers }

(** [same_shape a b] is true when both networks have identical layer
    dimensions and activations — the precondition for parameter-wise
    comparison of [f] and its fine-tuned [f']. *)
let same_shape a b =
  Array.length a.layers = Array.length b.layers
  && Array.for_all2
       (fun (la : Layer.t) (lb : Layer.t) ->
         Layer.in_dim la = Layer.in_dim lb
         && Layer.out_dim la = Layer.out_dim lb
         && la.Layer.act = lb.Layer.act)
       a.layers b.layers

(** [param_dist_inf a b] is the max absolute parameter difference across
    all layers; quantifies how far a fine-tuned [f'] drifted from [f]. *)
let param_dist_inf a b =
  if not (same_shape a b) then invalid_arg "Network.param_dist_inf: shape";
  Array.fold_left Float.max 0.
    (Array.map2 Layer.param_dist_inf a.layers b.layers)

(** [map_layers f net] rebuilds the network with [f] applied to each
    layer (shape-preserving uses only). *)
let map_layers f net = make (Array.map f net.layers)

(** [random ?rng ~dims ~act ()] draws a random MLP with hidden activation
    [act] and [Identity] output; [dims] lists all layer widths including
    input and output, e.g. [[4; 8; 8; 1]]. *)
let random ?rng ~dims ~act () =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 23 in
  match dims with
  | _ :: _ :: _ ->
    let pairs = List.combine (List.filteri (fun i _ -> i < List.length dims - 1) dims)
                              (List.tl dims) in
    let n = List.length pairs in
    let layers =
      List.mapi
        (fun i (din, dout) ->
          let a = if i = n - 1 then Activation.Identity else act in
          Layer.random ~rng ~in_dim:din ~out_dim:dout a)
        pairs
    in
    of_list layers
  | _ -> invalid_arg "Network.random: need at least 2 dims"

(** [to_json net] encodes the network. *)
let to_json net =
  Cv_util.Json.Obj
    [ ("layers",
       Cv_util.Json.List (Array.to_list (Array.map Layer.to_json net.layers))) ]

(** [of_json j] decodes a network written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  member "layers" j |> to_list |> List.map Layer.of_json |> of_list
