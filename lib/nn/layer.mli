(** One fully-connected layer: [x ↦ act (W x + b)] — the paper's
    [g_k]. *)

type t = {
  weights : Cv_linalg.Mat.t;  (** [out_dim × in_dim] *)
  bias : Cv_linalg.Vec.t;  (** [out_dim] *)
  act : Activation.t;
}

(** [make weights bias act] validates shapes and builds a layer. *)
val make : Cv_linalg.Mat.t -> Cv_linalg.Vec.t -> Activation.t -> t

val in_dim : t -> int

val out_dim : t -> int

(** [num_params l] counts weights plus biases. *)
val num_params : t -> int

(** [pre_activation l x] is [W x + b] (the neuron values the MILP
    encoder constrains). *)
val pre_activation : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t

(** [eval l x] is the layer output [act (W x + b)]. *)
val eval : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t

(** Kernel-ready form of a layer: transposed weights plus the entrywise
    sign split [w_pos = max(W, 0)], [w_neg = min(W, 0)] (strict
    comparisons: ±0.0 weights land as +0.0 in both parts). Consumed by
    the abstract transformers' fused kernels. *)
type prepared = {
  source : t;
  wt : Cv_linalg.Mat.t;  (** [in_dim × out_dim] *)
  w_pos : Cv_linalg.Mat.t;
  w_neg : Cv_linalg.Mat.t;
}

(** [prepare l] is the kernel-ready form of [l], memoized on the
    physical identity of the layer value (layers are immutable and
    shared across network slices, so repeated analyses build each split
    once). Thread-safe; entries are dropped by the GC with their
    layer. *)
val prepare : t -> prepared

(** [random ?rng ~in_dim ~out_dim act] draws a Glorot-initialised
    layer. *)
val random : ?rng:Cv_util.Rng.t -> in_dim:int -> out_dim:int -> Activation.t -> t

(** [perturb ?rng ~sigma l] adds iid Gaussian noise to every parameter —
    a crude fine-tuning stand-in used by tests. *)
val perturb : ?rng:Cv_util.Rng.t -> sigma:float -> t -> t

(** [param_dist_inf a b] is the max absolute parameter difference
    between two same-shaped layers. *)
val param_dist_inf : t -> t -> float

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
