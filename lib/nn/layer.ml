(** One fully-connected layer: [x ↦ act (W x + b)].

    In the paper's notation this is one [g_k]; a network is the
    composition [g_n ⊗ … ⊗ g_1]. *)

type t = {
  weights : Cv_linalg.Mat.t;  (** [out_dim × in_dim] *)
  bias : Cv_linalg.Vec.t;  (** [out_dim] *)
  act : Activation.t;
}

(** [make weights bias act] validates shapes and builds a layer. *)
let make weights bias act =
  if Cv_linalg.Mat.rows weights <> Cv_linalg.Vec.dim bias then
    invalid_arg "Layer.make: bias dimension mismatch";
  { weights; bias; act }

(** [in_dim l] is the input dimension. *)
let in_dim l = Cv_linalg.Mat.cols l.weights

(** [out_dim l] is the output dimension. *)
let out_dim l = Cv_linalg.Mat.rows l.weights

(** [num_params l] counts weights plus biases. *)
let num_params l = (in_dim l * out_dim l) + out_dim l

(** [pre_activation l x] is [W x + b] (the neuron values before the
    nonlinearity — what the MILP encoder constrains). *)
let pre_activation l x = Cv_linalg.Mat.matvec_add l.weights x l.bias

(** [eval l x] is the layer output [act (W x + b)]. *)
let eval l x = Activation.apply_vec l.act (pre_activation l x)

(** Kernel-ready form of a layer: the sign split and transpose the
    abstract transformers consume on every propagation, computed once
    per layer value. The split convention is entrywise
    [w_pos = max(w, 0)], [w_neg = min(w, 0)] with strict comparisons, so
    a ±0.0 weight lands as +0.0 in both parts ([w_pos + w_neg = w] up to
    the sign of zero). *)
type prepared = {
  source : t;  (** the layer this was prepared from *)
  wt : Cv_linalg.Mat.t;  (** [in_dim × out_dim] transposed weights *)
  w_pos : Cv_linalg.Mat.t;  (** [max(W, 0)] entrywise *)
  w_neg : Cv_linalg.Mat.t;  (** [min(W, 0)] entrywise *)
}

let build_prepared l =
  { source = l;
    wt = Cv_linalg.Mat.transpose l.weights;
    w_pos = Cv_linalg.Mat.map (fun x -> if x > 0. then x else 0.) l.weights;
    w_neg = Cv_linalg.Mat.map (fun x -> if x < 0. then x else 0.) l.weights }

(* Prepared forms are memoized on the physical identity of the layer
   value: layers are immutable and shared by Network.prefix/suffix/slice
   (Array.sub copies pointers, not records), so every sub-network
   analysis of the same network hits the same entries. An ephemeron
   table lets entries die with their layer — a long-lived serve daemon
   cycling through fine-tuned heads cannot leak preparations. (A
   content-addressed home like Cv_artifacts.Cache would invert the
   dependency order — cv_artifacts builds on the domains — and its JSON
   payloads would cost more than the split they memoize; identity keying
   gives the same sharing for live values at pointer-compare cost.) *)
module Memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let memo : prepared Memo.t = Memo.create 64
let memo_mutex = Mutex.create ()
let m_prepare = Cv_util.Metrics.counter "kernel.prepare.builds"

(** [prepare l] is the memoized kernel-ready form of [l] — safe under
    concurrent domains. *)
let prepare l =
  Mutex.protect memo_mutex @@ fun () ->
  match Memo.find_opt memo l with
  | Some p -> p
  | None ->
    let p = build_prepared l in
    Memo.add memo l p;
    Cv_util.Metrics.incr m_prepare;
    p

(** [random ?rng ~in_dim ~out_dim act] draws a Glorot-initialised
    layer. *)
let random ?rng ~in_dim ~out_dim act =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 17 in
  let weights = Cv_linalg.Mat.xavier ~rng out_dim in_dim in
  let bias = Cv_util.Rng.uniform_array rng out_dim ~lo:(-0.1) ~hi:0.1 in
  { weights; bias; act }

(** [perturb ?rng ~sigma l] adds iid Gaussian noise to every parameter —
    a crude stand-in for fine-tuning used in tests (real fine-tuning goes
    through {!Train.fine_tune}). *)
let perturb ?rng ~sigma l =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 19 in
  let weights =
    Cv_linalg.Mat.map (fun w -> w +. Cv_util.Rng.gaussian rng ~mu:0. ~sigma) l.weights
  in
  let bias = Array.map (fun b -> b +. Cv_util.Rng.gaussian rng ~mu:0. ~sigma) l.bias in
  { l with weights; bias }

(** [param_dist_inf a b] is the max absolute parameter difference between
    two same-shaped layers. *)
let param_dist_inf a b =
  if in_dim a <> in_dim b || out_dim a <> out_dim b then
    invalid_arg "Layer.param_dist_inf: shape mismatch";
  let dw = Cv_linalg.Mat.max_abs (Cv_linalg.Mat.sub a.weights b.weights) in
  let db = Cv_util.Float_utils.max_abs (Cv_linalg.Vec.sub a.bias b.bias) in
  Float.max dw db

(** [to_json l] encodes the layer. *)
let to_json l =
  Cv_util.Json.Obj
    [ ("weights", Cv_linalg.Mat.to_json l.weights);
      ("bias", Cv_util.Json.of_float_array l.bias);
      ("act", Activation.to_json l.act) ]

(** [of_json j] decodes a layer written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  make
    (Cv_linalg.Mat.of_json (member "weights" j))
    (float_array (member "bias" j))
    (Activation.of_json (member "act" j))
