(** Model persistence: networks to/from JSON files.

    A tiny vendored format (see {!Cv_util.Json}); the CLI and the
    artifact store use it to keep model versions [f, f', f'', …] of the
    continuous-engineering loop on disk. *)

(** Current format version; readers reject unknown versions. *)
let format_version = 1

(** [network_to_json ?name net] wraps {!Network.to_json} with metadata. *)
let network_to_json ?(name = "network") net =
  Cv_util.Json.Obj
    [ ("format", Cv_util.Json.Str "contiver-model");
      ("version", Cv_util.Json.of_int format_version);
      ("name", Cv_util.Json.Str name);
      ("model", Network.to_json net) ]

(** [network_of_json j] reads a document written by
    {!network_to_json}. *)
let network_of_json j =
  let open Cv_util.Json in
  (match member_opt "format" j with
  | Some (Str "contiver-model") -> ()
  | _ -> raise (Error "Serialize: not a contiver-model document"));
  (match member_opt "version" j with
  | Some (Num v) when int_of_float v = format_version -> ()
  | _ -> raise (Error "Serialize: unsupported version"));
  Network.of_json (member "model" j)

(** [save_network ?name path net] writes the model file at [path]. *)
let save_network ?name path net =
  let doc = network_to_json ?name net in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Cv_util.Json.to_string doc))

(** Typed failure of {!load_network_result}. *)
type load_error =
  | File_error of string  (** the file cannot be opened or read *)
  | Malformed of string  (** not a valid contiver-model document *)

(** [load_error_message e] renders a one-line diagnosis. *)
let load_error_message = function File_error msg | Malformed msg -> msg

(** [load_network_result path] reads a model file written by
    {!save_network}, returning a typed error instead of raising. *)
let load_network_result path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (File_error msg)
  | content -> (
    try Ok (network_of_json (Cv_util.Json.parse content))
    with Cv_util.Json.Error msg -> Error (Malformed (path ^ ": " ^ msg)))

(** [load_network path] reads a model file written by {!save_network},
    raising on failure — prefer {!load_network_result}. *)
let load_network path =
  match load_network_result path with
  | Ok net -> net
  | Error (File_error msg) -> raise (Sys_error msg)
  | Error (Malformed msg) -> raise (Cv_util.Json.Error msg)

(** [roundtrip net] is [network_of_json (network_to_json net)] — used by
    tests to check serialisation is lossless. *)
let roundtrip net = network_of_json (network_to_json net)
