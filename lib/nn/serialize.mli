(** Model persistence: networks to/from JSON files (the library's own
    format; see {!Nnet} for the community interchange format). *)

(** Current format version; readers reject unknown versions. *)
val format_version : int

(** [network_to_json ?name net] wraps {!Network.to_json} with
    metadata. *)
val network_to_json : ?name:string -> Network.t -> Cv_util.Json.t

(** [network_of_json j] reads a document written by {!network_to_json};
    raises {!Cv_util.Json.Error} on format/version mismatch. *)
val network_of_json : Cv_util.Json.t -> Network.t

(** [save_network ?name path net] writes the model file at [path]. *)
val save_network : ?name:string -> string -> Network.t -> unit

(** Typed failure of {!load_network_result}. *)
type load_error =
  | File_error of string  (** the file cannot be opened or read *)
  | Malformed of string  (** not a valid contiver-model document *)

(** [load_error_message e] renders a one-line diagnosis. *)
val load_error_message : load_error -> string

(** [load_network_result path] reads a model file written by
    {!save_network}, returning a typed error instead of raising. *)
val load_network_result : string -> (Network.t, load_error) result

(** [load_network path] reads a model file written by {!save_network},
    raising ([Sys_error] or {!Cv_util.Json.Error}) on failure — prefer
    {!load_network_result}. *)
val load_network : string -> Network.t

(** [roundtrip net] is [network_of_json (network_to_json net)]. *)
val roundtrip : Network.t -> Network.t
