(** Feed-forward networks as layer sequences — the object of
    verification ([f = g_n ⊗ … ⊗ g_1]). Slicing helpers extract the
    sub-networks that Propositions 1, 2, 4 and 5 verify locally. *)

type t

(** [make layers] validates dimension chaining and builds a network. *)
val make : Layer.t array -> t

val of_list : Layer.t list -> t

(** [layers net] is the layer array (a copy). *)
val layers : t -> Layer.t array

(** [layer net i] is the [i]-th layer (0-based). *)
val layer : t -> int -> Layer.t

(** [num_layers net] is [n]. *)
val num_layers : t -> int

val in_dim : t -> int

val out_dim : t -> int

val num_params : t -> int

(** [num_neurons net] is the total hidden+output neuron count. *)
val num_neurons : t -> int

(** [layer_dims net] lists all widths including input and output. *)
val layer_dims : t -> int list

(** [prepared net] is the per-layer kernel-ready array (memoized — see
    {!Layer.prepare}). *)
val prepared : t -> Layer.prepared array

(** [eval net x] runs a forward pass. *)
val eval : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t

(** [eval_trace net x] returns the output of every layer — the concrete
    values the state abstractions must contain. *)
val eval_trace : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t array

(** [prefix net k] is the sub-network of the first [k >= 1] layers. *)
val prefix : t -> int -> t

(** [suffix net k] is the sub-network from layer [k] (0-based) to the
    end. *)
val suffix : t -> int -> t

(** [slice net ~from_ ~to_] is layers [from_ .. to_ - 1] (0-based,
    half-open) — the local subproblem networks. *)
val slice : t -> from_:int -> to_:int -> t

(** [compose a b] runs [a] then [b]. *)
val compose : t -> t -> t

(** [same_shape a b] — identical layer dimensions and activations (the
    precondition for comparing [f] and a fine-tuned [f']). *)
val same_shape : t -> t -> bool

(** [param_dist_inf a b] is the max absolute parameter difference across
    all layers. *)
val param_dist_inf : t -> t -> float

(** [map_layers f net] rebuilds the network with [f] applied to each
    layer. *)
val map_layers : (Layer.t -> Layer.t) -> t -> t

(** [random ?rng ~dims ~act ()] draws a random MLP with hidden
    activation [act] and [Identity] output; [dims] lists all widths,
    e.g. [[4; 8; 8; 1]]. *)
val random : ?rng:Cv_util.Rng.t -> dims:int list -> act:Activation.t -> unit -> t

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
