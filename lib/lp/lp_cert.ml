module Ival = Cv_cert.Ival
module Cert = Cv_cert.Cert

type extraction = { ex_witness : Cert.lp_witness; ex_value : float }

let snapshot_system ~xu st =
  {
    Cert.lp_a = Simplex.system_rows st;
    lp_b = Simplex.system_rhs st;
    lp_c = Simplex.system_obj st;
    lp_xu = Array.copy xu;
  }

(* Solve the dense m×m system [M z = rhs] by Gaussian elimination with
   partial pivoting; [None] when a pivot degenerates. Destroys [mat]. *)
let solve_dense mat rhs =
  let m = Array.length rhs in
  let z = Array.copy rhs in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let piv = ref k in
       for i = k + 1 to m - 1 do
         if Float.abs mat.(i).(k) > Float.abs mat.(!piv).(k) then piv := i
       done;
       if Float.abs mat.(!piv).(k) < 1e-12 then raise Exit;
       if !piv <> k then begin
         let t = mat.(k) in
         mat.(k) <- mat.(!piv);
         mat.(!piv) <- t;
         let t = z.(k) in
         z.(k) <- z.(!piv);
         z.(!piv) <- t
       end;
       for i = k + 1 to m - 1 do
         let f = mat.(i).(k) /. mat.(k).(k) in
         if f <> 0. then begin
           for j = k to m - 1 do
             mat.(i).(j) <- mat.(i).(j) -. (f *. mat.(k).(j))
           done;
           z.(i) <- z.(i) -. (f *. z.(k))
         end
       done
     done;
     for k = m - 1 downto 0 do
       let s = ref z.(k) in
       for j = k + 1 to m - 1 do
         s := !s -. (mat.(k).(j) *. z.(j))
       done;
       z.(k) <- !s /. mat.(k).(k)
     done
   with Exit -> ok := false);
  if !ok && Ival.all_finite z then Some z else None

(* Outward validation — the same obligations {!Cv_cert.Check} replays. *)
let column_dot_up (a : float array array) j z =
  let s = ref 0. in
  Array.iteri
    (fun i row ->
      if row.(j) <> 0. then s := Ival.up (!s +. Ival.up (row.(j) *. z.(i))))
    a;
  !s

(* Neumaier–Shcherbina compensation, mirroring {!Cv_cert.Check}: a
   basic column binds its dual inequality exactly, so outward rounding
   leaves a few-ulp residual of the wrong sign; charge it its worst
   case over the column's [0, xu] range instead of rejecting. *)
let valid_farkas (sys : Cert.lp_system) z =
  let n = Array.length sys.lp_c in
  let s = ref 0. in
  let ok = ref (Ival.all_finite z) in
  for j = 0 to n - 1 do
    let cu = column_dot_up sys.lp_a j z in
    if cu > 0. then
      if sys.lp_xu.(j) < Float.infinity then
        s := Ival.up (!s +. Ival.up (cu *. sys.lp_xu.(j)))
      else ok := false
  done;
  !ok && Ival.dot_dn sys.lp_b z > !s

(* The compensated weak-duality bound — exactly the value the checker
   recomputes, so using it as the claim target is replay-stable. *)
let dual_bound (sys : Cert.lp_system) z =
  let n = Array.length sys.lp_c in
  let ok = ref (Ival.all_finite z) in
  let bound = ref (Ival.dot_dn sys.lp_b z) in
  for j = 0 to n - 1 do
    let r_lo = Ival.dn (sys.lp_c.(j) -. column_dot_up sys.lp_a j z) in
    if r_lo < 0. then
      if sys.lp_xu.(j) < Float.infinity then
        bound := Ival.dn (!bound +. Ival.dn (r_lo *. sys.lp_xu.(j)))
      else ok := false
  done;
  if !ok && Float.is_finite !bound then Some !bound else None

(* Multipliers off a final basis: solve [B_origᵀ z = cost_B] in the
   {e original} row space. Because the working rows are
   [S·(pristine rows)] with [S = diag (row_signs)] diagonal,
   [B̂ᵀy = c_B] in the sign-fixed space is exactly
   [B_origᵀ(Sy) = c_B] — so this solve directly yields the witness
   [Sy], no sign fix-up needed. Artificial column [n + k] is
   [row_signs.(r)·e_r] in original space, [r] its creation row. *)
let multipliers st cost_b =
  let m = Simplex.num_rows st in
  let n = Simplex.num_cols st in
  let rows = Simplex.system_rows st in
  let signs = Simplex.row_signs st in
  let art = Simplex.artificial_rows st in
  let basis = Simplex.final_basis st in
  match
    Array.map
      (fun j ->
        if j < n then Array.init m (fun i -> rows.(i).(j))
        else begin
          let k = j - n in
          if k >= Array.length art || art.(k) < 0 then raise Exit;
          let v = Array.make m 0. in
          v.(art.(k)) <- signs.(art.(k));
          v
        end)
      basis
  with
  | mat -> solve_dense mat (Array.map cost_b basis)
  | exception Exit -> None

let certify_state ?max_iters ~xu st =
  let sys = snapshot_system ~xu st in
  (* Fresh cold solve on the snapshot: its final basis is the one the
     multipliers are read from, so the live state's warm-path history is
     irrelevant. *)
  let fresh =
    Simplex.make ~a:sys.Cert.lp_a ~b:sys.lp_b ~c:sys.lp_c
      ~basis0:(Simplex.initial_basis st)
  in
  match Simplex.resolve ?max_iters fresh with
  | Simplex.Infeasible ->
    let n = Simplex.num_cols fresh in
    Option.bind (multipliers fresh (fun j -> if j >= n then 1. else 0.))
      (fun z ->
        if valid_farkas sys z then
          Some { ex_witness = Cert.Farkas z; ex_value = Float.infinity }
        else None)
  | Simplex.Optimal _ ->
    let n = Simplex.num_cols fresh in
    Option.bind
      (multipliers fresh (fun j -> if j < n then sys.Cert.lp_c.(j) else 0.))
      (fun z ->
        Option.map
          (fun b -> { ex_witness = Cert.Dual_bound z; ex_value = b })
          (dual_bound sys z))
  | Simplex.Unbounded | Simplex.Stalled -> None

let validated cert =
  match Cv_cert.Check.check cert with
  | Cv_cert.Check.Valid -> Some cert
  | Invalid _ -> None

let lp_certificate ?max_iters ~mode ~solver ~fingerprint compiled =
  let st = Lp.compiled_state compiled in
  let xu = Lp.compiled_uppers compiled in
  Option.bind (certify_state ?max_iters ~xu st) (fun ex ->
      let sys = snapshot_system ~xu st in
      let claim, proof =
        match ex.ex_witness with
        | Cert.Farkas z -> (Cert.Lp_infeasible sys, Cert.P_farkas z)
        | Cert.Dual_bound z ->
          ( Cert.Lp_min_at_least (sys, ex.ex_value),
            Cert.P_dual { dual = z; bound = ex.ex_value } )
      in
      validated { Cert.mode; solver; fingerprint; claim; proof })

type branch_result = {
  br_system : Cert.lp_system;
  br_binaries : Cert.milp_binary array;
  br_tree : Cert.milp_tree;
  br_bound : float;
}

exception Give_up

let branch_and_certify ?(max_nodes = 512) ?max_iters compiled ~binaries =
  let binaries = Array.of_list binaries in
  let relax_all () =
    Array.iter
      (fun v -> Lp.set_bounds_compiled compiled v ~lo:0. ~hi:1.)
      binaries
  in
  match
    let bins =
      Array.map
        (fun v ->
          match Lp.compiled_fix_rows compiled v with
          | Some (ub, lb, shift) ->
            { Cert.bin_ub_row = ub; bin_lb_row = lb; bin_shift = shift }
          | None -> raise Give_up)
        binaries
    in
    relax_all ();
    (* The certificate's base system: every binary relaxed to [0, 1];
       the checker re-derives each leaf's rhs from the path fixings.
       The compile-time column bounds stay valid at every leaf — rhs
       tightening only shrinks the feasible set. *)
    let xu = Lp.compiled_uppers compiled in
    let base = snapshot_system ~xu (Lp.compiled_state compiled) in
    let nodes = ref 0 in
    let bound = ref Float.infinity in
    let is_frac x = Float.abs (x -. Float.round x) > 1e-6 in
    let rec go fixings remaining =
      incr nodes;
      if !nodes > max_nodes then raise Give_up;
      List.iter
        (fun (k, v) ->
          Lp.set_bounds_compiled compiled binaries.(k) ~lo:v ~hi:v)
        fixings;
      let relax = Lp.solve_compiled ?max_iters compiled in
      let leaf () =
        match certify_state ?max_iters ~xu (Lp.compiled_state compiled) with
        | Some ex ->
          bound := Float.min !bound ex.ex_value;
          Cert.Milp_leaf ex.ex_witness
        | None -> raise Give_up
      in
      let branch k rest =
        let node v =
          let t = go ((k, v) :: fixings) rest in
          Lp.set_bounds_compiled compiled binaries.(k) ~lo:0. ~hi:1.;
          t
        in
        let zero = node 0. in
        let one = node 1. in
        Cert.Milp_branch { bin = k; zero; one }
      in
      match relax with
      | Lp.Infeasible -> leaf ()
      | Lp.Optimal { values; _ } -> (
        (* Fathom integral relaxations with a dual witness; branch on
           the first fractional binary otherwise. *)
        match
          List.find_opt (fun k -> is_frac values.(binaries.(k))) remaining
        with
        | None -> leaf ()
        | Some k -> branch k (List.filter (fun k' -> k' <> k) remaining))
      | Lp.Unbounded | Lp.Stalled -> raise Give_up
    in
    let all = List.init (Array.length binaries) Fun.id in
    let tree = go [] all in
    relax_all ();
    if Float.is_finite !bound || !bound = Float.infinity then
      { br_system = base; br_binaries = bins; br_tree = tree;
        br_bound = (if !bound = Float.infinity then 0. else !bound) }
    else raise Give_up
  with
  | r -> Some r
  | exception Give_up ->
    relax_all ();
    None

let milp_certificate ?max_nodes ?max_iters ~mode ~solver ~fingerprint
    compiled ~binaries =
  Option.bind (branch_and_certify ?max_nodes ?max_iters compiled ~binaries)
    (fun br ->
      validated
        {
          Cert.mode;
          solver;
          fingerprint;
          claim =
            Cert.Milp_min_at_least
              {
                lp = br.br_system;
                binaries = br.br_binaries;
                target = br.br_bound;
              };
          proof = Cert.P_milp_tree br.br_tree;
        })
