(** Linear-programming model builder over {!Simplex}.

    Declare variables with bounds, add linear constraints and an
    objective; [solve] lowers to standard form (bound shifting,
    reflection, free-variable splitting, slack rows) and runs two-phase
    primal simplex. The [compile]d interface lowers once and makes
    re-bounding a declared fixable variable an O(m) right-hand-side
    update solved by a warm dual-simplex restart — the branch-and-bound
    hot path. *)

type relop = Le | Ge | Eq

type var = int

type term = float * var

type problem

type solution = { objective : float; values : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Stalled
      (** the simplex iteration limit was exceeded (numerical trouble);
          callers degrade as they would for a timeout *)

(** [create ()] is an empty model. *)
val create : unit -> problem

(** [add_var p ?lo ?hi ?name ()] declares a variable with optional
    bounds (defaults: free) and returns its handle. *)
val add_var : problem -> ?lo:float -> ?hi:float -> ?name:string -> unit -> var

(** [add_constraint p terms op rhs] adds [Σ terms (op) rhs]. *)
val add_constraint : problem -> term list -> relop -> float -> unit

(** [set_objective p ~maximize terms] installs the objective. *)
val set_objective : problem -> maximize:bool -> term list -> unit

val var_count : problem -> int

(** [constraint_count p] is the number of added constraints (cached, not
    recomputed per call). *)
val constraint_count : problem -> int

(** [copy p] is an independent copy (cheap: shares immutable term
    lists). *)
val copy : problem -> problem

(** [set_bounds p v ~lo ~hi] tightens the bounds of [v] in place — the
    model-level path (the next [solve] re-lowers; branch-and-bound uses
    {!set_bounds_compiled}). *)
val set_bounds : problem -> var -> lo:float -> hi:float -> unit

(** [bounds p v] reads the current bounds of [v]. *)
val bounds : problem -> var -> float * float

(** A model lowered to standard form once, with reusable solver state:
    repeated solves after {!set_bounds_compiled} warm-start from the
    previous optimal basis instead of re-lowering and re-running
    phase 1. *)
type compiled

(** [compile ?fixable p] lowers the model (objective as currently set).
    Each [fixable] variable — finite bounds required — gets a pair of
    bound rows so its box can later be changed in O(m) without
    re-lowering. *)
val compile : ?fixable:var list -> problem -> compiled

(** [copy_compiled c] is an independent compiled instance sharing the
    immutable lowering; parallel branch-and-bound workers each get
    one. *)
val copy_compiled : compiled -> compiled

(** [set_bounds_compiled c v ~lo ~hi] re-bounds fixable variable [v];
    [lo]/[hi] must stay within the box [v] was compiled with. *)
val set_bounds_compiled : compiled -> var -> lo:float -> hi:float -> unit

(** [solve_compiled c] solves the compiled model's current system (dual
    warm restart when the previous basis is reusable) and lifts the
    outcome back to original variables. [max_iters] caps simplex
    iterations per phase ({!Stalled} beyond it). [bound_cutoff] lets a
    warm solve stop early once weak duality certifies the objective is
    no better than the cutoff (≤ for a maximisation objective, ≥ for
    minimisation); the returned [Optimal] then carries that certified
    bound rather than the optimum — exactly what branch-and-bound
    fathoming needs. Raises {!Cv_util.Deadline.Expired} when the budget
    runs out. *)
val solve_compiled :
  ?deadline:Cv_util.Deadline.t ->
  ?max_iters:int ->
  ?bound_cutoff:float ->
  compiled ->
  result

(** [solve ?deadline p] lowers and solves in one shot; raises
    {!Cv_util.Deadline.Expired} when the budget runs out. *)
val solve : ?deadline:Cv_util.Deadline.t -> ?max_iters:int -> problem -> result

(** [maximize_linear p terms] sets a maximisation objective and
    solves. *)
val maximize_linear : problem -> term list -> result

(** [minimize_linear p terms] sets a minimisation objective and
    solves. *)
val minimize_linear : problem -> term list -> result

(** {2 Lowering introspection}

    Read-only views into a compiled model for certificate extraction
    ({!Lp_cert}); nothing here allows mutating the lowering. *)

(** [compiled_state c] is the underlying simplex state (standard form
    [min c·y, Ay = b, y ≥ 0]). Mutate it only through
    {!set_bounds_compiled}. *)
val compiled_state : compiled -> Simplex.state

(** [compiled_frame c] is [(c_sign, c_const_shift)]: a standard-form
    objective value [s] means model objective
    [c_sign · (s + c_const_shift)]. *)
val compiled_frame : compiled -> float * float

(** [compiled_fix_rows c v] is [Some (ub_row, lb_row, shift)] for a
    fixable variable: {!set_bounds_compiled}[ c v ~lo ~hi] writes rhs
    [hi - shift] to [ub_row] and [lo - shift] to [lb_row]. *)
val compiled_fix_rows : compiled -> var -> (int * int * float) option

(** [compiled_uppers c] is a sound upper bound per standard column
    ([infinity] when none is derivable), valid for every feasible point
    of the compiled system — and still valid after any
    {!set_bounds_compiled} tightening, which only shrinks the feasible
    set. Certificates carry these so the checker can compensate
    near-binding reduced costs (Neumaier–Shcherbina). *)
val compiled_uppers : compiled -> float array
