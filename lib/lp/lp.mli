(** Linear-programming model builder over {!Simplex}.

    Declare variables with bounds, add linear constraints and an
    objective; [solve] lowers to standard form (bound shifting,
    reflection, free-variable splitting, slack rows) and runs two-phase
    primal simplex. *)

type relop = Le | Ge | Eq

type var = int

type term = float * var

type problem

type solution = { objective : float; values : float array }

type result = Optimal of solution | Infeasible | Unbounded

(** [create ()] is an empty model. *)
val create : unit -> problem

(** [add_var p ?lo ?hi ?name ()] declares a variable with optional
    bounds (defaults: free) and returns its handle. *)
val add_var : problem -> ?lo:float -> ?hi:float -> ?name:string -> unit -> var

(** [add_constraint p terms op rhs] adds [Σ terms (op) rhs]. *)
val add_constraint : problem -> term list -> relop -> float -> unit

(** [set_objective p ~maximize terms] installs the objective. *)
val set_objective : problem -> maximize:bool -> term list -> unit

val var_count : problem -> int

val constraint_count : problem -> int

(** [copy p] is an independent copy (cheap: shares immutable term
    lists). *)
val copy : problem -> problem

(** [set_bounds p v ~lo ~hi] tightens the bounds of [v] in place — used
    by branch-and-bound when fixing binaries. *)
val set_bounds : problem -> var -> lo:float -> hi:float -> unit

(** [bounds p v] reads the current bounds of [v]. *)
val bounds : problem -> var -> float * float

(** [solve ?deadline p] runs two-phase simplex on the lowered model;
    raises {!Cv_util.Deadline.Expired} when the budget runs out. *)
val solve : ?deadline:Cv_util.Deadline.t -> problem -> result

(** [maximize_linear p terms] sets a maximisation objective and
    solves. *)
val maximize_linear : problem -> term list -> result

(** [minimize_linear p terms] sets a minimisation objective and
    solves. *)
val minimize_linear : problem -> term list -> result
