(** Two-phase primal simplex on a dense tableau: solves
    [min c·y  s.t.  A y = b, y >= 0] with [b >= 0] (callers negate rows
    as needed). Dantzig pivoting with an automatic switch to Bland's
    rule for termination. The computational core under {!Lp}. *)

type outcome =
  | Optimal of { objective : float; values : float array }
      (** [values] covers the structural variables only *)
  | Infeasible
  | Unbounded

(** [solve ?basis0 ~a ~b ~c ()] minimises [c·y] subject to [A y = b],
    [y >= 0]. [basis0.(i)], when given, names a structural slack column
    usable as row [i]'s initial basic variable (+1 there, 0 elsewhere,
    zero cost), letting the solver skip artificials — and often all of
    phase 1 — for those rows. Raises [Failure] when the iteration limit
    is exceeded (numerical trouble) and {!Cv_util.Deadline.Expired} when
    [deadline] runs out mid-solve (polled every 32 pivots). *)
val solve :
  ?deadline:Cv_util.Deadline.t ->
  ?basis0:int option array ->
  a:float array array ->
  b:float array ->
  c:float array ->
  unit ->
  outcome
