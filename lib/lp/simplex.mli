(** Two-phase primal simplex with dual-simplex warm restarts on a dense
    flat (row-major) tableau: solves [min c·y  s.t.  A y = b, y >= 0]
    (rows are sign-fixed internally). Dantzig pivoting with an automatic
    switch to Bland's rule for termination. The computational core under
    {!Lp}. *)

type outcome =
  | Optimal of { objective : float; values : float array }
      (** [values] covers the structural variables only *)
  | Infeasible
  | Unbounded
  | Stalled
      (** the iteration limit was exceeded (numerical trouble); callers
          degrade to a timeout-style Unknown instead of crashing *)

(** Reusable solver state for a family of solves differing only in
    right-hand sides (branch-and-bound node relaxations). Holds the
    pristine system plus one working tableau; after an optimal solve the
    basis warm-starts subsequent {!resolve} calls via dual simplex. *)
type state

(** [make ~a ~b ~c ~basis0] captures the system [min c·y, Ay = b, y ≥ 0]
    without solving. [basis0.(i) = Some (j, s)] promises that structural
    column [j] has coefficient [s] (±1) in row [i] only, with zero
    objective cost (a slack/surplus "marker"): it seeds row [i]'s basis
    when [s·b.(i) ≥ 0] and enables O(m) rhs updates against a warm
    basis in {!set_rhs}. *)
val make :
  a:float array array ->
  b:float array ->
  c:float array ->
  basis0:(int * float) option array ->
  state

(** [copy_state st] is an independent state (shares the immutable
    pristine system, copies the working tableau and warm basis). *)
val copy_state : state -> state

(** [set_rhs st ~row v] replaces row [row]'s raw right-hand side. On a
    warm state with a marker for [row] this is a rank-one update that
    preserves the warm basis; otherwise the next {!resolve} runs cold. *)
val set_rhs : state -> row:int -> float -> unit

(** [resolve st] solves the current system: dual-simplex restart from
    the previous optimal basis when warm (counted as
    [lp.warmstart.hits]; stalls fall back to the cold path as
    [lp.warmstart.fallbacks]), two-phase primal otherwise
    ([lp.warmstart.misses]). [max_iters] caps the per-phase iteration
    count (default: a size-scaled limit); exceeding it yields
    {!Stalled}. [obj_limit] stops a warm dual solve early once weak
    duality certifies the (minimisation) objective is ≥ the limit — the
    returned [Optimal] then carries that certified bound, not
    necessarily the optimum (branch-and-bound fathoming needs nothing
    more). Raises {!Cv_util.Deadline.Expired} when [deadline] runs out
    mid-solve (polled every 32 pivots). *)
val resolve :
  ?deadline:Cv_util.Deadline.t ->
  ?max_iters:int ->
  ?obj_limit:float ->
  state ->
  outcome

(** [solve ?basis0 ~a ~b ~c ()] minimises [c·y] subject to [A y = b],
    [y >= 0] — the one-shot entry point (a fresh cold state).
    [basis0.(i)], when given, names a structural slack column usable as
    row [i]'s initial basic variable (+1 there, 0 elsewhere, zero cost),
    letting the solver skip artificials — and often all of phase 1 —
    for those rows. *)
val solve :
  ?deadline:Cv_util.Deadline.t ->
  ?max_iters:int ->
  ?basis0:int option array ->
  a:float array array ->
  b:float array ->
  c:float array ->
  unit ->
  outcome

(** {2 Snapshot accessors}

    Read-only copies of the captured system and the solver's last basis,
    for certificate extraction ({!Lp_cert}). [row_signs] and
    [artificial_rows] describe the last cold build: working row [i] is
    [row_signs st.(i)] times the pristine row, and artificial column
    [num_cols st + k] was appended for row [(artificial_rows st).(k)]. *)

val num_rows : state -> int

val num_cols : state -> int

(** [system_rows st] is the pristine constraint matrix, row copies. *)
val system_rows : state -> float array array

(** [system_rhs st] is the current raw right-hand side (tracks
    {!set_rhs}). *)
val system_rhs : state -> float array

val system_obj : state -> float array

val initial_basis : state -> (int * float) option array

(** [final_basis st] is the basic column per row after the last solve
    (meaningless before any {!resolve}). *)
val final_basis : state -> int array

val row_signs : state -> float array

val artificial_rows : state -> int array
