(** LP witness extraction — the untrusted producer of {!Cv_cert}
    LP-level certificates.

    Extraction never inspects the live solver tableau: it snapshots the
    pristine system out of a {!Simplex.state}, re-solves it {e cold} on
    a fresh state, and reads the witness off that solve's final basis by
    solving [Bᵀz = c_B] with its own Gaussian elimination. The witness
    is then validated with outward-rounded arithmetic (the checker's
    obligations) before being handed out — extraction failures degrade
    emission, never soundness. *)

(** One validated witness. [ex_value] is the outward-certified
    standard-form objective lower bound for a {!Cv_cert.Cert.Dual_bound}
    (the Neumaier–Shcherbina-compensated [dn(b·z)]) and [+∞] for a
    {!Cv_cert.Cert.Farkas} (an infeasible system bounds every
    objective). *)
type extraction = { ex_witness : Cv_cert.Cert.lp_witness; ex_value : float }

(** [snapshot_system ~xu st] copies the state's pristine system (with
    its {e current} right-hand side) into certificate form; [xu] is the
    per-column upper bound ({!Lp.compiled_uppers}) the checker
    compensates against. *)
val snapshot_system : xu:float array -> Simplex.state -> Cv_cert.Cert.lp_system

(** [certify_state ~xu st] re-solves [snapshot_system ~xu st] cold and
    extracts a Farkas witness (infeasible) or a dual bound (optimal).
    [None] on stall, unboundedness, a singular basis or a witness that
    fails its outward validation. *)
val certify_state :
  ?max_iters:int -> xu:float array -> Simplex.state -> extraction option

(** [lp_certificate ~mode ~solver ~fingerprint c] wraps
    {!certify_state} on the compiled model as a full self-validated
    certificate: {!Cv_cert.Cert.Lp_infeasible} + {!Cv_cert.Cert.P_farkas}, or
    {!Cv_cert.Cert.Lp_min_at_least} + {!Cv_cert.Cert.P_dual} at the certified bound. *)
val lp_certificate :
  ?max_iters:int ->
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Lp.compiled ->
  Cv_cert.Cert.t option

(** Result of {!branch_and_certify}: a branch tree over the compiled
    model's binaries whose leaves all carry validated witnesses, proving
    [std_objective ≥ br_bound] for {e every} 0/1 completion.
    [br_system] is snapshotted with all binaries relaxed to [0, 1] — the
    rhs base the checker rewrites per leaf. *)
type branch_result = {
  br_system : Cv_cert.Cert.lp_system;
  br_binaries : Cv_cert.Cert.milp_binary array;
  br_tree : Cv_cert.Cert.milp_tree;
  br_bound : float;
}

(** [branch_and_certify c ~binaries] runs a small branch-and-bound over
    [binaries] (fixing through {!Lp.set_bounds_compiled}, the PR 4
    re-bounding seam), extracting a witness at every fathomed leaf.
    Branches on fractional binaries only, so in exact arithmetic
    [br_bound] is the MILP optimum. [max_nodes] bounds the tree
    (default 512). The compiled model is left with all binaries
    relaxed. *)
val branch_and_certify :
  ?max_nodes:int ->
  ?max_iters:int ->
  Lp.compiled ->
  binaries:Lp.var list ->
  branch_result option

(** [milp_certificate ~mode ~solver ~fingerprint c ~binaries] is
    {!branch_and_certify} wrapped as a self-validated
    {!Cv_cert.Cert.Milp_min_at_least} certificate at [br_bound]. *)
val milp_certificate :
  ?max_nodes:int ->
  ?max_iters:int ->
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Lp.compiled ->
  binaries:Lp.var list ->
  Cv_cert.Cert.t option
