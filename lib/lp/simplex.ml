(** Two-phase primal simplex on a dense tableau.

    Solves [min c·y  s.t.  A y = b, y >= 0] with [b >= 0] assumed
    (callers negate rows as needed). Artificial variables are appended
    internally for phase 1. Pivoting uses Dantzig's rule with an
    automatic switch to Bland's rule (guaranteeing termination) once the
    iteration count passes a threshold.

    This is the computational core under {!Lp} and, transitively, under
    the branch-and-bound MILP solver that plays the role of the paper's
    "exact methods" (big-M encodings of ReLU, cf. Equation (2)). *)

type outcome =
  | Optimal of { objective : float; values : float array }
      (** [values] covers the structural variables only *)
  | Infeasible
  | Unbounded

let tol = 1e-9

(* Tableau layout: [m] constraint rows then one objective row; columns are
   [n] structural + [m] artificial + 1 rhs. The objective row holds
   reduced costs (negated convention: we minimise, entering column has
   negative reduced cost). *)
type tableau = {
  mutable rows : float array array;  (** (m+1) x (n_total+1) *)
  m : int;
  n : int;  (** structural variable count *)
  n_total : int;  (** structural + artificial *)
  basis : int array;  (** basic variable per row *)
}

let rhs_col t = t.n_total

(* Effort accounting: every tableau pivot and iterate() loop turn is
   counted, so a verification run can report exactly where its simplex
   time went (surfaced by `contiver --stats` and the bench trajectory). *)
let m_solves = Cv_util.Metrics.counter "lp.solves"

let m_pivots = Cv_util.Metrics.counter "lp.pivots"

let m_iterations = Cv_util.Metrics.counter "lp.iterations"

let t_seconds = Cv_util.Metrics.timer "lp.seconds"

(* Build the tableau. [basis0.(i) = Some j] promises that structural
   column [j] has coefficient +1 in row [i], zero in every other row and
   zero objective cost (a slack): it then serves as the initial basic
   variable and row [i] needs no artificial. *)
let make_tableau ~n a b basis0 =
  let m = Array.length b in
  let needs_artificial =
    Array.init m (fun i -> match basis0.(i) with Some _ -> false | None -> true)
  in
  let n_art = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 needs_artificial in
  let n_total = n + n_art in
  let basis = Array.make m 0 in
  let next_art = ref n in
  let rows =
    Array.init (m + 1) (fun i ->
        let row = Array.make (n_total + 1) 0. in
        if i < m then begin
          Array.blit a.(i) 0 row 0 n;
          (match basis0.(i) with
          | Some j -> basis.(i) <- j
          | None ->
            row.(!next_art) <- 1.;
            basis.(i) <- !next_art;
            incr next_art);
          row.(n_total) <- b.(i)
        end;
        row)
  in
  { rows; m; n; n_total; basis }

let pivot t ~row ~col =
  Cv_util.Metrics.incr m_pivots;
  let prow = t.rows.(row) in
  let p = prow.(col) in
  let width = t.n_total + 1 in
  let inv = 1. /. p in
  for j = 0 to width - 1 do
    prow.(j) <- prow.(j) *. inv
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let r = t.rows.(i) in
      let factor = r.(col) in
      if Float.abs factor > 0. then
        for j = 0 to width - 1 do
          r.(j) <- r.(j) -. (factor *. prow.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* Entering column: most negative reduced cost (Dantzig) or smallest
   index with negative reduced cost (Bland). [allowed] filters columns. *)
let entering t ~bland ~allowed =
  let obj = t.rows.(t.m) in
  if bland then begin
    let found = ref None in
    (try
       for j = 0 to t.n_total - 1 do
         if allowed j && obj.(j) < -.tol then begin
           found := Some j;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let best = ref None and best_v = ref (-.tol) in
    for j = 0 to t.n_total - 1 do
      if allowed j && obj.(j) < !best_v then begin
        best_v := obj.(j);
        best := Some j
      end
    done;
    !best
  end

(* Ratio test with Bland tie-breaking on the leaving basic variable. *)
let leaving t col =
  let best = ref None in
  for i = 0 to t.m - 1 do
    let aij = t.rows.(i).(col) in
    if aij > tol then begin
      let ratio = t.rows.(i).(rhs_col t) /. aij in
      match !best with
      | None -> best := Some (i, ratio)
      | Some (bi, br) ->
        if
          ratio < br -. tol
          || (Float.abs (ratio -. br) <= tol && t.basis.(i) < t.basis.(bi))
        then best := Some (i, ratio)
    end
  done;
  Option.map fst !best

(* Run simplex iterations until optimal or unbounded. The deadline is
   polled every 32 pivots — cheap relative to a pivot's O(m·n) work. *)
let iterate ?deadline t ~allowed =
  let max_dantzig = 4 * (t.m + t.n_total) in
  let max_total = 8000 + (64 * (t.m + t.n_total)) in
  let rec loop iter =
    Cv_util.Metrics.incr m_iterations;
    Cv_util.Deadline.check_every ~mask:31 iter deadline;
    if iter > max_total then
      failwith "Simplex.iterate: iteration limit exceeded (numerical trouble)"
    else begin
      let bland = iter > max_dantzig in
      match entering t ~bland ~allowed with
      | None -> `Optimal
      | Some col -> (
        match leaving t col with
        | None -> `Unbounded
        | Some row ->
          pivot t ~row ~col;
          loop (iter + 1))
    end
  in
  loop 0

(* Set the objective row to minimise [c] (length n_total, artificials
   included), expressed in terms of the current basis: reduced costs
   r_j = c_j − c_B B⁻¹ A_j, objective value = c_B B⁻¹ b. *)
let install_objective t c =
  let obj = t.rows.(t.m) in
  Array.fill obj 0 (t.n_total + 1) 0.;
  Array.blit c 0 obj 0 (Array.length c);
  (* Price out the basic variables. *)
  for i = 0 to t.m - 1 do
    let cb = if t.basis.(i) < Array.length c then c.(t.basis.(i)) else 0. in
    if cb <> 0. then begin
      let r = t.rows.(i) in
      for j = 0 to t.n_total do
        obj.(j) <- obj.(j) -. (cb *. r.(j))
      done
    end
  done

(** [solve ?basis0 ~a ~b ~c ()] minimises [c·y] subject to [A y = b],
    [y >= 0]. [b] must be componentwise non-negative. [basis0.(i)], when
    given, names a structural slack column usable as row [i]'s initial
    basic variable (+1 there, 0 elsewhere, zero cost), letting the
    solver skip artificials — and often all of phase 1 — for those
    rows. Returns structural values only. Raises
    {!Cv_util.Deadline.Expired} when [deadline] runs out mid-solve. *)
let solve ?deadline ?basis0 ~a ~b ~c () =
  Cv_util.Fault.trip Cv_util.Fault.Solver_failure;
  Cv_util.Deadline.check_opt deadline;
  Cv_util.Metrics.incr m_solves;
  Cv_util.Metrics.time t_seconds @@ fun () ->
  let m = Array.length b in
  let n = Array.length c in
  (if m > 0 && Array.length a.(0) <> n then invalid_arg "Simplex.solve: shape");
  if Array.exists (fun bi -> bi < 0.) b then invalid_arg "Simplex.solve: b < 0";
  let basis0 = match basis0 with Some x -> x | None -> Array.make m None in
  let t = make_tableau ~n a b basis0 in
  let has_artificials = t.n_total > t.n in
  let phase1_obj =
    if not has_artificials then 0.
    else begin
      (* Phase 1: minimise the sum of artificials. *)
      let c1 = Array.make t.n_total 0. in
      for j = t.n to t.n_total - 1 do
        c1.(j) <- 1.
      done;
      install_objective t c1;
      (match iterate ?deadline t ~allowed:(fun _ -> true) with
      | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
      | `Optimal -> ());
      -.t.rows.(t.m).(rhs_col t)
    end
  in
  if phase1_obj > 1e-6 then Infeasible
  else begin
    (* Drive out any artificial still basic at zero level. *)
    for i = 0 to t.m - 1 do
      if t.basis.(i) >= t.n then begin
        let r = t.rows.(i) in
        let found = ref None in
        (try
           for j = 0 to t.n - 1 do
             if Float.abs r.(j) > 1e-7 then begin
               found := Some j;
               raise Exit
             end
           done
         with Exit -> ());
        match !found with
        | Some j -> pivot t ~row:i ~col:j
        | None -> () (* redundant row; harmless to keep *)
      end
    done;
    (* Phase 2: original objective, artificials barred from entering. *)
    let c2 = Array.make t.n_total 0. in
    Array.blit c 0 c2 0 n;
    install_objective t c2;
    let allowed j = j < t.n in
    match iterate ?deadline t ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let values = Array.make n 0. in
      for i = 0 to t.m - 1 do
        if t.basis.(i) < n then values.(t.basis.(i)) <- t.rows.(i).(rhs_col t)
      done;
      let objective = -.t.rows.(t.m).(rhs_col t) in
      Optimal { objective; values }
  end
