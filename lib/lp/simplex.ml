(** Two-phase primal simplex with dual-simplex warm restarts on a dense
    flat tableau.

    Solves [min c·y  s.t.  A y = b, y >= 0]. Rows are sign-fixed
    internally so any [b] is accepted. Artificial variables are appended
    internally for phase 1. Pivoting uses Dantzig's rule with an
    automatic switch to Bland's rule (guaranteeing termination) once the
    iteration count passes a threshold.

    The incremental interface ({!make} / {!set_rhs} / {!resolve}) keeps
    one mutable solver {!state} alive across a family of solves that
    differ only in right-hand sides — exactly the branch-and-bound
    workload, where fixing a binary is a bound-row rhs update. Because
    the objective is fixed per state, the optimal basis of {e any}
    member of the family is dual-feasible for {e every} other member,
    so after an rhs change the solver restarts with dual simplex from
    the previous basis instead of re-running phase 1 from a fresh
    tableau ("warm start"). Every warm verdict is certified against the
    pristine system through a fresh LU factorisation of the final basis
    (see the certification block below), so tableau drift can only cost
    performance, never soundness. When the warm start is unusable (no
    marker column for the touched row, artificials left in the basis, a
    dual stall, or a failed certificate) it falls back to the cold
    two-phase primal path.

    The tableau is a single row-major [float array] — (m+1) rows of a
    fixed [stride] — rather than an array of rows, for cache locality
    in the pivot inner loop.

    This is the computational core under {!Lp} and, transitively, under
    the branch-and-bound MILP solver that plays the role of the paper's
    "exact methods" (big-M encodings of ReLU, cf. Equation (2)). *)

type outcome =
  | Optimal of { objective : float; values : float array }
      (** [values] covers the structural variables only *)
  | Infeasible
  | Unbounded
  | Stalled
      (** the iteration limit was exceeded (numerical trouble); callers
          degrade to a timeout-style Unknown instead of crashing *)

let tol = 1e-9

(* Force a cold rebuild after this many consecutive warm solves: rank-one
   rhs updates accumulate float error on the shared tableau, and a
   periodic re-factorisation from pristine data bounds the drift. *)
let warm_refresh_limit = 100

(* Effort accounting: every tableau pivot and iterate() loop turn is
   counted, so a verification run can report exactly where its simplex
   time went (surfaced by `contiver --stats` and the bench trajectory).
   Warm-start effectiveness is counted too: hits (dual restart answered),
   misses (cold solve, no reusable basis), fallbacks (dual restart
   stalled, cold solve re-ran), and phase-1 skips. *)
let m_solves = Cv_util.Metrics.counter "lp.solves"

let m_pivots = Cv_util.Metrics.counter "lp.pivots"

let m_iterations = Cv_util.Metrics.counter "lp.iterations"

let m_warm_hits = Cv_util.Metrics.counter "lp.warmstart.hits"

let m_warm_misses = Cv_util.Metrics.counter "lp.warmstart.misses"

let m_warm_fallbacks = Cv_util.Metrics.counter "lp.warmstart.fallbacks"

let m_phase1_skipped = Cv_util.Metrics.counter "lp.phase1.skipped"

let t_seconds = Cv_util.Metrics.timer "lp.seconds"

let t_cert = Cv_util.Metrics.timer "lp.cert.seconds"

let t_dual = Cv_util.Metrics.timer "lp.dual.seconds"

let t_cold = Cv_util.Metrics.timer "lp.cold.seconds"

(* The state keeps the pristine system ([sa]/[sb]/[sc], row-major) for
   cold rebuilds next to the working tableau. [basis0.(i) = Some (j, s)]
   promises that structural column [j] has coefficient [s] (±1) in row
   [i], zero in every other row and zero objective cost (a slack or
   surplus): it can seed row [i]'s basis when [s·sb.(i) ≥ 0], and its
   tableau column is [B⁻¹·s·e_i], which is what lets {!set_rhs} apply an
   rhs change to the current basis as a rank-one update. *)
type state = {
  m : int;
  n : int;  (** structural variable count *)
  mutable stride : int;  (** row length: n + artificial-column capacity *)
  sa : float array;  (** pristine constraint matrix, m×n row-major *)
  sb : float array;  (** current raw rhs (any sign) *)
  sc : float array;  (** objective over structural columns *)
  singleton : (int * float) option array;
      (** per column: its only nonzero (row, coeff) when single-nonzero
          (slack/surplus shape) — lets certification factorise the basis
          by singleton reduction instead of a full m×m LU *)
  basis0 : (int * float) option array;  (** marker column + sign per row *)
  mutable tab : float array;  (** working tableau, (m+1)×stride row-major *)
  rhs : float array;  (** m+1 entries; [rhs.(m)] = −objective *)
  basis : int array;  (** basic variable per row *)
  dw : float array;
      (** dual Devex row weights ≈ ‖B⁻¹eᵢ‖²: pricing only, so the
          approximation error never affects correctness (every warm
          verdict is certified) — it just steers which row leaves *)
  mutable ncols : int;  (** active columns: n + live artificials *)
  mutable warm : bool;
      (** tableau/basis valid, artificial-free and priced for [sc] *)
  mutable since_cold : int;  (** warm solves since the last cold solve *)
  rowsign : float array;
      (** per-row sign flip applied by the last {!cold_build} (±1):
          working row [i] is [rowsign.(i)] times pristine row [i] —
          what certificate extraction needs to map multipliers back to
          the original row space *)
  mutable art_row : int array;
      (** creation row of each artificial column appended by the last
          {!cold_build}: column [n + k] was seeded for row
          [art_row.(k)] *)
}

let make ~a ~b ~c ~basis0 =
  let m = Array.length b in
  let n = Array.length c in
  if m > 0 && Array.length a.(0) <> n then invalid_arg "Simplex.make: shape";
  if Array.length basis0 <> m then invalid_arg "Simplex.make: basis0 length";
  let sa = Array.make (max 1 (m * n)) 0. in
  for i = 0 to m - 1 do
    Array.blit a.(i) 0 sa (i * n) n
  done;
  (* Artificial-column capacity starts at the marker-less row count
     (those always need one); {!cold_build} grows it on demand when
     rhs changes unseat marker seedings. Keeping the stride tight —
     instead of reserving the worst-case [n + m] — matters: the pivot
     inner loop is memory-bound and the working set should stay at
     ~[m·n] floats. *)
  let art0 =
    Array.fold_left
      (fun acc x -> match x with None -> acc + 1 | Some _ -> acc)
      0 basis0
  in
  let stride = max 1 (n + art0) in
  let singleton =
    Array.init n (fun j ->
        let row = ref (-1) and coeff = ref 0. and cnt = ref 0 in
        for i = 0 to m - 1 do
          let v = sa.((i * n) + j) in
          if v <> 0. then begin
            incr cnt;
            row := i;
            coeff := v
          end
        done;
        if !cnt = 1 then Some (!row, !coeff) else None)
  in
  {
    m;
    n;
    stride;
    sa;
    sb = Array.copy b;
    sc = Array.copy c;
    singleton;
    basis0 = Array.copy basis0;
    tab = Array.make ((m + 1) * stride) 0.;
    rhs = Array.make (m + 1) 0.;
    basis = Array.make (max 1 m) 0;
    dw = Array.make (max 1 m) 1.;
    ncols = n;
    warm = false;
    since_cold = 0;
    rowsign = Array.make (max 1 m) 1.;
    art_row = Array.make (max 1 art0) (-1);
  }

let copy_state st =
  {
    st with
    sb = Array.copy st.sb;
    tab = Array.copy st.tab;
    rhs = Array.copy st.rhs;
    basis = Array.copy st.basis;
    dw = Array.copy st.dw;
    rowsign = Array.copy st.rowsign;
    art_row = Array.copy st.art_row;
  }

(** [set_rhs st ~row v] replaces row [row]'s raw right-hand side. When
    the state is warm and the row has a marker column, the change is
    pushed through the current basis as a rank-one update (O(m)),
    preserving the warm basis for {!resolve}'s dual restart; otherwise
    the state degrades to cold. *)
let set_rhs st ~row v =
  if row < 0 || row >= st.m then invalid_arg "Simplex.set_rhs: row";
  let old = st.sb.(row) in
  if v <> old then begin
    st.sb.(row) <- v;
    if st.warm then begin
      match st.basis0.(row) with
      | None -> st.warm <- false
      | Some (u, sign) ->
        (* Column u's tableau data is B⁻¹A_u with A_u = sign·e_row, so
           B⁻¹e_row = sign·(tableau column u); the objective row entry
           follows the same formula with the reduced cost of u. *)
        let d = (v -. old) *. sign in
        for i = 0 to st.m do
          st.rhs.(i) <- st.rhs.(i) +. (d *. st.tab.((i * st.stride) + u))
        done
    end
  end

(* The pivot's O(m·n) elimination is the solver's hottest loop — use
   unchecked accesses (indices are bounded by [m]/[ncols] ≤ allocated
   extents by construction). *)
let pivot st ~row ~col =
  Cv_util.Metrics.incr m_pivots;
  let w = st.ncols in
  let tab = st.tab in
  let rhs = st.rhs in
  let base = row * st.stride in
  let inv = 1. /. Array.unsafe_get tab (base + col) in
  for j = 0 to w - 1 do
    Array.unsafe_set tab (base + j) (Array.unsafe_get tab (base + j) *. inv)
  done;
  Array.unsafe_set rhs row (Array.unsafe_get rhs row *. inv);
  for i = 0 to st.m do
    if i <> row then begin
      let ib = i * st.stride in
      let factor = Array.unsafe_get tab (ib + col) in
      if factor <> 0. then begin
        for j = 0 to w - 1 do
          Array.unsafe_set tab (ib + j)
            (Array.unsafe_get tab (ib + j)
            -. (factor *. Array.unsafe_get tab (base + j)))
        done;
        Array.unsafe_set rhs i
          (Array.unsafe_get rhs i -. (factor *. Array.unsafe_get rhs row))
      end
    end
  done;
  st.basis.(row) <- col

(* Entering column: most negative reduced cost (Dantzig) or smallest
   index with negative reduced cost (Bland). [allowed] filters columns. *)
let entering st ~bland ~allowed =
  let ob = st.m * st.stride in
  let tab = st.tab in
  if bland then begin
    let found = ref (-1) in
    (try
       for j = 0 to st.ncols - 1 do
         if allowed j && tab.(ob + j) < -.tol then begin
           found := j;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let best = ref (-1) and best_v = ref (-.tol) in
    for j = 0 to st.ncols - 1 do
      let c = Array.unsafe_get tab (ob + j) in
      if c < !best_v && allowed j then begin
        best_v := c;
        best := j
      end
    done;
    !best
  end

(* Ratio test with Bland tie-breaking on the leaving basic variable. *)
let leaving st col =
  let best = ref (-1) and best_r = ref 0. in
  for i = 0 to st.m - 1 do
    let aij = st.tab.((i * st.stride) + col) in
    if aij > tol then begin
      let ratio = st.rhs.(i) /. aij in
      if
        !best < 0
        || ratio < !best_r -. tol
        || (Float.abs (ratio -. !best_r) <= tol
           && st.basis.(i) < st.basis.(!best))
      then begin
        best := i;
        best_r := ratio
      end
    end
  done;
  if !best < 0 then None else Some !best

(* Run primal simplex iterations until optimal, unbounded, or the
   iteration cap (then [`Stalled] instead of crashing — the structured
   degradation path). The deadline is polled every 32 pivots — cheap
   relative to a pivot's O(m·n) work. *)
let iterate ?deadline ?max_iters st ~allowed =
  let max_dantzig = 4 * (st.m + st.ncols) in
  let max_total =
    match max_iters with
    | Some k -> k
    | None -> 8000 + (64 * (st.m + st.ncols))
  in
  let rec loop iter =
    Cv_util.Metrics.incr m_iterations;
    Cv_util.Deadline.check_every ~mask:31 iter deadline;
    if iter > max_total then `Stalled
    else begin
      let bland = iter > max_dantzig in
      match entering st ~bland ~allowed with
      | -1 -> `Optimal
      | col -> (
        match leaving st col with
        | None -> `Unbounded
        | Some row ->
          pivot st ~row ~col;
          loop (iter + 1))
    end
  in
  loop 0

(* Dual simplex from a dual-feasible basis (reduced costs ≥ 0, some rhs
   entries possibly negative after {!set_rhs}): pick the most negative
   basic value, leave it, enter the column minimising the dual ratio.
   Artificials are never considered (warm bases are artificial-free and
   [ncols = n]). [obj_limit]: every dual-feasible basis certifies, by
   weak duality, that the optimum is ≥ the current objective, and the
   objective climbs monotonically — so once it reaches [obj_limit] the
   caller's question ("can the optimum stay below my threshold?") is
   answered and the solve stops early ([`Limited]), leaving the state
   warm. Branch-and-bound fathoming needs nothing more. *)
let dual_iterate ?deadline ?max_iters ?obj_limit st =
  let max_total =
    match max_iters with Some k -> k | None -> 2000 + (16 * (st.m + st.n))
  in
  let ob = st.m * st.stride in
  let rec loop iter =
    Cv_util.Metrics.incr m_iterations;
    Cv_util.Deadline.check_every ~mask:31 iter deadline;
    if iter > max_total then `Stalled
    else if
      match obj_limit with
      | Some limit -> -.st.rhs.(st.m) >= limit
      | None -> false
    then `Limited
    else begin
      (* Leaving row by dual Devex pricing: maximise rhsᵢ²/γᵢ over the
         primal-infeasible rows, where γᵢ approximates ‖B⁻¹eᵢ‖². This
         takes far fewer pivots than the most-negative-rhs rule on the
         branch-and-bound workload, and since pricing only picks the
         pivot order — the verdict is certified afterwards — the weight
         approximation cannot hurt soundness. *)
      let rhs = st.rhs in
      let dw = st.dw in
      let row = ref (-1) and row_s = ref 0. in
      for i = 0 to st.m - 1 do
        let b = Array.unsafe_get rhs i in
        if b < -.tol then begin
          let s = b *. b /. Array.unsafe_get dw i in
          if s > !row_s then begin
            row_s := s;
            row := i
          end
        end
      done;
      if !row < 0 then `Optimal
      else begin
        let tab = st.tab in
        let base = !row * st.stride in
        let best = ref (-1) and best_ratio = ref Float.infinity in
        for j = 0 to st.n - 1 do
          let arj = Array.unsafe_get tab (base + j) in
          if arj < -.tol then begin
            (* Scan ascending and replace only on a strict improvement:
               ties keep the smallest column (Bland-style, terminating). *)
            let ratio = Array.unsafe_get tab (ob + j) /. -.arj in
            if !best < 0 || ratio < !best_ratio -. tol then begin
              best_ratio := ratio;
              best := j
            end
          end
        done;
        if !best < 0 then `Infeasible !row
        else begin
          (* Forrest–Goldfarb weight update from the entering column,
             using the pre-pivot tableau; reset the reference framework
             when a weight blows up (standard Devex practice). *)
          let arq = Array.unsafe_get tab (base + !best) in
          let gr = Array.unsafe_get dw !row in
          let gq = Float.max 1. (gr /. (arq *. arq)) in
          if gq > 1e12 then Array.fill dw 0 st.m 1.
          else begin
            let scale = gr /. (arq *. arq) in
            for i = 0 to st.m - 1 do
              if i <> !row then begin
                let aiq = Array.unsafe_get tab ((i * st.stride) + !best) in
                if aiq <> 0. then begin
                  let cand = aiq *. aiq *. scale in
                  if cand > Array.unsafe_get dw i then
                    Array.unsafe_set dw i cand
                end
              end
            done;
            Array.unsafe_set dw !row gq
          end;
          pivot st ~row:!row ~col:!best;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

(* Rebuild the working tableau from the pristine system: sign-fix every
   row, seed marker columns where usable, append artificials elsewhere.
   Returns [true] when artificials were added (phase 1 needed). *)
let cold_build st =
  (* A row seeds iff its marker sign agrees with the current rhs sign;
     count the rest and grow the artificial-column capacity if rhs
     changes pushed it past what {!make} provisioned. *)
  let needed = ref 0 in
  for i = 0 to st.m - 1 do
    match st.basis0.(i) with
    | Some (_, sign) when (sign > 0. && st.sb.(i) >= 0.) || (sign < 0. && st.sb.(i) <= 0.) ->
      ()
    | _ -> incr needed
  done;
  if st.n + !needed > st.stride then begin
    st.stride <- st.n + !needed;
    st.tab <- Array.make ((st.m + 1) * st.stride) 0.
  end;
  if !needed > Array.length st.art_row then
    st.art_row <- Array.make !needed (-1);
  Array.fill st.art_row 0 (Array.length st.art_row) (-1);
  Array.fill st.tab 0 (Array.length st.tab) 0.;
  Array.fill st.rhs 0 (Array.length st.rhs) 0.;
  let next_art = ref st.n in
  for i = 0 to st.m - 1 do
    let base = i * st.stride in
    for j = 0 to st.n - 1 do
      st.tab.(base + j) <- st.sa.((i * st.n) + j)
    done;
    st.rhs.(i) <- st.sb.(i);
    st.rowsign.(i) <- 1.;
    let negate () =
      for j = 0 to st.n - 1 do
        st.tab.(base + j) <- -.st.tab.(base + j)
      done;
      st.rhs.(i) <- -.st.rhs.(i);
      st.rowsign.(i) <- -1.
    in
    let seeded =
      match st.basis0.(i) with
      | Some (col, sign) when sign > 0. && st.sb.(i) >= 0. ->
        st.basis.(i) <- col;
        true
      | Some (col, sign) when sign < 0. && st.sb.(i) <= 0. ->
        negate ();
        st.basis.(i) <- col;
        true
      | _ -> false
    in
    if not seeded then begin
      if st.rhs.(i) < 0. then negate ();
      st.tab.(base + !next_art) <- 1.;
      st.basis.(i) <- !next_art;
      st.art_row.(!next_art - st.n) <- i;
      incr next_art
    end
  done;
  st.ncols <- !next_art;
  !next_art > st.n

(* Set the objective row to minimise [cost] (shorter arrays mean zero
   cost for the remaining columns), expressed in terms of the current
   basis: reduced costs r_j = c_j − c_B B⁻¹ A_j, and the rhs entry
   becomes −c_B B⁻¹ b (the negated objective value). *)
let install_objective st cost =
  let ob = st.m * st.stride in
  Array.fill st.tab ob st.stride 0.;
  Array.blit cost 0 st.tab ob (Array.length cost);
  st.rhs.(st.m) <- 0.;
  for i = 0 to st.m - 1 do
    let b = st.basis.(i) in
    let cb = if b < Array.length cost then cost.(b) else 0. in
    if cb <> 0. then begin
      let ib = i * st.stride in
      for j = 0 to st.ncols - 1 do
        st.tab.(ob + j) <- st.tab.(ob + j) -. (cb *. st.tab.(ib + j))
      done;
      st.rhs.(st.m) <- st.rhs.(st.m) -. (cb *. st.rhs.(i))
    end
  done

let extract st =
  let values = Array.make st.n 0. in
  for i = 0 to st.m - 1 do
    if st.basis.(i) < st.n then values.(st.basis.(i)) <- st.rhs.(i)
  done;
  Optimal { objective = -.st.rhs.(st.m); values }

(* ---- Pristine-basis certification of warm verdicts ------------------

   The dense tableau accumulates float error across warm solves: big-M
   ReLU encodings push its conditioning high enough that the drift can
   reach whole units after a few hundred pivots, which would turn warm
   bounds into unsound branch-and-bound fathoms. So the warm path never
   takes the tableau's word for a verdict. The final basis is
   re-factorised (LU with partial pivoting) from the {e pristine} system
   and the claim is checked as a certificate:

   - [`Optimal]: basic values [x_B = B⁻¹b] non-negative and the pricing
     vector [y] ([B'y = c_B]) dual-feasible — the answer returned is
     recomputed from [x_B], not from the drifted rhs;
   - [`Limited]: [y] dual-feasible and [y·b >= limit] (weak duality);
   - [`Infeasible]: the violated row's ray [z] ([B'z = e_row]) is a
     Farkas certificate: [z·A_j >= 0] for every column and [z·b < 0].

   A failed certificate falls back to the cold two-phase path (counted
   as a fallback), so tableau drift can only ever cost performance, and
   refreshing the rhs from the factorisation on success stops the drift
   from compounding. *)

(* A straight m×m factorisation would cost O(m³) per certified solve
   and dominate the warm path. But most basic columns are slacks —
   single-nonzero columns — whose rows eliminate with zero fill-in: a
   column [σ·e_r] pins its variable to row [r]'s equation alone, so the
   factorisation reduces to a dense LU of the small kernel spanned by
   the non-singleton basic columns, plus O(d) back-substitution per
   eliminated row. *)
type lu = {
  d : int;  (** kernel dimension *)
  krows : int array;  (** kernel row indices *)
  kpos : int array;  (** kernel basis positions *)
  lum : float array;  (** d×d row-major, packed L\U of the kernel *)
  perm : int array;  (** kernel row permutation *)
  elim : (int * int * float) array;
      (** (row, basis position, coeff) per basic singleton column *)
}

(* Factorise the current basis against the pristine [sa]: singleton
   reduction, then dense LU with partial pivoting on the kernel. [None]
   when the basis holds an artificial column or is numerically
   singular. *)
let lu_factor st =
  let m = st.m in
  let rowtaken = Array.make (max 1 m) false in
  let elim = ref [] and kpos = ref [] and nelim = ref 0 in
  let ok = ref true in
  for k = 0 to m - 1 do
    let j = st.basis.(k) in
    if j >= st.n then ok := false
    else
      match st.singleton.(j) with
      | Some (r, coeff) when not rowtaken.(r) ->
        rowtaken.(r) <- true;
        incr nelim;
        elim := (r, k, coeff) :: !elim
      | Some _ -> ok := false (* two singletons on one row: singular *)
      | None -> kpos := k :: !kpos
  done;
  if not !ok then None
  else begin
    let d = m - !nelim in
    let kpos = Array.of_list (List.rev !kpos) in
    let krows = Array.make (max 1 d) 0 in
    let ki = ref 0 in
    for r = 0 to m - 1 do
      if not rowtaken.(r) then begin
        krows.(!ki) <- r;
        incr ki
      end
    done;
    if Array.length kpos <> d || !ki <> d then None
    else begin
      let lum = Array.make (max 1 (d * d)) 0. in
      for i = 0 to d - 1 do
        let rb = krows.(i) * st.n in
        for c = 0 to d - 1 do
          lum.((i * d) + c) <- st.sa.(rb + st.basis.(kpos.(c)))
        done
      done;
      let amax =
        Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. lum
      in
      let eps = 1e-12 *. Float.max 1. amax in
      let perm = Array.init d (fun i -> i) in
      try
        for k = 0 to d - 1 do
          let p = ref k in
          for i = k + 1 to d - 1 do
            if Float.abs lum.((i * d) + k) > Float.abs lum.((!p * d) + k)
            then p := i
          done;
          if Float.abs lum.((!p * d) + k) <= eps then raise Exit;
          if !p <> k then begin
            for j = 0 to d - 1 do
              let t = lum.((k * d) + j) in
              lum.((k * d) + j) <- lum.((!p * d) + j);
              lum.((!p * d) + j) <- t
            done;
            let t = perm.(k) in
            perm.(k) <- perm.(!p);
            perm.(!p) <- t
          end;
          let piv = lum.((k * d) + k) in
          for i = k + 1 to d - 1 do
            let f = lum.((i * d) + k) /. piv in
            lum.((i * d) + k) <- f;
            if f <> 0. then
              for j = k + 1 to d - 1 do
                lum.((i * d) + j) <-
                  lum.((i * d) + j) -. (f *. lum.((k * d) + j))
              done
          done
        done;
        Some
          { d; krows; kpos; lum; perm; elim = Array.of_list (List.rev !elim) }
      with Exit -> None
    end
  end

(* Dense kernel solve [K xk = rhs] through [PK = LU] (in place). *)
let kernel_solve { d; lum; perm; _ } rhs =
  let x = Array.init d (fun i -> rhs.(perm.(i))) in
  for i = 1 to d - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (lum.((i * d) + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = d - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to d - 1 do
      acc := !acc -. (lum.((i * d) + j) *. x.(j))
    done;
    x.(i) <- !acc /. lum.((i * d) + i)
  done;
  x

(* Dense kernel transpose solve [K' yk = rhs]: [U' w = rhs], [L' z = w],
   [yk = P' z]. *)
let kernel_solve_t { d; lum; perm; _ } rhs =
  let w = Array.copy rhs in
  for i = 0 to d - 1 do
    let acc = ref w.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (lum.((j * d) + i) *. w.(j))
    done;
    w.(i) <- !acc /. lum.((i * d) + i)
  done;
  for i = d - 1 downto 0 do
    let acc = ref w.(i) in
    for j = i + 1 to d - 1 do
      acc := !acc -. (lum.((j * d) + i) *. w.(j))
    done;
    w.(i) <- !acc
  done;
  let y = Array.make (max 1 d) 0. in
  for i = 0 to d - 1 do
    y.(perm.(i)) <- w.(i)
  done;
  y

(* Solve [B x = b]; [x] is indexed by basis {e position}. Kernel rows
   involve kernel columns only (every basic singleton lives in its own
   eliminated row), so solve the kernel first and back-substitute each
   eliminated row's variable. *)
let lu_solve st lu b =
  let x = Array.make (max 1 st.m) 0. in
  let rhs_k = Array.init lu.d (fun i -> b.(lu.krows.(i))) in
  let xk = kernel_solve lu rhs_k in
  for c = 0 to lu.d - 1 do
    x.(lu.kpos.(c)) <- xk.(c)
  done;
  Array.iter
    (fun (r, pos, coeff) ->
      let acc = ref b.(r) in
      let rb = r * st.n in
      for c = 0 to lu.d - 1 do
        acc := !acc -. (st.sa.(rb + st.basis.(lu.kpos.(c))) *. xk.(c))
      done;
      x.(pos) <- !acc /. coeff)
    lu.elim;
  x

(* Solve [B' y = c]; [c] is indexed by basis position, [y] by row. Each
   eliminated row's multiplier comes straight from its singleton column;
   the kernel multipliers then solve the reduced transpose system. *)
let lu_solve_t st lu c =
  let y = Array.make (max 1 st.m) 0. in
  Array.iter (fun (r, pos, coeff) -> y.(r) <- c.(pos) /. coeff) lu.elim;
  let rhs_k =
    Array.init lu.d (fun ci ->
        let col = st.basis.(lu.kpos.(ci)) in
        let acc = ref c.(lu.kpos.(ci)) in
        Array.iter
          (fun (r, _, _) -> acc := !acc -. (st.sa.((r * st.n) + col) *. y.(r)))
          lu.elim;
        !acc)
  in
  let yk = kernel_solve_t lu rhs_k in
  for i = 0 to lu.d - 1 do
    y.(lu.krows.(i)) <- yk.(i)
  done;
  y

(* [y] prices every pristine column to a non-negative reduced cost
   (within a relative noise floor): [y] is dual-feasible. All columns
   are priced in one row-major sweep of [sa] (accumulators per column)
   — the column-at-a-time order would stride through [sa] and miss
   cache on every access. *)
let dual_feasible st y =
  let n = st.n in
  let sa = st.sa in
  let acc = Array.init n (fun j -> st.sc.(j)) in
  let scale = Array.init n (fun j -> Float.abs st.sc.(j)) in
  for i = 0 to st.m - 1 do
    let yi = Array.unsafe_get y i in
    if yi <> 0. then begin
      let base = i * n in
      for j = 0 to n - 1 do
        let t = yi *. Array.unsafe_get sa (base + j) in
        Array.unsafe_set acc j (Array.unsafe_get acc j -. t);
        Array.unsafe_set scale j (Array.unsafe_get scale j +. Float.abs t)
      done
    end
  done;
  let ok = ref true in
  for j = 0 to n - 1 do
    if Array.unsafe_get acc j < -1e-7 *. (1. +. Array.unsafe_get scale j)
    then ok := false
  done;
  !ok

(* Certify a warm dual-simplex verdict against the pristine system and,
   on success, return the answer recomputed from the factorisation.
   [None] means the certificate failed (fall back to the cold path). *)
let certify_warm st verdict =
  match lu_factor st with
  | None -> None
  | Some lu -> (
    let basic_cost () = Array.init st.m (fun k -> st.sc.(st.basis.(k))) in
    match verdict with
    | `Optimal ->
      let x = lu_solve st lu st.sb in
      let xmax = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1. x in
      if Array.exists (fun v -> v < -1e-6 *. xmax) x then None
      else begin
        let cb = basic_cost () in
        let y = lu_solve_t st lu cb in
        if not (dual_feasible st y) then None
        else begin
          let o = ref 0. in
          for k = 0 to st.m - 1 do
            st.rhs.(k) <- x.(k);
            o := !o +. (cb.(k) *. x.(k))
          done;
          st.rhs.(st.m) <- -. !o;
          Some (extract st)
        end
      end
    | `Limited limit ->
      let cb = basic_cost () in
      let y = lu_solve_t st lu cb in
      if not (dual_feasible st y) then None
      else begin
        let dv = ref 0. in
        for i = 0 to st.m - 1 do
          dv := !dv +. (y.(i) *. st.sb.(i))
        done;
        (* The limit must hold for the certified value, not the drifted
           tableau objective, or the caller's fathom test misfires. *)
        if !dv >= limit then begin
          let x = lu_solve st lu st.sb in
          for k = 0 to st.m - 1 do
            st.rhs.(k) <- x.(k)
          done;
          st.rhs.(st.m) <- -. !dv;
          Some (extract st)
        end
        else None
      end
    | `Infeasible row ->
      let e = Array.make (max 1 st.m) 0. in
      e.(row) <- 1.;
      let z = lu_solve_t st lu e in
      (* Farkas pricing in one row-major sweep, like {!dual_feasible}. *)
      let n = st.n in
      let sa = st.sa in
      let acc = Array.make n 0. in
      let scale = Array.make n 0. in
      for i = 0 to st.m - 1 do
        let zi = Array.unsafe_get z i in
        if zi <> 0. then begin
          let base = i * n in
          for j = 0 to n - 1 do
            let t = zi *. Array.unsafe_get sa (base + j) in
            Array.unsafe_set acc j (Array.unsafe_get acc j +. t);
            Array.unsafe_set scale j (Array.unsafe_get scale j +. Float.abs t)
          done
        end
      done;
      let ok = ref true in
      for j = 0 to n - 1 do
        if Array.unsafe_get acc j < -1e-7 *. (1. +. Array.unsafe_get scale j)
        then ok := false
      done;
      if not !ok then None
      else begin
        let zb = ref 0. and zscale = ref 0. in
        for i = 0 to st.m - 1 do
          let t = z.(i) *. st.sb.(i) in
          zb := !zb +. t;
          zscale := !zscale +. Float.abs t
        done;
        if !zb < -1e-7 *. (1. +. !zscale) then Some Infeasible else None
      end)

(* Cold path: rebuild, phase 1 if artificials were needed, drive
   leftover artificials out, price the real objective, phase 2. *)
let cold_solve ?deadline ?max_iters st =
  st.warm <- false;
  st.since_cold <- 0;
  let phase1 =
    if not (cold_build st) then begin
      Cv_util.Metrics.incr m_phase1_skipped;
      `Feasible
    end
    else begin
      (* Phase 1: minimise the sum of artificials. *)
      let c1 = Array.make st.ncols 0. in
      for j = st.n to st.ncols - 1 do
        c1.(j) <- 1.
      done;
      install_objective st c1;
      match iterate ?deadline ?max_iters st ~allowed:(fun _ -> true) with
      | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
      | `Stalled -> `Stalled
      | `Optimal -> if -.st.rhs.(st.m) > 1e-6 then `Infeasible else `Feasible
    end
  in
  match phase1 with
  | `Stalled -> Stalled
  | `Infeasible -> Infeasible
  | `Feasible -> (
    (* Drive out any artificial still basic at zero level. *)
    for i = 0 to st.m - 1 do
      if st.basis.(i) >= st.n then begin
        let base = i * st.stride in
        let found = ref (-1) in
        (try
           for j = 0 to st.n - 1 do
             if Float.abs st.tab.(base + j) > 1e-7 then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot st ~row:i ~col:!found
        (* else: redundant row; harmless to keep *)
      end
    done;
    (* Phase 2: original objective, artificials barred from entering. *)
    install_objective st st.sc;
    match iterate ?deadline ?max_iters st ~allowed:(fun j -> j < st.n) with
    | `Stalled -> Stalled
    | `Unbounded -> Unbounded
    | `Optimal ->
      if Array.for_all (fun b -> b < st.n) st.basis then begin
        (* Artificial-free optimal basis: reusable for dual restarts.
           Retire the artificial columns so later pivots skip them, and
           restart the Devex reference framework for the new basis. *)
        st.warm <- true;
        st.ncols <- st.n;
        Array.fill st.dw 0 st.m 1.
      end;
      extract st)

(** [resolve st] solves the state's current system. Warm states try the
    dual-simplex restart first and certify its verdict against the
    pristine system (a hit); a dual stall or a failed certificate falls
    back to the cold path (a fallback); cold states run two-phase primal
    (a miss). Raises {!Cv_util.Deadline.Expired} when [deadline] runs
    out mid-solve. *)
let resolve ?deadline ?max_iters ?obj_limit st =
  Cv_util.Fault.trip Cv_util.Fault.Solver_failure;
  Cv_util.Deadline.check_opt deadline;
  Cv_util.Metrics.incr m_solves;
  Cv_util.Metrics.time t_seconds @@ fun () ->
  let fallback () =
    Cv_util.Metrics.incr m_warm_fallbacks;
    Cv_util.Metrics.time t_cold (fun () -> cold_solve ?deadline ?max_iters st)
  in
  if st.warm && st.since_cold < warm_refresh_limit then begin
    let verdict =
      (* Fault injection: a spurious warm-restart failure. Escalates
         through the normal stall path — the cold solve below recomputes
         from scratch, so the verdict is unchanged, only slower. *)
      if Cv_util.Fault.fires Cv_util.Fault.Spurious_solver_error then None
      else
      match Cv_util.Metrics.time t_dual (fun () -> dual_iterate ?deadline ?max_iters ?obj_limit st) with
      | `Stalled -> None
      | `Optimal -> Some `Optimal
      | `Limited -> (
        match obj_limit with Some l -> Some (`Limited l) | None -> None)
      | `Infeasible row -> Some (`Infeasible row)
    in
    match Option.map (fun v -> Cv_util.Metrics.time t_cert (fun () -> certify_warm st v)) verdict with
    | Some (Some res) ->
      st.since_cold <- st.since_cold + 1;
      Cv_util.Metrics.incr m_warm_hits;
      Cv_util.Metrics.incr m_phase1_skipped;
      res
    | Some None | None -> fallback ()
  end
  else begin
    Cv_util.Metrics.incr m_warm_misses;
    cold_solve ?deadline ?max_iters st
  end

(** [solve ?basis0 ~a ~b ~c ()] minimises [c·y] subject to [A y = b],
    [y >= 0] — the one-shot entry point (a fresh cold state).
    [basis0.(i)], when given, names a structural slack column usable as
    row [i]'s initial basic variable (+1 there, 0 elsewhere, zero cost),
    letting the solver skip artificials — and often all of phase 1 —
    for those rows. Returns structural values only. *)
let solve ?deadline ?max_iters ?basis0 ~a ~b ~c () =
  let m = Array.length b in
  let basis0 =
    match basis0 with
    | Some arr -> Array.map (Option.map (fun j -> (j, 1.))) arr
    | None -> Array.make m None
  in
  resolve ?deadline ?max_iters (make ~a ~b ~c ~basis0)

(* ------------------------------------------------------------------ *)
(* Snapshot accessors for certificate extraction ({!Lp_cert}). All
   return copies — the solver state stays sealed. *)

let num_rows st = st.m

let num_cols st = st.n

let system_rows st =
  Array.init st.m (fun i -> Array.sub st.sa (i * st.n) st.n)

let system_rhs st = Array.sub st.sb 0 st.m

let system_obj st = Array.copy st.sc

let initial_basis st = Array.sub st.basis0 0 st.m

let final_basis st = Array.sub st.basis 0 st.m

let row_signs st = Array.sub st.rowsign 0 st.m

let artificial_rows st =
  Array.sub st.art_row 0 (max 0 (st.ncols - st.n))
