(** Linear-programming model builder over {!Simplex}.

    Callers declare variables with bounds, add linear constraints and an
    objective; [solve] lowers to the standard form [min c·y, Ay = b,
    y ≥ 0] handled by the tableau:
    - a variable with finite lower bound [l] is shifted, [x = l + y];
    - a variable with only a finite upper bound [u] is reflected,
      [x = u − y];
    - a free variable is split, [x = y⁺ − y⁻];
    - finite upper bounds after shifting become explicit rows;
    - [≤ / ≥ / =] rows gain slack/surplus variables (sign-fixing happens
      inside {!Simplex}).

    Maximisation negates the objective.

    The incremental interface ([compile] / [set_bounds_compiled] /
    [solve_compiled]) lowers the model {e once} into a reusable
    {!compiled} form in which re-bounding a declared [fixable] variable
    is a pair of O(m) right-hand-side updates against the previous
    optimal basis — the branch-and-bound hot path — instead of a [copy]
    plus a full re-lowering of the constraint list. *)

type relop = Le | Ge | Eq

type var = int

type term = float * var

type problem = {
  mutable nvars : int;
  mutable lo : float list;  (** reversed *)
  mutable hi : float list;  (** reversed *)
  mutable names : string list;  (** reversed *)
  mutable constraints : (term list * relop * float) list;  (** reversed *)
  mutable ncons : int;  (** cached [List.length constraints] *)
  mutable obj_terms : term list;
  mutable maximize : bool;
}

type solution = { objective : float; values : float array }

type result = Optimal of solution | Infeasible | Unbounded | Stalled

(** [create ()] is an empty model. *)
let create () =
  { nvars = 0; lo = []; hi = []; names = []; constraints = []; ncons = 0;
    obj_terms = []; maximize = false }

(** [add_var p ?lo ?hi ?name ()] declares a variable with optional
    bounds (defaults: free) and returns its handle. *)
let add_var p ?(lo = Float.neg_infinity) ?(hi = Float.infinity) ?name () =
  if lo > hi then invalid_arg "Lp.add_var: lo > hi";
  let v = p.nvars in
  p.nvars <- v + 1;
  p.lo <- lo :: p.lo;
  p.hi <- hi :: p.hi;
  p.names <- (match name with Some n -> n | None -> Printf.sprintf "x%d" v) :: p.names;
  v

(** [add_constraint p terms op rhs] adds [Σ terms (op) rhs]. *)
let add_constraint p terms op rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= p.nvars then invalid_arg "Lp.add_constraint: unknown var")
    terms;
  p.constraints <- (terms, op, rhs) :: p.constraints;
  p.ncons <- p.ncons + 1

(** [set_objective p ~maximize terms] installs the objective. *)
let set_objective p ~maximize terms =
  p.obj_terms <- terms;
  p.maximize <- maximize

(** [var_count p] is the number of declared variables. *)
let var_count p = p.nvars

(** [constraint_count p] is the cached number of added constraints. *)
let constraint_count p = p.ncons

(** [copy p] is an independent copy (shares immutable term lists). *)
let copy p =
  { nvars = p.nvars; lo = p.lo; hi = p.hi; names = p.names;
    constraints = p.constraints; ncons = p.ncons; obj_terms = p.obj_terms;
    maximize = p.maximize }

(** [set_bounds p v ~lo ~hi] tightens the bounds of [v] in place — the
    model-level path (forces a fresh lowering; branch-and-bound uses
    {!set_bounds_compiled} instead). *)
let set_bounds p v ~lo ~hi =
  if v < 0 || v >= p.nvars then invalid_arg "Lp.set_bounds";
  let rec update i = function
    | [] -> []
    | x :: rest -> if i = 0 then lo :: rest else x :: update (i - 1) rest
  in
  (* Lists are reversed: index from the back. *)
  let idx = p.nvars - 1 - v in
  p.lo <- update idx p.lo;
  let rec update_hi i = function
    | [] -> []
    | x :: rest -> if i = 0 then hi :: rest else x :: update_hi (i - 1) rest
  in
  p.hi <- update_hi idx p.hi

(** [bounds p v] reads the current bounds of [v]. *)
let bounds p v =
  let idx = p.nvars - 1 - v in
  (List.nth p.lo idx, List.nth p.hi idx)

(* Lowering bookkeeping: how an original variable maps into standard-form
   column(s). *)
type mapping =
  | Shifted of int * float  (** x = l + y_col *)
  | Reflected of int * float  (** x = u − y_col *)
  | Split of int * int  (** x = y⁺ − y⁻ *)

(* Bound-row bookkeeping for a fixable variable [x = l + y]: row
   [f_row_ub] is [y + p = hi − l] and row [f_row_lb] is [y − q = lo − l]
   (markers p/q), so re-bounding x within its compiled box is two rhs
   writes. *)
type fix_info = { f_l : float; f_u : float; f_row_ub : int; f_row_lb : int }

type compiled = {
  c_state : Simplex.state;
  c_mapping : mapping array;
  c_sign : float;
  c_const_shift : float;
  c_nvars : int;
  c_fix : (var, fix_info) Hashtbl.t;
  c_xu : float array;
      (** sound upper bound per standard column ([infinity] when none is
          derivable) — the compensation bounds certificate extraction
          needs for Neumaier–Shcherbina-style safe dual bounds *)
}

(** [compile ?fixable p] lowers the model to standard form once. Each
    [fixable] variable (finite bounds required) gets a pair of bound
    rows whose right-hand sides encode its current box, so
    {!set_bounds_compiled} can re-bound it without re-lowering. The
    objective is captured as currently set. *)
let compile ?(fixable = []) p =
  (* Fault injection: arena allocation fails, as under memory
     pressure. Raises so the supervisor's retry/fallback ladder — not
     this module — decides how to degrade. *)
  Cv_util.Fault.trip Cv_util.Fault.Alloc_failure;
  let lo = Array.of_list (List.rev p.lo) in
  let hi = Array.of_list (List.rev p.hi) in
  let is_fixable = Hashtbl.create (List.length fixable) in
  List.iter
    (fun v ->
      if v < 0 || v >= p.nvars then invalid_arg "Lp.compile: unknown fixable var";
      if lo.(v) = Float.neg_infinity || hi.(v) = Float.infinity then
        invalid_arg "Lp.compile: fixable var needs finite bounds";
      Hashtbl.replace is_fixable v ())
    fixable;
  let ncols = ref 0 in
  let fresh () =
    let c = !ncols in
    ncols := c + 1;
    c
  in
  let mapping =
    Array.init p.nvars (fun j ->
        if lo.(j) > Float.neg_infinity then Shifted (fresh (), lo.(j))
        else if hi.(j) < Float.infinity then Reflected (fresh (), hi.(j))
        else Split (fresh (), fresh ()))
  in
  (* Rows: user constraints, then upper-bound rows for shifted vars with
     a finite upper bound, then lower/upper bound-row pairs for the
     fixable vars. Collected in reverse with a running index. *)
  let rows = ref [] (* (coeff array over std cols, relop, rhs) *) in
  let nrows = ref 0 in
  let push_row r =
    rows := r :: !rows;
    let i = !nrows in
    nrows := i + 1;
    i
  in
  let lower_terms terms rhs0 =
    (* Returns (coeffs over std cols, adjusted rhs). *)
    let coeffs = Array.make !ncols 0. in
    let rhs = ref rhs0 in
    List.iter
      (fun (c, v) ->
        match mapping.(v) with
        | Shifted (col, l) ->
          coeffs.(col) <- coeffs.(col) +. c;
          rhs := !rhs -. (c *. l)
        | Reflected (col, u) ->
          coeffs.(col) <- coeffs.(col) -. c;
          rhs := !rhs -. (c *. u)
        | Split (cp, cn) ->
          coeffs.(cp) <- coeffs.(cp) +. c;
          coeffs.(cn) <- coeffs.(cn) -. c)
      terms;
    (coeffs, !rhs)
  in
  List.iter
    (fun (terms, op, rhs) ->
      let coeffs, rhs = lower_terms terms rhs in
      ignore (push_row (coeffs, op, rhs)))
    (List.rev p.constraints);
  let c_fix = Hashtbl.create (Hashtbl.length is_fixable) in
  (* Bound rows. *)
  Array.iteri
    (fun j m ->
      match m with
      | Shifted (col, l) when Hashtbl.mem is_fixable j ->
        let unit_row () =
          let coeffs = Array.make !ncols 0. in
          coeffs.(col) <- 1.;
          coeffs
        in
        let f_row_ub = push_row (unit_row (), Le, hi.(j) -. l) in
        let f_row_lb = push_row (unit_row (), Ge, lo.(j) -. l) in
        Hashtbl.replace c_fix j { f_l = l; f_u = hi.(j); f_row_ub; f_row_lb }
      | Shifted (col, l) when hi.(j) < Float.infinity ->
        let coeffs = Array.make !ncols 0. in
        coeffs.(col) <- 1.;
        ignore (push_row (coeffs, Le, hi.(j) -. l))
      | _ -> ())
    mapping;
  let rows = List.rev !rows in
  (* Slack/surplus columns; they double as basis-seeding markers (sign
     −1 for surplus rows — {!Simplex} handles the sign-fixing). *)
  let n_struct = !ncols in
  let n_slack =
    List.fold_left (fun acc (_, op, _) -> if op = Eq then acc else acc + 1) 0 rows
  in
  let total = n_struct + n_slack in
  let m = List.length rows in
  let a = Array.init m (fun _ -> Array.make total 0.) in
  let b = Array.make m 0. in
  let basis0 = Array.make m None in
  let slack = ref n_struct in
  List.iteri
    (fun i (coeffs, op, rhs) ->
      Array.blit coeffs 0 a.(i) 0 n_struct;
      (match op with
      | Le ->
        a.(i).(!slack) <- 1.;
        basis0.(i) <- Some (!slack, 1.);
        incr slack
      | Ge ->
        a.(i).(!slack) <- -1.;
        basis0.(i) <- Some (!slack, -1.);
        incr slack
      | Eq -> ());
      b.(i) <- rhs)
    rows;
  (* Objective over standard columns. *)
  let c = Array.make total 0. in
  let sign = if p.maximize then -1. else 1. in
  let const_shift = ref 0. in
  List.iter
    (fun (coef, v) ->
      let coef = sign *. coef in
      match mapping.(v) with
      | Shifted (col, l) ->
        c.(col) <- c.(col) +. coef;
        const_shift := !const_shift +. (coef *. l)
      | Reflected (col, u) ->
        c.(col) <- c.(col) -. coef;
        const_shift := !const_shift +. (coef *. u)
      | Split (cp, cn) ->
        c.(cp) <- c.(cp) +. coef;
        c.(cn) <- c.(cn) -. coef)
    p.obj_terms;
  (* Sound per-column upper bounds (outward-rounded): structural
     columns from the declared variable boxes; slack/surplus columns
     from interval-evaluating their row over those boxes. Any feasible
     point respects them, so adding [x ≤ xu] to the certified system
     never cuts a feasible point — it only lets the checker compensate
     near-zero reduced-cost residuals against a finite range. *)
  let xu = Array.make total Float.infinity in
  Array.iteri
    (fun j m ->
      match m with
      | Shifted (col, l) ->
        if hi.(j) < Float.infinity then xu.(col) <- Float.succ (hi.(j) -. l)
      | Reflected (col, u) ->
        if lo.(j) > Float.neg_infinity then xu.(col) <- Float.succ (u -. lo.(j))
      | Split _ -> ())
    mapping;
  let slack = ref n_struct in
  List.iter
    (fun (coeffs, op, rhs) ->
      match op with
      | Eq -> ()
      | Le | Ge ->
        (* Le: s = rhs − a·y ≤ rhs − min(a·y); Ge: q = a·y − rhs ≤
           max(a·y) − rhs; over y_col ∈ [0, xu_col]. *)
        let lo_sum = ref 0. and hi_sum = ref 0. in
        Array.iteri
          (fun col coef ->
            if coef > 0. then
              hi_sum := Float.succ (!hi_sum +. Float.succ (coef *. xu.(col)))
            else if coef < 0. then
              lo_sum := Float.pred (!lo_sum +. Float.pred (coef *. xu.(col))))
          coeffs;
        let b =
          match op with
          | Le -> Float.succ (rhs -. !lo_sum)
          | Ge -> Float.succ (!hi_sum -. rhs)
          | Eq -> assert false
        in
        if Float.is_finite b then xu.(!slack) <- Float.max 0. b;
        incr slack)
    rows;
  {
    c_state = Simplex.make ~a ~b ~c ~basis0;
    c_mapping = mapping;
    c_sign = sign;
    c_const_shift = !const_shift;
    c_nvars = p.nvars;
    c_fix;
    c_xu = xu;
  }

(** [copy_compiled c] is an independent compiled instance sharing the
    immutable lowering; branch-and-bound workers each get one. *)
let copy_compiled c = { c with c_state = Simplex.copy_state c.c_state }

(** [set_bounds_compiled c v ~lo ~hi] re-bounds fixable variable [v]
    within its compiled box [f_l, f_u] — two rhs writes, preserving the
    warm basis. *)
let set_bounds_compiled c v ~lo ~hi =
  match Hashtbl.find_opt c.c_fix v with
  | None -> invalid_arg "Lp.set_bounds_compiled: var was not compiled fixable"
  | Some fi ->
    if lo > hi || lo < fi.f_l -. 1e-9 || hi > fi.f_u +. 1e-9 then
      invalid_arg "Lp.set_bounds_compiled: bounds outside compiled box";
    Simplex.set_rhs c.c_state ~row:fi.f_row_ub (hi -. fi.f_l);
    Simplex.set_rhs c.c_state ~row:fi.f_row_lb (lo -. fi.f_l)

(** [solve_compiled c] solves the compiled model's current system (warm
    dual restart when possible) and lifts the outcome back to original
    variables. [bound_cutoff] stops a warm solve early once weak duality
    proves the objective cannot beat the cutoff (≤ it when maximising,
    ≥ it when minimising): the returned [Optimal] then carries that
    certified bound rather than the optimum — enough for
    branch-and-bound fathoming. Raises {!Cv_util.Deadline.Expired} when
    the budget runs out. *)
let solve_compiled ?deadline ?max_iters ?bound_cutoff c =
  (* The internal form always minimises: objective = sign·(o + shift),
     so "no better than the cutoff" reads o ≥ sign·cutoff − shift. *)
  let obj_limit =
    Option.map (fun b -> (c.c_sign *. b) -. c.c_const_shift) bound_cutoff
  in
  match Simplex.resolve ?deadline ?max_iters ?obj_limit c.c_state with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Stalled -> Stalled
  | Simplex.Optimal { objective; values } ->
    let x = Array.make c.c_nvars 0. in
    Array.iteri
      (fun j m ->
        match m with
        | Shifted (col, l) -> x.(j) <- l +. values.(col)
        | Reflected (col, u) -> x.(j) <- u -. values.(col)
        | Split (cp, cn) -> x.(j) <- values.(cp) -. values.(cn))
      c.c_mapping;
    let obj = c.c_sign *. (objective +. c.c_const_shift) in
    Optimal { objective = obj; values = x }

(** [solve ?deadline p] lowers and solves in one shot; raises
    {!Cv_util.Deadline.Expired} when the budget runs out. *)
let solve ?deadline ?max_iters p = solve_compiled ?deadline ?max_iters (compile p)

(** [maximize_linear p terms] sets a maximisation objective and solves —
    convenience for the verifier's per-neuron bound queries. *)
let maximize_linear p terms =
  set_objective p ~maximize:true terms;
  solve p

(** [minimize_linear p terms] sets a minimisation objective and solves. *)
let minimize_linear p terms =
  set_objective p ~maximize:false terms;
  solve p

(* ------------------------------------------------------------------ *)
(* Lowering introspection for certificate extraction ({!Lp_cert}). *)

let compiled_state c = c.c_state

let compiled_frame c = (c.c_sign, c.c_const_shift)

let compiled_fix_rows c v =
  Option.map
    (fun fi -> (fi.f_row_ub, fi.f_row_lb, fi.f_l))
    (Hashtbl.find_opt c.c_fix v)

let compiled_uppers c = Array.copy c.c_xu
