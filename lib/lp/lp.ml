(** Linear-programming model builder over {!Simplex}.

    Callers declare variables with bounds, add linear constraints and an
    objective; [solve] lowers to the standard form [min c·y, Ay = b,
    y ≥ 0] handled by the tableau:
    - a variable with finite lower bound [l] is shifted, [x = l + y];
    - a variable with only a finite upper bound [u] is reflected,
      [x = u − y];
    - a free variable is split, [x = y⁺ − y⁻];
    - finite upper bounds after shifting become explicit rows;
    - [≤ / ≥ / =] rows gain slack/surplus variables, rows are sign-fixed
      so the rhs is non-negative.

    Maximisation negates the objective. *)

type relop = Le | Ge | Eq

type var = int

type term = float * var

type problem = {
  mutable nvars : int;
  mutable lo : float list;  (** reversed *)
  mutable hi : float list;  (** reversed *)
  mutable names : string list;  (** reversed *)
  mutable constraints : (term list * relop * float) list;  (** reversed *)
  mutable obj_terms : term list;
  mutable maximize : bool;
}

type solution = { objective : float; values : float array }

type result = Optimal of solution | Infeasible | Unbounded

(** [create ()] is an empty model. *)
let create () =
  { nvars = 0; lo = []; hi = []; names = []; constraints = [];
    obj_terms = []; maximize = false }

(** [add_var p ?lo ?hi ?name ()] declares a variable with optional
    bounds (defaults: free) and returns its handle. *)
let add_var p ?(lo = Float.neg_infinity) ?(hi = Float.infinity) ?name () =
  if lo > hi then invalid_arg "Lp.add_var: lo > hi";
  let v = p.nvars in
  p.nvars <- v + 1;
  p.lo <- lo :: p.lo;
  p.hi <- hi :: p.hi;
  p.names <- (match name with Some n -> n | None -> Printf.sprintf "x%d" v) :: p.names;
  v

(** [add_constraint p terms op rhs] adds [Σ terms (op) rhs]. *)
let add_constraint p terms op rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= p.nvars then invalid_arg "Lp.add_constraint: unknown var")
    terms;
  p.constraints <- (terms, op, rhs) :: p.constraints

(** [set_objective p ~maximize terms] installs the objective. *)
let set_objective p ~maximize terms =
  p.obj_terms <- terms;
  p.maximize <- maximize

(** [var_count p] is the number of declared variables. *)
let var_count p = p.nvars

(** [constraint_count p] is the number of added constraints. *)
let constraint_count p = List.length p.constraints

(** [copy p] is an independent copy (shares immutable term lists). *)
let copy p =
  { nvars = p.nvars; lo = p.lo; hi = p.hi; names = p.names;
    constraints = p.constraints; obj_terms = p.obj_terms;
    maximize = p.maximize }

(** [set_bounds p v ~lo ~hi] tightens the bounds of [v] in place — used
    by branch-and-bound when fixing binaries. *)
let set_bounds p v ~lo ~hi =
  if v < 0 || v >= p.nvars then invalid_arg "Lp.set_bounds";
  let rec update i = function
    | [] -> []
    | x :: rest -> if i = 0 then lo :: rest else x :: update (i - 1) rest
  in
  (* Lists are reversed: index from the back. *)
  let idx = p.nvars - 1 - v in
  p.lo <- update idx p.lo;
  let rec update_hi i = function
    | [] -> []
    | x :: rest -> if i = 0 then hi :: rest else x :: update_hi (i - 1) rest
  in
  p.hi <- update_hi idx p.hi

(** [bounds p v] reads the current bounds of [v]. *)
let bounds p v =
  let idx = p.nvars - 1 - v in
  (List.nth p.lo idx, List.nth p.hi idx)

(* Lowering bookkeeping: how an original variable maps into standard-form
   column(s). *)
type mapping =
  | Shifted of int * float  (** x = l + y_col *)
  | Reflected of int * float  (** x = u − y_col *)
  | Split of int * int  (** x = y⁺ − y⁻ *)

(** [solve ?deadline p] runs two-phase simplex on the lowered model;
    raises {!Cv_util.Deadline.Expired} when the budget runs out. *)
let solve ?deadline p =
  let lo = Array.of_list (List.rev p.lo) in
  let hi = Array.of_list (List.rev p.hi) in
  let ncols = ref 0 in
  let fresh () =
    let c = !ncols in
    ncols := c + 1;
    c
  in
  let mapping =
    Array.init p.nvars (fun j ->
        if lo.(j) > Float.neg_infinity then Shifted (fresh (), lo.(j))
        else if hi.(j) < Float.infinity then Reflected (fresh (), hi.(j))
        else Split (fresh (), fresh ()))
  in
  (* Rows: user constraints plus upper-bound rows for shifted vars that
     also have a finite upper bound. *)
  let rows = ref [] (* (coeff array over std cols, relop, rhs) *) in
  let lower_terms terms rhs0 =
    (* Returns (coeffs over std cols, adjusted rhs delta). *)
    let coeffs = Array.make !ncols 0. in
    let rhs = ref rhs0 in
    List.iter
      (fun (c, v) ->
        match mapping.(v) with
        | Shifted (col, l) ->
          coeffs.(col) <- coeffs.(col) +. c;
          rhs := !rhs -. (c *. l)
        | Reflected (col, u) ->
          coeffs.(col) <- coeffs.(col) -. c;
          rhs := !rhs -. (c *. u)
        | Split (cp, cn) ->
          coeffs.(cp) <- coeffs.(cp) +. c;
          coeffs.(cn) <- coeffs.(cn) -. c)
      terms;
    (coeffs, !rhs)
  in
  List.iter
    (fun (terms, op, rhs) ->
      let coeffs, rhs = lower_terms terms rhs in
      rows := (coeffs, op, rhs) :: !rows)
    (List.rev p.constraints);
  (* Upper-bound rows. *)
  Array.iteri
    (fun j m ->
      match m with
      | Shifted (col, l) when hi.(j) < Float.infinity ->
        let coeffs = Array.make !ncols 0. in
        coeffs.(col) <- 1.;
        rows := (coeffs, Le, hi.(j) -. l) :: !rows
      | _ -> ())
    mapping;
  let rows = List.rev !rows in
  (* Slack/surplus columns and rhs sign-fixing. *)
  let n_struct = !ncols in
  let n_slack =
    List.fold_left (fun acc (_, op, _) -> if op = Eq then acc else acc + 1) 0 rows
  in
  let total = n_struct + n_slack in
  let m = List.length rows in
  let a = Array.init m (fun _ -> Array.make total 0.) in
  let b = Array.make m 0. in
  let basis0 = Array.make m None in
  let slack = ref n_struct in
  List.iteri
    (fun i (coeffs, op, rhs) ->
      Array.blit coeffs 0 a.(i) 0 n_struct;
      let slack_col =
        match op with
        | Le ->
          a.(i).(!slack) <- 1.;
          incr slack;
          Some (!slack - 1)
        | Ge ->
          a.(i).(!slack) <- -1.;
          incr slack;
          Some (!slack - 1)
        | Eq -> None
      in
      b.(i) <- rhs;
      if b.(i) < 0. then begin
        for j = 0 to total - 1 do
          a.(i).(j) <- -.a.(i).(j)
        done;
        b.(i) <- -.b.(i)
      end;
      (* The slack can seed the basis when its final coefficient is +1
         (Le unflipped, or Ge flipped) with a non-negative rhs. *)
      match slack_col with
      | Some col when a.(i).(col) = 1. -> basis0.(i) <- Some col
      | _ -> ())
    rows;
  (* Objective over standard columns. *)
  let c = Array.make total 0. in
  let sign = if p.maximize then -1. else 1. in
  let const_shift = ref 0. in
  List.iter
    (fun (coef, v) ->
      let coef = sign *. coef in
      match mapping.(v) with
      | Shifted (col, l) ->
        c.(col) <- c.(col) +. coef;
        const_shift := !const_shift +. (coef *. l)
      | Reflected (col, u) ->
        c.(col) <- c.(col) -. coef;
        const_shift := !const_shift +. (coef *. u)
      | Split (cp, cn) ->
        c.(cp) <- c.(cp) +. coef;
        c.(cn) <- c.(cn) -. coef)
    p.obj_terms;
  match Simplex.solve ?deadline ~basis0 ~a ~b ~c () with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { objective; values } ->
    let x = Array.make p.nvars 0. in
    Array.iteri
      (fun j m ->
        match m with
        | Shifted (col, l) -> x.(j) <- l +. values.(col)
        | Reflected (col, u) -> x.(j) <- u -. values.(col)
        | Split (cp, cn) -> x.(j) <- values.(cp) -. values.(cn))
      mapping;
    let obj = sign *. (objective +. !const_shift) in
    Optimal { objective = obj; values = x }

(** [maximize_linear p terms] sets a maximisation objective and solves —
    convenience for the verifier's per-neuron bound queries. *)
let maximize_linear p terms =
  set_objective p ~maximize:true terms;
  solve p

(** [minimize_linear p terms] sets a minimisation objective and solves. *)
let minimize_linear p terms =
  set_objective p ~maximize:false terms;
  solve p
