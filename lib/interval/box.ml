(** Axis-aligned boxes: vectors of intervals.

    Boxes play three roles in the reproduction, mirroring the paper:
    the verified input domain [D_in] and its enlargement [D_in ∪ Δ_in]
    are boxes over the monitored feature layer; the safe output set
    [D_out] is a box; and the stored state abstractions [S_1..S_n] are
    boxes per layer (the concretisation of ReluVal-style symbolic
    intervals, exactly as in the paper's experiment). *)

type t = Interval.t array

(** [make ivs] builds a box from an interval array (copied). *)
let make ivs = Array.copy ivs

(** [of_bounds los his] zips two bound arrays into a box. *)
let of_bounds los his =
  if Array.length los <> Array.length his then invalid_arg "Box.of_bounds";
  Array.init (Array.length los) (fun i -> Interval.make los.(i) his.(i))

(** [of_center_radius c r] is the box [c ± r] (same radius on every
    axis). *)
let of_center_radius c r =
  Array.map (fun x -> Interval.make (x -. r) (x +. r)) c

(** [uniform n ~lo ~hi] is the [n]-dimensional cube [[lo, hi]^n]. *)
let uniform n ~lo ~hi = Array.init n (fun _ -> Interval.make lo hi)

(** [point v] is the degenerate box at [v]. *)
let point v = Array.map Interval.point v

(** [dim b] is the dimensionality. *)
let dim = Array.length

(** [get b i] is the interval on axis [i]. *)
let get b i = b.(i)

(** [lower b] is the vector of lower bounds. *)
let lower b = Array.map Interval.lo b

(** [upper b] is the vector of upper bounds. *)
let upper b = Array.map Interval.hi b

(** [center b] is the vector of midpoints. *)
let center b = Array.map Interval.center b

(** [is_empty b] is true when any axis is empty. *)
let is_empty b = Array.exists Interval.is_empty b

(** [mem x b] tests pointwise membership. *)
let mem x b =
  Array.length x = Array.length b
  && Array.for_all2 (fun v i -> Interval.mem v i) x b

(** [mem_tol ?tol x b] is {!mem} with per-axis tolerance. *)
let mem_tol ?tol x b =
  Array.length x = Array.length b
  && Array.for_all2 (fun v i -> Interval.mem_tol ?tol v i) x b

(** [subset a b] is componentwise inclusion. *)
let subset a b =
  Array.length a = Array.length b && Array.for_all2 Interval.subset a b

(** [subset_tol ?tol a b] is componentwise inclusion with tolerance. *)
let subset_tol ?tol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Interval.subset_tol ?tol x y) a b

(** [join a b] is the componentwise hull — used to enlarge [D_in] with
    newly monitored out-of-distribution points. *)
let join a b =
  if Array.length a <> Array.length b then invalid_arg "Box.join";
  Array.map2 Interval.join a b

(** [meet a b] is the componentwise intersection. *)
let meet a b =
  if Array.length a <> Array.length b then invalid_arg "Box.meet";
  Array.map2 Interval.meet a b

(** [join_point b x] extends [b] minimally to contain the point [x]. *)
let join_point b x = join b (point x)

(** [expand r b] grows every axis by [r] on both sides (Proposition 3's
    ℓκ output enlargement). *)
let expand r b = Array.map (Interval.expand r) b

(** [buffer frac b] grows each axis by [frac] of its own width on both
    sides — the paper's "additional buffers" when building [D_in] from
    observed bounds. Zero-width axes get an absolute [frac] buffer so the
    box has interior. *)
let buffer frac b =
  Array.map
    (fun iv ->
      let w = Interval.width iv in
      let r = if w > 0. then frac *. w else frac in
      Interval.expand r iv)
    b

(** [max_width b] is the widest axis extent. *)
let max_width b = Array.fold_left (fun acc iv -> Float.max acc (Interval.width iv)) 0. b

(** [total_width b] is the sum of axis widths (perimeter proxy used to
    compare abstraction tightness in the ablation benches). *)
let total_width b = Array.fold_left (fun acc iv -> acc +. Interval.width iv) 0. b

(** [widest_axis b] is the index of the widest axis (ties to the
    smallest index) — bisection heuristic for the splitting verifier. *)
let widest_axis b =
  let best = ref 0 and best_w = ref (Interval.width b.(0)) in
  Array.iteri
    (fun i iv ->
      let w = Interval.width iv in
      if w > !best_w then begin
        best := i;
        best_w := w
      end)
    b;
  !best

(** [split b] bisects [b] along its widest axis. *)
let split b =
  let axis = widest_axis b in
  let left_iv, right_iv = Interval.split b.(axis) in
  let left = Array.copy b and right = Array.copy b in
  left.(axis) <- left_iv;
  right.(axis) <- right_iv;
  (left, right)

(** [sample rng b] draws a uniform point from a non-empty bounded box. *)
let sample rng b = Array.map (Interval.sample rng) b

(** [corners b] enumerates all [2^dim] corner points — exponential, only
    used for exhaustive checks on tiny test networks. *)
let corners b =
  let n = Array.length b in
  if n > 20 then invalid_arg "Box.corners: dimension too large";
  let rec go i acc =
    if i = n then [ Array.of_list (List.rev acc) ]
    else
      go (i + 1) (Interval.lo b.(i) :: acc) @ go (i + 1) (Interval.hi b.(i) :: acc)
  in
  go 0 []

(** [nearest_point x b] is the point of [b] closest to [x] (componentwise
    clamping — exact for boxes in any p-norm). *)
let nearest_point x b =
  if Array.length x <> Array.length b then invalid_arg "Box.nearest_point";
  Array.init (Array.length x) (fun i ->
      Cv_util.Float_utils.clamp ~lo:(Interval.lo b.(i)) ~hi:(Interval.hi b.(i)) x.(i))

(** [dist_point_inf x b] is the ∞-norm distance from [x] to [b]. *)
let dist_point_inf x b =
  let p = nearest_point x b in
  Cv_linalg.Vec.dist_inf x p

(** [dist_point_l2 x b] is the Euclidean distance from [x] to [b]. *)
let dist_point_l2 x b =
  let p = nearest_point x b in
  Cv_linalg.Vec.dist2 x p

(** [enlargement_kappa ~norm ~old_box ~new_box] bounds the paper's κ: the
    maximum distance from any point of [Δ_in = new_box \ old_box] to the
    nearest point of [old_box]. Because distance-to-box is a convex
    function maximised at a vertex of [new_box], checking the corners of
    [new_box] is exact; for high dimensions we fall back to the sound
    per-axis overhang bound (∞-norm: max axis overhang; L2: norm of the
    per-axis overhang vector). [norm] is [`Linf] or [`L2]. *)
let enlargement_kappa ~norm ~old_box ~new_box =
  if Array.length old_box <> Array.length new_box then
    invalid_arg "Box.enlargement_kappa";
  let overhang i =
    let o = new_box.(i) and b = old_box.(i) in
    Float.max
      (Float.max 0. (Interval.lo b -. Interval.lo o))
      (Float.max 0. (Interval.hi o -. Interval.hi b))
  in
  let ov = Array.init (Array.length old_box) overhang in
  match norm with
  | `Linf -> Cv_util.Float_utils.max_abs ov
  | `L2 -> Cv_linalg.Vec.norm2 ov

(** [equal ?tol a b] is componentwise approximate equality. *)
let equal ?tol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Interval.equal ?tol x y) a b

(** [pp ppf b] prints axis intervals separated by [×]. *)
let pp ppf b =
  Format.fprintf ppf "@[<h>%s@]"
    (String.concat " x " (Array.to_list (Array.map Interval.to_string b)))

(** [to_string b] renders {!pp}. *)
let to_string b = Format.asprintf "%a" pp b

(** [to_json b] encodes as an array of interval pairs. *)
let to_json b = Cv_util.Json.List (Array.to_list (Array.map Interval.to_json b))

(** [of_json j] decodes a box written by {!to_json}. *)
let of_json j =
  Cv_util.Json.to_list j |> List.map Interval.of_json |> Array.of_list

(** [of_json_result j] is {!of_json} with a typed error instead of an
    exception. *)
let of_json_result j =
  match of_json j with
  | b -> Ok b
  | exception Cv_util.Json.Error msg -> Error msg
