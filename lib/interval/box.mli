(** Axis-aligned boxes: vectors of intervals.

    Boxes play three roles, mirroring the paper: the verified input
    domain [D_in] and its enlargement are boxes over the monitored
    feature layer; the safe output set [D_out] is a box; and the stored
    state abstractions [S_1..S_n] are boxes per layer. *)

type t = Interval.t array

(** [make ivs] builds a box from an interval array (copied). *)
val make : Interval.t array -> t

(** [of_bounds los his] zips two bound arrays into a box. *)
val of_bounds : float array -> float array -> t

(** [of_center_radius c r] is the box [c ± r]. *)
val of_center_radius : Cv_linalg.Vec.t -> float -> t

(** [uniform n ~lo ~hi] is the [n]-dimensional cube [[lo, hi]^n]. *)
val uniform : int -> lo:float -> hi:float -> t

(** [point v] is the degenerate box at [v]. *)
val point : Cv_linalg.Vec.t -> t

val dim : t -> int

val get : t -> int -> Interval.t

val lower : t -> float array

val upper : t -> float array

val center : t -> Cv_linalg.Vec.t

val is_empty : t -> bool

val mem : Cv_linalg.Vec.t -> t -> bool

val mem_tol : ?tol:float -> Cv_linalg.Vec.t -> t -> bool

val subset : t -> t -> bool

val subset_tol : ?tol:float -> t -> t -> bool

(** [join a b] is the componentwise hull. *)
val join : t -> t -> t

(** [meet a b] is the componentwise intersection. *)
val meet : t -> t -> t

(** [join_point b x] extends [b] minimally to contain the point [x]. *)
val join_point : t -> Cv_linalg.Vec.t -> t

(** [expand r b] grows every axis by [r] on both sides. *)
val expand : float -> t -> t

(** [buffer frac b] grows each axis by [frac] of its own width on both
    sides (the paper's "additional buffers"); zero-width axes get an
    absolute [frac]. *)
val buffer : float -> t -> t

val max_width : t -> float

(** [total_width b] is the sum of axis widths (tightness proxy used by
    the ablation benches). *)
val total_width : t -> float

(** [widest_axis b] is the index of the widest axis — the bisection
    heuristic of the splitting verifier. *)
val widest_axis : t -> int

(** [split b] bisects [b] along its widest axis. *)
val split : t -> t * t

(** [sample rng b] draws a uniform point from a non-empty bounded
    box. *)
val sample : Cv_util.Rng.t -> t -> Cv_linalg.Vec.t

(** [corners b] enumerates all [2^dim] corner points (dim ≤ 20). *)
val corners : t -> Cv_linalg.Vec.t list

(** [nearest_point x b] is the point of [b] closest to [x]. *)
val nearest_point : Cv_linalg.Vec.t -> t -> Cv_linalg.Vec.t

val dist_point_inf : Cv_linalg.Vec.t -> t -> float

val dist_point_l2 : Cv_linalg.Vec.t -> t -> float

(** [enlargement_kappa ~norm ~old_box ~new_box] bounds the paper's κ:
    the maximum distance from any point of the enlarged box to the
    original box. *)
val enlargement_kappa : norm:[ `L2 | `Linf ] -> old_box:t -> new_box:t -> float

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t

(** [of_json_result j] is {!of_json} with a typed error instead of an
    exception. *)
val of_json_result : Cv_util.Json.t -> (t, string) result
