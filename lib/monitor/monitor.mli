(** Abstraction-based runtime monitoring of neuron values (the paper's
    monitored "Flatten" bounds): build [D_in] from observed feature
    ranges plus a buffer, flag out-of-distribution feature vectors in
    operation, and turn the recorded events into [D_in ∪ Δ_in] and κ for
    the next verification round.

    All operations are thread-safe: the monitor is meant to be shared
    between a serving thread calling {!observe} and a background
    verification loop calling {!enlarged_box}/{!kappa}/{!commit}. *)

type event = {
  features : Cv_linalg.Vec.t;  (** the violating feature vector *)
  overshoot : float;  (** ∞-norm distance outside the current box *)
  index : int;  (** running sample counter at detection time *)
}

(** Classification of one observation. *)
type observation =
  | In_distribution  (** inside the monitored box: nothing recorded *)
  | Ood of event  (** outside the box: recorded as a pending event *)
  | Rejected
      (** the vector had a NaN or infinite component: counted via
          {!rejected_count}, never recorded — a non-finite overshoot
          would poison {!kappa} forever *)

type t

(** [of_samples ?buffer features] builds the initial [D_in]: the
    bounding box of the observed feature vectors, enlarged by [buffer]
    (fraction of each axis width; default 0.05). *)
val of_samples : ?buffer:float -> Cv_linalg.Vec.t list -> t

(** [of_box box] starts monitoring from a given bound. *)
val of_box : Cv_interval.Box.t -> t

(** [current t] is the monitored box (the verified [D_in]). *)
val current : t -> Cv_interval.Box.t

(** [events t] lists pending out-of-distribution events, oldest
    first. *)
val events : t -> event list

(** [event_count t] is the number of pending OOD events (O(1)). *)
val event_count : t -> int

(** [rejected_count t] is the number of non-finite observations
    discarded so far. *)
val rejected_count : t -> int

(** [observe_class t x] feeds one feature vector and classifies it:
    non-finite vectors are rejected and only counted, in-distribution
    vectors pass, out-of-distribution vectors are recorded and returned
    as an event. *)
val observe_class : t -> Cv_linalg.Vec.t -> observation

(** [observe t x] is {!observe_class} collapsed to the historical
    interface: [Some ev] for an out-of-distribution vector, [None] for
    in-distribution {e and} rejected ones. *)
val observe : t -> Cv_linalg.Vec.t -> event option

(** [enlarged_box ?margin t] is [D_in ∪ Δ_in] as a box: the monitored
    box joined with every recorded event point, each padded by
    [margin]. *)
val enlarged_box : ?margin:float -> t -> Cv_interval.Box.t

(** [commit t box] installs an enlarged box (after re-verification
    succeeded) and clears the events it covers; events outside [box] —
    observed after the enlargement was computed — stay pending so they
    can trigger the next round. Raises [Invalid_argument] when [box]
    does not contain the current one. *)
val commit : t -> Cv_interval.Box.t -> unit

(** [kappa ?norm t] quantifies the pending enlargement: the maximum
    distance from recorded events to the current box (the paper's κ for
    Proposition 3). *)
val kappa : ?norm:[ `Linf | `L2 ] -> t -> float

(** [monitored_layer_features net ~layer x] extracts the feature vector
    the monitor watches: the output of layer [layer] (0-based) of [net]
    at input [x]. *)
val monitored_layer_features :
  Cv_nn.Network.t -> layer:int -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t
