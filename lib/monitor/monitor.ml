(** Abstraction-based runtime monitoring of neuron values.

    Mirrors the paper's setup (and its refs [1], [2]): the input bound
    [D_in] of the verified head is built by recording per-neuron min/max
    of the monitored feature layer over the training set, plus a buffer;
    in operation, every input whose features escape the box is an
    out-of-distribution event, and the recorded overshoots form [Δ_in]
    for the next verification round.

    The monitor is shared mutable state between the serving path
    ({!observe}) and a background verification loop
    ({!enlarged_box}/{!kappa}/{!commit}), so every operation takes the
    monitor's mutex — snapshots are consistent and no event is lost to a
    racing update. *)

type event = {
  features : Cv_linalg.Vec.t;  (** the violating feature vector *)
  overshoot : float;  (** ∞-norm distance outside the current box *)
  index : int;  (** running sample counter at detection time *)
}

type observation =
  | In_distribution
  | Ood of event
  | Rejected
      (** the vector had a non-finite component: counted, never
          recorded — a NaN overshoot would poison κ forever *)

type t = {
  lock : Mutex.t;
  mutable box : Cv_interval.Box.t;  (** current monitored bound, [D_in] *)
  mutable seen : int;
  mutable events : event list;  (** most recent first *)
  mutable n_events : int;  (** [List.length events], maintained O(1) *)
  mutable rejected : int;  (** non-finite observations discarded *)
}

let m_ood = Cv_util.Metrics.counter "monitor.ood"
let m_rejected = Cv_util.Metrics.counter "monitor.rejected"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let make box =
  { lock = Mutex.create ();
    box;
    seen = 0;
    events = [];
    n_events = 0;
    rejected = 0 }

(** [of_samples ?buffer features] builds the initial [D_in]: the
    bounding box of the observed feature vectors, enlarged by [buffer]
    (fraction of each axis width; default 0.05 — the paper's
    "additional buffers"). *)
let of_samples ?(buffer = 0.05) features =
  match features with
  | [] -> invalid_arg "Monitor.of_samples: no samples"
  | first :: rest ->
    let box = ref (Cv_interval.Box.point first) in
    List.iter (fun x -> box := Cv_interval.Box.join_point !box x) rest;
    make (Cv_interval.Box.buffer buffer !box)

(** [of_box box] starts monitoring from a given bound. *)
let of_box box = make box

(** [current t] is the monitored box (the verified [D_in]). *)
let current t = with_lock t (fun () -> t.box)

(** [events t] lists recorded out-of-distribution events, oldest
    first. *)
let events t = with_lock t (fun () -> List.rev t.events)

(** [event_count t] is the number of pending OOD events. *)
let event_count t = with_lock t (fun () -> t.n_events)

(** [rejected_count t] is the number of non-finite observations
    discarded so far. *)
let rejected_count t = with_lock t (fun () -> t.rejected)

let vec_finite x =
  let ok = ref true in
  Array.iter (fun v -> if not (Float.is_finite v) then ok := false) x;
  !ok

(** [observe_class t x] feeds one feature vector and classifies it.
    Non-finite vectors are rejected (counted, never recorded);
    in-distribution vectors pass; out-of-distribution vectors are
    recorded and returned as an event. The monitored box is {e not}
    changed — enlargement is an explicit engineering step
    ({!enlarged_box}). *)
let observe_class t x =
  with_lock t @@ fun () ->
  t.seen <- t.seen + 1;
  if not (vec_finite x) then begin
    t.rejected <- t.rejected + 1;
    Cv_util.Metrics.incr m_rejected;
    Rejected
  end
  else if Cv_interval.Box.mem x t.box then In_distribution
  else begin
    let ev =
      { features = Array.copy x;
        overshoot = Cv_interval.Box.dist_point_inf x t.box;
        index = t.seen }
    in
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1;
    Cv_util.Metrics.incr m_ood;
    Ood ev
  end

(** [observe t x] is {!observe_class} collapsed to the historical
    interface: [Some ev] for an out-of-distribution vector, [None] for
    in-distribution {e and} rejected ones. *)
let observe t x =
  match observe_class t x with
  | Ood ev -> Some ev
  | In_distribution | Rejected -> None

(** [enlarged_box ?margin t] is [D_in ∪ Δ_in] as a box: the monitored
    box joined with every recorded event point, each padded by [margin]
    (absolute, default 0) so the enlargement is robust to measurement
    noise. *)
let enlarged_box ?(margin = 0.) t =
  with_lock t @@ fun () ->
  List.fold_left
    (fun box ev ->
      Cv_interval.Box.join box
        (Cv_interval.Box.of_center_radius ev.features margin))
    t.box t.events

(** [commit t box] installs an enlarged box (after re-verification
    succeeded) and clears the events it covers — one turn of the paper's
    continuous-engineering loop. Events observed {e after} the enlarged
    box was computed may lie outside it; those stay pending so they can
    trigger the next round instead of being silently discarded. *)
let commit t box =
  with_lock t @@ fun () ->
  if not (Cv_interval.Box.subset t.box box) then
    invalid_arg "Monitor.commit: new box must contain the current one";
  t.box <- box;
  let kept =
    List.filter (fun ev -> not (Cv_interval.Box.mem ev.features box)) t.events
  in
  t.events <- kept;
  t.n_events <- List.length kept

(** [kappa ?norm t] quantifies the pending enlargement: the maximum
    distance from recorded events to the current box (the paper's κ for
    Proposition 3). *)
let kappa ?(norm = `Linf) t =
  with_lock t @@ fun () ->
  let dist =
    match norm with
    | `Linf -> Cv_interval.Box.dist_point_inf
    | `L2 -> Cv_interval.Box.dist_point_l2
  in
  List.fold_left (fun acc ev -> Float.max acc (dist ev.features t.box)) 0. t.events

(** [monitored_layer_features net ~layer x] extracts the feature vector
    the monitor watches: the output of layer [layer] (0-based) of [net]
    at input [x] — the paper monitors the "Flatten" layer output. *)
let monitored_layer_features net ~layer x =
  let trace = Cv_nn.Network.eval_trace net x in
  trace.(layer)
