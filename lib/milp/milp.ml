(** Mixed-integer linear programming by branch-and-bound over {!Cv_lp}.

    The integer variables are binaries (which is all the big-M ReLU
    encoding needs). Branching is best-first on the LP relaxation bound
    — the frontier is a binary max-heap ({!Cv_util.Heap}), not a sorted
    list — with most-fractional variable selection. An optional [cutoff]
    lets verification queries stop early: when proving "max ≤ θ" it
    suffices to fathom every node whose relaxation bound is ≤ θ, and to
    stop as soon as an integer-feasible point exceeds θ.

    The model is lowered {e once} per solve ({!Cv_lp.Lp.compile} with
    the binaries fixable): each node relaxation is then a handful of
    rhs updates plus a dual-simplex warm restart from the previous
    node's optimal basis — the objective is fixed for the whole search,
    so any node's optimal basis is dual-feasible for every other node.
    Popped nodes are {e plunged}: the search dives depth-first towards
    the relaxation's rounding (consecutive solves differ by one fixing,
    keeping warm restarts to a few pivots) while the passed-over
    siblings join the best-first frontier; each node LP also stops early
    once weak duality certifies it fathomable ([bound_cutoff]). With
    [?domains > 1], batches of frontier nodes are dived on parallel
    domains (one compiled solver state per slot) and their effects
    replayed in deterministic batch order, so verdicts match the
    sequential search. *)

type solution = { objective : float; values : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Cutoff_reached of solution
      (** an integer point beat the requested cutoff; search stopped *)
  | Below_cutoff of float
      (** every node was fathomed at or below the cutoff; the payload is
          a proven upper bound on the true optimum (≤ cutoff) *)
  | Timeout of { bound : float; incumbent : solution option }
      (** the deadline, node budget or simplex iteration budget expired
          before the gap closed; [bound] is a certified bound on the
          true optimum from the unfathomed relaxations (an {e upper}
          bound when maximising, a lower bound when minimising; infinite
          when even the root relaxation did not finish) and [incumbent]
          the best integer-feasible point found so far *)

type problem = {
  lp : Cv_lp.Lp.problem;
  mutable binaries : int list;
  mutable nbin : int;  (** cached [List.length binaries] *)
}

(** [create ()] is an empty MILP model. *)
let create () = { lp = Cv_lp.Lp.create (); binaries = []; nbin = 0 }

(** [add_var p ?lo ?hi ?name ()] declares a continuous variable. *)
let add_var p ?lo ?hi ?name () = Cv_lp.Lp.add_var p.lp ?lo ?hi ?name ()

(** [add_binary p ?name ()] declares a 0/1 integer variable. *)
let add_binary p ?name () =
  let v = Cv_lp.Lp.add_var p.lp ~lo:0. ~hi:1. ?name () in
  p.binaries <- v :: p.binaries;
  p.nbin <- p.nbin + 1;
  v

(** [add_constraint p terms op rhs] adds a linear constraint. *)
let add_constraint p terms op rhs = Cv_lp.Lp.add_constraint p.lp terms op rhs

(** [var_count p] / [constraint_count p] expose model size for
    reports. *)
let var_count p = Cv_lp.Lp.var_count p.lp

let constraint_count p = Cv_lp.Lp.constraint_count p.lp

(** [binary_count p] is the cached number of integer variables. *)
let binary_count p = p.nbin

let int_tol = 1e-6

(* Branch-and-bound effort accounting (surfaced by `contiver --stats`
   and the bench trajectory). *)
let m_solves = Cv_util.Metrics.counter "milp.solves"

let m_nodes = Cv_util.Metrics.counter "milp.nodes"

let m_fathomed = Cv_util.Metrics.counter "milp.fathomed"

let m_incumbents = Cv_util.Metrics.counter "milp.incumbents"

let m_timeouts = Cv_util.Metrics.counter "milp.timeouts"

let m_crashes = Cv_util.Metrics.counter "milp.dive_crashes"

let t_seconds = Cv_util.Metrics.timer "milp.seconds"

(* A crashed worker domain degrades the solve to a certified [Timeout]
   once it has struck this many times — the frontier stays sound (the
   crashed dive's root is re-queued), so retry-forever is the only
   other option, and a poisoned subproblem would then hang the run. *)
let max_dive_crashes = 5

(* Most fractional binary, or None if all integral. *)
let pick_branch_var binaries (values : float array) =
  let best = ref None and best_frac = ref int_tol in
  List.iter
    (fun v ->
      let x = values.(v) in
      let frac = Float.abs (x -. Float.round x) in
      if frac > !best_frac then begin
        best_frac := frac;
        best := Some v
      end)
    binaries;
  !best

(* One branch-and-bound solver slot: a compiled LP plus the binary
   fixings currently applied to it. Slot [i] is only ever touched by
   batch item [i], so parallel batches need no locking. *)
type worker = {
  wc : Cv_lp.Lp.compiled;
  mutable wfixed : (int * float) list;
}

(* Move a worker's compiled LP from its current fixings to [fixed]:
   release binaries no longer fixed back to [0,1] (their declared box),
   then apply the new/changed fixings. Each change is an O(m) rhs
   update, warm-start preserving. *)
let move_to w fixed =
  List.iter
    (fun (v, _) ->
      if not (List.mem_assoc v fixed) then
        Cv_lp.Lp.set_bounds_compiled w.wc v ~lo:0. ~hi:1.)
    w.wfixed;
  List.iter
    (fun (v, x) ->
      match List.assoc_opt v w.wfixed with
      | Some x' when x' = x -> ()
      | _ -> Cv_lp.Lp.set_bounds_compiled w.wc v ~lo:x ~hi:x)
    fixed;
  w.wfixed <- fixed

(* Effects a dive wants to apply to the shared search state. Dives run
   on private worker slots and only *record* what happened; the driver
   replays the events in deterministic batch order, so verdicts are
   independent of the domain count. *)
type dive_event =
  | Epush of float * (int * float) list
      (** a sibling (or budget-stopped node) for the frontier *)
  | Efathom of float  (** a subtree fathomed at this certified bound *)
  | Eincumbent of solution  (** an integer-feasible point *)
  | Eunbounded
  | Estop of float * (int * float) list
      (** deadline/stall hit this in-flight node: re-queue it and flag a
          timeout *)

(* ------------------------------------------------------------------ *)
(* Search-state snapshots                                              *)
(* ------------------------------------------------------------------ *)

(* A checkpoint captures everything the batch loop owns: the frontier
   (node bounds and binary fixings), the incumbent, the fathomed-bound
   high-water mark and the node count. It deliberately does NOT capture
   solver-internal state (bases, rhs) — on resume the root is re-solved
   and every frontier node is re-derived by rhs updates, so a snapshot
   is small and valid across processes. Best-first branch-and-bound is
   exact whatever the exploration order, so resuming from a snapshot
   yields the same verdict as the uninterrupted run. *)

let solution_to_json (s : solution) =
  Cv_util.Json.Obj
    [ ("objective", Cv_util.Json.Num s.objective);
      ("values", Cv_util.Json.of_float_array s.values) ]

let solution_of_json j =
  { objective = Cv_util.Json.to_float (Cv_util.Json.member "objective" j);
    values = Cv_util.Json.float_array (Cv_util.Json.member "values" j) }

let snapshot_to_json ~nodes ~pruned_max ~incumbent ~incumbent_val frontier_list
    =
  let open Cv_util.Json in
  Obj
    [ ("nodes", of_int nodes);
      ("pruned_max", Num pruned_max);
      ("incumbent_val", Num incumbent_val);
      ( "incumbent",
        match incumbent with None -> Null | Some s -> solution_to_json s );
      ( "frontier",
        List
          (List.map
             (fun (b, fixed) ->
               Obj
                 [ ("bound", Num b);
                   ( "fixed",
                     List
                       (List.map
                          (fun (v, x) -> List [ of_int v; Num x ])
                          fixed) ) ])
             frontier_list) ) ]

(* Raises {!Cv_util.Json.Error} on a malformed snapshot — callers
   surface that as a corrupt checkpoint. *)
let snapshot_of_json j =
  let open Cv_util.Json in
  let nodes = to_int (member "nodes" j) in
  let pruned_max = to_float (member "pruned_max" j) in
  let incumbent_val = to_float (member "incumbent_val" j) in
  let incumbent =
    match member "incumbent" j with
    | Null -> None
    | s -> Some (solution_of_json s)
  in
  let frontier =
    to_list (member "frontier" j)
    |> List.map (fun n ->
           let b = to_float (member "bound" n) in
           let fixed =
             to_list (member "fixed" n)
             |> List.map (fun pair ->
                    match to_list pair with
                    | [ v; x ] -> (to_int v, to_float x)
                    | _ -> raise (Error "Milp: bad fixing in snapshot"))
           in
           (b, fixed))
  in
  (nodes, pruned_max, incumbent, incumbent_val, frontier)

(** [maximize ?cutoff ?known_feasible ?node_limit ?domains p terms]
    maximises [terms] over the mixed-integer feasible set. With
    [cutoff = Some θ]: if the true optimum is ≤ θ the search proves it
    quickly (returns the incumbent optimum or [Below_cutoff]); if some
    integer point exceeds θ the search may return [Cutoff_reached] early
    without closing the gap. [known_feasible] is an externally certified
    feasible objective value (e.g. from evaluating the encoded network
    at a concrete input): it seeds the incumbent for pruning; if the
    search then closes without an explicit incumbent the optimum equals
    the seed and an [Optimal] with empty [values] is returned.
    [domains > 1] solves frontier nodes in parallel batches.

    [checkpoint] snapshots the search state (frontier, incumbent,
    fathomed bounds) at the sink's cadence; [resume] restores such a
    snapshot instead of starting from the root node — the root LP is
    still re-solved (snapshots carry no solver-internal state), after
    which the search continues exactly where the snapshot left off and
    reaches the same verdict as an uninterrupted run. A crashed worker
    dive (including injected {!Cv_util.Fault.Worker_crash}) re-queues
    its node and rebuilds the slot from a pristine solver copy; repeated
    crashes degrade to a certified [Timeout] instead of killing the
    solve. *)
let maximize ?deadline ?cutoff ?known_feasible ?(node_limit = 200_000)
    ?(domains = 1) ?max_iters ?checkpoint ?resume p terms =
  Cv_util.Metrics.incr m_solves;
  Cv_util.Metrics.time t_seconds @@ fun () ->
  Cv_lp.Lp.set_objective p.lp ~maximize:true terms;
  let nworkers = max 1 domains in
  let incumbent = ref None in
  let incumbent_val =
    ref (match known_feasible with Some v -> v | None -> Float.neg_infinity)
  in
  let better_than_cutoff s =
    match cutoff with Some theta -> s.objective > theta +. 1e-7 | None -> false
  in
  match
    (try
       let c0 = Cv_lp.Lp.compile ~fixable:p.binaries p.lp in
       `Root (c0, Cv_lp.Lp.solve_compiled ?deadline ?max_iters c0)
     with Cv_util.Deadline.Expired _ ->
       (* Even the root relaxation did not finish: no certified bound. *)
       `Expired)
  with
  | `Expired -> Timeout { bound = Float.infinity; incumbent = None }
  | `Root (_, Cv_lp.Lp.Infeasible) -> Infeasible
  | `Root (_, Cv_lp.Lp.Unbounded) -> Unbounded
  | `Root (_, Cv_lp.Lp.Stalled) ->
    (* Numerical stall on the root: degrade exactly like a root
       timeout. *)
    Cv_util.Metrics.incr m_timeouts;
    Timeout { bound = Float.infinity; incumbent = None }
  | `Root (c0, Cv_lp.Lp.Optimal root) ->
    (* Workers clone the root's compiled state, inheriting its warm
       optimal basis. Slot 0 reuses the root solver itself. *)
    let workers =
      Array.init nworkers (fun i ->
          { wc = (if i = 0 then c0 else Cv_lp.Lp.copy_compiled c0);
            wfixed = [] })
    in
    (* Pristine unfixed solver state, cloned before any dive mutates a
       slot. A crashed dive can leave its slot's rhs out of sync with
       [wfixed]; a binary silently left fixed over-constrains later
       nodes and could unsoundly lower their bounds, so a crashed slot
       is rebuilt from this copy rather than trusted. *)
    let pristine = Cv_lp.Lp.copy_compiled c0 in
    let crashes = ref 0 in
    (* Best-first frontier keyed by the parent relaxation bound. *)
    let frontier = Cv_util.Heap.create () in
    let nodes = ref 0 in
    let result = ref None in
    (* Largest bound among nodes fathomed by the cutoff — a certified
       upper bound on the optimum within the pruned regions. *)
    let pruned_max = ref Float.neg_infinity in
    (match resume with
    | None -> Cv_util.Heap.push frontier root.Cv_lp.Lp.objective []
    | Some snap ->
      let n0, pm, inc, inc_val, front = snapshot_of_json snap in
      nodes := n0;
      pruned_max := pm;
      (match inc with
      | Some s ->
        incumbent := Some s;
        if better_than_cutoff s && !result = None then
          result := Some (Cutoff_reached s)
      | None -> ());
      incumbent_val := Float.max !incumbent_val inc_val;
      List.iter (fun (b, f) -> Cv_util.Heap.push frontier b f) front);
    let snapshot () =
      snapshot_to_json ~nodes:!nodes ~pruned_max:!pruned_max
        ~incumbent:!incumbent ~incumbent_val:!incumbent_val
        (Cv_util.Heap.to_list frontier)
    in
    (* Budget expiry mid-search: the frontier is bound-ordered, so
       [max (top bound) (pruned bounds) incumbent] is a certified upper
       bound on the true optimum. *)
    let timeout_now () =
      let frontier_bound =
        match Cv_util.Heap.peek frontier with
        | None -> Float.neg_infinity
        | Some (b, _) -> b
      in
      let bound =
        Float.max frontier_bound (Float.max !pruned_max !incumbent_val)
      in
      Cv_util.Metrics.incr m_timeouts;
      result := Some (Timeout { bound; incumbent = !incumbent })
    in
    let prune_bound () =
      match cutoff with
      | Some theta -> Float.max !incumbent_val theta
      | None -> !incumbent_val
    in
    (* One depth-first dive from a popped frontier node, exploring the
       whole subtree on a local LIFO stack. Consecutive solves differ by
       one or two binary fixings, so the dual warm restart needs only a
       few pivots; passed-over siblings stay on the dive's own stack
       rather than the global frontier, because a frontier round-trip
       almost never fathoms them but turns their solve into a distant
       warm restart (many bound moves ⇒ ~7× the pivots — measured).
       Each LP runs with [bound_cutoff]: weak duality stops it as soon
       as the node is provably fathomable. All shared-state effects are
       returned as ordered events, applied later by the driver. *)
    let dive slot budget pb0 node0 =
      Cv_util.Fault.trip Cv_util.Fault.Worker_crash;
      let w = workers.(slot) in
      let events = ref [] in
      let emit e = events := e :: !events in
      (* Incumbents found on this dive prune the rest of it immediately;
         the global incumbent catches up at replay time. *)
      let local_inc = ref Float.neg_infinity in
      let pb () = Float.max pb0 !local_inc in
      let count = ref 0 in
      let stack = ref [ node0 ] in
      (* On an early stop, unprocessed subtree roots go back to the
         frontier so their bounds keep the certified estimate sound. *)
      let flush () =
        List.iter (fun (b, f) -> emit (Epush (b, f))) !stack;
        stack := []
      in
      while !stack <> [] do
        let bound, fixed = List.hd !stack in
        stack := List.tl !stack;
        if bound <= pb () +. 1e-9 then begin
          incr count;
          emit (Efathom bound)
        end
        else if !count >= budget then
          (* Node budget spent: hand the node back unprocessed. *)
          emit (Epush (bound, fixed))
        else begin
          incr count;
          move_to w fixed;
          let bc = pb () in
          let out =
            try
              `Sol
                (if Float.is_finite bc then
                   Cv_lp.Lp.solve_compiled ?deadline ?max_iters
                     ~bound_cutoff:bc w.wc
                 else Cv_lp.Lp.solve_compiled ?deadline ?max_iters w.wc)
            with Cv_util.Deadline.Expired _ -> `Expired
          in
          match out with
          | `Expired | `Sol Cv_lp.Lp.Stalled ->
            (* Deadline or numerical stall: re-queue this node so its
               bound keeps the certified estimate sound. *)
            emit (Estop (bound, fixed));
            flush ()
          | `Sol Cv_lp.Lp.Unbounded ->
            emit Eunbounded;
            flush ()
          | `Sol Cv_lp.Lp.Infeasible -> ()
          | `Sol (Cv_lp.Lp.Optimal sol) ->
            let b = sol.Cv_lp.Lp.objective in
            if b <= pb () +. 1e-9 then
              (* Also the landing spot of a [bound_cutoff] early stop:
                 [b] is then just a certified bound (the basis may be
                 primal-infeasible), which is all fathoming reads. *)
              emit (Efathom b)
            else (
              match pick_branch_var p.binaries sol.Cv_lp.Lp.values with
              | None ->
                if b > !local_inc then local_inc := b;
                emit (Eincumbent { objective = b; values = sol.Cv_lp.Lp.values })
              | Some v ->
                (* Plunge towards the relaxation's rounding; the sibling
                   waits right below on the stack. *)
                let first = if sol.Cv_lp.Lp.values.(v) >= 0.5 then 1. else 0. in
                stack :=
                  (b, (v, first) :: fixed)
                  :: (b, (v, 1. -. first) :: fixed)
                  :: !stack)
        end
      done;
      (!count, List.rev !events)
    in
    while
      !result = None
      && (not (Cv_util.Heap.is_empty frontier))
      && !nodes < node_limit
    do
      if Cv_util.Deadline.expired_opt deadline then timeout_now ()
      else begin
        (* Snapshot at the top of the batch loop: no dive is in flight,
           so the frontier + incumbent are the complete search state. *)
        Cv_util.Checkpoint.tick_opt checkpoint snapshot;
        let pb0 = prune_bound () in
        (* Pop up to [nworkers] dive roots; each dive re-checks bounds
           itself, so no fathom test here. *)
        let batch = ref [] and k = ref 0 in
        while !k < nworkers && not (Cv_util.Heap.is_empty frontier) do
          match Cv_util.Heap.pop frontier with
          | None -> ()
          | Some node ->
            batch := node :: !batch;
            incr k
        done;
        let batch = List.rev !batch in
        let budget = max 1 ((node_limit - !nodes) / max 1 !k) in
        (* Each dive is crash-isolated: an exception (a poisoned worker,
           an injected fault) becomes [Error] for that slot only. *)
        let dives =
          match batch with
          | [] -> []
          | [ node ] -> (
            [ (try Ok (dive 0 budget pb0 node) with exn -> Error exn) ])
          | _ ->
            Cv_util.Parallel.map_results_list ~domains:nworkers
              (fun (slot, node) -> dive slot budget pb0 node)
              (List.mapi (fun i node -> (i, node)) batch)
        in
        (* Replay dive effects in batch order — the deterministic part:
           incumbent and bound updates happen in the same order whatever
           the domain count. *)
        let stopped = ref false in
        List.iteri
          (fun slot outcome ->
            match outcome with
            | Error (Cv_util.Deadline.Expired _) ->
              (* Dives catch expiry themselves; one escaping here means
                 it fired outside the solve call — treat as a stop. *)
              let b, f = List.nth batch slot in
              Cv_util.Heap.push frontier b f;
              stopped := true
            | Error exn ->
              (* The dive died: its node goes back to the frontier (the
                 bound keeps the certified estimate sound) and its slot
                 is rebuilt from the pristine copy — a crashed [move_to]
                 can leave rhs and [wfixed] out of sync, and a silently
                 stuck fixing could unsoundly lower later bounds. *)
              Cv_util.Metrics.incr m_crashes;
              Logs.warn (fun m ->
                  m "milp: worker dive crashed (%s); node re-queued"
                    (Printexc.to_string exn));
              incr crashes;
              let b, f = List.nth batch slot in
              Cv_util.Heap.push frontier b f;
              workers.(slot) <-
                { wc = Cv_lp.Lp.copy_compiled pristine; wfixed = [] }
            | Ok (count, events) ->
              nodes := !nodes + count;
              Cv_util.Metrics.add m_nodes count;
              List.iter
                (fun ev ->
                  match ev with
                  | Epush (b, f) -> Cv_util.Heap.push frontier b f
                  | Efathom b ->
                    Cv_util.Metrics.incr m_fathomed;
                    pruned_max := Float.max !pruned_max b
                  | Eincumbent s ->
                    if s.objective > !incumbent_val then begin
                      Cv_util.Metrics.incr m_incumbents;
                      incumbent_val := s.objective;
                      incumbent := Some s
                    end;
                    if !result = None && better_than_cutoff s then
                      result := Some (Cutoff_reached s)
                  | Eunbounded ->
                    if !result = None then result := Some Unbounded
                  | Estop (b, f) ->
                    Cv_util.Heap.push frontier b f;
                    stopped := true)
                events)
          dives;
        if !result = None && !crashes > max_dive_crashes then
          (* Persistently poisoned workers: degrade to the certified
             bound instead of spinning on re-queued nodes forever. *)
          timeout_now ();
        if !result = None && !stopped then timeout_now ()
      end
    done;
    (match !result with
    | Some r -> r
    | None -> (
      if !nodes >= node_limit && not (Cv_util.Heap.is_empty frontier) then begin
        (* Node budget exhausted: degrade to the certified bound instead
           of dying — same contract as a wall-clock timeout. *)
        timeout_now ();
        match !result with Some r -> r | None -> assert false
      end
      else
        match (cutoff, !incumbent) with
        | None, Some s -> Optimal s
        | None, None -> (
          match known_feasible with
          | Some v when !pruned_max <= v +. 1e-9 ->
            (* Everything was fathomed against the seed: the seed is the
               optimum (no explicit solution vector available). *)
            Optimal { objective = v; values = [||] }
          | _ -> Infeasible)
        | Some _, _ ->
          (* Search exhausted without beating the cutoff: the optimum is
             provably at most max(pruned bounds, incumbent). *)
          let ub = Float.max !pruned_max !incumbent_val in
          if ub = Float.neg_infinity then Infeasible else Below_cutoff ub))

(** [minimize ?cutoff ?known_feasible ?node_limit ?domains p terms]
    minimises by negating the objective. Snapshots stay in the internal
    (negated) objective space, so a [checkpoint] written by a minimise
    call resumes correctly through [resume] of another minimise call. *)
let minimize ?deadline ?cutoff ?known_feasible ?node_limit ?domains ?max_iters
    ?checkpoint ?resume p terms =
  let neg_terms = List.map (fun (c, v) -> (-.c, v)) terms in
  let neg_cutoff = Option.map (fun t -> -.t) cutoff in
  let neg_known = Option.map (fun t -> -.t) known_feasible in
  match
    maximize ?deadline ?cutoff:neg_cutoff ?known_feasible:neg_known ?node_limit
      ?domains ?max_iters ?checkpoint ?resume p neg_terms
  with
  | Optimal s -> Optimal { s with objective = -.s.objective }
  | Cutoff_reached s -> Cutoff_reached { s with objective = -.s.objective }
  | Below_cutoff ub -> Below_cutoff (-.ub)
  | Infeasible -> Infeasible
  | Unbounded -> Unbounded
  | Timeout { bound; incumbent } ->
    Timeout
      { bound = -.bound;
        incumbent =
          Option.map (fun s -> { s with objective = -.s.objective }) incumbent }
