(** Mixed-integer linear programming by branch-and-bound over {!Cv_lp}.

    The integer variables are binaries (which is all the big-M ReLU
    encoding needs). Branching is best-first on the LP relaxation bound
    with most-fractional variable selection. An optional [cutoff] lets
    verification queries stop early: when proving "max ≤ θ" it suffices
    to fathom every node whose relaxation bound is ≤ θ, and to stop as
    soon as an integer-feasible point exceeds θ. *)

type solution = { objective : float; values : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Cutoff_reached of solution
      (** an integer point beat the requested cutoff; search stopped *)
  | Below_cutoff of float
      (** every node was fathomed at or below the cutoff; the payload is
          a proven upper bound on the true optimum (≤ cutoff) *)
  | Timeout of { bound : float; incumbent : solution option }
      (** the deadline or node budget expired before the gap closed;
          [bound] is a certified bound on the true optimum from the
          unfathomed relaxations (an {e upper} bound when maximising, a
          lower bound when minimising; infinite when even the root
          relaxation did not finish) and [incumbent] the best
          integer-feasible point found so far *)

type problem = { lp : Cv_lp.Lp.problem; mutable binaries : int list }

(** [create ()] is an empty MILP model. *)
let create () = { lp = Cv_lp.Lp.create (); binaries = [] }

(** [add_var p ?lo ?hi ?name ()] declares a continuous variable. *)
let add_var p ?lo ?hi ?name () = Cv_lp.Lp.add_var p.lp ?lo ?hi ?name ()

(** [add_binary p ?name ()] declares a 0/1 integer variable. *)
let add_binary p ?name () =
  let v = Cv_lp.Lp.add_var p.lp ~lo:0. ~hi:1. ?name () in
  p.binaries <- v :: p.binaries;
  v

(** [add_constraint p terms op rhs] adds a linear constraint. *)
let add_constraint p terms op rhs = Cv_lp.Lp.add_constraint p.lp terms op rhs

(** [var_count p] / [constraint_count p] expose model size for
    reports. *)
let var_count p = Cv_lp.Lp.var_count p.lp

let constraint_count p = Cv_lp.Lp.constraint_count p.lp

(** [binary_count p] is the number of integer variables. *)
let binary_count p = List.length p.binaries

let int_tol = 1e-6

(* Branch-and-bound effort accounting (surfaced by `contiver --stats`
   and the bench trajectory). *)
let m_solves = Cv_util.Metrics.counter "milp.solves"

let m_nodes = Cv_util.Metrics.counter "milp.nodes"

let m_fathomed = Cv_util.Metrics.counter "milp.fathomed"

let m_incumbents = Cv_util.Metrics.counter "milp.incumbents"

let m_timeouts = Cv_util.Metrics.counter "milp.timeouts"

let t_seconds = Cv_util.Metrics.timer "milp.seconds"



(* Most fractional binary, or None if all integral. *)
let pick_branch_var binaries (values : float array) =
  let best = ref None and best_frac = ref int_tol in
  List.iter
    (fun v ->
      let x = values.(v) in
      let frac = Float.abs (x -. Float.round x) in
      if frac > !best_frac then begin
        best_frac := frac;
        best := Some v
      end)
    binaries;
  !best

type node = { fixed : (int * float) list; bound : float }

(** [maximize ?cutoff ?known_feasible ?node_limit p terms] maximises
    [terms] over the mixed-integer feasible set. With [cutoff = Some θ]:
    if the true optimum is ≤ θ the search proves it quickly (returns the
    incumbent optimum or [Below_cutoff]); if some integer point exceeds θ
    the search may return [Cutoff_reached] early without closing the gap.
    [known_feasible] is an externally certified feasible objective value
    (e.g. from evaluating the encoded network at a concrete input): it
    seeds the incumbent for pruning; if the search then closes without an
    explicit incumbent the optimum equals the seed and an [Optimal] with
    empty [values] is returned. *)
let maximize ?deadline ?cutoff ?known_feasible ?(node_limit = 200_000) p terms =
  Cv_util.Metrics.incr m_solves;
  Cv_util.Metrics.time t_seconds @@ fun () ->
  Cv_lp.Lp.set_objective p.lp ~maximize:true terms;
  let apply_fixings fixed =
    let lp = Cv_lp.Lp.copy p.lp in
    List.iter (fun (v, x) -> Cv_lp.Lp.set_bounds lp v ~lo:x ~hi:x) fixed;
    lp
  in
  let solve_node fixed =
    let lp = apply_fixings fixed in
    Cv_lp.Lp.set_objective lp ~maximize:true terms;
    Cv_lp.Lp.solve ?deadline lp
  in
  (* Best-first queue ordered by decreasing bound: simple sorted list —
     node counts stay small at our problem sizes. *)
  let incumbent = ref None in
  let incumbent_val =
    ref (match known_feasible with Some v -> v | None -> Float.neg_infinity)
  in
  let better_than_cutoff s =
    match cutoff with Some theta -> s.objective > theta +. 1e-7 | None -> false
  in
  match
    (try
       `Root
         (Cv_lp.Lp.solve ?deadline
            (let lp = apply_fixings [] in
             Cv_lp.Lp.set_objective lp ~maximize:true terms;
             lp))
     with Cv_util.Deadline.Expired _ ->
       (* Even the root relaxation did not finish: no certified bound. *)
       `Expired)
  with
  | `Expired -> Timeout { bound = Float.infinity; incumbent = None }
  | `Root Cv_lp.Lp.Infeasible -> Infeasible
  | `Root Cv_lp.Lp.Unbounded -> Unbounded
  | `Root (Cv_lp.Lp.Optimal root) ->
    let queue = ref [ { fixed = []; bound = root.Cv_lp.Lp.objective } ] in
    let nodes = ref 0 in
    let result = ref None in
    (* Largest bound among nodes fathomed by the cutoff — a certified
       upper bound on the optimum within the pruned regions. *)
    let pruned_max = ref Float.neg_infinity in
    (* Budget expiry mid-search: the queue is sorted by decreasing
       relaxation bound, so [max (head bound) incumbent] is a certified
       upper bound on the true optimum. *)
    let timeout_now () =
      let queue_bound =
        match !queue with [] -> Float.neg_infinity | hd :: _ -> hd.bound
      in
      let bound =
        Float.max queue_bound (Float.max !pruned_max !incumbent_val)
      in
      Cv_util.Metrics.incr m_timeouts;
      result := Some (Timeout { bound; incumbent = !incumbent })
    in
    while !result = None && !queue <> [] && !nodes < node_limit do
      if Cv_util.Deadline.expired_opt deadline then timeout_now ()
      else begin
        incr nodes;
        Cv_util.Metrics.incr m_nodes;
        let node = List.hd !queue in
        queue := List.tl !queue;
        let prune_bound =
          match cutoff with
          | Some theta -> Float.max !incumbent_val theta
          | None -> !incumbent_val
        in
        if node.bound <= prune_bound +. 1e-9 then begin
          Cv_util.Metrics.incr m_fathomed;
          pruned_max := Float.max !pruned_max node.bound
        end
        else begin
          match
            try `Sol (solve_node node.fixed)
            with Cv_util.Deadline.Expired _ -> `Expired
          with
          | `Expired ->
            (* The interrupted node's own bound keeps the estimate
               sound: put it back before summarising. *)
            queue := node :: !queue;
            timeout_now ()
          | `Sol Cv_lp.Lp.Infeasible -> ()
          | `Sol Cv_lp.Lp.Unbounded -> result := Some Unbounded
          | `Sol (Cv_lp.Lp.Optimal sol) -> (
            let bound = sol.Cv_lp.Lp.objective in
            if bound <= prune_bound +. 1e-9 then begin
              Cv_util.Metrics.incr m_fathomed;
              pruned_max := Float.max !pruned_max bound
            end
            else
              match pick_branch_var p.binaries sol.Cv_lp.Lp.values with
              | None ->
                (* Integer feasible. *)
                let s = { objective = bound; values = sol.Cv_lp.Lp.values } in
                if bound > !incumbent_val then begin
                  Cv_util.Metrics.incr m_incumbents;
                  incumbent_val := bound;
                  incumbent := Some s
                end;
                if better_than_cutoff s then result := Some (Cutoff_reached s)
              | Some v ->
                let child x = { fixed = (v, x) :: node.fixed; bound } in
                (* Insert keeping the queue sorted by decreasing bound. *)
                let insert n q =
                  let rec go = function
                    | [] -> [ n ]
                    | hd :: tl when hd.bound >= n.bound -> hd :: go tl
                    | rest -> n :: rest
                  in
                  go q
                in
                queue := insert (child 0.) (insert (child 1.) !queue))
        end
      end
    done;
    (match !result with
    | Some r -> r
    | None -> (
      if !nodes >= node_limit && !queue <> [] then begin
        (* Node budget exhausted: degrade to the certified bound instead
           of dying — same contract as a wall-clock timeout. *)
        timeout_now ();
        match !result with Some r -> r | None -> assert false
      end
      else
      match (cutoff, !incumbent) with
      | None, Some s -> Optimal s
      | None, None -> (
        match known_feasible with
        | Some v when !pruned_max <= v +. 1e-9 ->
          (* Everything was fathomed against the seed: the seed is the
             optimum (no explicit solution vector available). *)
          Optimal { objective = v; values = [||] }
        | _ -> Infeasible)
      | Some _, _ ->
        (* Search exhausted without beating the cutoff: the optimum is
           provably at most max(pruned bounds, incumbent). *)
        let ub = Float.max !pruned_max !incumbent_val in
        if ub = Float.neg_infinity then Infeasible else Below_cutoff ub))

(** [minimize ?cutoff ?known_feasible ?node_limit p terms] minimises by
    negating the objective. *)
let minimize ?deadline ?cutoff ?known_feasible ?node_limit p terms =
  let neg_terms = List.map (fun (c, v) -> (-.c, v)) terms in
  let neg_cutoff = Option.map (fun t -> -.t) cutoff in
  let neg_known = Option.map (fun t -> -.t) known_feasible in
  match
    maximize ?deadline ?cutoff:neg_cutoff ?known_feasible:neg_known ?node_limit
      p neg_terms
  with
  | Optimal s -> Optimal { s with objective = -.s.objective }
  | Cutoff_reached s -> Cutoff_reached { s with objective = -.s.objective }
  | Below_cutoff ub -> Below_cutoff (-.ub)
  | Infeasible -> Infeasible
  | Unbounded -> Unbounded
  | Timeout { bound; incumbent } ->
    Timeout
      { bound = -.bound;
        incumbent =
          Option.map (fun s -> { s with objective = -.s.objective }) incumbent }
