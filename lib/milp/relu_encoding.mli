(** Compact big-M MILP encoding of piecewise-linear network slices —
    the paper's "exact method" (Equation (2)). Stable neurons introduce
    no variables (their values are carried as affine expressions over
    inputs and unstable post-activations); big-M bounds come from a
    symbolic-interval pre-analysis; branch-and-bound is seeded with the
    best sampled concrete value. *)

(** Affine expression over LP variables. *)
type expr = { terms : (float * Cv_lp.Lp.var) list; const : float }

type encoding = {
  problem : Milp.problem;
  net : Cv_nn.Network.t;
  input_box : Cv_interval.Box.t;
  input_vars : Cv_lp.Lp.var array;
  outputs : expr array;  (** affine expressions of the output neurons *)
  pre_bounds : Cv_interval.Box.t array;  (** per-layer pre-activation bounds *)
  seeds : (float * Cv_linalg.Vec.t) array array;
      (** per output: [(max_seed, input); (min_seed, input)] *)
}

(** [encode ~net ~input_box] builds the exact MILP of the slice [net]
    over [input_box]. Raises [Invalid_argument] for non-piecewise-linear
    activations. *)
val encode : net:Cv_nn.Network.t -> input_box:Cv_interval.Box.t -> encoding

(** [max_output ?deadline ?cutoff ?domains enc ~output] maximises one
    output neuron over the encoded set (exactly — the sampling seed only
    accelerates pruning). [domains > 1] runs the branch-and-bound dives
    on parallel domains with deterministic merging. On budget exhaustion
    returns [Milp.Timeout] with the certified incumbent bound.
    [checkpoint]/[resume] snapshot and restore the branch-and-bound
    state (see {!Milp.maximize}); snapshots are in the encoded
    (constant-stripped) objective space, so they only resume the same
    query on the same encoding. *)
val max_output :
  ?deadline:Cv_util.Deadline.t ->
  ?cutoff:float ->
  ?domains:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  encoding ->
  output:int ->
  Milp.result

(** [min_output ?deadline ?cutoff ?domains enc ~output] minimises one
    output neuron. *)
val min_output :
  ?deadline:Cv_util.Deadline.t ->
  ?cutoff:float ->
  ?domains:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  encoding ->
  output:int ->
  Milp.result

(** [stats enc] is [(vars, constraints, binaries)]. *)
val stats : encoding -> int * int * int
