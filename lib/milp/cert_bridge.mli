(** Network-level MILP certificates: one {!Cv_cert.Cert.milp_goal} per
    finite bound of the safe output set, each backed by a branch tree of
    validated LP witnesses from {!Cv_lp.Lp_cert}.

    The big-M encoding step itself is untrusted (the checker cannot see
    that the MILP models the network); the goal's lowering frame is
    recorded so the checker can replay the bound translation, and the
    checker cross-examines each goal against concrete network
    evaluations. The emitted certificate is replayed through
    {!Cv_cert.Check} before being returned. *)

(** [goal enc ~max_nodes ~max_iters ~output ~side] certifies one output
    bound of an encoded slice: sets the objective (maximise for
    [`Upper], minimise for [`Lower]), recompiles, runs the certifying
    branch-and-bound and packages the lowering frame. [None] when
    extraction fails or the node budget runs out. *)
val goal :
  ?max_nodes:int ->
  ?max_iters:int ->
  Relu_encoding.encoding ->
  output:int ->
  side:[ `Upper | `Lower ] ->
  Cv_cert.Cert.milp_goal option

(** [safe_cert ... net ~din ~dout] proves [f(din) ⊆ dout] with one MILP
    goal per finite bound of [dout] — the exact-method counterpart of
    {!Cv_cert.Emit.safe_cert}. Self-validated; [None] when any goal
    fails. *)
val safe_cert :
  ?max_nodes:int ->
  ?max_iters:int ->
  mode:string ->
  solver:string ->
  fingerprint:string ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  Cv_cert.Cert.t option
