(** Mixed-integer linear programming by branch-and-bound over {!Cv_lp}
    (binary integer variables — all the big-M ReLU encoding needs).

    Branching is best-first on the LP relaxation bound (a binary
    max-heap frontier) with most-fractional selection. The model is
    lowered once per solve; node relaxations are rhs updates solved by
    dual-simplex warm restarts from the previous optimal basis. The
    optional [cutoff] turns an optimisation into a decision: proving
    "max ≤ θ" fathoms every node whose bound is ≤ θ and stops as soon
    as an integer point exceeds θ. *)

type solution = { objective : float; values : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Cutoff_reached of solution
      (** an integer point beat the requested cutoff; search stopped *)
  | Below_cutoff of float
      (** every node was fathomed at or below the cutoff; the payload is
          a proven upper bound on the true optimum (≤ cutoff) *)
  | Timeout of { bound : float; incumbent : solution option }
      (** the deadline, node budget or simplex iteration budget expired
          before the gap closed; [bound] is a certified bound on the
          true optimum from the unfathomed relaxations (an {e upper}
          bound when maximising, a lower bound when minimising; infinite
          when even the root relaxation did not finish) and [incumbent]
          the best integer-feasible point found so far *)

type problem = {
  lp : Cv_lp.Lp.problem;
  mutable binaries : int list;
  mutable nbin : int;  (** cached [List.length binaries] *)
}

(** [create ()] is an empty MILP model. *)
val create : unit -> problem

(** [add_var p ?lo ?hi ?name ()] declares a continuous variable. *)
val add_var :
  problem -> ?lo:float -> ?hi:float -> ?name:string -> unit -> Cv_lp.Lp.var

(** [add_binary p ?name ()] declares a 0/1 integer variable. *)
val add_binary : problem -> ?name:string -> unit -> Cv_lp.Lp.var

(** [add_constraint p terms op rhs] adds a linear constraint. *)
val add_constraint :
  problem -> Cv_lp.Lp.term list -> Cv_lp.Lp.relop -> float -> unit

val var_count : problem -> int

val constraint_count : problem -> int

(** [binary_count p] is the cached number of integer variables. *)
val binary_count : problem -> int

(** [maximize ?deadline ?cutoff ?known_feasible ?node_limit ?domains
    ?max_iters p terms] maximises over the mixed-integer feasible set.
    [known_feasible] is an externally certified feasible objective value
    that seeds the incumbent for pruning; if the search then closes
    without an explicit incumbent, an [Optimal] with empty [values] is
    returned. [domains > 1] solves frontier nodes in parallel batches
    on {!Cv_util.Parallel} domains, merging results in deterministic
    batch order. [max_iters] caps simplex iterations per LP phase
    (stalls degrade to [Timeout]). On deadline or node-budget
    exhaustion the search returns [Timeout] with the certified
    incumbent bound instead of hanging or raising.

    [checkpoint] snapshots the search state (frontier bounds/fixings,
    incumbent, fathomed-bound high-water mark) at the sink's cadence;
    [resume] restores such a snapshot instead of starting from the root
    node, reaching the same verdict as an uninterrupted run. A crashed
    worker dive re-queues its node and rebuilds its solver slot from a
    pristine copy; repeated crashes degrade to a certified
    [Timeout]. *)
val maximize :
  ?deadline:Cv_util.Deadline.t ->
  ?cutoff:float ->
  ?known_feasible:float ->
  ?node_limit:int ->
  ?domains:int ->
  ?max_iters:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  problem ->
  Cv_lp.Lp.term list ->
  result

(** [minimize ?deadline ?cutoff ?known_feasible ?node_limit ?domains
    ?max_iters p terms] minimises by negating the objective; snapshots
    stay in the internal negated space, so checkpoint and resume
    compose across minimise calls. *)
val minimize :
  ?deadline:Cv_util.Deadline.t ->
  ?cutoff:float ->
  ?known_feasible:float ->
  ?node_limit:int ->
  ?domains:int ->
  ?max_iters:int ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  problem ->
  Cv_lp.Lp.term list ->
  result
