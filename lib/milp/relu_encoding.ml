(** Big-M MILP encoding of piecewise-linear network slices.

    This is the paper's "exact method" (cf. Equation (2)): the
    nonlinearity of each unstable ReLU is encoded with one binary
    variable and big-M constraints, with the big-M values taken from a
    sound symbolic-interval pre-analysis (tight Ms keep branch-and-bound
    shallow).

    The encoding is {e compact}: stable neurons introduce no variables at
    all — every neuron's value is carried as an affine expression over
    the base variables (network inputs plus the post-activation variables
    of unstable neurons), so the LP relaxations solved inside
    branch-and-bound stay small and contain only inequality rows (whose
    slacks give the simplex a ready-made feasible basis). Branch-and-bound
    is additionally seeded with the best concrete network value found by
    sampling, which prunes early.

    Only piecewise-linear activations (ReLU, Leaky ReLU, Identity) are
    supported; sigmoid/tanh slices must go through the abstract domains
    instead. *)

(** Affine expression over LP variables. *)
type expr = { terms : (float * Cv_lp.Lp.var) list; const : float }

type encoding = {
  problem : Milp.problem;
  net : Cv_nn.Network.t;
  input_box : Cv_interval.Box.t;
  input_vars : Cv_lp.Lp.var array;
  outputs : expr array;  (** affine expressions of the output neurons *)
  pre_bounds : Cv_interval.Box.t array;  (** per-layer pre-activation bounds *)
  seeds : (float * Cv_linalg.Vec.t) array array;
      (** per output: [(max_seed, input); (min_seed, input)] from sampling *)
}

let check_encodable net =
  Array.iter
    (fun (l : Cv_nn.Layer.t) ->
      if not (Cv_nn.Activation.is_piecewise_linear l.Cv_nn.Layer.act) then
        invalid_arg
          ("Relu_encoding: activation not piecewise linear: "
          ^ Cv_nn.Activation.to_string l.Cv_nn.Layer.act))
    (Cv_nn.Network.layers net)

(* Combine [Σ_j w_j · expr_j + bias] into one expression, merging
   duplicate variables. *)
let affine_combine row exprs bias =
  let acc = Hashtbl.create 16 in
  let const = ref bias in
  Array.iteri
    (fun j w ->
      if w <> 0. then begin
        let e = exprs.(j) in
        const := !const +. (w *. e.const);
        List.iter
          (fun (c, v) ->
            let cur = try Hashtbl.find acc v with Not_found -> 0. in
            Hashtbl.replace acc v (cur +. (w *. c)))
          e.terms
      end)
    row;
  let terms = Hashtbl.fold (fun v c l -> if c = 0. then l else (c, v) :: l) acc [] in
  { terms; const = !const }

let scale_expr s e =
  { terms = List.map (fun (c, v) -> (s *. c, v)) e.terms; const = s *. e.const }


(* y (op) e + shift  ⟺  y − e.terms (op) e.const + shift *)
let constrain problem ~y_terms op e ~shift =
  Milp.add_constraint problem
    (y_terms @ List.map (fun (c, v) -> (-.c, v)) e.terms)
    op (e.const +. shift)

(* Encode y = act(z) for an unstable piecewise-linear neuron:
   z ∈ [l, u] with l < 0 < u, slope = negative-side slope. *)
let encode_unstable problem ~slope ~z_expr ~l ~u ~name =
  let open Cv_lp.Lp in
  let y = Milp.add_var problem ~lo:(slope *. l) ~hi:u ~name () in
  let delta = Milp.add_binary problem ~name:(name ^ "_d") () in
  (* y ≥ z  and  y ≥ slope·z *)
  constrain problem ~y_terms:[ (1., y) ] Ge z_expr ~shift:0.;
  constrain problem ~y_terms:[ (1., y) ] Ge (scale_expr slope z_expr) ~shift:0.;
  (* y ≤ z − (1−slope)·l·(1−δ) *)
  let oml = (1. -. slope) *. l in
  constrain problem
    ~y_terms:[ (1., y); (-.oml, delta) ]
    Le z_expr ~shift:(-.oml);
  (* y ≤ slope·z + (1−slope)·u·δ *)
  let omu = (1. -. slope) *. u in
  constrain problem
    ~y_terms:[ (1., y); (-.omu, delta) ]
    Le (scale_expr slope z_expr) ~shift:0.;
  { terms = [ (1., y) ]; const = 0. }

(** [encode ~net ~input_box] builds the exact MILP of the slice [net]
    over [input_box]. *)
let encode ~net ~input_box =
  check_encodable net;
  let problem = Milp.create () in
  let in_dim = Cv_nn.Network.in_dim net in
  if Cv_interval.Box.dim input_box <> in_dim then
    invalid_arg "Relu_encoding.encode: input box dimension";
  let input_vars =
    Array.init in_dim (fun j ->
        let iv = Cv_interval.Box.get input_box j in
        Milp.add_var problem
          ~lo:(Cv_interval.Interval.lo iv)
          ~hi:(Cv_interval.Interval.hi iv)
          ~name:(Printf.sprintf "in%d" j) ())
  in
  let n = Cv_nn.Network.num_layers net in
  let pre_bounds = Array.make n [||] in
  let sym = ref (Cv_domains.Symint.of_box input_box) in
  let exprs =
    ref (Array.map (fun v -> { terms = [ (1., v) ]; const = 0. }) input_vars)
  in
  for i = 0 to n - 1 do
    let layer = Cv_nn.Network.layer net i in
    let w = layer.Cv_nn.Layer.weights and bias = layer.Cv_nn.Layer.bias in
    let pre_sym = Cv_domains.Symint.affine w bias !sym in
    let pre_box = Cv_domains.Symint.to_box pre_sym in
    pre_bounds.(i) <- pre_box;
    let slope =
      match layer.Cv_nn.Layer.act with
      | Cv_nn.Activation.Relu -> 0.
      | Cv_nn.Activation.Leaky_relu s -> s
      | Cv_nn.Activation.Identity -> 1.
      | _ -> assert false
    in
    let out_dim = Cv_nn.Layer.out_dim layer in
    exprs :=
      Array.init out_dim (fun r ->
          let z_expr = affine_combine (Cv_linalg.Mat.row w r) !exprs bias.(r) in
          let iv = Cv_interval.Box.get pre_box r in
          let l = Cv_interval.Interval.lo iv
          and u = Cv_interval.Interval.hi iv in
          if slope = 1. || l >= 0. then z_expr
          else if u <= 0. then scale_expr slope z_expr
          else
            encode_unstable problem ~slope ~z_expr ~l ~u
              ~name:(Printf.sprintf "y%d_%d" i r));
    sym := Cv_domains.Symint.apply_layer layer !sym
  done;
  (* Concrete sampling seeds: best/worst observed value per output. *)
  let rng = Cv_util.Rng.create 61 in
  let out_dim = Cv_nn.Network.out_dim net in
  let seeds =
    let center = Cv_interval.Box.center input_box in
    let points =
      center :: List.init 32 (fun _ -> Cv_interval.Box.sample rng input_box)
    in
    let best = Array.map (fun _ -> ((Float.neg_infinity, [||]), (Float.infinity, [||])))
        (Array.make out_dim ()) in
    List.iter
      (fun x ->
        let y = Cv_nn.Network.eval net x in
        Array.iteri
          (fun o yo ->
            let (hi, hx), (lo, lx) = best.(o) in
            let hi' = if yo > hi then (yo, x) else (hi, hx) in
            let lo' = if yo < lo then (yo, x) else (lo, lx) in
            best.(o) <- (hi', lo'))
          y)
      points;
    Array.map (fun ((hi, hx), (lo, lx)) -> [| (hi, hx); (lo, lx) |]) best
  in
  { problem; net; input_box; input_vars; outputs = !exprs; pre_bounds; seeds }

(* Lift a Milp result over [terms] back to the expression [e] (adds the
   constant) and substitute seeded values when branch-and-bound never
   produced an explicit incumbent. *)
let lift_result e ~seed_input ~in_dim = function
  | Milp.Optimal s when Array.length s.Milp.values = 0 ->
    (* Branch-and-bound closed on the sampling seed: the optimum equals
       the seed value and the seed input is its witness. *)
    if Array.length seed_input = in_dim then
      Milp.Optimal
        { Milp.objective = s.Milp.objective +. e.const;
          values = Array.copy seed_input }
    else Milp.Optimal { s with Milp.objective = s.Milp.objective +. e.const }
  | Milp.Optimal s ->
    Milp.Optimal { s with Milp.objective = s.Milp.objective +. e.const }
  | Milp.Cutoff_reached s ->
    Milp.Cutoff_reached { s with Milp.objective = s.Milp.objective +. e.const }
  | Milp.Below_cutoff ub -> Milp.Below_cutoff (ub +. e.const)
  | Milp.Infeasible -> Milp.Infeasible
  | Milp.Unbounded -> Milp.Unbounded
  | Milp.Timeout { bound; incumbent } ->
    Milp.Timeout
      { bound = bound +. e.const;
        incumbent =
          Option.map
            (fun s -> { s with Milp.objective = s.Milp.objective +. e.const })
            incumbent }

(** [max_output ?deadline ?cutoff ?domains enc ~output] maximises one
    output neuron over the encoded set (exactly — the sampling seed only
    accelerates pruning). [domains > 1] parallelises the
    branch-and-bound dives. *)
let max_output ?deadline ?cutoff ?domains ?checkpoint ?resume enc ~output =
  let e = enc.outputs.(output) in
  let seed_val, seed_input = enc.seeds.(output).(0) in
  let cutoff' = Option.map (fun t -> t -. e.const) cutoff in
  (* The seed is a feasible value, so the optimum is ≥ seed: prune with
     it via the cutoff mechanism only when it does not weaken the
     caller's query semantics (no user cutoff → use seed as a pruning
     floor through known_feasible). *)
  Milp.maximize ?deadline ?cutoff:cutoff' ?domains ?checkpoint ?resume
    ~known_feasible:(seed_val -. e.const)
    enc.problem e.terms
  |> lift_result e ~seed_input ~in_dim:(Array.length enc.input_vars)

(** [min_output ?deadline ?cutoff ?domains enc ~output] minimises one
    output neuron. *)
let min_output ?deadline ?cutoff ?domains ?checkpoint ?resume enc ~output =
  let e = enc.outputs.(output) in
  let seed_val, seed_input = enc.seeds.(output).(1) in
  let cutoff' = Option.map (fun t -> t -. e.const) cutoff in
  Milp.minimize ?deadline ?cutoff:cutoff' ?domains ?checkpoint ?resume
    ~known_feasible:(seed_val -. e.const)
    enc.problem e.terms
  |> lift_result e ~seed_input ~in_dim:(Array.length enc.input_vars)

(** [stats enc] is [(vars, constraints, binaries)] for reports. *)
let stats enc =
  ( Milp.var_count enc.problem,
    Milp.constraint_count enc.problem,
    Milp.binary_count enc.problem )
