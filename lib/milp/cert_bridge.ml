module Box = Cv_interval.Box
module Interval = Cv_interval.Interval
module Cert = Cv_cert.Cert
module Lp = Cv_lp.Lp
module Lp_cert = Cv_lp.Lp_cert

let goal ?max_nodes ?max_iters (enc : Relu_encoding.encoding) ~output ~side =
  if output < 0 || output >= Array.length enc.outputs then None
  else begin
    let expr = enc.outputs.(output) in
    Lp.set_objective enc.problem.lp ~maximize:(side = `Upper) expr.terms;
    let compiled = Lp.compile ~fixable:enc.problem.binaries enc.problem.lp in
    Option.map
      (fun (br : Lp_cert.branch_result) ->
        let sign, shift = Lp.compiled_frame compiled in
        {
          Cert.mg_lp = br.br_system;
          mg_binaries = br.br_binaries;
          mg_target = br.br_bound;
          mg_output = output;
          mg_side = side;
          mg_sign = sign;
          mg_shift = shift;
          mg_const = expr.const;
          mg_tree = br.br_tree;
        })
      (Lp_cert.branch_and_certify ?max_nodes ?max_iters compiled
         ~binaries:enc.problem.binaries)
  end

let safe_cert ?max_nodes ?max_iters ~mode ~solver ~fingerprint net ~din ~dout
    =
  match Relu_encoding.encode ~net ~input_box:din with
  | exception Invalid_argument _ -> None
  | enc ->
    let goals = ref [] in
    let ok = ref true in
    for k = 0 to Box.dim dout - 1 do
      let iv = Box.get dout k in
      let need side =
        match goal ?max_nodes ?max_iters enc ~output:k ~side with
        | Some g -> goals := g :: !goals
        | None -> ok := false
      in
      if Interval.hi iv < Float.infinity then need `Upper;
      if Interval.lo iv > Float.neg_infinity then need `Lower
    done;
    if not !ok then None
    else begin
      let cert =
        {
          Cert.mode;
          solver;
          fingerprint;
          claim = Cert.Network_safe { net; din; dout };
          proof = Cert.P_milp_goals (List.rev !goals);
        }
      in
      match Cv_cert.Check.check cert with
      | Cv_cert.Check.Valid -> Some cert
      | Invalid _ -> None
    end
