(** Solving SVuDC — same network, enlarged domain (paper §IV-A).

    Each route returns a {!Report.attempt}; a subproblem violation never
    means the target property is unsafe (the stored abstractions
    over-approximate), so failed routes come back [Inconclusive] and the
    strategy moves on. The one exception is {!delta_cover}, whose
    subproblems check the target property directly and can therefore
    return a definitive [Unsafe] witness. *)

(** [trivial p] — the degenerate shortcut: if the "enlarged" domain is
    in fact contained in the proved [D_in], the old proof applies
    verbatim. *)
val trivial : Problem.svudc -> Report.attempt

(** [prop1 ?engine p] — proof reuse at layers 1 and 2 (Proposition 1):
    check [∀x ∈ D_in ∪ Δ_in, g₂(g₁(x)) ∈ S₂] on the two-layer prefix
    with an exact engine (default MILP). *)
val prop1 :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  Problem.svudc ->
  Report.attempt

(** [prop2 ?domain ?engine ?domains p] — proof reuse at layer [j+1]
    (Proposition 2): rebuild [S'] on the enlarged domain with the
    abstract [domain] (default symbolic intervals), then search — in
    parallel over [domains] workers — for a [j] whose handoff
    [∀x ∈ S'_j, g_{j+1}(x) ∈ S_{j+1}] holds (free box inclusion first,
    then the exact engine on the single-layer slice). *)
val prop2 :
  ?deadline:Cv_util.Deadline.t ->
  ?domain:Cv_domains.Analyzer.domain_kind ->
  ?engine:Cv_verify.Containment.engine ->
  ?domains:int ->
  Problem.svudc ->
  Report.attempt

(** [prop3 ?norm p] — Lipschitz-based reuse (Proposition 3): with stored
    ℓ (for [norm], default ∞) and measured κ, the property transfers
    when [S_n ⊕ ℓκ ⊆ D_out]. *)
val prop3 : ?norm:Cv_lipschitz.Lipschitz.norm -> Problem.svudc -> Report.attempt

(** [enlargement_slabs ~old_box ~new_box] covers
    [new_box \ old_box] with at most [2·dim] labelled axis-aligned
    slabs. *)
val enlargement_slabs :
  old_box:Cv_interval.Box.t ->
  new_box:Cv_interval.Box.t ->
  (string * Cv_interval.Box.t) array

(** [delta_cover ?engine ?domains p] — verify only the {e new} region:
    [D_in ∪ Δ_in \ D_in] is covered by at most [2·dim] axis-aligned
    slabs, each checked directly against [D_out] with the exact engine
    on the full network (in parallel); the old proof covers [D_in]. Not
    one of the paper's numbered propositions, but a direct consequence
    of its observation that only Δ_in is new. *)
val delta_cover :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domains:int ->
  Problem.svudc ->
  Report.attempt
