(** A continuous-verification session: the stateful object a deployment
    actually keeps around.

    It owns the currently certified network, its proof artifact, and the
    runtime monitor, and exposes the three events of the paper's
    continuous-engineering loop as transitions:

    - {!observe}: feed monitored feature vectors; OOD events accumulate;
    - {!absorb_enlargement}: solve the pending SVuDC instance and, on
      success, commit the enlarged domain and refresh the artifact;
    - {!adopt}: solve the SVbTV instance for a fine-tuned candidate and,
      on success, install it as the certified network;
    - {!retarget}: solve the SVuSC instance for an evolved specification
      and, on success, adopt the new [D_out].

    Every transition appends to an audit {!history}; a rejected
    transition leaves the session unchanged (the old certificate keeps
    standing, which is exactly the safety story of the paper: the
    deployed system only ever runs configurations whose proof is
    current). *)

type event =
  | Certified of string  (** initial certification (solver name) *)
  | Ood_event of int  (** running OOD count after an observation *)
  | Domain_enlarged of Report.t
  | Domain_rejected of Report.t
  | Version_adopted of Report.t
  | Version_rejected of Report.t
  | Spec_changed of Report.t
  | Spec_rejected of Report.t
  | Budget_exhausted of Report.t
      (** a transition ran out of verification budget; the session is
          unchanged and the old certificate keeps standing *)

(* Session-lifecycle accounting: one counter per transition kind, so a
   long-running deployment can report how often each continuous-
   engineering event fired (surfaced by `contiver --stats`). *)
let m_event = function
  | Certified _ -> Cv_util.Metrics.counter "core.session.certified"
  | Ood_event _ -> Cv_util.Metrics.counter "core.session.ood_events"
  | Domain_enlarged _ -> Cv_util.Metrics.counter "core.session.enlargements"
  | Domain_rejected _ ->
    Cv_util.Metrics.counter "core.session.enlargements_rejected"
  | Version_adopted _ -> Cv_util.Metrics.counter "core.session.adoptions"
  | Version_rejected _ ->
    Cv_util.Metrics.counter "core.session.adoptions_rejected"
  | Spec_changed _ -> Cv_util.Metrics.counter "core.session.spec_changes"
  | Spec_rejected _ ->
    Cv_util.Metrics.counter "core.session.spec_changes_rejected"
  | Budget_exhausted _ ->
    Cv_util.Metrics.counter "core.session.budget_exhausted"

let record_event e = Cv_util.Metrics.incr (m_event e)

type t = {
  mutable net : Cv_nn.Network.t;
  mutable artifact : Cv_artifacts.Artifacts.t;
  monitor : Cv_monitor.Monitor.t;
  config : Strategy.config;
  widen : float;
  mutable history : event list;  (** newest first *)
}

let push s e =
  record_event e;
  s.history <- e :: s.history

(** [certify ?deadline ?config ?widen net prop] runs the original
    (exact) verification and opens a session; [Error] with the failure
    report when the property does not hold or the budget expires (the
    report's verdict distinguishes the two). *)
let certify ?deadline ?(config = Strategy.default_config) ?(widen = 0.03) net
    prop =
  let original =
    Strategy.solve_original_exact ?deadline ~config ~widen
      ~with_split_cert:true net prop
  in
  if not original.Strategy.proved then Error original.Strategy.report
  else begin
    let e = Certified original.Strategy.artifact.Cv_artifacts.Artifacts.solver in
    record_event e;
    Ok
      { net;
        artifact = original.Strategy.artifact;
        monitor = Cv_monitor.Monitor.of_box prop.Cv_verify.Property.din;
        config;
        widen;
        history = [ e ] }
  end

(** [resume ?config ?widen net artifact] opens a session from a
    persisted artifact without re-verifying; raises [Invalid_argument]
    when the artifact does not match the network. *)
let resume ?(config = Strategy.default_config) ?(widen = 0.03) net artifact =
  if not (Cv_artifacts.Artifacts.matches artifact net) then
    invalid_arg "Session.resume: artifact/network mismatch";
  let e = Certified artifact.Cv_artifacts.Artifacts.solver in
  record_event e;
  { net;
    artifact;
    monitor =
      Cv_monitor.Monitor.of_box
        artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.din;
    config;
    widen;
    history = [ e ] }

(** Typed failure of {!resume_file}. *)
type resume_error =
  | Corrupt_artifact of string
      (** the file is unreadable, truncated, fails its checksum, or
          violates the artifact schema *)
  | Artifact_mismatch of string
      (** the artifact was produced for a different network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
let resume_error_message = function
  | Corrupt_artifact msg -> msg
  | Artifact_mismatch msg -> msg

(** [resume_file ?config ?widen net path] opens a session from an
    artifact file, returning a typed error — never an exception — when
    the file is corrupt or was produced for a different network. *)
let resume_file ?config ?widen net path =
  match Cv_artifacts.Artifacts.load_result path with
  | Error e ->
    Error (Corrupt_artifact (Cv_artifacts.Artifacts.load_error_message e))
  | Ok artifact ->
    if not (Cv_artifacts.Artifacts.matches artifact net) then
      Error
        (Artifact_mismatch
           (Printf.sprintf
              "%s: artifact fingerprint does not match this network" path))
    else Ok (resume ?config ?widen net artifact)

(** [network s] is the currently certified network. *)
let network s = s.net

(** [artifact s] is the current proof artifact. *)
let artifact s = s.artifact

(** [property s] is the currently certified property. *)
let property s = s.artifact.Cv_artifacts.Artifacts.property

(** [history s] lists transitions, oldest first. *)
let history s = List.rev s.history

(** [pending_ood s] is the number of OOD events awaiting
    {!absorb_enlargement}. *)
let pending_ood s = Cv_monitor.Monitor.event_count s.monitor

(** [observe s features] feeds one monitored feature vector; returns the
    OOD event when the vector escapes the certified domain. *)
let observe s features =
  let r = Cv_monitor.Monitor.observe s.monitor features in
  (match r with
  | Some _ -> push s (Ood_event (Cv_monitor.Monitor.event_count s.monitor))
  | None -> ());
  r

(* Refresh the stored artifact for a (possibly new) net and domain:
   recompute the widened chain and Lipschitz constants; the D_out is
   unchanged. Only called after a reuse proof succeeded, so the refresh
   itself needs no solver. *)
let refresh_artifact s net din =
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:s.widen s.config.Strategy.domain net
      din
  in
  let prop =
    Cv_verify.Property.make ~din
      ~dout:(property s).Cv_verify.Property.dout
  in
  let lipschitz =
    [ ("Linf", Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net);
      ("L2", Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.L2 net) ]
  in
  let chain_proves =
    Cv_interval.Box.subset_tol
      chain.(Array.length chain - 1)
      prop.Cv_verify.Property.dout
  in
  (* Keep the bisection certificate alive too: repair it for the new
     network, extending it over any domain growth. *)
  let split_cert =
    match s.artifact.Cv_artifacts.Artifacts.split_cert with
    | None -> None
    | Some cert -> (
      match
        Cv_verify.Split_cert.repair ?domains:s.config.Strategy.domains cert net
      with
      | Some cert' when
          Cv_interval.Box.subset_tol din cert'.Cv_verify.Split_cert.input_box
        ->
        Some cert'
      | _ ->
        Cv_verify.Split_cert.prove net ~input_box:din
          ~target:prop.Cv_verify.Property.dout)
  in
  Cv_artifacts.Artifacts.make
    ?state_abstractions:(if chain_proves then Some chain else None)
    ?split_cert ~lipschitz ~property:prop ~net ~solver:"session-refresh"
    ~solve_seconds:s.artifact.Cv_artifacts.Artifacts.solve_seconds ()

(** [absorb_enlargement ?deadline ?margin s] solves the pending SVuDC
    instance for the monitored enlargement. On success the enlarged
    domain is committed, the artifact refreshed, and the OOD log
    cleared; on failure or budget expiry the session is unchanged.
    Returns the reuse report either way. *)
let absorb_enlargement ?deadline ?(margin = 0.005) s =
  let new_din = Cv_monitor.Monitor.enlarged_box ~margin s.monitor in
  let p = Problem.svudc ~net:s.net ~artifact:s.artifact ~new_din in
  let report = Strategy.solve_svudc ?deadline ~config:s.config p in
  (match report.Report.verdict with
  | Report.Safe ->
    Cv_monitor.Monitor.commit s.monitor new_din;
    s.artifact <- refresh_artifact s s.net new_din;
    push s (Domain_enlarged report)
  | Report.Exhausted _ -> push s (Budget_exhausted report)
  | _ -> push s (Domain_rejected report));
  report

(** [adopt ?deadline ?netabs s candidate] solves the SVbTV instance for
    a fine-tuned candidate network (over the certified domain). On
    success the candidate becomes the certified network and the artifact
    is refreshed; on failure or budget expiry the old version keeps
    running. *)
let adopt ?deadline ?netabs s candidate =
  let din = (property s).Cv_verify.Property.din in
  let p =
    Problem.svbtv ~old_net:s.net ~new_net:candidate ~artifact:s.artifact
      ~new_din:din
  in
  let report = Strategy.solve_svbtv ?deadline ~config:s.config ?netabs p in
  (match report.Report.verdict with
  | Report.Safe ->
    s.net <- candidate;
    s.artifact <- refresh_artifact s candidate din;
    push s (Version_adopted report)
  | Report.Exhausted _ -> push s (Budget_exhausted report)
  | _ -> push s (Version_rejected report));
  report

(** [retarget ?deadline s new_dout] solves the SVuSC instance for an
    evolved specification; on success the artifact is rebuilt against
    the new [D_out]; on budget expiry the session is unchanged. *)
let retarget ?deadline s new_dout =
  let p = Specchange.make ~net:s.net ~artifact:s.artifact ~new_dout () in
  let report = Specchange.solve ?deadline ~config:s.config p in
  (match report.Report.verdict with
  | Report.Safe ->
    let din = (property s).Cv_verify.Property.din in
    let chain =
      Cv_domains.Analyzer.abstractions ~widen:s.widen s.config.Strategy.domain
        s.net din
    in
    let chain_proves =
      Cv_interval.Box.subset_tol chain.(Array.length chain - 1) new_dout
    in
    s.artifact <-
      Cv_artifacts.Artifacts.make
        ?state_abstractions:(if chain_proves then Some chain else None)
        ~lipschitz:s.artifact.Cv_artifacts.Artifacts.lipschitz
        ~property:(Cv_verify.Property.make ~din ~dout:new_dout)
        ~net:s.net ~solver:"session-retarget"
        ~solve_seconds:s.artifact.Cv_artifacts.Artifacts.solve_seconds ();
    push s (Spec_changed report)
  | Report.Exhausted _ -> push s (Budget_exhausted report)
  | _ -> push s (Spec_rejected report));
  report

(** [event_string e] is a one-line audit entry. *)
let event_string = function
  | Certified solver -> "certified (" ^ solver ^ ")"
  | Ood_event n -> Printf.sprintf "OOD event (%d pending)" n
  | Domain_enlarged r ->
    Printf.sprintf "domain enlarged via %s"
      (Option.value ~default:"?" r.Report.decisive)
  | Domain_rejected _ -> "domain enlargement rejected"
  | Version_adopted r ->
    Printf.sprintf "new version adopted via %s"
      (Option.value ~default:"?" r.Report.decisive)
  | Version_rejected _ -> "candidate version rejected"
  | Spec_changed r ->
    Printf.sprintf "specification changed via %s"
      (Option.value ~default:"?" r.Report.decisive)
  | Spec_rejected _ -> "specification change rejected"
  | Budget_exhausted r ->
    Printf.sprintf "transition abandoned: %s"
      (Report.outcome_string r.Report.verdict)
