(** Solving SVbTV — fine-tuned network, possibly enlarged domain
    (paper §IV-B). *)

(** [get_abstractions p] reads the stored state-abstraction chain from
    the instance's artifact, if any. *)
val get_abstractions : Problem.svbtv -> Cv_interval.Box.t array option

(** [dout p] is the safe output set of the proved property. *)
val dout : Problem.svbtv -> Cv_interval.Box.t

(** [prop4 ?engine ?domains p] — single-layer reuse of every stored
    abstraction (Proposition 4): [g'_1] over the enlarged domain into
    [S_1], each [g'_{i+1}] over [S_i] into [S_{i+1}], and [g'_n] over
    [S_{n-1}] into [D_out]. All subproblems are independent and run in
    parallel; the reported parallel time is the maximum subproblem time
    (Table I, footnote 3). *)
val prop4 :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domains:int ->
  Problem.svbtv ->
  Report.attempt

(** [prop5 ?engine ?domains ~anchors p] — multi-layer reuse at the
    anchor layers [⟨α_1⟩ < … < ⟨α_l⟩] (Proposition 5; paper-style
    1-based indices with [1 < α < n]): subproblems run f' from one
    anchor's abstraction to the next. Fewer but harder subproblems than
    {!prop4}. *)
val prop5 :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domains:int ->
  anchors:int list ->
  Problem.svbtv ->
  Report.attempt

(** [default_anchors n] picks anchors at roughly every other layer — the
    paper's example pattern ([α = 2, 4] for [n = 6]). *)
val default_anchors : int -> int list

(** [leaf_reuse ?domains p] — revalidate a stored bisection certificate
    (the ReluVal-style split-tree artifact) against the fine-tuned
    network: one-shot symbolic intervals per leaf, no new splitting,
    embarrassingly parallel; genuine enlargement beyond the certified
    domain is covered by freshly split slabs. *)
val leaf_reuse :
  ?deadline:Cv_util.Deadline.t -> ?domains:int -> Problem.svbtv -> Report.attempt
