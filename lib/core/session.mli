(** A continuous-verification session: the stateful object a deployment
    keeps around. It owns the certified network, its proof artifact and
    the runtime monitor, and exposes the continuous-engineering events
    as transitions; a rejected transition leaves the session unchanged,
    so the deployed system only ever runs configurations whose proof is
    current. *)

type event =
  | Certified of string  (** initial certification (solver name) *)
  | Ood_event of int  (** running OOD count after an observation *)
  | Domain_enlarged of Report.t
  | Domain_rejected of Report.t
  | Version_adopted of Report.t
  | Version_rejected of Report.t
  | Spec_changed of Report.t
  | Spec_rejected of Report.t
  | Budget_exhausted of Report.t
      (** a transition ran out of verification budget; the session is
          unchanged and the old certificate keeps standing *)

type t

(** [certify ?deadline ?config ?widen net prop] runs the original
    (exact) verification and opens a session; [Error] with the failure
    report when the property does not hold or the budget expires. *)
val certify :
  ?deadline:Cv_util.Deadline.t ->
  ?config:Strategy.config ->
  ?widen:float ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  (t, Cv_verify.Verifier.report) result

(** [resume ?config ?widen net artifact] opens a session from a
    persisted artifact without re-verifying. *)
val resume :
  ?config:Strategy.config ->
  ?widen:float ->
  Cv_nn.Network.t ->
  Cv_artifacts.Artifacts.t ->
  t

(** Typed failure of {!resume_file}. *)
type resume_error =
  | Corrupt_artifact of string
      (** the file is unreadable, truncated, fails its checksum, or
          violates the artifact schema *)
  | Artifact_mismatch of string
      (** the artifact was produced for a different network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
val resume_error_message : resume_error -> string

(** [resume_file ?config ?widen net path] opens a session from an
    artifact file, returning a typed error — never an exception — when
    the file is corrupt or was produced for a different network. *)
val resume_file :
  ?config:Strategy.config ->
  ?widen:float ->
  Cv_nn.Network.t ->
  string ->
  (t, resume_error) result

(** [network s] is the currently certified network. *)
val network : t -> Cv_nn.Network.t

(** [artifact s] is the current proof artifact. *)
val artifact : t -> Cv_artifacts.Artifacts.t

(** [property s] is the currently certified property. *)
val property : t -> Cv_verify.Property.t

(** [history s] lists transitions, oldest first. *)
val history : t -> event list

(** [pending_ood s] is the number of OOD events awaiting
    {!absorb_enlargement}. *)
val pending_ood : t -> int

(** [observe s features] feeds one monitored feature vector; returns the
    OOD event when it escapes the certified domain. *)
val observe : t -> Cv_linalg.Vec.t -> Cv_monitor.Monitor.event option

(** [absorb_enlargement ?deadline ?margin s] solves the pending SVuDC
    instance; on success the enlarged domain is committed, the artifact
    refreshed and the OOD log cleared. On budget expiry the session is
    unchanged and a {!Budget_exhausted} event is recorded. *)
val absorb_enlargement :
  ?deadline:Cv_util.Deadline.t -> ?margin:float -> t -> Report.t

(** [adopt ?deadline ?netabs s candidate] solves the SVbTV instance for
    a fine-tuned candidate; on success the candidate becomes the
    certified network. On budget expiry the session is unchanged and a
    {!Budget_exhausted} event is recorded. *)
val adopt :
  ?deadline:Cv_util.Deadline.t ->
  ?netabs:Netabs_reuse.t ->
  t ->
  Cv_nn.Network.t ->
  Report.t

(** [retarget ?deadline s new_dout] solves the SVuSC instance for an
    evolved specification; on success the artifact is rebuilt against
    the new [D_out]. On budget expiry the session is unchanged and a
    {!Budget_exhausted} event is recorded. *)
val retarget : ?deadline:Cv_util.Deadline.t -> t -> Cv_interval.Box.t -> Report.t

(** [event_string e] is a one-line audit entry. *)
val event_string : event -> string
