(** Safety Verification under Specification Change (SVuSC) — the
    paper's concluding-remarks direction ("continuous evolution of the
    quantitative specification of DNN and the corresponding reuse"),
    implemented as a third problem class alongside SVuDC and SVbTV.

    The network is unchanged; the safe output set evolves from [D_out]
    to [D_out'] (e.g. a tightened comfort envelope on the waypoint), and
    optionally the input domain is enlarged at the same time. Reuse
    routes, cheapest first:

    + {e trivial}: [D_out ⊆ D_out'] — a relaxed specification inherits
      the old proof verbatim;
    + {e chain}: the stored [S_n] (inflated by ℓκ when the domain also
      grew) already fits [D_out'];
    + otherwise fall back to a full verification of the new property. *)

type t = {
  net : Cv_nn.Network.t;
  artifact : Cv_artifacts.Artifacts.t;
  new_dout : Cv_interval.Box.t;
  new_din : Cv_interval.Box.t;  (** = old D_in when only the spec moved *)
}

(** [make ~net ~artifact ~new_dout ?new_din ()] validates and builds an
    SVuSC instance. *)
let make ~net ~artifact ~new_dout ?new_din () =
  if not (Cv_artifacts.Artifacts.matches artifact net) then
    invalid_arg "Specchange.make: artifact was not produced for this network";
  let old_prop = artifact.Cv_artifacts.Artifacts.property in
  let new_din =
    match new_din with
    | Some b -> b
    | None -> old_prop.Cv_verify.Property.din
  in
  if not (Cv_interval.Box.subset_tol old_prop.Cv_verify.Property.din new_din)
  then invalid_arg "Specchange.make: new domain must contain the original D_in";
  if Cv_interval.Box.dim new_dout <> Cv_nn.Network.out_dim net then
    invalid_arg "Specchange.make: new D_out dimension";
  { net; artifact; new_dout; new_din }

(** [target_property p] is [φ(f, D_in ∪ Δ_in, D_out')]. *)
let target_property p = Cv_verify.Property.make ~din:p.new_din ~dout:p.new_dout

(** [trivial p] — a relaxed specification ([D_out ⊆ D_out']) with an
    unchanged domain inherits the proof. *)
let trivial p =
  let old_prop = p.artifact.Cv_artifacts.Artifacts.property in
  let ok, wall =
    Cv_util.Timer.time (fun () ->
        Cv_interval.Box.subset_tol old_prop.Cv_verify.Property.dout p.new_dout
        && Cv_interval.Box.subset_tol p.new_din old_prop.Cv_verify.Property.din)
  in
  { Report.name = "spec-trivial";
    outcome =
      (if ok then Report.Safe
       else Report.Inconclusive "specification tightened or domain enlarged");
    timing = Report.sequential_timing wall;
    detail = "old D_out ⊆ new D_out, domain unchanged?" }

(** [chain ?norm p] — the stored [S_n], inflated by ℓκ when the domain
    also grew, fits the new specification. *)
let chain ?(norm = Cv_lipschitz.Lipschitz.Linf) p =
  let artifact = p.artifact in
  let old_prop = artifact.Cv_artifacts.Artifacts.property in
  let run () =
    match Cv_artifacts.Artifacts.final_abstraction artifact with
    | None -> (Report.Inconclusive "artifact carries no state abstractions", "")
    | Some s_n ->
      let kappa =
        Cv_lipschitz.Lipschitz.kappa ~norm
          ~old_box:old_prop.Cv_verify.Property.din ~new_box:p.new_din
      in
      let inflate =
        if kappa <= 0. then Some 0.
        else
          Option.map
            (fun ell -> ell *. kappa)
            (Cv_artifacts.Artifacts.lipschitz_for artifact
               (Cv_lipschitz.Lipschitz.norm_name norm))
      in
      (match inflate with
      | None ->
        (Report.Inconclusive "domain enlarged but no Lipschitz constant", "")
      | Some lk ->
        let inflated = Cv_interval.Box.expand lk s_n in
        let detail =
          Printf.sprintf "S_n ⊕ %.4g %s new D_out" lk
            (if Cv_interval.Box.subset_tol inflated p.new_dout then "⊆" else "⊄")
        in
        if Cv_interval.Box.subset_tol inflated p.new_dout then
          (Report.Safe, detail)
        else (Report.Inconclusive "S_n escapes the new specification", detail))
  in
  let (outcome, detail), wall = Cv_util.Timer.time run in
  { Report.name = "spec-chain";
    outcome;
    timing = Report.sequential_timing wall;
    detail }

(** [solve ?deadline ?config p] runs the SVuSC pipeline: trivial →
    chain → full re-verification of the new property. Budget expiry ends
    the run with an [Exhausted] verdict. *)
let solve ?deadline ?(config = Strategy.default_config) p =
  let attempts =
    [ (fun () -> trivial p);
      (fun () -> chain ~norm:config.Strategy.lipschitz_norm p);
      (fun () ->
        Strategy.full_verify ?deadline ~config p.net (target_property p)) ]
  in
  let rec go acc = function
    | [] -> Report.conclude (List.rev acc)
    | thunk :: rest -> (
      let attempt = thunk () in
      match attempt.Report.outcome with
      | Report.Safe | Report.Unsafe _ | Report.Exhausted _ ->
        Report.conclude (List.rev (attempt :: acc))
      | Report.Inconclusive _ -> go (attempt :: acc) rest)
  in
  go [] attempts
