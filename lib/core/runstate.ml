(** Durable run checkpoints: the on-disk envelope for a suspended
    verification run.

    A checkpoint file pairs a command-specific progress payload (a
    {!Cv_verify.Range} progress document for [verify --exact], a
    {!Strategy.run_until_decisive} attempt log for [svudc]/[svbtv])
    with the run's {e kind}, the verified network's fingerprint and a
    {e scope} digest of the property under verification, all inside the
    checksummed atomic envelope of {!Cv_artifacts.Artifacts.save_doc}.
    Load validates all of them — checksum, kind, fingerprint, scope —
    through typed errors (mirroring {!Session.resume_file}), so a
    checkpoint can never silently resume the wrong run, the wrong
    network, or the wrong property. *)

let format = "contiver-checkpoint"

type kind = Verify | Svudc | Svbtv | Serve

let kind_name = function
  | Verify -> "verify"
  | Svudc -> "svudc"
  | Svbtv -> "svbtv"
  | Serve -> "serve"

type resume_error =
  | Corrupt_checkpoint of string
      (** unreadable file, malformed JSON, checksum mismatch, or schema
          violation *)
  | Checkpoint_mismatch of string
      (** a valid checkpoint for a different command or network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
let resume_error_message = function
  | Corrupt_checkpoint msg -> msg
  | Checkpoint_mismatch msg -> msg

(** [property_scope ?old_fingerprint ~din ~dout ()] is an opaque digest
    of {e what} is being verified — the input/output domains and, for
    differential (svbtv) runs, the reference network — used as the
    [scope] of {!save}/{!load} so a checkpoint taken for one property
    can never resume a run of another. *)
let property_scope ?old_fingerprint ~din ~dout () =
  String.concat ":"
    ((match old_fingerprint with None -> [] | Some fp -> [ fp ])
    @ [ Cv_artifacts.Cache.box_hash din; Cv_artifacts.Cache.box_hash dout ])

(** [save ?scope ~path ~kind ~fingerprint payload] writes a checkpoint
    atomically and durably (unique tmp + fsync + rename — see
    {!Cv_artifacts.Artifacts.save_doc}). *)
let save ?scope ~path ~kind ~fingerprint payload =
  Cv_artifacts.Artifacts.save_doc ~format path
    (Cv_util.Json.Obj
       ([ ("kind", Cv_util.Json.Str (kind_name kind));
          ("fingerprint", Cv_util.Json.Str fingerprint) ]
       @ (match scope with
         | None -> []
         | Some s -> [ ("scope", Cv_util.Json.Str s) ])
       @ [ ("payload", payload) ]))

(** [load ~path ~kind ~fingerprint ~scope] reads a checkpoint back,
    validating the envelope checksum, the run kind, the network
    fingerprint and — when the caller expects one — the property scope;
    returns the progress payload. A caller that passes [~scope:(Some _)]
    refuses checkpoints recorded without one: an unscoped file cannot
    prove it belongs to this property. *)
let load ~path ~kind ~fingerprint ~scope =
  match Cv_artifacts.Artifacts.load_doc_result ~format path with
  | Error e ->
    Error
      (Corrupt_checkpoint (Cv_artifacts.Artifacts.load_error_message e))
  | Ok doc -> (
    match
      ( Cv_util.Json.to_str (Cv_util.Json.member "kind" doc),
        Cv_util.Json.to_str (Cv_util.Json.member "fingerprint" doc),
        (match Cv_util.Json.member_opt "scope" doc with
        | None | Some Cv_util.Json.Null -> None
        | Some s -> Some (Cv_util.Json.to_str s)),
        Cv_util.Json.member "payload" doc )
    with
    | exception Cv_util.Json.Error msg ->
      Error (Corrupt_checkpoint (path ^ ": " ^ msg))
    | stored_kind, stored_fp, stored_scope, payload ->
      if not (String.equal stored_kind (kind_name kind)) then
        Error
          (Checkpoint_mismatch
             (Printf.sprintf
                "%s: checkpoint belongs to a %s run, not %s — refusing to \
                 resume"
                path stored_kind (kind_name kind)))
      else if not (String.equal stored_fp fingerprint) then
        Error
          (Checkpoint_mismatch
             (Printf.sprintf
                "%s: checkpoint was taken for a different network \
                 (fingerprint %s, expected %s) — refusing to resume"
                path stored_fp fingerprint))
      else
        match (scope, stored_scope) with
        | None, _ -> Ok payload
        | Some expected, Some stored when String.equal expected stored ->
          Ok payload
        | Some _, Some stored ->
          Error
            (Checkpoint_mismatch
               (Printf.sprintf
                  "%s: checkpoint was taken for a different property \
                   (scope %s) — refusing to resume"
                  path stored))
        | Some _, None ->
          Error
            (Checkpoint_mismatch
               (Printf.sprintf
                  "%s: checkpoint records no property scope — refusing to \
                   resume"
                  path)))
