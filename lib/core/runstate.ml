(** Durable run checkpoints: the on-disk envelope for a suspended
    verification run.

    A checkpoint file pairs a command-specific progress payload (a
    {!Cv_verify.Range} progress document for [verify --exact], a
    {!Strategy.run_until_decisive} attempt log for [svudc]/[svbtv])
    with the run's {e kind} and the verified network's fingerprint, all
    inside the checksummed atomic envelope of
    {!Cv_artifacts.Artifacts.save_doc}. Load validates all three —
    checksum, kind, fingerprint — through typed errors (mirroring
    {!Session.resume_file}), so a checkpoint can never silently resume
    the wrong run or the wrong network. *)

let format = "contiver-checkpoint"

type kind = Verify | Svudc | Svbtv

let kind_name = function
  | Verify -> "verify"
  | Svudc -> "svudc"
  | Svbtv -> "svbtv"

type resume_error =
  | Corrupt_checkpoint of string
      (** unreadable file, malformed JSON, checksum mismatch, or schema
          violation *)
  | Checkpoint_mismatch of string
      (** a valid checkpoint for a different command or network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
let resume_error_message = function
  | Corrupt_checkpoint msg -> msg
  | Checkpoint_mismatch msg -> msg

(** [save ~path ~kind ~fingerprint payload] writes a checkpoint
    atomically and durably (unique tmp + fsync + rename — see
    {!Cv_artifacts.Artifacts.save_doc}). *)
let save ~path ~kind ~fingerprint payload =
  Cv_artifacts.Artifacts.save_doc ~format path
    (Cv_util.Json.Obj
       [ ("kind", Cv_util.Json.Str (kind_name kind));
         ("fingerprint", Cv_util.Json.Str fingerprint);
         ("payload", payload) ])

(** [load ~path ~kind ~fingerprint] reads a checkpoint back, validating
    the envelope checksum, the run kind and the network fingerprint;
    returns the progress payload. *)
let load ~path ~kind ~fingerprint =
  match Cv_artifacts.Artifacts.load_doc_result ~format path with
  | Error e ->
    Error
      (Corrupt_checkpoint (Cv_artifacts.Artifacts.load_error_message e))
  | Ok doc -> (
    match
      ( Cv_util.Json.to_str (Cv_util.Json.member "kind" doc),
        Cv_util.Json.to_str (Cv_util.Json.member "fingerprint" doc),
        Cv_util.Json.member "payload" doc )
    with
    | exception Cv_util.Json.Error msg ->
      Error (Corrupt_checkpoint (path ^ ": " ^ msg))
    | stored_kind, stored_fp, payload ->
      if not (String.equal stored_kind (kind_name kind)) then
        Error
          (Checkpoint_mismatch
             (Printf.sprintf
                "%s: checkpoint belongs to a %s run, not %s — refusing to \
                 resume"
                path stored_kind (kind_name kind)))
      else if not (String.equal stored_fp fingerprint) then
        Error
          (Checkpoint_mismatch
             (Printf.sprintf
                "%s: checkpoint was taken for a different network \
                 (fingerprint %s, expected %s) — refusing to resume"
                path stored_fp fingerprint))
      else Ok payload)
