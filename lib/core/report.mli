(** Outcomes and timing records for continuous-verification attempts.

    Timing follows the paper's accounting (Table I, footnote 3): when a
    proposition decomposes into independent subproblems, the reported
    parallel time is the {e maximum} subproblem time; the sequential sum
    is kept alongside for the ablation benches. *)

type outcome =
  | Safe  (** the sufficient condition holds; the property transfers *)
  | Unsafe of Cv_verify.Falsify.violation
      (** a concrete counterexample to the {e target} property *)
  | Inconclusive of string
      (** the sufficient condition failed without a counterexample *)
  | Exhausted of string
      (** the resource budget (deadline/fuel) ran out before the attempt
          could decide; the property's status is unchanged *)

type timing = {
  wall : float;  (** actual wall-clock seconds of the attempt *)
  parallel : float;
      (** cost under full parallelisation: max over independent
          subproblems (equals [wall] for sequential attempts) *)
  sequential : float;  (** sum over subproblems *)
  subproblems : int;
}

(** [sequential_timing wall] is the timing of an undecomposed attempt. *)
val sequential_timing : float -> timing

type attempt = {
  name : string;  (** e.g. "prop1", "prop4", "fallback-full" *)
  outcome : outcome;
  timing : timing;
  detail : string;  (** free-form context for the log / report *)
}

(** [is_safe a] is true when the attempt proved the property. *)
val is_safe : attempt -> bool

(** A full strategy run: every attempt in order, ending either with a
    successful one or with all failing. *)
type t = {
  attempts : attempt list;
  verdict : outcome;
  total_wall : float;
  decisive : string option;  (** name of the attempt that settled it *)
}

(** [conclude attempts] folds attempts into a run report: the verdict is
    the first non-inconclusive outcome, or the last attempt's
    inconclusive/exhausted message. An [Exhausted] attempt ends the
    run. *)
val conclude : attempt list -> t

(** [attempt_to_json a] / [attempt_of_json j] encode non-decisive
    attempts for strategy checkpoints. [attempt_to_json] raises
    [Invalid_argument] on a decisive attempt (those end the run and are
    never checkpointed); [attempt_of_json] raises
    {!Cv_util.Json.Error} on malformed input. *)
val attempt_to_json : attempt -> Cv_util.Json.t

val attempt_of_json : Cv_util.Json.t -> attempt

(** [outcome_string o] is a short printable verdict. *)
val outcome_string : outcome -> string

(** [pp ppf t] prints the run: one line per attempt plus the verdict. *)
val pp : Format.formatter -> t -> unit

(** [to_string t] renders {!pp}. *)
val to_string : t -> string
