(** Durable run checkpoints: a command-specific progress payload paired
    with the run kind and the network fingerprint, inside the
    checksummed atomic artifact envelope. Load validates all three
    through typed errors, so a checkpoint never silently resumes the
    wrong run or the wrong network. *)

type kind = Verify | Svudc | Svbtv

(** [kind_name k] is the printable command name. *)
val kind_name : kind -> string

type resume_error =
  | Corrupt_checkpoint of string
      (** unreadable file, malformed JSON, checksum mismatch, or schema
          violation *)
  | Checkpoint_mismatch of string
      (** a valid checkpoint for a different command or network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
val resume_error_message : resume_error -> string

(** [save ~path ~kind ~fingerprint payload] writes a checkpoint
    atomically and durably. *)
val save :
  path:string -> kind:kind -> fingerprint:string -> Cv_util.Json.t -> unit

(** [load ~path ~kind ~fingerprint] reads a checkpoint back, validating
    checksum, run kind and network fingerprint; returns the progress
    payload. *)
val load :
  path:string ->
  kind:kind ->
  fingerprint:string ->
  (Cv_util.Json.t, resume_error) result
