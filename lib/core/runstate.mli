(** Durable run checkpoints: a command-specific progress payload paired
    with the run kind, the network fingerprint and a property scope,
    inside the checksummed atomic artifact envelope. Load validates all
    of them through typed errors, so a checkpoint never silently resumes
    the wrong run, the wrong network, or the wrong property. *)

type kind = Verify | Svudc | Svbtv | Serve

(** [kind_name k] is the printable command name. *)
val kind_name : kind -> string

type resume_error =
  | Corrupt_checkpoint of string
      (** unreadable file, malformed JSON, checksum mismatch, or schema
          violation *)
  | Checkpoint_mismatch of string
      (** a valid checkpoint for a different command or network *)

(** [resume_error_message e] renders a one-line diagnosis. *)
val resume_error_message : resume_error -> string

(** [property_scope ?old_fingerprint ~din ~dout ()] is an opaque digest
    of what is being verified — the input/output domains and, for
    differential (svbtv) runs, the reference network's fingerprint —
    for use as the [scope] of {!save}/{!load}. *)
val property_scope :
  ?old_fingerprint:string ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  unit ->
  string

(** [save ?scope ~path ~kind ~fingerprint payload] writes a checkpoint
    atomically and durably, recording the property scope when given. *)
val save :
  ?scope:string ->
  path:string -> kind:kind -> fingerprint:string -> Cv_util.Json.t -> unit

(** [load ~path ~kind ~fingerprint ~scope] reads a checkpoint back,
    validating checksum, run kind, network fingerprint and — when
    [~scope] is [Some _] — the property scope (refusing files recorded
    without one); returns the progress payload. *)
val load :
  path:string ->
  kind:kind ->
  fingerprint:string ->
  scope:string option ->
  (Cv_util.Json.t, resume_error) result
