(** Safety Verification under Specification Change (SVuSC) — the
    paper's concluding-remarks direction ("continuous evolution of the
    quantitative specification"), implemented as a third problem class
    alongside SVuDC and SVbTV: the network is unchanged, the safe output
    set evolves from [D_out] to [D_out'], optionally together with a
    domain enlargement. *)

type t = {
  net : Cv_nn.Network.t;
  artifact : Cv_artifacts.Artifacts.t;
  new_dout : Cv_interval.Box.t;
  new_din : Cv_interval.Box.t;  (** = old D_in when only the spec moved *)
}

(** [make ~net ~artifact ~new_dout ?new_din ()] validates and builds an
    SVuSC instance. *)
val make :
  net:Cv_nn.Network.t ->
  artifact:Cv_artifacts.Artifacts.t ->
  new_dout:Cv_interval.Box.t ->
  ?new_din:Cv_interval.Box.t ->
  unit ->
  t

(** [target_property p] is [φ(f, D_in ∪ Δ_in, D_out')]. *)
val target_property : t -> Cv_verify.Property.t

(** [trivial p] — a relaxed specification ([D_out ⊆ D_out']) with an
    unchanged domain inherits the proof. *)
val trivial : t -> Report.attempt

(** [chain ?norm p] — the stored [S_n], inflated by ℓκ when the domain
    also grew, fits the new specification. *)
val chain : ?norm:Cv_lipschitz.Lipschitz.norm -> t -> Report.attempt

(** [solve ?deadline ?config p] runs the SVuSC pipeline: trivial →
    chain → full re-verification of the new property. Budget expiry ends
    the run with an [Exhausted] verdict. *)
val solve : ?deadline:Cv_util.Deadline.t -> ?config:Strategy.config -> t -> Report.t
