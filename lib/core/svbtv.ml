(** Solving SVbTV — fine-tuned network, possibly enlarged domain
    (paper §IV-B).

    - {!prop4}: reuse every stored [S_i] — n independent single-layer
      subproblems over the {e new} parameters, checked in parallel; the
      reported parallel cost is the maximum subproblem time (Table I,
      footnote 3).
    - {!prop5}: reuse only the [S_⟨α⟩] at chosen anchor layers — fewer,
      multi-layer subproblems, still independent.
    - Prop. 6 (network-abstraction reuse) lives in {!Netabs_reuse}. *)

let abstraction_required = "artifact carries no state abstractions"

let get_abstractions (p : Problem.svbtv) =
  p.Problem.artifact.Cv_artifacts.Artifacts.state_abstractions

let dout (p : Problem.svbtv) =
  p.Problem.artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout

(* One subproblem: layers [from_, to_) of f' over [input_box] into
   [target]. *)
let subproblem ?deadline engine net ~from_ ~to_ ~input_box ~target =
  let slice = Cv_nn.Network.slice net ~from_ ~to_ in
  Cv_verify.Containment.check_timed ?deadline engine slice ~input_box ~target

type sub_result = {
  label : string;
  verdict : Cv_verify.Containment.verdict;
  seconds : float;
}

let run_subproblems ?deadline ?domains engine net specs =
  Cv_util.Parallel.map ?domains
    (fun (label, from_, to_, input_box, target) ->
      let verdict, seconds =
        subproblem ?deadline engine net ~from_ ~to_ ~input_box ~target
      in
      { label; verdict; seconds })
    specs

let summarize name engine results ~wall =
  let times = Array.map (fun r -> r.seconds) results in
  let parallel = Array.fold_left Float.max 0. times in
  let sequential = Array.fold_left ( +. ) 0. times in
  let failures =
    Array.to_list results
    |> List.filter (fun r -> not (Cv_verify.Containment.is_proved r.verdict))
  in
  let timed_out =
    List.exists
      (fun r ->
        match r.verdict with
        | Cv_verify.Containment.Unknown
            { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout; _ }
          ->
          true
        | _ -> false)
      failures
  in
  let outcome =
    if failures = [] then Report.Safe
    else
      let msg =
        Printf.sprintf "%d/%d subproblems failed (%s)" (List.length failures)
          (Array.length results)
          (String.concat ", " (List.map (fun r -> r.label) failures))
      in
      if timed_out then Report.Exhausted msg else Report.Inconclusive msg
  in
  { Report.name;
    outcome;
    timing =
      { Report.wall; parallel; sequential; subproblems = Array.length results };
    detail =
      Printf.sprintf "%d independent subproblems [%s]" (Array.length results)
        (Cv_verify.Containment.engine_name engine) }

(** [prop4 ?engine ?domains p] — single-layer reuse of every stored
    abstraction: [g'_1] over the enlarged domain into [S_1], each
    [g'_{i+1}] over [S_i] into [S_{i+1}], and [g'_n] over [S_{n-1}] into
    [D_out]. All subproblems are independent and run in parallel. *)
let prop4 ?deadline ?(engine = Cv_verify.Containment.Milp) ?domains
    (p : Problem.svbtv) =
  match get_abstractions p with
  | None ->
    { Report.name = "prop4";
      outcome = Report.Inconclusive abstraction_required;
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some s ->
    let net = p.Problem.new_net in
    let n = Cv_nn.Network.num_layers net in
    let specs =
      Array.init n (fun i ->
          let input_box = if i = 0 then p.Problem.new_din else s.(i - 1) in
          let target = if i = n - 1 then dout p else s.(i) in
          (Printf.sprintf "layer%d" (i + 1), i, i + 1, input_box, target))
    in
    let results, wall =
      Cv_util.Timer.time (fun () ->
          run_subproblems ?deadline ?domains engine net specs)
    in
    summarize "prop4" engine results ~wall

(** [prop5 ?engine ?domains ~anchors p] — multi-layer reuse at the
    anchor layers [⟨α_1⟩ < … < ⟨α_l⟩] (paper-style 1-based indices with
    [1 < α < n]): subproblems run f' from one anchor's abstraction to
    the next. Fewer but harder subproblems than {!prop4}. *)
let prop5 ?deadline ?(engine = Cv_verify.Containment.Milp) ?domains ~anchors
    (p : Problem.svbtv) =
  match get_abstractions p with
  | None ->
    { Report.name = "prop5";
      outcome = Report.Inconclusive abstraction_required;
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some s ->
    let net = p.Problem.new_net in
    let n = Cv_nn.Network.num_layers net in
    let anchors = List.sort_uniq compare anchors in
    if List.exists (fun a -> a <= 1 || a >= n) anchors || anchors = [] then
      { Report.name = "prop5";
        outcome =
          Report.Inconclusive "anchors must satisfy 1 < α < n and be non-empty";
        timing = Report.sequential_timing 0.;
        detail = "" }
    else begin
      let bounds = (0 :: anchors) @ [ n ] in
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      let specs =
        pairs bounds
        |> List.map (fun (from_, to_) ->
               let input_box =
                 if from_ = 0 then p.Problem.new_din else s.(from_ - 1)
               in
               let target = if to_ = n then dout p else s.(to_ - 1) in
               ( Printf.sprintf "layers%d-%d" (from_ + 1) to_,
                 from_, to_, input_box, target ))
        |> Array.of_list
      in
      let results, wall =
        Cv_util.Timer.time (fun () ->
            run_subproblems ?deadline ?domains engine net specs)
      in
      summarize "prop5" engine results ~wall
    end

(** [default_anchors n] picks anchors at roughly every other layer —
    the paper's example pattern ([α = 2, 4] for [n = 6]). *)
let default_anchors n =
  let rec go a = if a >= n then [] else a :: go (a + 2) in
  go 2

(** [leaf_reuse ?domains p] — revalidate a stored bisection certificate
    (the ReluVal-style split-tree artifact) against the fine-tuned
    network: one-shot symbolic intervals per leaf, no new splitting,
    embarrassingly parallel. Each leaf was chosen to make the
    abstraction tight there, so small parameter drift usually passes.
    Covers the certificate's domain; any genuine enlargement beyond it
    is checked with the splitting engine on the new network. *)
let leaf_reuse ?deadline ?domains (p : Problem.svbtv) =
  match p.Problem.artifact.Cv_artifacts.Artifacts.split_cert with
  | None ->
    { Report.name = "leaf-reuse";
      outcome = Report.Inconclusive "artifact carries no split certificate";
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some cert ->
    let dout_box = dout p in
    let run () =
      if
        not
          (Cv_interval.Box.subset_tol cert.Cv_verify.Split_cert.target dout_box)
      then
        ( Report.Inconclusive
            "certificate target does not imply the property",
          "" )
      else if
        not
          (Cv_util.Parallel.for_all ?domains
             (fun leaf ->
               Cv_interval.Box.subset_tol
                 (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint
                    p.Problem.new_net leaf)
                 cert.Cv_verify.Split_cert.target)
             cert.Cv_verify.Split_cert.leaves)
      then (Report.Inconclusive "some leaf fails for the new network", "")
      else begin
        (* Leaves cover the certified domain; handle any enlargement
           beyond it with the splitting engine on the new network. *)
        let cert_box = cert.Cv_verify.Split_cert.input_box in
        if Cv_interval.Box.subset_tol p.Problem.new_din cert_box then
          ( Report.Safe,
            Printf.sprintf "%d leaves revalidated"
              (Cv_verify.Split_cert.num_leaves cert) )
        else begin
          (* Only the enlargement slabs need fresh proving. *)
          let slabs =
            Svudc.enlargement_slabs ~old_box:cert_box
              ~new_box:p.Problem.new_din
          in
          let all_ok =
            Array.for_all
              (fun (_, slab) ->
                Cv_verify.Split_cert.prove ?deadline ~budget:512
                  p.Problem.new_net ~input_box:slab ~target:dout_box
                <> None)
              slabs
          in
          if all_ok then
            ( Report.Safe,
              Printf.sprintf "%d leaves + %d enlargement slabs"
                (Cv_verify.Split_cert.num_leaves cert)
                (Array.length slabs) )
          else
            ( Report.Inconclusive "an enlargement slab was not proved",
              "" )
        end
      end
    in
    let (outcome, detail), wall = Cv_util.Timer.time run in
    { Report.name = "leaf-reuse";
      outcome;
      timing =
        { Report.wall;
          parallel = wall;
          sequential = wall;
          subproblems = Cv_verify.Split_cert.num_leaves cert };
      detail }
