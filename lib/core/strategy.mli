(** Orchestration: solve the original problem (producing artifacts),
    then settle SVuDC / SVbTV instances by trying the cheap reuse routes
    before falling back to full re-verification.

    Attempt order, cheapest first:
    - SVuDC: trivial inclusion → Prop 3 (Lipschitz, O(1)) → Prop 1
      (two-layer exact) → Prop 2 (rebuild + handoffs) → Δ-cover →
      full re-verification;
    - SVbTV: Prop 6 (when an abstraction pair or interval slack is
      configured) → Prop 4 with §IV-C fixing → differential route →
      Prop 5 → full re-verification. *)

type config = {
  engine : Cv_verify.Containment.engine;  (** exact engine for subproblems *)
  domain : Cv_domains.Analyzer.domain_kind;  (** abstract domain for rebuilds *)
  lipschitz_norm : Cv_lipschitz.Lipschitz.norm;
  anchors : int list option;  (** Prop 5 anchors; [None] = every 2 layers *)
  interval_slack : float option;  (** weight-interval Prop 6 budget *)
  domains : int option;  (** worker domains for parallel subproblems *)
}

(** A sensible default configuration (MILP subproblems, symbolic-interval
    abstractions, ∞-norm Lipschitz). *)
val default_config : config

(** Result of solving the original verification problem from scratch. *)
type original = {
  artifact : Cv_artifacts.Artifacts.t;
  report : Cv_verify.Verifier.report;
  proved : bool;
}

(** [solve_original ?deadline ?config net prop] verifies
    [φ(f, D_in, D_out)] from scratch — abstract analysis first, exact
    fallback — and packages the proof artifacts (state abstractions when
    the abstract proof succeeded, Lipschitz constants always). Deadline
    expiry degrades the verdict to [Unknown {reason = Timeout; _}]. *)
val solve_original :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  original

(** [solve_original_exact ?deadline ?config ?widen net prop] — the
    Table I "original problem": a sound-and-complete full-network run
    (exact MILP output range, no cutoffs) {e plus} artifact recording:
    the widened inductive abstraction chain (default slack 0.02) and
    Lipschitz constants. Raises on non-piecewise-linear networks;
    deadline expiry degrades the verdict to
    [Unknown {reason = Timeout; _}] (no partial artifacts). *)
val solve_original_exact :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  ?widen:float ->
  ?with_split_cert:bool ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  original

(** [full_verify ?deadline ?config net prop] — complete re-verification
    of the target property, as a strategy attempt. With a deadline, runs
    the {!Cv_verify.Verifier.verify_graceful} escalation chain and
    degrades to [Exhausted] on budget expiry. *)
val full_verify :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  Report.attempt

(** [solve_svudc ?deadline ?config p] — the full SVuDC pipeline. On
    budget expiry the run ends with a structured [Exhausted] verdict
    instead of raising. *)
val solve_svudc :
  ?deadline:Cv_util.Deadline.t -> ?config:config -> Problem.svudc -> Report.t

(** [solve_svbtv ?deadline ?config ?netabs p] — the full SVbTV pipeline.
    The optional [netabs] is a stored Prop. 6 abstraction pair built for
    the old network. On budget expiry the run ends with a structured
    [Exhausted] verdict instead of raising. *)
val solve_svbtv :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  ?netabs:Netabs_reuse.t ->
  Problem.svbtv ->
  Report.t

(** [ratio ~incremental ~original] is the Table I quantity: incremental
    time as a fraction of the original solve time ([nan] when the
    original time is not positive). *)
val ratio : incremental:float -> original:float -> float
