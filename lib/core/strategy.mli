(** Orchestration: solve the original problem (producing artifacts),
    then settle SVuDC / SVbTV instances by trying the cheap reuse routes
    before falling back to full re-verification.

    Attempt order, cheapest first:
    - SVuDC: trivial inclusion → Prop 3 (Lipschitz, O(1)) → Prop 1
      (two-layer exact) → Prop 2 (rebuild + handoffs) → Δ-cover →
      full re-verification;
    - SVbTV: Prop 6 (when an abstraction pair or interval slack is
      configured) → Prop 4 with §IV-C fixing → differential route →
      Prop 5 → full re-verification. *)

type config = {
  engine : Cv_verify.Containment.engine;  (** exact engine for subproblems *)
  domain : Cv_domains.Analyzer.domain_kind;  (** abstract domain for rebuilds *)
  lipschitz_norm : Cv_lipschitz.Lipschitz.norm;
  anchors : int list option;  (** Prop 5 anchors; [None] = every 2 layers *)
  interval_slack : float option;  (** weight-interval Prop 6 budget *)
  domains : int option;  (** worker domains for parallel subproblems *)
}

(** A sensible default configuration (MILP subproblems, symbolic-interval
    abstractions, ∞-norm Lipschitz). *)
val default_config : config

(** Result of solving the original verification problem from scratch. *)
type original = {
  artifact : Cv_artifacts.Artifacts.t;
  report : Cv_verify.Verifier.report;
  proved : bool;
}

(** [solve_original ?deadline ?config net prop] verifies
    [φ(f, D_in, D_out)] from scratch — abstract analysis first, exact
    fallback — and packages the proof artifacts (state abstractions when
    the abstract proof succeeded, Lipschitz constants always). Deadline
    expiry degrades the verdict to [Unknown {reason = Timeout; _}]. *)
val solve_original :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  original

(** [solve_original_exact ?deadline ?config ?widen net prop] — the
    Table I "original problem": a sound-and-complete full-network run
    (exact MILP output range, no cutoffs) {e plus} artifact recording:
    the widened inductive abstraction chain (default slack 0.02) and
    Lipschitz constants. Raises on non-piecewise-linear networks;
    deadline expiry degrades the verdict to
    [Unknown {reason = Timeout; _}] (no partial artifacts), a
    persistent crash (beyond supervised retries) to
    [Unknown {reason = Crash; _}]. [checkpoint]/[resume] persist and
    restore the range computation's progress (completed query optima
    plus the in-flight branch-and-bound snapshot — see
    {!Cv_verify.Range.exact_range}), so a killed run resumes with the
    identical verdict. *)
val solve_original_exact :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  ?widen:float ->
  ?with_split_cert:bool ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  original

(** [full_verify ?deadline ?config net prop] — complete re-verification
    of the target property, as a strategy attempt. With a deadline, runs
    the {!Cv_verify.Verifier.verify_graceful} escalation chain and
    degrades to [Exhausted] on budget expiry. *)
val full_verify :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  Report.attempt

(** [run_until_decisive ?deadline ?checkpoint ?resume attempts] runs
    attempt thunks lazily in order, stopping at the first decisive one.
    Attempts run supervised (a crash beyond retries becomes
    [Inconclusive] and the chain continues); checkpointing is
    attempt-granular, and [resume] replays the recorded non-decisive
    attempts, skipping that many thunks. *)
val run_until_decisive :
  ?deadline:Cv_util.Deadline.t ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  (unit -> Report.attempt) list ->
  Report.t

(** [solve_svudc ?deadline ?config p] — the full SVuDC pipeline. On
    budget expiry the run ends with a structured [Exhausted] verdict
    instead of raising. [checkpoint]/[resume] persist and restore
    attempt-level progress (see {!run_until_decisive}). *)
val solve_svudc :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  Problem.svudc ->
  Report.t

(** [solve_svbtv ?deadline ?config ?netabs p] — the full SVbTV pipeline.
    The optional [netabs] is a stored Prop. 6 abstraction pair built for
    the old network. On budget expiry the run ends with a structured
    [Exhausted] verdict instead of raising. [checkpoint]/[resume]
    persist and restore attempt-level progress (see
    {!run_until_decisive}). *)
val solve_svbtv :
  ?deadline:Cv_util.Deadline.t ->
  ?config:config ->
  ?netabs:Netabs_reuse.t ->
  ?checkpoint:Cv_util.Checkpoint.t ->
  ?resume:Cv_util.Json.t ->
  Problem.svbtv ->
  Report.t

(** [ratio ~incremental ~original] is the Table I quantity: incremental
    time as a fraction of the original solve time ([nan] when the
    original time is not positive). *)
val ratio : incremental:float -> original:float -> float
