(** Incremental abstraction fixing (paper §IV-C).

    When Proposition 4 fails at exactly one layer, the failing
    abstraction is rebuilt and propagated forward until it is recaptured
    by the stored chain (or reaches — and is checked against —
    [D_out]); only when that also fails is the instance left to a full
    re-verification. *)

type diagnosis = {
  failing : int list;  (** 1-based layer indices whose handoff failed *)
  sub_times : float array;  (** per-layer diagnostic times *)
}

(** [diagnose ?engine ?domains p] runs the n independent Prop.-4
    subproblems and reports which layers fail; [None] when the artifact
    carries no state abstractions. *)
val diagnose :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domains:int ->
  Problem.svbtv ->
  diagnosis option

(** [fix ?engine ?domain p ~failing_layer] attempts the repair for a
    single failing (1-based) layer: rebuild [S'], propagate forward
    (free box inclusion first, exact handoff second), succeed on
    recapture or on a final [D_out] check. *)
val fix :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domain:Cv_domains.Analyzer.domain_kind ->
  Problem.svbtv ->
  failing_layer:int ->
  Report.attempt

(** [repair ?engine ?domain ?domains p] — diagnose, then fix when the
    failure is localised to a single layer (the case §IV-C treats);
    a clean diagnosis is Proposition 4 itself, and multi-layer failures
    are reported inconclusive for the strategy to fall back on. *)
val repair :
  ?deadline:Cv_util.Deadline.t ->
  ?engine:Cv_verify.Containment.engine ->
  ?domain:Cv_domains.Analyzer.domain_kind ->
  ?domains:int ->
  Problem.svbtv ->
  Report.attempt
