(** Incremental abstraction fixing (paper §IV-C).

    When Proposition 4 fails at exactly one layer — [∃x ∈ S_i,
    g'_{i+1}(x) ∉ S_{i+1}] while every other layer's handoff holds — we
    do not re-verify from scratch. Instead:
    + replace [S_{i+1}] by a new [S'_{i+1}] covering the enlarged image
      (abstract transformer of g'_{i+1} over the box [S_i]);
    + propagate forward: [S'_k → S'_{k+1}] with the abstract
      transformer of g'; at each step first try the free inclusion
      [S'_k ⊆ S_k] and then the exact handoff into [S_{k+1}];
    + if containment is re-established before the output layer, the old
      proof covers the rest; otherwise check [S'_{n-1} → D_out]
      directly; only if that also fails is the instance left to a full
      re-verification. *)

type diagnosis = {
  failing : int list;  (** 1-based layer indices whose handoff failed *)
  sub_times : float array;  (** per-layer diagnostic times *)
}

(** [diagnose ?deadline ?engine ?domains p] runs the n independent
    Prop.-4 subproblems and reports which layers fail. *)
let diagnose ?deadline ?(engine = Cv_verify.Containment.Milp) ?domains
    (p : Problem.svbtv) =
  match Svbtv.get_abstractions p with
  | None -> None
  | Some s ->
    let net = p.Problem.new_net in
    let n = Cv_nn.Network.num_layers net in
    let specs =
      Array.init n (fun i ->
          let input_box = if i = 0 then p.Problem.new_din else s.(i - 1) in
          let target = if i = n - 1 then Svbtv.dout p else s.(i) in
          (i, input_box, target))
    in
    let results =
      Cv_util.Parallel.map ?domains
        (fun (i, input_box, target) ->
          let slice = Cv_nn.Network.slice net ~from_:i ~to_:(i + 1) in
          Cv_verify.Containment.check_timed ?deadline engine slice ~input_box
            ~target)
        specs
    in
    let failing = ref [] in
    Array.iteri
      (fun i (v, _) ->
        if not (Cv_verify.Containment.is_proved v) then failing := (i + 1) :: !failing)
      results;
    Some { failing = List.rev !failing; sub_times = Array.map snd results }

(** [fix ?engine ?domain p ~failing_layer] attempts the repair for a
    single failing (1-based) layer. Returns a {!Report.attempt}; [Safe]
    when containment is re-established (possibly only at the output
    check), [Inconclusive] when the propagation reaches the output
    without ever being recaptured. *)
let fix ?deadline ?(engine = Cv_verify.Containment.Milp)
    ?(domain = Cv_domains.Analyzer.Symint) (p : Problem.svbtv) ~failing_layer =
  match Svbtv.get_abstractions p with
  | None ->
    { Report.name = "fixer";
      outcome = Report.Inconclusive "artifact carries no state abstractions";
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some s ->
    let net = p.Problem.new_net in
    let n = Cv_nn.Network.num_layers net in
    if failing_layer < 1 || failing_layer > n then
      invalid_arg "Fixer.fix: failing_layer out of range";
    let run () =
      let i = failing_layer in
      (* Rebuild S'_i: the abstract image of the previous (trusted)
         abstraction under the new layer. *)
      let input_box = if i = 1 then p.Problem.new_din else s.(i - 2) in
      let image from_box layer_idx =
        let slice = Cv_nn.Network.slice net ~from_:layer_idx ~to_:(layer_idx + 1) in
        Cv_domains.Analyzer.output_box domain slice from_box
      in
      let rec propagate s'_k k steps =
        (* s'_k is the replacement abstraction after layer k (1-based). *)
        if k = n then begin
          (* Reached the output: direct check against D_out. *)
          if Cv_interval.Box.subset_tol s'_k (Svbtv.dout p) then
            (Report.Safe, Printf.sprintf "recaptured at output after %d steps" steps)
          else
            ( Report.Inconclusive
                "propagation reached the output without recapture",
              "" )
        end
        else if Cv_interval.Box.subset_tol s'_k s.(k - 1) then
          ( Report.Safe,
            Printf.sprintf "S'_%d ⊆ S_%d after %d forward steps" k k steps )
        else begin
          (* Exact handoff attempt into the stored S_{k+1}. *)
          let slice = Cv_nn.Network.slice net ~from_:k ~to_:(k + 1) in
          let target = if k + 1 = n then Svbtv.dout p else s.(k) in
          match
            Cv_verify.Containment.check ?deadline engine slice ~input_box:s'_k
              ~target
          with
          | Cv_verify.Containment.Proved ->
            if k + 1 = n then
              (Report.Safe, Printf.sprintf "handoff S'_%d → D_out" k)
            else
              ( Report.Safe,
                Printf.sprintf "handoff S'_%d → S_%d re-established" k (k + 1) )
          | Cv_verify.Containment.Violated _ | Cv_verify.Containment.Unknown _ ->
            propagate (image s'_k k) (k + 1) (steps + 1)
        end
      in
      let s'_i = image input_box (i - 1) in
      propagate s'_i i 0
    in
    let (outcome, detail), wall = Cv_util.Timer.time run in
    { Report.name = "fixer";
      outcome;
      timing = Report.sequential_timing wall;
      detail =
        (if detail = "" then Printf.sprintf "failing layer %d" failing_layer
         else Printf.sprintf "failing layer %d: %s" failing_layer detail) }

(** [repair ?deadline ?engine ?domain ?domains p] — diagnose, then fix
    when the failure is localised to a single layer (the case §IV-C
    treats); multi-layer failures are reported inconclusive for the
    strategy to fall back on. *)
let repair ?deadline ?engine ?domain ?domains (p : Problem.svbtv) =
  match diagnose ?deadline ?engine ?domains p with
  | None ->
    { Report.name = "fixer";
      outcome = Report.Inconclusive "artifact carries no state abstractions";
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some { failing = []; sub_times } ->
    (* Nothing to fix: Prop 4 itself holds. *)
    let wall = Array.fold_left ( +. ) 0. sub_times in
    { Report.name = "fixer";
      outcome = Report.Safe;
      timing =
        { Report.wall;
          parallel = Array.fold_left Float.max 0. sub_times;
          sequential = wall;
          subproblems = Array.length sub_times };
      detail = "no failing layer (Prop 4 holds)" }
  | Some { failing = [ layer ]; sub_times } ->
    let diag_wall = Array.fold_left ( +. ) 0. sub_times in
    let attempt = fix ?deadline ?engine ?domain p ~failing_layer:layer in
    { attempt with
      Report.timing =
        { attempt.Report.timing with
          Report.wall = attempt.Report.timing.Report.wall +. diag_wall;
          sequential = attempt.Report.timing.Report.sequential +. diag_wall } }
  | Some { failing; _ } ->
    { Report.name = "fixer";
      outcome =
        Report.Inconclusive
          (Printf.sprintf "%d layers failed (%s): full re-verification needed"
             (List.length failing)
             (String.concat "," (List.map string_of_int failing)));
      timing = Report.sequential_timing 0.;
      detail = "" }
