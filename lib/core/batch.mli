(** Multi-query verification scheduler: run a manifest of (network,
    property, mode) jobs concurrently on a bounded domain pool, backed
    by the content-addressed proof-artifact cache.

    Scheduling is fair FIFO: workers claim jobs in manifest order as
    slots free up, and each job's optional deadline starts when the job
    is admitted. Jobs are isolated — a crashed job (beyond supervised
    retries) degrades to a [Crashed] verdict without poisoning its
    siblings — and route through the existing machinery:
    {!Strategy.run_until_decisive} for plain verify jobs,
    {!Strategy.solve_original_exact} for exact ones,
    {!Strategy.solve_svudc} / {!Strategy.solve_svbtv} for the
    incremental modes, inheriting attempt-granular (or search-granular)
    checkpoint/resume per job.

    Artifact reuse: state-abstraction chains and Lipschitz constants go
    through {!Cv_artifacts.Cache} (content-addressed, single-flight), so
    N queries against one network pay for one build; SVbTV network
    abstractions (not JSON-serialisable) are interned in an in-process
    single-flight memo under the same keying discipline and counted in
    the same cache statistics. Cache hits skip the rebuild entirely.

    Verdicts are a deterministic function of the manifest alone: they do
    not depend on the concurrency level, the job order, or cache
    hits/misses (cached artifacts round-trip exactly). *)

(** What one job verifies. Problem validation (artifact/network
    fingerprint, domain containment) happens when the job {e runs}, so a
    malformed job crashes alone instead of taking the batch down. *)
type spec =
  | Verify of {
      net : Cv_nn.Network.t;
      prop : Cv_verify.Property.t;
      exact : bool;  (** sound-and-complete exact solve instead of
                         abstract-with-fallback *)
      artifact_out : string option;
          (** where to write proof artifacts when the property is
              proved *)
    }
  | Svudc of {
      net : Cv_nn.Network.t;
      artifact : Cv_artifacts.Artifacts.t;
      new_din : Cv_interval.Box.t;
    }
  | Svbtv of {
      old_net : Cv_nn.Network.t;
      new_net : Cv_nn.Network.t;
      artifact : Cv_artifacts.Artifacts.t;
      new_din : Cv_interval.Box.t;
    }

type job = {
  id : string;  (** unique, non-empty; names checkpoint files *)
  spec : spec;
  timeout : float option;  (** per-job deadline override, seconds *)
}

type config = {
  jobs : int;  (** worker domains; 1 = sequential *)
  job_timeout : float option;  (** default per-job deadline, seconds *)
  strategy : Strategy.config;
  cache : Cv_artifacts.Cache.t option;  (** [None] disables reuse *)
  checkpoint_dir : string option;
      (** per-job search checkpoints ([<id>.ck.json]) and completed-job
          results ([<id>.done.json]); an existing valid done-file lets a
          re-run skip the job, an existing checkpoint resumes it. Both
          are bound to the job's network fingerprint, mode and property
          — a file recorded for a different verification question
          (e.g. a retrained network under a reused directory) is
          ignored and the job runs fresh *)
  checkpoint_every : float;  (** checkpoint cadence, seconds *)
}

(** Sequential, no deadline, no cache, no checkpointing, default
    strategy. *)
val default_config : config

type verdict = Safe | Unsafe | Inconclusive | Exhausted | Crashed

val verdict_name : verdict -> string

type job_result = {
  job_id : string;
  mode : string;  (** "verify" | "verify-exact" | "svudc" | "svbtv" *)
  verdict : verdict;
  decisive : string option;  (** attempt that settled it *)
  attempts : int;
  seconds : float;
  resumed : bool;  (** replayed from a done-file or checkpoint *)
  detail : string;
}

type t = {
  results : job_result list;  (** manifest order *)
  wall_seconds : float;
  cache_stats : Cv_artifacts.Cache.stats option;
      (** JSON-cache plus netabs-memo accounting; [None] when the cache
          is disabled *)
}

(** [run ?config jobs] schedules and runs the whole manifest. Raises
    [Invalid_argument] on duplicate or empty job ids, or on distinct
    ids that collide after filename sanitisation (a manifest authoring
    error, not a job failure). *)
val run : ?config:config -> job list -> t

(** [report_to_json t] is the consolidated batch report
    ([contiver-batch-report-v1]) with a stable field order: schema,
    jobs, summary, cache, wall_seconds. *)
val report_to_json : t -> Cv_util.Json.t

(** [job_result_to_json r] / [job_result_of_json j] encode one job's
    result row (stable field order: id, mode, verdict, decisive,
    attempts, seconds, resumed, detail) — also the [result] member of
    the done-file payload (alongside the job's fingerprint and
    property scope).
    [job_result_of_json] raises {!Cv_util.Json.Error} on malformed
    input. *)
val job_result_to_json : job_result -> Cv_util.Json.t

val job_result_of_json : Cv_util.Json.t -> job_result
