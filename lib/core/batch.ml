(** Multi-query verification scheduler (see the interface for the
    scheduling, isolation, reuse and checkpointing contract). *)

module Json = Cv_util.Json
module Deadline = Cv_util.Deadline
module Timer = Cv_util.Timer
module Metrics = Cv_util.Metrics
module Checkpoint = Cv_util.Checkpoint
module Supervisor = Cv_util.Supervisor
module Parallel = Cv_util.Parallel
module Box = Cv_interval.Box
module Property = Cv_verify.Property
module Artifacts = Cv_artifacts.Artifacts
module Cache = Cv_artifacts.Cache
module Analyzer = Cv_domains.Analyzer
module Lipschitz = Cv_lipschitz.Lipschitz

let src = Logs.Src.create "cv.batch" ~doc:"Batch verification scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

let m_jobs = Metrics.counter "batch.jobs"
let m_crashed = Metrics.counter "batch.crashed"
let m_resumed = Metrics.counter "batch.resumed"

(* The netabs memo below feeds the same effort accounting as the JSON
   cache (counters are interned by name, so these are the cache's own). *)
let m_cache_hits = Metrics.counter "cache.hits"
let m_cache_misses = Metrics.counter "cache.misses"

type spec =
  | Verify of {
      net : Cv_nn.Network.t;
      prop : Cv_verify.Property.t;
      exact : bool;
      artifact_out : string option;
    }
  | Svudc of {
      net : Cv_nn.Network.t;
      artifact : Cv_artifacts.Artifacts.t;
      new_din : Cv_interval.Box.t;
    }
  | Svbtv of {
      old_net : Cv_nn.Network.t;
      new_net : Cv_nn.Network.t;
      artifact : Cv_artifacts.Artifacts.t;
      new_din : Cv_interval.Box.t;
    }

type job = { id : string; spec : spec; timeout : float option }

type config = {
  jobs : int;
  job_timeout : float option;
  strategy : Strategy.config;
  cache : Cv_artifacts.Cache.t option;
  checkpoint_dir : string option;
  checkpoint_every : float;
}

let default_config =
  { jobs = 1;
    job_timeout = None;
    strategy = Strategy.default_config;
    cache = None;
    checkpoint_dir = None;
    checkpoint_every = 5.0 }

type verdict = Safe | Unsafe | Inconclusive | Exhausted | Crashed

let verdict_name = function
  | Safe -> "safe"
  | Unsafe -> "unsafe"
  | Inconclusive -> "inconclusive"
  | Exhausted -> "exhausted"
  | Crashed -> "crashed"

let verdict_of_name = function
  | "safe" -> Safe
  | "unsafe" -> Unsafe
  | "inconclusive" -> Inconclusive
  | "exhausted" -> Exhausted
  | "crashed" -> Crashed
  | s -> raise (Json.Error ("Batch: unknown verdict " ^ s))

type job_result = {
  job_id : string;
  mode : string;
  verdict : verdict;
  decisive : string option;
  attempts : int;
  seconds : float;
  resumed : bool;
  detail : string;
}

type t = {
  results : job_result list;
  wall_seconds : float;
  cache_stats : Cv_artifacts.Cache.stats option;
}

let mode_name = function
  | Verify { exact = false; _ } -> "verify"
  | Verify { exact = true; _ } -> "verify-exact"
  | Svudc _ -> "svudc"
  | Svbtv _ -> "svbtv"

(* ------------------------------------------------------------------ *)
(* Result rows (also the done-file payload)                            *)
(* ------------------------------------------------------------------ *)

let job_result_to_json r =
  Json.Obj
    [ ("id", Json.Str r.job_id);
      ("mode", Json.Str r.mode);
      ("verdict", Json.Str (verdict_name r.verdict));
      ( "decisive",
        match r.decisive with None -> Json.Null | Some s -> Json.Str s );
      ("attempts", Json.of_int r.attempts);
      ("seconds", Json.Num r.seconds);
      ("resumed", Json.Bool r.resumed);
      ("detail", Json.Str r.detail) ]

let job_result_of_json j =
  { job_id = Json.to_str (Json.member "id" j);
    mode = Json.to_str (Json.member "mode" j);
    verdict = verdict_of_name (Json.to_str (Json.member "verdict" j));
    decisive =
      (match Json.member "decisive" j with
      | Json.Null -> None
      | d -> Some (Json.to_str d));
    attempts = Json.to_int (Json.member "attempts" j);
    seconds = Json.to_float (Json.member "seconds" j);
    resumed = Json.to_bool (Json.member "resumed" j);
    detail = Json.to_str (Json.member "detail" j) }

(* ------------------------------------------------------------------ *)
(* Netabs memo                                                         *)
(* ------------------------------------------------------------------ *)

(* Network abstractions carry no JSON codec, so they cannot live in the
   durable cache; instead they are interned in-process under the same
   content-addressed keying and single-flight discipline, feeding the
   same hit/miss accounting. The memoised value is the build {e result}
   — [None] (build budget exhausted or unsupported network) is cached
   too, so a hopeless build is paid for once per batch, not once per
   job. *)
module Memo = struct
  type nonrec t = {
    lock : Mutex.t;
    settled : Condition.t;
    table : (string, Netabs_reuse.t option) Hashtbl.t;
    building : (string, unit) Hashtbl.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    { lock = Mutex.create ();
      settled = Condition.create ();
      table = Hashtbl.create 8;
      building = Hashtbl.create 4;
      hits = Atomic.make 0;
      misses = Atomic.make 0 }

  let count_hit m =
    Atomic.incr m.hits;
    Metrics.incr m_cache_hits

  let count_miss m =
    Atomic.incr m.misses;
    Metrics.incr m_cache_misses

  let with_lock m f =
    Mutex.lock m.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

  let find_or_build m key build =
    let rec claim () =
      match Hashtbl.find_opt m.table key with
      | Some v -> Ok v
      | None ->
        if Hashtbl.mem m.building key then begin
          Condition.wait m.settled m.lock;
          claim ()
        end
        else begin
          Hashtbl.add m.building key ();
          Error ()
        end
    in
    match with_lock m claim with
    | Ok v ->
      count_hit m;
      v
    | Error () -> (
      let release () =
        with_lock m (fun () ->
            Hashtbl.remove m.building key;
            Condition.broadcast m.settled)
      in
      count_miss m;
      match build () with
      | v ->
        with_lock m (fun () -> Hashtbl.replace m.table key v);
        release ();
        v
      | exception e ->
        release ();
        raise e)
end

(* ------------------------------------------------------------------ *)
(* Per-job checkpointing                                               *)
(* ------------------------------------------------------------------ *)

let ensure_dir d =
  try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Job ids name checkpoint files; anything shell-hostile flattens to
   '_'. [validate_ids] rejects manifests in which two distinct ids
   sanitise to the same filename, so distinct jobs never share
   checkpoint or done-file paths. *)
let sanitize id =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '_')
    id

let done_format = "contiver-batch-result"

let done_path dir job = Filename.concat dir (sanitize job.id ^ ".done.json")

let ck_path dir job = Filename.concat dir (sanitize job.id ^ ".ck.json")

let spec_kind_fingerprint = function
  | Verify { net; _ } -> (Runstate.Verify, Artifacts.fingerprint net)
  | Svudc { net; _ } -> (Runstate.Svudc, Artifacts.fingerprint net)
  | Svbtv { new_net; _ } -> (Runstate.Svbtv, Artifacts.fingerprint new_net)

(* Digest of what the job verifies: the property's domains, plus (for
   svbtv) the reference network the artifact speaks about. Together
   with the network fingerprint and the mode this pins a done-file or
   checkpoint to one exact verification question — a retrained network
   or an edited property under a reused --checkpoint-dir must re-run,
   never replay the stale verdict. *)
let spec_scope = function
  | Verify { prop; _ } ->
    Runstate.property_scope ~din:prop.Property.din ~dout:prop.Property.dout ()
  | Svudc { artifact; new_din; _ } ->
    Runstate.property_scope ~din:new_din
      ~dout:artifact.Artifacts.property.Property.dout ()
  | Svbtv { old_net; artifact; new_din; _ } ->
    Runstate.property_scope
      ~old_fingerprint:(Artifacts.fingerprint old_net)
      ~din:new_din ~dout:artifact.Artifacts.property.Property.dout ()

(* The done-file wraps the result row with the job's identity
   (fingerprint + property scope); replay validates id, mode,
   fingerprint and scope before trusting the recorded verdict. *)
let done_doc job result =
  let _, fingerprint = spec_kind_fingerprint job.spec in
  Json.Obj
    [ ("fingerprint", Json.Str fingerprint);
      ("scope", Json.Str (spec_scope job.spec));
      ("result", job_result_to_json result) ]

(* A valid done-file short-circuits the whole job: the batch was killed
   after this job completed, so its recorded result is replayed
   (verbatim, seconds included) instead of re-verifying — but only when
   it records the {e same} verification question. A stale file (same id,
   different network/property/mode — e.g. a retrained network under a
   reused --checkpoint-dir) is ignored and the job runs fresh. *)
let replay_done config job =
  match config.checkpoint_dir with
  | None -> None
  | Some dir -> (
    let path = done_path dir job in
    if not (Sys.file_exists path) then None
    else
      match Artifacts.load_doc_result ~format:done_format path with
      | Error e ->
        Log.warn (fun m ->
            m "job %s: ignoring unreadable done-file (%s)" job.id
              (Artifacts.load_error_message e));
        None
      | Ok payload -> (
        let _, fingerprint = spec_kind_fingerprint job.spec in
        match
          ( Json.to_str (Json.member "fingerprint" payload),
            Json.to_str (Json.member "scope" payload),
            job_result_of_json (Json.member "result" payload) )
        with
        | fp, scope, r
          when String.equal r.job_id job.id
               && String.equal r.mode (mode_name job.spec)
               && String.equal fp fingerprint
               && String.equal scope (spec_scope job.spec) ->
          Some { r with resumed = true }
        | _ | (exception Json.Error _) ->
          Log.warn (fun m ->
              m "job %s: ignoring done-file for a different \
                 network/property — re-verifying" job.id);
          None))

(* (checkpoint sink, resume payload, was a checkpoint found). *)
let job_checkpointing config job =
  match config.checkpoint_dir with
  | None -> (None, None, false)
  | Some dir ->
    let kind, fingerprint = spec_kind_fingerprint job.spec in
    let scope = spec_scope job.spec in
    let path = ck_path dir job in
    let resume =
      if not (Sys.file_exists path) then None
      else
        match Runstate.load ~path ~kind ~fingerprint ~scope:(Some scope) with
        | Ok payload ->
          Log.info (fun m -> m "job %s: resuming from %s" job.id path);
          Some payload
        | Error e ->
          Log.warn (fun m ->
              m "job %s: ignoring checkpoint (%s)" job.id
                (Runstate.resume_error_message e));
          None
    in
    let sink =
      Checkpoint.create ~every:config.checkpoint_every (fun payload ->
          Runstate.save ~scope ~path ~kind ~fingerprint payload)
    in
    (Some sink, resume, Option.is_some resume)

let record_done config job result =
  match config.checkpoint_dir with
  | None -> ()
  | Some dir ->
    (try
       Artifacts.save_doc ~format:done_format (done_path dir job)
         (done_doc job result)
     with e ->
       Log.warn (fun m ->
           m "job %s: could not record done-file (%s)" job.id
             (Printexc.to_string e)));
    (try Sys.remove (ck_path dir job) with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type settled = {
  s_verdict : verdict;
  s_decisive : string option;
  s_attempts : int;
  s_detail : string;
}

let settled_of_report (r : Report.t) =
  let verdict, detail =
    match r.verdict with
    | Report.Safe -> (Safe, "proved")
    | Report.Unsafe _ -> (Unsafe, "counterexample found")
    | Report.Inconclusive msg -> (Inconclusive, msg)
    | Report.Exhausted msg -> (Exhausted, msg)
  in
  { s_verdict = verdict;
    s_decisive = r.decisive;
    s_attempts = List.length r.attempts;
    s_detail = detail }

let verdict_of_containment = function
  | Cv_verify.Containment.Proved -> (Safe, "proved")
  | Cv_verify.Containment.Violated _ -> (Unsafe, "counterexample found")
  | Cv_verify.Containment.Unknown u -> (
    match u.Cv_verify.Containment.reason with
    | Cv_verify.Containment.Timeout -> (Exhausted, u.Cv_verify.Containment.message)
    | Cv_verify.Containment.Crash -> (Crashed, u.Cv_verify.Containment.message)
    | _ -> (Inconclusive, u.Cv_verify.Containment.message))

(* The cached abstract route of a plain verify job: the chain is the
   content-addressed artifact, so the second job on the same
   (net, D_in, domain) skips the analysis entirely. *)
let abstract_attempt ~config ?deadline ~fingerprint ~chain net (prop : Property.t)
    () =
  let domain = config.strategy.Strategy.domain in
  let name = "abstract-" ^ Analyzer.domain_name domain in
  let build () = Analyzer.abstractions ?deadline domain net prop.Property.din in
  let boxes, wall =
    Timer.time (fun () ->
        match config.cache with
        | None -> build ()
        | Some c ->
          Cache.boxes_or_build c ~fingerprint
            ~box_hash:(Cache.box_hash prop.Property.din)
            ~kind:("abstractions:" ^ Analyzer.domain_name domain ^ ":w=0")
            build)
  in
  let n = Array.length boxes in
  let proved = n > 0 && Box.subset_tol boxes.(n - 1) prop.Property.dout in
  if proved then chain := Some boxes;
  { Report.name;
    outcome =
      (if proved then Report.Safe
       else Report.Inconclusive "abstract chain does not prove containment");
    timing = Report.sequential_timing wall;
    detail = Printf.sprintf "%d layer abstractions" n }

let cached_lipschitz ~config ~fingerprint net norm =
  let kind_name = match norm with
    | Lipschitz.Linf -> "Linf"
    | Lipschitz.L2 -> "L2"
    | Lipschitz.L1 -> "L1"
  in
  let build () = Lipschitz.global ~norm net in
  match config.cache with
  | None -> build ()
  | Some c ->
    Cache.float_or_build c ~fingerprint ~box_hash:Cache.no_box
      ~kind:("lipschitz:" ^ kind_name)
      build

let run_verify ~config ?deadline ?checkpoint ?resume ~net ~prop ~exact
    ~artifact_out () =
  let fingerprint = Artifacts.fingerprint net in
  if exact then begin
    let r =
      Strategy.solve_original_exact ?deadline ~config:config.strategy
        ?checkpoint ?resume net prop
    in
    let verdict, detail =
      verdict_of_containment r.Strategy.report.Cv_verify.Verifier.verdict
    in
    (match (artifact_out, verdict) with
    | Some path, Safe -> Artifacts.save path r.Strategy.artifact
    | _ -> ());
    { s_verdict = verdict;
      s_decisive = Some "exact";
      s_attempts = 1;
      s_detail = detail }
  end
  else begin
    let chain = ref None in
    let report =
      Strategy.run_until_decisive ?deadline ?checkpoint ?resume
        [ abstract_attempt ~config ?deadline ~fingerprint ~chain net prop;
          (fun () ->
            Strategy.full_verify ?deadline ~config:config.strategy net prop) ]
    in
    let settled = settled_of_report report in
    (match (artifact_out, settled.s_verdict) with
    | Some path, Safe ->
      let lipschitz =
        [ ("Linf", cached_lipschitz ~config ~fingerprint net Lipschitz.Linf);
          ("L2", cached_lipschitz ~config ~fingerprint net Lipschitz.L2) ]
      in
      let artifact =
        Artifacts.make ?state_abstractions:!chain ~lipschitz ~property:prop
          ~net
          ~solver:(Option.value ~default:"batch" report.Report.decisive)
          ~solve_seconds:report.Report.total_wall ()
      in
      Artifacts.save path artifact
    | _ -> ());
    settled
  end

let svbtv_netabs ~config ~memo ~old_net ~(artifact : Artifacts.t) ~new_din =
  match config.cache with
  | None -> None (* reuse disabled along with the cache *)
  | Some _ ->
    let dout = artifact.Artifacts.property.Property.dout in
    let key =
      String.concat "\x00"
        [ Artifacts.fingerprint old_net;
          Cache.box_hash new_din;
          "netabs:adaptive:dout=" ^ Cache.box_hash dout ]
    in
    Memo.find_or_build memo key (fun () ->
        try
          Netabs_reuse.build_adaptive ~max_refinements:4 old_net ~din:new_din
            ~dout
        with Cv_netabs.Netabs.Unsupported _ -> None)

let dispatch ~config ~memo ?deadline ?checkpoint ?resume job =
  match job.spec with
  | Verify { net; prop; exact; artifact_out } ->
    run_verify ~config ?deadline ?checkpoint ?resume ~net ~prop ~exact
      ~artifact_out ()
  | Svudc { net; artifact; new_din } ->
    let p = Problem.svudc ~net ~artifact ~new_din in
    settled_of_report
      (Strategy.solve_svudc ?deadline ~config:config.strategy ?checkpoint
         ?resume p)
  | Svbtv { old_net; new_net; artifact; new_din } ->
    let p = Problem.svbtv ~old_net ~new_net ~artifact ~new_din in
    let netabs = svbtv_netabs ~config ~memo ~old_net ~artifact ~new_din in
    settled_of_report
      (Strategy.solve_svbtv ?deadline ~config:config.strategy ?netabs
         ?checkpoint ?resume p)

let crashed_settled e =
  { s_verdict = Crashed;
    s_decisive = None;
    s_attempts = 0;
    s_detail = "crashed: " ^ Printexc.to_string e }

let run_job ~config ~memo job =
  Metrics.incr m_jobs;
  let mode = mode_name job.spec in
  match replay_done config job with
  | Some r ->
    Metrics.incr m_resumed;
    Log.info (fun m -> m "job %s: replayed completed result" job.id);
    r
  | None ->
    (* The deadline starts at admission, not at manifest load: a job
       queued behind a full pool gets its whole budget. *)
    let deadline =
      Option.map
        (fun seconds -> Deadline.make ~seconds)
        (match job.timeout with Some _ as t -> t | None -> config.job_timeout)
    in
    let checkpoint, resume, resumed = job_checkpointing config job in
    let settled, seconds =
      Timer.time (fun () ->
          (* Two layers of isolation: supervised retries for transient
             faults, then a catch-all so a hard crash (bad manifest
             entry, shape mismatch, unsupported network) degrades this
             job alone. *)
          try
            Supervisor.protect ~name:("batch.job:" ^ job.id)
              ~fallback:crashed_settled
              (fun () ->
                dispatch ~config ~memo ?deadline ?checkpoint ?resume job)
          with e -> crashed_settled e)
    in
    if settled.s_verdict = Crashed then Metrics.incr m_crashed;
    let result =
      { job_id = job.id;
        mode;
        verdict = settled.s_verdict;
        decisive = settled.s_decisive;
        attempts = settled.s_attempts;
        seconds;
        resumed;
        detail = settled.s_detail }
    in
    record_done config job result;
    result

(* ------------------------------------------------------------------ *)
(* The scheduler                                                       *)
(* ------------------------------------------------------------------ *)

let validate_ids jobs =
  let seen = Hashtbl.create 16 in
  let seen_file = Hashtbl.create 16 in
  List.iter
    (fun j ->
      if String.length j.id = 0 then invalid_arg "Batch.run: empty job id";
      if Hashtbl.mem seen j.id then
        invalid_arg (Printf.sprintf "Batch.run: duplicate job id %S" j.id);
      Hashtbl.add seen j.id ();
      (* Distinct ids must also stay distinct as filenames, or two jobs
         would share checkpoint/done-file paths and clobber each
         other's state in a parallel run. *)
      let file = sanitize j.id in
      (match Hashtbl.find_opt seen_file file with
      | Some other ->
        invalid_arg
          (Printf.sprintf
             "Batch.run: job ids %S and %S collide after filename \
              sanitisation (%S)"
             other j.id file)
      | None -> ());
      Hashtbl.add seen_file file j.id)
    jobs

let run ?(config = default_config) jobs =
  validate_ids jobs;
  Option.iter ensure_dir config.checkpoint_dir;
  let memo = Memo.create () in
  let arr = Array.of_list jobs in
  (* Never run more worker domains than the machine has cores: OCaml's
     minor collections are stop-the-world across domains, so
     oversubscribed CPU-bound domains serialise on GC barriers and run
     far slower than a sequential sweep. *)
  let domains = max 1 (min config.jobs Parallel.default_domains) in
  Log.info (fun m ->
      m "batch: %d jobs on %d worker%s" (Array.length arr) domains
        (if domains > 1 then "s" else ""));
  let outcomes, wall_seconds =
    Timer.time (fun () ->
        (* FIFO admission: workers claim manifest slots in order. *)
        Parallel.map_results ~domains (run_job ~config ~memo) arr)
  in
  let results =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok r -> r
           | Error e ->
             (* Paranoia: run_job already catches everything; a worker
                domain dying outside it still degrades to one crashed
                job. *)
             Metrics.incr m_crashed;
             let s = crashed_settled e in
             { job_id = arr.(i).id;
               mode = mode_name arr.(i).spec;
               verdict = s.s_verdict;
               decisive = s.s_decisive;
               attempts = s.s_attempts;
               seconds = 0.;
               resumed = false;
               detail = s.s_detail })
         outcomes)
  in
  let cache_stats =
    Option.map
      (fun c ->
        let s = Cache.stats c in
        { Cache.hits = s.Cache.hits + Atomic.get memo.Memo.hits;
          misses = s.Cache.misses + Atomic.get memo.Memo.misses;
          evictions = s.Cache.evictions })
      config.cache
  in
  { results; wall_seconds; cache_stats }

(* ------------------------------------------------------------------ *)
(* The consolidated report                                             *)
(* ------------------------------------------------------------------ *)

let count v results =
  List.length (List.filter (fun r -> r.verdict = v) results)

let report_to_json t =
  Json.Obj
    [ ("schema", Json.Str "contiver-batch-report-v1");
      ("jobs", Json.List (List.map job_result_to_json t.results));
      ( "summary",
        Json.Obj
          [ ("total", Json.of_int (List.length t.results));
            ("safe", Json.of_int (count Safe t.results));
            ("unsafe", Json.of_int (count Unsafe t.results));
            ("inconclusive", Json.of_int (count Inconclusive t.results));
            ("exhausted", Json.of_int (count Exhausted t.results));
            ("crashed", Json.of_int (count Crashed t.results)) ] );
      ( "cache",
        match t.cache_stats with
        | None -> Json.Null
        | Some s -> Cache.stats_to_json s );
      ("wall_seconds", Json.Num t.wall_seconds) ]
