(** Orchestration: solve the original problem (producing artifacts),
    then settle SVuDC / SVbTV instances by trying the cheap reuse routes
    before falling back to full re-verification.

    The attempt order mirrors the paper's presentation, cheapest first:
    - SVuDC: trivial inclusion → Prop 3 (Lipschitz, O(1)) → Prop 1
      (two-layer exact) → Prop 2 (rebuild + handoffs) → full.
    - SVbTV: Prop 6 (weight domination, no solver) → Prop 4 with §IV-C
      fixing → Prop 5 (anchored multi-layer) → full.

    Each run returns a {!Report.t} with per-attempt timing so the bench
    harness can reproduce Table I's "incremental time / original time"
    ratios. *)

type config = {
  engine : Cv_verify.Containment.engine;  (** exact engine for subproblems *)
  domain : Cv_domains.Analyzer.domain_kind;  (** abstract domain for rebuilds *)
  lipschitz_norm : Cv_lipschitz.Lipschitz.norm;
  anchors : int list option;  (** Prop 5 anchors; [None] = every 2 layers *)
  interval_slack : float option;  (** weight-interval Prop 6 budget *)
  domains : int option;  (** worker domains for parallel subproblems *)
}

(** A sensible default configuration (MILP subproblems, symbolic-interval
    abstractions, ∞-norm Lipschitz). *)
let default_config =
  { engine = Cv_verify.Containment.Milp;
    domain = Cv_domains.Analyzer.Symint;
    lipschitz_norm = Cv_lipschitz.Lipschitz.Linf;
    anchors = None;
    interval_slack = None;
    domains = None }

(* ------------------------------------------------------------------ *)
(* Original problem                                                    *)
(* ------------------------------------------------------------------ *)

(** Result of solving the original verification problem from scratch. *)
type original = {
  artifact : Cv_artifacts.Artifacts.t;
  report : Cv_verify.Verifier.report;
  proved : bool;
}

(** [solve_original ?deadline ?config net prop] verifies
    [φ(f, D_in, D_out)] from scratch — abstract analysis first, exact
    fallback — and packages the proof artifacts (state abstractions when
    the abstract proof succeeded, Lipschitz constants always). The
    reported time is the denominator of the Table I ratios. Deadline
    expiry degrades the verdict to [Unknown {reason = Timeout; _}]. *)
let solve_original ?deadline ?(config = default_config) net prop =
  Cv_util.Trace.with_span "strategy.original" @@ fun () ->
  let result, wall =
    Cv_util.Timer.time (fun () ->
        let pr =
          Cv_verify.Verifier.verify_with_abstractions ?deadline
            ~domain:config.domain ~fallback:config.engine net prop
        in
        let ell_inf = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net in
        let ell_l2 = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.L2 net in
        (pr, [ ("Linf", ell_inf); ("L2", ell_l2) ]))
  in
  let pr, lipschitz = result in
  let proved =
    match pr.Cv_verify.Verifier.report.Cv_verify.Verifier.verdict with
    | Cv_verify.Containment.Proved -> true
    | _ -> false
  in
  { artifact =
      Cv_artifacts.Artifacts.make
        ?state_abstractions:pr.Cv_verify.Verifier.abstractions ~lipschitz
        ~property:prop ~net
        ~solver:
          (Cv_verify.Containment.engine_name
             pr.Cv_verify.Verifier.report.Cv_verify.Verifier.engine)
        ~solve_seconds:wall ();
    report = { pr.Cv_verify.Verifier.report with Cv_verify.Verifier.seconds = wall };
    proved }

(** [solve_original_exact ?config ?widen net prop] — the Table I
    "original problem": a sound-and-complete full-network run (exact
    MILP output range, no cutoffs) {e plus} artifact recording: the
    widened inductive abstraction chain (default slack 0.02) and
    Lipschitz constants. The widening leaves slack for later
    fine-tuning, the same practice as the paper's input-bound buffers.
    Raises on non-piecewise-linear networks. *)
let solve_original_exact ?deadline ?(config = default_config) ?(widen = 0.02)
    ?(with_split_cert = false) ?checkpoint ?resume net prop =
  Cv_util.Trace.with_span "strategy.original_exact" @@ fun () ->
  let lipschitz () =
    let ell_inf =
      Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net
    in
    let ell_l2 =
      Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.L2 net
    in
    [ ("Linf", ell_inf); ("L2", ell_l2) ]
  in
  let body () =
    let verdict, _range =
      Cv_verify.Range.verify_exact ?deadline ?checkpoint ?resume net prop
    in
    let split_cert =
      if with_split_cert && verdict = Cv_verify.Containment.Proved then
        Cv_verify.Split_cert.prove ?deadline net
          ~input_box:prop.Cv_verify.Property.din
          ~target:prop.Cv_verify.Property.dout
      else None
    in
    let s =
      Cv_domains.Analyzer.abstractions ?deadline ~widen config.domain net
        prop.Cv_verify.Property.din
    in
    let chain_proves =
      Cv_interval.Box.subset_tol s.(Array.length s - 1)
        prop.Cv_verify.Property.dout
    in
    (verdict, (if chain_proves then Some s else None), lipschitz (), split_cert)
  in
  let result, wall =
    Cv_util.Timer.time (fun () ->
        (* Supervised: transient solver failures (spurious errors,
           allocation faults) are retried; a persistent crash degrades
           to a structured Unknown instead of escaping. *)
        Cv_util.Supervisor.protect ~name:"strategy.original_exact"
          ~fallback:(fun exn ->
            ( Cv_verify.Containment.unknown Cv_verify.Containment.Crash
                ("exact solve crashed: " ^ Printexc.to_string exn),
              None, lipschitz (), None ))
          (fun () ->
            try body ()
            with Cv_util.Deadline.Expired msg ->
              (* Exactness admits no partial answer: degrade the whole
                 solve to a structured Unknown (Lipschitz constants are
                 cheap and still recorded). *)
              ( Cv_verify.Containment.unknown Cv_verify.Containment.Timeout
                  msg,
                None, lipschitz (), None )))
  in
  let verdict, abstractions, lipschitz, split_cert = result in
  { artifact =
      Cv_artifacts.Artifacts.make ?state_abstractions:abstractions ~lipschitz
        ?split_cert ~property:prop ~net ~solver:"milp-exact-range"
        ~solve_seconds:wall ();
    report =
      { Cv_verify.Verifier.verdict;
        engine = Cv_verify.Containment.Milp;
        seconds = wall };
    proved =
      (match verdict with Cv_verify.Containment.Proved -> true | _ -> false) }

(* ------------------------------------------------------------------ *)
(* Fallback                                                            *)
(* ------------------------------------------------------------------ *)

(** [full_verify ?deadline ?config net prop] — complete re-verification
    of the target property, as a strategy attempt. Without a deadline
    this is the abstract-then-exact solver; with one it runs the
    {!Cv_verify.Verifier.verify_graceful} escalation chain, so the
    attempt degrades to [Exhausted] (with any salvaged bound in the
    message) instead of hanging when the budget runs out. *)
let full_verify ?deadline ?(config = default_config) net prop =
  let report, wall =
    Cv_util.Timer.time (fun () ->
        match deadline with
        | Some _ -> Cv_verify.Verifier.verify_graceful ?deadline net prop
        | None ->
          (Cv_verify.Verifier.verify_with_abstractions ~domain:config.domain
             ~fallback:config.engine net prop)
            .Cv_verify.Verifier.report)
  in
  let outcome =
    match report.Cv_verify.Verifier.verdict with
    | Cv_verify.Containment.Proved -> Report.Safe
    | Cv_verify.Containment.Violated v -> Report.Unsafe v
    | Cv_verify.Containment.Unknown
        { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout;
          message;
          _ } ->
      Report.Exhausted message
    | Cv_verify.Containment.Unknown u ->
      Report.Inconclusive u.Cv_verify.Containment.message
  in
  { Report.name = "full";
    outcome;
    timing = Report.sequential_timing wall;
    detail =
      (match deadline with
      | Some _ -> "graceful escalation chain (budgeted)"
      | None -> "complete re-verification (no reuse)") }

(* Strategy-level accounting: how many reuse attempts ran and how many
   settled their instance (surfaced by `contiver --stats`). *)
let m_attempts = Cv_util.Metrics.counter "core.attempts"

let m_decisive = Cv_util.Metrics.counter "core.decisive"

(* Run attempts lazily in order, stopping at the first decisive one.
   Budget expiry — either observed before launching an attempt or
   escaping one as Deadline.Expired — ends the run with a structured
   Exhausted outcome instead of an exception.

   Checkpointing is attempt-granular: after every inconclusive attempt
   the accumulated (non-decisive) attempts are written through the sink,
   and [resume] replays them — skipping that many thunks — so a killed
   SVuDC/SVbTV run re-enters the chain exactly where it stopped. The
   attempt list is a deterministic function of the problem and config,
   which makes the positional skip sound. Each attempt also runs
   supervised: a crashed attempt (beyond retries) becomes Inconclusive
   and the chain continues with the next, coarser route. *)
let run_until_decisive ?deadline ?checkpoint ?resume attempts =
  let exhausted_attempt msg =
    { Report.name = "budget";
      outcome = Report.Exhausted msg;
      timing = Report.sequential_timing 0.;
      detail = "deadline expired; remaining attempts skipped" }
  in
  let prior =
    match resume with
    | None -> []
    | Some doc ->
      Cv_util.Json.to_list (Cv_util.Json.member "attempts" doc)
      |> List.map Report.attempt_of_json
  in
  (* [acc] is most-recent-first; the written "attempts" list is
     oldest-first. *)
  let progress acc () =
    Cv_util.Json.Obj
      [ ("attempts", Cv_util.Json.List (List.rev_map Report.attempt_to_json acc))
      ]
  in
  let rec drop n l =
    if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
  in
  let rec go acc = function
    | [] -> Report.conclude (List.rev acc)
    | thunk :: rest ->
      if Cv_util.Deadline.expired_opt deadline then
        Report.conclude
          (List.rev
             (exhausted_attempt "verification budget exhausted" :: acc))
      else begin
        let attempt =
          Cv_util.Trace.with_span "strategy.attempt" @@ fun () ->
          Cv_util.Metrics.incr m_attempts;
          let attempt =
            Cv_util.Supervisor.protect ~name:"strategy.attempt"
              ~fallback:(fun exn ->
                { Report.name = "crashed";
                  outcome =
                    Report.Inconclusive
                      ("attempt crashed: " ^ Printexc.to_string exn);
                  timing = Report.sequential_timing 0.;
                  detail = "supervised retries exhausted; trying next route" })
              (fun () ->
                try thunk ()
                with Cv_util.Deadline.Expired msg -> exhausted_attempt msg)
          in
          Cv_util.Trace.add_attr "name" attempt.Report.name;
          Cv_util.Trace.add_attr "outcome"
            (Report.outcome_string attempt.Report.outcome);
          attempt
        in
        match attempt.Report.outcome with
        | Report.Safe | Report.Unsafe _ | Report.Exhausted _ ->
          Cv_util.Metrics.incr m_decisive;
          Report.conclude (List.rev (attempt :: acc))
        | Report.Inconclusive _ ->
          let acc = attempt :: acc in
          Cv_util.Checkpoint.save_opt checkpoint (progress acc);
          go acc rest
      end
  in
  go (List.rev prior) (drop (List.length prior) attempts)

(* ------------------------------------------------------------------ *)
(* SVuDC                                                               *)
(* ------------------------------------------------------------------ *)

(** [solve_svudc ?deadline ?config p] — the full SVuDC pipeline.
    [checkpoint]/[resume] persist and restore attempt-level progress
    (see {!run_until_decisive}). *)
let solve_svudc ?deadline ?(config = default_config) ?checkpoint ?resume
    (p : Problem.svudc) =
  Cv_util.Trace.with_span "strategy.svudc" @@ fun () ->
  run_until_decisive ?deadline ?checkpoint ?resume
    [ (fun () -> Svudc.trivial p);
      (fun () -> Svudc.prop3 ~norm:config.lipschitz_norm p);
      (fun () -> Svudc.prop1 ?deadline ~engine:config.engine p);
      (fun () ->
        Svudc.prop2 ?deadline ~domain:config.domain ~engine:config.engine
          ?domains:config.domains p);
      (fun () ->
        Svudc.delta_cover ?deadline ~engine:config.engine
          ?domains:config.domains p);
      (fun () ->
        full_verify ?deadline ~config p.Problem.net (Problem.svudc_property p))
    ]

(* ------------------------------------------------------------------ *)
(* SVbTV                                                               *)
(* ------------------------------------------------------------------ *)

(** [solve_svbtv ?deadline ?config ?netabs p] — the full SVbTV pipeline.
    The optional [netabs] is a stored Prop. 6 abstraction pair built for
    the old network. *)
let solve_svbtv ?deadline ?(config = default_config) ?netabs ?checkpoint
    ?resume (p : Problem.svbtv) =
  Cv_util.Trace.with_span "strategy.svbtv" @@ fun () ->
  let prop6_attempts =
    (match netabs with
    | Some t -> [ (fun () -> Netabs_reuse.prop6 t p) ]
    | None -> [])
    @
    match config.interval_slack with
    | Some slack -> [ (fun () -> Netabs_reuse.prop6_interval ~slack p) ]
    | None -> []
  in
  run_until_decisive ?deadline ?checkpoint ?resume
    (prop6_attempts
    @ [ (fun () -> Svbtv.leaf_reuse ?deadline ?domains:config.domains p);
        (fun () ->
          (* The paper's own routes next (Prop 4 with §IV-C fixing);
             the differential extension backs them up below. *)
          Fixer.repair ?deadline ~engine:config.engine ~domain:config.domain
            ?domains:config.domains p);
        (fun () -> Diff_reuse.prop_diff ~norm:config.lipschitz_norm p);
        (fun () ->
          let n = Cv_nn.Network.num_layers p.Problem.new_net in
          let anchors =
            match config.anchors with
            | Some a -> a
            | None -> Svbtv.default_anchors n
          in
          if anchors = [] then
            { Report.name = "prop5";
              outcome = Report.Inconclusive "network too shallow for anchors";
              timing = Report.sequential_timing 0.;
              detail = "" }
          else
            Svbtv.prop5 ?deadline ~engine:config.engine
              ?domains:config.domains ~anchors p);
        (fun () ->
          full_verify ?deadline ~config p.Problem.new_net
            (Problem.svbtv_property p)) ])

(** [ratio ~incremental ~original] is the Table I quantity:
    incremental time as a fraction of the original solve time. *)
let ratio ~incremental ~original =
  if original <= 0. then Float.nan else incremental /. original
