(** Solving SVuDC — same network, enlarged domain (paper §IV-A).

    Three proof-reuse routes, each returning a {!Report.attempt}:
    - {!prop1}: re-check only the first two layers against the stored
      [S_2] with an exact engine;
    - {!prop2}: rebuild abstractions [S'] on the enlarged domain and
      look for a handoff layer [j] where [S'_j] steps into the stored
      [S_{j+1}];
    - {!prop3}: bound the output drift by ℓ·κ using a stored Lipschitz
      constant and check the inflated [S_n] against [D_out].

    A subproblem violation never means the target property is unsafe
    (the stored abstractions over-approximate); such attempts come back
    [Inconclusive] and the strategy moves on. *)

let abstraction_required = "artifact carries no state abstractions"

let get_abstractions (p : Problem.svudc) =
  p.Problem.artifact.Cv_artifacts.Artifacts.state_abstractions

let old_property (p : Problem.svudc) =
  p.Problem.artifact.Cv_artifacts.Artifacts.property

(* Map a containment verdict on a *subproblem* to an attempt outcome:
   only Proved transfers; everything else is inconclusive — except a
   timeout, which exhausts the whole run's budget. *)
let subproblem_outcome = function
  | Cv_verify.Containment.Proved -> Report.Safe
  | Cv_verify.Containment.Violated v ->
    Report.Inconclusive
      (Printf.sprintf "reuse condition violated (margin %.4g at output %d)"
         v.Cv_verify.Falsify.margin v.Cv_verify.Falsify.neuron)
  | Cv_verify.Containment.Unknown
      { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout;
        message;
        _ } ->
    Report.Exhausted message
  | Cv_verify.Containment.Unknown u ->
    Report.Inconclusive u.Cv_verify.Containment.message

(** [trivial p] — the degenerate shortcut: if the "enlarged" domain is
    in fact contained in the proved [D_in], the old proof applies
    verbatim. *)
let trivial (p : Problem.svudc) =
  let ok, wall =
    Cv_util.Timer.time (fun () ->
        Cv_interval.Box.subset_tol p.Problem.new_din
          (old_property p).Cv_verify.Property.din)
  in
  { Report.name = "trivial";
    outcome =
      (if ok then Report.Safe
       else Report.Inconclusive "new domain genuinely enlarges D_in");
    timing = Report.sequential_timing wall;
    detail = "new D_in ⊆ old D_in?" }

(** [prop1 ?deadline ?engine p] — proof reuse at layers 1 and 2: check
    [∀x ∈ D_in ∪ Δ_in, g₂(g₁(x)) ∈ S₂] on the two-layer prefix with an
    exact engine (default MILP). *)
let prop1 ?deadline ?(engine = Cv_verify.Containment.Milp) (p : Problem.svudc) =
  match get_abstractions p with
  | None ->
    { Report.name = "prop1";
      outcome = Report.Inconclusive abstraction_required;
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some s ->
    let n = Cv_nn.Network.num_layers p.Problem.net in
    if n < 2 then
      { Report.name = "prop1";
        outcome = Report.Inconclusive "network has fewer than 2 layers";
        timing = Report.sequential_timing 0.;
        detail = "" }
    else begin
      let prefix = Cv_nn.Network.prefix p.Problem.net 2 in
      let verdict, wall =
        Cv_verify.Containment.check_timed ?deadline engine prefix
          ~input_box:p.Problem.new_din ~target:s.(1)
      in
      { Report.name = "prop1";
        outcome = subproblem_outcome verdict;
        timing = Report.sequential_timing wall;
        detail =
          Printf.sprintf "g2∘g1 over enlarged domain into S_2 [%s]"
            (Cv_verify.Containment.engine_name engine) }
    end

(** [prop2 ?domain ?engine ?domains p] — proof reuse at layer [j+1]:
    rebuild [S'_1..S'_{n-1}] on the enlarged domain with the abstract
    [domain] (default symbolic intervals), then search — in parallel —
    for a [j] whose handoff [∀x ∈ S'_j, g_{j+1}(x) ∈ S_{j+1}] holds.
    The handoff is first tried as a free box-inclusion test
    ([S'_j ⊆ S_j]), then with the exact engine on the single-layer
    slice. *)
let prop2 ?deadline ?(domain = Cv_domains.Analyzer.Symint)
    ?(engine = Cv_verify.Containment.Milp) ?domains (p : Problem.svudc) =
  match get_abstractions p with
  | None ->
    { Report.name = "prop2";
      outcome = Report.Inconclusive abstraction_required;
      timing = Report.sequential_timing 0.;
      detail = "" }
  | Some s ->
    let net = p.Problem.net in
    let n = Cv_nn.Network.num_layers net in
    let result, wall =
      Cv_util.Timer.time (fun () ->
          let s' =
            Cv_domains.Analyzer.abstractions ?deadline domain net
              p.Problem.new_din
          in
          (* Handoff candidates: j = 1 .. n-1 (0-based S' index j-1,
             target S_{j+1} = s.(j)). *)
          let candidates = Array.init (max 0 (n - 1)) (fun k -> k + 1) in
          let check j =
            Cv_util.Timer.time (fun () ->
                if Cv_interval.Box.subset_tol s'.(j - 1) s.(j - 1) then
                  (Cv_verify.Containment.Proved, `Subset)
                else begin
                  let slice = Cv_nn.Network.slice net ~from_:j ~to_:(j + 1) in
                  ( Cv_verify.Containment.check ?deadline engine slice
                      ~input_box:s'.(j - 1) ~target:s.(j),
                    `Exact )
                end)
          in
          (Cv_util.Parallel.map ?domains check candidates, Array.length candidates))
    in
    let checks, n_checks = result in
    let times = Array.map snd checks in
    let parallel = Array.fold_left Float.max 0. times in
    let sequential = Array.fold_left ( +. ) 0. times in
    let winner =
      Array.to_seq checks
      |> Seq.mapi (fun idx ((v, how), _) -> (idx + 1, v, how))
      |> Seq.find (fun (_, v, _) -> Cv_verify.Containment.is_proved v)
    in
    { Report.name = "prop2";
      outcome =
        (match winner with
        | Some _ -> Report.Safe
        | None -> Report.Inconclusive "no handoff layer found");
      timing = { Report.wall; parallel; sequential; subproblems = n_checks };
      detail =
        (match winner with
        | Some (j, _, `Subset) -> Printf.sprintf "S'_%d ⊆ S_%d (box inclusion)" j j
        | Some (j, _, `Exact) ->
          Printf.sprintf "handoff S'_%d → S_%d via %s" j (j + 1)
            (Cv_verify.Containment.engine_name engine)
        | None -> Printf.sprintf "%d handoffs tried" n_checks) }

(** [delta_cover ?engine ?domains p] — verify only the {e new} region:
    [D_in ∪ Δ_in \ D_in] is covered by at most [2·dim] axis-aligned
    slabs (one per enlarged box face); each slab is checked directly
    against [D_out] with the exact engine on the full network, and the
    old proof covers [D_in] itself. The slabs are thin (the enlargement
    is small by construction), so most neurons are stable over them and
    the exact checks are fast; all slabs run in parallel.

    This route is not one of the paper's numbered propositions but
    follows directly from its observation that only Δ_in is new; it
    serves as a tighter fallback when Props 1–3 fail. *)
let enlargement_slabs ~old_box ~new_box =
  let dim = Cv_interval.Box.dim new_box in
  let slabs = ref [] in
  for i = 0 to dim - 1 do
    let o = Cv_interval.Box.get old_box i in
    let n = Cv_interval.Box.get new_box i in
    if Cv_interval.Interval.lo n < Cv_interval.Interval.lo o then begin
      let slab = Array.copy new_box in
      slab.(i) <-
        Cv_interval.Interval.make (Cv_interval.Interval.lo n)
          (Cv_interval.Interval.lo o);
      slabs := (Printf.sprintf "axis%d-low" i, slab) :: !slabs
    end;
    if Cv_interval.Interval.hi n > Cv_interval.Interval.hi o then begin
      let slab = Array.copy new_box in
      slab.(i) <-
        Cv_interval.Interval.make (Cv_interval.Interval.hi o)
          (Cv_interval.Interval.hi n);
      slabs := (Printf.sprintf "axis%d-high" i, slab) :: !slabs
    end
  done;
  Array.of_list (List.rev !slabs)

let delta_cover ?deadline ?(engine = Cv_verify.Containment.Milp) ?domains
    (p : Problem.svudc) =
  let old_prop = old_property p in
  let old_din = old_prop.Cv_verify.Property.din in
  let dout = old_prop.Cv_verify.Property.dout in
  let slabs = enlargement_slabs ~old_box:old_din ~new_box:p.Problem.new_din in
  if Array.length slabs = 0 then
    { Report.name = "delta-cover";
      outcome = Report.Safe;
      timing = Report.sequential_timing 0.;
      detail = "Δ_in is empty: nothing new to verify" }
  else begin
    let results, wall =
      Cv_util.Timer.time (fun () ->
          Cv_util.Parallel.map ?domains
            (fun (label, slab) ->
              let verdict, seconds =
                Cv_verify.Containment.check_timed ?deadline engine p.Problem.net
                  ~input_box:slab ~target:dout
              in
              (label, verdict, seconds))
            slabs)
    in
    let times = Array.map (fun (_, _, s) -> s) results in
    let parallel = Array.fold_left Float.max 0. times in
    let sequential = Array.fold_left ( +. ) 0. times in
    (* A concrete violation on a slab IS a violation of the target
       property (the slab lies inside the enlarged domain). *)
    let violation =
      Array.to_seq results
      |> Seq.filter_map (fun (_, v, _) ->
             match v with
             | Cv_verify.Containment.Violated w -> Some w
             | _ -> None)
      |> fun s -> Seq.uncons s |> Option.map fst
    in
    let failures =
      Array.to_list results
      |> List.filter_map (fun (label, v, _) ->
             if Cv_verify.Containment.is_proved v then None else Some label)
    in
    { Report.name = "delta-cover";
      outcome =
        (match violation with
        | Some w -> Report.Unsafe w
        | None ->
          if failures = [] then Report.Safe
          else
            Report.Inconclusive
              (Printf.sprintf "%d/%d slabs unproved (%s)" (List.length failures)
                 (Array.length slabs)
                 (String.concat ", " failures)));
      timing =
        { Report.wall; parallel; sequential; subproblems = Array.length slabs };
      detail =
        Printf.sprintf "%d enlargement slabs vs D_out [%s]" (Array.length slabs)
          (Cv_verify.Containment.engine_name engine) }
  end

(** [prop3 ?norm p] — Lipschitz-based reuse: with stored ℓ (for [norm],
    default ∞) and measured κ (max distance from the enlarged box to the
    old [D_in]), the property transfers when [S_n ⊕ ℓκ ⊆ D_out]. *)
let prop3 ?(norm = Cv_lipschitz.Lipschitz.Linf) (p : Problem.svudc) =
  let norm_key = Cv_lipschitz.Lipschitz.norm_name norm in
  let artifact = p.Problem.artifact in
  let run () =
    match
      ( Cv_artifacts.Artifacts.lipschitz_for artifact norm_key,
        Cv_artifacts.Artifacts.final_abstraction artifact )
    with
    | None, _ -> (Report.Inconclusive ("no Lipschitz constant stored for " ^ norm_key), "")
    | _, None -> (Report.Inconclusive abstraction_required, "")
    | Some ell, Some s_n ->
      let old_din = (old_property p).Cv_verify.Property.din in
      let kappa =
        Cv_lipschitz.Lipschitz.kappa ~norm ~old_box:old_din
          ~new_box:p.Problem.new_din
      in
      let inflated = Cv_interval.Box.expand (ell *. kappa) s_n in
      let dout = (old_property p).Cv_verify.Property.dout in
      let detail =
        Printf.sprintf "ℓ=%.4g κ=%.4g ℓκ=%.4g: S_n ⊕ ℓκ %s D_out" ell kappa
          (ell *. kappa)
          (if Cv_interval.Box.subset_tol inflated dout then "⊆" else "⊄")
      in
      if Cv_interval.Box.subset_tol inflated dout then (Report.Safe, detail)
      else (Report.Inconclusive "inflated S_n escapes D_out", detail)
  in
  let (outcome, detail), wall = Cv_util.Timer.time run in
  { Report.name = "prop3";
    outcome;
    timing = Report.sequential_timing wall;
    detail }
