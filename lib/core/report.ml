(** Outcomes and timing records for continuous-verification attempts.

    Timing follows the paper's accounting (Table I, footnote 3): when a
    proposition decomposes into independent subproblems, the reported
    parallel time is the {e maximum} subproblem time; the sequential sum
    is kept alongside for the ablation benches. *)

type outcome =
  | Safe  (** the sufficient condition holds; the property transfers *)
  | Unsafe of Cv_verify.Falsify.violation
      (** a concrete counterexample to the {e target} property *)
  | Inconclusive of string
      (** the sufficient condition failed without a counterexample *)
  | Exhausted of string
      (** the resource budget (deadline/fuel) ran out before the attempt
          could decide; the property's status is unchanged *)

type timing = {
  wall : float;  (** actual wall-clock seconds of the attempt *)
  parallel : float;
      (** cost under full parallelisation: max over independent
          subproblems (equals [wall] for sequential attempts) *)
  sequential : float;  (** sum over subproblems *)
  subproblems : int;
}

(** [sequential_timing wall] is the timing of an undecomposed attempt. *)
let sequential_timing wall =
  { wall; parallel = wall; sequential = wall; subproblems = 1 }

type attempt = {
  name : string;  (** e.g. "prop1", "prop4", "fallback-full" *)
  outcome : outcome;
  timing : timing;
  detail : string;  (** free-form context for the log / report *)
}

(** [is_safe a] is true when the attempt proved the property. *)
let is_safe a = match a.outcome with Safe -> true | _ -> false

(** A full strategy run: every attempt in order, ending either with a
    successful one or with all failing. *)
type t = {
  attempts : attempt list;
  verdict : outcome;
  total_wall : float;
  decisive : string option;  (** name of the attempt that settled it *)
}

(** [conclude attempts] folds attempts into a run report: the verdict is
    the first non-inconclusive outcome, or the last attempt's
    inconclusive/exhausted message. An [Exhausted] attempt ends the run
    — once the budget is gone no later attempt could have run. *)
let conclude attempts =
  let total_wall = List.fold_left (fun acc a -> acc +. a.timing.wall) 0. attempts in
  let rec settle = function
    | [] -> (Inconclusive "no attempts ran", None)
    | a :: rest -> (
      match a.outcome with
      | Safe -> (Safe, Some a.name)
      | Unsafe v -> (Unsafe v, Some a.name)
      | Exhausted _ -> (a.outcome, None)
      | Inconclusive _ when rest = [] -> (a.outcome, None)
      | Inconclusive _ -> settle rest)
  in
  let verdict, decisive = settle attempts in
  { attempts; verdict; total_wall; decisive }

(* ------------------------------------------------------------------ *)
(* Checkpoint serialisation                                            *)
(* ------------------------------------------------------------------ *)

(** [attempt_to_json a] encodes a non-decisive attempt for a strategy
    checkpoint. Only [Inconclusive] attempts are ever checkpointed — a
    decisive outcome ends the run — so anything else is an error. *)
let attempt_to_json a =
  let message =
    match a.outcome with
    | Inconclusive m -> m
    | _ ->
      invalid_arg
        "Report.attempt_to_json: only inconclusive attempts are checkpointed"
  in
  Cv_util.Json.Obj
    [ ("name", Cv_util.Json.Str a.name);
      ("message", Cv_util.Json.Str message);
      ("detail", Cv_util.Json.Str a.detail);
      ("wall", Cv_util.Json.Num a.timing.wall) ]

(** [attempt_of_json j] restores an attempt written by
    {!attempt_to_json}; raises {!Cv_util.Json.Error} on malformed
    input. *)
let attempt_of_json j =
  { name = Cv_util.Json.to_str (Cv_util.Json.member "name" j);
    outcome = Inconclusive (Cv_util.Json.to_str (Cv_util.Json.member "message" j));
    timing = sequential_timing (Cv_util.Json.to_float (Cv_util.Json.member "wall" j));
    detail = Cv_util.Json.to_str (Cv_util.Json.member "detail" j) }

(** [outcome_string o] is a short printable verdict. *)
let outcome_string = function
  | Safe -> "SAFE"
  | Unsafe v ->
    Printf.sprintf "UNSAFE (output %d %s by %.4g)" v.Cv_verify.Falsify.neuron
      (match v.Cv_verify.Falsify.side with
      | `Upper -> "above bound"
      | `Lower -> "below bound")
      v.Cv_verify.Falsify.margin
  | Inconclusive msg -> "INCONCLUSIVE: " ^ msg
  | Exhausted msg -> "UNKNOWN (budget exhausted): " ^ msg

(** [pp ppf t] prints the run: one line per attempt plus the verdict. *)
let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-14s %-12s wall=%.4fs par=%.4fs (%d subproblems) %s@,"
        a.name
        (match a.outcome with
        | Safe -> "safe"
        | Unsafe _ -> "unsafe"
        | Inconclusive _ -> "inconclusive"
        | Exhausted _ -> "exhausted")
        a.timing.wall a.timing.parallel a.timing.subproblems a.detail)
    t.attempts;
  Format.fprintf ppf "verdict: %s (%.4fs total%s)@]" (outcome_string t.verdict)
    t.total_wall
    (match t.decisive with Some n -> ", decided by " ^ n | None -> "")

(** [to_string t] renders {!pp}. *)
let to_string t = Format.asprintf "%a" pp t
