(** Symbolic interval analysis in the style of ReluVal / Neurify: each
    neuron carries symbolic linear lower/upper expressions over the
    network inputs, concretised against the input box. The domain the
    paper's experiment uses to produce its per-neuron state
    abstractions. The coefficient rows live in flat row-major matrices
    so an affine step is one fused sign-select gemm; results are
    bitwise identical to the historical per-neuron representation. *)

type t

val name : string

val dim : t -> int

val of_box : Cv_interval.Box.t -> t

(** [affine w b a] pushes the element through the affine map exactly
    (sign-splitting per weight) — exposed for the MILP encoder's big-M
    pre-analysis and the differential analyzer. *)
val affine : Cv_linalg.Mat.t -> Cv_linalg.Vec.t -> t -> t

(** [apply_layer l a] is the sound abstract image under the fused
    affine-plus-activation layer. *)
val apply_layer : Cv_nn.Layer.t -> t -> t

val apply_prepared : Cv_nn.Layer.prepared -> t -> t

(** [to_box a] concretises to per-neuron interval bounds. *)
val to_box : t -> Cv_interval.Box.t
