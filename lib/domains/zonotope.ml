(** The zonotope abstract domain (DeepZ-style transformers).

    A zonotope is an affine image of a hypercube: [{ c + G ε | ε ∈
    [-1,1]^m }]. Affine layers are exact; unstable ReLUs use the standard
    minimal-area relaxation that introduces one fresh noise symbol per
    unstable neuron. Used in the precision/cost ablation benches against
    box and symbolic intervals, mirroring the paper's remark that "other
    types [of] abstract transformers with better precision are used".

    The generators live in one row-major [m × d] matrix (one row per
    noise symbol), so an affine layer is a single blocked [G Wᵀ]
    product ({!Cv_linalg.Mat.matmul_transb}) instead of [m] separate
    matvecs, and concretisation is one pass over the flat store. Row
    order and per-element accumulation order replicate the historical
    row-array representation, so bounds are bitwise identical. The
    per-dimension deviation vector is memoized on the element:
    {!to_box} and the ReLU transformer share one computation. *)

type t = {
  center : float array;  (** c, dimension d *)
  gens : Cv_linalg.Mat.t;  (** generator rows, [m × d] *)
  mutable dev : float array option;  (** memoized per-dimension deviation *)
}

let name = "zonotope"

let dim z = Array.length z.center

(* Build from axis radii: one generator per non-degenerate axis, in
   ascending axis order (as the historical list construction). *)
let of_radii center radius =
  let n = Array.length center in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if radius.(i) > 0. then incr m
  done;
  let gens = Cv_linalg.Mat.zeros !m n in
  let row = ref 0 in
  for i = 0 to n - 1 do
    if radius.(i) > 0. then begin
      Cv_linalg.Mat.set gens !row i radius.(i);
      incr row
    end
  done;
  { center; gens; dev = None }

(** [of_box b] has one generator per non-degenerate axis. *)
let of_box b =
  let n = Cv_interval.Box.dim b in
  let center =
    Array.init n (fun i -> Cv_interval.Interval.center (Cv_interval.Box.get b i))
  in
  let radius =
    Array.init n (fun i -> Cv_interval.Interval.radius (Cv_interval.Box.get b i))
  in
  of_radii center radius

(* Per-dimension deviations, one pass over the flat store in row order
   (same per-column accumulation order as the historical per-row
   fold_left). Memoized on the element: affine and ReLU images start
   with [dev = None] and the first concretisation fills it in. *)
let deviations z =
  match z.dev with
  | Some d -> d
  | None ->
    let n = dim z in
    let m = Cv_linalg.Mat.rows z.gens in
    let gd = Cv_linalg.Mat.unsafe_data z.gens in
    let dev = Array.make n 0. in
    for r = 0 to m - 1 do
      let base = r * n in
      for i = 0 to n - 1 do
        Array.unsafe_set dev i
          (Array.unsafe_get dev i +. Float.abs (Array.unsafe_get gd (base + i)))
      done
    done;
    z.dev <- Some dev;
    dev

(** Per-dimension deviation: sum of |generator| entries. *)
let deviation z i = (deviations z).(i)

(** [to_box z] concretises to per-dimension bounds [c_i ± dev_i]. *)
let to_box z =
  let dev = deviations z in
  Array.init (dim z) (fun i ->
      Cv_interval.Interval.make (z.center.(i) -. dev.(i)) (z.center.(i) +. dev.(i)))

let affine (w : Cv_linalg.Mat.t) bias z =
  if Cv_linalg.Mat.cols w <> dim z then invalid_arg "Zonotope.affine: dims";
  { center = Cv_linalg.Mat.matvec_add w z.center bias;
    gens = Cv_linalg.Mat.matmul_transb z.gens w;
    dev = None }

(* DeepZ ReLU: per dimension, with bounds [l, u]:
   - l >= 0: identity; u <= 0: zero;
   - unstable: y = λ x + μ ± μ where λ = u/(u−l), μ = −λ l / 2; realised
     by scaling the dimension's column of the generator store by λ,
     setting center_i := λ c_i + μ, and appending a fresh generator with
     entry μ at dimension i. Fresh rows are appended in descending
     dimension order, replicating the historical list-prepend. *)
let relu z =
  let n = dim z in
  let dev = deviations z in
  let m = Cv_linalg.Mat.rows z.gens in
  let center = Array.copy z.center in
  (* λ per dimension (1 = identity), μ for unstable dimensions. *)
  let scale = Array.make n 1. in
  let mu = Array.make n 0. in
  let fresh = Array.make n false in
  let unstable = ref 0 in
  for i = 0 to n - 1 do
    let l = center.(i) -. dev.(i) and u = center.(i) +. dev.(i) in
    if u <= 0. then begin
      center.(i) <- 0.;
      scale.(i) <- 0.
    end
    else if l < 0. then begin
      let lambda = u /. (u -. l) in
      scale.(i) <- lambda;
      mu.(i) <- -.lambda *. l /. 2.;
      center.(i) <- (lambda *. center.(i)) +. mu.(i);
      fresh.(i) <- true;
      incr unstable
    end
  done;
  let gens = Cv_linalg.Mat.zeros (m + !unstable) n in
  let src = Cv_linalg.Mat.unsafe_data z.gens in
  let dst = Cv_linalg.Mat.unsafe_data gens in
  for r = 0 to m - 1 do
    let base = r * n in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get scale i in
      (* Zeroed dimensions are assigned exact 0 (not multiplied), as the
         historical transformer did — 0 · ±inf must not become NaN. *)
      Array.unsafe_set dst (base + i)
        (if s = 0. then 0. else s *. Array.unsafe_get src (base + i))
    done
  done;
  let row = ref m in
  for i = n - 1 downto 0 do
    if fresh.(i) then begin
      Array.unsafe_set dst ((!row * n) + i) mu.(i);
      incr row
    end
  done;
  { center; gens; dev = None }

(* Non-ReLU nonlinearities: concretise per dimension (drop relational
   information). Exact for stable monotone images of the box. *)
let monotone_concrete act z =
  let box = to_box z in
  let imgs = Array.map (Cv_nn.Activation.interval act) box in
  let n = dim z in
  let center = Array.init n (fun i -> Cv_interval.Interval.center imgs.(i)) in
  let radius = Array.init n (fun i -> Cv_interval.Interval.radius imgs.(i)) in
  of_radii center radius

let apply_layer (l : Cv_nn.Layer.t) z =
  let pre = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias z in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu pre
  | Cv_nn.Activation.Identity -> pre
  | (Cv_nn.Activation.Leaky_relu _ | Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh)
    as act ->
    monotone_concrete act pre

let apply_prepared (p : Cv_nn.Layer.prepared) z =
  apply_layer p.Cv_nn.Layer.source z

(** [num_generators z] — growth diagnostic for benches. *)
let num_generators z = Cv_linalg.Mat.rows z.gens

(** [reduce_order ~max_generators z] performs standard order reduction:
    when the generator count exceeds the budget, the smallest generators
    (by 1-norm) are replaced by their box over-approximation (one
    axis-aligned generator per dimension). Sound: the result contains
    the original zonotope. Deep networks add one generator per unstable
    ReLU, so unbounded growth would make late layers quadratic; the
    analyzer stays exact until the budget is hit. *)
let reduce_order ~max_generators z =
  let m = Cv_linalg.Mat.rows z.gens in
  if m <= max_generators then z
  else begin
    let d = dim z in
    let gd = Cv_linalg.Mat.unsafe_data z.gens in
    (* Keep the largest (budget − d) generators, box the rest. *)
    let keep = max 0 (max_generators - d) in
    let row_norm1 r =
      let acc = ref 0. in
      let base = r * d in
      for i = 0 to d - 1 do
        acc := !acc +. Float.abs (Array.unsafe_get gd (base + i))
      done;
      !acc
    in
    let order = Array.init m (fun i -> (row_norm1 i, i)) in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) order;
    let boxed = Array.make d 0. in
    for k = keep to m - 1 do
      let base = snd order.(k) * d in
      for i = 0 to d - 1 do
        boxed.(i) <- boxed.(i) +. Float.abs (Array.unsafe_get gd (base + i))
      done
    done;
    let axis = ref 0 in
    for i = 0 to d - 1 do
      if boxed.(i) > 0. then incr axis
    done;
    let gens = Cv_linalg.Mat.zeros (keep + !axis) d in
    let nd = Cv_linalg.Mat.unsafe_data gens in
    for k = 0 to keep - 1 do
      Array.blit gd (snd order.(k) * d) nd (k * d) d
    done;
    let row = ref keep in
    for i = 0 to d - 1 do
      if boxed.(i) > 0. then begin
        Array.unsafe_set nd ((!row * d) + i) boxed.(i);
        incr row
      end
    done;
    { z with gens; dev = None }
  end
