(** A DeepPoly-style polyhedral domain (Singh et al., POPL 2019): per
    neuron one lower and one upper linear bound over the previous node,
    with concrete bounds recovered by backsubstitution to the input
    box. *)

type t

val name : string

val dim : t -> int

val of_box : Cv_interval.Box.t -> t

val apply_layer : Cv_nn.Layer.t -> t -> t

val apply_prepared : Cv_nn.Layer.prepared -> t -> t

val to_box : t -> Cv_interval.Box.t
