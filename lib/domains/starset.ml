(** Star sets (Tran et al., FM 2019) — the fourth abstraction family the
    paper's related work lists, implemented in its over-approximating
    ("approx-star") variant.

    A star is an affine image of a constrained predicate space:
    [{ c + V α  |  P α ≤ q,  α ∈ αbox }]. Affine layers are exact
    (transform [c] and [V]); an unstable ReLU adds one fresh predicate
    variable with three linear constraints (the triangle relaxation),
    keeping the representation exact on stable neurons. Concretisation
    solves two LPs per neuron, which makes the domain the most precise —
    and the most expensive — of our transformer family; the ablation
    bench quantifies that trade-off. *)

type t = {
  center : Cv_linalg.Vec.t;  (** d *)
  basis : Cv_linalg.Mat.t;  (** d × m *)
  constraints : (Cv_linalg.Vec.t * float) list;  (** rows p·α ≤ q over m vars *)
  alpha_box : Cv_interval.Box.t;  (** m-dim bounds on α *)
}

let name = "star"

let dim s = Array.length s.center

let num_predicates s = Cv_linalg.Mat.cols s.basis

let of_box b =
  let d = Cv_interval.Box.dim b in
  { center = Cv_interval.Box.center b;
    basis =
      Cv_linalg.Mat.init d d (fun i j ->
          if i = j then Cv_interval.Interval.radius (Cv_interval.Box.get b i)
          else 0.);
    constraints = [];
    alpha_box = Cv_interval.Box.uniform d ~lo:(-1.) ~hi:1. }

(* Bounds of the affine form [offset + row·α] over the predicate set,
   via LP (falling back to interval evaluation when the LP misbehaves
   numerically — the interval bound is always sound). *)
let form_bounds s ~row ~offset =
  let interval_bound () =
    let acc = ref (Cv_interval.Interval.point offset) in
    Array.iteri
      (fun j r ->
        if r <> 0. then
          acc :=
            Cv_interval.Interval.add !acc
              (Cv_interval.Interval.scale r (Cv_interval.Box.get s.alpha_box j)))
      row;
    !acc
  in
  if s.constraints = [] then interval_bound ()
  else begin
    let m = num_predicates s in
    let solve maximize =
      let p = Cv_lp.Lp.create () in
      let vars =
        Array.init m (fun j ->
            let iv = Cv_interval.Box.get s.alpha_box j in
            Cv_lp.Lp.add_var p ~lo:(Cv_interval.Interval.lo iv)
              ~hi:(Cv_interval.Interval.hi iv) ())
      in
      List.iter
        (fun (coeffs, q) ->
          let terms =
            List.filter_map
              (fun j -> if coeffs.(j) = 0. then None else Some (coeffs.(j), vars.(j)))
              (List.init m Fun.id)
          in
          Cv_lp.Lp.add_constraint p terms Cv_lp.Lp.Le q)
        s.constraints;
      let terms =
        List.filter_map
          (fun j -> if row.(j) = 0. then None else Some (row.(j), vars.(j)))
          (List.init m Fun.id)
      in
      if terms = [] then Some offset
      else begin
        Cv_lp.Lp.set_objective p ~maximize terms;
        match Cv_lp.Lp.solve p with
        | Cv_lp.Lp.Optimal sol -> Some (offset +. sol.Cv_lp.Lp.objective)
        | _ -> None
      end
    in
    match (solve false, solve true) with
    | Some lo, Some hi when lo <= hi +. 1e-9 ->
      Cv_interval.Interval.make (Float.min lo hi) (Float.max lo hi)
    | _ -> interval_bound ()
  end

let neuron_interval s i =
  form_bounds s ~row:(Cv_linalg.Mat.row s.basis i) ~offset:s.center.(i)

let to_box s = Array.init (dim s) (neuron_interval s)

let affine w b s =
  if Cv_linalg.Mat.cols w <> dim s then invalid_arg "Starset.affine: dims";
  { s with
    center = Cv_linalg.Mat.matvec_add w s.center b;
    basis = Cv_linalg.Mat.matmul w s.basis }

(* Widen a row vector to m' columns. *)
let pad row m' =
  let r = Array.make m' 0. in
  Array.blit row 0 r 0 (Array.length row);
  r

(* Approx-star ReLU: one pass, adding a predicate variable per unstable
   neuron. *)
let relu s =
  let d = dim s in
  let pre = to_box s in
  let unstable =
    List.filter
      (fun i ->
        let iv = pre.(i) in
        Cv_interval.Interval.lo iv < 0. && Cv_interval.Interval.hi iv > 0.)
      (List.init d Fun.id)
  in
  let m = num_predicates s in
  let m' = m + List.length unstable in
  let center = Array.copy s.center in
  let basis = Cv_linalg.Mat.init d m' (fun i j -> if j < m then Cv_linalg.Mat.get s.basis i j else 0.) in
  let constraints = ref (List.map (fun (p, q) -> (pad p m', q)) s.constraints) in
  let alpha_lo = Array.make m' 0. and alpha_hi = Array.make m' 0. in
  Array.iteri
    (fun j iv ->
      alpha_lo.(j) <- Cv_interval.Interval.lo iv;
      alpha_hi.(j) <- Cv_interval.Interval.hi iv)
    s.alpha_box;
  let next = ref m in
  List.iter
    (fun i ->
      let iv = pre.(i) in
      let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
      let j_new = !next in
      incr next;
      let slope = u /. (u -. l) in
      (* Old affine form of neuron i. *)
      let row_i = pad (Cv_linalg.Mat.row s.basis i) m' in
      let c_i = s.center.(i) in
      (* y = α_new with: α_new ≥ 0 (box), α_new ≥ x_i, α_new ≤ s(x_i − l). *)
      let ge_x =
        (* x_i − α_new ≤ −c_i + ... : row_i·α − α_new ≤ −c_i *)
        let p = Array.copy row_i in
        p.(j_new) <- -1.;
        (p, -.c_i)
      in
      let le_chord =
        (* α_new − s·row_i·α ≤ s(c_i − l) − 0·... :
           α_new ≤ s(x_i − l) = s(c_i + row_i·α − l) *)
        let p = Array.map (fun v -> -.slope *. v) row_i in
        p.(j_new) <- 1.;
        (p, slope *. (c_i -. l))
      in
      constraints := ge_x :: le_chord :: !constraints;
      alpha_lo.(j_new) <- 0.;
      alpha_hi.(j_new) <- u;
      (* Rewire neuron i to the new variable. *)
      center.(i) <- 0.;
      for j = 0 to m' - 1 do
        Cv_linalg.Mat.set basis i j (if j = j_new then 1. else 0.)
      done)
    unstable;
  (* Inactive neurons collapse to zero. *)
  Array.iteri
    (fun i iv ->
      if Cv_interval.Interval.hi iv <= 0. then begin
        center.(i) <- 0.;
        for j = 0 to m' - 1 do
          Cv_linalg.Mat.set basis i j 0.
        done
      end)
    pre;
  { center;
    basis;
    constraints = !constraints;
    alpha_box = Cv_interval.Box.of_bounds alpha_lo alpha_hi }

(* Other monotone activations: concretise (constant star). *)
let monotone_concrete act s =
  let imgs = Array.map (Cv_nn.Activation.interval act) (to_box s) in
  of_box imgs

let apply_layer (l : Cv_nn.Layer.t) s =
  let pre = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias s in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu pre
  | Cv_nn.Activation.Identity -> pre
  | (Cv_nn.Activation.Leaky_relu _ | Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh)
    as act ->
    monotone_concrete act pre

(* The basis product already runs on the blocked [Mat.matmul]; a star
   step is LP-dominated, so the prepared path just reuses the source
   layer. *)
let apply_prepared (p : Cv_nn.Layer.prepared) s = apply_layer p.Cv_nn.Layer.source s
