(** Star sets (Tran et al., FM 2019), over-approximating variant:
    [{ c + V α | P α ≤ q, α ∈ αbox }]. Affine layers are exact; an
    unstable ReLU adds one predicate variable with the triangle
    relaxation; concretisation solves two LPs per neuron — the most
    precise and most expensive of the transformer family. *)

type t

val name : string

val dim : t -> int

(** [num_predicates s] is the predicate-variable count (grows by one per
    unstable ReLU). *)
val num_predicates : t -> int

val of_box : Cv_interval.Box.t -> t

val apply_layer : Cv_nn.Layer.t -> t -> t

val apply_prepared : Cv_nn.Layer.prepared -> t -> t

val to_box : t -> Cv_interval.Box.t
