(** The interval (box) abstract domain: per-neuron lower/upper bounds
    with no relational information — the "boxed abstraction" of the
    paper's Figure 2 example and the baseline of the precision
    ablation. *)

type t = Cv_interval.Box.t

val name : string

val of_box : Cv_interval.Box.t -> t

val apply_layer : Cv_nn.Layer.t -> t -> t

val apply_prepared : Cv_nn.Layer.prepared -> t -> t

val to_box : t -> Cv_interval.Box.t

val dim : t -> int
