(** Symbolic interval analysis in the style of ReluVal / Neurify.

    Each neuron carries two symbolic linear expressions over the network
    inputs — a lower and an upper bound — together with the input box
    needed to concretise them. Affine layers propagate the expressions
    exactly (sign-splitting per weight); unstable ReLUs relax the upper
    expression by the standard triangle slope and drop the lower to 0.
    This is the domain the paper's experiment uses (via the ReluVal
    tool) to produce its per-neuron state abstractions.

    Representation: the per-neuron coefficient rows are flattened into
    two row-major matrices (lower/upper, [n × in_dim]) with separate
    constant vectors, so an affine step is one fused
    {!Cv_linalg.Mat.gemm_select_into} instead of [n] per-neuron
    coefficient walks over boxed records. The affine combination
    visits weights in exactly the historical order (per output row,
    ascending weight index, zeros skipped), so results are bitwise
    identical to the record-based implementation. *)

type t = {
  input : Cv_interval.Box.t;  (** box over which expressions concretise *)
  ilo : float array;  (** cached input lower bounds *)
  ihi : float array;  (** cached input upper bounds *)
  lower_c : Cv_linalg.Mat.t;  (** [n × in_dim] lower-bound coefficients *)
  lower_k : float array;  (** lower-bound constants *)
  upper_c : Cv_linalg.Mat.t;  (** [n × in_dim] upper-bound coefficients *)
  upper_k : float array;  (** upper-bound constants *)
}

let name = "symint"

let dim a = Array.length a.lower_k

(* Concretise row [i] of a coefficient matrix with constant [k] over the
   cached input bounds (exact: split coefficients by sign; [>= 0.]
   branch and ascending-index accumulation as in the historical
   concretize_linexp). Returns [(lo, hi)]. *)
let row_interval md cols ilo ihi k i =
  let base = i * cols in
  let lo = ref k and hi = ref k in
  for j = 0 to cols - 1 do
    let c = Array.unsafe_get md (base + j) in
    if c >= 0. then begin
      lo := !lo +. (c *. Array.unsafe_get ilo j);
      hi := !hi +. (c *. Array.unsafe_get ihi j)
    end
    else begin
      lo := !lo +. (c *. Array.unsafe_get ihi j);
      hi := !hi +. (c *. Array.unsafe_get ilo j)
    end
  done;
  (!lo, !hi)

(* Concrete interval of one neuron: lower bound of the lower expression,
   upper bound of the upper expression. *)
let neuron_bounds a i =
  let in_dim = Array.length a.ilo in
  let lo, _ =
    row_interval (Cv_linalg.Mat.unsafe_data a.lower_c) in_dim a.ilo a.ihi
      a.lower_k.(i) i
  in
  let _, hi =
    row_interval (Cv_linalg.Mat.unsafe_data a.upper_c) in_dim a.ilo a.ihi
      a.upper_k.(i) i
  in
  (lo, hi)

let neuron_interval a i =
  let lo, hi = neuron_bounds a i in
  (* Float relaxations can cross by a few ulps; normalise. *)
  if lo > hi then Cv_interval.Interval.point (0.5 *. (lo +. hi))
  else Cv_interval.Interval.make lo hi

let of_box b =
  let n = Cv_interval.Box.dim b in
  { input = b;
    ilo = Cv_interval.Box.lower b;
    ihi = Cv_interval.Box.upper b;
    lower_c = Cv_linalg.Mat.identity n;
    lower_k = Array.make n 0.;
    upper_c = Cv_linalg.Mat.identity n;
    upper_k = Array.make n 0. }

(* Affine image: the output's lower expression combines input lower
   expressions on positive weights and upper ones on negative weights
   (zeros skipped); dually for the output's upper expression. *)
let affine (w : Cv_linalg.Mat.t) bias a =
  let rows = Cv_linalg.Mat.rows w and cols = Cv_linalg.Mat.cols w in
  if cols <> dim a then invalid_arg "Symint.affine: dimension mismatch";
  if Array.length bias <> rows then invalid_arg "Symint.affine: bias dim";
  let in_dim = Array.length a.ilo in
  let lower_c = Cv_linalg.Mat.zeros rows in_dim in
  let upper_c = Cv_linalg.Mat.zeros rows in_dim in
  Cv_linalg.Mat.gemm_select_into ~dst:lower_c w ~pos_src:a.lower_c
    ~neg_src:a.upper_c;
  Cv_linalg.Mat.gemm_select_into ~dst:upper_c w ~pos_src:a.upper_c
    ~neg_src:a.lower_c;
  let lower_k = Array.copy bias and upper_k = Array.copy bias in
  Cv_linalg.Mat.gemv_select_acc w ~pos:a.lower_k ~neg:a.upper_k ~acc:lower_k;
  Cv_linalg.Mat.gemv_select_acc w ~pos:a.upper_k ~neg:a.lower_k ~acc:upper_k;
  { a with lower_c; lower_k; upper_c; upper_k }

(* ReLU on the symbolic element. *)
let relu a =
  let n = dim a in
  let in_dim = Array.length a.ilo in
  let src_l = Cv_linalg.Mat.unsafe_data a.lower_c in
  let src_u = Cv_linalg.Mat.unsafe_data a.upper_c in
  let lower_c = Cv_linalg.Mat.zeros n in_dim in
  let upper_c = Cv_linalg.Mat.zeros n in_dim in
  let dst_l = Cv_linalg.Mat.unsafe_data lower_c in
  let dst_u = Cv_linalg.Mat.unsafe_data upper_c in
  let lower_k = Array.make n 0. and upper_k = Array.make n 0. in
  for i = 0 to n - 1 do
    let l, _ = row_interval src_l in_dim a.ilo a.ihi a.lower_k.(i) i in
    let l_u, u = row_interval src_u in_dim a.ilo a.ihi a.upper_k.(i) i in
    let base = i * in_dim in
    if l >= 0. then begin
      Array.blit src_l base dst_l base in_dim;
      Array.blit src_u base dst_u base in_dim;
      lower_k.(i) <- a.lower_k.(i);
      upper_k.(i) <- a.upper_k.(i)
    end
    else if u <= 0. then ()
    else begin
      (* Unstable: lower := 0. For the upper expression, let [l_u, u] be
         its own concrete range. ReLU(z(x)) ≤ ReLU(ub(x)); when l_u ≥ 0
         that is just ub(x), otherwise the chord s(t − l_u) with
         s = u/(u − l_u) over-approximates ReLU(t) on [l_u, u] (ReLU is
         convex), applied at t = ub(x). *)
      if l_u >= 0. then begin
        Array.blit src_u base dst_u base in_dim;
        upper_k.(i) <- a.upper_k.(i)
      end
      else begin
        let s = if u -. l_u <= 0. then 0. else u /. (u -. l_u) in
        for j = base to base + in_dim - 1 do
          Array.unsafe_set dst_u j (s *. Array.unsafe_get src_u j)
        done;
        upper_k.(i) <- s *. (a.upper_k.(i) -. l_u)
      end
    end
  done;
  { a with lower_c; lower_k; upper_c; upper_k }

(* Monotone non-linearities other than ReLU: fall back to concrete
   intervals (constant expressions). Sound, loses the symbolic part. *)
let monotone_concrete act a =
  let n = dim a in
  let in_dim = Array.length a.ilo in
  let lower_k = Array.make n 0. and upper_k = Array.make n 0. in
  for i = 0 to n - 1 do
    let iv = Cv_nn.Activation.interval act (neuron_interval a i) in
    lower_k.(i) <- Cv_interval.Interval.lo iv;
    upper_k.(i) <- Cv_interval.Interval.hi iv
  done;
  { a with
    lower_c = Cv_linalg.Mat.zeros n in_dim;
    upper_c = Cv_linalg.Mat.zeros n in_dim;
    lower_k;
    upper_k }

(* Leaky ReLU: for stable neurons exact; unstable neurons fall back to
   concrete bounds (sound and simple; the verified head uses plain
   ReLU). *)
let leaky_relu slope a =
  let n = dim a in
  let his = Array.init n (fun i -> Cv_interval.Interval.hi (neuron_interval a i)) in
  let los = Array.init n (fun i -> Cv_interval.Interval.lo (neuron_interval a i)) in
  let changed = ref false in
  for i = 0 to n - 1 do
    if los.(i) < 0. && his.(i) > 0. then changed := true
  done;
  if not !changed then begin
    (* All neurons stable: negative ones scale by slope, positive ones
       pass through. *)
    let in_dim = Array.length a.ilo in
    let lower_c = Cv_linalg.Mat.copy a.lower_c in
    let upper_c = Cv_linalg.Mat.copy a.upper_c in
    let lower_k = Array.copy a.lower_k and upper_k = Array.copy a.upper_k in
    let dl = Cv_linalg.Mat.unsafe_data lower_c in
    let du = Cv_linalg.Mat.unsafe_data upper_c in
    for i = 0 to n - 1 do
      if his.(i) <= 0. then begin
        let base = i * in_dim in
        for j = base to base + in_dim - 1 do
          Array.unsafe_set dl j (slope *. Array.unsafe_get dl j);
          Array.unsafe_set du j (slope *. Array.unsafe_get du j)
        done;
        lower_k.(i) <- slope *. lower_k.(i);
        upper_k.(i) <- slope *. upper_k.(i)
      end
    done;
    { a with lower_c; lower_k; upper_c; upper_k }
  end
  else monotone_concrete (Cv_nn.Activation.Leaky_relu slope) a

let apply_layer (l : Cv_nn.Layer.t) a =
  let pre = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias a in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu pre
  | Cv_nn.Activation.Identity -> pre
  | Cv_nn.Activation.Leaky_relu slope -> leaky_relu slope pre
  | (Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh) as act ->
    monotone_concrete act pre

let apply_prepared (p : Cv_nn.Layer.prepared) a = apply_layer p.Cv_nn.Layer.source a

let to_box a = Array.init (dim a) (neuron_interval a)
