(** A DeepPoly-style polyhedral domain (Singh et al., POPL 2019).

    Every neuron keeps one lower and one upper {e linear} bound in terms
    of the previous node's neurons; concrete bounds are recovered by
    backsubstituting those bounds through all earlier nodes down to the
    input box. More precise than box and typically than zonotope on ReLU
    networks, at higher transformer cost — the top end of the precision
    ablation in the benches.

    Internally a network layer [x ↦ act (W x + b)] contributes an affine
    node and, for non-identity activations, an activation node.

    Node coefficients are tagged {!Dense} (affine nodes — the layer's
    own weight matrix, shared, never copied) or {!Diag} (activation
    nodes — per-neuron slopes). Backsubstitution through a [Diag] node
    is an elementwise column scale+select (O(m·n) instead of the
    historical O(m·n²) dense products against an all-but-diagonal-zero
    matrix), and through a [Dense] node a single fused
    {!Cv_linalg.Mat.gemm_select_into} replaces the historical
    split-into-pos/neg allocation plus two products. All scratch
    expressions live in a per-domain {!Cv_linalg.Workspace}, so a
    steady-state propagation round allocates only the nodes it
    returns. *)

type coeffs =
  | Dense of Cv_linalg.Mat.t
  | Diag of float array  (** diagonal matrix, stored as its diagonal *)

type node = {
  lw : coeffs;  (** lower-bound coefficients over previous node *)
  lb : Cv_linalg.Vec.t;  (** lower-bound constants *)
  uw : coeffs;  (** upper-bound coefficients over previous node *)
  ub : Cv_linalg.Vec.t;  (** upper-bound constants *)
  bounds : Cv_interval.Box.t;  (** concrete bounds of this node's neurons *)
}

type t = {
  input : Cv_interval.Box.t;
  ilo : float array;  (** cached input lower bounds *)
  ihi : float array;  (** cached input upper bounds *)
  nodes : node list;  (** reverse order: head = most recent node *)
}

let name = "deeppoly"

let current_box a =
  match a.nodes with [] -> a.input | n :: _ -> n.bounds

let dim a = Cv_interval.Box.dim (current_box a)

let of_box b =
  { input = b;
    ilo = Cv_interval.Box.lower b;
    ihi = Cv_interval.Box.upper b;
    nodes = [] }

let to_box a = current_box a

(* ------------------------------------------------------------------ *)
(* Backsubstitution.

   The running expression [(A, c)] ("value ≤ A x_node + c" for the
   upper direction, dually for the lower) is rewritten node by node
   towards the input. Its coefficients are [Diag] while only activation
   nodes have been crossed and turn [Dense] at the first affine node.

   Scratch layout in the per-domain workspace: each direction owns a
   four-slot band (dense ping/pong, diagonal buffer, constants), and
   the two concrete result vectors share two more slots. Ping/pong
   alternation guarantees the gemm destination never aliases the
   current expression. *)

let ws_key = Domain.DLS.new_key Cv_linalg.Workspace.create

let slot_his = 8
let slot_los = 9

(* Substitution selects, per expression coefficient, the node's upper or
   lower bound depending on the coefficient sign; [pw, pb] is the bound
   picked for positive coefficients and [nw, nb] for negative ones
   (upper direction: [pw = node.uw]; lower direction: [pw = node.lw]). *)

(* Diag expression through a Dense node: row scale+select. *)
let subst_diag_dense ~dst d c (pw : Cv_linalg.Mat.t) pb nw nb =
  let m = Array.length d in
  let n = Cv_linalg.Mat.cols pw in
  let dd = Cv_linalg.Mat.unsafe_data dst in
  let pd = Cv_linalg.Mat.unsafe_data pw in
  let nd = Cv_linalg.Mat.unsafe_data nw in
  for i = 0 to m - 1 do
    let di = Array.unsafe_get d i in
    let rbase = i * n in
    if di > 0. then begin
      for j = 0 to n - 1 do
        Array.unsafe_set dd (rbase + j) (di *. Array.unsafe_get pd (rbase + j))
      done;
      c.(i) <- c.(i) +. (di *. pb.(i))
    end
    else if di < 0. then begin
      for j = 0 to n - 1 do
        Array.unsafe_set dd (rbase + j) (di *. Array.unsafe_get nd (rbase + j))
      done;
      c.(i) <- c.(i) +. (di *. nb.(i))
    end
    else Array.fill dd rbase n 0.
  done

(* Dense expression through a Diag node: column scale+select, constants
   folded in the same pass. *)
let subst_dense_diag ~dst (a : Cv_linalg.Mat.t) c pdiag pb ndiag nb =
  let m = Cv_linalg.Mat.rows a and n = Cv_linalg.Mat.cols a in
  let ad = Cv_linalg.Mat.unsafe_data a in
  let dd = Cv_linalg.Mat.unsafe_data dst in
  for i = 0 to m - 1 do
    let rbase = i * n in
    let s = ref c.(i) in
    for j = 0 to n - 1 do
      let x = Array.unsafe_get ad (rbase + j) in
      if x > 0. then begin
        Array.unsafe_set dd (rbase + j) (x *. Array.unsafe_get pdiag j);
        s := !s +. (x *. Array.unsafe_get pb j)
      end
      else if x < 0. then begin
        Array.unsafe_set dd (rbase + j) (x *. Array.unsafe_get ndiag j);
        s := !s +. (x *. Array.unsafe_get nb j)
      end
      else Array.unsafe_set dd (rbase + j) 0.
    done;
    c.(i) <- !s
  done

(* Evaluate the final expression over the input box into [out]: upper
   direction takes per-coefficient worst case towards [ihi]. Branches on
   [w >= 0.] exactly like the historical eval. *)
let eval_dense (a : Cv_linalg.Mat.t) c ~pos_b ~neg_b out =
  let m = Cv_linalg.Mat.rows a and n = Cv_linalg.Mat.cols a in
  let ad = Cv_linalg.Mat.unsafe_data a in
  for i = 0 to m - 1 do
    let rbase = i * n in
    let acc = ref c.(i) in
    for j = 0 to n - 1 do
      let w = Array.unsafe_get ad (rbase + j) in
      acc :=
        !acc
        +.
        if w >= 0. then w *. Array.unsafe_get pos_b j
        else w *. Array.unsafe_get neg_b j
    done;
    out.(i) <- !acc
  done

let eval_diag d c ~pos_b ~neg_b out =
  for i = 0 to Array.length d - 1 do
    let w = d.(i) in
    out.(i) <-
      c.(i) +. (if w >= 0. then w *. pos_b.(i) else w *. neg_b.(i))
  done

(* Backsubstitute one direction: [upper = true] tracks upper bounds.
   [cw, cb] is the candidate node's bound. Writes concrete values into
   [out] (a workspace vector owned by the caller). *)
let backsub ws ~base ~upper ~ilo ~ihi nodes cw cb out =
  let m = Array.length cb in
  let c = Cv_linalg.Workspace.vec ws ~slot:(base + 3) m in
  Array.blit cb 0 c 0 m;
  let cur = ref cw in
  (* Ping/pong between the two dense slots of this direction's band, so
     a substitution's destination never aliases its source. *)
  let ping = ref 0 in
  let next_dense rows cols =
    let dst = Cv_linalg.Workspace.mat ws ~slot:(base + !ping) ~rows ~cols in
    ping := 1 - !ping;
    dst
  in
  let rec down = function
    | [] -> ()
    | node :: rest ->
      let pw, pb, nw, nb =
        if upper then (node.uw, node.ub, node.lw, node.lb)
        else (node.lw, node.lb, node.uw, node.ub)
      in
      (match (!cur, pw, nw) with
      | Diag d, Dense pm, Dense nm ->
        let dst = next_dense (Array.length d) (Cv_linalg.Mat.cols pm) in
        subst_diag_dense ~dst d c pm pb nm nb;
        cur := Dense dst
      | Diag d, Diag pd, Diag nd ->
        let m' = Array.length d in
        let buf = Cv_linalg.Workspace.vec ws ~slot:(base + 2) m' in
        for i = 0 to m' - 1 do
          let di = d.(i) in
          if di > 0. then begin
            buf.(i) <- di *. pd.(i);
            c.(i) <- c.(i) +. (di *. pb.(i))
          end
          else if di < 0. then begin
            buf.(i) <- di *. nd.(i);
            c.(i) <- c.(i) +. (di *. nb.(i))
          end
          else buf.(i) <- 0.
        done;
        cur := Diag buf
      | Dense a, Diag pd, Diag nd ->
        let dst = next_dense (Cv_linalg.Mat.rows a) (Cv_linalg.Mat.cols a) in
        subst_dense_diag ~dst a c pd pb nd nb;
        cur := Dense dst
      | Dense a, Dense pm, Dense nm ->
        (* Constants first (selection reads the pre-substitution signs),
           then the fused sign-select product into the other ping slot. *)
        Cv_linalg.Mat.gemv_select_acc a ~pos:pb ~neg:nb ~acc:c;
        let dst = next_dense (Cv_linalg.Mat.rows a) (Cv_linalg.Mat.cols pm) in
        Cv_linalg.Mat.gemm_select_into ~dst a ~pos_src:pm ~neg_src:nm;
        cur := Dense dst
      | _ ->
        (* Mixed-tag bounds on one node never occur: nodes are built
           with lw/uw of the same kind. *)
        invalid_arg "Deeppoly.backsub: mixed node coefficients");
      down rest
  in
  down nodes;
  let pos_b, neg_b = if upper then (ihi, ilo) else (ilo, ihi) in
  (match !cur with
  | Dense a -> eval_dense a c ~pos_b ~neg_b out
  | Diag d -> eval_diag d c ~pos_b ~neg_b out)

(* Concrete bounds for a candidate node appended after [nodes]: full
   backsubstitution to the input. *)
let concretize a ~lw ~lb ~uw ~ub =
  let ws = Domain.DLS.get ws_key in
  let m = Array.length ub in
  let his = Cv_linalg.Workspace.vec ws ~slot:slot_his m in
  let los = Cv_linalg.Workspace.vec ws ~slot:slot_los m in
  backsub ws ~base:0 ~upper:true ~ilo:a.ilo ~ihi:a.ihi a.nodes uw ub his;
  backsub ws ~base:4 ~upper:false ~ilo:a.ilo ~ihi:a.ihi a.nodes lw lb los;
  Array.init m (fun i ->
      (* Guard against ulp-level crossing of the two relaxations. *)
      if los.(i) > his.(i) then
        Cv_interval.Interval.point (0.5 *. (los.(i) +. his.(i)))
      else Cv_interval.Interval.make los.(i) his.(i))

let push a ~lw ~lb ~uw ~ub =
  let bounds = concretize a ~lw ~lb ~uw ~ub in
  { a with nodes = { lw; lb; uw; ub; bounds } :: a.nodes }

let affine w bias a =
  if Cv_linalg.Mat.cols w <> dim a then invalid_arg "Deeppoly.affine: dims";
  push a ~lw:(Dense w) ~lb:bias ~uw:(Dense w) ~ub:bias

(* ReLU node: per-neuron diagonal bounds chosen from the pre-activation
   concrete range [l, u]. *)
let relu a =
  let pre = current_box a in
  let n = Cv_interval.Box.dim pre in
  let lw = Array.make n 0. and uw = Array.make n 0. in
  let lb = Array.make n 0. and ub = Array.make n 0. in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get pre i in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if l >= 0. then begin
      lw.(i) <- 1.;
      uw.(i) <- 1.
    end
    else if u <= 0. then ()
    else begin
      (* Upper: chord u(x − l)/(u − l). Lower: λx with λ ∈ {0,1} by the
         smaller-area heuristic. *)
      let s = u /. (u -. l) in
      uw.(i) <- s;
      ub.(i) <- -.s *. l;
      if u > -.l then lw.(i) <- 1.
    end
  done;
  push a ~lw:(Diag lw) ~lb ~uw:(Diag uw) ~ub

(* Other activations: concrete interval node (coefficients zero). *)
let monotone_concrete act a =
  let pre = current_box a in
  let imgs = Array.map (Cv_nn.Activation.interval act) pre in
  let n = Array.length imgs in
  let zeros = Array.make n 0. in
  push a ~lw:(Diag zeros)
    ~lb:(Array.map Cv_interval.Interval.lo imgs)
    ~uw:(Diag zeros)
    ~ub:(Array.map Cv_interval.Interval.hi imgs)

let apply_layer (l : Cv_nn.Layer.t) a =
  let a = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias a in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu a
  | Cv_nn.Activation.Identity -> a
  | (Cv_nn.Activation.Leaky_relu _ | Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh)
    as act ->
    monotone_concrete act a

let apply_prepared (p : Cv_nn.Layer.prepared) a =
  apply_layer p.Cv_nn.Layer.source a
