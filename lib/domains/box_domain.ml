(** The interval (box) abstract domain.

    The cheapest and least precise transformer: per-neuron lower/upper
    bounds with no relational information. This is the "boxed
    abstraction" the paper's Figure 2 example uses for its interval
    analysis, and the baseline in the precision ablation.

    The prepared path runs the branchless {!Cv_linalg.Mat.gemv_posneg}
    kernel over the layer's memoized sign split, with the bound vectors
    staged in a per-domain workspace — steady-state propagation
    allocates only the result box. *)

type t = Cv_interval.Box.t

let name = "box"

let of_box b = b

let ws_key = Domain.DLS.new_key Cv_linalg.Workspace.create

let apply_prepared (p : Cv_nn.Layer.prepared) b =
  let l = p.Cv_nn.Layer.source in
  let w = l.Cv_nn.Layer.weights in
  let n = Cv_linalg.Mat.cols w and m = Cv_linalg.Mat.rows w in
  if n <> Cv_interval.Box.dim b then
    invalid_arg "Box_domain.apply_prepared: dimension mismatch";
  let ws = Domain.DLS.get ws_key in
  let lo = Cv_linalg.Workspace.vec ws ~slot:0 n in
  let hi = Cv_linalg.Workspace.vec ws ~slot:1 n in
  let finite = ref true in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get b i in
    let l = Cv_interval.Interval.lo iv and h = Cv_interval.Interval.hi iv in
    lo.(i) <- l;
    hi.(i) <- h;
    if not (Float.is_finite l && Float.is_finite h) then finite := false
  done;
  let dst_lo = Cv_linalg.Workspace.vec ws ~slot:2 m in
  let dst_hi = Cv_linalg.Workspace.vec ws ~slot:3 m in
  (* The branchless split kernel would turn 0 · ±inf into NaN; unbounded
     boxes take the sign-branching kernel instead (same values on finite
     input). *)
  if !finite then
    Cv_linalg.Mat.gemv_posneg ~pos:p.Cv_nn.Layer.w_pos ~neg:p.Cv_nn.Layer.w_neg
      ~bias:l.Cv_nn.Layer.bias ~lo ~hi ~dst_lo ~dst_hi
  else
    Cv_linalg.Mat.gemv_interval_into w ~bias:l.Cv_nn.Layer.bias ~lo ~hi ~dst_lo
      ~dst_hi;
  let act = l.Cv_nn.Layer.act in
  Array.init m (fun i ->
      Cv_nn.Activation.interval act (Cv_interval.Interval.make dst_lo.(i) dst_hi.(i)))

let apply_layer (l : Cv_nn.Layer.t) b = apply_prepared (Cv_nn.Layer.prepare l) b

let to_box b = b

let dim = Cv_interval.Box.dim
