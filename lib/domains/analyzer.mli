(** Layer-wise state-abstraction generation.

    Folding an abstract domain over a network yields the paper's proof
    artifact: inductive state abstractions [S_1..S_n] as boxes
    (per-neuron lower/upper valuations, as ReluVal produces in the
    paper's experiment). See DESIGN.md for the inductivity subtlety. *)

module Make (D : Transformer.DOMAIN) : sig
  (** [abstractions ?deadline ?widen net din] computes inductive state
      abstractions [S_1..S_n] as boxes: [S_{i+1}] is the domain's image
      of the box [S_i], optionally widened by the absolute slack
      [widen] per neuron (default 0). Widening keeps the chain inductive
      while leaving room for fine-tuning drift. The optional [deadline]
      is polled once per layer; raises {!Cv_util.Deadline.Expired} on
      budget exhaustion. *)
  val abstractions :
    ?deadline:Cv_util.Deadline.t ->
    ?widen:float ->
    Cv_nn.Network.t ->
    Cv_interval.Box.t ->
    Cv_interval.Box.t array

  (** [abstractions_through net din] carries the abstract value through
      all layers (tighter boxes, but only end-to-end containment is
      guaranteed — not the per-layer box induction). *)
  val abstractions_through :
    Cv_nn.Network.t -> Cv_interval.Box.t -> Cv_interval.Box.t array

  (** [output_box ?deadline net din] is the concretised network output
      reach (relational value carried through; [deadline] polled per
      layer). *)
  val output_box :
    ?deadline:Cv_util.Deadline.t ->
    Cv_nn.Network.t ->
    Cv_interval.Box.t ->
    Cv_interval.Box.t

  (** [verify ?deadline net ~din ~dout] — one-shot abstract
      verification. *)
  val verify :
    ?deadline:Cv_util.Deadline.t ->
    Cv_nn.Network.t ->
    din:Cv_interval.Box.t ->
    dout:Cv_interval.Box.t ->
    bool

  val name : string
end

module Box_analysis : module type of Make (Box_domain)

module Symint_analysis : module type of Make (Symint)

module Zonotope_analysis : module type of Make (Zonotope)

module Deeppoly_analysis : module type of Make (Deeppoly)

module Star_analysis : module type of Make (Starset)

(** Runtime-selectable domain for CLI/benches. *)
type domain_kind = Box | Symint | Zonotope | Deeppoly | Star

(** [domain_of_string s] parses a domain name; raises [Invalid_argument]
    on unknown names. *)
val domain_of_string : string -> domain_kind

(** [domain_name k] is the printable name. *)
val domain_name : domain_kind -> string

(** Dispatchers over {!domain_kind}. *)
val abstractions :
  ?deadline:Cv_util.Deadline.t ->
  ?widen:float ->
  domain_kind ->
  Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  Cv_interval.Box.t array

val output_box :
  ?deadline:Cv_util.Deadline.t ->
  domain_kind ->
  Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  Cv_interval.Box.t

val verify :
  ?deadline:Cv_util.Deadline.t ->
  domain_kind ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  bool
