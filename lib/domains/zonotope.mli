(** The zonotope abstract domain (DeepZ-style transformers): affine
    images of hypercubes, [{ c + G ε | ε ∈ [-1,1]^m }]. Affine layers
    are exact; unstable ReLUs use the minimal-area relaxation with one
    fresh noise symbol per unstable neuron. Generators are stored in one
    flat row-major matrix, so an affine layer is a single blocked gemm
    and concretisation is one pass; bounds are bitwise identical to the
    historical per-row representation. *)

type t

val name : string

val dim : t -> int

val of_box : Cv_interval.Box.t -> t

val apply_layer : Cv_nn.Layer.t -> t -> t

val apply_prepared : Cv_nn.Layer.prepared -> t -> t

val to_box : t -> Cv_interval.Box.t

(** [deviation z i] is the per-dimension deviation (sum of absolute
    generator entries at dimension [i]); the full vector is computed in
    one pass over the generator store and memoized on the element. *)
val deviation : t -> int -> float

(** [num_generators z] — growth diagnostic. *)
val num_generators : t -> int

(** [reduce_order ~max_generators z] replaces the smallest generators by
    their box over-approximation when the budget is exceeded; sound (the
    result contains the original zonotope). *)
val reduce_order : max_generators:int -> t -> t
