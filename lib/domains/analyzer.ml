(** Layer-wise state-abstraction generation.

    Folding an abstract domain over a network yields exactly the paper's
    proof artifact: state abstractions [S_1, …, S_n] with
    [∀x ∈ D_in, g_1(x) ∈ S_1], [∀x_i ∈ S_i, g_{i+1}(x_i) ∈ S_{i+1}]
    (by transformer soundness and monotonicity over the recorded boxes),
    and the safety check [S_n ⊆ D_out].

    The recorded [S_i] are boxes (per-neuron lower/upper valuations, as
    produced by ReluVal in the paper's experiment). Note the subtlety:
    the inductive property "[S_i] steps into [S_{i+1}]" must hold for the
    {e box} [S_i], not merely for the more precise abstract value passing
    through — so {!abstractions} re-launches the domain from [to_box] at
    every layer, which is sound and gives boxes satisfying the paper's
    definition. {!abstractions_through} instead carries the abstract
    value through (tighter boxes, but inductive only w.r.t. the carried
    relational value); both are exposed because the reuse propositions
    need the former while falsification diagnostics favour the latter.

    Every entry point resolves the network's layers to their memoized
    kernel-ready form ({!Cv_nn.Network.prepared}) once and drives the
    domain through [apply_prepared], and accounts the bytes it allocated
    under the [kernel.bytes_alloc] counter (a [Gc.allocated_bytes]
    delta) — the regression guard for the allocation-free kernel
    claim. *)

let m_bytes = Cv_util.Metrics.counter "kernel.bytes_alloc"

(* Charge the bytes allocated by [f] (in this domain) to
   [kernel.bytes_alloc]. *)
let with_alloc_gauge f =
  let b0 = Gc.allocated_bytes () in
  Fun.protect
    ~finally:(fun () ->
      let d = Gc.allocated_bytes () -. b0 in
      if d > 0. then Cv_util.Metrics.add m_bytes (int_of_float d))
    f

module Make (D : Transformer.DOMAIN) = struct
  (* Per-domain effort accounting under "domains.<name>.*": one [calls]
     tick per analysis entry point, one [layers] tick per layer
     transformer application, wall-clock accumulated in [seconds]. *)
  let m_calls = Cv_util.Metrics.counter ("domains." ^ D.name ^ ".calls")

  let m_layers = Cv_util.Metrics.counter ("domains." ^ D.name ^ ".layers")

  let t_seconds = Cv_util.Metrics.timer ("domains." ^ D.name ^ ".seconds")

  (** [abstractions ?widen net din] computes inductive state
      abstractions [S_1..S_n] as boxes: [S_{i+1}] is the domain's image
      of the box [S_i], optionally widened by the absolute slack
      [widen] on every neuron (default 0). Widening keeps the chain
      inductive — the image is a subset of its own widening — while
      leaving room for the parameter drift of later fine-tuning, the
      same engineering practice as the paper's "additional buffers" on
      [D_in]. *)
  let abstractions ?deadline ?(widen = 0.) net din =
    Cv_util.Metrics.incr m_calls;
    Cv_util.Metrics.time t_seconds @@ fun () ->
    with_alloc_gauge @@ fun () ->
    let prep = Cv_nn.Network.prepared net in
    let n = Array.length prep in
    let result = Array.make n [||] in
    let box = ref din in
    for i = 0 to n - 1 do
      Cv_util.Deadline.check_opt deadline;
      Cv_util.Metrics.incr m_layers;
      let s = D.to_box (D.apply_prepared prep.(i) (D.of_box !box)) in
      let s = if widen > 0. then Cv_interval.Box.expand widen s else s in
      result.(i) <- s;
      box := s
    done;
    result

  (** [abstractions_through net din] carries the abstract value through
      all layers, recording the concretisation after each — tighter, but
      only the end-to-end containment [eval x ∈ S_i] is guaranteed, not
      the per-layer box induction. *)
  let abstractions_through net din =
    Cv_util.Metrics.incr m_calls;
    Cv_util.Metrics.time t_seconds @@ fun () ->
    with_alloc_gauge @@ fun () ->
    let prep = Cv_nn.Network.prepared net in
    let n = Array.length prep in
    let result = Array.make n [||] in
    let a = ref (D.of_box din) in
    for i = 0 to n - 1 do
      Cv_util.Metrics.incr m_layers;
      a := D.apply_prepared prep.(i) !a;
      result.(i) <- D.to_box !a
    done;
    result

  (** [output_box net din] is the concretised network output reach
      (relational value carried through — the tightest this domain
      offers). *)
  let output_box ?deadline net din =
    Cv_util.Metrics.incr m_calls;
    Cv_util.Metrics.time t_seconds @@ fun () ->
    with_alloc_gauge @@ fun () ->
    let a =
      Array.fold_left
        (fun acc p ->
          Cv_util.Deadline.check_opt deadline;
          Cv_util.Metrics.incr m_layers;
          D.apply_prepared p acc)
        (D.of_box din)
        (Cv_nn.Network.prepared net)
    in
    D.to_box a

  (** [verify net ~din ~dout] is [true] when the carried-through output
      reach is contained in [dout] — one-shot abstract verification. *)
  let verify ?deadline net ~din ~dout =
    Cv_interval.Box.subset_tol (output_box ?deadline net din) dout

  let name = D.name
end

module Box_analysis = Make (Box_domain)
module Symint_analysis = Make (Symint)
module Zonotope_analysis = Make (Zonotope)
module Deeppoly_analysis = Make (Deeppoly)
module Star_analysis = Make (Starset)

(** Runtime-selectable domain for CLI/benches. *)
type domain_kind = Box | Symint | Zonotope | Deeppoly | Star

(** [domain_of_string s] parses a domain name. *)
let domain_of_string = function
  | "box" -> Box
  | "symint" -> Symint
  | "zonotope" -> Zonotope
  | "deeppoly" -> Deeppoly
  | "star" -> Star
  | s -> invalid_arg ("Analyzer.domain_of_string: " ^ s)

(** [domain_name k] is the printable name. *)
let domain_name = function
  | Box -> "box"
  | Symint -> "symint"
  | Zonotope -> "zonotope"
  | Deeppoly -> "deeppoly"
  | Star -> "star"

(** [abstractions ?deadline ?widen kind net din] dispatches
    {!Make.abstractions}. *)
let abstractions ?deadline ?widen kind net din =
  match kind with
  | Box -> Box_analysis.abstractions ?deadline ?widen net din
  | Symint -> Symint_analysis.abstractions ?deadline ?widen net din
  | Zonotope -> Zonotope_analysis.abstractions ?deadline ?widen net din
  | Deeppoly -> Deeppoly_analysis.abstractions ?deadline ?widen net din
  | Star -> Star_analysis.abstractions ?deadline ?widen net din

(** [output_box ?deadline kind net din] dispatches {!Make.output_box}. *)
let output_box ?deadline kind net din =
  match kind with
  | Box -> Box_analysis.output_box ?deadline net din
  | Symint -> Symint_analysis.output_box ?deadline net din
  | Zonotope -> Zonotope_analysis.output_box ?deadline net din
  | Deeppoly -> Deeppoly_analysis.output_box ?deadline net din
  | Star -> Star_analysis.output_box ?deadline net din

(** [verify ?deadline kind net ~din ~dout] dispatches {!Make.verify}. *)
let verify ?deadline kind net ~din ~dout =
  match kind with
  | Box -> Box_analysis.verify ?deadline net ~din ~dout
  | Symint -> Symint_analysis.verify ?deadline net ~din ~dout
  | Zonotope -> Zonotope_analysis.verify ?deadline net ~din ~dout
  | Deeppoly -> Deeppoly_analysis.verify ?deadline net ~din ~dout
  | Star -> Star_analysis.verify ?deadline net ~din ~dout
