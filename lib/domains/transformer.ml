(** Common signature of abstract domains over network layers.

    A domain provides sound abstract transformers for the fused
    affine-plus-activation layers of {!Cv_nn.Layer}: if the concrete
    input [x] is contained in the concretisation of the abstract element
    [a], then [Layer.eval l x] is contained in the concretisation of
    [apply_layer l a]. The layer-wise analyzer ({!Analyzer}) folds a
    domain over a network to produce the paper's state abstractions
    [S_1..S_n] (as boxes, matching the ReluVal-style lower/upper neuron
    valuations used in the paper's experiment). *)

module type DOMAIN = sig
  type t

  (** Short name used in reports and benches ("box", "symint", ...). *)
  val name : string

  (** [of_box b] abstracts an input box exactly. *)
  val of_box : Cv_interval.Box.t -> t

  (** [apply_layer l a] is the sound abstract image of [a] under the
      layer [l]. *)
  val apply_layer : Cv_nn.Layer.t -> t -> t

  (** [apply_prepared p a] is [apply_layer] through a kernel-ready
      layer ({!Cv_nn.Layer.prepare}): shared sign splits and
      transposes, workspace-backed fused kernels. Semantically
      identical to [apply_layer p.source a]; the analyzer drives this
      entry point. *)
  val apply_prepared : Cv_nn.Layer.prepared -> t -> t

  (** [to_box a] concretises to interval bounds per neuron (sound: the
      concrete set is contained in the box). *)
  val to_box : t -> Cv_interval.Box.t

  (** [dim a] is the dimension of the abstract element. *)
  val dim : t -> int
end

(** [pre_activation_box l b] is the exact interval image of the affine
    part [W x + b] over the box [b]: per row, split the weight by sign.
    Shared by several domains and by the MILP big-M bound setup. *)
let pre_activation_box (l : Cv_nn.Layer.t) (b : Cv_interval.Box.t) =
  let w = l.Cv_nn.Layer.weights and bias = l.Cv_nn.Layer.bias in
  let rows = Cv_linalg.Mat.rows w and cols = Cv_linalg.Mat.cols w in
  if cols <> Cv_interval.Box.dim b then
    invalid_arg "Transformer.pre_activation_box: dimension mismatch";
  Array.init rows (fun i ->
      let lo = ref bias.(i) and hi = ref bias.(i) in
      for j = 0 to cols - 1 do
        let wij = Cv_linalg.Mat.get w i j in
        let iv = Cv_interval.Box.get b j in
        if wij >= 0. then begin
          lo := !lo +. (wij *. Cv_interval.Interval.lo iv);
          hi := !hi +. (wij *. Cv_interval.Interval.hi iv)
        end
        else begin
          lo := !lo +. (wij *. Cv_interval.Interval.hi iv);
          hi := !hi +. (wij *. Cv_interval.Interval.lo iv)
        end
      done;
      Cv_interval.Interval.make !lo !hi)
