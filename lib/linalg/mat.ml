(** Dense row-major float matrices.

    Backing store is a flat [float array] with explicit [rows]/[cols];
    all the layer transformers, the Lipschitz estimators and the LP
    tableau build on this module.

    The arithmetic kernels ([matmul], [matvec], the fused [gemv]/[gemm]
    variants) are cache-blocked over the reduction dimension and use
    unchecked array accesses after a single up-front shape check.
    Blocking never changes the per-element accumulation order — every
    output entry is still the [k]-ascending sum of the naive triple
    loop, so blocked, sequential and row-parallel runs are all bitwise
    identical. Kernel effort is accounted under [kernel.gemm.seconds],
    [kernel.gemv.seconds] and [kernel.posneg.seconds]; timing only
    engages above a work threshold so micro-kernels (tiny example nets)
    do not pay clock reads. *)

type t = { rows : int; cols : int; data : float array }

(** [create rows cols x] is a [rows × cols] matrix filled with [x]. *)
let create rows cols x = { rows; cols; data = Array.make (rows * cols) x }

(** [zeros rows cols] is the zero matrix. *)
let zeros rows cols = create rows cols 0.

(** [init rows cols f] builds the matrix with entries [f i j] — one
    running flat index, no per-element division. *)
let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Array.unsafe_set data !k (f i j);
      incr k
    done
  done;
  { rows; cols; data }

(** [identity n] is the [n × n] identity. *)
let identity n = init n n (fun i j -> if i = j then 1. else 0.)

(** [of_array ~rows ~cols data] wraps a row-major backing array without
    copying. *)
let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_array: data length mismatch";
  { rows; cols; data }

(** [rows m] is the number of rows. *)
let rows m = m.rows

(** [cols m] is the number of columns. *)
let cols m = m.cols

(** [get m i j] reads entry [(i, j)]. *)
let get m i j = m.data.((i * m.cols) + j)

(** [set m i j x] writes entry [(i, j)] in place. *)
let set m i j x = m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)

let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let unsafe_data m = m.data

(** [copy m] is a deep copy. *)
let copy m = { m with data = Array.copy m.data }

(** [row m i] extracts row [i] as a fresh vector. *)
let row m i = Array.sub m.data (i * m.cols) m.cols

(** [col m j] extracts column [j] as a fresh vector — one strided pass,
    no per-element index multiplication. *)
let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: column out of range";
  let r = Array.make m.rows 0. in
  let idx = ref j in
  for i = 0 to m.rows - 1 do
    Array.unsafe_set r i (Array.unsafe_get m.data !idx);
    idx := !idx + m.cols
  done;
  r

(** [of_rows rows] builds a matrix from a non-empty list of equal-length
    row vectors. *)
let of_rows = function
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ as rows_list ->
    let cols = Array.length first in
    let rows = List.length rows_list in
    let m = zeros rows cols in
    List.iteri
      (fun i r ->
        if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows";
        Array.blit r 0 m.data (i * cols) cols)
      rows_list;
    m

(** [to_rows m] is the list of row vectors. *)
let to_rows m = List.init m.rows (row m)

(** [transpose m] is the transposed matrix. *)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

(* ------------------------------------------------------------------ *)
(* Kernel instrumentation.                                            *)

let t_gemm = Cv_util.Metrics.timer "kernel.gemm.seconds"
let t_gemv = Cv_util.Metrics.timer "kernel.gemv.seconds"
let t_posneg = Cv_util.Metrics.timer "kernel.posneg.seconds"

(* Flop threshold below which kernels skip the clock reads: a 3×3
   multiply must not pay two clock_gettime calls. *)
let timed_work = 1 lsl 14

(* ------------------------------------------------------------------ *)
(* Matrix-vector kernels.                                             *)

(** [matvec_into ~dst m v] writes [m v] into [dst]. *)
let matvec_into ~dst m v =
  if Array.length v <> m.cols then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d with vector of dim %d" m.rows m.cols
         (Array.length v));
  if Array.length dst <> m.rows then invalid_arg "Mat.matvec_into: dst dim";
  if dst == v then invalid_arg "Mat.matvec_into: dst aliases v";
  let work = m.rows * m.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let md = m.data in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (Array.unsafe_get md (base + j) *. Array.unsafe_get v j)
    done;
    Array.unsafe_set dst i !acc
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_gemv (Cv_util.Clock.now () -. t0)

(** [matvec m v] is the matrix-vector product [m v]. *)
let matvec m v =
  let dst = Array.make m.rows 0. in
  matvec_into ~dst m v;
  dst

(** [matvec_add m v b] is [m v + b], the affine map used by NN layers. *)
let matvec_add m v b =
  let r = matvec m v in
  if Array.length b <> m.rows then invalid_arg "Mat.matvec_add: bias dim";
  for i = 0 to m.rows - 1 do
    r.(i) <- r.(i) +. b.(i)
  done;
  r

(* ------------------------------------------------------------------ *)
(* Blocked gemm.                                                      *)

(* Reduction-dimension block: keeps a [kblock × cols b] panel of [b]
   plus one accumulator row of the result hot while streaming [a]. *)
let kblock = 64

(* Multiply rows [r0, r1) of [a] into [cd] (pre-zeroed): blocked i-k-j
   with the k-ascending per-element accumulation of the naive loop,
   skipping zero [a] entries (preserves sparsity short-cuts and keeps
   0 · ±inf from manufacturing NaNs, exactly like the historical
   kernel). *)
let matmul_rows ~ad ~bd ~cd ~acols ~bcols r0 r1 =
  for k0 = 0 to (acols - 1) / kblock do
    let klo = k0 * kblock in
    let khi = min (acols - 1) (klo + kblock - 1) in
    for i = r0 to r1 - 1 do
      let abase = i * acols in
      let cbase = i * bcols in
      for k = klo to khi do
        let aik = Array.unsafe_get ad (abase + k) in
        if aik <> 0. then begin
          let bbase = k * bcols in
          for j = 0 to bcols - 1 do
            Array.unsafe_set cd (cbase + j)
              (Array.unsafe_get cd (cbase + j)
              +. (aik *. Array.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  done

(* Opt-in default worker-domain count for matmul; 1 = sequential. *)
let parallel_domains_ref =
  ref
    (match Sys.getenv_opt "CONTIVER_KERNEL_DOMAINS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1)

let parallel_domains () = !parallel_domains_ref
let set_parallel_domains n = parallel_domains_ref := max 1 n

(* Don't spin up domains for products cheaper than ~1 Mflop. *)
let parallel_min_work = 1 lsl 20

let matmul_dispatch ~domains a b dst =
  Array.fill dst.data 0 (dst.rows * dst.cols) 0.;
  let work = a.rows * a.cols * b.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let ad = a.data and bd = b.data and cd = dst.data in
  let d = min domains a.rows in
  if d > 1 && work >= parallel_min_work then begin
    (* Disjoint contiguous row blocks per task: no two tasks touch the
       same output entry, and each entry is produced by the same
       sequential loop — deterministic by construction. *)
    let chunk = (a.rows + d - 1) / d in
    let ranges =
      Array.init d (fun i -> (i * chunk, min a.rows ((i + 1) * chunk)))
    in
    ignore
      (Cv_util.Parallel.map ~domains:d
         (fun (r0, r1) ->
           matmul_rows ~ad ~bd ~cd ~acols:a.cols ~bcols:b.cols r0 r1)
         ranges)
  end
  else matmul_rows ~ad ~bd ~cd ~acols:a.cols ~bcols:b.cols 0 a.rows;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_gemm (Cv_util.Clock.now () -. t0)

(** [matmul ?domains a b] is the matrix product [a b]; bitwise identical
    at every [domains] setting. *)
let matmul ?domains a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d with %dx%d" a.rows a.cols b.rows b.cols);
  let dst = zeros a.rows b.cols in
  let domains =
    match domains with Some d -> max 1 d | None -> !parallel_domains_ref
  in
  matmul_dispatch ~domains a b dst;
  dst

(** [matmul_into ?domains ~dst a b] is {!matmul} into a caller-owned
    buffer. *)
let matmul_into ?domains ~dst a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d with %dx%d" a.rows a.cols b.rows b.cols);
  if dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Mat.matmul_into: dst shape";
  if dst.data == a.data || dst.data == b.data then
    invalid_arg "Mat.matmul_into: dst aliases an operand";
  let domains =
    match domains with Some d -> max 1 d | None -> !parallel_domains_ref
  in
  matmul_dispatch ~domains a b dst

(* Row block for the transposed-B kernel: one row of [b] stays hot
   across a block of [a] rows. *)
let iblock = 8

let matmul_transb_core a b dst =
  let k = a.cols and n = b.rows in
  let ad = a.data and bd = b.data and cd = dst.data in
  let work = a.rows * k * n in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let i0 = ref 0 in
  while !i0 < a.rows do
    let ihi = min a.rows (!i0 + iblock) in
    for i = !i0 to ihi - 1 do
      let abase = i * k in
      let cbase = i * n in
      (* Four output columns at a time: each accumulator still sums its
         dot product in ascending t (bitwise identical to one-at-a-time)
         but the four chains are independent, so the FP-add latency
         overlaps and each [a] row load feeds four columns. *)
      let j = ref 0 in
      while !j + 3 < n do
        let b0 = !j * k and b1 = (!j + 1) * k in
        let b2 = (!j + 2) * k and b3 = (!j + 3) * k in
        let acc0 = ref 0. and acc1 = ref 0. in
        let acc2 = ref 0. and acc3 = ref 0. in
        for t = 0 to k - 1 do
          let av = Array.unsafe_get ad (abase + t) in
          acc0 := !acc0 +. (av *. Array.unsafe_get bd (b0 + t));
          acc1 := !acc1 +. (av *. Array.unsafe_get bd (b1 + t));
          acc2 := !acc2 +. (av *. Array.unsafe_get bd (b2 + t));
          acc3 := !acc3 +. (av *. Array.unsafe_get bd (b3 + t))
        done;
        Array.unsafe_set cd (cbase + !j) !acc0;
        Array.unsafe_set cd (cbase + !j + 1) !acc1;
        Array.unsafe_set cd (cbase + !j + 2) !acc2;
        Array.unsafe_set cd (cbase + !j + 3) !acc3;
        j := !j + 4
      done;
      while !j < n do
        let bbase = !j * k in
        let acc = ref 0. in
        for t = 0 to k - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (abase + t) *. Array.unsafe_get bd (bbase + t))
        done;
        Array.unsafe_set cd (cbase + !j) !acc;
        incr j
      done
    done;
    i0 := ihi
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_gemm (Cv_util.Clock.now () -. t0)

(** [matmul_transb_into ~dst a b] writes [a bᵀ] into [dst]. *)
let matmul_transb_into ~dst a b =
  if a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transb: %dx%d with %dx%d" a.rows a.cols b.rows
         b.cols);
  if dst.rows <> a.rows || dst.cols <> b.rows then
    invalid_arg "Mat.matmul_transb_into: dst shape";
  if dst.data == a.data || dst.data == b.data then
    invalid_arg "Mat.matmul_transb_into: dst aliases an operand";
  matmul_transb_core a b dst

(** [matmul_transb a b] is [a bᵀ] (row-dot-row; see mli). *)
let matmul_transb a b =
  if a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transb: %dx%d with %dx%d" a.rows a.cols b.rows
         b.cols);
  let dst = zeros a.rows b.rows in
  matmul_transb_core a b dst;
  dst

(* ------------------------------------------------------------------ *)
(* Fused sign-split kernels.                                          *)

(** [gemv_interval_into w ~bias ~lo ~hi ~dst_lo ~dst_hi] — exact
    interval affine image, branching on the weight sign per entry
    ([>= 0.] keeps the historical tie behaviour at zero). Safe for
    infinite bounds. *)
let gemv_interval_into w ~bias ~lo ~hi ~dst_lo ~dst_hi =
  if Array.length lo <> w.cols || Array.length hi <> w.cols then
    invalid_arg "Mat.gemv_interval_into: bound dims";
  if
    Array.length bias <> w.rows
    || Array.length dst_lo <> w.rows
    || Array.length dst_hi <> w.rows
  then invalid_arg "Mat.gemv_interval_into: row dims";
  let work = w.rows * w.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let wd = w.data in
  for i = 0 to w.rows - 1 do
    let base = i * w.cols in
    let b = Array.unsafe_get bias i in
    let al = ref b and ah = ref b in
    for j = 0 to w.cols - 1 do
      let wij = Array.unsafe_get wd (base + j) in
      if wij >= 0. then begin
        al := !al +. (wij *. Array.unsafe_get lo j);
        ah := !ah +. (wij *. Array.unsafe_get hi j)
      end
      else begin
        al := !al +. (wij *. Array.unsafe_get hi j);
        ah := !ah +. (wij *. Array.unsafe_get lo j)
      end
    done;
    Array.unsafe_set dst_lo i !al;
    Array.unsafe_set dst_hi i !ah
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_gemv (Cv_util.Clock.now () -. t0)

(** [gemv_posneg ~pos ~neg ~bias ~lo ~hi ~dst_lo ~dst_hi] — branchless
    interval affine image over a prepared sign split (see mli; requires
    finite bounds). *)
let gemv_posneg ~pos ~neg ~bias ~lo ~hi ~dst_lo ~dst_hi =
  if pos.rows <> neg.rows || pos.cols <> neg.cols then
    invalid_arg "Mat.gemv_posneg: split shapes differ";
  if Array.length lo <> pos.cols || Array.length hi <> pos.cols then
    invalid_arg "Mat.gemv_posneg: bound dims";
  if
    Array.length bias <> pos.rows
    || Array.length dst_lo <> pos.rows
    || Array.length dst_hi <> pos.rows
  then invalid_arg "Mat.gemv_posneg: row dims";
  let work = pos.rows * pos.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let pd = pos.data and nd = neg.data in
  for i = 0 to pos.rows - 1 do
    let base = i * pos.cols in
    let b = Array.unsafe_get bias i in
    let al = ref b and ah = ref b in
    for j = 0 to pos.cols - 1 do
      let p = Array.unsafe_get pd (base + j) in
      let n = Array.unsafe_get nd (base + j) in
      let l = Array.unsafe_get lo j in
      let h = Array.unsafe_get hi j in
      al := !al +. (p *. l) +. (n *. h);
      ah := !ah +. (p *. h) +. (n *. l)
    done;
    Array.unsafe_set dst_lo i !al;
    Array.unsafe_set dst_hi i !ah
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_posneg (Cv_util.Clock.now () -. t0)

(** [gemm_select_into ~dst a ~pos_src ~neg_src] — fused
    [dst = a⁺ pos_src + a⁻ neg_src] in one pass over [a] (see mli).
    Accumulation per output entry runs over [k] ascending, skipping
    zero entries of [a]. *)
let gemm_select_into ~dst a ~pos_src ~neg_src =
  if pos_src.rows <> neg_src.rows || pos_src.cols <> neg_src.cols then
    invalid_arg "Mat.gemm_select_into: source shapes differ";
  if a.cols <> pos_src.rows then
    invalid_arg
      (Printf.sprintf "Mat.gemm_select_into: %dx%d with %dx%d" a.rows a.cols
         pos_src.rows pos_src.cols);
  if dst.rows <> a.rows || dst.cols <> pos_src.cols then
    invalid_arg "Mat.gemm_select_into: dst shape";
  if dst.data == a.data || dst.data == pos_src.data || dst.data == neg_src.data
  then invalid_arg "Mat.gemm_select_into: dst aliases an operand";
  let work = a.rows * a.cols * pos_src.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  Array.fill dst.data 0 (dst.rows * dst.cols) 0.;
  let ad = a.data and pd = pos_src.data and nd = neg_src.data and cd = dst.data in
  let acols = a.cols and bcols = pos_src.cols in
  for k0 = 0 to (acols - 1) / kblock do
    let klo = k0 * kblock in
    let khi = min (acols - 1) (klo + kblock - 1) in
    for i = 0 to a.rows - 1 do
      let abase = i * acols in
      let cbase = i * bcols in
      for k = klo to khi do
        let aik = Array.unsafe_get ad (abase + k) in
        if aik <> 0. then begin
          let sd = if aik > 0. then pd else nd in
          let bbase = k * bcols in
          for j = 0 to bcols - 1 do
            Array.unsafe_set cd (cbase + j)
              (Array.unsafe_get cd (cbase + j)
              +. (aik *. Array.unsafe_get sd (bbase + j)))
          done
        end
      done
    done
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_posneg (Cv_util.Clock.now () -. t0)

(** [gemv_select_acc a ~pos ~neg ~acc] — constant-term companion of
    {!gemm_select_into} (see mli). *)
let gemv_select_acc a ~pos ~neg ~acc =
  if Array.length pos <> a.cols || Array.length neg <> a.cols then
    invalid_arg "Mat.gemv_select_acc: source dims";
  if Array.length acc <> a.rows then invalid_arg "Mat.gemv_select_acc: acc dim";
  let work = a.rows * a.cols in
  let t0 = if work >= timed_work then Cv_util.Clock.now () else 0. in
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let s = ref (Array.unsafe_get acc i) in
    for j = 0 to a.cols - 1 do
      let aij = Array.unsafe_get ad (base + j) in
      if aij > 0. then s := !s +. (aij *. Array.unsafe_get pos j)
      else if aij < 0. then s := !s +. (aij *. Array.unsafe_get neg j)
    done;
    Array.unsafe_set acc i !s
  done;
  if work >= timed_work then
    Cv_util.Metrics.add_seconds t_posneg (Cv_util.Clock.now () -. t0)

(* ------------------------------------------------------------------ *)

(** [add a b] is the entrywise sum. *)
let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

(** [sub a b] is the entrywise difference. *)
let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

(** [scale c m] multiplies every entry by [c]. *)
let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

(** [map f m] applies [f] entrywise. *)
let map f m = { m with data = Array.map f m.data }

(** [max_abs m] is the largest absolute entry. *)
let max_abs m = Cv_util.Float_utils.max_abs m.data

(** [norm_inf m] is the operator ∞-norm: max row absolute sum. This is a
    valid Lipschitz constant of [x ↦ m x] in the ∞-norm. *)
let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

(** [norm1 m] is the operator 1-norm: max column absolute sum. *)
let norm1 m =
  let best = ref 0. in
  for j = 0 to m.cols - 1 do
    let s = ref 0. in
    for i = 0 to m.rows - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

(** [frobenius m] is the Frobenius norm (an upper bound on the spectral
    norm). *)
let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

(** [spectral_norm ?iters ?rng m] estimates the operator 2-norm (largest
    singular value) by power iteration on [mᵀm]. The estimate converges
    from below; callers needing a sound upper bound should prefer
    {!frobenius} or [sqrt (norm1 m *. norm_inf m)]. *)
let spectral_norm ?(iters = 100) ?rng m =
  if m.rows = 0 || m.cols = 0 then 0.
  else begin
    let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 7 in
    let mt = transpose m in
    let v = ref (Cv_util.Rng.uniform_array rng m.cols ~lo:(-1.) ~hi:1.) in
    (try
       for _ = 1 to iters do
         let w = matvec mt (matvec m !v) in
         let n = Vec.norm2 w in
         if n < 1e-300 then raise Exit;
         v := Vec.scale (1. /. n) w
       done
     with Exit -> ());
    (* Rayleigh quotient at the converged vector. *)
    let mv = matvec m !v in
    let nv = Vec.norm2 !v in
    if nv < 1e-300 then 0. else Vec.norm2 mv /. nv
  end

(** [sqrt_norm1_norminf m] is [sqrt (‖m‖₁ ‖m‖∞)], a cheap sound upper
    bound on the spectral norm. *)
let sqrt_norm1_norminf m = sqrt (norm1 m *. norm_inf m)

(** [approx_eq ?tol a b] is entrywise approximate equality of same-shape
    matrices. *)
let approx_eq ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cv_util.Float_utils.approx_eq ?tol x y) a.data b.data

(** [random ?rng rows cols ~lo ~hi] draws entries uniformly. *)
let random ?rng rows cols ~lo ~hi =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 11 in
  init rows cols (fun _ _ -> Cv_util.Rng.float rng ~lo ~hi)

(** [xavier ?rng rows cols] draws entries from the Glorot-uniform
    distribution for a layer with [cols] inputs and [rows] outputs. *)
let xavier ?rng rows cols =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 13 in
  let limit = sqrt (6. /. float_of_int (rows + cols)) in
  init rows cols (fun _ _ -> Cv_util.Rng.float rng ~lo:(-.limit) ~hi:limit)

(** [pp ppf m] prints rows one per line. *)
let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"

(** [to_json m] encodes shape and entries. *)
let to_json m =
  Cv_util.Json.Obj
    [ ("rows", Cv_util.Json.of_int m.rows);
      ("cols", Cv_util.Json.of_int m.cols);
      ("data", Cv_util.Json.of_float_array m.data) ]

(** [of_json j] decodes a matrix written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  let rows = to_int (member "rows" j) in
  let cols = to_int (member "cols" j) in
  let data = float_array (member "data" j) in
  if Array.length data <> rows * cols then
    raise (Error "Mat.of_json: data length mismatch");
  { rows; cols; data }
