(** Scratch-buffer arena for the kernel layer — see the mli for the
    ownership rules.

    Each slot holds a small list of buffers of distinct shapes; lookup
    is a short pointer walk with no allocation, so a steady-state hit
    costs nothing. The lists are bounded by the number of distinct
    shapes a slot ever sees (layer widths of the analysed networks). *)

type t = {
  mutable mats : Mat.t list array;
  mutable vecs : float array list array;
}

let create () = { mats = [||]; vecs = [||] }

let grow arr n =
  let len = Array.length arr in
  let len' = max n (max 8 (2 * len)) in
  let arr' = Array.make len' [] in
  Array.blit arr 0 arr' 0 len;
  arr'

(* Allocation-free hit path: top-level recursive finders raising the
   constant [Not_found] on miss. *)
let rec find_mat rows cols = function
  | [] -> raise Not_found
  | m :: tl ->
    if Mat.rows m = rows && Mat.cols m = cols then m else find_mat rows cols tl

let rec find_vec n = function
  | [] -> raise Not_found
  | v :: tl -> if Array.length v = n then v else find_vec n tl

let mat t ~slot ~rows ~cols =
  if slot < 0 then invalid_arg "Workspace.mat: negative slot";
  if slot >= Array.length t.mats then t.mats <- grow t.mats (slot + 1);
  match find_mat rows cols (Array.unsafe_get t.mats slot) with
  | m -> m
  | exception Not_found ->
    let m = Mat.zeros rows cols in
    t.mats.(slot) <- m :: t.mats.(slot);
    m

let vec t ~slot n =
  if slot < 0 then invalid_arg "Workspace.vec: negative slot";
  if slot >= Array.length t.vecs then t.vecs <- grow t.vecs (slot + 1);
  match find_vec n (Array.unsafe_get t.vecs slot) with
  | v -> v
  | exception Not_found ->
    let v = Array.make n 0. in
    t.vecs.(slot) <- v :: t.vecs.(slot);
    v

let reset t =
  t.mats <- [||];
  t.vecs <- [||]
