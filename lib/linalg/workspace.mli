(** Scratch-buffer arena for the kernel layer.

    Layer transformers repeat the same shapes of intermediate products
    every propagation round; a workspace caches those buffers so the
    steady state allocates nothing. Buffers are addressed by an integer
    [slot] (a caller-chosen role: "upper coefficients", "lower
    constants", …); each slot keeps one buffer per distinct shape, so a
    slot whose shape sequence repeats across rounds — layer widths of a
    fixed network — hits the cache every time.

    Ownership rules (see DESIGN.md "Kernel layer"):
    - a returned buffer stays valid until the same [slot] is requested
      with the same shape again — two live buffers must use different
      slots;
    - contents are {e not} cleared on reuse: callers must fully
      overwrite (the [_into] kernels do);
    - workspace buffers never cross an API boundary — results that
      outlive the call are copied into fresh storage.

    A workspace is single-threaded state. Modules running under
    {!Cv_util.Parallel} keep one workspace per OCaml domain
    (e.g. via [Domain.DLS]). *)

type t

(** [create ()] is an empty workspace. *)
val create : unit -> t

(** [mat t ~slot ~rows ~cols] returns the cached [rows × cols] buffer of
    [slot], allocating (zero-filled) on first use of that shape. Reused
    buffers keep their previous contents. *)
val mat : t -> slot:int -> rows:int -> cols:int -> Mat.t

(** [vec t ~slot n] returns the cached length-[n] buffer of [slot],
    allocating (zero-filled) on first use of that length. Reused
    buffers keep their previous contents. *)
val vec : t -> slot:int -> int -> float array

(** [reset t] drops every cached buffer (outstanding references stay
    valid but are no longer reused). *)
val reset : t -> unit
