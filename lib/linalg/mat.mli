(** Dense row-major float matrices (flat backing store).

    The arithmetic entry points ([matmul], [matvec], the [gemv]/[gemm]
    kernels below) are cache-blocked and bounds-check-free inside; see
    DESIGN.md "Kernel layer" for the blocking scheme and the exact
    accumulation-order guarantees. *)

type t

val create : int -> int -> float -> t

val zeros : int -> int -> t

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

(** [of_array ~rows ~cols data] wraps a row-major backing array {e
    without copying}: the matrix aliases [data]. *)
val of_array : rows:int -> cols:int -> float array -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

(** [set m i j x] writes entry [(i, j)] in place. *)
val set : t -> int -> int -> float -> unit

(** [unsafe_get m i j] reads entry [(i, j)] without bounds checks —
    kernel use only. *)
val unsafe_get : t -> int -> int -> float

(** [unsafe_set m i j x] writes entry [(i, j)] without bounds checks —
    kernel use only. *)
val unsafe_set : t -> int -> int -> float -> unit

(** [unsafe_data m] is the flat row-major backing store (entry [(i, j)]
    at index [i * cols m + j]), shared with the matrix: writes through
    it are visible. For kernels and tests. *)
val unsafe_data : t -> float array

val copy : t -> t

(** [row m i] extracts row [i] as a fresh vector. *)
val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

(** [of_rows rows] builds a matrix from a non-empty list of equal-length
    row vectors. *)
val of_rows : Vec.t list -> t

val to_rows : t -> Vec.t list

val transpose : t -> t

val matvec : t -> Vec.t -> Vec.t

(** [matvec_into ~dst m v] writes [m v] into [dst] (length [rows m]);
    [dst] must not alias [v]. *)
val matvec_into : dst:Vec.t -> t -> Vec.t -> unit

(** [matvec_add m v b] is [m v + b], the affine map of NN layers. *)
val matvec_add : t -> Vec.t -> Vec.t -> Vec.t

(** [matmul ?domains a b] is the matrix product [a b]. Per-element
    accumulation runs over [k] ascending and skips zero entries of [a],
    exactly like the naive triple loop — blocking and row-parallelism
    only change the interleaving {e between} elements, so the result is
    bitwise identical at any [domains] count. [domains] defaults to
    {!parallel_domains} (1 unless opted in); parallelism only engages
    above an internal work threshold and splits disjoint row blocks
    across {!Cv_util.Parallel}. *)
val matmul : ?domains:int -> t -> t -> t

(** [matmul_into ?domains ~dst a b] is {!matmul} into a caller-owned
    [dst] ([rows a × cols b], fully overwritten); [dst] must not alias
    [a] or [b]. *)
val matmul_into : ?domains:int -> dst:t -> t -> t -> unit

(** [matmul_transb a b] is [a bᵀ] for [a : m × k] and [b : n × k]:
    entry [(i, j)] is the dot product of row [i] of [a] with row [j] of
    [b], accumulated over [k] ascending. Lets callers with row-major
    operand layouts (zonotope generators against layer weights) multiply
    without materialising a transpose. *)
val matmul_transb : t -> t -> t

val matmul_transb_into : dst:t -> t -> t -> unit

(** [gemv_interval_into w ~bias ~lo ~hi ~dst_lo ~dst_hi] is the exact
    interval image of the affine map [x ↦ w x + bias] over the box
    [lo, hi]: per row a single pass branching on the weight sign
    ([>= 0.] takes [lo]/[hi] for the lower/upper accumulator), both
    accumulators seeded with the bias — the classic sign-split interval
    gemv, safe for infinite bounds. *)
val gemv_interval_into :
  t ->
  bias:Vec.t ->
  lo:Vec.t ->
  hi:Vec.t ->
  dst_lo:Vec.t ->
  dst_hi:Vec.t ->
  unit

(** [gemv_posneg ~pos ~neg ~bias ~lo ~hi ~dst_lo ~dst_hi] is the
    branchless variant of {!gemv_interval_into} over a prepared sign
    split [pos + neg = w] ([pos = max(w, 0)], [neg = min(w, 0)]
    entrywise): [dst_lo = bias + pos·lo + neg·hi] and
    [dst_hi = bias + pos·hi + neg·lo]. Requires finite [lo]/[hi]
    (a zero split entry times an infinite bound would make a NaN). *)
val gemv_posneg :
  pos:t ->
  neg:t ->
  bias:Vec.t ->
  lo:Vec.t ->
  hi:Vec.t ->
  dst_lo:Vec.t ->
  dst_hi:Vec.t ->
  unit

(** [gemm_select_into ~dst a ~pos_src ~neg_src] fuses the sign-split
    product [dst = a⁺ pos_src + a⁻ neg_src] in one pass over [a]:
    positive entries of [a] multiply rows of [pos_src], negative ones
    rows of [neg_src], zeros are skipped; per-element accumulation runs
    over [k] ascending. This replaces the allocate-two-split-copies
    pattern of DeepPoly backsubstitution and symbolic-interval affine
    steps. [dst] ([rows a × cols pos_src]) is fully overwritten and must
    not alias any operand. *)
val gemm_select_into : dst:t -> t -> pos_src:t -> neg_src:t -> unit

(** [gemv_select_acc a ~pos ~neg ~acc] accumulates
    [acc_i += Σ_j sel(a_ij)] where positive [a_ij] select [a_ij·pos_j],
    negative select [a_ij·neg_j] and zeros are skipped, [j] ascending —
    the constant-term companion of {!gemm_select_into}. *)
val gemv_select_acc : t -> pos:Vec.t -> neg:Vec.t -> acc:Vec.t -> unit

(** [parallel_domains ()] is the default worker-domain count for
    {!matmul} (1 = sequential; initialised from the
    [CONTIVER_KERNEL_DOMAINS] environment variable). *)
val parallel_domains : unit -> int

(** [set_parallel_domains n] sets the default worker-domain count for
    {!matmul} (clamped to at least 1). Results are deterministic at any
    setting. *)
val set_parallel_domains : int -> unit

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val map : (float -> float) -> t -> t

val max_abs : t -> float

(** [norm_inf m] is the operator ∞-norm (max row absolute sum). *)
val norm_inf : t -> float

(** [norm1 m] is the operator 1-norm (max column absolute sum). *)
val norm1 : t -> float

val frobenius : t -> float

(** [spectral_norm ?iters ?rng m] estimates ‖m‖₂ by power iteration —
    converges from below; not a sound upper bound. *)
val spectral_norm : ?iters:int -> ?rng:Cv_util.Rng.t -> t -> float

(** [sqrt_norm1_norminf m] is [sqrt (‖m‖₁ ‖m‖∞)], a cheap sound upper
    bound on the spectral norm. *)
val sqrt_norm1_norminf : t -> float

val approx_eq : ?tol:float -> t -> t -> bool

val random : ?rng:Cv_util.Rng.t -> int -> int -> lo:float -> hi:float -> t

(** [xavier ?rng rows cols] draws Glorot-uniform entries. *)
val xavier : ?rng:Cv_util.Rng.t -> int -> int -> t

val pp : Format.formatter -> t -> unit

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
