(* The paper's two worked examples, reproduced numerically.

   1. Figure 2 / Equation (2): interval analysis bounds neuron n4 by
      [0, 12] on [-1,1]^2 and by [0, 12.4] after enlarging the domain to
      [-1,1.1]^2; the exact MILP maximum is 6.2 < 12, so the stored
      state abstraction S_2 absorbs the enlargement (Proposition 1).

   2. The Proposition 3 example: D_in = [1,2]^2 enlarged by 0.01 per
      side, kappa = 0.02, Lipschitz constant 100, S_n = [1,8],
      D_out = [-10,10]: the inflated output set [-1,10] stays within
      D_out, so the property transfers.

   Run with: dune exec examples/paper_example.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

(* The network of Figure 2: n1 = ReLU(x1 - 2 x2), n2 = ReLU(-2 x1 + x2),
   n3 = ReLU(x1 - x2), n4 = ReLU(2 n1 + 2 n2 - n3). *)
let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let () =
  section "Figure 2: proof reuse at layers 1 and 2 (Proposition 1)";
  let net = fig2_net () in
  let original = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let enlarged = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in

  let box_reach b = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Box net b in
  Printf.printf "interval analysis, original domain [-1,1]^2 : n4 in %s\n"
    (Cv_interval.Box.to_string (box_reach original));
  Printf.printf "interval analysis, enlarged [-1,1.1]^2      : n4 in %s\n"
    (Cv_interval.Box.to_string (box_reach enlarged));

  (* The stored state abstraction from the original proof: S_2 bounds n4
     by [0, 12]. Reuse requires the enlarged domain to stay within it. *)
  let s2 = box_reach original in
  Printf.printf "stored S_2 (from the original proof)        : %s\n"
    (Cv_interval.Box.to_string s2);

  (* Exact MILP encoding of Equation (2). *)
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:enlarged in
  (match Cv_milp.Relu_encoding.max_output enc ~output:0 with
  | Cv_milp.Milp.Optimal s ->
    Printf.printf "exact (MILP) max of n4 over enlarged domain : %.4g\n"
      s.Cv_milp.Milp.objective;
    Printf.printf "  (the paper reports 6.2; 6.2 <= 12, so Proposition 1 applies)\n"
  | _ -> print_endline "MILP query failed");

  (* The same conclusion through the library's Proposition 1 route. *)
  let verdict =
    Cv_verify.Containment.check Cv_verify.Containment.Milp net
      ~input_box:enlarged ~target:s2
  in
  Printf.printf "Containment check (enlarged -> S_2): %s\n"
    (match verdict with
    | Cv_verify.Containment.Proved -> "PROVED — proof reused, no full re-verification"
    | Cv_verify.Containment.Violated _ -> "violated"
    | Cv_verify.Containment.Unknown u ->
      "unknown: " ^ u.Cv_verify.Containment.message);

  section "Proposition 3: Lipschitz-based proof reuse";
  let d_in = Cv_interval.Box.uniform 2 ~lo:1. ~hi:2. in
  let d_in_enlarged = Cv_interval.Box.uniform 2 ~lo:0.99 ~hi:2.01 in
  let kappa =
    Cv_lipschitz.Lipschitz.kappa ~norm:Cv_lipschitz.Lipschitz.L2 ~old_box:d_in
      ~new_box:d_in_enlarged
  in
  Printf.printf "kappa (L2 distance of enlargement) = %.4f (paper uses 0.02)\n"
    kappa;
  let kappa = 0.02 (* the paper rounds up for simplicity; so do we *) in
  let ell = 100. in
  let s_n = Cv_interval.Box.of_bounds [| 1. |] [| 8. |] in
  let d_out = Cv_interval.Box.of_bounds [| -10. |] [| 10. |] in
  let inflated = Cv_interval.Box.expand (ell *. kappa) s_n in
  Printf.printf "S_n = %s, ell*kappa = %.2g\n" (Cv_interval.Box.to_string s_n)
    (ell *. kappa);
  Printf.printf "inflated S_n = %s (paper: [-1, 10])\n"
    (Cv_interval.Box.to_string inflated);
  Printf.printf "inflated within D_out %s: %b => property transfers\n"
    (Cv_interval.Box.to_string d_out)
    (Cv_interval.Box.subset inflated d_out)
