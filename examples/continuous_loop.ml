(* The continuous-engineering loop over several iterations, exercising
   every reuse route in the library:

     iteration 1: deploy -> black swans -> SVuDC (domain enlargement)
                  -> commit the enlarged domain
     iteration 2: fine-tune -> SVbTV (prop-diff / prop4)
     iteration 3: tighten the specification -> SVuSC (spec change)
     finale     : backward analysis locates the remaining risk

   Run with: dune exec examples/continuous_loop.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let ratio_str report original =
  Printf.sprintf "%.3f%% of original"
    (100.
    *. Cv_core.Strategy.ratio
         ~incremental:report.Cv_core.Report.total_wall
         ~original)

let () =
  section "Setup: platform, training, initial certification";
  let exp = Cv_vehicle.Pipeline.build () in
  let head0 = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din0 = exp.Cv_vehicle.Pipeline.din in
  let prop0 = Cv_vehicle.Pipeline.property exp in
  let original = Cv_core.Strategy.solve_original_exact head0 prop0 in
  let orig_t =
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solve_seconds
  in
  Printf.printf "original certification: proved=%b in %.2fs\n"
    original.Cv_core.Strategy.proved orig_t;
  let artifact = ref original.Cv_core.Strategy.artifact in
  let monitor = Cv_monitor.Monitor.of_box din0 in

  section "Iteration 1 — deployment hits black swans (SVuDC)";
  let rng = Cv_util.Rng.create 2026 in
  let state = Cv_vehicle.Controller.init exp.Cv_vehicle.Pipeline.track ~s:0. in
  let _, _ =
    Cv_vehicle.Controller.drive ~conditions:Cv_vehicle.Camera.shifted ~rng
      ~track:exp.Cv_vehicle.Pipeline.track
      ~perception:exp.Cv_vehicle.Pipeline.perception ~monitor ~steps:250 state
  in
  Printf.printf "monitor: %d OOD events, kappa = %.4f\n"
    (Cv_monitor.Monitor.event_count monitor)
    (Cv_monitor.Monitor.kappa monitor);
  let enlarged = Cv_monitor.Monitor.enlarged_box ~margin:0.005 monitor in
  let svudc = Cv_core.Problem.svudc ~net:head0 ~artifact:!artifact ~new_din:enlarged in
  let r1 = Cv_core.Strategy.solve_svudc svudc in
  Printf.printf "SVuDC: %s (%s)\n"
    (Cv_core.Report.outcome_string r1.Cv_core.Report.verdict)
    (ratio_str r1 orig_t);
  (match r1.Cv_core.Report.verdict with
  | Cv_core.Report.Safe ->
    (* Proof transferred: commit the enlarged domain and refresh the
       stored artifact for the next iteration. *)
    Cv_monitor.Monitor.commit monitor enlarged;
    let chain =
      Cv_domains.Analyzer.abstractions ~widen:0.04 Cv_domains.Analyzer.Symint
        head0 enlarged
    in
    let prop1 =
      Cv_verify.Property.make ~din:enlarged
        ~dout:prop0.Cv_verify.Property.dout
    in
    artifact :=
      Cv_artifacts.Artifacts.make ~state_abstractions:chain
        ~lipschitz:!artifact.Cv_artifacts.Artifacts.lipschitz ~property:prop1
        ~net:head0 ~solver:"svudc-transfer" ~solve_seconds:orig_t ();
    Printf.printf "committed D_in ∪ Δ_in; artifact refreshed\n"
  | _ -> Printf.printf "transfer failed; a full re-verification would be scheduled\n");

  section "Iteration 2 — fine-tuning (SVbTV with the differential route)";
  let head1 = exp.Cv_vehicle.Pipeline.heads.(1) in
  Printf.printf "parameter drift: %.5f\n" (Cv_vehicle.Pipeline.drift exp 1);
  let svbtv =
    Cv_core.Problem.svbtv ~old_net:head0 ~new_net:head1 ~artifact:!artifact
      ~new_din:enlarged
  in
  (* Show the differential route on its own first. *)
  let pdiff = Cv_core.Diff_reuse.prop_diff svbtv in
  Printf.printf "prop-diff alone: %s (%s)\n"
    (match pdiff.Cv_core.Report.outcome with
    | Cv_core.Report.Safe -> "safe"
    | Cv_core.Report.Unsafe _ -> "unsafe"
    | Cv_core.Report.Inconclusive m -> "inconclusive: " ^ m
    | Cv_core.Report.Exhausted m -> "exhausted: " ^ m)
    pdiff.Cv_core.Report.detail;
  let r2 = Cv_core.Strategy.solve_svbtv svbtv in
  Printf.printf "SVbTV strategy: %s, decided by %s (%s)\n"
    (Cv_core.Report.outcome_string r2.Cv_core.Report.verdict)
    (match r2.Cv_core.Report.decisive with Some n -> n | None -> "-")
    (ratio_str r2 orig_t);

  section "Iteration 3 — the specification evolves (SVuSC)";
  (* Safety engineers tighten the certified output envelope to the
     chain reach + a smaller margin. *)
  let chain =
    Option.get !artifact.Cv_artifacts.Artifacts.state_abstractions
  in
  let s_n = chain.(Array.length chain - 1) in
  let tightened = Cv_interval.Box.expand 0.02 s_n in
  let sc =
    Cv_core.Specchange.make ~net:head0 ~artifact:!artifact ~new_dout:tightened ()
  in
  let r3 = Cv_core.Specchange.solve sc in
  Printf.printf "SVuSC (tightened D_out): %s, decided by %s (%s)\n"
    (Cv_core.Report.outcome_string r3.Cv_core.Report.verdict)
    (match r3.Cv_core.Report.decisive with Some n -> n | None -> "-")
    (ratio_str r3 orig_t);
  let relaxed =
    Cv_interval.Box.expand 1.0 !artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
  in
  let sc2 =
    Cv_core.Specchange.make ~net:head0 ~artifact:!artifact ~new_dout:relaxed ()
  in
  let r3b = Cv_core.Specchange.solve sc2 in
  Printf.printf "SVuSC (relaxed D_out): %s, decided by %s\n"
    (Cv_core.Report.outcome_string r3b.Cv_core.Report.verdict)
    (match r3b.Cv_core.Report.decisive with Some n -> n | None -> "-");

  section "Finale — backward analysis of the remaining risk";
  let dout = !artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout in
  let suspects =
    Cv_verify.Backward.suspect_regions head0 ~din:enlarged ~dout
  in
  List.iter
    (fun s -> Format.printf "%a@." Cv_verify.Backward.pp_suspect s)
    suspects;
  Printf.printf
    "suspect coverage: %.1f%% of the domain width%s\n"
    (100. *. Cv_verify.Backward.total_suspect_volume ~din:enlarged suspects)
    (if Cv_verify.Backward.all_safe suspects then
       " — the LP relaxation alone certifies the property"
     else "")
