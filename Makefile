# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc quickbench ci fmt chaos

all: build

# What CI runs: full build, test suite, formatting gate, bench smoke
# (writes the BENCH_PR4.json perf trajectory).
ci: build test fmt quickbench

fmt:
	dune build @fmt

build:
	dune build @all

test:
	dune runtest

retest:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

quickbench:
	dune exec bench/main.exe -- --quick

# Seeded fault-injection campaign: verdicts may degrade under faults,
# never flip. CI runs this for three seeds (chaos-matrix job).
chaos:
	dune exec bin/contiver.exe -- chaos --seed 1 --rounds 8

examples:
	dune exec examples/quickstart.exe
	dune exec examples/paper_example.exe

# requires odoc (not vendored): opam install odoc
doc:
	dune build @doc

clean:
	dune clean
