# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc quickbench kernelbench ci fmt chaos servesmoke certfuzz

all: build

# What CI runs: full build, test suite, formatting gate, bench smoke
# (writes the BENCH_PR4.json perf trajectory), serve smoke, certificate
# soundness fuzzing.
ci: build test fmt quickbench servesmoke certfuzz

fmt:
	dune build @fmt

build:
	dune build @all

test:
	dune runtest

retest:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

quickbench:
	dune exec bench/main.exe -- --quick

# Kernel-layer throughput: old-vs-new abstract propagation per domain,
# written to BENCH_PR9.json (schema contiver-bench-pr9-v1). CI
# regenerates it in quick mode and gates on schema, verdict agreement
# with the committed BENCH_PR7.json, and throughput floors.
kernelbench:
	dune exec bench/main.exe -- --only-kernels

# Seeded fault-injection campaign: verdicts may degrade under faults,
# never flip. CI runs this for three seeds (chaos-matrix job).
chaos:
	dune exec bin/contiver.exe -- chaos --seed 1 --rounds 8

# Serve smoke: a bounded self-driving serve session must complete two
# monitored OOD -> SVuDC -> commit rounds under a deadline and emit a
# valid contiver-serve-status-v1 stream with artifact-cache hits.
servesmoke:
	timeout 120 dune exec bin/contiver.exe -- serve --drive --rounds 2 > SERVE_SMOKE.ndjson
	python3 scripts/check_serve_status.py SERVE_SMOKE.ndjson 2

# Certificate soundness fuzzing: random nets/properties through the
# full pipeline with --emit-cert semantics, every certificate replayed
# by the trusted checker, mutants rejected, Violated verdicts
# cross-checked against concrete evaluation. Any failing certificate
# is dumped under _build/certfuzz-failures (CI uploads it). The three
# fixed seeds are the CI smoke matrix; `make certfuzz SEEDS="9 10"`
# overrides them.
SEEDS ?= 1 2 3
certfuzz:
	dune build test/certfuzz.exe
	for s in $(SEEDS); do \
	  dune exec test/certfuzz.exe -- -seed $$s -rounds 40 \
	    -out _build/certfuzz-failures || exit 1; \
	done

examples:
	dune exec examples/quickstart.exe
	dune exec examples/paper_example.exe

# requires odoc (not vendored): opam install odoc
doc:
	dune build @doc

clean:
	dune clean
