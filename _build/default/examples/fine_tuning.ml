(* SVbTV across successive fine-tunings — the paper's Table I scenario.

   Four networks are produced by fine-tuning the previous one (frozen
   feature extractor, small learning rate). For each version we compare
   a from-scratch verification against incremental verification that
   reuses the predecessor's proof artifacts, and additionally show the
   Prop 6 network-abstraction route.

   Run with: dune exec examples/fine_tuning.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "Setup: train + fine-tune 4 times (shared frozen extractor)";
  let exp = Cv_vehicle.Pipeline.build () in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  Array.iteri
    (fun i _ ->
      if i >= 1 then
        Printf.printf "head %d: parameter drift from head %d = %.5f\n" (i + 1)
          i (Cv_vehicle.Pipeline.drift exp i))
    heads;

  let din = exp.Cv_vehicle.Pipeline.din in
  let dout = exp.Cv_vehicle.Pipeline.dout in
  let prop = Cv_verify.Property.make ~din ~dout in

  section "Per-version: original solve vs incremental reuse";
  Printf.printf "%-8s %-14s %-14s %-10s %s\n" "case" "original(s)"
    "incremental(s)" "ratio" "decided by";
  for i = 1 to Array.length heads - 1 do
    let old_net = heads.(i - 1) and new_net = heads.(i) in
    (* From-scratch verification of the predecessor produced the
       artifacts we now reuse. *)
    let original = Cv_core.Strategy.solve_original_exact old_net prop in
    let svbtv =
      Cv_core.Problem.svbtv ~old_net ~new_net
        ~artifact:original.Cv_core.Strategy.artifact
        ~new_din:exp.Cv_vehicle.Pipeline.enlarged_din
    in
    let report = Cv_core.Strategy.solve_svbtv svbtv in
    let orig_t =
      original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solve_seconds
    in
    Printf.printf "%-8d %-12.3f %-12.4f %-10s %s\n" i orig_t
      report.Cv_core.Report.total_wall
      (Printf.sprintf "%.3f%%"
         (100.
         *. Cv_core.Strategy.ratio
              ~incremental:report.Cv_core.Report.total_wall ~original:orig_t))
      (match report.Cv_core.Report.decisive with Some n -> n | None -> "-")
  done;

  section "Prop 6: network-abstraction reuse (zero solver work)";
  (* Build the structural abstraction pair once for the original head
     and check which fine-tuned versions it still dominates. *)
  (try
     let pair = Cv_core.Netabs_reuse.build heads.(0) ~din in
     let lo, hi = Cv_core.Netabs_reuse.output_bounds pair in
     Printf.printf "abstraction pair certifies outputs within [%.3f, %.3f]\n" lo
       hi;
     for i = 1 to Array.length heads - 1 do
       let reused, dt =
         Cv_util.Timer.time (fun () -> Cv_core.Netabs_reuse.reuses pair heads.(i))
       in
       Printf.printf "head %d: abstraction still dominates: %b (checked in %.5fs)\n"
         (i + 1) reused dt
     done
   with Cv_netabs.Netabs.Unsupported msg ->
     Printf.printf "structural abstraction unsupported: %s\n" msg);

  section "Prop 6 (interval variant): parameter containment";
  let slack = 0.01 in
  let abs = Cv_netabs.Interval_abs.build ~slack heads.(0) in
  Printf.printf "slack budget %.3f; abstraction proves property: %b\n" slack
    (Cv_netabs.Interval_abs.proves_safety abs ~din ~dout);
  for i = 1 to Array.length heads - 1 do
    Printf.printf "head %d: drift %.5f, contained: %b\n" (i + 1)
      (Cv_netabs.Interval_abs.max_slack heads.(0) heads.(i))
      (Cv_netabs.Interval_abs.contains abs heads.(i))
  done
