(* Continuous verification on a second domain: an ACAS-Xu-style
   collision-avoidance advisory network (the canonical NN-verification
   benchmark family, here generated synthetically).

   Inputs (normalised to [0,1]): range to intruder, bearing, relative
   heading, own speed, intruder speed. Outputs: scores for the five
   advisories COC (clear of conflict), WL/WR (weak left/right),
   SL/SR (strong left/right); the controller takes the argmax.

   The certified property is ACAS-property-shaped: over the monitored
   operating region, all advisory scores stay within calibrated bounds
   (so downstream argmax logic and score thresholds remain valid). The
   continuous-engineering loop then mirrors the paper: monitoring
   enlarges the region (faster intruders than seen in training),
   fine-tuning produces a new advisory network, and both re-checks reuse
   the original proof. Finally the model is exported in the community
   .nnet format.

   Run with: dune exec examples/collision_avoidance.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let advisories = [| "COC"; "WL"; "WR"; "SL"; "SR" |]

(* Synthetic expert policy: score vector over advisories from encounter
   geometry. Smooth enough to be learnable by a small MLP. *)
let expert_scores x =
  let range = x.(0) and bearing = x.(1) and heading = x.(2) in
  let v_own = x.(3) and v_int = x.(4) in
  let closing = (1. -. range) *. (0.5 +. (0.5 *. v_int)) in
  let threat_side = bearing -. 0.5 in
  let urgency = Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (closing -. (0.3 *. v_own)) in
  let coc = 1. -. urgency in
  let wl = urgency *. Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (0.5 +. threat_side)
           *. (1. -. heading) in
  let wr = urgency *. Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (0.5 -. threat_side)
           *. (1. -. heading) in
  let sl = urgency *. urgency *. Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (0.5 +. threat_side) in
  let sr = urgency *. urgency *. Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (0.5 -. threat_side) in
  [| coc; wl; wr; sl; sr |]

let () =
  section "1. Train the advisory network on synthetic encounters";
  let rng = Cv_util.Rng.create 99 in
  (* Training region: moderate intruder speeds only (v_int <= 0.7). *)
  let train_region =
    Cv_interval.Box.of_bounds [| 0.; 0.; 0.; 0.; 0. |] [| 1.; 1.; 1.; 1.; 0.7 |]
  in
  let samples =
    List.init 600 (fun _ ->
        let x = Cv_interval.Box.sample rng train_region in
        { Cv_nn.Train.input = x; target = expert_scores x })
  in
  let net0 =
    Cv_nn.Network.random ~rng ~dims:[ 5; 10; 8; 5 ] ~act:Cv_nn.Activation.Relu ()
  in
  let net, history =
    Cv_nn.Train.fit
      ~config:{ Cv_nn.Train.default_config with Cv_nn.Train.epochs = 120 }
      net0 samples
  in
  Printf.printf "training loss: %.5f -> %.5f\n" (List.hd history)
    (List.nth history (List.length history - 1));
  print_string (Cv_nn.Describe.layer_table net);

  section "2. Certify score bounds over the operating region";
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.05 Cv_domains.Analyzer.Symint net
      train_region
  in
  let dout = Cv_interval.Box.expand 0.05 (chain.(Array.length chain - 1)) in
  Printf.printf "certified score envelope:\n";
  Array.iteri
    (fun i name ->
      Printf.printf "  %-4s in %s\n" name
        (Cv_interval.Interval.to_string (Cv_interval.Box.get dout i)))
    advisories;
  let prop = Cv_verify.Property.make ~din:train_region ~dout in
  (match Cv_core.Session.certify ~widen:0.05 net prop with
  | Error _ -> print_endline "certification failed (unexpected)"
  | Ok session ->
    Printf.printf "certified in %.2fs\n"
      (Cv_core.Session.artifact session).Cv_artifacts.Artifacts.solve_seconds;

    section "3. Operations: faster intruders than seen in training";
    (* Deployment encounters intruders up to v_int = 0.72. *)
    let ood = ref 0 in
    for _ = 1 to 400 do
      let x = Cv_interval.Box.sample rng train_region in
      x.(4) <- Cv_util.Rng.float rng ~lo:0. ~hi:0.72;
      if Cv_core.Session.observe session x <> None then incr ood
    done;
    Printf.printf "OOD encounters: %d (pending %d)\n" !ood
      (Cv_core.Session.pending_ood session);

    section "4. SVuDC: absorb the enlarged operating region";
    let r = Cv_core.Session.absorb_enlargement ~margin:0.002 session in
    print_endline (Cv_core.Report.to_string r);

    section "5. SVbTV: adopt a fine-tuned advisory network";
    let more =
      List.init 200 (fun _ ->
          let x =
            Cv_interval.Box.sample rng
              (Cv_core.Session.property session).Cv_verify.Property.din
          in
          { Cv_nn.Train.input = x; target = expert_scores x })
    in
    let tuned, _ = Cv_nn.Train.fine_tune net more in
    Printf.printf "drift: %.5f\n" (Cv_nn.Network.param_dist_inf net tuned);
    let r2 = Cv_core.Session.adopt session tuned in
    print_endline (Cv_core.Report.to_string r2);

    section "6. Audit trail";
    List.iter
      (fun e -> Printf.printf "  - %s\n" (Cv_core.Session.event_string e))
      (Cv_core.Session.history session);

    section "6b. ACAS-style argmax property";
    (* "Strong-right is never the advisory when the intruder is far and
       slow" — verified exactly over the sub-region. *)
    let far_slow =
      Cv_interval.Box.of_bounds [| 0.8; 0.; 0.; 0.; 0. |]
        [| 1.; 1.; 1.; 1.; 0.3 |]
    in
    (match
       Cv_verify.Argmax.never_maximal Cv_verify.Containment.Milp
         (Cv_core.Session.network session)
         ~output:4 (* SR *) ~region:far_slow ~margin:0.0
     with
    | Cv_verify.Argmax.Holds ->
      print_endline "PROVED: SR is never the advisory for far, slow intruders"
    | Cv_verify.Argmax.Fails x ->
      Printf.printf "counterexample: SR chosen at %s\n"
        (Cv_linalg.Vec.to_string x)
    | Cv_verify.Argmax.Unknown m -> Printf.printf "unknown: %s\n" m);
    let gap =
      Cv_verify.Argmax.score_gap (Cv_core.Session.network session) ~output:0
        ~region:far_slow
    in
    Printf.printf
      "certified COC decision margin on that region: %.3f (negative = COC always wins)\n"
      gap;

    section "6c. Local robustness at a benign encounter";
    let x0 = [| 0.9; 0.5; 0.1; 0.5; 0.2 |] in
    let r =
      Cv_verify.Robustness.certified_radius (Cv_core.Session.network session)
        ~x:x0 ~delta:0.1
    in
    Printf.printf "certified L∞ radius for output deviation <= 0.1: %.4f\n" r;

    section "7. Export for other verifiers (.nnet)";
    let path = Filename.temp_file "advisory" ".nnet" in
    Cv_nn.Nnet.save path
      (Cv_nn.Nnet.of_network
         ~input_box:(Cv_core.Session.property session).Cv_verify.Property.din
         (Cv_core.Session.network session));
    Printf.printf "wrote %s (%d bytes)\n" path
      (let ic = open_in path in
       let n = in_channel_length ic in
       close_in ic;
       n);
    Sys.remove path;

    (* Sanity: how often does the certified network's argmax advisory
       agree with the expert policy across the operating region? (The
       certificate bounds scores; advisory agreement is a separate,
       statistical property — reported honestly here.) *)
    section "8. Advisory agreement with the expert policy";
    let argmax v =
      let best = ref 0 in
      Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
      !best
    in
    let agree = ref 0 and total = 500 in
    let din = (Cv_core.Session.property session).Cv_verify.Property.din in
    for _ = 1 to total do
      let x = Cv_interval.Box.sample rng din in
      let net_adv =
        argmax (Cv_nn.Network.eval (Cv_core.Session.network session) x)
      in
      if net_adv = argmax (expert_scores x) then incr agree
    done;
    Printf.printf "argmax agreement over %d encounters: %.1f%%\n" total
      (100. *. float_of_int !agree /. float_of_int total);
    List.iter
      (fun (name, x) ->
        let scores = Cv_nn.Network.eval (Cv_core.Session.network session) x in
        Printf.printf "  %-8s net=%s expert=%s\n" name
          advisories.(argmax scores)
          advisories.(argmax (expert_scores x)))
      [ ("benign", [| 0.9; 0.5; 0.1; 0.5; 0.2 |]);
        ("threat", [| 0.02; 0.9; 0.0; 0.2; 0.7 |]) ])
