(* The full continuous-engineering loop on the synthetic 1/10-scale
   vehicle: train, certify, deploy with monitoring, hit black swans,
   re-verify incrementally (SVuDC).

   Run with: dune exec examples/lane_following.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. Build platform and train the perception head";
  let exp = Cv_vehicle.Pipeline.build () in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  Printf.printf "training loss: %.5f\n" exp.Cv_vehicle.Pipeline.train_loss;
  Printf.printf "verified head:\n%s" (Cv_nn.Describe.layer_table head);

  section "2. The race track and the DNN's waypoints (paper Figure 3)";
  let track = exp.Cv_vehicle.Pipeline.track in
  let perception = exp.Cv_vehicle.Pipeline.perception in
  (* Drive a few steps and mark the vehicle's positions. *)
  let rng = Cv_util.Rng.create 99 in
  let monitor = Cv_monitor.Monitor.of_box exp.Cv_vehicle.Pipeline.din in
  let state = Cv_vehicle.Controller.init track ~s:0. in
  let _, trace =
    Cv_vehicle.Controller.drive ~rng ~track ~perception ~monitor ~steps:120
      state
  in
  let poses =
    List.filteri (fun i _ -> i mod 10 = 0) trace
    |> List.map (fun t -> t.Cv_vehicle.Controller.t_pose)
  in
  print_string (Cv_vehicle.Track.render track poses);
  (* Show one camera frame with the predicted waypoint. *)
  (match trace with
  | first :: _ ->
    let img =
      Cv_vehicle.Camera.capture perception.Cv_vehicle.Perception.camera
        Cv_vehicle.Camera.nominal track first.Cv_vehicle.Controller.t_pose
    in
    Printf.printf "camera frame (v_out = %.3f, waypoint column %d):\n%s"
      first.Cv_vehicle.Controller.t_vout
      (fst (Cv_vehicle.Perception.waypoint perception
              first.Cv_vehicle.Controller.t_vout))
      (Cv_vehicle.Camera.ascii perception.Cv_vehicle.Perception.camera img)
  | [] -> ());

  section "3. Original verification of the head";
  let prop = Cv_vehicle.Pipeline.property exp in
  let original = Cv_core.Strategy.solve_original_exact head prop in
  Printf.printf "proved: %b in %.2fs\n" original.Cv_core.Strategy.proved
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solve_seconds;

  section "4. Deployment under shifted conditions: monitored black swans";
  Printf.printf
    "OOD events while driving: %d (activation-pattern flags: %d), kappa = %.4f\n"
    exp.Cv_vehicle.Pipeline.ood_events exp.Cv_vehicle.Pipeline.pattern_flags
    exp.Cv_vehicle.Pipeline.kappa;
  Printf.printf "D_in        : total width %.3f\n"
    (Cv_interval.Box.total_width exp.Cv_vehicle.Pipeline.din);
  Printf.printf "D_in ∪ Δ_in : total width %.3f\n"
    (Cv_interval.Box.total_width exp.Cv_vehicle.Pipeline.enlarged_din);

  section "5. Incremental re-verification (SVuDC)";
  let svudc =
    Cv_core.Problem.svudc ~net:head
      ~artifact:original.Cv_core.Strategy.artifact
      ~new_din:exp.Cv_vehicle.Pipeline.enlarged_din
  in
  let report = Cv_core.Strategy.solve_svudc svudc in
  print_endline (Cv_core.Report.to_string report);
  Printf.printf "\nincremental cost: %.2f%% of the original verification\n"
    (100.
    *. Cv_core.Strategy.ratio
         ~incremental:report.Cv_core.Report.total_wall
         ~original:
           original.Cv_core.Strategy.artifact
             .Cv_artifacts.Artifacts.solve_seconds)
