(* Quickstart: verify a network once, then keep the proof alive across a
   domain enlargement and a fine-tuning step.

   Run with: dune exec examples/quickstart.exe *)

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  section "1. A trained network and its safety property";
  (* A small ReLU regression network standing in for a perception head.
     In a real project this would come from Cv_nn.Serialize.load_network. *)
  let rng = Cv_util.Rng.create 42 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 4; 8; 6; 1 ] ~act:Cv_nn.Activation.Relu ()
  in
  print_string (Cv_nn.Describe.layer_table net);
  let din = Cv_interval.Box.uniform 4 ~lo:0. ~hi:1. in
  (* Certify the output range given by the widened abstraction chain:
     the widening (here 0.05 per neuron) is the slack that later absorbs
     fine-tuning drift. *)
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.05 Cv_domains.Analyzer.Symint net
      din
  in
  let dout = chain.(Array.length chain - 1) in
  let prop = Cv_verify.Property.make ~din ~dout in
  Format.printf "%a@." Cv_verify.Property.pp prop;

  section "2. Original verification (exact, produces proof artifacts)";
  let original = Cv_core.Strategy.solve_original_exact ~widen:0.05 net prop in
  Printf.printf "proved: %b  in %.3fs  (solver: %s)\n"
    original.Cv_core.Strategy.proved
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solve_seconds
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solver;
  Printf.printf "artifacts: state abstractions: %b, Lipschitz constants: %s\n"
    (original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.state_abstractions
    <> None)
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%.3g" k v)
          original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.lipschitz));
  let artifact = original.Cv_core.Strategy.artifact in

  section "3. SVuDC: the input domain grows (black swan observed)";
  (* Monitoring reported feature values slightly outside D_in. *)
  let new_din = Cv_interval.Box.expand 0.01 din in
  let svudc = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let report = Cv_core.Strategy.solve_svudc svudc in
  print_endline (Cv_core.Report.to_string report);
  Printf.printf "cost vs original: %.2f%%\n"
    (100.
    *. Cv_core.Strategy.ratio ~incremental:report.Cv_core.Report.total_wall
         ~original:artifact.Cv_artifacts.Artifacts.solve_seconds);

  section "4. SVbTV: the network is fine-tuned";
  (* Simulate a fine-tuning step (in the full pipeline this is real SGD;
     see examples/fine_tuning.ml). *)
  let net' =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng ~sigma:0.002)
      net
  in
  Printf.printf "parameter drift (L-inf): %.5f\n"
    (Cv_nn.Network.param_dist_inf net net');
  let svbtv = Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din in
  let report' = Cv_core.Strategy.solve_svbtv svbtv in
  print_endline (Cv_core.Report.to_string report');
  Printf.printf "cost vs original: %.2f%%\n"
    (100.
    *. Cv_core.Strategy.ratio ~incremental:report'.Cv_core.Report.total_wall
         ~original:artifact.Cv_artifacts.Artifacts.solve_seconds);

  section "5. Persisting artifacts for the next engineering iteration";
  let path = Filename.temp_file "contiver_quickstart" ".json" in
  Cv_artifacts.Artifacts.save path artifact;
  let reloaded = Cv_artifacts.Artifacts.load path in
  Printf.printf "saved and reloaded proof artifact: fingerprints match: %b\n"
    (Cv_artifacts.Artifacts.matches reloaded net);
  Sys.remove path
