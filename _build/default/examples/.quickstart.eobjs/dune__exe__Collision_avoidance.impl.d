examples/collision_avoidance.ml: Array Cv_artifacts Cv_core Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Cv_verify Filename List Printf Sys
