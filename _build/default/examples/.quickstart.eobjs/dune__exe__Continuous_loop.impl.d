examples/continuous_loop.ml: Array Cv_artifacts Cv_core Cv_domains Cv_interval Cv_monitor Cv_util Cv_vehicle Cv_verify Format List Option Printf
