examples/quickstart.mli:
