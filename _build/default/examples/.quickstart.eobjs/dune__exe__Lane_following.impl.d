examples/lane_following.ml: Array Cv_artifacts Cv_core Cv_interval Cv_monitor Cv_nn Cv_util Cv_vehicle List Printf
