examples/fine_tuning.ml: Array Cv_artifacts Cv_core Cv_netabs Cv_util Cv_vehicle Cv_verify Printf
