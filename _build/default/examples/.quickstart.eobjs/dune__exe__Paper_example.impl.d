examples/paper_example.ml: Cv_domains Cv_interval Cv_linalg Cv_lipschitz Cv_milp Cv_nn Cv_verify Printf
