examples/quickstart.ml: Array Cv_artifacts Cv_core Cv_domains Cv_interval Cv_nn Cv_util Cv_verify Filename Format List Printf String Sys
