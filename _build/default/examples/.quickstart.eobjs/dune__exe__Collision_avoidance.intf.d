examples/collision_avoidance.mli:
