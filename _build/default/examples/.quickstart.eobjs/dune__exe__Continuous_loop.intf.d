examples/continuous_loop.mli:
