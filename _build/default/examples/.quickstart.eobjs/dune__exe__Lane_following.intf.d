examples/lane_following.mli:
