examples/fine_tuning.mli:
