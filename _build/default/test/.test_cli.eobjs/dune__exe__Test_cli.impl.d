test/test_cli.ml: Alcotest Filename List Option Sys
